// Quickstart: the REDS workflow end to end on the paper's "ellipse" function.
//
//   1. Run N = 300 "simulations" (LHS design + labeling oracle).
//   2. Discover a scenario with plain PRIM.
//   3. Discover a scenario with REDS (gradient-boosted-tree metamodel,
//      L = 20000 relabeled points) and compare both on independent test data.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/method.h"
#include "core/quality.h"
#include "functions/datagen.h"
#include "functions/registry.h"

int main() {
  using namespace reds;

  // 1. Simulate. "ellipse" has 15 inputs of which 10 matter; y = 1 inside an
  // ellipsoidal region (about 22% of the space).
  auto function = fun::MakeFunction("ellipse").value();
  const Dataset train = fun::MakeScenarioDataset(
      *function, /*n=*/300, fun::DesignKind::kLatinHypercube, /*seed=*/1);
  const Dataset test = fun::MakeScenarioDataset(
      *function, /*n=*/20000, fun::DesignKind::kLatinHypercube, /*seed=*/2);
  std::printf("train: %d simulations, %.1f%% interesting\n", train.num_rows(),
              100.0 * train.PositiveShare());

  // 2/3. Run both methods through the unified method runner. "P" is plain
  // PRIM; "RPx" is REDS with XGBoost-style trees relabeling L points.
  RunOptions options;
  options.l_prim = 20000;
  options.tune_metamodel = false;  // keep the demo fast
  options.seed = 3;

  for (const char* name : {"P", "RPx"}) {
    const MethodOutput out = RunMethod(*MethodSpec::Parse(name), train, options);
    const BoxStats stats = ComputeBoxStats(test, out.last_box);
    std::printf("\n%s:\n", name);
    std::printf("  scenario: IF %s THEN y=1\n", out.last_box.ToString().c_str());
    std::printf("  test precision %.3f, recall %.3f, PR AUC %.3f\n",
                Precision(stats), Recall(stats, test.TotalPositive()),
                PrAucOnData(out.trajectory, test));
    std::printf("  restricted inputs: %d of %d  (runtime %.2fs)\n",
                out.last_box.NumRestricted(), out.last_box.dim(),
                out.runtime_seconds);
  }
  std::printf(
      "\nREDS ('RPx') should dominate plain PRIM ('P') on precision and "
      "PR AUC: the metamodel squeezes more out of the same 300 runs.\n");
  return 0;
}
