// Command-line scenario discovery on your own data.
//
//   ./build/examples/csv_discovery [data.csv] [method]
//
// The CSV must have a header, numeric cells, and the *last* column as the
// binary outcome (0/1). `method` is any paper-style spec ("Pc", "PBc",
// "BIc", "RPf", "RPx", "RBIcxp", ...; default "RPf"). Without arguments the
// tool writes a demo CSV from the lake model and analyzes it.
//
// Prints the discovered rule(s), their quality on a held-out fifth of the
// rows, and -- for REDS methods -- the random-forest permutation importance
// of each input.
#include <cstdio>
#include <string>

#include "core/method.h"
#include "core/quality.h"
#include "functions/thirdparty.h"
#include "ml/random_forest.h"
#include "util/table.h"

namespace {

reds::Status WriteDemoCsv(const std::string& path) {
  const reds::Dataset lake = reds::fun::MakeLakeDataset();
  reds::CsvWriter csv({"b", "q", "inflow_mean", "inflow_stdev", "delta",
                       "vulnerable"});
  for (int i = 0; i < lake.num_rows(); ++i) {
    csv.AddRow({lake.x(i, 0), lake.x(i, 1), lake.x(i, 2), lake.x(i, 3),
                lake.x(i, 4), lake.y(i)});
  }
  return csv.WriteFile(path);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace reds;

  std::string path = argc > 1 ? argv[1] : "/tmp/reds_demo_lake.csv";
  const std::string method_name = argc > 2 ? argv[2] : "RPf";
  if (argc <= 1) {
    const Status s = WriteDemoCsv(path);
    if (!s.ok()) {
      std::fprintf(stderr, "cannot write demo data: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("no input given; wrote demo lake data to %s\n", path.c_str());
  }

  const auto table = ReadCsvFile(path);
  if (!table.ok()) {
    std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
    return 1;
  }
  const int cols = static_cast<int>(table->header.size());
  if (cols < 2) {
    std::fprintf(stderr, "need at least one input column and the outcome\n");
    return 1;
  }
  const auto spec = MethodSpec::Parse(method_name);
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 1;
  }

  Dataset data(cols - 1);
  for (const auto& row : table->rows) {
    data.AddRow(std::vector<double>(row.begin(), row.end() - 1), row.back());
  }
  std::vector<std::string> names(table->header.begin(),
                                 table->header.end() - 1);
  std::printf("%d rows, %d inputs, %.1f%% positive; method %s\n",
              data.num_rows(), data.num_cols(), 100.0 * data.PositiveShare(),
              method_name.c_str());

  // Hold out every fifth row for honest reporting.
  std::vector<int> train_rows, test_rows;
  for (int i = 0; i < data.num_rows(); ++i) {
    (i % 5 == 4 ? test_rows : train_rows).push_back(i);
  }
  const Dataset train = data.SubsetRows(train_rows);
  const Dataset test = data.SubsetRows(test_rows);

  RunOptions options;
  options.l_prim = 20000;
  options.l_bi = 5000;
  options.tune_metamodel = false;
  options.seed = 97;
  const MethodOutput out = RunMethod(*spec, train, options);

  const BoxStats stats = ComputeBoxStats(test, out.last_box);
  std::printf("\ndiscovered scenario:\n  IF %s THEN outcome = 1\n",
              out.last_box.ToString(names).c_str());
  std::printf("held-out precision %.3f, recall %.3f", Precision(stats),
              Recall(stats, test.TotalPositive()));
  if (spec->IsPrimFamily()) {
    std::printf(", PR AUC %.3f (over %zu nested boxes)",
                PrAucOnData(out.trajectory, test), out.trajectory.size());
  } else {
    std::printf(", WRAcc %.4f", BoxWRAcc(test, out.last_box));
  }
  std::printf("\n");

  if (spec->reds) {
    // Input relevance, from the same forest family REDS uses.
    ml::RandomForest rf;
    rf.Fit(train, 11);
    std::printf("\nout-of-bag error: %.3f\ninput importance (permutation):\n",
                rf.OobError(train));
    const auto importance = rf.PermutationImportance(train, 12);
    for (int j = 0; j < train.num_cols(); ++j) {
      std::printf("  %-16s %+.4f\n", names[static_cast<size_t>(j)].c_str(),
                  importance[static_cast<size_t>(j)]);
    }
  }
  return 0;
}
