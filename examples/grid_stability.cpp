// Scenario discovery for power-grid stability -- the paper's "dsgc" model.
//
// The Decentral Smart Grid Control model asks: under which combinations of
// reaction time tau, adaptation gain g, consumer load P and line coupling K
// does the grid stay stable? Each "simulation" builds the linearized system
// and checks its eigenvalues. We use REDS with a random-forest metamodel and
// the covering approach to extract several stability scenarios, then report
// them in physical units.
//
// Build & run:  ./build/examples/grid_stability
#include <cstdio>

#include "core/covering.h"
#include "core/prim.h"
#include "core/quality.h"
#include "core/reds.h"
#include "functions/datagen.h"
#include "functions/dsgc.h"
#include "functions/registry.h"

namespace {

// Pretty-print a unit-cube box in physical grid units.
void PrintPhysicalRule(const reds::Box& box) {
  const struct {
    const char* name;
    double lo, hi;
  } ranges[12] = {
      {"tau_producer", 0.5, 10},  {"tau_consumer1", 0.5, 10},
      {"tau_consumer2", 0.5, 10}, {"tau_consumer3", 0.5, 10},
      {"g_producer", 0.05, 0.5},  {"g_consumer1", 0.05, 0.5},
      {"g_consumer2", 0.05, 0.5}, {"g_consumer3", 0.05, 0.5},
      {"P1", -1.5, -0.5},         {"P2", -1.5, -0.5},
      {"P3", -1.5, -0.5},         {"K", 1, 8},
  };
  for (int j = 0; j < 12; ++j) {
    if (!box.IsRestricted(j)) continue;
    const double span = ranges[j].hi - ranges[j].lo;
    const double lo = std::isfinite(box.lo(j))
                          ? ranges[j].lo + box.lo(j) * span
                          : ranges[j].lo;
    const double hi = std::isfinite(box.hi(j))
                          ? ranges[j].lo + box.hi(j) * span
                          : ranges[j].hi;
    std::printf("    %.2f <= %s <= %.2f\n", lo, ranges[j].name, hi);
  }
}

}  // namespace

int main() {
  using namespace reds;

  auto dsgc = fun::MakeFunction("dsgc").value();
  // 500 grid simulations from a Halton design (the paper's choice for dsgc).
  const Dataset train =
      fun::MakeScenarioDataset(*dsgc, 500, fun::DesignKind::kHalton, 11);
  std::printf("simulated %d grids; %.1f%% stable\n", train.num_rows(),
              100.0 * train.PositiveShare());

  // REDS: random-forest metamodel labels 20000 fresh parameter combinations.
  RedsConfig config;
  config.metamodel = ml::MetamodelKind::kRandomForest;
  config.tune_metamodel = false;
  config.num_new_points = 20000;
  const RedsRelabeling relabeled = RedsRelabel(train, config, 13);

  // Covering: extract up to three disjoint stability scenarios.
  const CoveringResult scenarios = RunCovering(
      relabeled.new_data,
      [](const Dataset& d) {
        PrimConfig prim;
        prim.min_points = 200;
        return RunPrim(d, d, prim).BestBox();
      },
      3, /*min_points=*/500);

  std::printf("\ndiscovered %zu stability scenarios:\n", scenarios.boxes.size());
  for (size_t i = 0; i < scenarios.boxes.size(); ++i) {
    std::printf("  scenario %zu (precision %.2f, covers %.0f%% of stable "
                "region):\n",
                i + 1, scenarios.precision[i],
                100.0 * scenarios.coverage_share[i]);
    PrintPhysicalRule(scenarios.boxes[i]);
  }

  // Sanity check the first scenario against fresh simulations.
  if (!scenarios.boxes.empty()) {
    const Dataset test =
        fun::MakeScenarioDataset(*dsgc, 5000, fun::DesignKind::kHalton, 17);
    const BoxStats stats = ComputeBoxStats(test, scenarios.boxes.front());
    std::printf("\nscenario 1 on 5000 fresh simulations: precision %.3f "
                "(share of truly stable grids inside the rule)\n",
                Precision(stats));
  }
  return 0;
}
