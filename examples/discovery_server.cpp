// Standalone discovery server: DiscoveryEngine + DiscoveryServer behind
// one binary, the deployable shape of the engine. Clients speak the
// length-prefixed frame protocol (src/net/protocol.h) over a unix or TCP
// socket; admission control is set from the command line.
//
//   ./build/examples/discovery_server --listen unix:/tmp/reds.sock
//   ./build/examples/discovery_server --listen tcp:127.0.0.1:7433 \
//       --threads 8 --queue-depth 16 --client-quota 8 --keepalive-ms 30000
//
// SIGINT/SIGTERM (or --max-seconds) stop it gracefully: the listener
// closes, admitted jobs finish, and --metrics-out receives a final
// MetricsRegistry JSON dump covering both the engine and the net layer.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "engine/discovery_engine.h"
#include "net/server.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true); }

}  // namespace

int main(int argc, char** argv) {
  using namespace reds;

  std::string listen = "tcp:127.0.0.1:7433";
  int threads = 0;  // hardware concurrency
  int decode_threads = 2;
  int queue_depth = 0;
  int client_quota = 0;
  int keepalive_ms = 0;
  int retry_after_ms = 50;
  int result_cache = 32;
  double max_seconds = 0.0;
  std::string metrics_out;

  auto next_value = [&](int* i) -> const char* {
    if (*i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[*i]);
      std::exit(2);
    }
    return argv[++*i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--listen") {
      listen = next_value(&i);
    } else if (arg == "--threads") {
      threads = std::atoi(next_value(&i));
    } else if (arg == "--decode-threads") {
      decode_threads = std::atoi(next_value(&i));
    } else if (arg == "--queue-depth") {
      queue_depth = std::atoi(next_value(&i));
    } else if (arg == "--client-quota") {
      client_quota = std::atoi(next_value(&i));
    } else if (arg == "--keepalive-ms") {
      keepalive_ms = std::atoi(next_value(&i));
    } else if (arg == "--retry-after-ms") {
      retry_after_ms = std::atoi(next_value(&i));
    } else if (arg == "--result-cache") {
      result_cache = std::atoi(next_value(&i));
    } else if (arg == "--max-seconds") {
      max_seconds = std::atof(next_value(&i));
    } else if (arg == "--metrics-out") {
      metrics_out = next_value(&i);
    } else if (arg == "--help") {
      std::printf(
          "usage: discovery_server [--listen unix:PATH|tcp:host:port] "
          "[--threads N] [--decode-threads N] [--queue-depth N] "
          "[--client-quota N] [--keepalive-ms MS] [--retry-after-ms MS] "
          "[--result-cache N] [--max-seconds S] "
          "[--metrics-out metrics.json]\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag %s (see --help)\n", arg.c_str());
      return 2;
    }
  }

  engine::EngineConfig engine_config;
  engine_config.threads = threads;
  engine::DiscoveryEngine engine(engine_config);

  net::ServerConfig server_config;
  server_config.address = listen;
  server_config.decode_threads = decode_threads;
  server_config.max_queue_depth = queue_depth;
  server_config.max_inflight_per_client = client_quota;
  server_config.keepalive_ms = keepalive_ms;
  server_config.retry_after_ms = static_cast<uint32_t>(retry_after_ms);
  server_config.result_cache_entries =
      static_cast<size_t>(std::max(0, result_cache));
  net::DiscoveryServer server(&engine, server_config);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "cannot start: %s\n", started.ToString().c_str());
    return 1;
  }

  struct sigaction sa {};
  sa.sa_handler = HandleSignal;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);

  std::printf("discovery server listening on %s (%d engine threads",
              server.address().c_str(), engine.threads());
  if (queue_depth > 0) std::printf(", queue depth %d", queue_depth);
  if (client_quota > 0) std::printf(", client quota %d", client_quota);
  std::printf(")\n");
  std::fflush(stdout);

  const auto start = std::chrono::steady_clock::now();
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (max_seconds > 0.0 &&
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
                .count() >= max_seconds) {
      break;
    }
  }

  std::printf("shutting down\n");
  server.Stop();
  engine.WaitAll();
  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out);
    out << engine.metrics().ToJson();
    std::printf("wrote %s\n", metrics_out.c_str());
  }
  return 0;
}
