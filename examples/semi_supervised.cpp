// REDS as a semi-supervised subgroup-discovery method (paper Sections 6.1
// and 9.4): inputs need not be uniform -- here they follow a logit-normal
// distribution -- and the unlabeled pool is given, not sampled.
//
// Build & run:  ./build/examples/semi_supervised
#include <cstdio>

#include "core/best_interval.h"
#include "core/reds.h"
#include "functions/datagen.h"
#include "functions/registry.h"

int main() {
  using namespace reds;

  auto function = fun::MakeFunction("hart4").value();

  // 250 labeled examples with logit-normal(0, 1) inputs...
  const Dataset labeled = fun::MakeScenarioDataset(
      *function, 250, fun::DesignKind::kLogitNormal, 31);
  // ...plus 8000 unlabeled points from the same distribution (e.g. logged
  // operating conditions whose outcome was never measured).
  Rng rng(32);
  const int dim = function->dim();
  std::vector<double> unlabeled(8000 * static_cast<size_t>(dim));
  for (auto& v : unlabeled) v = rng.LogitNormal(0.0, 1.0);

  std::printf("labeled: %d examples (%.1f%% positive), unlabeled pool: %zu\n",
              labeled.num_rows(), 100.0 * labeled.PositiveShare(),
              unlabeled.size() / static_cast<size_t>(dim));

  // BI directly on the labeled data...
  const BiResult direct = RunBi(labeled, {});

  // ...versus BI on the metamodel-labeled pool (semi-supervised REDS).
  RedsConfig config;
  config.metamodel = ml::MetamodelKind::kGbt;
  config.tune_metamodel = false;
  config.probability_labels = true;
  const RedsRelabeling relabeled = RedsRelabelPoints(labeled, unlabeled,
                                                     config, 33);
  const BiResult semi = RunBi(relabeled.new_data, {});

  // Score both subgroups on fresh labeled data from the same distribution.
  const Dataset test = fun::MakeScenarioDataset(
      *function, 20000, fun::DesignKind::kLogitNormal, 34);
  std::printf("\nBI on labeled data only:\n  %s\n  test WRAcc %.4f\n",
              direct.box.ToString().c_str(), BoxWRAcc(test, direct.box));
  std::printf("\nsemi-supervised REDS + BI:\n  %s\n  test WRAcc %.4f\n",
              semi.box.ToString().c_str(), BoxWRAcc(test, semi.box));
  std::printf("\nWith the metamodel transferring label information onto the "
              "unlabeled pool, the subgroup is usually sharper.\n");
  return 0;
}
