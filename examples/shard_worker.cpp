// Multi-process sharded discovery driver: one binary, three roles.
//
//   # single-process reference run
//   ./build/examples/shard_worker --single --rows 200000 --dims 4
//
//   # coordinator + 2 worker processes over a UNIX domain socket
//   ./build/examples/shard_worker --coordinator --workers 2 \
//       --socket /tmp/reds_shard.sock --rows 200000 --dims 4 &
//   ./build/examples/shard_worker --worker --shard 0 --workers 2 \
//       --socket /tmp/reds_shard.sock --rows 200000 --dims 4 &
//   ./build/examples/shard_worker --worker --shard 1 --workers 2 \
//       --socket /tmp/reds_shard.sock --rows 200000 --dims 4
//
// Every role derives the same deterministic SyntheticBlockSource from the
// shared geometry flags (--rows --dims --distinct --seed --block-rows), so
// the coordinator's boxes are directly comparable to the --single run: in
// the exact-pack regime they are bit-identical, which is what the CI smoke
// asserts. The coordinator prints the returned box sequence as JSON on
// stdout and the merged fleet metrics dump to --metrics-out (or stderr).
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/binned_index.h"
#include "core/prim.h"
#include "obs/metrics.h"
#include "shard/coordinator.h"
#include "shard/source_spec.h"
#include "shard/worker.h"

namespace {

using namespace reds;

struct Args {
  bool coordinator = false;
  bool worker = false;
  bool single = false;
  int workers = 2;
  int shard = -1;
  std::string socket_path = "/tmp/reds_shard.sock";
  std::string metrics_out;
  int64_t rows = 200000;
  int dims = 4;
  int distinct = 48;
  uint64_t seed = 7;
  int block_rows = 8192;
  double alpha = 0.05;
  int min_points = 20;
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--coordinator") {
      args->coordinator = true;
    } else if (flag == "--worker") {
      args->worker = true;
    } else if (flag == "--single") {
      args->single = true;
    } else if (flag == "--workers") {
      args->workers = std::atoi(next());
    } else if (flag == "--shard") {
      args->shard = std::atoi(next());
    } else if (flag == "--socket") {
      args->socket_path = next();
    } else if (flag == "--metrics-out") {
      args->metrics_out = next();
    } else if (flag == "--rows") {
      args->rows = std::atoll(next());
    } else if (flag == "--dims") {
      args->dims = std::atoi(next());
    } else if (flag == "--distinct") {
      args->distinct = std::atoi(next());
    } else if (flag == "--seed") {
      args->seed = static_cast<uint64_t>(std::atoll(next()));
    } else if (flag == "--block-rows") {
      args->block_rows = std::atoi(next());
    } else if (flag == "--alpha") {
      args->alpha = std::atof(next());
    } else if (flag == "--min-points") {
      args->min_points = std::atoi(next());
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  const int roles = (args->coordinator ? 1 : 0) + (args->worker ? 1 : 0) +
                    (args->single ? 1 : 0);
  if (roles != 1) {
    std::fprintf(stderr,
                 "pick exactly one of --coordinator / --worker / --single\n");
    return false;
  }
  if (args->worker &&
      (args->shard < 0 || args->shard >= args->workers)) {
    std::fprintf(stderr, "--worker needs --shard in [0, --workers)\n");
    return false;
  }
  return true;
}

shard::SourceSpec SpecFromArgs(const Args& args) {
  shard::SourceSpec spec;
  spec.kind = shard::SourceSpec::Kind::kSynthetic;
  spec.block_rows = args.block_rows;
  spec.rows = args.rows;
  spec.dims = args.dims;
  spec.distinct = args.distinct;
  spec.seed = args.seed;
  return spec;
}

void PrintBoxesJson(const std::vector<Box>& boxes, int dims) {
  std::printf("{\"boxes\":[");
  for (size_t i = 0; i < boxes.size(); ++i) {
    if (i > 0) std::printf(",");
    std::printf("[");
    for (int j = 0; j < dims; ++j) {
      if (j > 0) std::printf(",");
      // %.17g: round-trippable doubles, so bit-identical boxes print
      // byte-identical JSON and the CI smoke can diff the text.
      std::printf("[%.17g,%.17g]", boxes[i].lo(j), boxes[i].hi(j));
    }
    std::printf("]");
  }
  std::printf("]}\n");
}

int RunSingle(const Args& args) {
  shard::SyntheticBlockSource source(SpecFromArgs(args), 1, 0);
  StreamedBuildOptions options;
  options.block_rows = args.block_rows;
  const Result<StreamedDataset> data =
      BinnedIndex::BuildStreamed(&source, options);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  PrimConfig config;
  config.alpha = args.alpha;
  config.min_points = args.min_points;
  const PrimResult r = RunPrimStreamed(*data->index, data->y, config);
  PrintBoxesJson(r.ReturnedBoxes(), args.dims);
  return 0;
}

int RunWorker(const Args& args) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("socket");
    return 1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                args.socket_path.c_str());
  // The coordinator may still be binding; retry briefly.
  int rc = -1;
  for (int attempt = 0; attempt < 100; ++attempt) {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (rc == 0) break;
    ::usleep(100 * 1000);
  }
  if (rc != 0) {
    std::perror("connect");
    ::close(fd);
    return 1;
  }
  shard::SyntheticBlockSource source(SpecFromArgs(args), args.workers,
                                     args.shard);
  const Status s = shard::RunShardWorker(fd, &source);
  ::close(fd);
  if (!s.ok()) {
    std::fprintf(stderr, "worker %d: %s\n", args.shard, s.ToString().c_str());
    return 1;
  }
  return 0;
}

int RunCoordinator(const Args& args) {
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("socket");
    return 1;
  }
  ::unlink(args.socket_path.c_str());
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                args.socket_path.c_str());
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listener, args.workers) != 0) {
    std::perror("bind/listen");
    ::close(listener);
    return 1;
  }

  std::vector<int> fds;
  for (int w = 0; w < args.workers; ++w) {
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) {
      std::perror("accept");
      for (int f : fds) ::close(f);
      ::close(listener);
      return 1;
    }
    fds.push_back(fd);
  }
  ::close(listener);
  ::unlink(args.socket_path.c_str());

  StreamedBuildOptions options;
  options.block_rows = args.block_rows;
  shard::ShardCoordinator coordinator(fds, options);
  Status s = coordinator.BuildGlobalBins();
  if (s.ok()) {
    PrimConfig config;
    config.alpha = args.alpha;
    config.min_points = args.min_points;
    const Result<PrimResult> r = coordinator.RunPrim(config);
    if (r.ok()) {
      PrintBoxesJson(r->ReturnedBoxes(), args.dims);
    } else {
      s = r.status();
    }
  }
  if (s.ok()) {
    obs::MetricsRegistry fleet;
    s = coordinator.CollectMetrics(&fleet);
    if (s.ok()) {
      const std::string dump = fleet.Dump(obs::ExportFormat::kJson);
      if (args.metrics_out.empty()) {
        std::fprintf(stderr, "%s\n", dump.c_str());
      } else if (std::FILE* f = std::fopen(args.metrics_out.c_str(), "w")) {
        std::fputs(dump.c_str(), f);
        std::fclose(f);
      } else {
        std::fprintf(stderr, "cannot write %s\n", args.metrics_out.c_str());
      }
    }
  }
  coordinator.Shutdown();
  for (int fd : fds) ::close(fd);
  if (!s.ok()) {
    std::fprintf(stderr, "coordinator: %s\n", s.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return 2;
  if (args.single) return RunSingle(args);
  if (args.worker) return RunWorker(args);
  return RunCoordinator(args);
}
