// Scenario discovery from third-party data (paper Section 9.3): when only a
// fixed dataset is available -- here the lake eutrophication table -- REDS
// still helps by training a metamodel on the data and relabeling a large
// synthetic sample for PRIM.
//
// Build & run:  ./build/examples/lake_policy
#include <cstdio>

#include "core/prim.h"
#include "core/quality.h"
#include "core/reds.h"
#include "functions/thirdparty.h"
#include "ml/tuning.h"
#include "util/rng.h"

int main() {
  using namespace reds;

  const Dataset lake = fun::MakeLakeDataset();
  std::printf("lake dataset: %d runs, 5 uncertainties, %.1f%% vulnerable\n",
              lake.num_rows(), 100.0 * lake.PositiveShare());

  // Split: 800 rows to discover scenarios, 200 held out for honest scoring.
  std::vector<int> train_rows, test_rows;
  for (int i = 0; i < lake.num_rows(); ++i) {
    (i % 5 == 4 ? test_rows : train_rows).push_back(i);
  }
  const Dataset train = lake.SubsetRows(train_rows);
  const Dataset test = lake.SubsetRows(test_rows);

  // Plain PRIM on the raw 800 examples.
  PrimConfig prim;
  const PrimResult plain = RunPrim(train, train, prim);

  // REDS: random forest on the 800 examples, then PRIM on 20000 relabeled
  // points ("RPf" in the paper's naming).
  RedsConfig config;
  config.metamodel = ml::MetamodelKind::kRandomForest;
  config.tune_metamodel = false;
  config.num_new_points = 20000;
  const RedsRelabeling relabeled = RedsRelabel(train, config, 23);
  PrimConfig reds_prim;
  reds_prim.min_points = 200;
  const PrimResult with_reds = RunPrim(relabeled.new_data, relabeled.new_data,
                                       reds_prim);

  const std::vector<std::string> names{"b (removal rate)", "q (recycling)",
                                       "inflow mean", "inflow stdev",
                                       "delta (discount)"};
  const auto report = [&](const char* label, const PrimResult& r) {
    const BoxStats stats = ComputeBoxStats(test, r.BestBox());
    std::printf("\n%s\n", label);
    std::printf("  rule: IF %s\n", r.BestBox().ToString(names).c_str());
    std::printf("  held-out precision %.3f, recall %.3f, PR AUC %.3f\n",
                Precision(stats), Recall(stats, test.TotalPositive()),
                PrAucOnData(r.ReturnedBoxes(), test));
  };
  report("plain PRIM:", plain);
  report("REDS (RPf):", with_reds);

  std::printf(
      "\nThe vulnerable scenarios concentrate at low removal rate b and high "
      "natural inflow -- exactly the lake-problem folklore. delta, which "
      "does not affect the dynamics, should stay unrestricted.\n");
  return 0;
}
