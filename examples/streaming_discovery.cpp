// Streaming scenario discovery: CSV in, boxes out, O(block) double memory.
//
//   ./build/examples/streaming_discovery [data.csv]
//       [--block N] [--alpha A] [--cache-dir DIR] [--expect-warm]
//       [--trace-dir DIR] [--metrics-out FILE]
//       [--reds-smoke L] [--tuning-smoke N]
//       [--data-plan streamed|materialized]
//       [--function NAME] [--n N0]
//
// The CSV must have a header, numeric cells, and the *last* column as the
// outcome. Without a path the tool writes a demo CSV from the lake model.
//
// The data is ingested through the streaming data plane: two chunked
// passes (mergeable quantile sketches, then uint8 bin codes) build a
// BinnedIndex without ever materializing the double matrix, and PRIM peels
// on the quantized codes alone. With --cache-dir the engine's persistent
// tier is exercised on the same data through *source-based* requests
// (DiscoveryRequest::make_train_source): a REDS request trains (cold) or
// reloads (warm) its metamodel there, a plain PRIM request runs fully
// streamed against the cached quantization, and --expect-warm makes the
// process fail unless both tiers served hits -- the CI warm-vs-cold smoke
// runs this binary twice with one temp directory.
//
// --reds-smoke L runs an end-to-end REDS discovery ("RPx") with L
// metamodel-labeled points on a generated dataset and prints the peak RSS:
// under --data-plan streamed the relabeled points never materialize
// (O(block) doubles + L x M uint8 codes resident), so the run fits a hard
// memory cap (ulimit) that the materialized plan cannot -- the CI
// memory-ceiling smoke asserts exactly that.
//
// --tuning-smoke N grid-tunes a GBT metamodel on an N-row generated
// dataset and prints the peak RSS. --data-plan picks the CV fold plan:
// `streamed` evaluates every grid cell through row views over one shared
// full-data index (O(one fold) extra residency), `materialized` copies a
// training matrix + private index per fold -- the tuning-residency CI
// smoke caps the address space so only the streamed plan fits.
//
// --trace-dir makes every engine job write a Chrome trace-event JSON of
// its pipeline stages there (open in chrome://tracing or Perfetto);
// --metrics-out dumps the engine's full metrics registry (cache tiers,
// pool, job latency quantiles) as JSON after the jobs finish. Both only
// apply to the --cache-dir engine section.
#include <sys/resource.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "core/dataset_source.h"
#include "core/method.h"
#include "core/prim.h"
#include "engine/discovery_engine.h"
#include "functions/datagen.h"
#include "functions/registry.h"
#include "functions/thirdparty.h"
#include "ml/tuning.h"
#include "util/table.h"

namespace {

reds::Status WriteDemoCsv(const std::string& path) {
  const reds::Dataset lake = reds::fun::MakeLakeDataset();
  reds::CsvWriter csv({"b", "q", "inflow_mean", "inflow_stdev", "delta",
                       "vulnerable"});
  for (int i = 0; i < lake.num_rows(); ++i) {
    csv.AddRow({lake.x(i, 0), lake.x(i, 1), lake.x(i, 2), lake.x(i, 3),
                lake.x(i, 4), lake.y(i)});
  }
  return csv.WriteFile(path);
}

double PeakRssMb() {
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // Linux: KiB
}

// End-to-end REDS under a chosen data plan, for the memory-ceiling smoke.
int RunRedsSmoke(const std::string& function_name, int n, int l,
                 reds::MethodDataPlan plan) {
  using namespace reds;
  auto function = fun::MakeFunction(function_name);
  if (!function.ok()) {
    std::fprintf(stderr, "%s\n", function.status().ToString().c_str());
    return 1;
  }
  const Dataset train = fun::MakeScenarioDataset(
      **function, n, fun::DesignKind::kLatinHypercube, /*seed=*/1);
  RunOptions options;
  options.l_prim = l;
  options.tune_metamodel = false;
  options.data_plan = plan;
  options.seed = 7;
  const MethodOutput out =
      RunMethod(*MethodSpec::Parse("RPx"), train, options);
  std::printf(
      "reds-smoke: %s, N=%d, L=%d, plan=%s\n"
      "  trajectory %zu boxes, last box restricts %d of %d inputs\n"
      "  runtime %.2fs, peak RSS %.1f MB\n",
      function_name.c_str(), n, l,
      plan == MethodDataPlan::kStreamed ? "streamed" : "materialized",
      out.trajectory.size(), out.last_box.NumRestricted(),
      (*function)->dim(), out.runtime_seconds, PeakRssMb());
  return 0;
}

// Grid-tuned metamodel fit under a chosen CV fold plan, for the
// tuning-residency smoke.
int RunTuningSmoke(const std::string& function_name, int n,
                   reds::ml::CvFoldPlan plan) {
  using namespace reds;
  auto function = fun::MakeFunction(function_name);
  if (!function.ok()) {
    std::fprintf(stderr, "%s\n", function.status().ToString().c_str());
    return 1;
  }
  const Dataset train = fun::MakeScenarioDataset(
      **function, n, fun::DesignKind::kLatinHypercube, /*seed=*/1);
  ml::TuningConfig config;
  config.folds = 3;
  config.backend = ml::SplitBackend::kHistogram;
  config.fold_plan = plan;
  const auto model =
      ml::TuneAndFit(ml::MetamodelKind::kGbt, train, /*seed=*/7, config);
  if (model == nullptr) {
    std::fprintf(stderr, "tuning produced no model\n");
    return 1;
  }
  std::printf(
      "tuning-smoke: %s, n=%d x %d inputs, folds=%d, plan=%s\n"
      "  peak RSS %.1f MB\n",
      function_name.c_str(), n, train.num_cols(), config.folds,
      plan == ml::CvFoldPlan::kStreamed ? "streamed" : "materialized",
      PeakRssMb());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace reds;

  std::string path;
  std::string cache_dir;
  std::string trace_dir;
  std::string metrics_out;
  std::string smoke_function = "morris";
  int smoke_n = 300;
  int reds_smoke_l = 0;
  int tuning_smoke_n = 0;
  MethodDataPlan data_plan = MethodDataPlan::kStreamed;
  bool expect_warm = false;
  StreamedBuildOptions build_options;
  build_options.threads = 2;
  PrimConfig prim_config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--block") {
      build_options.block_rows = std::atoi(next());
    } else if (arg == "--alpha") {
      prim_config.alpha = std::atof(next());
    } else if (arg == "--cache-dir") {
      cache_dir = next();
    } else if (arg == "--trace-dir") {
      trace_dir = next();
    } else if (arg == "--metrics-out") {
      metrics_out = next();
    } else if (arg == "--expect-warm") {
      expect_warm = true;
    } else if (arg == "--reds-smoke") {
      reds_smoke_l = std::atoi(next());
    } else if (arg == "--tuning-smoke") {
      tuning_smoke_n = std::atoi(next());
    } else if (arg == "--data-plan") {
      const std::string plan = next();
      if (plan == "streamed") {
        data_plan = MethodDataPlan::kStreamed;
      } else if (plan == "materialized") {
        data_plan = MethodDataPlan::kMaterialized;
      } else {
        std::fprintf(stderr, "--data-plan must be streamed or materialized\n");
        return 2;
      }
    } else if (arg == "--function") {
      smoke_function = next();
    } else if (arg == "--n") {
      smoke_n = std::atoi(next());
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      path = arg;
    }
  }

  if (reds_smoke_l > 0) {
    return RunRedsSmoke(smoke_function, smoke_n, reds_smoke_l, data_plan);
  }
  if (tuning_smoke_n > 0) {
    // --data-plan doubles as the fold-plan switch: streamed fold views vs
    // per-fold matrix copies.
    return RunTuningSmoke(smoke_function, tuning_smoke_n,
                          data_plan == MethodDataPlan::kStreamed
                              ? ml::CvFoldPlan::kStreamed
                              : ml::CvFoldPlan::kMaterialized);
  }

  if (path.empty()) {
    path = "/tmp/reds_demo_lake.csv";
    const Status s = WriteDemoCsv(path);
    if (!s.ok()) {
      std::fprintf(stderr, "cannot write demo data: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    std::printf("no input given; wrote demo lake data to %s\n", path.c_str());
  }

  // --- Streamed ingestion: CSV -> sketches -> uint8 codes. ---------------
  auto source = CsvFileSource::Open(path);
  if (!source.ok()) {
    std::fprintf(stderr, "%s\n", source.status().ToString().c_str());
    return 1;
  }
  auto streamed = BinnedIndex::BuildStreamed(source->get(), build_options);
  if (!streamed.ok()) {
    std::fprintf(stderr, "%s\n", streamed.status().ToString().c_str());
    return 1;
  }
  const BinnedIndex& index = *streamed->index;
  double positive = 0.0;
  for (double v : streamed->y) positive += v;
  std::printf(
      "streamed %d rows x %d inputs in blocks of %d (%.1f%% positive)\n",
      index.num_rows(), index.num_cols(), build_options.block_rows,
      100.0 * positive / index.num_rows());
  std::printf("  binning: %s; fingerprint %016llx\n",
              index.kind() == BinnedIndex::BuildKind::kExactPack
                  ? "exact (every column fits the bin budget)"
                  : "sketch quantiles (bounded rank error)",
              static_cast<unsigned long long>(streamed->fingerprint));

  // --- PRIM on the quantized plane alone. --------------------------------
  const PrimResult result =
      RunPrimStreamed(index, streamed->y, prim_config);
  const std::vector<std::string>& names = (*source)->column_names();
  std::printf("\ndiscovered scenario (%zu nested boxes):\n  IF %s THEN %s = 1\n",
              result.boxes.size(),
              result.BestBox().ToString(names).c_str(),
              (*source)->target_name().c_str());
  const auto& best = result.val_curve[static_cast<size_t>(result.best_val_index)];
  std::printf("  training precision %.3f, recall %.3f\n", best.precision,
              best.recall);

  // --- Persistent cache tier (optional), driven by source requests. ------
  // Both jobs hand the engine a DatasetSource factory instead of a
  // materialized Dataset: "RPx" exercises the metamodel tier (the engine
  // fingerprints the stream, then trains cold / reloads warm), "P" runs
  // fully streamed against the streamed-index tier (BuildStreamed cold,
  // LoadStreamedIndex warm).
  if (!cache_dir.empty()) {
    engine::EngineConfig config;
    config.cache_dir = cache_dir;
    config.trace_dir = trace_dir;
    engine::DiscoveryEngine engine(config);
    for (const char* method : {"RPx", "P"}) {
      engine::DiscoveryRequest request;
      request.make_train_source = [path]() -> std::unique_ptr<DatasetSource> {
        auto csv = CsvFileSource::Open(path);
        if (!csv.ok()) {
          std::fprintf(stderr, "cannot open training stream: %s\n",
                       csv.status().ToString().c_str());
          return nullptr;
        }
        return std::unique_ptr<DatasetSource>(std::move(*csv));
      };
      request.method = method;
      request.options.l_prim = 20000;
      request.options.tune_metamodel = false;
      const engine::JobHandle job = engine.Submit(request);
      job->Wait();
      if (job->state() == engine::JobState::kFailed) {
        std::fprintf(stderr, "job %s failed: %s\n", method,
                     job->error().c_str());
        return 1;
      }
    }
    const engine::PersistentCacheStats stats = engine.persistent_cache_stats();
    engine.Shutdown();
    if (!trace_dir.empty()) {
      std::printf("\nwrote per-job traces to %s\n", engine.trace_dir().c_str());
    }
    if (!metrics_out.empty()) {
      const std::string dump = engine.DumpMetrics();
      std::FILE* f = std::fopen(metrics_out.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot open %s\n", metrics_out.c_str());
        return 1;
      }
      std::fwrite(dump.data(), 1, dump.size(), f);
      std::fclose(f);
      std::printf("wrote engine metrics to %s\n", metrics_out.c_str());
    }
    std::printf(
        "\npersistent cache (%s):\n  index  hits %d  misses %d  writes %d\n"
        "  model  hits %d  misses %d  writes %d\n  rejected %d  evicted %d\n",
        cache_dir.c_str(), stats.index_hits, stats.index_misses,
        stats.index_writes, stats.model_hits, stats.model_misses,
        stats.model_writes, stats.rejected, stats.evictions);
    if (expect_warm && (stats.model_hits < 1 || stats.index_hits < 1)) {
      std::fprintf(stderr,
                   "ERROR: --expect-warm but the cache served no hits "
                   "(model %d, index %d)\n",
                   stats.model_hits, stats.index_hits);
      return 1;
    }
  }
  return 0;
}
