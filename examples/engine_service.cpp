// Discovery-engine service demo: a mixed batch of concurrent discovery
// requests, the way a multi-tenant deployment would drive the library.
//
//   * Two datasets ("ellipse" and "hart3" simulations) are analyzed at once.
//   * Five method variants run against each, including three REDS variants
//     that share metamodels through the engine's cross-request cache.
//   * The main thread polls job states while workers run, then prints the
//     per-job results, the aggregated result store, and the cache's
//     amortization statistics.
//
// Build & run:  ./build/examples/engine_service
#include <chrono>
#include <cstdio>
#include <thread>

#include "engine/discovery_engine.h"
#include "functions/datagen.h"
#include "functions/registry.h"
#include "util/table.h"

int main() {
  using namespace reds;

  // "Simulate" two models up front; in a service these arrive per request.
  struct Workload {
    const char* name;
    std::shared_ptr<const Dataset> train;
    std::shared_ptr<const Dataset> test;
  };
  std::vector<Workload> workloads;
  for (const char* name : {"ellipse", "hart3"}) {
    auto function = fun::MakeFunction(name).value();
    const auto design = fun::DefaultDesignFor(*function);
    workloads.push_back(
        {name,
         std::make_shared<const Dataset>(
             fun::MakeScenarioDataset(*function, 300, design, /*seed=*/1)),
         std::make_shared<const Dataset>(
             fun::MakeScenarioDataset(*function, 10000, design, /*seed=*/2))});
  }

  engine::EngineConfig config;
  config.seed = 7;
  engine::DiscoveryEngine engine(config);
  std::printf("discovery engine up: %d worker threads\n\n", engine.threads());

  // Submit the whole mixed batch at once; handles return immediately.
  RunOptions options;
  options.l_prim = 20000;
  options.l_bi = 5000;
  options.tune_metamodel = false;  // keep the demo fast
  std::vector<engine::JobHandle> jobs;
  for (const auto& w : workloads) {
    for (const char* method : {"P", "RPx", "RPxp", "RPf", "BI"}) {
      engine::DiscoveryRequest request;
      request.train = w.train;
      request.test = w.test;
      request.method = method;
      request.options = options;
      request.cell = std::string(w.name) + "|" + method;
      jobs.push_back(engine.Submit(std::move(request)));
    }
  }
  std::printf("submitted %zu jobs; polling...\n", jobs.size());

  // A service would poll (or Wait()) per client; here we watch the batch.
  for (;;) {
    int done = 0;
    for (const auto& job : jobs) done += job->Finished() ? 1 : 0;
    std::printf("  %d/%zu finished\n", done, jobs.size());
    if (done == static_cast<int>(jobs.size())) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  engine.WaitAll();

  std::printf("\nper-job results:\n");
  TablePrinter table("jobs");
  table.SetHeader({"cell", "state", "pr_auc", "precision", "recall",
                   "restricted", "runtime_s"});
  for (const auto& job : jobs) {
    if (job->state() != engine::JobState::kDone) {
      table.AddRow({job->request().cell, "FAILED: " + job->error()});
      continue;
    }
    const engine::MetricSet& m = job->metrics();
    table.AddRow({job->request().cell, "done", FormatDouble(m.pr_auc, 2),
                  FormatDouble(m.precision, 2), FormatDouble(m.recall, 2),
                  FormatDouble(m.restricted, 0),
                  FormatDouble(m.runtime_seconds, 3)});
  }
  table.Print();

  std::printf("\naggregated result store:\n");
  engine.results().SummaryTable("result store").Print();

  const auto& cache = engine.metamodel_cache();
  std::printf(
      "\nmetamodel cache: %d fits, %d hits (%d REDS jobs -> "
      "%d trained metamodels)\n",
      cache.fit_count(), cache.hit_count(),
      cache.fit_count() + cache.hit_count(), cache.size());
  std::printf(
      "without the cache every REDS job would have trained its own "
      "metamodel.\n");
  return 0;
}
