// The streamed REDS contract at the method layer: under
// MethodDataPlan::kStreamed the relabeled points flow RedsRelabelStreamed
// -> BuildStreamed -> RunPrimStreamed and never materialize, yet in the
// exact-pack regime (every sampled column <= 256 distinct values) the
// discovered boxes are bit-identical to the materialized plan's -- across
// metamodel kinds, probability labels, and seeds -- and both ingestion
// paths hash to identical fingerprints, so they share every engine cache
// tier.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/binned_index.h"
#include "core/dataset_source.h"
#include "core/method.h"
#include "core/reds.h"
#include "engine/fingerprint.h"
#include "functions/datagen.h"
#include "functions/registry.h"

namespace reds {
namespace {

// Points on a fixed grid: every column has exactly `distinct` values, so
// streamed quantization packs exactly (BuildKind::kExactPack) and the
// streamed boxes must reproduce the materialized ones bit for bit.
sampling::PointSampler MakeGridSampler(int distinct) {
  return [distinct](Rng* rng, int dim, double* out) {
    for (int j = 0; j < dim; ++j) {
      out[j] = static_cast<double>(
                   rng->UniformInt(static_cast<uint64_t>(distinct))) /
               distinct;
    }
  };
}

Dataset MakeTrainData(uint64_t seed) {
  auto f = fun::MakeFunction("ellipse");
  return fun::MakeScenarioDataset(**f, 200, fun::DesignKind::kLatinHypercube,
                                  seed);
}

RunOptions GridOptions(uint64_t seed, MethodDataPlan plan) {
  RunOptions o;
  o.l_prim = 2000;
  o.tune_metamodel = false;
  o.sampler = MakeGridSampler(64);
  o.seed = seed;
  o.data_plan = plan;
  return o;
}

void ExpectSameOutput(const MethodOutput& a, const MethodOutput& b,
                      const std::string& context) {
  ASSERT_EQ(a.trajectory.size(), b.trajectory.size()) << context;
  for (size_t i = 0; i < a.trajectory.size(); ++i) {
    EXPECT_TRUE(a.trajectory[i] == b.trajectory[i])
        << context << " box " << i;
  }
  EXPECT_TRUE(a.last_box == b.last_box) << context;
  EXPECT_EQ(a.chosen_alpha, b.chosen_alpha) << context;
}

// The equivalence sweep the data plane promises: REDS + PRIM methods x
// seeds, streamed vs materialized, identical boxes in the exact-pack
// regime.
TEST(MethodStreamedTest, StreamedMatchesMaterializedInExactPackRegime) {
  for (const char* method : {"RPf", "RPx", "RPxp"}) {
    for (uint64_t seed : {11ULL, 29ULL}) {
      const Dataset train = MakeTrainData(seed);
      const auto spec = MethodSpec::Parse(method);
      ASSERT_TRUE(spec.ok());
      const MethodOutput streamed = RunMethod(
          *spec, train, GridOptions(seed, MethodDataPlan::kStreamed));
      const MethodOutput materialized = RunMethod(
          *spec, train, GridOptions(seed, MethodDataPlan::kMaterialized));
      ExpectSameOutput(streamed, materialized,
                       std::string(method) + " seed " + std::to_string(seed));
    }
  }
}

// PlanMethod resolves the streamed plan exactly for REDS + plain PRIM;
// BI and bumping keep the materializing fallback no matter the knob.
TEST(MethodStreamedTest, PlanResolvesStreamedOnlyForRedsPrim) {
  const Dataset train = MakeTrainData(3);
  const RunOptions streamed = GridOptions(3, MethodDataPlan::kStreamed);
  const RunOptions materialized = GridOptions(3, MethodDataPlan::kMaterialized);
  EXPECT_TRUE(
      PlanMethod(*MethodSpec::Parse("RPx"), train, streamed).streamed_relabel);
  EXPECT_FALSE(PlanMethod(*MethodSpec::Parse("RPx"), train, materialized)
                   .streamed_relabel);
  for (const char* method : {"P", "Pc", "PB", "BI", "RBIcxp"}) {
    EXPECT_FALSE(PlanMethod(*MethodSpec::Parse(method), train, streamed)
                     .streamed_relabel)
        << method;
  }
}

// Both ingestion paths of the relabeled stream hash identically: the
// streamed source, drained, is bitwise the materialized new_data, and the
// incremental fingerprints BuildStreamed computes equal the in-memory
// hashes -- the keys under which the engine's caches file either path.
TEST(MethodStreamedTest, FingerprintsAgreeAcrossIngestionPaths) {
  const Dataset train = MakeTrainData(7);
  RedsConfig config;
  config.tune_metamodel = false;
  config.num_new_points = 1500;
  config.sampler = MakeGridSampler(32);

  const RedsRelabeling materialized = RedsRelabel(train, config, 19);
  RedsStreamedRelabeling streamed = RedsRelabelStreamed(train, config, 19);

  // Drained stream == materialized relabeled dataset, bit for bit.
  Result<Dataset> drained = ReadAll(streamed.new_data.get(), /*block_rows=*/257);
  ASSERT_TRUE(drained.ok());
  ASSERT_EQ(drained->num_rows(), materialized.new_data.num_rows());
  for (int r = 0; r < drained->num_rows(); ++r) {
    for (int c = 0; c < drained->num_cols(); ++c) {
      ASSERT_EQ(drained->x(r, c), materialized.new_data.x(r, c));
    }
    ASSERT_EQ(drained->y(r), materialized.new_data.y(r));
  }

  // Incremental fingerprints == in-memory fingerprints.
  ASSERT_TRUE(streamed.new_data->Reset().ok());
  auto built = BinnedIndex::BuildStreamed(streamed.new_data.get());
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built->fingerprint,
            engine::FingerprintDataset(materialized.new_data));
  EXPECT_EQ(built->input_fingerprint,
            engine::FingerprintInputs(materialized.new_data));
  EXPECT_EQ(built->index->kind(), BinnedIndex::BuildKind::kExactPack);
}

// The streamed plan is block-size invariant: the relabeling source
// replays one sequential sampler stream, so any stream_block_rows yields
// the same boxes.
TEST(MethodStreamedTest, StreamedPlanIndependentOfBlockSize) {
  const Dataset train = MakeTrainData(5);
  const auto spec = MethodSpec::Parse("RPx");
  ASSERT_TRUE(spec.ok());
  RunOptions base = GridOptions(5, MethodDataPlan::kStreamed);
  const MethodOutput reference = RunMethod(*spec, train, base);
  for (int block : {128, 1024}) {
    RunOptions options = base;
    options.stream_block_rows = block;
    const MethodOutput out = RunMethod(*spec, train, options);
    ExpectSameOutput(reference, out, "block " + std::to_string(block));
  }
}

// With a continuous sampler the stream exceeds the bin budget (sketch
// regime): boxes may deviate within the quantization's rank error, but the
// run must stay deterministic and structurally valid.
TEST(MethodStreamedTest, ContinuousSamplerIsDeterministic) {
  const Dataset train = MakeTrainData(13);
  RunOptions options = GridOptions(13, MethodDataPlan::kStreamed);
  options.sampler = {};  // default uniform: continuous
  const auto spec = MethodSpec::Parse("RPx");
  ASSERT_TRUE(spec.ok());
  const MethodOutput a = RunMethod(*spec, train, options);
  const MethodOutput b = RunMethod(*spec, train, options);
  ExpectSameOutput(a, b, "continuous determinism");
  ASSERT_FALSE(a.trajectory.empty());
  EXPECT_EQ(a.last_box.dim(), train.num_cols());
}

}  // namespace
}  // namespace reds
