// The streaming ingestion layer: every DatasetSource yields the same rows
// as the materialized path for any block size, CSV parsing errors surface
// as Status (not crashes), generator streams are deterministic across
// Reset() and block-size choices, and the incremental fingerprint hashed
// chunk-at-a-time agrees with the in-memory engine fingerprints.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/dataset_source.h"
#include "engine/fingerprint.h"
#include "functions/datagen.h"
#include "functions/registry.h"
#include "util/fingerprint.h"
#include "util/rng.h"
#include "util/table.h"

namespace reds {
namespace {

Dataset MakeData(int n, int dim, uint64_t seed) {
  Rng rng(seed);
  Dataset d(dim);
  std::vector<double> x(static_cast<size_t>(dim));
  for (int i = 0; i < n; ++i) {
    for (auto& v : x) v = rng.Uniform();
    d.AddRow(x, rng.Bernoulli(0.3) ? 1.0 : 0.0);
  }
  return d;
}

void ExpectSameData(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_cols(), b.num_cols());
  for (int r = 0; r < a.num_rows(); ++r) {
    ASSERT_EQ(a.y(r), b.y(r)) << "row " << r;
    for (int c = 0; c < a.num_cols(); ++c) {
      ASSERT_EQ(a.x(r, c), b.x(r, c)) << "row " << r << " col " << c;
    }
  }
}

std::string WriteTempCsv(const Dataset& d, const char* name) {
  const std::string path = ::testing::TempDir() + name;
  std::vector<std::string> header;
  for (int c = 0; c < d.num_cols(); ++c) {
    header.push_back("x" + std::to_string(c));
  }
  header.push_back("y");
  CsvWriter csv(header);
  for (int r = 0; r < d.num_rows(); ++r) {
    std::vector<double> row(d.row(r), d.row(r) + d.num_cols());
    row.push_back(d.y(r));
    csv.AddRow(row);
  }
  EXPECT_TRUE(csv.WriteFile(path).ok());
  return path;
}

TEST(MatrixSourceTest, RoundTripsForAnyBlockSize) {
  const auto data = std::make_shared<Dataset>(MakeData(537, 3, 1));
  for (int block : {1, 7, 64, 537, 4096}) {
    MatrixSource source(data);
    const auto out = ReadAll(&source, block);
    ASSERT_TRUE(out.ok());
    ExpectSameData(*data, *out);
  }
  MatrixSource source(data);
  EXPECT_EQ(source.num_rows_hint(), 537);
}

TEST(CsvFileSourceTest, MatchesTheMaterializedReader) {
  const Dataset d = MakeData(211, 4, 2);
  const std::string path = WriteTempCsv(d, "stream_roundtrip.csv");
  auto source = CsvFileSource::Open(path);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  EXPECT_EQ((*source)->num_cols(), 4);
  EXPECT_EQ((*source)->num_rows_hint(), -1);
  EXPECT_EQ((*source)->column_names().size(), 4u);
  EXPECT_EQ((*source)->target_name(), "y");
  for (int block : {1, 13, 1000}) {
    const auto out = ReadAll(source->get(), block);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    ExpectSameData(d, *out);  // CsvWriter writes round-trip-exact digits
  }
}

TEST(CsvFileSourceTest, RejectsMissingRaggedAndNonNumeric) {
  EXPECT_FALSE(CsvFileSource::Open("/does/not/exist.csv").ok());

  const std::string ragged = ::testing::TempDir() + "stream_ragged.csv";
  {
    std::FILE* f = std::fopen(ragged.c_str(), "w");
    std::fputs("a,b,y\n1,2,0\n1,2\n", f);
    std::fclose(f);
  }
  auto source = CsvFileSource::Open(ragged);
  ASSERT_TRUE(source.ok());
  auto first = (*source)->NextBlock(1);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE((*source)->NextBlock(8).ok());

  const std::string bad = ::testing::TempDir() + "stream_nonnum.csv";
  {
    std::FILE* f = std::fopen(bad.c_str(), "w");
    std::fputs("a,y\noops,1\n", f);
    std::fclose(f);
  }
  auto bad_source = CsvFileSource::Open(bad);
  ASSERT_TRUE(bad_source.ok());
  EXPECT_FALSE((*bad_source)->NextBlock(8).ok());
}

TEST(FunctionSourceTest, DeterministicAcrossResetAndBlockSizes) {
  auto f = fun::MakeFunction("borehole");
  ASSERT_TRUE(f.ok());
  fun::FunctionSource source(**f, 300, 42);
  EXPECT_EQ(source.num_cols(), (*f)->dim());
  EXPECT_EQ(source.num_rows_hint(), 300);
  const auto a = ReadAll(&source, 17);
  ASSERT_TRUE(a.ok());
  const auto b = ReadAll(&source, 256);  // ReadAll resets the source
  ASSERT_TRUE(b.ok());
  ExpectSameData(*a, *b);
  EXPECT_EQ(a->num_rows(), 300);
  // Labels are plausible: some positives under the paper's lake share.
  EXPECT_GT(a->TotalPositive(), 0.0);
  EXPECT_LT(a->TotalPositive(), 300.0);
}

TEST(LabelingSourceTest, ReplacesTargetsStreamside) {
  const auto data = std::make_shared<Dataset>(MakeData(100, 2, 3));
  MatrixSource inner(data);
  LabelingSource relabeled(&inner,
                           [](const double* x) { return x[0] > 0.5 ? 1.0 : 0.0; });
  const auto out = ReadAll(&relabeled, 9);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 100);
  for (int r = 0; r < 100; ++r) {
    EXPECT_EQ(out->y(r), data->x(r, 0) > 0.5 ? 1.0 : 0.0);
    EXPECT_EQ(out->x(r, 1), data->x(r, 1));
  }
}

// The satellite contract: fingerprints hashed incrementally over the chunk
// stream -- any chunking -- equal the in-memory FingerprintDataset /
// FingerprintInputs of the materialized dataset.
TEST(FingerprintStreamTest, ChunkedHashingMatchesInMemoryPath) {
  const Dataset d = MakeData(173, 5, 4);
  const uint64_t full = engine::FingerprintDataset(d);
  const uint64_t inputs = engine::FingerprintInputs(d);
  EXPECT_NE(full, inputs);

  const auto shared = std::make_shared<Dataset>(d);
  for (int block : {1, 7, 64, 173, 500}) {
    util::DatasetHasher full_hasher(util::DatasetHasher::Scope::kFull, 5);
    util::DatasetHasher input_hasher(util::DatasetHasher::Scope::kInputs, 5);
    MatrixSource source(shared);
    ASSERT_TRUE(source.Reset().ok());
    for (;;) {
      auto rows = source.NextBlock(block);
      ASSERT_TRUE(rows.ok());
      if (rows->empty()) break;
      full_hasher.AddRows(rows->x.data(), rows->y, rows->num_rows());
      input_hasher.AddRows(rows->x.data(), nullptr, rows->num_rows());
    }
    EXPECT_EQ(full_hasher.Finalize(), full) << "block " << block;
    EXPECT_EQ(input_hasher.Finalize(), inputs) << "block " << block;
  }
}

// Streamed CSV data fingerprints equal the in-memory fingerprints of the
// same rows -- the cross-path guarantee the persistent cache key relies on.
TEST(FingerprintStreamTest, CsvStreamAgreesWithInMemory) {
  const Dataset d = MakeData(90, 3, 5);
  const std::string path = WriteTempCsv(d, "stream_fingerprint.csv");
  auto source = CsvFileSource::Open(path);
  ASSERT_TRUE(source.ok());
  util::DatasetHasher hasher(util::DatasetHasher::Scope::kFull, 3);
  for (;;) {
    auto rows = (*source)->NextBlock(11);
    ASSERT_TRUE(rows.ok());
    if (rows->empty()) break;
    hasher.AddRows(rows->x.data(), rows->y, rows->num_rows());
  }
  EXPECT_EQ(hasher.Finalize(), engine::FingerprintDataset(d));
}

}  // namespace
}  // namespace reds
