// Parameterized property sweep over every method spec the paper names:
// shared invariants that must hold for any (method, data) combination.
#include <gtest/gtest.h>

#include <cmath>

#include "core/method.h"
#include "core/quality.h"
#include "functions/datagen.h"
#include "functions/registry.h"

namespace reds {
namespace {

const std::string kAllMethods[] = {"P",    "Pc",   "PB",    "PBc",    "BI",
                                   "BI5",  "BIc",  "RPf",   "RPx",    "RPs",
                                   "RPxp", "RPfp", "RPcxp", "RBIcfp", "RBIcxp"};

class MethodSweepTest : public ::testing::TestWithParam<std::string> {
 protected:
  static const Dataset& TrainData() {
    static const Dataset d = [] {
      auto f = fun::MakeFunction("ellipse");
      return fun::MakeScenarioDataset(**f, 250,
                                      fun::DesignKind::kLatinHypercube, 3);
    }();
    return d;
  }
  static RunOptions QuickOptions() {
    RunOptions o;
    o.l_prim = 1500;
    o.l_bi = 800;
    o.bumping_q = 8;
    o.cv_folds = 3;
    o.tune_metamodel = false;
    o.seed = 11;
    return o;
  }
};

TEST_P(MethodSweepTest, ProducesValidOutput) {
  const auto spec = MethodSpec::Parse(GetParam());
  ASSERT_TRUE(spec.ok());
  const MethodOutput out = RunMethod(*spec, TrainData(), QuickOptions());

  ASSERT_FALSE(out.trajectory.empty());
  EXPECT_EQ(out.last_box.dim(), TrainData().num_cols());
  for (const Box& b : out.trajectory) {
    EXPECT_EQ(b.dim(), TrainData().num_cols());
    EXPECT_LE(b.NumRestricted(), TrainData().num_cols());
  }
  EXPECT_GE(out.runtime_seconds, 0.0);
  EXPECT_GT(out.chosen_alpha, 0.0);
  EXPECT_LT(out.chosen_alpha, 0.5);
}

TEST_P(MethodSweepTest, DeterministicForSameSeed) {
  const auto spec = MethodSpec::Parse(GetParam());
  ASSERT_TRUE(spec.ok());
  const MethodOutput a = RunMethod(*spec, TrainData(), QuickOptions());
  const MethodOutput b = RunMethod(*spec, TrainData(), QuickOptions());
  EXPECT_TRUE(a.last_box == b.last_box) << GetParam();
  ASSERT_EQ(a.trajectory.size(), b.trajectory.size());
}

TEST_P(MethodSweepTest, LastBoxBelongsToTrajectory) {
  const auto spec = MethodSpec::Parse(GetParam());
  ASSERT_TRUE(spec.ok());
  const MethodOutput out = RunMethod(*spec, TrainData(), QuickOptions());
  bool found = false;
  for (const Box& b : out.trajectory) found = found || b == out.last_box;
  EXPECT_TRUE(found);
}

TEST_P(MethodSweepTest, TrajectoryIsUsableForPrAuc) {
  const auto spec = MethodSpec::Parse(GetParam());
  ASSERT_TRUE(spec.ok());
  const MethodOutput out = RunMethod(*spec, TrainData(), QuickOptions());
  const double auc = PrAucOnData(out.trajectory, TrainData());
  EXPECT_GE(auc, 0.0);
  EXPECT_LE(auc, 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllMethods, MethodSweepTest,
                         ::testing::ValuesIn(kAllMethods),
                         [](const auto& info) { return info.param; });

// PRIM-family-specific invariant: trajectories are nested for plain PRIM
// (bumping's Pareto set is not nested, BI has one box).
class PrimFamilySweepTest : public MethodSweepTest {};

TEST_P(PrimFamilySweepTest, TrajectoryBoxesShrink) {
  const auto spec = MethodSpec::Parse(GetParam());
  ASSERT_TRUE(spec.ok());
  const MethodOutput out = RunMethod(*spec, TrainData(), QuickOptions());
  for (size_t i = 1; i < out.trajectory.size(); ++i) {
    for (int j = 0; j < out.trajectory[i].dim(); ++j) {
      EXPECT_LE(out.trajectory[i - 1].lo(j), out.trajectory[i].lo(j));
      EXPECT_GE(out.trajectory[i - 1].hi(j), out.trajectory[i].hi(j));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PrimMethods, PrimFamilySweepTest,
                         ::testing::Values("P", "Pc", "RPf", "RPx", "RPxp"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace reds
