// Tests for the method-spec parser and the unified method runner.
#include <gtest/gtest.h>

#include "core/method.h"
#include "functions/datagen.h"
#include "functions/registry.h"

namespace reds {
namespace {

TEST(MethodSpecTest, ParsesPaperNames) {
  const struct {
    const char* name;
    MethodSpec::Family family;
    bool tuned, reds, prob;
    int beam;
  } cases[] = {
      {"P", MethodSpec::Family::kPrim, false, false, false, 1},
      {"Pc", MethodSpec::Family::kPrim, true, false, false, 1},
      {"PB", MethodSpec::Family::kPrimBumping, false, false, false, 1},
      {"PBc", MethodSpec::Family::kPrimBumping, true, false, false, 1},
      {"BI", MethodSpec::Family::kBi, false, false, false, 1},
      {"BI5", MethodSpec::Family::kBi, false, false, false, 5},
      {"BIc", MethodSpec::Family::kBi, true, false, false, 1},
      {"RPf", MethodSpec::Family::kPrim, false, true, false, 1},
      {"RPx", MethodSpec::Family::kPrim, false, true, false, 1},
      {"RPs", MethodSpec::Family::kPrim, false, true, false, 1},
      {"RPxp", MethodSpec::Family::kPrim, false, true, true, 1},
      {"RPcxp", MethodSpec::Family::kPrim, true, true, true, 1},
      {"RBIcxp", MethodSpec::Family::kBi, true, true, true, 1},
      {"RBIcfp", MethodSpec::Family::kBi, true, true, true, 1},
  };
  for (const auto& c : cases) {
    auto spec = MethodSpec::Parse(c.name);
    ASSERT_TRUE(spec.ok()) << c.name;
    EXPECT_EQ(spec->family, c.family) << c.name;
    EXPECT_EQ(spec->tuned, c.tuned) << c.name;
    EXPECT_EQ(spec->reds, c.reds) << c.name;
    EXPECT_EQ(spec->probability_labels, c.prob) << c.name;
    EXPECT_EQ(spec->beam_size, c.beam) << c.name;
    EXPECT_EQ(spec->ToName(), c.name) << "round trip";
  }
}

TEST(MethodSpecTest, MetamodelLetters) {
  EXPECT_EQ(MethodSpec::Parse("RPf")->metamodel,
            ml::MetamodelKind::kRandomForest);
  EXPECT_EQ(MethodSpec::Parse("RPx")->metamodel, ml::MetamodelKind::kGbt);
  EXPECT_EQ(MethodSpec::Parse("RPs")->metamodel, ml::MetamodelKind::kSvm);
}

TEST(MethodSpecTest, RejectsGarbage) {
  for (const char* bad : {"", "Q", "Rp", "RP", "Pcc", "BIx", "PBq", "RPz",
                          "Pp", "RPxq"}) {
    EXPECT_FALSE(MethodSpec::Parse(bad).ok()) << bad;
  }
}

TEST(MGridTest, MatchesPaperFormula) {
  // M = 20: ceil(20/6) = 4 -> {20, 16, 12, 8, 4}.
  EXPECT_EQ(MGrid(20), (std::vector<int>{20, 16, 12, 8, 4}));
  // M = 5: ceil(5/6) = 1 -> {5, 4, 3, 2, 1}.
  EXPECT_EQ(MGrid(5), (std::vector<int>{5, 4, 3, 2, 1}));
}

class MethodRunTest : public ::testing::Test {
 protected:
  static Dataset MakeData() {
    auto f = fun::MakeFunction("ellipse");
    return fun::MakeScenarioDataset(**f, 300, fun::DesignKind::kLatinHypercube,
                                    17);
  }
  static RunOptions QuickOptions() {
    RunOptions o;
    o.l_prim = 2000;
    o.l_bi = 1000;
    o.bumping_q = 10;
    o.cv_folds = 3;
    o.budget = ml::TuningBudget::kQuick;
    o.tune_metamodel = false;
    o.seed = 5;
    return o;
  }
};

TEST_F(MethodRunTest, PlainPrimProducesTrajectory) {
  const Dataset d = MakeData();
  const MethodOutput out = RunMethod(*MethodSpec::Parse("P"), d, QuickOptions());
  EXPECT_GT(out.trajectory.size(), 3u);
  EXPECT_DOUBLE_EQ(out.chosen_alpha, 0.05);
  EXPECT_GT(out.runtime_seconds, 0.0);
}

TEST_F(MethodRunTest, TunedPrimPicksAlphaFromGrid) {
  const Dataset d = MakeData();
  const MethodOutput out =
      RunMethod(*MethodSpec::Parse("Pc"), d, QuickOptions());
  const std::vector<double> grid{0.03, 0.05, 0.07, 0.1, 0.13, 0.16, 0.2};
  bool found = false;
  for (double a : grid) found = found || a == out.chosen_alpha;
  EXPECT_TRUE(found) << out.chosen_alpha;
}

TEST_F(MethodRunTest, BumpingReturnsParetoBoxes) {
  const Dataset d = MakeData();
  const MethodOutput out =
      RunMethod(*MethodSpec::Parse("PB"), d, QuickOptions());
  EXPECT_FALSE(out.trajectory.empty());
}

TEST_F(MethodRunTest, BiReturnsSingleBox) {
  const Dataset d = MakeData();
  const MethodOutput out =
      RunMethod(*MethodSpec::Parse("BI"), d, QuickOptions());
  EXPECT_EQ(out.trajectory.size(), 1u);
}

TEST_F(MethodRunTest, RedsPrimRunsOnRelabeledData) {
  const Dataset d = MakeData();
  const MethodOutput out =
      RunMethod(*MethodSpec::Parse("RPx"), d, QuickOptions());
  EXPECT_GT(out.trajectory.size(), 3u);
  EXPECT_EQ(out.last_box.dim(), d.num_cols());
}

TEST_F(MethodRunTest, RedsBiWithProbabilityLabels) {
  const Dataset d = MakeData();
  RunOptions o = QuickOptions();
  const MethodOutput out = RunMethod(*MethodSpec::Parse("RBIcxp"), d, o);
  EXPECT_EQ(out.trajectory.size(), 1u);
  EXPECT_GE(out.chosen_m, 1);
  EXPECT_LE(out.last_box.NumRestricted(), out.chosen_m);
}

TEST_F(MethodRunTest, DeterministicForSameSeed) {
  const Dataset d = MakeData();
  const auto a = RunMethod(*MethodSpec::Parse("RPf"), d, QuickOptions());
  const auto b = RunMethod(*MethodSpec::Parse("RPf"), d, QuickOptions());
  EXPECT_TRUE(a.last_box == b.last_box);
}

}  // namespace
}  // namespace reds
