// The streaming data plane equivalence contract: BuildStreamed reproduces
// the exact in-memory quantization bit for bit when every column has at
// most max_bins distinct values (any block size, any thread count, CSV or
// in-memory source), RunPrimStreamed then reproduces RunPrim's boxes bit
// for bit on such data ({0,1} and fractional labels alike), and on
// continuous data the streamed boxes stay within the binning's bounded
// rank error of the exact kernel's.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "core/binned_index.h"
#include "core/dataset_source.h"
#include "core/prim.h"
#include "engine/fingerprint.h"
#include "util/rng.h"
#include "util/table.h"

namespace reds {
namespace {

// distinct_values > 0: every column takes values on a grid of that size
// (the exact-equivalence regime); 0: continuous.
Dataset MakeData(int n, int dim, uint64_t seed, int distinct_values,
                 bool fractional_labels = false) {
  Rng rng(seed);
  Dataset d(dim);
  std::vector<double> x(static_cast<size_t>(dim));
  for (int i = 0; i < n; ++i) {
    for (auto& v : x) {
      v = distinct_values > 0
              ? static_cast<double>(rng.UniformInt(
                    static_cast<uint64_t>(distinct_values))) /
                    distinct_values
              : rng.Uniform();
    }
    const double p = (x[0] < 0.45 && x[1 % dim] > 0.3) ? 0.8 : 0.15;
    double y = rng.Bernoulli(p) ? 1.0 : 0.0;
    if (fractional_labels) {
      y = 0.25 * static_cast<double>(rng.UniformInt(5));  // {0,.25,...,1}
    }
    d.AddRow(x, y);
  }
  return d;
}

void ExpectSameIndex(const BinnedIndex& a, const BinnedIndex& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_cols(), b.num_cols());
  for (int j = 0; j < a.num_cols(); ++j) {
    ASSERT_EQ(a.num_bins(j), b.num_bins(j)) << "col " << j;
    EXPECT_EQ(a.codes(j), b.codes(j)) << "col " << j;
    for (int b_idx = 0; b_idx < a.num_bins(j); ++b_idx) {
      EXPECT_EQ(a.bin_first(j, b_idx), b.bin_first(j, b_idx));
      EXPECT_EQ(a.bin_last(j, b_idx), b.bin_last(j, b_idx));
      EXPECT_EQ(a.bin_begin_rank(j, b_idx), b.bin_begin_rank(j, b_idx));
    }
    EXPECT_EQ(a.bin_begin_rank(j, a.num_bins(j)),
              b.bin_begin_rank(j, b.num_bins(j)));
  }
}

void ExpectSamePrim(const PrimResult& a, const PrimResult& b) {
  ASSERT_EQ(a.boxes.size(), b.boxes.size());
  EXPECT_EQ(a.best_val_index, b.best_val_index);
  for (size_t i = 0; i < a.boxes.size(); ++i) {
    EXPECT_TRUE(a.boxes[i] == b.boxes[i]) << "box " << i;
  }
  ASSERT_EQ(a.train_curve.size(), b.train_curve.size());
  for (size_t i = 0; i < a.train_curve.size(); ++i) {
    EXPECT_EQ(a.train_curve[i].precision, b.train_curve[i].precision);
    EXPECT_EQ(a.train_curve[i].recall, b.train_curve[i].recall);
  }
}

std::vector<double> Labels(const Dataset& d) {
  return std::vector<double>(d.y_data(), d.y_data() + d.num_rows());
}

TEST(StreamedBuildTest, MatchesExactPackOnDiscreteData) {
  const auto data = std::make_shared<Dataset>(MakeData(1500, 4, 1, 23));
  const auto exact = BinnedIndex::Build(*data);
  for (int block : {64, 257, 5000}) {
    for (int threads : {1, 3}) {
      MatrixSource source(data);
      StreamedBuildOptions options;
      options.block_rows = block;
      options.threads = threads;
      auto streamed = BinnedIndex::BuildStreamed(&source, options);
      ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
      EXPECT_EQ(streamed->index->kind(), BinnedIndex::BuildKind::kExactPack);
      EXPECT_TRUE(streamed->index->has_sorted_rows());
      ExpectSameIndex(*exact, *streamed->index);
      EXPECT_EQ(streamed->y, Labels(*data));
      EXPECT_EQ(streamed->fingerprint, engine::FingerprintDataset(*data));
      EXPECT_EQ(streamed->input_fingerprint,
                engine::FingerprintInputs(*data));
    }
  }
}

TEST(StreamedBuildTest, OwnPermutationMatchesColumnIndexOnDiscreteData) {
  const auto data = std::make_shared<Dataset>(MakeData(800, 3, 2, 17));
  const auto column_index = ColumnIndex::Build(*data);
  MatrixSource source(data);
  auto streamed = BinnedIndex::BuildStreamed(&source);
  ASSERT_TRUE(streamed.ok());
  for (int j = 0; j < 3; ++j) {
    EXPECT_EQ(streamed->index->sorted_rows(j), column_index->sorted_rows(j));
  }
}

TEST(StreamedPrimTest, BitIdenticalToExactKernelOnDiscreteData) {
  for (const bool fractional : {false, true}) {
    const auto data =
        std::make_shared<Dataset>(MakeData(2000, 4, 3, 21, fractional));
    PrimConfig config;
    config.alpha = 0.07;
    config.backend = PrimPeelBackend::kSorted;
    const PrimResult exact = RunPrim(*data, *data, config);

    MatrixSource source(data);
    auto streamed = BinnedIndex::BuildStreamed(&source);
    ASSERT_TRUE(streamed.ok());
    const PrimResult from_stream =
        RunPrimStreamed(*streamed->index, streamed->y, config);
    ExpectSamePrim(exact, from_stream);
  }
}

TEST(StreamedPrimTest, CsvStreamReproducesInMemoryBoxes) {
  const Dataset d = MakeData(1200, 3, 4, 19);
  const std::string path = ::testing::TempDir() + "streamed_prim.csv";
  CsvWriter csv({"a", "b", "c", "y"});
  for (int r = 0; r < d.num_rows(); ++r) {
    csv.AddRow({d.x(r, 0), d.x(r, 1), d.x(r, 2), d.y(r)});
  }
  ASSERT_TRUE(csv.WriteFile(path).ok());

  PrimConfig config;
  const PrimResult exact = RunPrim(d, d, config);

  auto source = CsvFileSource::Open(path);
  ASSERT_TRUE(source.ok());
  StreamedBuildOptions options;
  options.block_rows = 100;  // many blocks, two passes over the file
  auto streamed = BinnedIndex::BuildStreamed(source->get(), options);
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
  EXPECT_EQ(streamed->fingerprint, engine::FingerprintDataset(d));
  const PrimResult from_stream =
      RunPrimStreamed(*streamed->index, streamed->y, config);
  ExpectSamePrim(exact, from_stream);
}

// Continuous columns exceed the bin budget, so bounds snap to sketch-binned
// boundaries: the streamed box must stay close to the exact one -- every
// restricted bound within the quantization's bounded rank error, and the
// selected box's training precision within a small delta.
TEST(StreamedPrimTest, BoundedErrorOnContinuousData) {
  const auto data = std::make_shared<Dataset>(MakeData(4000, 3, 5, 0));
  PrimConfig config;
  config.backend = PrimPeelBackend::kSorted;
  const PrimResult exact = RunPrim(*data, *data, config);

  MatrixSource source(data);
  auto streamed = BinnedIndex::BuildStreamed(&source);
  ASSERT_TRUE(streamed.ok());
  EXPECT_EQ(streamed->index->kind(), BinnedIndex::BuildKind::kSketch);
  const PrimResult from_stream =
      RunPrimStreamed(*streamed->index, streamed->y, config);

  const auto& exact_curve = exact.val_curve;
  const auto& stream_curve = from_stream.val_curve;
  const double exact_best =
      exact_curve[static_cast<size_t>(exact.best_val_index)].precision;
  const double stream_best =
      stream_curve[static_cast<size_t>(from_stream.best_val_index)].precision;
  // 256 quantile bins on 4000 rows: each peel is off by at most a bin
  // (~16 rows). Individual peel sequences may diverge (greedy choices
  // compound bin-level noise), but the discovered subgroup's quality must
  // agree closely.
  EXPECT_NEAR(exact_best, stream_best, 0.05);
  const double exact_recall =
      exact_curve[static_cast<size_t>(exact.best_val_index)].recall;
  const double stream_recall =
      stream_curve[static_cast<size_t>(from_stream.best_val_index)].recall;
  EXPECT_NEAR(exact_recall, stream_recall, 0.15);
  // Every streamed bound is an actual bin boundary of the quantization --
  // the "snaps to bin boundaries" contract, checkable exactly.
  const Box& b = from_stream.BestBox();
  for (int j = 0; j < 3; ++j) {
    if (std::isfinite(b.lo(j))) {
      const int bin = streamed->index->BinOf(j, b.lo(j));
      EXPECT_EQ(b.lo(j), streamed->index->bin_first(j, bin)) << "dim " << j;
    }
    if (std::isfinite(b.hi(j))) {
      const int bin = streamed->index->BinOf(j, b.hi(j));
      EXPECT_EQ(b.hi(j), streamed->index->bin_last(j, bin)) << "dim " << j;
    }
  }
}

// The determinism contract on the sketch path (not just the exact-pack
// path): for a given block_rows, continuous (>max_bins-distinct) columns
// must bin identically on any thread count, because per-block sketches
// fold in block order either way.
TEST(StreamedBuildTest, SketchPathIdenticalAcrossThreadCounts) {
  const auto data = std::make_shared<Dataset>(MakeData(5000, 3, 6, 0));
  StreamedBuildOptions serial;
  serial.block_rows = 512;
  MatrixSource source_a(data);
  auto a = BinnedIndex::BuildStreamed(&source_a, serial);
  ASSERT_TRUE(a.ok());
  ASSERT_EQ(a->index->kind(), BinnedIndex::BuildKind::kSketch);
  for (const int threads : {2, 4}) {
    StreamedBuildOptions parallel = serial;
    parallel.threads = threads;
    MatrixSource source_b(data);
    auto b = BinnedIndex::BuildStreamed(&source_b, parallel);
    ASSERT_TRUE(b.ok());
    ExpectSameIndex(*a->index, *b->index);
  }
}

TEST(StreamedBuildTest, RejectsEmptyStreams) {
  const auto data = std::make_shared<Dataset>(Dataset(3));
  MatrixSource source(data);
  EXPECT_FALSE(BinnedIndex::BuildStreamed(&source).ok());
}

}  // namespace
}  // namespace reds
