// Frame-layer hardening against hostile peers and nonblocking transports:
// the incremental FrameDecoder must extract frames fed a byte at a time,
// reject an oversized declared length from the header alone (before any
// payload is buffered), and stay failed once the stream is garbage; the
// FrameWriteQueue must survive short writes / EAGAIN on a full socket and
// deliver byte-identical frames once the reader drains. The net protocol
// payloads round-trip and fail softly on truncation and corrupted lengths.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <string>
#include <vector>

#include "net/protocol.h"
#include "shard/wire.h"

namespace reds::shard {
namespace {

std::string Payload(size_t n, char fill) { return std::string(n, fill); }

TEST(FrameDecoderTest, ExtractsFramesFedByteByByte) {
  const std::string wire = EncodeFrame(MsgType::kPing, "") +
                           EncodeFrame(MsgType::kSubmit, Payload(1000, 'a')) +
                           EncodeFrame(MsgType::kError, "oops");
  FrameDecoder decoder;
  std::vector<Frame> frames;
  Frame frame;
  for (char byte : wire) {
    ASSERT_TRUE(decoder.Feed(&byte, 1).ok());
    while (decoder.Next(&frame)) frames.push_back(frame);
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].type, MsgType::kPing);
  EXPECT_TRUE(frames[0].payload.empty());
  EXPECT_EQ(frames[1].type, MsgType::kSubmit);
  EXPECT_EQ(frames[1].payload, Payload(1000, 'a'));
  EXPECT_EQ(frames[2].type, MsgType::kError);
  EXPECT_EQ(frames[2].payload, "oops");
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(FrameDecoderTest, ExtractsFramesFromOneBigFeed) {
  std::string wire;
  for (int i = 0; i < 50; ++i) {
    wire += EncodeFrame(MsgType::kPong, Payload(static_cast<size_t>(i), 'x'));
  }
  FrameDecoder decoder;
  ASSERT_TRUE(decoder.Feed(wire.data(), wire.size()).ok());
  Frame frame;
  int count = 0;
  while (decoder.Next(&frame)) {
    EXPECT_EQ(frame.payload.size(), static_cast<size_t>(count));
    ++count;
  }
  EXPECT_EQ(count, 50);
}

TEST(FrameDecoderTest, RejectsOversizedLengthFromHeaderAlone) {
  // Declare 1 GiB against a 1 KiB cap: the decoder must fail as soon as
  // the 5 header bytes are in -- a hostile peer cannot stage a huge
  // allocation by declaring a length it never sends.
  util::ByteWriter header;
  header.U32(1u << 30);
  header.U8(static_cast<uint8_t>(MsgType::kSubmit));
  FrameDecoder decoder(/*max_payload=*/1024);
  Status s = decoder.Feed(header.data().data(), header.data().size());
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("oversized"), std::string::npos);
  // Failed means failed: even valid bytes are rejected from here on.
  Frame frame;
  EXPECT_FALSE(decoder.Next(&frame));
  const std::string good = EncodeFrame(MsgType::kPing, "");
  EXPECT_FALSE(decoder.Feed(good.data(), good.size()).ok());
  EXPECT_FALSE(decoder.Next(&frame));
}

TEST(FrameDecoderTest, OversizeAfterAValidFrameStillRejects) {
  const std::string good = EncodeFrame(MsgType::kPing, "ok");
  util::ByteWriter bad;
  bad.U32(1u << 31);
  bad.U8(7);
  FrameDecoder decoder(/*max_payload=*/4096);
  std::string wire = good + bad.data();
  // The valid frame parses; the next header fails eagerly inside Next().
  Status s = decoder.Feed(wire.data(), wire.size());
  Frame frame;
  if (s.ok()) {
    EXPECT_TRUE(decoder.Next(&frame));
    EXPECT_EQ(frame.payload, "ok");
    EXPECT_FALSE(decoder.Next(&frame));
    // The poisoned header is now at the front; any further feed fails.
    EXPECT_FALSE(decoder.Feed("", 0).ok());
  } else {
    EXPECT_NE(s.message().find("oversized"), std::string::npos);
  }
}

TEST(FrameDecoderTest, TruncatedFrameNeverSurfaces) {
  const std::string wire = EncodeFrame(MsgType::kSubmit, Payload(64, 'z'));
  FrameDecoder decoder;
  ASSERT_TRUE(decoder.Feed(wire.data(), wire.size() - 1).ok());
  Frame frame;
  EXPECT_FALSE(decoder.Next(&frame));
  EXPECT_EQ(decoder.buffered_bytes(), wire.size() - 1);
  // The missing byte completes it.
  ASSERT_TRUE(decoder.Feed(wire.data() + wire.size() - 1, 1).ok());
  ASSERT_TRUE(decoder.Next(&frame));
  EXPECT_EQ(frame.payload, Payload(64, 'z'));
}

TEST(FrameDecoderTest, CompactionKeepsLongLivedConnectionsBounded) {
  FrameDecoder decoder;
  const std::string wire = EncodeFrame(MsgType::kPong, Payload(512, 'b'));
  Frame frame;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(decoder.Feed(wire.data(), wire.size()).ok());
    ASSERT_TRUE(decoder.Next(&frame));
    EXPECT_FALSE(decoder.Next(&frame));
  }
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

class WriteQueueTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
    // Nonblocking writer with the smallest buffer the kernel allows, so a
    // modest frame reliably hits EAGAIN mid-frame.
    const int flags = ::fcntl(fds_[0], F_GETFL, 0);
    ASSERT_EQ(::fcntl(fds_[0], F_SETFL, flags | O_NONBLOCK), 0);
    const int small = 1;  // clamped up to SOCK_MIN_SNDBUF by the kernel
    ::setsockopt(fds_[0], SOL_SOCKET, SO_SNDBUF, &small, sizeof(small));
  }
  void TearDown() override {
    ::close(fds_[0]);
    ::close(fds_[1]);
  }

  int fds_[2];  // [0] = nonblocking writer, [1] = blocking reader
};

TEST_F(WriteQueueTest, ShortWritesAndEagainDeliverFramesIntact) {
  FrameWriteQueue queue;
  std::vector<std::string> payloads;
  for (int i = 0; i < 4; ++i) {
    payloads.push_back(std::string(150000 + i, static_cast<char>('a' + i)));
    queue.Push(MsgType::kResultBoxes, payloads.back());
  }
  const size_t total = queue.pending_bytes();
  ASSERT_GT(total, 500000u);

  // Interleave blocked flushes with reader drains until everything lands.
  FrameDecoder decoder;
  std::vector<Frame> received;
  char buf[8192];
  bool saw_block = false;
  int spins = 0;
  while (!queue.empty()) {
    bool blocked = false;
    ASSERT_TRUE(queue.Flush(fds_[0], &blocked).ok());
    if (blocked) {
      saw_block = true;
      const ssize_t r = ::read(fds_[1], buf, sizeof(buf));
      ASSERT_GT(r, 0);
      ASSERT_TRUE(decoder.Feed(buf, static_cast<size_t>(r)).ok());
      Frame frame;
      while (decoder.Next(&frame)) received.push_back(std::move(frame));
    }
    ASSERT_LT(++spins, 1000000);
  }
  EXPECT_TRUE(saw_block) << "frames fit the socket buffer; EAGAIN untested";
  EXPECT_EQ(queue.pending_bytes(), 0u);

  // Drain the tail.
  ::close(fds_[0]);
  fds_[0] = ::open("/dev/null", O_WRONLY);  // keep TearDown's close valid
  ssize_t r;
  while ((r = ::read(fds_[1], buf, sizeof(buf))) > 0) {
    ASSERT_TRUE(decoder.Feed(buf, static_cast<size_t>(r)).ok());
  }
  Frame frame;
  while (decoder.Next(&frame)) received.push_back(std::move(frame));

  ASSERT_EQ(received.size(), payloads.size());
  for (size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_EQ(received[i].type, MsgType::kResultBoxes);
    EXPECT_EQ(received[i].payload, payloads[i]) << i;
  }
}

TEST_F(WriteQueueTest, PeerGoneSurfacesAsIoErrorNotSigpipe) {
  ::close(fds_[1]);
  fds_[1] = ::open("/dev/null", O_RDONLY);
  FrameWriteQueue queue;
  queue.Push(MsgType::kPong, std::string(100000, 'q'));
  bool blocked = false;
  Status s = Status::OK();
  for (int i = 0; i < 64 && s.ok() && !queue.empty(); ++i) {
    s = queue.Flush(fds_[0], &blocked);
  }
  EXPECT_FALSE(s.ok());
}

}  // namespace
}  // namespace reds::shard

namespace reds::net {
namespace {

template <typename T>
std::string Bytes(const T& msg) {
  util::ByteWriter w;
  msg.SerializeTo(&w);
  return w.data();
}

Box MakeBox(int dim, double base) {
  Box box = Box::Unbounded(dim);
  for (int j = 0; j < dim; ++j) {
    box.set_lo(j, base + j);
    if (j % 2 == 0) box.set_hi(j, base + j + 0.5);
  }
  return box;
}

TEST(NetProtocolTest, SubmitRoundTrip) {
  SubmitRequest msg;
  msg.request_id = 77;
  msg.method = "RPx";
  msg.data_mode = DataMode::kStreamedSource;
  msg.source.rows = 12345;
  msg.source.dims = 7;
  msg.source.distinct = 64;
  msg.source.seed = 99;
  msg.alpha = 0.07;
  msg.min_points = 25;
  msg.l_prim = 20000;
  msg.options_seed = 5;
  msg.tune_metamodel = true;
  msg.want_boxes = true;
  Result<SubmitRequest> back = SubmitRequest::Parse(Bytes(msg));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->request_id, 77u);
  EXPECT_EQ(back->method, "RPx");
  EXPECT_EQ(back->data_mode, DataMode::kStreamedSource);
  EXPECT_EQ(back->source.rows, 12345);
  EXPECT_EQ(back->source.dims, 7);
  EXPECT_EQ(back->source.seed, 99u);
  EXPECT_EQ(back->alpha, 0.07);
  EXPECT_EQ(back->min_points, 25);
  EXPECT_EQ(back->l_prim, 20000);
  EXPECT_TRUE(back->tune_metamodel);
  EXPECT_TRUE(back->want_boxes);
}

TEST(NetProtocolTest, ResultFramesRoundTripBoxesExactly) {
  ResultBoxes boxes;
  boxes.request_id = 3;
  boxes.first_index = 40;
  for (int i = 0; i < 5; ++i) boxes.boxes.push_back(MakeBox(4, i * 0.1));
  Result<ResultBoxes> rb = ResultBoxes::Parse(Bytes(boxes));
  ASSERT_TRUE(rb.ok());
  ASSERT_EQ(rb->boxes.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(rb->boxes[i] == boxes.boxes[i]);

  ResultDone done;
  done.request_id = 3;
  done.last_box = MakeBox(6, 0.25);  // has infinite sides: must survive
  done.trajectory_len = 45;
  done.restricted = done.last_box.NumRestricted();
  done.runtime_seconds = 0.125;
  done.server_latency_ns = 1234567;
  done.flags = kAdmitCoalescedExempt;
  Result<ResultDone> rd = ResultDone::Parse(Bytes(done));
  ASSERT_TRUE(rd.ok());
  EXPECT_TRUE(rd->last_box == done.last_box);
  EXPECT_EQ(rd->trajectory_len, 45u);
  EXPECT_EQ(rd->flags, kAdmitCoalescedExempt);
  EXPECT_FALSE(rd->failed);
  for (int j = 0; j < 6; ++j) {
    if (j % 2 != 0) EXPECT_TRUE(std::isinf(rd->last_box.hi(j))) << j;
  }
}

TEST(NetProtocolTest, AdmissionFramesRoundTrip) {
  HelloRequest hello;
  hello.client_name = "bench-client-42";
  Result<HelloRequest> h = HelloRequest::Parse(Bytes(hello));
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->version, kProtocolVersion);
  EXPECT_EQ(h->client_name, "bench-client-42");

  ShedReply shed;
  shed.request_id = 9;
  shed.retry_after_ms = 75;
  shed.reason = "engine queue depth at cap";
  Result<ShedReply> sr = ShedReply::Parse(Bytes(shed));
  ASSERT_TRUE(sr.ok());
  EXPECT_EQ(sr->retry_after_ms, 75u);
  EXPECT_EQ(sr->reason, shed.reason);

  StatusReply status;
  status.request_id = 9;
  status.state = WireJobState::kRunning;
  Result<StatusReply> st = StatusReply::Parse(Bytes(status));
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->state, WireJobState::kRunning);
}

TEST(NetProtocolTest, TruncatedPayloadsFailSoftly) {
  SubmitRequest msg;
  msg.request_id = 1;
  msg.method = "P";
  msg.source.rows = 100;
  msg.source.dims = 3;
  const std::string bytes = Bytes(msg);
  for (size_t cut = 0; cut < bytes.size(); cut += 3) {
    Result<SubmitRequest> r = SubmitRequest::Parse(bytes.substr(0, cut));
    EXPECT_FALSE(r.ok()) << "accepted a " << cut << "-byte prefix";
  }
}

TEST(NetProtocolTest, CorruptedLengthsCannotForceHugeAllocations) {
  // A ResultBoxes claiming 2^31 boxes in a 40-byte payload must be
  // rejected by the count-vs-remaining bound, not attempted.
  util::ByteWriter w;
  w.U64(1);                 // request id
  w.U32(0);                 // first index
  w.U32(0x7fffffffu);       // box count
  w.U32(12);                // one bogus box header
  Result<ResultBoxes> rb = ResultBoxes::Parse(w.data());
  EXPECT_FALSE(rb.ok());

  // A box claiming 2^30 dimensions inside a tiny payload: same story.
  util::ByteWriter w2;
  w2.U64(1);
  w2.U8(0);
  w2.Str("");
  w2.U32(1u << 30);  // "last box" with an absurd dim count
  Result<ResultDone> rd = ResultDone::Parse(w2.data());
  EXPECT_FALSE(rd.ok());
}

TEST(NetProtocolTest, UnknownEnumValuesRejected) {
  {
    util::ByteWriter w;
    w.U64(1);
    w.Str("P");
    w.U8(9);  // data mode out of range
    Result<SubmitRequest> r = SubmitRequest::Parse(w.data());
    EXPECT_FALSE(r.ok());
  }
  {
    util::ByteWriter w;
    w.U8(7);  // scrape format out of range
    Result<MetricsScrape> r = MetricsScrape::Parse(w.data());
    EXPECT_FALSE(r.ok());
  }
}

}  // namespace
}  // namespace reds::net
