// Greenwald-Khanna sketch guarantees: rank error stays within eps * n on
// adversarial input orders and distributions, merging per-chunk sketches
// preserves the bound, the summary stays sub-linear, extremes are exact,
// and everything is deterministic.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/quantile_sketch.h"
#include "util/rng.h"

namespace reds {
namespace {

// Rank error of a sketch answer: distance from the query rank to the true
// rank interval [#less, #lessEq] of the returned value.
int64_t RankError(const std::vector<double>& sorted_data, double answer,
                  int64_t rank) {
  const int64_t lo = std::lower_bound(sorted_data.begin(), sorted_data.end(),
                                      answer) -
                     sorted_data.begin();
  const int64_t hi = std::upper_bound(sorted_data.begin(), sorted_data.end(),
                                      answer) -
                     sorted_data.begin() - 1;
  if (rank < lo) return lo - rank;
  if (rank > hi) return rank - hi;
  return 0;
}

void ExpectWithinBound(const QuantileSketch& sketch, std::vector<double> data,
                       const char* label) {
  std::sort(data.begin(), data.end());
  const int64_t n = static_cast<int64_t>(data.size());
  ASSERT_EQ(sketch.count(), n) << label;
  const double allowed = sketch.eps() * static_cast<double>(n) + 1.0;
  for (int64_t step = 0; step <= 64; ++step) {
    const int64_t rank = step * (n - 1) / 64;
    const double answer = sketch.QueryRank(rank);
    EXPECT_LE(static_cast<double>(RankError(data, answer, rank)), allowed)
        << label << " rank " << rank;
  }
  // Extremes are exact.
  EXPECT_EQ(sketch.QueryRank(0), data.front()) << label;
  EXPECT_EQ(sketch.QueryRank(n - 1), data.back()) << label;
}

std::vector<double> AdversarialStream(int kind, int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> data(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    double v = 0.0;
    switch (kind) {
      case 0:  // sorted ascending
        v = static_cast<double>(i);
        break;
      case 1:  // sorted descending
        v = static_cast<double>(n - i);
        break;
      case 2:  // heavy duplicates (17 distinct values)
        v = static_cast<double>(rng.UniformInt(17));
        break;
      case 3:  // zipf-ish clusters: most mass near 0, long tail
        v = std::pow(rng.Uniform(), 8.0) * 1e6;
        break;
      case 4:  // alternating extremes
        v = (i % 2 == 0) ? static_cast<double>(i) : -static_cast<double>(i);
        break;
      default:  // uniform
        v = rng.Uniform();
        break;
    }
    data[static_cast<size_t>(i)] = v;
  }
  return data;
}

TEST(QuantileSketchTest, ExactOnSmallStreams) {
  QuantileSketch sketch(1.0 / 256.0);
  std::vector<double> data = {5.0, 1.0, 3.0, 2.0, 4.0};
  for (double v : data) sketch.Add(v);
  std::sort(data.begin(), data.end());
  for (int64_t r = 0; r < 5; ++r) {
    EXPECT_EQ(sketch.QueryRank(r), data[static_cast<size_t>(r)]);
  }
}

TEST(QuantileSketchTest, RankErrorBoundOnAdversarialStreams) {
  const char* labels[] = {"ascending", "descending", "duplicates",
                          "zipf",      "alternating", "uniform"};
  for (int kind = 0; kind < 6; ++kind) {
    const std::vector<double> data = AdversarialStream(kind, 30000, 7);
    QuantileSketch sketch(1.0 / 512.0);
    for (double v : data) sketch.Add(v);
    ExpectWithinBound(sketch, data, labels[kind]);
  }
}

TEST(QuantileSketchTest, SummaryStaysSubLinear) {
  const std::vector<double> data = AdversarialStream(5, 60000, 11);
  QuantileSketch sketch(1.0 / 512.0);
  for (double v : data) sketch.Add(v);
  // O((1/eps) log(eps n)) with small constants; a linear summary would be
  // 60000 tuples.
  EXPECT_LT(sketch.SummarySize(), 60000u / 8);
}

TEST(QuantileSketchTest, MergePreservesTheBound) {
  for (int kind = 0; kind < 6; ++kind) {
    const std::vector<double> data = AdversarialStream(kind, 30000, 13);
    // 7 unequal chunks, sketched independently and folded in order --
    // exactly what the parallel streaming build does.
    QuantileSketch merged(1.0 / 512.0);
    size_t begin = 0;
    int chunk = 1;
    while (begin < data.size()) {
      const size_t end = std::min(data.size(), begin + 1000 * chunk);
      QuantileSketch part(1.0 / 512.0);
      for (size_t i = begin; i < end; ++i) part.Add(data[i]);
      merged.Merge(part);
      begin = end;
      ++chunk;
    }
    ExpectWithinBound(merged, data, "merged");
  }
}

TEST(QuantileSketchTest, DeterministicAcrossRuns) {
  const std::vector<double> data = AdversarialStream(3, 20000, 17);
  QuantileSketch a(1.0 / 256.0), b(1.0 / 256.0);
  for (double v : data) a.Add(v);
  for (double v : data) b.Add(v);
  for (int64_t step = 0; step <= 32; ++step) {
    const int64_t rank = step * 19999 / 32;
    EXPECT_EQ(a.QueryRank(rank), b.QueryRank(rank));
  }
}

TEST(QuantileSketchTest, AddWeightedMatchesRepeatedAdds) {
  // Spilling exact (value, count) pairs through AddWeighted must satisfy
  // the same bound as inserting every copy -- including heavy values whose
  // weight dwarfs the gap budget, where ranks inside the mass are exact.
  Rng rng(23);
  std::vector<std::pair<double, int64_t>> pairs;
  std::vector<double> data;
  for (int i = 0; i < 40; ++i) {
    const double v = rng.Uniform() * 100.0;
    const int64_t w = (i % 7 == 0) ? 4000 : 1 + rng.UniformInt(20);
    pairs.emplace_back(v, w);
    for (int64_t k = 0; k < w; ++k) data.push_back(v);
  }
  std::sort(pairs.begin(), pairs.end());
  QuantileSketch sketch(1.0 / 512.0);
  for (const auto& [v, w] : pairs) sketch.AddWeighted(v, w);
  ExpectWithinBound(sketch, data, "weighted");

  // Per-value sketch work afterward (the post-spill regime) keeps the
  // bound too.
  std::vector<double> tail = AdversarialStream(5, 5000, 29);
  for (double v : tail) {
    sketch.Add(v * 100.0);
    data.push_back(v * 100.0);
  }
  ExpectWithinBound(sketch, data, "weighted+stream");
}

TEST(QuantileSketchTest, QueryQuantileMatchesQueryRank) {
  QuantileSketch sketch(1.0 / 128.0);
  for (int i = 0; i < 1000; ++i) sketch.Add(static_cast<double>(i));
  EXPECT_EQ(sketch.QueryQuantile(0.0), sketch.QueryRank(0));
  EXPECT_EQ(sketch.QueryQuantile(1.0), sketch.QueryRank(999));
  EXPECT_EQ(sketch.QueryQuantile(0.5), sketch.QueryRank(500));
}

}  // namespace
}  // namespace reds
