// Tests for the BI algorithm: the linear-time BestIntervalWRAcc subroutine
// against a brute-force reference, beam search behavior, and WRAcc
// optimality properties.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/best_interval.h"
#include "core/quality.h"
#include "util/rng.h"

namespace reds {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

Dataset RandomData(int n, int dim, uint64_t seed, double pos_share = 0.4) {
  Rng rng(seed);
  Dataset d(dim);
  std::vector<double> x(static_cast<size_t>(dim));
  for (int i = 0; i < n; ++i) {
    for (auto& v : x) v = rng.Uniform();
    d.AddRow(x, rng.Bernoulli(pos_share) ? 1.0 : 0.0);
  }
  return d;
}

// O(n^2) reference: try every pair of distinct data values as bounds (and
// open sides) for dimension `dim`.
double BruteForceBestIntervalWracc(const Dataset& d, const Box& box, int dim) {
  std::vector<double> values;
  for (int r = 0; r < d.num_rows(); ++r) values.push_back(d.x(r, dim));
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  std::vector<double> lows = values;
  lows.push_back(-kInf);
  std::vector<double> highs = values;
  highs.push_back(kInf);
  double best = -1e300;
  for (double lo : lows) {
    for (double hi : highs) {
      if (lo != -kInf && hi != kInf && lo > hi) continue;
      Box candidate = box;
      candidate.set_lo(dim, lo);
      candidate.set_hi(dim, hi);
      best = std::max(best, BoxWRAcc(d, candidate));
    }
  }
  return best;
}

TEST(BestIntervalTest, MatchesBruteForceUnrestrictedBox) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const Dataset d = RandomData(60, 2, seed);
    const Box base = Box::Unbounded(2);
    for (int dim = 0; dim < 2; ++dim) {
      const Box fast = BestIntervalForDimension(d, base, dim);
      EXPECT_NEAR(BoxWRAcc(d, fast), BruteForceBestIntervalWracc(d, base, dim),
                  1e-12)
          << "seed " << seed << " dim " << dim;
    }
  }
}

TEST(BestIntervalTest, MatchesBruteForceRestrictedBox) {
  for (uint64_t seed = 11; seed <= 15; ++seed) {
    const Dataset d = RandomData(80, 3, seed);
    Box base = Box::Unbounded(3);
    base.set_lo(1, 0.25);
    base.set_hi(1, 0.9);
    const Box fast = BestIntervalForDimension(d, base, 0);
    EXPECT_NEAR(BoxWRAcc(d, fast), BruteForceBestIntervalWracc(d, base, 0),
                1e-12)
        << "seed " << seed;
  }
}

TEST(BestIntervalTest, HandlesTiedValues) {
  // Many duplicated coordinates: groups must move together.
  Dataset d(1);
  const double xs[] = {0.1, 0.1, 0.1, 0.5, 0.5, 0.9, 0.9, 0.9};
  const double ys[] = {1, 1, 0, 1, 1, 0, 0, 0};
  for (int i = 0; i < 8; ++i) d.AddRow(&xs[i], ys[i]);
  const Box out = BestIntervalForDimension(d, Box::Unbounded(1), 0);
  EXPECT_NEAR(BoxWRAcc(d, out),
              BruteForceBestIntervalWracc(d, Box::Unbounded(1), 0), 1e-12);
  // Optimal: keep {0.1, 0.5}, drop 0.9 -> upper bound at 0.5, lower open.
  EXPECT_DOUBLE_EQ(out.hi(0), 0.5);
  EXPECT_DOUBLE_EQ(out.lo(0), -kInf);
}

TEST(BestIntervalTest, FullRangeStaysUnrestricted) {
  // All positives: best interval is everything -> no restriction.
  Dataset d(1);
  for (int i = 0; i < 10; ++i) {
    const double x = i / 10.0;
    d.AddRow(&x, 1.0);
  }
  const Box out = BestIntervalForDimension(d, Box::Unbounded(1), 0);
  EXPECT_EQ(out.NumRestricted(), 0);
}

TEST(BiTest, FindsPlantedInterval1D) {
  Rng rng(3);
  Dataset d(1);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform();
    d.AddRow(&x, (x >= 0.3 && x <= 0.6) ? 1.0 : 0.0);
  }
  const BiResult r = RunBi(d, {});
  EXPECT_NEAR(r.box.lo(0), 0.3, 0.03);
  EXPECT_NEAR(r.box.hi(0), 0.6, 0.03);
  EXPECT_GT(r.wracc, 0.2);
}

TEST(BiTest, FindsPlanted2DBox) {
  Rng rng(4);
  Dataset d(3);
  for (int i = 0; i < 1500; ++i) {
    const double x[3] = {rng.Uniform(), rng.Uniform(), rng.Uniform()};
    d.AddRow(x, (x[0] < 0.5 && x[1] > 0.5) ? 1.0 : 0.0);
  }
  const BiResult r = RunBi(d, {});
  EXPECT_TRUE(r.box.IsRestricted(0));
  EXPECT_TRUE(r.box.IsRestricted(1));
  EXPECT_FALSE(r.box.IsRestricted(2));
}

TEST(BiTest, MaxRestrictedLimitsRuleLength) {
  Rng rng(5);
  Dataset d(4);
  for (int i = 0; i < 800; ++i) {
    const double x[4] = {rng.Uniform(), rng.Uniform(), rng.Uniform(),
                         rng.Uniform()};
    d.AddRow(x, (x[0] < 0.5 && x[1] < 0.5 && x[2] < 0.5) ? 1.0 : 0.0);
  }
  BiConfig config;
  config.max_restricted = 2;
  const BiResult r = RunBi(d, config);
  EXPECT_LE(r.box.NumRestricted(), 2);
}

TEST(BiTest, WiderBeamNeverHurtsWracc) {
  for (uint64_t seed = 21; seed <= 24; ++seed) {
    const Dataset d = RandomData(300, 4, seed, 0.3);
    BiConfig b1, b5;
    b1.beam_size = 1;
    b5.beam_size = 5;
    const double w1 = RunBi(d, b1).wracc;
    const double w5 = RunBi(d, b5).wracc;
    EXPECT_GE(w5 + 1e-12, w1) << "seed " << seed;
  }
}

TEST(BiTest, WraccNonNegativeForDiscoveredBox) {
  // The unbounded box has WRAcc 0, so the best box can never be worse.
  const Dataset d = RandomData(200, 3, 31);
  const BiResult r = RunBi(d, {});
  EXPECT_GE(r.wracc, 0.0);
}

TEST(BiTest, FractionalLabels) {
  Rng rng(6);
  Dataset d(2);
  for (int i = 0; i < 600; ++i) {
    const double x[2] = {rng.Uniform(), rng.Uniform()};
    d.AddRow(x, x[0] > 0.6 ? 0.85 : 0.15);
  }
  const BiResult r = RunBi(d, {});
  EXPECT_TRUE(r.box.IsRestricted(0));
  EXPECT_GT(r.box.lo(0), 0.4);
}

TEST(BiTest, ExampleFromSection5) {
  // f(a) = 1 on [0,1), a-1 on [1,2], 0 on (2,h]. With h < 3, WRAcc favors
  // [0,1]; with h > 3, [0,2] (paper Example 5.1). We verify the crossover.
  auto make_data = [](double h) {
    Dataset d(1);
    const int n = 6000;
    for (int i = 0; i < n; ++i) {
      const double a = h * (i + 0.5) / n;
      double p = a < 1.0 ? 1.0 : (a <= 2.0 ? a - 1.0 : 0.0);
      d.AddRow(&a, p);  // expected label = probability (fractional target)
    }
    return d;
  };
  const BiResult narrow = RunBi(make_data(2.5), {});
  const BiResult wide = RunBi(make_data(4.0), {});
  EXPECT_LT(narrow.box.hi(0), 1.3);  // close to [0, 1]
  EXPECT_GT(wide.box.hi(0), 1.7);    // close to [0, 2]
}

}  // namespace
}  // namespace reds
