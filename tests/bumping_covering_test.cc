// Tests for PRIM with bumping (Pareto filtering, feature subsets) and the
// covering approach.
#include <gtest/gtest.h>

#include "core/bumping.h"
#include "core/covering.h"
#include "core/prim.h"
#include "core/quality.h"
#include "util/rng.h"

namespace reds {
namespace {

Dataset TwoBoxData(int n, uint64_t seed) {
  // Two planted boxes in 3-D: x0 < 0.3 (strong) and x1 > 0.8 (smaller).
  Rng rng(seed);
  Dataset d(3);
  for (int i = 0; i < n; ++i) {
    const double x[3] = {rng.Uniform(), rng.Uniform(), rng.Uniform()};
    const bool pos = x[0] < 0.3 || x[1] > 0.8;
    d.AddRow(x, pos ? 1.0 : 0.0);
  }
  return d;
}

TEST(ParetoFilterTest, RemovesDominatedBoxes) {
  std::vector<Box> boxes(3, Box::Unbounded(1));
  std::vector<PrPoint> curve{{0.9, 0.5}, {0.5, 0.4}, {0.3, 0.9}};
  // The middle point is dominated by the first (lower recall AND precision).
  ParetoFilter(&boxes, &curve);
  ASSERT_EQ(curve.size(), 2u);
  EXPECT_DOUBLE_EQ(curve[0].recall, 0.9);
  EXPECT_DOUBLE_EQ(curve[1].recall, 0.3);
}

TEST(ParetoFilterTest, KeepsIncomparablePoints) {
  std::vector<Box> boxes(2, Box::Unbounded(1));
  std::vector<PrPoint> curve{{0.9, 0.5}, {0.5, 0.8}};
  ParetoFilter(&boxes, &curve);
  EXPECT_EQ(curve.size(), 2u);
}

TEST(ParetoFilterTest, DeduplicatesEqualPoints) {
  std::vector<Box> boxes(3, Box::Unbounded(1));
  std::vector<PrPoint> curve{{0.5, 0.5}, {0.5, 0.5}, {0.5, 0.5}};
  ParetoFilter(&boxes, &curve);
  EXPECT_EQ(curve.size(), 1u);
}

TEST(BumpingTest, CurveIsParetoAndSortedByRecall) {
  const Dataset d = TwoBoxData(500, 1);
  BumpingConfig config;
  config.q = 15;
  const BumpingResult r = RunPrimBumping(d, d, config, 7);
  ASSERT_FALSE(r.boxes.empty());
  for (size_t i = 1; i < r.val_curve.size(); ++i) {
    EXPECT_LE(r.val_curve[i].recall, r.val_curve[i - 1].recall);
    // On a Pareto front sorted by decreasing recall, precision increases.
    EXPECT_GE(r.val_curve[i].precision + 1e-12, r.val_curve[i - 1].precision);
  }
}

TEST(BumpingTest, FeatureSubsetsRestrictOnlyChosenColumns) {
  const Dataset d = TwoBoxData(400, 2);
  BumpingConfig config;
  config.q = 10;
  config.m = 1;  // every box may restrict at most one input
  const BumpingResult r = RunPrimBumping(d, d, config, 8);
  for (const Box& b : r.boxes) EXPECT_LE(b.NumRestricted(), 1);
}

TEST(BumpingTest, BestBoxHasHighestPrecision) {
  const Dataset d = TwoBoxData(500, 3);
  BumpingConfig config;
  config.q = 12;
  const BumpingResult r = RunPrimBumping(d, d, config, 9);
  const int best = r.BestIndex();
  for (const auto& p : r.val_curve) {
    EXPECT_LE(p.precision,
              r.val_curve[static_cast<size_t>(best)].precision + 1e-12);
  }
}

TEST(BumpingTest, DeterministicForSameSeed) {
  const Dataset d = TwoBoxData(300, 4);
  BumpingConfig config;
  config.q = 8;
  const BumpingResult a = RunPrimBumping(d, d, config, 42);
  const BumpingResult b = RunPrimBumping(d, d, config, 42);
  ASSERT_EQ(a.boxes.size(), b.boxes.size());
  for (size_t i = 0; i < a.boxes.size(); ++i) {
    EXPECT_TRUE(a.boxes[i] == b.boxes[i]);
  }
}

TEST(CoveringTest, FindsBothPlantedSubgroups) {
  const Dataset d = TwoBoxData(1500, 5);
  PrimConfig prim;
  const CoveringResult r = RunCovering(
      d,
      [&prim](const Dataset& data) {
        return RunPrim(data, data, prim).BestBox();
      },
      3);
  ASSERT_GE(r.boxes.size(), 2u);
  // Together the first two boxes should cover most positives.
  EXPECT_GT(r.coverage_share[0] + r.coverage_share[1], 0.7);
  // Each discovered subgroup is fairly pure.
  EXPECT_GT(r.precision[0], 0.8);
}

TEST(CoveringTest, StopsWhenNoPositivesRemain) {
  Rng rng(6);
  Dataset d(2);
  for (int i = 0; i < 200; ++i) {
    const double x[2] = {rng.Uniform(), rng.Uniform()};
    d.AddRow(x, x[0] < 0.2 ? 1.0 : 0.0);
  }
  const CoveringResult r = RunCovering(
      d,
      [](const Dataset& data) { return RunPrim(data, data, {}).BestBox(); },
      10);
  EXPECT_LT(r.boxes.size(), 10u);
}

TEST(CoveringTest, RespectsMaxSubgroups) {
  const Dataset d = TwoBoxData(800, 7);
  const CoveringResult r = RunCovering(
      d,
      [](const Dataset& data) { return RunPrim(data, data, {}).BestBox(); },
      1);
  EXPECT_EQ(r.boxes.size(), 1u);
}

}  // namespace
}  // namespace reds
