// Randomized property sweeps over the core geometry and quality primitives:
// invariants that must hold for arbitrary boxes, curves and datasets.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/bumping.h"
#include "core/quality.h"
#include "util/rng.h"

namespace reds {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

Box RandomBox(int dim, Rng* rng) {
  Box b = Box::Unbounded(dim);
  for (int j = 0; j < dim; ++j) {
    const double roll = rng->Uniform();
    if (roll < 0.25) continue;  // leave unrestricted
    double lo = rng->Uniform(), hi = rng->Uniform();
    if (lo > hi) std::swap(lo, hi);
    if (roll < 0.5) {
      b.set_lo(j, lo);
    } else if (roll < 0.75) {
      b.set_hi(j, hi);
    } else {
      b.set_lo(j, lo);
      b.set_hi(j, hi);
    }
  }
  return b;
}

class BoxPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BoxPropertyTest, IntersectionIsCommutativeAndIdempotent) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const int dim = 1 + GetParam() % 5;
  const std::vector<double> lo(static_cast<size_t>(dim), 0.0);
  const std::vector<double> hi(static_cast<size_t>(dim), 1.0);
  for (int trial = 0; trial < 50; ++trial) {
    const Box a = RandomBox(dim, &rng);
    const Box b = RandomBox(dim, &rng);
    EXPECT_TRUE(a.Intersect(b) == b.Intersect(a));
    EXPECT_TRUE(a.Intersect(a) == a);
    // Volume of the intersection never exceeds either volume.
    const double va = a.ClampedVolume(lo, hi);
    const double vi = a.Intersect(b).ClampedVolume(lo, hi);
    EXPECT_LE(vi, va + 1e-12);
  }
}

TEST_P(BoxPropertyTest, ContainmentConsistentWithIntersection) {
  Rng rng(1000 + static_cast<uint64_t>(GetParam()));
  const int dim = 1 + GetParam() % 4;
  std::vector<double> x(static_cast<size_t>(dim));
  for (int trial = 0; trial < 100; ++trial) {
    const Box a = RandomBox(dim, &rng);
    const Box b = RandomBox(dim, &rng);
    const Box inter = a.Intersect(b);
    for (auto& v : x) v = rng.Uniform();
    EXPECT_EQ(inter.Contains(x.data()),
              a.Contains(x.data()) && b.Contains(x.data()));
  }
}

TEST_P(BoxPropertyTest, ConsistencyBoundsAndIdentity) {
  Rng rng(2000 + static_cast<uint64_t>(GetParam()));
  const int dim = 1 + GetParam() % 5;
  const std::vector<double> lo(static_cast<size_t>(dim), 0.0);
  const std::vector<double> hi(static_cast<size_t>(dim), 1.0);
  for (int trial = 0; trial < 50; ++trial) {
    const Box a = RandomBox(dim, &rng);
    const Box b = RandomBox(dim, &rng);
    const double c = Consistency(a, b, lo, hi);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0 + 1e-12);
    // Self-consistency is exactly 1 (empty boxes count as identical).
    EXPECT_NEAR(Consistency(a, a, lo, hi), 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(c, Consistency(b, a, lo, hi));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoxPropertyTest, ::testing::Range(1, 6));

TEST(PrAucPropertyTest, InvariantUnderPointOrder) {
  Rng rng(7);
  std::vector<PrPoint> curve;
  for (int i = 0; i < 20; ++i) curve.push_back({rng.Uniform(), rng.Uniform()});
  const double base = PrAuc(curve);
  for (int shuffle = 0; shuffle < 5; ++shuffle) {
    rng.Shuffle(&curve);
    EXPECT_NEAR(PrAuc(curve), base, 1e-12);
  }
}

TEST(PrAucPropertyTest, MonotoneInPrecision) {
  Rng rng(8);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<PrPoint> low, high;
    for (int i = 0; i < 10; ++i) {
      const double r = rng.Uniform();
      const double p = rng.Uniform(0.0, 0.5);
      low.push_back({r, p});
      high.push_back({r, p + 0.3});
    }
    EXPECT_GE(PrAuc(high), PrAuc(low));
  }
}

TEST(PrAucPropertyTest, BoundedByUnitSquare) {
  Rng rng(9);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<PrPoint> curve;
    for (int i = 0; i < 8; ++i) curve.push_back({rng.Uniform(), rng.Uniform()});
    const double auc = PrAuc(curve);
    EXPECT_GE(auc, 0.0);
    EXPECT_LE(auc, 1.0 + 1e-12);
  }
}

TEST(WraccPropertyTest, BoundedByQuarter) {
  // |WRAcc| <= p0 (1 - p0) <= 1/4 for any feasible subgroup: one whose
  // positive and negative counts do not exceed the dataset's.
  Rng rng(10);
  for (int trial = 0; trial < 200; ++trial) {
    const double total_pos = rng.Uniform() * 500.0;
    const double total_neg = rng.Uniform() * 500.0;
    const double total_n = total_pos + total_neg;
    if (total_n < 1.0) continue;
    const double n_pos = rng.Uniform() * total_pos;
    const double n_neg = rng.Uniform() * total_neg;
    const double w = WRAcc({n_pos + n_neg, n_pos}, total_n, total_pos);
    EXPECT_LE(std::fabs(w), 0.25 + 1e-12);
  }
}

TEST(ParetoPropertyTest, FilterIsIdempotentAndClean) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Box> boxes;
    std::vector<PrPoint> curve;
    const int n = 2 + static_cast<int>(rng.UniformInt(30));
    for (int i = 0; i < n; ++i) {
      boxes.push_back(Box::Unbounded(2));
      curve.push_back({rng.Uniform(), rng.Uniform()});
    }
    ParetoFilter(&boxes, &curve);
    // No remaining point dominates another.
    for (size_t i = 0; i < curve.size(); ++i) {
      for (size_t j = 0; j < curve.size(); ++j) {
        if (i == j) continue;
        const bool dominates = curve[j].recall >= curve[i].recall &&
                               curve[j].precision >= curve[i].precision &&
                               (curve[j].recall > curve[i].recall ||
                                curve[j].precision > curve[i].precision);
        EXPECT_FALSE(dominates);
      }
    }
    // Idempotence.
    auto boxes2 = boxes;
    auto curve2 = curve;
    ParetoFilter(&boxes2, &curve2);
    EXPECT_EQ(curve2.size(), curve.size());
  }
}

TEST(BoxStatsPropertyTest, StatsAreAdditiveOverDisjointBoxes) {
  Rng rng(12);
  Dataset d(1);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.Uniform();
    d.AddRow(&x, rng.Bernoulli(0.4) ? 1.0 : 0.0);
  }
  Box left = Box::Unbounded(1);
  left.set_hi(0, 0.5);
  Box right = Box::Unbounded(1);
  right.set_lo(0, std::nextafter(0.5, 1.0));
  const BoxStats sl = ComputeBoxStats(d, left);
  const BoxStats sr = ComputeBoxStats(d, right);
  EXPECT_DOUBLE_EQ(sl.n + sr.n, d.num_rows());
  EXPECT_DOUBLE_EQ(sl.n_pos + sr.n_pos, d.TotalPositive());
}

TEST(BoxStatsPropertyTest, MonotoneUnderShrinking) {
  Rng rng(13);
  Dataset d(3);
  for (int i = 0; i < 300; ++i) {
    const double x[3] = {rng.Uniform(), rng.Uniform(), rng.Uniform()};
    d.AddRow(x, rng.Bernoulli(0.3) ? 1.0 : 0.0);
  }
  for (int trial = 0; trial < 30; ++trial) {
    const Box outer = RandomBox(3, &rng);
    Box inner = outer;
    // Shrink one random dimension.
    const int j = static_cast<int>(rng.UniformInt(3));
    const double lo = std::isfinite(inner.lo(j)) ? inner.lo(j) : 0.0;
    const double hi = std::isfinite(inner.hi(j)) ? inner.hi(j) : 1.0;
    inner.set_lo(j, lo + 0.25 * (hi - lo));
    inner.set_hi(j, hi - 0.25 * (hi - lo));
    if (inner.lo(j) > inner.hi(j)) continue;
    const BoxStats so = ComputeBoxStats(d, outer);
    const BoxStats si = ComputeBoxStats(d, inner);
    EXPECT_LE(si.n, so.n);
    EXPECT_LE(si.n_pos, so.n_pos);
  }
}

}  // namespace
}  // namespace reds
