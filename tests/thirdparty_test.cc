// Tests for the third-party dataset substitutes: lake simulation physics and
// the TGL/lake tables' published shapes.
#include <gtest/gtest.h>

#include <cmath>

#include "functions/thirdparty.h"

namespace reds::fun {
namespace {

TEST(LakeModelTest, CriticalLevelRisesWithRemovalRate) {
  // A higher natural removal rate b lets the lake absorb more pollution
  // before tipping: for fixed q, larger b moves the unstable root upward.
  const double low_b = LakeCriticalLevel(0.15, 3.0);
  const double high_b = LakeCriticalLevel(0.4, 3.0);
  EXPECT_GT(high_b, low_b);
}

TEST(LakeModelTest, CriticalLevelIsRootOfBalance) {
  const double b = 0.3, q = 3.0;
  const double x = LakeCriticalLevel(b, q);
  ASSERT_LT(x, 3.0);
  const double xq = std::pow(x, q);
  EXPECT_NEAR(xq / (1.0 + xq), b * x, 1e-9);
}

TEST(LakeModelTest, ReliabilityInUnitInterval) {
  const double x[5] = {0.5, 0.5, 0.5, 0.5, 0.5};
  const double r = SimulateLakeReliability(x, 1);
  EXPECT_GE(r, 0.0);
  EXPECT_LE(r, 1.0);
}

TEST(LakeModelTest, HighInflowIsLessReliable) {
  // Averaged over noise seeds, higher mean natural inflow gives lower
  // reliability.
  double low = 0.0, high = 0.0;
  for (uint64_t seed = 0; seed < 30; ++seed) {
    const double x_low[5] = {0.5, 0.5, 0.0, 0.5, 0.5};
    const double x_high[5] = {0.5, 0.5, 1.0, 0.5, 0.5};
    low += SimulateLakeReliability(x_low, seed);
    high += SimulateLakeReliability(x_high, seed);
  }
  EXPECT_GE(low, high);
}

TEST(LakeModelTest, DeterministicForSeed) {
  const double x[5] = {0.3, 0.7, 0.2, 0.9, 0.1};
  EXPECT_DOUBLE_EQ(SimulateLakeReliability(x, 5),
                   SimulateLakeReliability(x, 5));
}

TEST(LakeDatasetTest, PublishedShape) {
  const Dataset d = MakeLakeDataset();
  EXPECT_EQ(d.num_rows(), 1000);
  EXPECT_EQ(d.num_cols(), 5);
  EXPECT_NEAR(d.PositiveShare(), 0.335, 0.05);
}

TEST(LakeDatasetTest, Reproducible) {
  const Dataset a = MakeLakeDataset();
  const Dataset b = MakeLakeDataset();
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.y(i), b.y(i));
    EXPECT_DOUBLE_EQ(a.x(i, 0), b.x(i, 0));
  }
}

TEST(TglDatasetTest, PublishedShape) {
  const Dataset d = MakeTglDataset();
  EXPECT_EQ(d.num_rows(), 882);
  EXPECT_EQ(d.num_cols(), 9);
  EXPECT_NEAR(d.PositiveShare(), 0.101, 0.04);
}

TEST(TglDatasetTest, InputsInUnitCube) {
  const Dataset d = MakeTglDataset();
  for (int i = 0; i < d.num_rows(); ++i) {
    for (int j = 0; j < d.num_cols(); ++j) {
      EXPECT_GE(d.x(i, j), 0.0);
      EXPECT_LT(d.x(i, j), 1.0);
    }
  }
}

TEST(TglDatasetTest, HasDiscoverableStructure) {
  // The positives concentrate in the planted region: precision inside the
  // first planted box must be far above the base rate.
  const Dataset d = MakeTglDataset();
  double n = 0.0, pos = 0.0;
  for (int i = 0; i < d.num_rows(); ++i) {
    if (d.x(i, 0) >= 0.2 && d.x(i, 0) <= 0.5 && d.x(i, 2) >= 0.2 &&
        d.x(i, 2) <= 0.5 && d.x(i, 5) >= 0.2 && d.x(i, 5) <= 0.5) {
      n += 1.0;
      pos += d.y(i);
    }
  }
  ASSERT_GT(n, 0.0);
  EXPECT_GT(pos / n, 0.8);
}

}  // namespace
}  // namespace reds::fun
