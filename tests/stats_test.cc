// Tests for descriptive statistics and the nonparametric tests used in the
// evaluation.
#include <gtest/gtest.h>

#include <cmath>

#include "stats/descriptive.h"
#include "stats/tests.h"
#include "util/rng.h"

namespace reds::stats {
namespace {

TEST(DescriptiveTest, MeanVarianceStd) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(v), 5.0);
  EXPECT_NEAR(Variance(v), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(StdDev(v), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(DescriptiveTest, MedianAndQuantiles) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Median(v), 2.5);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 4.0);
  // R type-7: quantile(c(1,2,3,4), 0.25) = 1.75.
  EXPECT_NEAR(Quantile(v, 0.25), 1.75, 1e-12);
}

TEST(DescriptiveTest, QuartilesOrdered) {
  Rng rng(1);
  std::vector<double> v;
  for (int i = 0; i < 200; ++i) v.push_back(rng.Normal());
  const Quartiles q = ComputeQuartiles(v);
  EXPECT_LT(q.q1, q.median);
  EXPECT_LT(q.median, q.q3);
}

TEST(DescriptiveTest, RanksWithTies) {
  const std::vector<double> v{10.0, 20.0, 20.0, 30.0};
  const auto r = Ranks(v);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
  EXPECT_DOUBLE_EQ(r[2], 2.5);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(WilcoxonTest, RankSumDetectsShift) {
  Rng rng(2);
  std::vector<double> a, b;
  for (int i = 0; i < 60; ++i) {
    a.push_back(rng.Normal(0.0, 1.0));
    b.push_back(rng.Normal(1.5, 1.0));
  }
  const TestResult r = WilcoxonRankSum(a, b);
  EXPECT_LT(r.p_value, 0.001);
}

TEST(WilcoxonTest, RankSumNullIsInsignificant) {
  Rng rng(3);
  std::vector<double> a, b;
  for (int i = 0; i < 60; ++i) {
    a.push_back(rng.Normal());
    b.push_back(rng.Normal());
  }
  const TestResult r = WilcoxonRankSum(a, b);
  EXPECT_GT(r.p_value, 0.05);
}

TEST(WilcoxonTest, SignedRankDetectsPairedShift) {
  Rng rng(4);
  std::vector<double> a, b;
  for (int i = 0; i < 50; ++i) {
    const double base = rng.Normal();
    a.push_back(base + 0.5 + 0.1 * rng.Normal());
    b.push_back(base);
  }
  const TestResult r = WilcoxonSignedRank(a, b);
  EXPECT_LT(r.p_value, 0.001);
  EXPECT_GT(r.statistic, 0.0);
}

TEST(WilcoxonTest, SignedRankAllEqualGivesPValueOne) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const TestResult r = WilcoxonSignedRank(a, a);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
}

TEST(FriedmanTest, DetectsDominantMethod) {
  // Method 2 always best, method 0 always worst across 20 "datasets".
  Rng rng(5);
  std::vector<std::vector<double>> blocks;
  for (int i = 0; i < 20; ++i) {
    const double base = rng.Uniform();
    blocks.push_back({base, base + 0.5, base + 1.0});
  }
  const TestResult r = FriedmanTest(blocks);
  EXPECT_LT(r.p_value, 1e-6);
  const auto ranks = FriedmanMeanRanks(blocks);
  EXPECT_LT(ranks[0], ranks[1]);
  EXPECT_LT(ranks[1], ranks[2]);
  const TestResult posthoc = FriedmanPostHoc(blocks, 2, 0);
  EXPECT_LT(posthoc.p_value, 1e-6);
  EXPECT_GT(posthoc.statistic, 0.0);
}

TEST(FriedmanTest, NullIsInsignificant) {
  Rng rng(6);
  std::vector<std::vector<double>> blocks;
  for (int i = 0; i < 30; ++i) {
    blocks.push_back({rng.Uniform(), rng.Uniform(), rng.Uniform()});
  }
  const TestResult r = FriedmanTest(blocks);
  EXPECT_GT(r.p_value, 0.01);
}

TEST(SpearmanTest, PerfectMonotone) {
  const std::vector<double> a{1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> b{2.0, 4.0, 8.0, 16.0, 32.0};  // monotone in a
  EXPECT_NEAR(SpearmanCorrelation(a, b), 1.0, 1e-12);
  std::vector<double> c{5.0, 4.0, 3.0, 2.0, 1.0};
  EXPECT_NEAR(SpearmanCorrelation(a, c), -1.0, 1e-12);
}

TEST(SpearmanTest, IndependentIsNearZero) {
  Rng rng(7);
  std::vector<double> a, b;
  for (int i = 0; i < 500; ++i) {
    a.push_back(rng.Uniform());
    b.push_back(rng.Uniform());
  }
  EXPECT_NEAR(SpearmanCorrelation(a, b), 0.0, 0.1);
}

}  // namespace
}  // namespace reds::stats
