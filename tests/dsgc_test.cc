// Tests for the DSGC grid-stability substrate: fixed-point feasibility,
// Jacobian structure, physically expected stability behavior.
#include <gtest/gtest.h>

#include "functions/dsgc.h"
#include "util/rng.h"

namespace reds::fun {
namespace {

DsgcParams BaseParams() {
  DsgcParams p;
  for (int j = 0; j < 4; ++j) {
    p.tau[j] = 2.0;
    p.g[j] = 0.1;
  }
  p.p_consumer[0] = p.p_consumer[1] = p.p_consumer[2] = -1.0;
  p.coupling = 8.0;
  return p;
}

TEST(DsgcTest, ParamsFromUnitCubeInRange) {
  double x[12];
  for (auto& v : x) v = 0.5;
  const DsgcParams p = DsgcParamsFromUnitCube(x);
  for (int j = 0; j < 4; ++j) {
    EXPECT_GE(p.tau[j], 0.5);
    EXPECT_LE(p.tau[j], 10.0);
    EXPECT_GE(p.g[j], 0.05);
    EXPECT_LE(p.g[j], 0.5);
  }
  for (int j = 0; j < 3; ++j) {
    EXPECT_GE(p.p_consumer[j], -1.5);
    EXPECT_LE(p.p_consumer[j], -0.5);
  }
  EXPECT_GE(p.coupling, 1.0);
  EXPECT_LE(p.coupling, 8.0);
}

TEST(DsgcTest, JacobianHasExpectedSize) {
  auto jac = DsgcJacobian(BaseParams());
  ASSERT_TRUE(jac.ok());
  EXPECT_EQ(jac->rows(), 15);
  EXPECT_EQ(jac->cols(), 15);
}

TEST(DsgcTest, InfeasiblePowerFlowDetected) {
  DsgcParams p = BaseParams();
  p.coupling = 0.5;  // |P_j| = 1.0 > K: no synchronous state
  EXPECT_FALSE(DsgcJacobian(p).ok());
  EXPECT_GT(DsgcSpectralAbscissa(p), 0.0);
}

TEST(DsgcTest, WellDampedGridIsStable) {
  // Short delay, strong coupling, moderate gain: classic stable regime.
  DsgcParams p = BaseParams();
  for (int j = 0; j < 4; ++j) p.tau[j] = 0.5;
  EXPECT_LT(DsgcSpectralAbscissa(p), 0.0);
}

TEST(DsgcTest, AggressiveAdaptationDestabilizes) {
  // Raising the adaptation gain at an unfavorable delay must eventually
  // destabilize the grid (the DSGC resonance phenomenon).
  DsgcParams p = BaseParams();
  for (int j = 0; j < 4; ++j) p.tau[j] = 2.0;
  double low_gain, high_gain;
  for (int j = 0; j < 4; ++j) p.g[j] = 0.02;
  low_gain = DsgcSpectralAbscissa(p);
  for (int j = 0; j < 4; ++j) p.g[j] = 1.5;
  high_gain = DsgcSpectralAbscissa(p);
  EXPECT_LT(low_gain, 0.0);
  EXPECT_GT(high_gain, low_gain);
  EXPECT_GT(high_gain, 0.0);
}

TEST(DsgcTest, HeavierLoadIsLessStable) {
  // Loading the lines (larger |P|/K) reduces the stability margin.
  DsgcParams light = BaseParams();
  DsgcParams heavy = BaseParams();
  for (int j = 0; j < 3; ++j) {
    light.p_consumer[j] = -0.5;
    heavy.p_consumer[j] = -1.5;
  }
  light.coupling = heavy.coupling = 1.6;
  EXPECT_LT(DsgcSpectralAbscissa(light), DsgcSpectralAbscissa(heavy));
}

TEST(DsgcTest, SpectralAbscissaIsContinuousInCoupling) {
  DsgcParams p = BaseParams();
  double prev = DsgcSpectralAbscissa(p);
  for (double k = 8.0; k >= 2.0; k -= 0.5) {
    p.coupling = k;
    const double cur = DsgcSpectralAbscissa(p);
    EXPECT_LT(std::fabs(cur - prev), 1.0) << "jump at K=" << k;
    prev = cur;
  }
}

TEST(DsgcTest, ShareIsBalanced) {
  // The configured input ranges give a roughly balanced stability share
  // (the paper reports 53.7%).
  Rng rng(7);
  int stable = 0;
  const int n = 2000;
  double x[12];
  for (int i = 0; i < n; ++i) {
    for (auto& v : x) v = rng.Uniform();
    if (DsgcSpectralAbscissa(DsgcParamsFromUnitCube(x)) < 0.0) ++stable;
  }
  const double share = static_cast<double>(stable) / n;
  EXPECT_GT(share, 0.35);
  EXPECT_LT(share, 0.7);
}

}  // namespace
}  // namespace reds::fun
