// The on-disk cache tier: serialized BinnedIndexes reload bit-identical
// (and re-serialize to identical bytes), all metamodel families predict
// identically after a reload, corrupted/truncated/mismatched cache files
// are rejected -- never trusted -- and a warm engine run over the same
// data skips both index building and metamodel training, producing
// bit-identical results (the warm-vs-cold smoke the CI job drives through
// examples/streaming_discovery as two separate processes).
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/binned_index.h"
#include "core/dataset_source.h"
#include "engine/discovery_engine.h"
#include "engine/persistent_cache.h"
#include "ml/gbt.h"
#include "ml/random_forest.h"
#include "ml/serialize.h"
#include "ml/svm.h"
#include "ml/tuning.h"
#include "util/rng.h"

namespace reds {
namespace {

Dataset MakeData(int n, int dim, uint64_t seed) {
  Rng rng(seed);
  Dataset d(dim);
  std::vector<double> x(static_cast<size_t>(dim));
  for (int i = 0; i < n; ++i) {
    for (auto& v : x) v = rng.Uniform();
    const double p = (x[0] < 0.45 && x[1] > 0.3) ? 0.8 : 0.15;
    d.AddRow(x, rng.Bernoulli(p) ? 1.0 : 0.0);
  }
  return d;
}

std::string FreshCacheDir(const char* name) {
  const std::string dir = ::testing::TempDir() + "reds_cache_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(BinnedIndexSerializationTest, RoundTripsBitIdentical) {
  const Dataset d = MakeData(700, 4, 1);
  const auto original = BinnedIndex::Build(d);
  util::ByteWriter bytes;
  original->Serialize(&bytes);

  util::ByteReader reader(bytes.data());
  auto loaded = BinnedIndex::Deserialize(&reader);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(reader.AtEnd());
  ASSERT_EQ((*loaded)->num_rows(), original->num_rows());
  ASSERT_EQ((*loaded)->num_cols(), original->num_cols());
  EXPECT_EQ((*loaded)->kind(), original->kind());
  for (int j = 0; j < original->num_cols(); ++j) {
    EXPECT_EQ((*loaded)->codes(j), original->codes(j));
    ASSERT_EQ((*loaded)->num_bins(j), original->num_bins(j));
    for (int b = 0; b < original->num_bins(j); ++b) {
      EXPECT_EQ((*loaded)->bin_first(j, b), original->bin_first(j, b));
      EXPECT_EQ((*loaded)->bin_last(j, b), original->bin_last(j, b));
      EXPECT_EQ((*loaded)->bin_begin_rank(j, b),
                original->bin_begin_rank(j, b));
    }
  }
  // Re-serializing the reload produces identical bytes.
  util::ByteWriter again;
  (*loaded)->Serialize(&again);
  EXPECT_EQ(bytes.data(), again.data());
}

TEST(BinnedIndexSerializationTest, StreamedIndexKeepsItsPermutation) {
  const auto data = std::make_shared<Dataset>(MakeData(400, 3, 2));
  MatrixSource source(data);
  auto streamed = BinnedIndex::BuildStreamed(&source);
  ASSERT_TRUE(streamed.ok());
  util::ByteWriter bytes;
  streamed->index->Serialize(&bytes);
  util::ByteReader reader(bytes.data());
  auto loaded = BinnedIndex::Deserialize(&reader);
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE((*loaded)->has_sorted_rows());
  for (int j = 0; j < 3; ++j) {
    EXPECT_EQ((*loaded)->sorted_rows(j), streamed->index->sorted_rows(j));
  }
}

TEST(BinnedIndexSerializationTest, RejectsCorruptionAndTruncation) {
  const Dataset d = MakeData(300, 3, 3);
  const auto original = BinnedIndex::Build(d);
  util::ByteWriter bytes;
  original->Serialize(&bytes);
  const std::string& good = bytes.data();

  // Truncations at every granularity fail cleanly.
  for (size_t keep : {size_t{0}, size_t{3}, size_t{20}, good.size() / 2,
                      good.size() - 1}) {
    util::ByteReader reader(good.data(), keep);
    EXPECT_FALSE(BinnedIndex::Deserialize(&reader).ok()) << keep;
  }
  // A flipped byte in the middle of the payload is caught by the
  // structural / count validation.
  std::string corrupt = good;
  corrupt[corrupt.size() / 2] = static_cast<char>(
      static_cast<uint8_t>(corrupt[corrupt.size() / 2]) ^ 0x5a);
  util::ByteReader reader(corrupt);
  // Either rejected outright, or -- if the flip landed in a value field --
  // it must still parse into a structurally valid index; both are safe.
  auto result = BinnedIndex::Deserialize(&reader);
  if (result.ok()) {
    EXPECT_EQ((*result)->num_rows(), original->num_rows());
    EXPECT_EQ((*result)->num_cols(), original->num_cols());
  }
}

TEST(MetamodelSerializationTest, AllFamiliesPredictIdenticallyAfterReload) {
  const Dataset train = MakeData(300, 4, 4);
  const Dataset probe = MakeData(64, 4, 5);
  const ml::MetamodelKind kinds[] = {ml::MetamodelKind::kRandomForest,
                                     ml::MetamodelKind::kGbt,
                                     ml::MetamodelKind::kSvm};
  for (const ml::MetamodelKind kind : kinds) {
    const auto model = ml::FitDefault(kind, train, 42);
    util::ByteWriter bytes;
    ml::SerializeMetamodel(*model, kind, &bytes);
    util::ByteReader reader(bytes.data());
    auto loaded = ml::DeserializeMetamodel(&reader, kind);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    for (int i = 0; i < probe.num_rows(); ++i) {
      EXPECT_EQ(model->PredictProb(probe.row(i)),
                (*loaded)->PredictProb(probe.row(i)))
          << ml::MetamodelSuffix(kind) << " row " << i;
    }
    // A kind mismatch is rejected.
    util::ByteReader wrong(bytes.data());
    EXPECT_FALSE(ml::DeserializeMetamodel(
                     &wrong, kind == ml::MetamodelKind::kSvm
                                 ? ml::MetamodelKind::kGbt
                                 : ml::MetamodelKind::kSvm)
                     .ok());
  }
}

TEST(PersistentCacheTest, StoresAndReloadsAcrossInstances) {
  const std::string dir = FreshCacheDir("roundtrip");
  const Dataset d = MakeData(250, 3, 6);
  const auto index = BinnedIndex::Build(d);

  {
    engine::PersistentCache cache(dir);
    EXPECT_EQ(cache.LoadBinnedIndex(99, BinnedIndex::BuildKind::kExactPack,
                                    250, 3),
              nullptr);
    cache.StoreBinnedIndex(99, *index);
    const auto stats = cache.stats();
    EXPECT_EQ(stats.index_misses, 1);
    EXPECT_EQ(stats.index_writes, 1);
  }
  {
    // A second instance (a "second process") sees the file.
    engine::PersistentCache cache(dir);
    const auto loaded = cache.LoadBinnedIndex(
        99, BinnedIndex::BuildKind::kExactPack, 250, 3);
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(loaded->codes(0), index->codes(0));
    EXPECT_EQ(cache.stats().index_hits, 1);
    // Shape or kind mismatches miss instead of returning the wrong index.
    EXPECT_EQ(cache.LoadBinnedIndex(99, BinnedIndex::BuildKind::kSketch, 250,
                                    3),
              nullptr);
    EXPECT_EQ(cache.LoadBinnedIndex(99, BinnedIndex::BuildKind::kExactPack,
                                    251, 3),
              nullptr);
  }
}

TEST(PersistentCacheTest, RejectsTamperedFiles) {
  const std::string dir = FreshCacheDir("tamper");
  const Dataset d = MakeData(200, 3, 7);
  const auto index = BinnedIndex::Build(d);
  engine::PersistentCache cache(dir);
  cache.StoreBinnedIndex(7, *index);

  // Find the written file and flip a payload byte.
  std::string file;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    file = entry.path().string();
  }
  ASSERT_FALSE(file.empty());
  {
    std::fstream f(file, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(0, std::ios::end);
    const auto size = f.tellg();
    f.seekp(static_cast<std::streamoff>(size) / 2);
    f.put('\x7f');
  }
  EXPECT_EQ(cache.LoadBinnedIndex(7, BinnedIndex::BuildKind::kExactPack, 200,
                                  3),
            nullptr);
  EXPECT_GE(cache.stats().rejected, 1);

  // Truncation is also rejected.
  std::filesystem::resize_file(file, 10);
  EXPECT_EQ(cache.LoadBinnedIndex(7, BinnedIndex::BuildKind::kExactPack, 200,
                                  3),
            nullptr);
  EXPECT_GE(cache.stats().rejected, 2);
}

// The warm-vs-cold contract, in process: a second engine over the same
// cache directory reloads the quantization and the trained metamodel
// instead of rebuilding them, and produces bit-identical results.
TEST(PersistenceSmokeTest, WarmEngineSkipsIndexBuildAndTraining) {
  const std::string dir = FreshCacheDir("warmcold");
  const auto train = std::make_shared<Dataset>(MakeData(400, 4, 8));

  auto run = [&](std::vector<Box>* boxes) -> engine::PersistentCacheStats {
    engine::EngineConfig config;
    config.threads = 2;
    config.cache_dir = dir;
    engine::DiscoveryEngine engine(config);
    // "RPx" exercises the metamodel tier (REDS + GBT trains on a miss);
    // "P" exercises the index tier (binned PRIM on `train` goes through
    // the engine's BinnedIndex provider).
    for (const char* method : {"RPx", "P"}) {
      engine::DiscoveryRequest request;
      request.train = train;
      request.method = method;
      request.options.l_prim = 3000;
      request.options.tune_metamodel = false;
      const auto job = engine.Submit(request);
      job->Wait();
      EXPECT_EQ(job->state(), engine::JobState::kDone);
      boxes->push_back(job->output().last_box);
    }
    const auto stats = engine.persistent_cache_stats();
    engine.Shutdown();
    return stats;
  };

  std::vector<Box> boxes;
  const auto cold = run(&boxes);
  EXPECT_TRUE(std::filesystem::exists(dir));
  EXPECT_EQ(cold.model_hits, 0);
  EXPECT_GE(cold.model_writes, 1);
  EXPECT_GE(cold.index_writes, 1);
  EXPECT_GE(cold.relabel_writes, 1);

  const auto warm = run(&boxes);
  // The relabel-stream tier serves the REDS job its finished relabeled
  // stream, so the warm run neither retrains nor even reloads the
  // metamodel -- the model tier is never consulted.
  EXPECT_GE(warm.relabel_hits, 1) << "warm run must reuse the relabeling";
  EXPECT_EQ(warm.relabel_misses, 0);
  EXPECT_EQ(warm.model_hits, 0);
  EXPECT_EQ(warm.model_misses, 0) << "warm run must not retrain";
  EXPECT_GE(warm.index_hits, 1) << "warm run must reload the quantization";
  ASSERT_EQ(boxes.size(), 4u);
  EXPECT_TRUE(boxes[0] == boxes[2])
      << "cold and warm REDS runs must produce bit-identical boxes";
  EXPECT_TRUE(boxes[1] == boxes[3])
      << "cold and warm PRIM runs must produce bit-identical boxes";
}

TEST(PersistentCacheTest, StreamedNamespaceIsSeparateAndKeepsPermutation) {
  const std::string dir = FreshCacheDir("streamns");
  const auto data = std::make_shared<Dataset>(MakeData(300, 3, 9));
  MatrixSource source(data);
  auto streamed = BinnedIndex::BuildStreamed(&source);
  ASSERT_TRUE(streamed.ok());

  engine::PersistentCache cache(dir);
  cache.StoreStreamedIndex(17, *streamed->index);
  // The exact-pack namespace does not see the streamed entry (and vice
  // versa): streamed requests are only ever served streamed bins.
  EXPECT_EQ(cache.LoadBinnedIndex(17, streamed->index->kind(), 300, 3),
            nullptr);
  const auto loaded = cache.LoadStreamedIndex(17, 300, 3);
  ASSERT_NE(loaded, nullptr);
  ASSERT_TRUE(loaded->has_sorted_rows());
  for (int j = 0; j < 3; ++j) {
    EXPECT_EQ(loaded->sorted_rows(j), streamed->index->sorted_rows(j));
    EXPECT_EQ(loaded->codes(j), streamed->index->codes(j));
  }
  // Shape mismatches miss.
  EXPECT_EQ(cache.LoadStreamedIndex(17, 299, 3), nullptr);
  EXPECT_EQ(cache.LoadStreamedIndex(18, 300, 3), nullptr);
}

// The disk tier's byte cap: filling a tiny cache drops the oldest entries
// (by mtime) first, never the entry just written, and counts every
// eviction.
TEST(PersistentCacheTest, ByteCapEvictsOldestEntries) {
  const std::string dir = FreshCacheDir("evict");
  const Dataset d = MakeData(400, 3, 10);
  const auto index = BinnedIndex::Build(d);

  // Size one entry, then cap the cache at just over two of them.
  uint64_t entry_bytes = 0;
  {
    engine::PersistentCache probe(dir);
    probe.StoreBinnedIndex(1, *index);
    for (const auto& f : std::filesystem::directory_iterator(dir)) {
      entry_bytes = static_cast<uint64_t>(f.file_size());
    }
    ASSERT_GT(entry_bytes, 0u);
    std::filesystem::remove_all(dir);
  }

  engine::PersistentCache cache(dir, /*max_bytes=*/entry_bytes * 2 +
                                         entry_bytes / 2);
  for (uint64_t fp : {1ULL, 2ULL, 3ULL}) {
    cache.StoreBinnedIndex(fp, *index);
    // Distinct mtimes even on coarse-granularity filesystems.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  // Three entries never fit: the oldest (fp 1) was dropped, the newer two
  // survive, and the eviction is counted.
  EXPECT_EQ(cache.LoadBinnedIndex(1, BinnedIndex::BuildKind::kExactPack,
                                  400, 3),
            nullptr);
  EXPECT_NE(cache.LoadBinnedIndex(2, BinnedIndex::BuildKind::kExactPack,
                                  400, 3),
            nullptr);
  EXPECT_NE(cache.LoadBinnedIndex(3, BinnedIndex::BuildKind::kExactPack,
                                  400, 3),
            nullptr);
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_EQ(cache.stats().index_writes, 3);

  // A store that alone exceeds the cap still lands (the cap spares the
  // entry just written) but evicts everything else. The trailing slash is
  // deliberate: dir spelling must not defeat the sparing.
  engine::PersistentCache tiny(dir + "/", /*max_bytes=*/1);
  tiny.StoreBinnedIndex(4, *index);
  EXPECT_NE(tiny.LoadBinnedIndex(4, BinnedIndex::BuildKind::kExactPack,
                                 400, 3),
            nullptr);
  EXPECT_EQ(tiny.LoadBinnedIndex(2, BinnedIndex::BuildKind::kExactPack,
                                 400, 3),
            nullptr);
  EXPECT_EQ(tiny.stats().evictions, 2);
}

// EngineConfig::cache_max_bytes reaches the tier: two datasets through a
// one-byte cap leave only the newest entry and surface the eviction in
// the engine's stats.
TEST(PersistentCacheTest, EngineExposesEvictionCounter) {
  const std::string dir = FreshCacheDir("engine_evict");
  engine::EngineConfig config;
  config.threads = 1;
  config.cache_dir = dir;
  config.cache_max_bytes = 1;  // everything but the newest entry evicts
  engine::DiscoveryEngine engine(config);
  for (uint64_t seed : {11ULL, 12ULL}) {
    engine::DiscoveryRequest request;
    request.train = std::make_shared<Dataset>(MakeData(200, 3, seed));
    request.method = "P";
    request.options.tune_metamodel = false;
    engine.Submit(request)->Wait();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  engine.Shutdown();
  EXPECT_EQ(engine.persistent_cache_stats().index_writes, 2);
  EXPECT_GE(engine.persistent_cache_stats().evictions, 1);
}

// --- Multi-process hardening: several processes sharing one cache
// directory must never corrupt it, whatever the interleaving.

// Counts files in `dir` whose name contains `needle`.
int CountFilesContaining(const std::string& dir, const std::string& needle) {
  int n = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().filename().string().find(needle) != std::string::npos) {
      ++n;
    }
  }
  return n;
}

// Four processes hammer the same two cache keys (an exact-pack entry and a
// streamed entry) with identical bytes while also loading them back. Temp
// files carry a pid/seq suffix so writers never clobber each other's
// in-progress file; renames are atomic so readers only ever observe a
// complete entry. Every load in every process must return valid data, and
// the directory must end clean: one file per entry, no orphaned temps.
TEST(PersistentCacheMultiProcessTest, ConcurrentSameKeyStoresStayValid) {
  const std::string dir = FreshCacheDir("mproc");
  const auto data = std::make_shared<Dataset>(MakeData(300, 3, 21));
  const auto index = BinnedIndex::Build(*data);
  MatrixSource source(data);
  const auto streamed = BinnedIndex::BuildStreamed(&source);
  ASSERT_TRUE(streamed.ok());

  constexpr int kProcesses = 4;
  constexpr int kIters = 30;
  constexpr uint64_t kPackKey = 101;
  constexpr uint64_t kStreamKey = 202;

  std::vector<pid_t> children;
  for (int p = 0; p < kProcesses; ++p) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: its own cache instance over the shared directory. Exit
      // codes signal the first failed check; _exit avoids running gtest
      // teardown in the forked copy.
      engine::PersistentCache cache(dir);
      for (int i = 0; i < kIters; ++i) {
        cache.StoreBinnedIndex(kPackKey, *index);
        cache.StoreStreamedIndex(kStreamKey, *streamed->index);
        const auto pack = cache.LoadBinnedIndex(
            kPackKey, BinnedIndex::BuildKind::kExactPack, 300, 3);
        if (pack == nullptr || pack->codes(0) != index->codes(0)) _exit(2);
        const auto stream = cache.LoadStreamedIndex(kStreamKey, 300, 3);
        if (stream == nullptr ||
            stream->codes(0) != streamed->index->codes(0)) {
          _exit(3);
        }
      }
      // Rejections would mean a reader observed a torn file.
      _exit(cache.stats().rejected == 0 ? 0 : 4);
    }
    children.push_back(pid);
  }
  for (const pid_t pid : children) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
  }

  // The directory ends clean: the two entries, no .tmp- orphans.
  EXPECT_EQ(CountFilesContaining(dir, ".tmp-"), 0);
  EXPECT_EQ(CountFilesContaining(dir, ""), 2);

  // And a fresh instance (a later process) still loads both.
  engine::PersistentCache after(dir);
  EXPECT_NE(after.LoadBinnedIndex(kPackKey,
                                  BinnedIndex::BuildKind::kExactPack, 300, 3),
            nullptr);
  EXPECT_NE(after.LoadStreamedIndex(kStreamKey, 300, 3), nullptr);
  EXPECT_EQ(after.stats().rejected, 0);
}

// A pre-existing entry that fails validation must be REPLACED by the next
// store -- never preserved as a "concurrent winner". (The win heuristic
// only applies to files that appear while our own write is in flight;
// files already present when the store starts are stale by definition:
// the engine only stores after a load missed.)
TEST(PersistentCacheMultiProcessTest, StaleEntryIsReplacedNotPreserved) {
  const std::string dir = FreshCacheDir("stale");
  const Dataset d = MakeData(250, 3, 22);
  const auto index = BinnedIndex::Build(d);
  engine::PersistentCache cache(dir);
  cache.StoreBinnedIndex(55, *index);

  // Another "process revision" left garbage under the same name.
  std::string file;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    file = entry.path().string();
  }
  ASSERT_FALSE(file.empty());
  {
    std::ofstream f(file, std::ios::binary | std::ios::trunc);
    f << "not a cache entry";
  }
  EXPECT_EQ(cache.LoadBinnedIndex(55, BinnedIndex::BuildKind::kExactPack,
                                  250, 3),
            nullptr);
  EXPECT_GE(cache.stats().rejected, 1);

  // The re-store must overwrite the garbage, and the next load must hit.
  cache.StoreBinnedIndex(55, *index);
  EXPECT_EQ(cache.stats().concurrent_wins, 0);
  const auto reloaded = cache.LoadBinnedIndex(
      55, BinnedIndex::BuildKind::kExactPack, 250, 3);
  ASSERT_NE(reloaded, nullptr);
  EXPECT_EQ(reloaded->codes(0), index->codes(0));
}

// The concurrent-win counter surfaces through stats() and the engine's
// metric registry name.
TEST(PersistentCacheMultiProcessTest, ConcurrentWinCounterIsExposed) {
  const std::string dir = FreshCacheDir("winctr");
  obs::MetricsRegistry metrics;
  engine::PersistentCache cache(dir, 0, &metrics);
  EXPECT_EQ(cache.stats().concurrent_wins, 0);
  metrics.counter("cache.persistent.concurrent_wins")->Add(3);
  EXPECT_EQ(cache.stats().concurrent_wins, 3);
}

}  // namespace
}  // namespace reds
