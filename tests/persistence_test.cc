// The on-disk cache tier: serialized BinnedIndexes reload bit-identical
// (and re-serialize to identical bytes), all metamodel families predict
// identically after a reload, corrupted/truncated/mismatched cache files
// are rejected -- never trusted -- and a warm engine run over the same
// data skips both index building and metamodel training, producing
// bit-identical results (the warm-vs-cold smoke the CI job drives through
// examples/streaming_discovery as two separate processes).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/binned_index.h"
#include "core/dataset_source.h"
#include "engine/discovery_engine.h"
#include "engine/persistent_cache.h"
#include "ml/gbt.h"
#include "ml/random_forest.h"
#include "ml/serialize.h"
#include "ml/svm.h"
#include "ml/tuning.h"
#include "util/rng.h"

namespace reds {
namespace {

Dataset MakeData(int n, int dim, uint64_t seed) {
  Rng rng(seed);
  Dataset d(dim);
  std::vector<double> x(static_cast<size_t>(dim));
  for (int i = 0; i < n; ++i) {
    for (auto& v : x) v = rng.Uniform();
    const double p = (x[0] < 0.45 && x[1] > 0.3) ? 0.8 : 0.15;
    d.AddRow(x, rng.Bernoulli(p) ? 1.0 : 0.0);
  }
  return d;
}

std::string FreshCacheDir(const char* name) {
  const std::string dir = ::testing::TempDir() + "reds_cache_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(BinnedIndexSerializationTest, RoundTripsBitIdentical) {
  const Dataset d = MakeData(700, 4, 1);
  const auto original = BinnedIndex::Build(d);
  util::ByteWriter bytes;
  original->Serialize(&bytes);

  util::ByteReader reader(bytes.data());
  auto loaded = BinnedIndex::Deserialize(&reader);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(reader.AtEnd());
  ASSERT_EQ((*loaded)->num_rows(), original->num_rows());
  ASSERT_EQ((*loaded)->num_cols(), original->num_cols());
  EXPECT_EQ((*loaded)->kind(), original->kind());
  for (int j = 0; j < original->num_cols(); ++j) {
    EXPECT_EQ((*loaded)->codes(j), original->codes(j));
    ASSERT_EQ((*loaded)->num_bins(j), original->num_bins(j));
    for (int b = 0; b < original->num_bins(j); ++b) {
      EXPECT_EQ((*loaded)->bin_first(j, b), original->bin_first(j, b));
      EXPECT_EQ((*loaded)->bin_last(j, b), original->bin_last(j, b));
      EXPECT_EQ((*loaded)->bin_begin_rank(j, b),
                original->bin_begin_rank(j, b));
    }
  }
  // Re-serializing the reload produces identical bytes.
  util::ByteWriter again;
  (*loaded)->Serialize(&again);
  EXPECT_EQ(bytes.data(), again.data());
}

TEST(BinnedIndexSerializationTest, StreamedIndexKeepsItsPermutation) {
  const auto data = std::make_shared<Dataset>(MakeData(400, 3, 2));
  MatrixSource source(data);
  auto streamed = BinnedIndex::BuildStreamed(&source);
  ASSERT_TRUE(streamed.ok());
  util::ByteWriter bytes;
  streamed->index->Serialize(&bytes);
  util::ByteReader reader(bytes.data());
  auto loaded = BinnedIndex::Deserialize(&reader);
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE((*loaded)->has_sorted_rows());
  for (int j = 0; j < 3; ++j) {
    EXPECT_EQ((*loaded)->sorted_rows(j), streamed->index->sorted_rows(j));
  }
}

TEST(BinnedIndexSerializationTest, RejectsCorruptionAndTruncation) {
  const Dataset d = MakeData(300, 3, 3);
  const auto original = BinnedIndex::Build(d);
  util::ByteWriter bytes;
  original->Serialize(&bytes);
  const std::string& good = bytes.data();

  // Truncations at every granularity fail cleanly.
  for (size_t keep : {size_t{0}, size_t{3}, size_t{20}, good.size() / 2,
                      good.size() - 1}) {
    util::ByteReader reader(good.data(), keep);
    EXPECT_FALSE(BinnedIndex::Deserialize(&reader).ok()) << keep;
  }
  // A flipped byte in the middle of the payload is caught by the
  // structural / count validation.
  std::string corrupt = good;
  corrupt[corrupt.size() / 2] = static_cast<char>(
      static_cast<uint8_t>(corrupt[corrupt.size() / 2]) ^ 0x5a);
  util::ByteReader reader(corrupt);
  // Either rejected outright, or -- if the flip landed in a value field --
  // it must still parse into a structurally valid index; both are safe.
  auto result = BinnedIndex::Deserialize(&reader);
  if (result.ok()) {
    EXPECT_EQ((*result)->num_rows(), original->num_rows());
    EXPECT_EQ((*result)->num_cols(), original->num_cols());
  }
}

TEST(MetamodelSerializationTest, AllFamiliesPredictIdenticallyAfterReload) {
  const Dataset train = MakeData(300, 4, 4);
  const Dataset probe = MakeData(64, 4, 5);
  const ml::MetamodelKind kinds[] = {ml::MetamodelKind::kRandomForest,
                                     ml::MetamodelKind::kGbt,
                                     ml::MetamodelKind::kSvm};
  for (const ml::MetamodelKind kind : kinds) {
    const auto model = ml::FitDefault(kind, train, 42);
    util::ByteWriter bytes;
    ml::SerializeMetamodel(*model, kind, &bytes);
    util::ByteReader reader(bytes.data());
    auto loaded = ml::DeserializeMetamodel(&reader, kind);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    for (int i = 0; i < probe.num_rows(); ++i) {
      EXPECT_EQ(model->PredictProb(probe.row(i)),
                (*loaded)->PredictProb(probe.row(i)))
          << ml::MetamodelSuffix(kind) << " row " << i;
    }
    // A kind mismatch is rejected.
    util::ByteReader wrong(bytes.data());
    EXPECT_FALSE(ml::DeserializeMetamodel(
                     &wrong, kind == ml::MetamodelKind::kSvm
                                 ? ml::MetamodelKind::kGbt
                                 : ml::MetamodelKind::kSvm)
                     .ok());
  }
}

TEST(PersistentCacheTest, StoresAndReloadsAcrossInstances) {
  const std::string dir = FreshCacheDir("roundtrip");
  const Dataset d = MakeData(250, 3, 6);
  const auto index = BinnedIndex::Build(d);

  {
    engine::PersistentCache cache(dir);
    EXPECT_EQ(cache.LoadBinnedIndex(99, BinnedIndex::BuildKind::kExactPack,
                                    250, 3),
              nullptr);
    cache.StoreBinnedIndex(99, *index);
    const auto stats = cache.stats();
    EXPECT_EQ(stats.index_misses, 1);
    EXPECT_EQ(stats.index_writes, 1);
  }
  {
    // A second instance (a "second process") sees the file.
    engine::PersistentCache cache(dir);
    const auto loaded = cache.LoadBinnedIndex(
        99, BinnedIndex::BuildKind::kExactPack, 250, 3);
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(loaded->codes(0), index->codes(0));
    EXPECT_EQ(cache.stats().index_hits, 1);
    // Shape or kind mismatches miss instead of returning the wrong index.
    EXPECT_EQ(cache.LoadBinnedIndex(99, BinnedIndex::BuildKind::kSketch, 250,
                                    3),
              nullptr);
    EXPECT_EQ(cache.LoadBinnedIndex(99, BinnedIndex::BuildKind::kExactPack,
                                    251, 3),
              nullptr);
  }
}

TEST(PersistentCacheTest, RejectsTamperedFiles) {
  const std::string dir = FreshCacheDir("tamper");
  const Dataset d = MakeData(200, 3, 7);
  const auto index = BinnedIndex::Build(d);
  engine::PersistentCache cache(dir);
  cache.StoreBinnedIndex(7, *index);

  // Find the written file and flip a payload byte.
  std::string file;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    file = entry.path().string();
  }
  ASSERT_FALSE(file.empty());
  {
    std::fstream f(file, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(0, std::ios::end);
    const auto size = f.tellg();
    f.seekp(static_cast<std::streamoff>(size) / 2);
    f.put('\x7f');
  }
  EXPECT_EQ(cache.LoadBinnedIndex(7, BinnedIndex::BuildKind::kExactPack, 200,
                                  3),
            nullptr);
  EXPECT_GE(cache.stats().rejected, 1);

  // Truncation is also rejected.
  std::filesystem::resize_file(file, 10);
  EXPECT_EQ(cache.LoadBinnedIndex(7, BinnedIndex::BuildKind::kExactPack, 200,
                                  3),
            nullptr);
  EXPECT_GE(cache.stats().rejected, 2);
}

// The warm-vs-cold contract, in process: a second engine over the same
// cache directory reloads the quantization and the trained metamodel
// instead of rebuilding them, and produces bit-identical results.
TEST(PersistenceSmokeTest, WarmEngineSkipsIndexBuildAndTraining) {
  const std::string dir = FreshCacheDir("warmcold");
  const auto train = std::make_shared<Dataset>(MakeData(400, 4, 8));

  auto run = [&](std::vector<Box>* boxes) -> engine::PersistentCacheStats {
    engine::EngineConfig config;
    config.threads = 2;
    config.cache_dir = dir;
    engine::DiscoveryEngine engine(config);
    // "RPx" exercises the metamodel tier (REDS + GBT trains on a miss);
    // "P" exercises the index tier (binned PRIM on `train` goes through
    // the engine's BinnedIndex provider).
    for (const char* method : {"RPx", "P"}) {
      engine::DiscoveryRequest request;
      request.train = train;
      request.method = method;
      request.options.l_prim = 3000;
      request.options.tune_metamodel = false;
      const auto job = engine.Submit(request);
      job->Wait();
      EXPECT_EQ(job->state(), engine::JobState::kDone);
      boxes->push_back(job->output().last_box);
    }
    const auto stats = engine.persistent_cache_stats();
    engine.Shutdown();
    return stats;
  };

  std::vector<Box> boxes;
  const auto cold = run(&boxes);
  EXPECT_TRUE(std::filesystem::exists(dir));
  EXPECT_EQ(cold.model_hits, 0);
  EXPECT_GE(cold.model_writes, 1);
  EXPECT_GE(cold.index_writes, 1);

  const auto warm = run(&boxes);
  EXPECT_GE(warm.model_hits, 1) << "warm run must reload, not retrain";
  EXPECT_EQ(warm.model_misses, 0);
  EXPECT_GE(warm.index_hits, 1) << "warm run must reload the quantization";
  ASSERT_EQ(boxes.size(), 4u);
  EXPECT_TRUE(boxes[0] == boxes[2])
      << "cold and warm REDS runs must produce bit-identical boxes";
  EXPECT_TRUE(boxes[1] == boxes[3])
      << "cold and warm PRIM runs must produce bit-identical boxes";
}

}  // namespace
}  // namespace reds
