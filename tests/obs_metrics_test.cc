// MetricsRegistry: multi-threaded counter exactness, histogram bucket math
// and merge associativity, quantile accuracy against stats/descriptive, and
// the JSON / Prometheus exporters.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "stats/descriptive.h"
#include "util/rng.h"

namespace reds::obs {
namespace {

// Counters and gauges stay live under REDS_OBS_NOOP (stat views depend on
// them); only the timed paths -- histogram observations, scoped timers --
// compile out, so only those tests skip.
#ifdef REDS_OBS_NOOP
#define SKIP_UNDER_NOOP() \
  GTEST_SKIP() << "timed instrumentation compiled out (REDS_OBS_NOOP)"
#else
#define SKIP_UNDER_NOOP()
#endif

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 200000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrements; ++i) counter.Add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.Value(),
            static_cast<uint64_t>(kThreads) * kIncrements);
}

TEST(CounterTest, DeltasAccumulate) {
  Counter counter;
  counter.Add(5);
  counter.Add();  // default delta 1
  counter.Add(94);
  EXPECT_EQ(counter.Value(), 100u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  EXPECT_EQ(gauge.Value(), 0);
  gauge.Set(7);
  gauge.Add(-10);
  EXPECT_EQ(gauge.Value(), -3);
}

TEST(HistogramTest, SmallValuesAreExact) {
  SKIP_UNDER_NOOP();
  // Values below kSubBuckets get unit-width buckets: quantiles are exact.
  Histogram h;
  for (uint64_t v = 0; v < 32; ++v) h.Observe(v);
  EXPECT_EQ(h.Count(), 32u);
  EXPECT_EQ(h.Sum(), 31u * 32u / 2u);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 31.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 15.0);  // nearest rank: 16th of 32
}

TEST(HistogramTest, BucketIndexRoundTrips) {
  // Every bucket's lower bound must map back to that bucket, and bucket
  // indexes must be monotone in the value.
  for (int idx = 0; idx < Histogram::kNumBuckets; ++idx) {
    const uint64_t lb = Histogram::BucketLowerBound(idx);
    if (idx > 0 && lb == Histogram::BucketLowerBound(idx - 1)) {
      continue;  // top-of-range saturation
    }
    EXPECT_EQ(Histogram::BucketIndex(lb), idx) << "lower bound " << lb;
  }
  uint64_t probe = 1;
  int last = -1;
  for (int i = 0; i < 63; ++i, probe <<= 1) {
    const int idx = Histogram::BucketIndex(probe);
    EXPECT_GT(idx, last);
    last = idx;
  }
}

TEST(HistogramTest, RelativeErrorBounded) {
  SKIP_UNDER_NOOP();
  // A single large value: its bucket representative must be within
  // 1/kSubBuckets of the true value.
  for (uint64_t v : {37ull, 1000ull, 123456ull, 99999999ull,
                     123456789123ull}) {
    Histogram h;
    h.Observe(v);
    const double q = h.Quantile(0.5);
    const double rel = std::abs(q - static_cast<double>(v)) /
                       static_cast<double>(v);
    EXPECT_LE(rel, 1.0 / Histogram::kSubBuckets) << "value " << v;
  }
}

TEST(HistogramTest, QuantilesTrackDescriptiveStats) {
  SKIP_UNDER_NOOP();
  // Heavy-tailed sample (exponentiated uniforms): histogram quantiles must
  // stay within the log-bucket relative error of the exact type-7
  // quantiles from stats/descriptive (plus a tiny slack for the
  // nearest-rank vs interpolation difference).
  Rng rng(42);
  Histogram h;
  std::vector<double> values;
  for (int i = 0; i < 20000; ++i) {
    const double v = std::exp(rng.Uniform() * 12.0) + 100.0;
    const uint64_t u = static_cast<uint64_t>(v);
    values.push_back(static_cast<double>(u));
    h.Observe(u);
  }
  for (double p : {0.5, 0.9, 0.95, 0.99}) {
    const double exact = stats::Quantile(values, p);
    const double approx = h.Quantile(p);
    const double rel = std::abs(approx - exact) / exact;
    EXPECT_LE(rel, 1.0 / Histogram::kSubBuckets + 0.01)
        << "p=" << p << " exact=" << exact << " approx=" << approx;
  }
}

TEST(HistogramTest, ConcurrentObserveCountsExactly) {
  SKIP_UNDER_NOOP();
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kObservations = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kObservations; ++i) {
        h.Observe(static_cast<uint64_t>(t * 1000 + i % 997));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.Count(), static_cast<uint64_t>(kThreads) * kObservations);
  const HistogramSnapshot s = h.TakeSnapshot();
  uint64_t bucket_total = 0;
  for (uint64_t b : s.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, h.Count());
}

HistogramSnapshot SnapshotOf(std::initializer_list<uint64_t> values) {
  Histogram h;
  for (uint64_t v : values) h.Observe(v);
  return h.TakeSnapshot();
}

bool SnapshotsEqual(const HistogramSnapshot& a, const HistogramSnapshot& b) {
  return a.count == b.count && a.sum == b.sum && a.min == b.min &&
         a.max == b.max && a.buckets == b.buckets;
}

TEST(HistogramTest, MergeIsAssociativeAndCommutative) {
  SKIP_UNDER_NOOP();
  const HistogramSnapshot a = SnapshotOf({1, 5, 100000});
  const HistogramSnapshot b = SnapshotOf({7, 7, 7, 90});
  const HistogramSnapshot c = SnapshotOf({123456789, 3});

  HistogramSnapshot ab_c = a;   // (a + b) + c
  ab_c.Merge(b);
  ab_c.Merge(c);
  HistogramSnapshot bc = b;     // a + (b + c)
  bc.Merge(c);
  HistogramSnapshot a_bc = a;
  a_bc.Merge(bc);
  EXPECT_TRUE(SnapshotsEqual(ab_c, a_bc));

  HistogramSnapshot ba = b;     // commutativity
  ba.Merge(a);
  HistogramSnapshot ab = a;
  ab.Merge(b);
  EXPECT_TRUE(SnapshotsEqual(ab, ba));

  // Folding the merged snapshot back into a live histogram preserves the
  // totals (the cross-process aggregation path).
  Histogram h;
  h.MergeFrom(ab_c);
  EXPECT_EQ(h.Count(), 9u);
  EXPECT_EQ(h.Sum(), a.sum + b.sum + c.sum);
}

TEST(HistogramTest, MergeIntoEmptyTakesOtherExtremes) {
  SKIP_UNDER_NOOP();
  HistogramSnapshot empty;
  const HistogramSnapshot other = SnapshotOf({10, 500});
  empty.Merge(other);
  EXPECT_EQ(empty.min, 10u);
  EXPECT_EQ(empty.max, 500u);
  EXPECT_EQ(empty.count, 2u);
}

TEST(MetricsRegistryTest, GetOrCreateReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* c1 = registry.counter("a.b");
  Counter* c2 = registry.counter("a.b");
  EXPECT_EQ(c1, c2);
  EXPECT_NE(registry.counter("a.c"), c1);
  EXPECT_EQ(registry.gauge("g"), registry.gauge("g"));
  EXPECT_EQ(registry.histogram("h"), registry.histogram("h"));
}

TEST(MetricsRegistryTest, ConcurrentRegistrationAndRecording) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      Counter* c = registry.counter("shared");  // get-or-create race
      for (int i = 0; i < kIncrements; ++i) c->Add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.CounterValue("shared"),
            static_cast<uint64_t>(kThreads) * kIncrements);
}

TEST(MetricsRegistryTest, ReadersReturnZeroForAbsentNames) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.CounterValue("nope"), 0u);
  EXPECT_EQ(registry.GaugeValue("nope"), 0);
  EXPECT_EQ(registry.HistogramData("nope").count, 0u);
}

TEST(MetricsRegistryTest, JsonExportRoundTripsValues) {
  SKIP_UNDER_NOOP();
  MetricsRegistry registry;
  registry.counter("cache.hits")->Add(3);
  registry.gauge("pool.queue_depth")->Set(-2);
  for (int i = 1; i <= 100; ++i) {
    registry.histogram("job.latency_ns")->Observe(static_cast<uint64_t>(i));
  }
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"cache.hits\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"pool.queue_depth\": -2"), std::string::npos);
  EXPECT_NE(json.find("\"job.latency_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 100"), std::string::npos);
  EXPECT_NE(json.find("\"p50\": 50"), std::string::npos);
  EXPECT_NE(json.find("\"p99\": 98.5"), std::string::npos);  // bucket midpoint
  // Stable output: two dumps of the same state are bytewise identical.
  EXPECT_EQ(json, registry.ToJson());
  EXPECT_EQ(json, registry.Dump(ExportFormat::kJson));
}

TEST(MetricsRegistryTest, PrometheusExportSanitizesNames) {
  SKIP_UNDER_NOOP();
  MetricsRegistry registry;
  registry.counter("cache.persistent.index-hits")->Add(7);
  registry.histogram("stage.prim.peel")->Observe(42);
  const std::string text = registry.ToPrometheusText();
  EXPECT_NE(text.find("# TYPE cache_persistent_index_hits counter"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("cache_persistent_index_hits 7"), std::string::npos);
  EXPECT_NE(text.find("stage_prim_peel{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("stage_prim_peel_count 1"), std::string::npos);
  EXPECT_EQ(text, registry.Dump(ExportFormat::kPrometheus));
}

TEST(ScopedTimerTest, RecordsIntoHistogram) {
  SKIP_UNDER_NOOP();
  Histogram h;
  { ScopedTimer timer(&h); }
  { ScopedTimer timer(nullptr); }  // null histogram: free, no crash
  EXPECT_EQ(h.Count(), 1u);
}

}  // namespace
}  // namespace reds::obs
