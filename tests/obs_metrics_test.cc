// MetricsRegistry: multi-threaded counter exactness, histogram bucket math
// and merge associativity, quantile accuracy against stats/descriptive, and
// the JSON / Prometheus exporters.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "util/serialize.h"
#include "stats/descriptive.h"
#include "util/rng.h"

namespace reds::obs {
namespace {

// Counters and gauges stay live under REDS_OBS_NOOP (stat views depend on
// them); only the timed paths -- histogram observations, scoped timers --
// compile out, so only those tests skip.
#ifdef REDS_OBS_NOOP
#define SKIP_UNDER_NOOP() \
  GTEST_SKIP() << "timed instrumentation compiled out (REDS_OBS_NOOP)"
#else
#define SKIP_UNDER_NOOP()
#endif

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 200000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrements; ++i) counter.Add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.Value(),
            static_cast<uint64_t>(kThreads) * kIncrements);
}

TEST(CounterTest, DeltasAccumulate) {
  Counter counter;
  counter.Add(5);
  counter.Add();  // default delta 1
  counter.Add(94);
  EXPECT_EQ(counter.Value(), 100u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  EXPECT_EQ(gauge.Value(), 0);
  gauge.Set(7);
  gauge.Add(-10);
  EXPECT_EQ(gauge.Value(), -3);
}

TEST(HistogramTest, SmallValuesAreExact) {
  SKIP_UNDER_NOOP();
  // Values below kSubBuckets get unit-width buckets: quantiles are exact.
  Histogram h;
  for (uint64_t v = 0; v < 32; ++v) h.Observe(v);
  EXPECT_EQ(h.Count(), 32u);
  EXPECT_EQ(h.Sum(), 31u * 32u / 2u);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 31.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 15.0);  // nearest rank: 16th of 32
}

TEST(HistogramTest, BucketIndexRoundTrips) {
  // Every bucket's lower bound must map back to that bucket, and bucket
  // indexes must be monotone in the value.
  for (int idx = 0; idx < Histogram::kNumBuckets; ++idx) {
    const uint64_t lb = Histogram::BucketLowerBound(idx);
    if (idx > 0 && lb == Histogram::BucketLowerBound(idx - 1)) {
      continue;  // top-of-range saturation
    }
    EXPECT_EQ(Histogram::BucketIndex(lb), idx) << "lower bound " << lb;
  }
  uint64_t probe = 1;
  int last = -1;
  for (int i = 0; i < 63; ++i, probe <<= 1) {
    const int idx = Histogram::BucketIndex(probe);
    EXPECT_GT(idx, last);
    last = idx;
  }
}

TEST(HistogramTest, RelativeErrorBounded) {
  SKIP_UNDER_NOOP();
  // A single large value: its bucket representative must be within
  // 1/kSubBuckets of the true value.
  for (uint64_t v : {37ull, 1000ull, 123456ull, 99999999ull,
                     123456789123ull}) {
    Histogram h;
    h.Observe(v);
    const double q = h.Quantile(0.5);
    const double rel = std::abs(q - static_cast<double>(v)) /
                       static_cast<double>(v);
    EXPECT_LE(rel, 1.0 / Histogram::kSubBuckets) << "value " << v;
  }
}

TEST(HistogramTest, QuantilesTrackDescriptiveStats) {
  SKIP_UNDER_NOOP();
  // Heavy-tailed sample (exponentiated uniforms): histogram quantiles must
  // stay within the log-bucket relative error of the exact type-7
  // quantiles from stats/descriptive (plus a tiny slack for the
  // nearest-rank vs interpolation difference).
  Rng rng(42);
  Histogram h;
  std::vector<double> values;
  for (int i = 0; i < 20000; ++i) {
    const double v = std::exp(rng.Uniform() * 12.0) + 100.0;
    const uint64_t u = static_cast<uint64_t>(v);
    values.push_back(static_cast<double>(u));
    h.Observe(u);
  }
  for (double p : {0.5, 0.9, 0.95, 0.99}) {
    const double exact = stats::Quantile(values, p);
    const double approx = h.Quantile(p);
    const double rel = std::abs(approx - exact) / exact;
    EXPECT_LE(rel, 1.0 / Histogram::kSubBuckets + 0.01)
        << "p=" << p << " exact=" << exact << " approx=" << approx;
  }
}

TEST(HistogramTest, ConcurrentObserveCountsExactly) {
  SKIP_UNDER_NOOP();
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kObservations = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kObservations; ++i) {
        h.Observe(static_cast<uint64_t>(t * 1000 + i % 997));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.Count(), static_cast<uint64_t>(kThreads) * kObservations);
  const HistogramSnapshot s = h.TakeSnapshot();
  uint64_t bucket_total = 0;
  for (uint64_t b : s.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, h.Count());
}

HistogramSnapshot SnapshotOf(std::initializer_list<uint64_t> values) {
  Histogram h;
  for (uint64_t v : values) h.Observe(v);
  return h.TakeSnapshot();
}

bool SnapshotsEqual(const HistogramSnapshot& a, const HistogramSnapshot& b) {
  return a.count == b.count && a.sum == b.sum && a.min == b.min &&
         a.max == b.max && a.buckets == b.buckets;
}

TEST(HistogramTest, MergeIsAssociativeAndCommutative) {
  SKIP_UNDER_NOOP();
  const HistogramSnapshot a = SnapshotOf({1, 5, 100000});
  const HistogramSnapshot b = SnapshotOf({7, 7, 7, 90});
  const HistogramSnapshot c = SnapshotOf({123456789, 3});

  HistogramSnapshot ab_c = a;   // (a + b) + c
  ab_c.Merge(b);
  ab_c.Merge(c);
  HistogramSnapshot bc = b;     // a + (b + c)
  bc.Merge(c);
  HistogramSnapshot a_bc = a;
  a_bc.Merge(bc);
  EXPECT_TRUE(SnapshotsEqual(ab_c, a_bc));

  HistogramSnapshot ba = b;     // commutativity
  ba.Merge(a);
  HistogramSnapshot ab = a;
  ab.Merge(b);
  EXPECT_TRUE(SnapshotsEqual(ab, ba));

  // Folding the merged snapshot back into a live histogram preserves the
  // totals (the cross-process aggregation path).
  Histogram h;
  h.MergeFrom(ab_c);
  EXPECT_EQ(h.Count(), 9u);
  EXPECT_EQ(h.Sum(), a.sum + b.sum + c.sum);
}

TEST(HistogramTest, MergeIntoEmptyTakesOtherExtremes) {
  SKIP_UNDER_NOOP();
  HistogramSnapshot empty;
  const HistogramSnapshot other = SnapshotOf({10, 500});
  empty.Merge(other);
  EXPECT_EQ(empty.min, 10u);
  EXPECT_EQ(empty.max, 500u);
  EXPECT_EQ(empty.count, 2u);
}

TEST(MetricsRegistryTest, GetOrCreateReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* c1 = registry.counter("a.b");
  Counter* c2 = registry.counter("a.b");
  EXPECT_EQ(c1, c2);
  EXPECT_NE(registry.counter("a.c"), c1);
  EXPECT_EQ(registry.gauge("g"), registry.gauge("g"));
  EXPECT_EQ(registry.histogram("h"), registry.histogram("h"));
}

TEST(MetricsRegistryTest, ConcurrentRegistrationAndRecording) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      Counter* c = registry.counter("shared");  // get-or-create race
      for (int i = 0; i < kIncrements; ++i) c->Add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.CounterValue("shared"),
            static_cast<uint64_t>(kThreads) * kIncrements);
}

TEST(MetricsRegistryTest, ReadersReturnZeroForAbsentNames) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.CounterValue("nope"), 0u);
  EXPECT_EQ(registry.GaugeValue("nope"), 0);
  EXPECT_EQ(registry.HistogramData("nope").count, 0u);
}

TEST(MetricsRegistryTest, JsonExportRoundTripsValues) {
  SKIP_UNDER_NOOP();
  MetricsRegistry registry;
  registry.counter("cache.hits")->Add(3);
  registry.gauge("pool.queue_depth")->Set(-2);
  for (int i = 1; i <= 100; ++i) {
    registry.histogram("job.latency_ns")->Observe(static_cast<uint64_t>(i));
  }
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"cache.hits\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"pool.queue_depth\": -2"), std::string::npos);
  EXPECT_NE(json.find("\"job.latency_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 100"), std::string::npos);
  EXPECT_NE(json.find("\"p50\": 50"), std::string::npos);
  EXPECT_NE(json.find("\"p99\": 98.5"), std::string::npos);  // bucket midpoint
  // Stable output: two dumps of the same state are bytewise identical.
  EXPECT_EQ(json, registry.ToJson());
  EXPECT_EQ(json, registry.Dump(ExportFormat::kJson));
}

TEST(MetricsRegistryTest, PrometheusExportSanitizesNames) {
  SKIP_UNDER_NOOP();
  MetricsRegistry registry;
  registry.counter("cache.persistent.index-hits")->Add(7);
  registry.histogram("stage.prim.peel")->Observe(42);
  const std::string text = registry.ToPrometheusText();
  EXPECT_NE(text.find("# TYPE cache_persistent_index_hits counter"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("cache_persistent_index_hits 7"), std::string::npos);
  EXPECT_NE(text.find("stage_prim_peel{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("stage_prim_peel_count 1"), std::string::npos);
  EXPECT_EQ(text, registry.Dump(ExportFormat::kPrometheus));
}

TEST(ScopedTimerTest, RecordsIntoHistogram) {
  SKIP_UNDER_NOOP();
  Histogram h;
  { ScopedTimer timer(&h); }
  { ScopedTimer timer(nullptr); }  // null histogram: free, no crash
  EXPECT_EQ(h.Count(), 1u);
}

// --- Cross-registry folding: the shard-fleet aggregation contract. A
// coordinator folds per-worker RegistrySnapshots into its own registry;
// counters must fold exactly, histogram quantiles within the bucket bound.

TEST(RegistrySnapshotTest, SerializationRoundTrips) {
  SKIP_UNDER_NOOP();
  MetricsRegistry registry;
  registry.counter("work.items")->Add(12345);
  registry.counter("work.errors")->Add(2);
  registry.gauge("pool.size")->Set(-7);
  Histogram* h = registry.histogram("latency.ns");
  for (uint64_t v : {3u, 99u, 4096u, 123456789u}) h->Observe(v);

  const RegistrySnapshot snapshot = registry.TakeSnapshot();
  util::ByteWriter out;
  snapshot.SerializeTo(&out);
  util::ByteReader in(out.data());
  RegistrySnapshot parsed;
  ASSERT_TRUE(RegistrySnapshot::DeserializeFrom(&in, &parsed));
  EXPECT_EQ(parsed.counters, snapshot.counters);
  EXPECT_EQ(parsed.gauges, snapshot.gauges);
  ASSERT_EQ(parsed.histograms.size(), snapshot.histograms.size());
  for (const auto& [name, hs] : snapshot.histograms) {
    ASSERT_TRUE(parsed.histograms.count(name)) << name;
    EXPECT_TRUE(SnapshotsEqual(parsed.histograms.at(name), hs)) << name;
  }

  // Truncated wire bytes are rejected, not misparsed. (The reader borrows
  // the buffer, so the substring must outlive it.)
  const std::string truncated_bytes =
      out.data().substr(0, out.data().size() / 2);
  util::ByteReader truncated(truncated_bytes);
  RegistrySnapshot ignored;
  EXPECT_FALSE(RegistrySnapshot::DeserializeFrom(&truncated, &ignored));
}

TEST(RegistrySnapshotTest, CrossRegistryCounterFoldIsExact) {
  // Simulate W worker registries doing disjoint shares of one workload and
  // fold them into a coordinator registry; totals must equal a
  // single-process registry doing the whole workload.
  constexpr int kWorkers = 4;
  constexpr uint64_t kItems = 1000;
  MetricsRegistry single;
  MetricsRegistry coordinator;
  for (int w = 0; w < kWorkers; ++w) {
    MetricsRegistry worker;
    for (uint64_t i = w; i < kItems; i += kWorkers) {
      worker.counter("work.items")->Add(1);
      single.counter("work.items")->Add(1);
      if (i % 97 == 0) {
        worker.counter("work.retries")->Add(3);
        single.counter("work.retries")->Add(3);
      }
    }
    worker.gauge("worker.shard")->Set(w);
    coordinator.MergeSnapshot(worker.TakeSnapshot());
  }
  EXPECT_EQ(coordinator.CounterValue("work.items"),
            single.CounterValue("work.items"));
  EXPECT_EQ(coordinator.CounterValue("work.retries"),
            single.CounterValue("work.retries"));
  // Gauges are last-writer-wins: the final worker's value survives.
  EXPECT_EQ(coordinator.GaugeValue("worker.shard"), kWorkers - 1);
}

TEST(RegistrySnapshotTest, FoldedHistogramQuantilesMatchSingleProcess) {
  SKIP_UNDER_NOOP();
  // The same observation stream, recorded whole in one registry and
  // striped across worker registries that fold into a coordinator: the
  // folded histogram must be bucket-identical, so its quantiles agree with
  // the single-process ones exactly -- and both sit within the histogram's
  // 1/kSubBuckets relative bound of the exact sample quantile.
  constexpr int kWorkers = 3;
  Rng rng(42);
  std::vector<double> values;
  MetricsRegistry single;
  std::vector<std::unique_ptr<MetricsRegistry>> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.push_back(std::make_unique<MetricsRegistry>());
  }
  for (int i = 0; i < 20000; ++i) {
    const uint64_t v = 1 + rng.UniformInt(10'000'000);
    values.push_back(static_cast<double>(v));
    single.histogram("latency.ns")->Observe(v);
    workers[static_cast<size_t>(i % kWorkers)]
        ->histogram("latency.ns")
        ->Observe(v);
  }
  MetricsRegistry coordinator;
  for (const auto& w : workers) {
    coordinator.MergeSnapshot(w->TakeSnapshot());
  }
  const HistogramSnapshot folded = coordinator.HistogramData("latency.ns");
  const HistogramSnapshot whole = single.HistogramData("latency.ns");
  EXPECT_TRUE(SnapshotsEqual(folded, whole));
  for (double p : {0.5, 0.9, 0.95, 0.99}) {
    EXPECT_EQ(folded.Quantile(p), whole.Quantile(p)) << "p=" << p;
    const double exact = stats::Quantile(values, p);
    EXPECT_LE(std::abs(folded.Quantile(p) - exact) / exact,
              1.0 / Histogram::kSubBuckets + 0.01)
        << "p=" << p;
  }
}

TEST(RegistrySnapshotTest, MergeIsAssociative) {
  SKIP_UNDER_NOOP();
  auto make = [](uint64_t c, uint64_t v) {
    MetricsRegistry r;
    r.counter("c")->Add(c);
    r.histogram("h")->Observe(v);
    return r.TakeSnapshot();
  };
  const RegistrySnapshot a = make(1, 10);
  const RegistrySnapshot b = make(2, 2000);
  const RegistrySnapshot c = make(4, 300000);

  RegistrySnapshot left = a;   // (a + b) + c
  left.Merge(b);
  left.Merge(c);
  RegistrySnapshot bc = b;     // a + (b + c)
  bc.Merge(c);
  RegistrySnapshot right = a;
  right.Merge(bc);
  EXPECT_EQ(left.counters, right.counters);
  EXPECT_EQ(left.gauges, right.gauges);
  ASSERT_EQ(left.histograms.size(), right.histograms.size());
  EXPECT_TRUE(SnapshotsEqual(left.histograms.at("h"),
                             right.histograms.at("h")));
}

}  // namespace
}  // namespace reds::obs
