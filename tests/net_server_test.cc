// DiscoveryServer lifecycle and admission control, driven through real
// sockets. Determinism comes from the engine-coalesce-test trick: a
// one-thread engine whose sole worker is plugged by a gated job, so every
// request submitted over the wire behind it is still queued -- admission
// decisions (quota sheds, queue-depth sheds, coalesced-follower
// exemptions) then happen against a frozen engine state instead of a race.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/dataset_source.h"
#include "engine/discovery_engine.h"
#include "net/client.h"
#include "net/server.h"
#include "shard/source_spec.h"
#include "shard/wire.h"

namespace reds::net {
namespace {

const bool kHermetic = [] {
  unsetenv("REDS_CACHE_DIR");
  unsetenv("REDS_TRACE_DIR");
  return true;
}();

std::string UnixAddr(const std::string& name) {
  return "unix:/tmp/reds_net_" + name + "_" + std::to_string(::getpid()) +
         ".sock";
}

engine::EngineConfig EngineCfg(int threads) {
  engine::EngineConfig config;
  config.threads = threads;
  config.enable_persistent_cache = false;
  return config;
}

// Blocks the engine's sole worker inside a make_train factory until
// opened; everything submitted behind it stays queued.
class Gate {
 public:
  void Open() {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      open_ = true;
    }
    cv_.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return open_; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool open_ = false;
};

Dataset GateData() {
  Dataset d(2);
  for (int i = 0; i < 60; ++i) {
    d.AddRow({i * 0.01, 1.0 - i * 0.01}, i % 3 == 0 ? 1.0 : 0.0);
  }
  return d;
}

engine::JobHandle SubmitGateJob(engine::DiscoveryEngine* engine, Gate* gate) {
  engine::DiscoveryRequest request;
  request.make_train = [gate] {
    gate->Wait();
    return GateData();
  };
  request.method = "P";
  request.options.tune_metamodel = false;
  request.cell = "gate";
  return engine->Submit(std::move(request));
}

SubmitRequest WireRequest(uint64_t id, uint64_t seed,
                          DataMode mode = DataMode::kEager) {
  SubmitRequest request =
      MakeSubmit(id, "P", mode, /*rows=*/400, /*dims=*/4, seed,
                 /*alpha=*/0.05, /*l_prim=*/2000);
  request.source.distinct = 32;
  return request;
}

// The engine request the server builds for WireRequest, for in-process
// comparison runs.
engine::DiscoveryRequest DirectRequest(const SubmitRequest& wire) {
  engine::DiscoveryRequest req;
  Result<std::unique_ptr<DatasetSource>> source =
      shard::MakeSource(wire.source, 1, 0);
  Result<Dataset> data = ReadAll(source->get(), wire.source.block_rows);
  req.train = std::make_shared<const Dataset>(std::move(*data));
  req.method = wire.method;
  req.options.default_alpha = wire.alpha;
  req.options.min_points = wire.min_points;
  req.options.l_prim = wire.l_prim;
  req.options.seed = wire.options_seed;
  req.options.tune_metamodel = wire.tune_metamodel;
  return req;
}

uint64_t Counter(engine::DiscoveryEngine& engine, const std::string& name) {
  return engine.metrics().counter(name)->Value();
}

// Polls until `fn` returns true or ~2s pass; real-socket tests need one
// bounded wait for the loop thread to observe an fd state change.
bool Eventually(const std::function<bool()>& fn) {
  for (int i = 0; i < 400; ++i) {
    if (fn()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return fn();
}

TEST(NetServerTest, StartStopAndTcpAddressResolution) {
  engine::DiscoveryEngine engine(EngineCfg(2));
  ServerConfig config;
  config.address = "tcp:127.0.0.1:0";
  DiscoveryServer server(&engine, config);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_NE(server.address(), "tcp:127.0.0.1:0") << "port not resolved";

  NetClient client;
  ASSERT_TRUE(client.Connect(server.address()).ok());
  Result<HelloAck> ack = client.Hello("lifecycle-test");
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  EXPECT_EQ(ack->version, kProtocolVersion);
  EXPECT_EQ(ack->engine_threads, engine.threads());
  EXPECT_TRUE(client.Ping().ok());
  server.Stop();
  // Stopped means stopped: the socket is gone.
  NetClient late;
  EXPECT_FALSE(late.Connect(server.address()).ok());
}

TEST(NetServerTest, WarmRoundTripMatchesInProcessEngine) {
  engine::DiscoveryEngine engine(EngineCfg(2));
  ServerConfig config;
  config.address = UnixAddr("warm");
  DiscoveryServer server(&engine, config);
  ASSERT_TRUE(server.Start().ok());

  NetClient client;
  ASSERT_TRUE(client.Connect(server.address()).ok());
  ASSERT_TRUE(client.Hello("warm-test").ok());

  const SubmitRequest wire = WireRequest(1, /*seed=*/7);
  Result<SubmitOutcome> outcome = client.Submit(wire);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_EQ(outcome->kind, SubmitOutcome::Kind::kAdmitted);
  Result<RequestResult> cold = client.WaitResult(1);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  ASSERT_FALSE(cold->done.failed) << cold->done.error;
  EXPECT_GT(cold->done.server_latency_ns, 0u);
  EXPECT_GT(cold->done.trajectory_len, 0u);

  // Same spec again: warm caches, identical boxes.
  SubmitRequest again = wire;
  again.request_id = 2;
  ASSERT_TRUE(client.Submit(again).ok());
  Result<RequestResult> warm = client.WaitResult(2);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->done.last_box == cold->done.last_box);

  // The wire answer is the in-process answer: an identical request
  // submitted directly to the engine lands on the same box.
  engine::JobHandle direct = engine.Submit(DirectRequest(wire));
  direct->Wait();
  ASSERT_EQ(direct->state(), engine::JobState::kDone) << direct->error();
  EXPECT_TRUE(direct->output().last_box == cold->done.last_box);
  EXPECT_EQ(direct->output().trajectory.size(),
            static_cast<size_t>(cold->done.trajectory_len));
}

TEST(NetServerTest, StreamedSubmitStreamsTrajectoryBoxes) {
  engine::DiscoveryEngine engine(EngineCfg(2));
  ServerConfig config;
  config.address = UnixAddr("streamed");
  config.result_chunk_boxes = 4;  // force several kResultBoxes frames
  DiscoveryServer server(&engine, config);
  ASSERT_TRUE(server.Start().ok());

  NetClient client;
  ASSERT_TRUE(client.Connect(server.address()).ok());
  ASSERT_TRUE(client.Hello("streamed-test").ok());

  SubmitRequest wire = WireRequest(5, /*seed=*/9, DataMode::kStreamedSource);
  wire.want_boxes = true;
  Result<SubmitOutcome> outcome = client.Submit(wire);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_EQ(outcome->kind, SubmitOutcome::Kind::kAdmitted);
  Result<RequestResult> result = client.WaitResult(5);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(result->done.failed) << result->done.error;
  EXPECT_EQ(result->boxes.size(),
            static_cast<size_t>(result->done.trajectory_len));
  ASSERT_FALSE(result->boxes.empty());
  EXPECT_TRUE(result->boxes.back() == result->done.last_box);
}

TEST(NetServerTest, HelloRequiredBeforeAnythingElse) {
  engine::DiscoveryEngine engine(EngineCfg(1));
  ServerConfig config;
  config.address = UnixAddr("hello");
  DiscoveryServer server(&engine, config);
  ASSERT_TRUE(server.Start().ok());

  NetClient client;
  ASSERT_TRUE(client.Connect(server.address()).ok());
  ASSERT_TRUE(
      shard::WriteFrame(client.fd(), shard::MsgType::kPing, std::string())
          .ok());
  Result<shard::Frame> reply = shard::ReadFrame(client.fd());
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->type, shard::MsgType::kError);
  // ...and the connection is closed behind the error frame.
  Result<shard::Frame> eof = shard::ReadFrame(client.fd());
  EXPECT_FALSE(eof.ok());
  EXPECT_EQ(Counter(engine, "net.protocol_errors"), 1u);
}

TEST(NetServerTest, UnknownFrameTypeAndOversizedFrameAreFatal) {
  engine::DiscoveryEngine engine(EngineCfg(1));
  ServerConfig config;
  config.address = UnixAddr("hostile");
  config.max_frame_bytes = 1 << 20;
  DiscoveryServer server(&engine, config);
  ASSERT_TRUE(server.Start().ok());

  {
    NetClient client;
    ASSERT_TRUE(client.Connect(server.address()).ok());
    ASSERT_TRUE(client.Hello("hostile-unknown").ok());
    ASSERT_TRUE(shard::WriteFrame(client.fd(),
                                  static_cast<shard::MsgType>(99), "junk")
                    .ok());
    Result<shard::Frame> reply = shard::ReadFrame(client.fd());
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply->type, shard::MsgType::kError);
    EXPECT_FALSE(shard::ReadFrame(client.fd()).ok());
  }
  {
    NetClient client;
    ASSERT_TRUE(client.Connect(server.address()).ok());
    ASSERT_TRUE(client.Hello("hostile-oversized").ok());
    // Header declaring a 64 MiB payload against the 1 MiB cap; the server
    // must reject from the header alone -- no payload is ever sent.
    util::ByteWriter header;
    header.U32(64u << 20);
    header.U8(static_cast<uint8_t>(shard::MsgType::kSubmit));
    ASSERT_EQ(::write(client.fd(), header.data().data(), header.size()),
              static_cast<ssize_t>(header.size()));
    Result<shard::Frame> reply = shard::ReadFrame(client.fd());
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply->type, shard::MsgType::kError);
    Result<ErrorReply> err = ErrorReply::Parse(reply->payload);
    ASSERT_TRUE(err.ok());
    EXPECT_NE(err->message.find("oversized"), std::string::npos);
    EXPECT_FALSE(shard::ReadFrame(client.fd()).ok());
  }
  EXPECT_EQ(Counter(engine, "net.protocol_errors"), 2u);
}

TEST(NetServerTest, MalformedSubmitIsFatalButBadRequestIsInBand) {
  engine::DiscoveryEngine engine(EngineCfg(1));
  ServerConfig config;
  config.address = UnixAddr("reject");
  DiscoveryServer server(&engine, config);
  ASSERT_TRUE(server.Start().ok());

  {
    // Truncated submit payload: framing can no longer be trusted.
    NetClient client;
    ASSERT_TRUE(client.Connect(server.address()).ok());
    ASSERT_TRUE(client.Hello("malformed").ok());
    ASSERT_TRUE(
        shard::WriteFrame(client.fd(), shard::MsgType::kSubmit, "garbage")
            .ok());
    Result<shard::Frame> reply = shard::ReadFrame(client.fd());
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply->type, shard::MsgType::kError);
    EXPECT_FALSE(shard::ReadFrame(client.fd()).ok());
  }
  {
    // Well-formed but unacceptable (CSV source): in-band error, the
    // connection survives and serves the next request.
    NetClient client;
    ASSERT_TRUE(client.Connect(server.address()).ok());
    ASSERT_TRUE(client.Hello("csv").ok());
    SubmitRequest bad = WireRequest(1, 3);
    bad.source.kind = shard::SourceSpec::Kind::kCsv;
    bad.source.path = "/etc/passwd";
    Result<SubmitOutcome> outcome = client.Submit(bad);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    EXPECT_EQ(outcome->kind, SubmitOutcome::Kind::kRejected);
    EXPECT_NE(outcome->message.find("synthetic"), std::string::npos);

    Result<SubmitOutcome> good = client.Submit(WireRequest(2, 3));
    ASSERT_TRUE(good.ok()) << good.status().ToString();
    EXPECT_EQ(good->kind, SubmitOutcome::Kind::kAdmitted);
    EXPECT_TRUE(client.WaitResult(2).ok());
  }
}

TEST(NetServerTest, ShedsPastQueueDepthCapThenRecovers) {
  engine::DiscoveryEngine engine(EngineCfg(1));
  Gate gate;
  SubmitGateJob(&engine, &gate);  // pool slot 1 of the cap, held open
  ServerConfig config;
  config.address = UnixAddr("shed");
  config.max_queue_depth = 1;
  config.retry_after_ms = 75;
  DiscoveryServer server(&engine, config);
  ASSERT_TRUE(server.Start().ok());

  NetClient client;
  ASSERT_TRUE(client.Connect(server.address()).ok());
  ASSERT_TRUE(client.Hello("shed-test").ok());

  Result<SubmitOutcome> outcome = client.Submit(WireRequest(1, 21));
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_EQ(outcome->kind, SubmitOutcome::Kind::kShed);
  EXPECT_EQ(outcome->retry_after_ms, 75u);
  EXPECT_NE(outcome->message.find("queue depth"), std::string::npos);
  EXPECT_EQ(Counter(engine, "net.submits_shed"), 1u);
  EXPECT_EQ(Counter(engine, "net.submits_admitted"), 0u);

  // Saturation over: the retry is admitted and completes.
  gate.Open();
  engine.WaitAll();
  Result<SubmitOutcome> retry = client.Submit(WireRequest(2, 21));
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(retry->kind, SubmitOutcome::Kind::kAdmitted);
  Result<RequestResult> result = client.WaitResult(2);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->done.failed);
}

TEST(NetServerTest, CoalescedFollowersBypassAdmissionCaps) {
  engine::DiscoveryEngine engine(EngineCfg(1));
  Gate gate;
  SubmitGateJob(&engine, &gate);
  ServerConfig config;
  config.address = UnixAddr("coalesce");
  config.max_inflight_per_client = 1;  // binding for anything non-coalesced
  config.max_queue_depth = 3;
  DiscoveryServer server(&engine, config);
  ASSERT_TRUE(server.Start().ok());

  NetClient client;
  ASSERT_TRUE(client.Connect(server.address()).ok());
  ASSERT_TRUE(client.Hello("coalesce-test").ok());

  // Leader: admitted normally, takes the second pool slot (gate holds the
  // first).
  Result<SubmitOutcome> leader = client.Submit(WireRequest(1, 31));
  ASSERT_TRUE(leader.ok()) << leader.status().ToString();
  ASSERT_EQ(leader->kind, SubmitOutcome::Kind::kAdmitted);
  EXPECT_EQ(leader->flags, 0);
  EXPECT_EQ(engine.inflight_leader_jobs(), 2);

  // Three identical submits: each coalesces onto the queued leader, so
  // each is admitted past the quota of 1 -- and takes no pool slot.
  for (uint64_t id = 2; id <= 4; ++id) {
    SubmitRequest clone = WireRequest(id, 31);
    Result<SubmitOutcome> follower = client.Submit(clone);
    ASSERT_TRUE(follower.ok()) << follower.status().ToString();
    ASSERT_EQ(follower->kind, SubmitOutcome::Kind::kAdmitted) << id;
    EXPECT_EQ(follower->flags, kAdmitCoalescedExempt) << id;
  }
  EXPECT_EQ(engine.inflight_leader_jobs(), 2)
      << "followers must not take pool slots";
  EXPECT_EQ(Counter(engine, "engine.jobs.coalesced"), 3u);
  EXPECT_EQ(Counter(engine, "net.submits_coalesced_exempt"), 3u);
  EXPECT_EQ(Counter(engine, "net.submits_admitted"), 4u);

  // A distinct request is NOT exempt: the quota sheds it.
  Result<SubmitOutcome> distinct = client.Submit(WireRequest(9, 32));
  ASSERT_TRUE(distinct.ok()) << distinct.status().ToString();
  EXPECT_EQ(distinct->kind, SubmitOutcome::Kind::kShed);
  EXPECT_NE(distinct->message.find("quota"), std::string::npos);

  // One engine execution fans out to all four wire requests.
  gate.Open();
  Result<RequestResult> first = client.WaitResult(1);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_FALSE(first->done.failed) << first->done.error;
  for (uint64_t id = 2; id <= 4; ++id) {
    Result<RequestResult> r = client.WaitResult(id);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r->done.last_box == first->done.last_box) << id;
    EXPECT_EQ(r->done.flags, kAdmitCoalescedExempt) << id;
  }
}

// Regression: results for earlier ids landing in the client's stash while
// a later Submit awaits its ack must not be replayed to that Submit loop
// forever -- the client once cycled its stash without ever reading the
// socket, spinning at 100% CPU.
TEST(NetServerTest, PipelinedSubmitsSurviveInterleavedResults) {
  engine::DiscoveryEngine engine(EngineCfg(2));
  ServerConfig config;
  config.address = UnixAddr("pipelined");
  DiscoveryServer server(&engine, config);
  ASSERT_TRUE(server.Start().ok());

  NetClient client;
  ASSERT_TRUE(client.Connect(server.address()).ok());
  ASSERT_TRUE(client.Hello("pipeliner").ok());

  // Submit id N, let its result frame reach the socket, then submit N+1:
  // every later Submit call starts with result frames of earlier ids
  // queued ahead of its ack.
  for (uint64_t id = 1; id <= 4; ++id) {
    Result<SubmitOutcome> outcome = client.Submit(WireRequest(id, 80 + id));
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    ASSERT_EQ(outcome->kind, SubmitOutcome::Kind::kAdmitted) << id;
    engine.WaitAll();  // result for `id` is now in flight toward the client
    ASSERT_TRUE(Eventually([&] {
      return Counter(engine, "net.results_delivered") == id;
    }));
  }
  for (uint64_t id = 1; id <= 4; ++id) {
    Result<RequestResult> result = client.WaitResult(id);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_FALSE(result->done.failed) << result->done.error;
  }
  EXPECT_TRUE(client.Ping().ok());
}

TEST(NetServerTest, KeepaliveExpiryClosesIdleConnections) {
  engine::DiscoveryEngine engine(EngineCfg(1));
  ServerConfig config;
  config.address = UnixAddr("keepalive");
  config.keepalive_ms = 80;
  DiscoveryServer server(&engine, config);
  ASSERT_TRUE(server.Start().ok());

  NetClient client;
  ASSERT_TRUE(client.Connect(server.address()).ok());
  ASSERT_TRUE(client.Hello("keepalive-test").ok());
  // Pings refresh the deadline.
  for (int i = 0; i < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    ASSERT_TRUE(client.Ping().ok()) << i;
  }
  // Silence expires it.
  ASSERT_TRUE(Eventually([&] {
    return Counter(engine, "net.connections_closed") == 1;
  }));
  EXPECT_FALSE(shard::ReadFrame(client.fd()).ok());
}

TEST(NetServerTest, DisconnectMidJobCancelsDeliveryNotTheJob) {
  engine::DiscoveryEngine engine(EngineCfg(1));
  Gate gate;
  SubmitGateJob(&engine, &gate);
  ServerConfig config;
  config.address = UnixAddr("disconnect");
  DiscoveryServer server(&engine, config);
  ASSERT_TRUE(server.Start().ok());

  {
    NetClient client;
    ASSERT_TRUE(client.Connect(server.address()).ok());
    ASSERT_TRUE(client.Hello("quitter").ok());
    Result<SubmitOutcome> outcome = client.Submit(WireRequest(1, 41));
    ASSERT_TRUE(outcome.ok());
    ASSERT_EQ(outcome->kind, SubmitOutcome::Kind::kAdmitted);
  }  // client gone, job still queued behind the gate

  // Only after the loop has noticed the disconnect is the race closed;
  // then finishing the job must deliver nothing and touch nothing.
  ASSERT_TRUE(Eventually([&] {
    return Counter(engine, "net.connections_closed") == 1;
  }));
  gate.Open();
  engine.WaitAll();
  EXPECT_EQ(Counter(engine, "engine.jobs.completed"), 2u);  // gate + job
  EXPECT_EQ(Counter(engine, "engine.jobs.failed"), 0u);
  EXPECT_EQ(Counter(engine, "net.results_delivered"), 0u);

  // The server is unharmed.
  NetClient again;
  ASSERT_TRUE(again.Connect(server.address()).ok());
  ASSERT_TRUE(again.Hello("survivor").ok());
  EXPECT_TRUE(again.Ping().ok());
}

TEST(NetServerTest, HalfCloseDrainsPendingResultsThenCloses) {
  engine::DiscoveryEngine engine(EngineCfg(1));
  Gate gate;
  SubmitGateJob(&engine, &gate);
  ServerConfig config;
  config.address = UnixAddr("drain");
  DiscoveryServer server(&engine, config);
  ASSERT_TRUE(server.Start().ok());

  NetClient client;
  ASSERT_TRUE(client.Connect(server.address()).ok());
  ASSERT_TRUE(client.Hello("drainer").ok());
  Result<SubmitOutcome> outcome = client.Submit(WireRequest(1, 51));
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome->kind, SubmitOutcome::Kind::kAdmitted);

  // Half-close: we promise to send nothing more; the server owes us one
  // result before it hangs up.
  ASSERT_TRUE(client.FinishWrites().ok());
  gate.Open();
  Result<RequestResult> result = client.WaitResult(1);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->done.failed) << result->done.error;
  // Delivery done: now the server closes its side.
  EXPECT_FALSE(shard::ReadFrame(client.fd()).ok());
  EXPECT_TRUE(Eventually([&] {
    return Counter(engine, "net.connections_closed") == 1;
  }));
}

TEST(NetServerTest, StatusPollTracksTheJobLifecycle) {
  engine::DiscoveryEngine engine(EngineCfg(1));
  Gate gate;
  SubmitGateJob(&engine, &gate);
  ServerConfig config;
  config.address = UnixAddr("status");
  DiscoveryServer server(&engine, config);
  ASSERT_TRUE(server.Start().ok());

  NetClient client;
  ASSERT_TRUE(client.Connect(server.address()).ok());
  ASSERT_TRUE(client.Hello("poller").ok());

  Result<StatusReply> unknown = client.PollStatus(404);
  ASSERT_TRUE(unknown.ok());
  EXPECT_EQ(unknown->state, WireJobState::kUnknown);

  Result<SubmitOutcome> outcome = client.Submit(WireRequest(1, 61));
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome->kind, SubmitOutcome::Kind::kAdmitted);
  Result<StatusReply> queued = client.PollStatus(1);
  ASSERT_TRUE(queued.ok());
  EXPECT_EQ(queued->state, WireJobState::kQueued) << "gate holds the worker";

  gate.Open();
  Result<RequestResult> result = client.WaitResult(1);
  ASSERT_TRUE(result.ok());
  // Delivered means retired: the id is unknown again.
  Result<StatusReply> after = client.PollStatus(1);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->state, WireJobState::kUnknown);
}

TEST(NetServerTest, MetricsScrapeServesBothFormats) {
  engine::DiscoveryEngine engine(EngineCfg(2));
  ServerConfig config;
  config.address = UnixAddr("scrape");
  DiscoveryServer server(&engine, config);
  ASSERT_TRUE(server.Start().ok());

  NetClient client;
  ASSERT_TRUE(client.Connect(server.address()).ok());
  ASSERT_TRUE(client.Hello("scraper").ok());
  ASSERT_TRUE(client.Submit(WireRequest(1, 71)).ok());
  ASSERT_TRUE(client.WaitResult(1).ok());

  Result<std::string> json = client.Scrape(ScrapeFormat::kJson);
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  EXPECT_NE(json->find("\"net.submits_admitted\": 1"), std::string::npos);
  EXPECT_NE(json->find("net.request_latency_ns"), std::string::npos);
  EXPECT_NE(json->find("engine.job.latency_ns"), std::string::npos);

  Result<std::string> prom = client.Scrape(ScrapeFormat::kPrometheus);
  ASSERT_TRUE(prom.ok());
  EXPECT_NE(prom->find("net_submits_admitted 1"), std::string::npos);
  EXPECT_NE(prom->find("net_request_latency_ns{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(prom->find("engine_job_warm_latency_ns"), std::string::npos);
}

TEST(NetServerTest, BackpressuredWritesResumeOnWritability) {
  engine::DiscoveryEngine engine(EngineCfg(2));
  ServerConfig config;
  config.address = UnixAddr("backpressure");
  DiscoveryServer server(&engine, config);
  ASSERT_TRUE(server.Start().ok());

  NetClient client;
  ASSERT_TRUE(client.Connect(server.address()).ok());
  ASSERT_TRUE(client.Hello("hoarder").ok());

  // Queue a few hundred scrapes without reading a byte back: the dumps
  // overrun the socket buffer, the loop hits EAGAIN mid-frame, parks the
  // remainder, and resumes on EPOLLOUT once we start draining. Every dump
  // must arrive complete.
  constexpr int kScrapes = 300;
  MetricsScrape scrape;
  scrape.format = ScrapeFormat::kJson;
  util::ByteWriter payload;
  scrape.SerializeTo(&payload);
  for (int i = 0; i < kScrapes; ++i) {
    ASSERT_TRUE(shard::WriteFrame(client.fd(), shard::MsgType::kMetricsScrape,
                                  payload.data())
                    .ok())
        << i;
  }
  for (int i = 0; i < kScrapes; ++i) {
    Result<shard::Frame> frame = shard::ReadFrame(client.fd());
    ASSERT_TRUE(frame.ok()) << i << ": " << frame.status().ToString();
    ASSERT_EQ(frame->type, shard::MsgType::kMetricsDump) << i;
    Result<MetricsDump> dump = MetricsDump::Parse(frame->payload);
    ASSERT_TRUE(dump.ok()) << i;
    EXPECT_NE(dump->body.find("net.connections_accepted"), std::string::npos)
        << i;
  }
  EXPECT_TRUE(client.Ping().ok()) << "connection healthy after the flood";
}

TEST(NetServerTest, IdenticalRepeatIsServedFromTheResultCache) {
  engine::DiscoveryEngine engine(EngineCfg(2));
  ServerConfig config;
  config.address = UnixAddr("rescache");
  DiscoveryServer server(&engine, config);
  ASSERT_TRUE(server.Start().ok());

  NetClient client;
  ASSERT_TRUE(client.Connect(server.address()).ok());
  ASSERT_TRUE(client.Hello("rescache-test").ok());

  Result<SubmitOutcome> first = client.Submit(WireRequest(1, /*seed=*/91));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_EQ(first->kind, SubmitOutcome::Kind::kAdmitted);
  EXPECT_EQ(first->flags, 0) << "a first-timer must run for real";
  Result<RequestResult> cold = client.WaitResult(1);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  ASSERT_FALSE(cold->done.failed) << cold->done.error;
  EXPECT_EQ(Counter(engine, "engine.jobs.submitted"), 1u);
  EXPECT_EQ(Counter(engine, "net.result_cache_hits"), 0u);

  // Identical spec under a fresh id: replayed, not recomputed -- the
  // engine never sees a second job, and the reply is bit-equal.
  Result<SubmitOutcome> repeat = client.Submit(WireRequest(2, /*seed=*/91));
  ASSERT_TRUE(repeat.ok()) << repeat.status().ToString();
  ASSERT_EQ(repeat->kind, SubmitOutcome::Kind::kAdmitted);
  EXPECT_EQ(repeat->flags, kAdmitResultCached);
  Result<RequestResult> hit = client.WaitResult(2);
  ASSERT_TRUE(hit.ok()) << hit.status().ToString();
  ASSERT_FALSE(hit->done.failed) << hit->done.error;
  EXPECT_EQ(hit->done.flags, kAdmitResultCached);
  EXPECT_TRUE(hit->done.last_box == cold->done.last_box);
  EXPECT_EQ(hit->done.trajectory_len, cold->done.trajectory_len);
  EXPECT_EQ(Counter(engine, "engine.jobs.submitted"), 1u)
      << "the repeat must not reach the engine";
  EXPECT_EQ(Counter(engine, "net.result_cache_hits"), 1u);
  EXPECT_EQ(Counter(engine, "net.submits_admitted"), 2u)
      << "a replay is still an admitted request in the server's books";

  // A different seed is a different answer: no false sharing.
  Result<SubmitOutcome> other = client.Submit(WireRequest(3, /*seed=*/92));
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(other->flags, 0);
  ASSERT_TRUE(client.WaitResult(3).ok());
  EXPECT_EQ(Counter(engine, "engine.jobs.submitted"), 2u);

  // Cross-connection: the cache is a server property, not a connection
  // property.
  NetClient second;
  ASSERT_TRUE(second.Connect(server.address()).ok());
  ASSERT_TRUE(second.Hello("rescache-second").ok());
  Result<SubmitOutcome> cross = second.Submit(WireRequest(4, /*seed=*/91));
  ASSERT_TRUE(cross.ok());
  EXPECT_EQ(cross->flags, kAdmitResultCached);
  Result<RequestResult> cross_hit = second.WaitResult(4);
  ASSERT_TRUE(cross_hit.ok());
  EXPECT_TRUE(cross_hit->done.last_box == cold->done.last_box);
  EXPECT_EQ(Counter(engine, "engine.jobs.submitted"), 2u);
}

TEST(NetServerTest, ResultCacheReplaysTheStreamedTrajectory) {
  engine::DiscoveryEngine engine(EngineCfg(2));
  ServerConfig config;
  config.address = UnixAddr("rescache_boxes");
  config.result_chunk_boxes = 4;  // replay must re-chunk, too
  DiscoveryServer server(&engine, config);
  ASSERT_TRUE(server.Start().ok());

  NetClient client;
  ASSERT_TRUE(client.Connect(server.address()).ok());
  ASSERT_TRUE(client.Hello("rescache-boxes-test").ok());

  SubmitRequest wire = WireRequest(1, /*seed=*/93, DataMode::kStreamedSource);
  wire.want_boxes = true;
  ASSERT_TRUE(client.Submit(wire).ok());
  Result<RequestResult> cold = client.WaitResult(1);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  ASSERT_FALSE(cold->boxes.empty());

  // want_boxes is not part of the fingerprint: a repeat that wants the
  // trajectory gets the cached one, box for box.
  SubmitRequest again = wire;
  again.request_id = 2;
  Result<SubmitOutcome> repeat = client.Submit(again);
  ASSERT_TRUE(repeat.ok());
  EXPECT_EQ(repeat->flags, kAdmitResultCached);
  Result<RequestResult> hit = client.WaitResult(2);
  ASSERT_TRUE(hit.ok()) << hit.status().ToString();
  ASSERT_EQ(hit->boxes.size(), cold->boxes.size());
  for (size_t i = 0; i < hit->boxes.size(); ++i) {
    EXPECT_TRUE(hit->boxes[i] == cold->boxes[i]) << "box " << i;
  }
  EXPECT_EQ(Counter(engine, "engine.jobs.submitted"), 1u);

  // ...and a repeat that does not want boxes gets only the done frame.
  SubmitRequest no_boxes = wire;
  no_boxes.request_id = 3;
  no_boxes.want_boxes = false;
  ASSERT_TRUE(client.Submit(no_boxes).ok());
  Result<RequestResult> bare = client.WaitResult(3);
  ASSERT_TRUE(bare.ok());
  EXPECT_TRUE(bare->boxes.empty());
  EXPECT_TRUE(bare->done.last_box == cold->done.last_box);
}

TEST(NetServerTest, ResultCacheCanBeDisabled) {
  engine::DiscoveryEngine engine(EngineCfg(2));
  ServerConfig config;
  config.address = UnixAddr("rescache_off");
  config.result_cache_entries = 0;
  DiscoveryServer server(&engine, config);
  ASSERT_TRUE(server.Start().ok());

  NetClient client;
  ASSERT_TRUE(client.Connect(server.address()).ok());
  ASSERT_TRUE(client.Hello("rescache-off-test").ok());

  ASSERT_TRUE(client.Submit(WireRequest(1, /*seed=*/94)).ok());
  ASSERT_TRUE(client.WaitResult(1).ok());
  Result<SubmitOutcome> repeat = client.Submit(WireRequest(2, /*seed=*/94));
  ASSERT_TRUE(repeat.ok());
  EXPECT_EQ(repeat->flags, 0);
  ASSERT_TRUE(client.WaitResult(2).ok());
  EXPECT_EQ(Counter(engine, "engine.jobs.submitted"), 2u);
  EXPECT_EQ(Counter(engine, "net.result_cache_hits"), 0u);
}

}  // namespace
}  // namespace reds::net
