// Equivalence contracts behind the warm-path optimizations:
//  - streamed-fold CV tuning (row views over one shared full-data index)
//    must pick the same grid cell -- and produce the same final model -- as
//    the materialized reference plan that copies every fold matrix;
//  - FitOnRows on a shared index must be bit-identical to materializing the
//    subset, for every tree family;
//  - leaf-wise (best-first) growth with no leaf cap must reproduce the
//    depth-wise fitted function wherever gains are untied, and survive the
//    serialization round trip with its append-at-expansion node order.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "ml/cart.h"
#include "ml/gbt.h"
#include "ml/random_forest.h"
#include "ml/tuning.h"
#include "util/rng.h"
#include "util/serialize.h"

namespace reds {
namespace {

Dataset MakeData(int n, int dim, uint64_t seed, bool fractional = false,
                 int distinct_values = 0) {
  Rng rng(seed);
  Dataset d(dim);
  std::vector<double> x(static_cast<size_t>(dim));
  for (int i = 0; i < n; ++i) {
    for (auto& v : x) {
      v = distinct_values > 0
              ? static_cast<double>(rng.UniformInt(
                    static_cast<uint64_t>(distinct_values))) /
                    distinct_values
              : rng.Uniform();
    }
    const double p = (x[0] < 0.45 && x[1] > 0.3) ? 0.85 : 0.15;
    d.AddRow(x, fractional ? rng.LogitNormal(p > 0.5 ? 1.0 : -1.0, 0.8)
                           : (rng.Bernoulli(p) ? 1.0 : 0.0));
  }
  return d;
}

void ExpectSamePredictions(const ml::Metamodel& a, const ml::Metamodel& b,
                           const Dataset& probe, const char* what) {
  for (int i = 0; i < probe.num_rows(); ++i) {
    ASSERT_EQ(a.PredictProb(probe.row(i)), b.PredictProb(probe.row(i)))
        << what << " row " << i;
  }
}

TEST(StreamedTuningTest, SameWinnerAndModelAsMaterializedAcrossSeeds) {
  // Presorted backend: fold views are exact, so the streamed plan must be
  // bit-identical to the materialized reference -- same per-cell CV losses,
  // same winner, same refit.
  const Dataset d = MakeData(500, 4, 301);
  const Dataset probe = MakeData(200, 4, 302);
  for (const auto kind :
       {ml::MetamodelKind::kGbt, ml::MetamodelKind::kRandomForest,
        ml::MetamodelKind::kSvm}) {
    for (uint64_t seed : {11u, 23u, 37u}) {
      ml::TuningConfig streamed;
      streamed.folds = 3;
      streamed.fold_plan = ml::CvFoldPlan::kStreamed;
      ml::TuningConfig materialized = streamed;
      materialized.fold_plan = ml::CvFoldPlan::kMaterialized;
      const auto a = ml::TuneAndFit(kind, d, seed, streamed);
      const auto b = ml::TuneAndFit(kind, d, seed, materialized);
      ASSERT_NE(a, nullptr);
      ASSERT_NE(b, nullptr);
      ExpectSamePredictions(*a, *b, probe, "presorted");
    }
  }
}

TEST(StreamedTuningTest, SameModelOnHistogramBackendWithinBinBudget) {
  // Exact-pack regime (40 distinct values << 256 bins): the full-data
  // quantization the streamed folds share agrees with any fold-built one,
  // so histogram tuning is bit-identical across plans too.
  const Dataset d = MakeData(600, 4, 311, /*fractional=*/false, 40);
  const Dataset probe = MakeData(200, 4, 312);
  for (uint64_t seed : {7u, 19u}) {
    ml::TuningConfig streamed;
    streamed.folds = 3;
    streamed.backend = ml::SplitBackend::kHistogram;
    streamed.fold_plan = ml::CvFoldPlan::kStreamed;
    ml::TuningConfig materialized = streamed;
    materialized.fold_plan = ml::CvFoldPlan::kMaterialized;
    const auto a = ml::TuneAndFit(ml::MetamodelKind::kGbt, d, seed, streamed);
    const auto b =
        ml::TuneAndFit(ml::MetamodelKind::kGbt, d, seed, materialized);
    ExpectSamePredictions(*a, *b, probe, "histogram");
  }
}

TEST(StreamedTuningTest, FitOnRowsMatchesMaterializedSubset) {
  // The streamed plan's primitive: fitting on an ascending row view over
  // the full-data index must equal fitting on the copied subset.
  const Dataset d = MakeData(700, 4, 321, /*fractional=*/false, 30);
  const Dataset probe = MakeData(150, 4, 322);
  std::vector<int> rows;
  for (int r = 0; r < d.num_rows(); ++r) {
    if (r % 3 != 0) rows.push_back(r);  // a CV training fold's shape
  }
  const Dataset subset = d.SubsetRows(rows);
  const auto index = ColumnIndex::Build(d);
  const auto binned = BinnedIndex::Build(*index);

  for (const auto backend :
       {ml::SplitBackend::kPresorted, ml::SplitBackend::kHistogram}) {
    ml::GbtConfig gc;
    gc.num_rounds = 15;
    gc.max_depth = 3;
    gc.backend = backend;
    ml::GradientBoostedTrees streamed(gc), materialized(gc);
    streamed.FitOnRows(d, rows, 41, index.get(), binned.get());
    materialized.Fit(subset, 41);
    ExpectSamePredictions(streamed, materialized, probe, "gbt FitOnRows");

    ml::RandomForestConfig rc;
    rc.num_trees = 15;
    rc.backend = backend;
    ml::RandomForest rf_streamed(rc), rf_materialized(rc);
    rf_streamed.FitOnRows(d, rows, 43, index.get(), binned.get());
    rf_materialized.Fit(subset, 43);
    ExpectSamePredictions(rf_streamed, rf_materialized, probe,
                          "rf FitOnRows");
  }
}

TEST(LeafWiseGrowthTest, UncappedLeafWiseMatchesDepthWiseCart) {
  // Continuous features + fractional targets: gains are generically
  // untied, so best-first expansion finds the same split set as
  // depth-first -- only the node order differs. No mtry (feature draws
  // happen in creation order under leaf-wise, a different-but-valid rng
  // stream).
  for (uint64_t seed : {331u, 332u, 333u}) {
    const Dataset d = MakeData(400, 4, seed, /*fractional=*/true);
    const Dataset probe = MakeData(200, 4, seed + 500);
    ml::TreeConfig config;
    config.max_depth = 8;
    config.backend = ml::SplitBackend::kHistogram;

    ml::RegressionTree depth_wise;
    {
      Rng rng(5);
      depth_wise.Fit(d, config, &rng);
    }
    ml::RegressionTree leaf_wise;
    {
      ml::TreeConfig c = config;
      c.growth = ml::GrowthPolicy::kLeafWise;
      Rng rng(5);
      leaf_wise.Fit(d, c, &rng);
    }
    ASSERT_EQ(depth_wise.num_nodes(), leaf_wise.num_nodes()) << seed;
    ASSERT_EQ(depth_wise.num_leaves(), leaf_wise.num_leaves()) << seed;
    for (int i = 0; i < probe.num_rows(); ++i) {
      EXPECT_DOUBLE_EQ(depth_wise.Predict(probe.row(i)),
                       leaf_wise.Predict(probe.row(i)))
          << seed;
    }
  }
}

TEST(LeafWiseGrowthTest, UncappedLeafWiseMatchesDepthWiseGbt) {
  const Dataset d = MakeData(500, 4, 341, /*fractional=*/true);
  const Dataset probe = MakeData(200, 4, 342);
  ml::GbtConfig config;
  config.num_rounds = 20;
  config.max_depth = 4;
  config.backend = ml::SplitBackend::kHistogram;

  ml::GradientBoostedTrees depth_wise(config);
  depth_wise.Fit(d, 17);
  ml::GbtConfig leaf_config = config;
  leaf_config.growth = ml::GrowthPolicy::kLeafWise;
  ml::GradientBoostedTrees leaf_wise(leaf_config);
  leaf_wise.Fit(d, 17);
  ASSERT_EQ(depth_wise.num_trees(), leaf_wise.num_trees());
  for (int i = 0; i < probe.num_rows(); ++i) {
    EXPECT_DOUBLE_EQ(depth_wise.PredictMargin(probe.row(i)),
                     leaf_wise.PredictMargin(probe.row(i)));
  }
}

TEST(LeafWiseGrowthTest, MaxLeavesCapsTheTree) {
  const Dataset d = MakeData(800, 4, 351, /*fractional=*/true);
  ml::TreeConfig config;
  config.backend = ml::SplitBackend::kHistogram;
  config.growth = ml::GrowthPolicy::kLeafWise;
  config.max_leaves = 6;

  ml::RegressionTree tree;
  Rng rng(7);
  tree.Fit(d, config, &rng);
  ASSERT_TRUE(tree.fitted());
  EXPECT_LE(tree.num_leaves(), 6);
  // Deep data + best-first: the cap binds well below the uncapped size.
  ml::TreeConfig uncapped = config;
  uncapped.max_leaves = 0;
  ml::RegressionTree full;
  Rng rng2(7);
  full.Fit(d, uncapped, &rng2);
  EXPECT_GT(full.num_leaves(), 6);
}

TEST(LeafWiseGrowthTest, SerializationRoundTripPreservesLeafWiseTrees) {
  // Leaf-wise appends children at expansion, not at creation: the wire
  // format's strictly-forward child invariant must still hold.
  const Dataset d = MakeData(400, 4, 361, /*fractional=*/true);
  const Dataset probe = MakeData(150, 4, 362);
  ml::TreeConfig config;
  config.backend = ml::SplitBackend::kHistogram;
  config.growth = ml::GrowthPolicy::kLeafWise;
  config.max_leaves = 12;

  ml::RegressionTree tree;
  Rng rng(9);
  tree.Fit(d, config, &rng);
  ASSERT_TRUE(tree.fitted());

  util::ByteWriter wire;
  tree.SerializeTo(&wire);
  util::ByteReader reader(wire.data().data(), wire.size());
  ml::RegressionTree restored;
  ASSERT_TRUE(restored.DeserializeFrom(&reader, d.num_cols()).ok());
  ASSERT_EQ(restored.num_nodes(), tree.num_nodes());
  for (int i = 0; i < probe.num_rows(); ++i) {
    EXPECT_EQ(restored.Predict(probe.row(i)), tree.Predict(probe.row(i)));
  }
}

}  // namespace
}  // namespace reds
