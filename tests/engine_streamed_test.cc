// DatasetSource requests end to end: the engine fingerprints streams
// incrementally, shares every cache tier with the in-memory ingestion path
// (eager, lazy, and streamed requests over bitwise-equal data train once),
// runs untuned plain PRIM without ever materializing the matrix, and --
// with a persistent tier -- serves a warm streamed REDS request with zero
// training and zero index builds.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/dataset_source.h"
#include "engine/discovery_engine.h"
#include "util/rng.h"

namespace reds::engine {
namespace {

// Grid-valued data: streamed quantization packs exactly, so streamed and
// materialized runs of the same method agree bit for bit.
std::shared_ptr<const Dataset> MakeGridData(int n, int dim, uint64_t seed,
                                            int distinct = 48) {
  Rng rng(seed);
  auto d = std::make_shared<Dataset>(dim);
  std::vector<double> x(static_cast<size_t>(dim));
  for (int i = 0; i < n; ++i) {
    for (auto& v : x) {
      v = static_cast<double>(rng.UniformInt(
              static_cast<uint64_t>(distinct))) /
          distinct;
    }
    const double p = (x[0] < 0.45 && x[1 % dim] > 0.3) ? 0.85 : 0.1;
    d->AddRow(x, rng.Bernoulli(p) ? 1.0 : 0.0);
  }
  return d;
}

RunOptions FastOptions() {
  RunOptions options;
  options.l_prim = 1200;
  options.tune_metamodel = false;
  options.seed = 5;
  return options;
}

DiscoveryRequest SourceRequest(std::shared_ptr<const Dataset> data,
                               std::string method) {
  DiscoveryRequest request;
  request.make_train_source =
      [data]() -> std::unique_ptr<DatasetSource> {
    return std::make_unique<MatrixSource>(data);
  };
  request.method = std::move(method);
  request.options = FastOptions();
  return request;
}

DiscoveryRequest EagerRequest(std::shared_ptr<const Dataset> data,
                              std::string method) {
  DiscoveryRequest request;
  request.train = std::move(data);
  request.method = std::move(method);
  request.options = FastOptions();
  return request;
}

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "reds_stream_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(EngineStreamedTest, PlainPrimSourceMatchesEagerOnGridData) {
  const auto data = MakeGridData(1000, 4, 1);
  DiscoveryEngine engine({/*threads=*/2});
  const auto streamed = engine.Submit(SourceRequest(data, "P"));
  const auto eager = engine.Submit(EagerRequest(data, "P"));
  engine.WaitAll();
  ASSERT_EQ(streamed->state(), JobState::kDone)
      << (streamed->state() == JobState::kFailed ? streamed->error() : "");
  ASSERT_EQ(eager->state(), JobState::kDone);
  EXPECT_TRUE(streamed->output().last_box == eager->output().last_box);
  // The streamed job quantized through its own tier; it never touched the
  // eager path's column index.
  EXPECT_EQ(engine.streamed_index_cache_size(), 1);
}

TEST(EngineStreamedTest, StreamedAndEagerRedsShareOneMetamodelFit) {
  // Identical bytes through different ingestion paths must land on one
  // cache key: the incremental stream hash equals the in-memory hash.
  // The relabel-stream cache is off so both jobs are guaranteed to reach
  // the metamodel cache (it keys on the same full fingerprint and would
  // otherwise serve whichever job runs second, timing-dependent).
  const auto data = MakeGridData(250, 4, 2);
  EngineConfig count_config;
  count_config.threads = 2;
  count_config.cache_relabel_streams = false;
  DiscoveryEngine engine(count_config);
  const auto streamed = engine.Submit(SourceRequest(data, "RPx"));
  const auto eager = engine.Submit(EagerRequest(data, "RPx"));
  engine.WaitAll();
  ASSERT_EQ(streamed->state(), JobState::kDone)
      << (streamed->state() == JobState::kFailed ? streamed->error() : "");
  ASSERT_EQ(eager->state(), JobState::kDone);
  EXPECT_EQ(engine.metamodel_cache().fit_count(), 1);
  EXPECT_EQ(engine.metamodel_cache().hit_count(), 1);
  EXPECT_TRUE(streamed->output().last_box == eager->output().last_box);
}

TEST(EngineStreamedTest, ShardedPrimMatchesSingleProcessStreamed) {
  // The same plain-PRIM source request, once through the single-process
  // streamed path and once fanned out across an in-process worker fleet
  // (ShardPlan): exact-pack data must yield the identical box, and the
  // fleet's worker metrics must fold into the engine registry.
  const auto data = MakeGridData(1200, 4, 8);
  DiscoveryEngine engine({/*threads=*/2});
  const auto single = engine.Submit(SourceRequest(data, "P"));
  DiscoveryRequest sharded_request = SourceRequest(data, "P");
  sharded_request.shard.workers = 2;
  const auto sharded = engine.Submit(std::move(sharded_request));
  engine.WaitAll();
  ASSERT_EQ(single->state(), JobState::kDone)
      << (single->state() == JobState::kFailed ? single->error() : "");
  ASSERT_EQ(sharded->state(), JobState::kDone)
      << (sharded->state() == JobState::kFailed ? sharded->error() : "");
  EXPECT_TRUE(sharded->output().last_box == single->output().last_box);
  ASSERT_EQ(sharded->output().trajectory.size(),
            single->output().trajectory.size());
  // The fleet pulled its own source instances; only the single-process job
  // went through the streamed index tier.
  EXPECT_EQ(engine.streamed_index_cache_size(), 1);
  // Worker registries folded into the engine's.
  const std::string dump = engine.DumpMetrics(obs::ExportFormat::kJson);
  EXPECT_NE(dump.find("shard.worker.rows"), std::string::npos);
  EXPECT_NE(dump.find("shard.coordinator.workers"), std::string::npos);
}

TEST(EngineStreamedTest, RepeatSourceIngestIndexesOnce) {
  const auto data = MakeGridData(800, 3, 3);
  DiscoveryEngine engine({/*threads=*/2});
  MatrixSource first(data);
  const StreamedTrainData a = engine.IngestSource(&first);
  MatrixSource second(data);
  const StreamedTrainData b = engine.IngestSource(&second);
  // Same fingerprints, same shared index object (LRU hit, no rebuild).
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.input_fingerprint, b.input_fingerprint);
  EXPECT_EQ(a.index.get(), b.index.get());
  EXPECT_EQ(*a.y, *b.y);
  EXPECT_EQ(engine.streamed_index_cache_size(), 1);
}

TEST(EngineStreamedTest, WarmEngineServesStreamedRedsWithZeroWork) {
  const auto data = MakeGridData(250, 4, 4);
  const std::string dir = FreshDir("warm_reds");

  EngineConfig config;
  config.threads = 2;
  config.cache_dir = dir;

  // Cold engine: trains the metamodel and builds + persists the streamed
  // index.
  Box cold_box;
  {
    DiscoveryEngine cold(config);
    const auto reds_job = cold.Submit(SourceRequest(data, "RPx"));
    const auto prim_job = cold.Submit(SourceRequest(data, "P"));
    cold.WaitAll();
    ASSERT_EQ(reds_job->state(), JobState::kDone)
        << (reds_job->state() == JobState::kFailed ? reds_job->error() : "");
    ASSERT_EQ(prim_job->state(), JobState::kDone);
    cold_box = reds_job->output().last_box;
    EXPECT_EQ(cold.metamodel_cache().fit_count(), 1);
    const PersistentCacheStats stats = cold.persistent_cache_stats();
    EXPECT_GE(stats.model_writes, 1);
    EXPECT_GE(stats.index_writes, 1);
    EXPECT_GE(stats.relabel_writes, 1);
    cold.Shutdown();
  }

  // Warm engine (fresh process stand-in): the same streamed requests are
  // served from the persistent tier -- zero training, zero index builds,
  // bit-identical result.
  {
    DiscoveryEngine warm(config);
    const auto reds_job = warm.Submit(SourceRequest(data, "RPx"));
    const auto prim_job = warm.Submit(SourceRequest(data, "P"));
    warm.WaitAll();
    ASSERT_EQ(reds_job->state(), JobState::kDone)
        << (reds_job->state() == JobState::kFailed ? reds_job->error() : "");
    ASSERT_EQ(prim_job->state(), JobState::kDone);
    EXPECT_TRUE(reds_job->output().last_box == cold_box);
    const PersistentCacheStats stats = warm.persistent_cache_stats();
    // Zero labeling: the finished relabeled stream (labels + mapped
    // index) came straight from disk, so the metamodel was never even
    // consulted -- no hits, no misses, certainly no retraining.
    EXPECT_GE(stats.relabel_hits, 1);
    EXPECT_EQ(stats.relabel_misses, 0);
    EXPECT_EQ(stats.model_hits, 0);
    EXPECT_EQ(stats.model_misses, 0);
    EXPECT_EQ(stats.model_writes, 0);
    EXPECT_EQ(warm.metamodel_cache().fit_count(), 0);
    // Zero index builds: the streamed index came from disk too.
    EXPECT_GE(stats.index_hits, 1);
    EXPECT_EQ(stats.index_writes, 0);
    warm.Shutdown();
  }
  std::filesystem::remove_all(dir);
}

TEST(EngineStreamedTest, NonDeterministicSourceFailsLoudly) {
  // A source that yields different rows on every pass would poison the
  // caches keyed by its first pass; the engine must reject it.
  class FlakySource : public DatasetSource {
   public:
    int num_cols() const override { return 2; }
    Status Reset() override { return Status::OK(); }
    Result<RowBlock> NextBlock(int max_rows) override {
      if (emitted_) {
        RowBlock done;
        return done;
      }
      emitted_ = true;
      x_.clear();
      y_.clear();
      for (int i = 0; i < 64; ++i) {
        x_.push_back(rng_.Uniform());  // new draws on every pass
        x_.push_back(rng_.Uniform());
        y_.push_back(i % 2 == 0 ? 1.0 : 0.0);
      }
      (void)max_rows;
      RowBlock block;
      block.x = la::ConstMatrixView(x_.data(), 64, 2);
      block.y = y_.data();
      emitted_ = true;
      return block;
    }
    Status ResetCounter() {
      emitted_ = false;
      return Status::OK();
    }

   private:
    Rng rng_{99};
    bool emitted_ = false;
    std::vector<double> x_, y_;
  };

  DiscoveryEngine engine({/*threads=*/2});
  DiscoveryRequest request;
  request.method = "P";
  request.options = FastOptions();
  request.make_train_source = []() -> std::unique_ptr<DatasetSource> {
    struct Wrapper : FlakySource {
      Status Reset() override { return ResetCounter(); }
    };
    return std::make_unique<Wrapper>();
  };
  const auto job = engine.Submit(std::move(request));
  job->Wait();
  ASSERT_EQ(job->state(), JobState::kFailed);
  EXPECT_NE(job->error().find("deterministic"), std::string::npos);
}

}  // namespace
}  // namespace reds::engine
