// Tests for util: RNG determinism and distributions, special functions,
// table/CSV formatting, thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>

#include "util/rng.h"
#include "util/special.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace reds {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.Next() == b.Next() ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanAndVariance) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.Uniform();
    sum += u;
    sum_sq += u * u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
  EXPECT_NEAR(sum_sq / n - 0.25, 1.0 / 12.0, 0.01);
}

TEST(RngTest, UniformIntInRangeAndRoughlyUniform) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) {
    const uint64_t v = rng.UniformInt(10);
    ASSERT_LT(v, 10u);
    counts[static_cast<size_t>(v)]++;
  }
  for (int c : counts) EXPECT_NEAR(c, 10000, 600);
}

TEST(RngTest, NormalMoments) {
  Rng rng(17);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double z = rng.Normal();
    sum += z;
    sum_sq += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(RngTest, LogitNormalSupport) {
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.LogitNormal(0.0, 1.0);
    EXPECT_GT(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, BootstrapIndicesInRange) {
  Rng rng(31);
  const auto idx = rng.BootstrapIndices(50);
  EXPECT_EQ(idx.size(), 50u);
  for (int i : idx) {
    EXPECT_GE(i, 0);
    EXPECT_LT(i, 50);
  }
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(37);
  const auto idx = rng.SampleWithoutReplacement(20, 10);
  EXPECT_EQ(idx.size(), 10u);
  std::set<int> unique(idx.begin(), idx.end());
  EXPECT_EQ(unique.size(), 10u);
  for (int i : idx) {
    EXPECT_GE(i, 0);
    EXPECT_LT(i, 20);
  }
}

TEST(RngTest, DeriveSeedDecorrelatesStreams) {
  const uint64_t a = DeriveSeed(42, 1);
  const uint64_t b = DeriveSeed(42, 2);
  EXPECT_NE(a, b);
  EXPECT_NE(a, DeriveSeed(43, 1));
}

TEST(SpecialTest, NormalCdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.959963985), 0.975, 1e-6);
  EXPECT_NEAR(NormalCdf(-1.959963985), 0.025, 1e-6);
}

TEST(SpecialTest, NormalQuantileInvertsCdf) {
  for (double p : {0.001, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.999}) {
    EXPECT_NEAR(NormalCdf(NormalQuantile(p)), p, 1e-6) << p;
  }
}

TEST(SpecialTest, ChiSquaredCdfKnownValues) {
  // chi2(df=1): P(X <= 3.841) ~ 0.95.
  EXPECT_NEAR(ChiSquaredCdf(3.841459, 1.0), 0.95, 1e-4);
  // chi2(df=5): P(X <= 11.0705) ~ 0.95.
  EXPECT_NEAR(ChiSquaredCdf(11.0705, 5.0), 0.95, 1e-4);
  EXPECT_DOUBLE_EQ(ChiSquaredCdf(0.0, 3.0), 0.0);
}

TEST(SpecialTest, RegularizedGammaComplement) {
  for (double a : {0.5, 1.0, 2.5, 10.0}) {
    for (double x : {0.1, 1.0, 5.0, 20.0}) {
      EXPECT_NEAR(RegularizedGammaP(a, x) + RegularizedGammaQ(a, x), 1.0, 1e-10);
    }
  }
}

TEST(SpecialTest, TwoSidedPValue) {
  EXPECT_NEAR(TwoSidedNormalPValue(0.0), 1.0, 1e-12);
  EXPECT_NEAR(TwoSidedNormalPValue(1.959963985), 0.05, 1e-5);
}

TEST(TableTest, FormatDoubleTrimsZeros) {
  EXPECT_EQ(FormatDouble(41.30, 2), "41.3");
  EXPECT_EQ(FormatDouble(7.0, 3), "7");
  EXPECT_EQ(FormatDouble(0.080, 2), "0.08");
  EXPECT_EQ(FormatDouble(-0.0001, 2), "0");
}

TEST(TableTest, AlignsColumns) {
  TablePrinter t("demo");
  t.SetHeader({"name", "value"});
  t.AddRow("alpha", {1.5});
  t.AddRow("beta", {22.25});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22.25"), std::string::npos);
}

TEST(CsvTest, WritesFile) {
  CsvWriter csv({"a", "b"});
  csv.AddRow({1.0, 2.0});
  csv.AddRow({3.5, -1.0});
  const std::string path = "/tmp/reds_csv_test.csv";
  ASSERT_TRUE(csv.WriteFile(path).ok());
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "a,b");
  std::getline(f, line);
  EXPECT_EQ(line, "1,2");
  std::remove(path.c_str());
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  EXPECT_EQ(Status::OK().ToString(), "OK");
  const Status s = Status::InvalidArgument("bad x");
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("INVALID_ARGUMENT"), std::string::npos);
  EXPECT_NE(s.ToString().find("bad x"), std::string::npos);
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> good(7);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 7);
  Result<int> bad(Status::OutOfRange("nope"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), Status::Code::kOutOfRange);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 1000; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), 1000);
  }
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  std::vector<std::atomic<int>> hits(64);
  ParallelFor(0, 64, [&](int i) { hits[static_cast<size_t>(i)]++; }, 8);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

}  // namespace
}  // namespace reds
