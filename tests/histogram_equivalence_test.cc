// Histogram-vs-exact split search equivalence. Whenever every feature has
// at most BinnedIndex::kMaxBins distinct values, every bin holds exactly one
// distinct value, the candidate thresholds coincide with the exact search's
// between-distinct-values midpoints, and (with {0,1} targets making sums
// integer-exact) the fitted trees are bit-identical across all three
// backends. Beyond that the histogram backend is an approximation whose
// quality must stay within a small delta of the exact fit.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ml/cart.h"
#include "ml/gbt.h"
#include "ml/metrics.h"
#include "ml/random_forest.h"
#include "ml/tuning.h"
#include "util/rng.h"

namespace reds {
namespace {

Dataset MakeData(int n, int dim, uint64_t seed, bool fractional,
                 int distinct_values = 0) {
  Rng rng(seed);
  Dataset d(dim);
  std::vector<double> x(static_cast<size_t>(dim));
  for (int i = 0; i < n; ++i) {
    for (auto& v : x) {
      v = distinct_values > 0
              ? static_cast<double>(rng.UniformInt(
                    static_cast<uint64_t>(distinct_values))) /
                    distinct_values
              : rng.Uniform();
    }
    const double p = (x[0] < 0.45 && x[1] > 0.3) ? 0.85 : 0.15;
    d.AddRow(x, fractional ? rng.LogitNormal(p > 0.5 ? 1.0 : -1.0, 0.8)
                           : (rng.Bernoulli(p) ? 1.0 : 0.0));
  }
  return d;
}

double TrainLogLoss(const ml::Metamodel& model, const Dataset& d) {
  std::vector<double> prob, y;
  prob.reserve(static_cast<size_t>(d.num_rows()));
  y.reserve(static_cast<size_t>(d.num_rows()));
  for (int i = 0; i < d.num_rows(); ++i) {
    prob.push_back(model.PredictProb(d.row(i)));
    y.push_back(d.y(i) > 0.5 ? 1.0 : 0.0);
  }
  return ml::LogLoss(prob, y);
}

TEST(HistogramCartTest, BitIdenticalToExactWithinBinBudget) {
  // 40 distinct values per feature << 256 bins: one bin per value.
  for (uint64_t seed : {201u, 202u, 203u}) {
    const Dataset d = MakeData(900, 5, seed, /*fractional=*/false, 40);
    const Dataset probe = MakeData(300, 5, seed + 1000, /*fractional=*/false);
    ml::TreeConfig config;
    config.max_depth = 10;

    ml::RegressionTree exact;
    {
      ml::TreeConfig c = config;
      c.backend = ml::SplitBackend::kExact;
      Rng rng(9);
      exact.Fit(d, c, &rng);
    }
    ml::RegressionTree hist;
    {
      ml::TreeConfig c = config;
      c.backend = ml::SplitBackend::kHistogram;
      Rng rng(9);
      hist.Fit(d, c, &rng);
    }
    ASSERT_EQ(exact.num_nodes(), hist.num_nodes()) << seed;
    for (int i = 0; i < probe.num_rows(); ++i) {
      EXPECT_DOUBLE_EQ(exact.Predict(probe.row(i)), hist.Predict(probe.row(i)))
          << seed;
    }
  }
}

TEST(HistogramCartTest, SubtractionTrickMatchesScanUnderBootstrap) {
  // No mtry -> parent-minus-sibling subtraction is active; bootstrap rows
  // with duplicates exercise per-position code gathering.
  const Dataset d = MakeData(700, 4, 211, /*fractional=*/false, 25);
  const Dataset probe = MakeData(200, 4, 212, /*fractional=*/false);
  Rng bootstrap_rng(213);
  const std::vector<int> rows = bootstrap_rng.BootstrapIndices(d.num_rows());
  ml::TreeConfig config;
  config.max_depth = 12;

  ml::RegressionTree exact;
  {
    ml::TreeConfig c = config;
    c.backend = ml::SplitBackend::kExact;
    Rng rng(3);
    exact.Fit(d, rows, c, &rng);
  }
  ml::RegressionTree hist;
  {
    ml::TreeConfig c = config;
    c.backend = ml::SplitBackend::kHistogram;
    Rng rng(3);
    hist.Fit(d, rows, c, &rng);
  }
  ASSERT_EQ(exact.num_nodes(), hist.num_nodes());
  for (int i = 0; i < probe.num_rows(); ++i) {
    EXPECT_DOUBLE_EQ(exact.Predict(probe.row(i)), hist.Predict(probe.row(i)));
  }
}

TEST(HistogramCartTest, FeatureParallelHistogramSearchMatchesSerial) {
  const Dataset d = MakeData(6000, 6, 221, /*fractional=*/false, 50);
  const Dataset probe = MakeData(200, 6, 222, /*fractional=*/false);
  ml::TreeConfig config;
  config.max_depth = 6;
  config.backend = ml::SplitBackend::kHistogram;
  ml::RegressionTree serial;
  {
    Rng rng(5);
    serial.Fit(d, config, &rng);
  }
  ml::RegressionTree parallel;
  {
    ml::TreeConfig c = config;
    c.threads = 4;
    Rng rng(5);
    parallel.Fit(d, c, &rng);
  }
  ASSERT_EQ(serial.num_nodes(), parallel.num_nodes());
  for (int i = 0; i < probe.num_rows(); ++i) {
    EXPECT_DOUBLE_EQ(serial.Predict(probe.row(i)),
                     parallel.Predict(probe.row(i)));
  }
}

TEST(HistogramGbtTest, BitIdenticalToPresortedWhenAllValuesDistinct) {
  // n = 220 continuous rows: every value distinct, so every bin holds one
  // row and even the floating-point gradient prefix sums accumulate in the
  // presorted path's exact order.
  const Dataset d = MakeData(220, 4, 231, /*fractional=*/true);
  const Dataset probe = MakeData(150, 4, 232, /*fractional=*/false);
  ml::GbtConfig config;
  config.num_rounds = 25;
  config.max_depth = 3;

  ml::GradientBoostedTrees presorted(config);
  presorted.Fit(d, 17);
  ml::GbtConfig hist_config = config;
  hist_config.backend = ml::SplitBackend::kHistogram;
  ml::GradientBoostedTrees hist(hist_config);
  hist.Fit(d, 17);
  ASSERT_EQ(presorted.num_trees(), hist.num_trees());
  for (int i = 0; i < probe.num_rows(); ++i) {
    EXPECT_DOUBLE_EQ(presorted.PredictMargin(probe.row(i)),
                     hist.PredictMargin(probe.row(i)));
  }
}

TEST(HistogramGbtTest, SharedIndexesMatchPrivateBuild) {
  // The engine hands fits cached ColumnIndex/BinnedIndex instances; the
  // inline path builds private ones. Both must produce the same model.
  const Dataset d = MakeData(1500, 5, 241, /*fractional=*/false);
  const Dataset probe = MakeData(200, 5, 242, /*fractional=*/false);
  ml::GbtConfig config;
  config.num_rounds = 10;
  config.max_depth = 4;
  config.backend = ml::SplitBackend::kHistogram;

  ml::GradientBoostedTrees inline_fit(config);
  inline_fit.Fit(d, 23);
  ml::GradientBoostedTrees shared_fit(config);
  {
    const auto index = ColumnIndex::Build(d);
    const auto binned = BinnedIndex::Build(*index);
    shared_fit.Fit(d, 23, index.get(), binned.get());
  }
  for (int i = 0; i < probe.num_rows(); ++i) {
    EXPECT_DOUBLE_EQ(inline_fit.PredictMargin(probe.row(i)),
                     shared_fit.PredictMargin(probe.row(i)));
  }
}

TEST(HistogramGbtTest, BoundedQualityDeltaBeyondTheBinBudget) {
  // 6000 continuous rows: ~23 values per bin, so the histogram fit is a
  // genuine approximation. Its training quality must stay within a small
  // delta of the exact presorted fit.
  const Dataset d = MakeData(6000, 5, 251, /*fractional=*/false);
  ml::GbtConfig config;
  config.num_rounds = 40;
  config.max_depth = 4;
  config.subsample = 0.9;

  ml::GradientBoostedTrees presorted(config);
  presorted.Fit(d, 29);
  ml::GbtConfig hist_config = config;
  hist_config.backend = ml::SplitBackend::kHistogram;
  ml::GradientBoostedTrees hist(hist_config);
  hist.Fit(d, 29);

  const double ll_presorted = TrainLogLoss(presorted, d);
  const double ll_hist = TrainLogLoss(hist, d);
  EXPECT_LT(ll_presorted, 0.5);
  EXPECT_LT(ll_hist, 0.5);
  EXPECT_NEAR(ll_presorted, ll_hist, 0.05);
}

TEST(HistogramRandomForestTest, BitIdenticalToExactWithinBinBudget) {
  // mtry is active (no subtraction): trees rebuild histograms per node and
  // must consume the identical feature-sampling rng stream.
  const Dataset d = MakeData(600, 5, 261, /*fractional=*/false, 30);
  const Dataset probe = MakeData(200, 5, 262, /*fractional=*/false);
  ml::RandomForestConfig config;
  config.num_trees = 20;

  ml::RandomForestConfig exact_config = config;
  exact_config.backend = ml::SplitBackend::kExact;
  ml::RandomForest exact(exact_config);
  exact.Fit(d, 31);
  ml::RandomForestConfig hist_config = config;
  hist_config.backend = ml::SplitBackend::kHistogram;
  ml::RandomForest hist(hist_config);
  hist.Fit(d, 31);
  for (int i = 0; i < probe.num_rows(); ++i) {
    EXPECT_DOUBLE_EQ(exact.PredictProb(probe.row(i)),
                     hist.PredictProb(probe.row(i)));
  }
  const std::vector<double> exact_oob = exact.OobPredictions(d);
  const std::vector<double> hist_oob = hist.OobPredictions(d);
  for (int i = 0; i < d.num_rows(); ++i) {
    EXPECT_DOUBLE_EQ(exact_oob[static_cast<size_t>(i)],
                     hist_oob[static_cast<size_t>(i)]);
  }
}

TEST(HistogramTuningTest, GridTuningRunsOnTheHistogramBackend) {
  const Dataset d = MakeData(500, 4, 271, /*fractional=*/false);
  ml::TuningConfig config;
  config.folds = 3;
  config.backend = ml::SplitBackend::kHistogram;
  const auto model = ml::TuneAndFit(ml::MetamodelKind::kGbt, d, 37, config);
  ASSERT_NE(model, nullptr);
  int correct = 0;
  for (int i = 0; i < d.num_rows(); ++i) {
    const double p = model->PredictProb(d.row(i));
    ASSERT_GE(p, 0.0);
    ASSERT_LE(p, 1.0);
    correct += (p > 0.5) == (d.y(i) > 0.5) ? 1 : 0;
  }
  EXPECT_GT(correct, d.num_rows() / 2);
}

// The 4-row unrolled accumulation gathers must produce bit-identical bins
// to the scalar reference -- bumps stay in row order -- for every length
// (covering the remainder loop) and under shared bins within one group.
TEST(HistogramAccumulateTest, UnrolledMatchesReferenceBitForBit) {
  Rng rng(99);
  const int n = 1037;
  std::vector<uint8_t> codes(static_cast<size_t>(n));
  std::vector<double> g(static_cast<size_t>(n)), h(static_cast<size_t>(n));
  std::vector<int> ids;
  for (int i = 0; i < n; ++i) {
    codes[static_cast<size_t>(i)] =
        static_cast<uint8_t>(rng.UniformInt(7));  // few bins: many clashes
    g[static_cast<size_t>(i)] = rng.Normal();
    h[static_cast<size_t>(i)] = rng.Uniform();
    if (rng.Bernoulli(0.7)) ids.push_back(i);
  }
  for (const int len : {0, 1, 2, 3, 4, 5, 7, 8, static_cast<int>(ids.size())}) {
    std::vector<ml::HistBin> unrolled(16), reference(16);
    ml::AccumulateHistogram(codes.data(), ids.data(), len, g.data(),
                            h.data(), unrolled.data());
    ml::AccumulateHistogramReference(codes.data(), ids.data(), len, g.data(),
                                     h.data(), reference.data());
    for (int b = 0; b < 16; ++b) {
      EXPECT_EQ(unrolled[static_cast<size_t>(b)].g,
                reference[static_cast<size_t>(b)].g);
      EXPECT_EQ(unrolled[static_cast<size_t>(b)].h,
                reference[static_cast<size_t>(b)].h);
      EXPECT_EQ(unrolled[static_cast<size_t>(b)].count,
                reference[static_cast<size_t>(b)].count);
    }
    // The g-only (CART) variant too.
    std::vector<ml::HistBin> unrolled_g(16), reference_g(16);
    ml::AccumulateHistogram(codes.data(), ids.data(), len, g.data(),
                            unrolled_g.data());
    ml::AccumulateHistogramReference(codes.data(), ids.data(), len, g.data(),
                                     reference_g.data());
    for (int b = 0; b < 16; ++b) {
      EXPECT_EQ(unrolled_g[static_cast<size_t>(b)].g,
                reference_g[static_cast<size_t>(b)].g);
      EXPECT_EQ(unrolled_g[static_cast<size_t>(b)].count,
                reference_g[static_cast<size_t>(b)].count);
    }
  }
}

}  // namespace
}  // namespace reds
