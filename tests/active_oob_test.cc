// Tests for the active-learning extension and the random-forest OOB /
// permutation-importance machinery backing it.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/active.h"
#include "ml/random_forest.h"
#include "util/rng.h"

namespace reds {
namespace {

Dataset StepData(int n, uint64_t seed) {
  Rng rng(seed);
  Dataset d(3);
  for (int i = 0; i < n; ++i) {
    const double x[3] = {rng.Uniform(), rng.Uniform(), rng.Uniform()};
    d.AddRow(x, x[0] > 0.5 ? 1.0 : 0.0);  // only x0 matters
  }
  return d;
}

TEST(OobTest, OobErrorIsSmallOnLearnableData) {
  const Dataset d = StepData(400, 1);
  ml::RandomForest rf;
  rf.Fit(d, 2);
  EXPECT_LT(rf.OobError(d), 0.1);
}

TEST(OobTest, OobPredictionsInUnitInterval) {
  const Dataset d = StepData(200, 3);
  ml::RandomForest rf;
  rf.Fit(d, 4);
  for (double p : rf.OobPredictions(d)) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(OobTest, OobErrorExceedsTrainError) {
  // Training-set predictions are nearly perfect for a fully grown forest;
  // the OOB estimate must be the honest (larger) one.
  Rng rng(5);
  Dataset d(3);
  for (int i = 0; i < 300; ++i) {
    const double x[3] = {rng.Uniform(), rng.Uniform(), rng.Uniform()};
    // Noisy labels: 15% flipped.
    double y = x[0] > 0.5 ? 1.0 : 0.0;
    if (rng.Bernoulli(0.15)) y = 1.0 - y;
    d.AddRow(x, y);
  }
  ml::RandomForest rf;
  rf.Fit(d, 6);
  int train_wrong = 0;
  for (int i = 0; i < d.num_rows(); ++i) {
    train_wrong += (rf.PredictProb(d.row(i)) > 0.5) != (d.y(i) > 0.5) ? 1 : 0;
  }
  const double train_error = static_cast<double>(train_wrong) / d.num_rows();
  EXPECT_GT(rf.OobError(d), train_error);
}

TEST(ImportanceTest, RelevantFeatureDominates) {
  const Dataset d = StepData(400, 7);
  ml::RandomForest rf;
  rf.Fit(d, 8);
  const auto importance = rf.PermutationImportance(d, 9);
  ASSERT_EQ(importance.size(), 3u);
  EXPECT_GT(importance[0], importance[1] + 0.05);
  EXPECT_GT(importance[0], importance[2] + 0.05);
  EXPECT_GT(importance[0], 0.1);
}

TEST(ImportanceTest, IrrelevantFeaturesNearZero) {
  const Dataset d = StepData(400, 10);
  ml::RandomForest rf;
  rf.Fit(d, 11);
  const auto importance = rf.PermutationImportance(d, 12);
  EXPECT_NEAR(importance[1], 0.0, 0.05);
  EXPECT_NEAR(importance[2], 0.0, 0.05);
}

TEST(ActiveTest, ReturnsFullBudget) {
  Rng oracle_rng(13);
  ActiveSamplingConfig config;
  config.initial_points = 60;
  config.batch_size = 20;
  config.rounds = 3;
  config.pool_size = 500;
  const Dataset d = RunActiveSampling(
      2, [&](const double* x) { return x[0] > 0.5 ? 1.0 : 0.0; }, config, 14);
  EXPECT_EQ(d.num_rows(), 60 + 3 * 20);
  EXPECT_EQ(d.num_cols(), 2);
}

TEST(ActiveTest, QueriesConcentrateNearBoundary) {
  // Oracle: y = 1 iff x0 > 0.5; the active batches should crowd x0 ~ 0.5.
  ActiveSamplingConfig config;
  config.initial_points = 100;
  config.batch_size = 50;
  config.rounds = 4;
  config.pool_size = 2000;
  const Dataset d = RunActiveSampling(
      2, [&](const double* x) { return x[0] > 0.5 ? 1.0 : 0.0; }, config, 15);
  // Average distance of queried (post-initial) points to the boundary must
  // be well below the 0.25 expected under uniform sampling.
  double mean_dist = 0.0;
  int count = 0;
  for (int i = config.initial_points; i < d.num_rows(); ++i) {
    mean_dist += std::fabs(d.x(i, 0) - 0.5);
    ++count;
  }
  mean_dist /= count;
  EXPECT_LT(mean_dist, 0.18);
}

TEST(ActiveTest, DeterministicForSeed) {
  ActiveSamplingConfig config;
  config.initial_points = 40;
  config.batch_size = 10;
  config.rounds = 2;
  config.pool_size = 200;
  auto oracle = [](const double* x) { return x[0] + x[1] > 1.0 ? 1.0 : 0.0; };
  const Dataset a = RunActiveSampling(2, oracle, config, 16);
  const Dataset b = RunActiveSampling(2, oracle, config, 16);
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (int i = 0; i < a.num_rows(); ++i) {
    EXPECT_DOUBLE_EQ(a.x(i, 0), b.x(i, 0));
    EXPECT_DOUBLE_EQ(a.y(i), b.y(i));
  }
}

TEST(ActiveTest, BetterMetamodelThanUniformAtEqualBudget) {
  // With the same number of oracle calls, a forest trained on actively
  // sampled data should classify the boundary region at least as well.
  auto oracle = [](const double* x) {
    return (x[0] - 0.5) * (x[0] - 0.5) + (x[1] - 0.5) * (x[1] - 0.5) < 0.09
               ? 1.0
               : 0.0;
  };
  ActiveSamplingConfig config;
  config.initial_points = 150;
  config.batch_size = 50;
  config.rounds = 3;
  const Dataset active = RunActiveSampling(2, oracle, config, 17);

  Rng rng(18);
  Dataset uniform(2);
  for (int i = 0; i < active.num_rows(); ++i) {
    const double x[2] = {rng.Uniform(), rng.Uniform()};
    uniform.AddRow(x, oracle(x));
  }

  ml::RandomForest rf_active, rf_uniform;
  rf_active.Fit(active, 19);
  rf_uniform.Fit(uniform, 19);
  int active_correct = 0, uniform_correct = 0;
  Rng test_rng(20);
  const int n_test = 4000;
  for (int i = 0; i < n_test; ++i) {
    const double x[2] = {test_rng.Uniform(), test_rng.Uniform()};
    const bool truth = oracle(x) > 0.5;
    active_correct += (rf_active.PredictProb(x) > 0.5) == truth ? 1 : 0;
    uniform_correct += (rf_uniform.PredictProb(x) > 0.5) == truth ? 1 : 0;
  }
  EXPECT_GE(active_correct + n_test / 100, uniform_correct)
      << "active sampling should not be clearly worse";
}

}  // namespace
}  // namespace reds
