// Sharded discovery: wire framing, the deterministic shard source, and the
// coordinator/worker fleet's bit-identity contract against the
// single-process streamed kernels -- global bins, PRIM box sequences, the
// distributed histogram tree fit, sharded CV tuning, and fleet metrics
// folding. Workers run as in-process threads over socketpairs (the engine
// transport); the multi-process UNIX-socket path is exercised by the CI
// smoke on examples/shard_worker.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

#include "core/binned_index.h"
#include "core/dataset_source.h"
#include "core/prim.h"
#include "ml/cart.h"
#include "ml/serialize.h"
#include "ml/tuning.h"
#include "obs/metrics.h"
#include "shard/coordinator.h"
#include "shard/source_spec.h"
#include "shard/wire.h"
#include "shard/worker.h"
#include "util/rng.h"

namespace reds::shard {
namespace {

SourceSpec TestSpec() {
  SourceSpec spec;
  spec.kind = SourceSpec::Kind::kSynthetic;
  spec.block_rows = 512;
  spec.rows = 20000;
  spec.dims = 3;
  spec.distinct = 16;  // well under the bin cap: exact-pack regime
  spec.seed = 11;
  return spec;
}

// An in-process worker fleet over socketpairs: one thread per worker, each
// serving its stride of the synthetic stream. The coordinator side runs in
// the test body against coordinator_fds().
class Fleet {
 public:
  Fleet(const SourceSpec& spec, int workers) : statuses_(workers) {
    for (int w = 0; w < workers; ++w) {
      int sv[2];
      EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
      coordinator_fds_.push_back(sv[0]);
      worker_fds_.push_back(sv[1]);
    }
    for (int w = 0; w < workers; ++w) {
      threads_.emplace_back([this, spec, workers, w] {
        SyntheticBlockSource source(spec, workers, w);
        statuses_[static_cast<size_t>(w)] =
            RunShardWorker(worker_fds_[static_cast<size_t>(w)], &source);
      });
    }
  }

  ~Fleet() {
    for (std::thread& t : threads_) t.join();
    for (int fd : coordinator_fds_) ::close(fd);
    for (int fd : worker_fds_) ::close(fd);
    for (const Status& s : statuses_) EXPECT_TRUE(s.ok()) << s.ToString();
  }

  const std::vector<int>& coordinator_fds() const { return coordinator_fds_; }

 private:
  std::vector<int> coordinator_fds_;
  std::vector<int> worker_fds_;
  std::vector<std::thread> threads_;
  std::vector<Status> statuses_;
};

StreamedBuildOptions BuildOptions(const SourceSpec& spec) {
  StreamedBuildOptions options;
  options.block_rows = spec.block_rows;
  return options;
}

// The single-process reference: BuildStreamed over the whole stream.
StreamedDataset SingleProcessBuild(const SourceSpec& spec) {
  SyntheticBlockSource source(spec, 1, 0);
  Result<StreamedDataset> data =
      BinnedIndex::BuildStreamed(&source, BuildOptions(spec));
  EXPECT_TRUE(data.ok()) << data.status().ToString();
  return *std::move(data);
}

TEST(ShardWireTest, FrameRoundTrip) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  const std::string payload = "hello shard";
  ASSERT_TRUE(WriteFrame(sv[0], MsgType::kBins, payload).ok());
  Result<Frame> frame = ReadFrame(sv[1]);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->type, MsgType::kBins);
  EXPECT_EQ(frame->payload, payload);

  // Empty payloads round-trip too.
  ASSERT_TRUE(WriteFrame(sv[1], MsgType::kLayoutAck, std::string()).ok());
  frame = ExpectFrame(sv[0], MsgType::kLayoutAck);
  ASSERT_TRUE(frame.ok());
  EXPECT_TRUE(frame->payload.empty());

  // Type mismatch is an IoError, not a crash.
  ASSERT_TRUE(WriteFrame(sv[0], MsgType::kPeel, "x").ok());
  EXPECT_FALSE(ExpectFrame(sv[1], MsgType::kShutdown).ok());

  // A declared length above the cap is refused before any allocation.
  ASSERT_TRUE(WriteFrame(sv[0], MsgType::kPeel, "abc").ok());
  EXPECT_FALSE(ReadFrame(sv[1], /*max_payload=*/2).ok());

  ::close(sv[0]);
  ::close(sv[1]);
}

TEST(ShardWireTest, EofIsIoError) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  ::close(sv[0]);
  EXPECT_FALSE(ReadFrame(sv[1]).ok());
  ::close(sv[1]);
}

TEST(ShardSourceTest, SpecSerializationRoundTrips) {
  SourceSpec spec = TestSpec();
  spec.path = "ignored-for-synthetic";
  util::ByteWriter out;
  spec.SerializeTo(&out);
  util::ByteReader in(out.data());
  Result<SourceSpec> parsed = SourceSpec::DeserializeFrom(&in);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->kind, spec.kind);
  EXPECT_EQ(parsed->block_rows, spec.block_rows);
  EXPECT_EQ(parsed->rows, spec.rows);
  EXPECT_EQ(parsed->dims, spec.dims);
  EXPECT_EQ(parsed->distinct, spec.distinct);
  EXPECT_EQ(parsed->seed, spec.seed);
  EXPECT_EQ(parsed->path, spec.path);

  // Invalid geometry is rejected on parse.
  SourceSpec bad = TestSpec();
  bad.distinct = 1;
  util::ByteWriter bad_out;
  bad.SerializeTo(&bad_out);
  util::ByteReader bad_in(bad_out.data());
  EXPECT_FALSE(SourceSpec::DeserializeFrom(&bad_in).ok());
}

TEST(ShardSourceTest, ShardUnionReassemblesSingleStream) {
  const SourceSpec spec = TestSpec();
  const int workers = 3;

  // Pull every shard's blocks; shard w owns global blocks w, w+W, ...
  const int64_t num_blocks =
      (spec.rows + spec.block_rows - 1) / spec.block_rows;
  std::vector<std::vector<double>> block_x(static_cast<size_t>(num_blocks));
  std::vector<std::vector<double>> block_y(static_cast<size_t>(num_blocks));
  int64_t union_rows = 0;
  for (int w = 0; w < workers; ++w) {
    SyntheticBlockSource source(spec, workers, w);
    int64_t b = w;
    for (;;) {
      Result<RowBlock> block = source.NextBlock(spec.block_rows);
      ASSERT_TRUE(block.ok());
      if (block->empty()) break;
      ASSERT_LT(b, num_blocks);
      const int rows = block->num_rows();
      union_rows += rows;
      block_x[static_cast<size_t>(b)].assign(
          block->x.data(), block->x.data() + rows * spec.dims);
      block_y[static_cast<size_t>(b)].assign(block->y, block->y + rows);
      b += workers;
    }
  }
  EXPECT_EQ(union_rows, spec.rows);

  // Reassembled in block order, the union is byte-for-byte the 1-shard
  // stream.
  SyntheticBlockSource single(spec, 1, 0);
  for (int64_t b = 0; b < num_blocks; ++b) {
    Result<RowBlock> block = single.NextBlock(spec.block_rows);
    ASSERT_TRUE(block.ok());
    ASSERT_FALSE(block->empty());
    const int rows = block->num_rows();
    ASSERT_EQ(block_x[static_cast<size_t>(b)].size(),
              static_cast<size_t>(rows * spec.dims));
    for (int i = 0; i < rows * spec.dims; ++i) {
      ASSERT_EQ(block->x.data()[i], block_x[static_cast<size_t>(b)][i]);
    }
    for (int r = 0; r < rows; ++r) {
      ASSERT_EQ(block->y[r], block_y[static_cast<size_t>(b)][r]);
    }
  }
}

TEST(ShardSourceTest, WrongBlockSizeIsRejected) {
  const SourceSpec spec = TestSpec();
  SyntheticBlockSource source(spec, 1, 0);
  EXPECT_FALSE(source.NextBlock(spec.block_rows + 1).ok());
}

// Satellite: global bins are identical whatever the partition -- any
// worker count derives the same bins as the single-process build, because
// exact (value, count) summary merges are sorted multiset unions.
TEST(ShardFleetTest, GlobalBinsMatchSingleProcessForAnyWorkerCount) {
  const SourceSpec spec = TestSpec();
  const StreamedDataset reference = SingleProcessBuild(spec);
  ASSERT_EQ(reference.index->kind(), BinnedIndex::BuildKind::kExactPack);

  for (int workers : {1, 2, 3}) {
    Fleet fleet(spec, workers);
    ShardCoordinator coordinator(fleet.coordinator_fds(), BuildOptions(spec));
    ASSERT_TRUE(coordinator.BuildGlobalBins().ok());
    const GlobalBins& bins = coordinator.bins();
    EXPECT_EQ(bins.num_rows, reference.index->num_rows());
    EXPECT_EQ(bins.num_cols, reference.index->num_cols());
    EXPECT_EQ(bins.kind, reference.index->kind());
    for (int j = 0; j < bins.num_cols; ++j) {
      ASSERT_EQ(bins.num_bins[static_cast<size_t>(j)],
                reference.index->num_bins(j))
          << "col " << j << " workers " << workers;
      for (int b = 0; b < bins.num_bins[static_cast<size_t>(j)]; ++b) {
        EXPECT_EQ(bins.bin_first[static_cast<size_t>(j)][static_cast<size_t>(b)],
                  reference.index->bin_first(j, b));
        EXPECT_EQ(bins.bin_last[static_cast<size_t>(j)][static_cast<size_t>(b)],
                  reference.index->bin_last(j, b));
      }
    }
    EXPECT_TRUE(coordinator.Shutdown().ok());
  }
}

// Satellite: the coordinator folds worker sketch summaries in worker-index
// order, but in the exact regime the fold is order-invariant -- any
// arrival order yields the same global bin bounds.
TEST(ShardFleetTest, ExactSummaryFoldIsOrderInvariant) {
  const int cap = 64;
  const double eps = 1.0 / 2048.0;
  Rng rng(99);
  std::vector<ColumnSketch> parts;
  for (int p = 0; p < 4; ++p) {
    ColumnSketch cs(eps);
    for (int i = 0; i < 500; ++i) {
      cs.AddValue(static_cast<double>(rng.UniformInt(40)) / 39.0, cap);
    }
    ASSERT_FALSE(cs.overflow);
    parts.push_back(std::move(cs));
  }
  const int n = 4 * 500;
  const std::vector<std::vector<size_t>> orders = {
      {0, 1, 2, 3}, {3, 2, 1, 0}, {2, 0, 3, 1}};
  std::vector<std::vector<double>> bounds;
  for (const std::vector<size_t>& order : orders) {
    ColumnSketch acc(eps);
    for (size_t p : order) acc.MergeFrom(parts[p], cap);
    bounds.push_back(StreamedBinUpperBounds(&acc, n, cap));
  }
  EXPECT_EQ(bounds[0], bounds[1]);
  EXPECT_EQ(bounds[0], bounds[2]);
}

TEST(ShardFleetTest, ColumnSketchSerializationRoundTrips) {
  const double eps = 1.0 / 2048.0;
  ColumnSketch cs(eps);
  Rng rng(5);
  for (int i = 0; i < 3000; ++i) {
    cs.AddValue(rng.Uniform(), 32);  // far more distinct values than cap
  }
  ASSERT_TRUE(cs.overflow);
  util::ByteWriter out;
  cs.SerializeTo(&out);
  util::ByteReader in(out.data());
  Result<ColumnSketch> parsed = ColumnSketch::DeserializeFrom(&in);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->count, cs.count);
  EXPECT_EQ(parsed->overflow, cs.overflow);
  // Identical summaries quantize identically.
  ColumnSketch a = cs;
  ColumnSketch b = *parsed;
  EXPECT_EQ(StreamedBinUpperBounds(&a, 3000, 32),
            StreamedBinUpperBounds(&b, 3000, 32));
}

TEST(ShardFleetTest, PrimBitIdenticalToSingleProcess) {
  const SourceSpec spec = TestSpec();
  const StreamedDataset reference = SingleProcessBuild(spec);
  PrimConfig config;
  config.alpha = 0.05;
  config.min_points = 20;
  const PrimResult expected =
      RunPrimStreamed(*reference.index, reference.y, config);

  for (int workers : {1, 2, 3}) {
    Fleet fleet(spec, workers);
    ShardCoordinator coordinator(fleet.coordinator_fds(), BuildOptions(spec));
    ASSERT_TRUE(coordinator.BuildGlobalBins().ok());
    Result<PrimResult> got = coordinator.RunPrim(config);
    ASSERT_TRUE(got.ok()) << got.status().ToString();

    ASSERT_EQ(got->boxes.size(), expected.boxes.size())
        << "workers " << workers;
    for (size_t i = 0; i < expected.boxes.size(); ++i) {
      for (int j = 0; j < spec.dims; ++j) {
        EXPECT_EQ(got->boxes[i].lo(j), expected.boxes[i].lo(j));
        EXPECT_EQ(got->boxes[i].hi(j), expected.boxes[i].hi(j));
      }
    }
    ASSERT_EQ(got->train_curve.size(), expected.train_curve.size());
    for (size_t i = 0; i < expected.train_curve.size(); ++i) {
      EXPECT_EQ(got->train_curve[i].recall, expected.train_curve[i].recall);
      EXPECT_EQ(got->train_curve[i].precision,
                expected.train_curve[i].precision);
      EXPECT_EQ(got->val_curve[i].recall, expected.val_curve[i].recall);
      EXPECT_EQ(got->val_curve[i].precision, expected.val_curve[i].precision);
    }
    EXPECT_EQ(got->best_val_index, expected.best_val_index);
    EXPECT_TRUE(coordinator.Shutdown().ok());
  }
}

TEST(ShardFleetTest, DistributedTreeFitIsByteIdentical) {
  const SourceSpec spec = TestSpec();
  const StreamedDataset reference = SingleProcessBuild(spec);

  // Materialize the stream for the serial fit.
  SyntheticBlockSource source(spec, 1, 0);
  Result<Dataset> d = ReadAll(&source, spec.block_rows);
  ASSERT_TRUE(d.ok());

  ml::TreeConfig config;
  config.backend = ml::SplitBackend::kHistogram;
  config.max_depth = 6;
  config.min_samples_leaf = 5;

  ml::RegressionTree serial;
  Rng rng(1);
  serial.Fit(*d, config, &rng, nullptr, reference.index.get());
  util::ByteWriter serial_bytes;
  serial.SerializeTo(&serial_bytes);

  Fleet fleet(spec, 2);
  ShardCoordinator coordinator(fleet.coordinator_fds(), BuildOptions(spec));
  ASSERT_TRUE(coordinator.BuildGlobalBins().ok());
  Result<ml::RegressionTree> fleet_tree = coordinator.FitTree(config);
  ASSERT_TRUE(fleet_tree.ok()) << fleet_tree.status().ToString();
  util::ByteWriter fleet_bytes;
  fleet_tree->SerializeTo(&fleet_bytes);
  EXPECT_EQ(fleet_bytes.data(), serial_bytes.data());

  // Unsupported configurations are refused, not silently approximated.
  ml::TreeConfig mtry_config = config;
  mtry_config.mtry = 1;
  EXPECT_FALSE(coordinator.FitTree(mtry_config).ok());
  ml::TreeConfig leaf_config = config;
  leaf_config.growth = ml::GrowthPolicy::kLeafWise;
  leaf_config.max_leaves = 8;
  EXPECT_FALSE(coordinator.FitTree(leaf_config).ok());
  EXPECT_TRUE(coordinator.Shutdown().ok());
}

TEST(ShardFleetTest, ShardedTuningPicksTuneAndFitsModel) {
  // Small design sample, GBT family (deterministic fits).
  SourceSpec spec = TestSpec();
  spec.rows = 600;
  SyntheticBlockSource source(spec, 1, 0);
  Result<Dataset> d = ReadAll(&source, spec.block_rows);
  ASSERT_TRUE(d.ok());

  ml::TuningConfig config;
  config.budget = ml::TuningBudget::kQuick;
  config.folds = 3;
  const uint64_t seed = 77;
  std::unique_ptr<ml::Metamodel> expected =
      ml::TuneAndFit(ml::MetamodelKind::kGbt, *d, seed, config);
  util::ByteWriter expected_bytes;
  ml::SerializeMetamodel(*expected, ml::MetamodelKind::kGbt, &expected_bytes);

  Fleet fleet(spec, 2);
  ShardCoordinator coordinator(fleet.coordinator_fds(), BuildOptions(spec));
  Result<std::unique_ptr<ml::Metamodel>> got = coordinator.TuneAndFitSharded(
      ml::MetamodelKind::kGbt, *d, seed, config);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  util::ByteWriter got_bytes;
  ml::SerializeMetamodel(**got, ml::MetamodelKind::kGbt, &got_bytes);
  EXPECT_EQ(got_bytes.data(), expected_bytes.data());
  EXPECT_TRUE(coordinator.Shutdown().ok());
}

TEST(ShardFleetTest, FleetMetricsFoldIntoOneRegistry) {
  const SourceSpec spec = TestSpec();
  const int workers = 3;
  Fleet fleet(spec, workers);
  ShardCoordinator coordinator(fleet.coordinator_fds(), BuildOptions(spec));
  ASSERT_TRUE(coordinator.BuildGlobalBins().ok());
  PrimConfig config;
  Result<PrimResult> r = coordinator.RunPrim(config);
  ASSERT_TRUE(r.ok());

  obs::MetricsRegistry registry;
  ASSERT_TRUE(coordinator.CollectMetrics(&registry).ok());
  // Counters fold exactly: every row and block of the stream is counted
  // once, across all workers.
  EXPECT_EQ(registry.counter("shard.worker.rows")->Value(),
            static_cast<uint64_t>(spec.rows));
  const uint64_t blocks =
      static_cast<uint64_t>((spec.rows + spec.block_rows - 1) /
                            spec.block_rows);
  EXPECT_EQ(registry.counter("shard.worker.blocks")->Value(), blocks);
  // One peel per applied box transition, counted on every worker.
  EXPECT_EQ(registry.counter("shard.worker.peels")->Value(),
            static_cast<uint64_t>(workers) * (r->boxes.size() - 1));
  EXPECT_EQ(registry.gauge("shard.coordinator.workers")->Value(), workers);
  EXPECT_TRUE(coordinator.Shutdown().ok());
}

}  // namespace
}  // namespace reds::shard
