// Golden equivalence: the sorted-index kernels (PRIM peeling + pasting, BI
// beam refinement, presorted CART/GBT split search) must reproduce the
// reference scalar implementations' results across seeds, alphas, and label
// types. Hard {0,1} labels make every internal sum exact, so equality is
// bitwise; fractional labels may reorder floating-point accumulation, so
// those cases assert near-equality.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/best_interval.h"
#include "core/prim.h"
#include "ml/cart.h"
#include "ml/gbt.h"
#include "ml/random_forest.h"
#include "util/rng.h"

namespace reds {
namespace {

Dataset MakeData(int n, int dim, uint64_t seed, bool fractional,
                 int distinct_values = 0) {
  Rng rng(seed);
  Dataset d(dim);
  std::vector<double> x(static_cast<size_t>(dim));
  for (int i = 0; i < n; ++i) {
    for (auto& v : x) {
      v = distinct_values > 0
              ? static_cast<double>(rng.UniformInt(
                    static_cast<uint64_t>(distinct_values))) /
                    distinct_values
              : rng.Uniform();
    }
    const double p = (x[0] < 0.45 && x[1] > 0.3) ? 0.85 : 0.15;
    d.AddRow(x, fractional ? rng.LogitNormal(p > 0.5 ? 1.0 : -1.0, 0.8)
                           : (rng.Bernoulli(p) ? 1.0 : 0.0));
  }
  return d;
}

void ExpectSamePrimResult(const PrimResult& a, const PrimResult& b,
                          const std::string& label) {
  ASSERT_EQ(a.boxes.size(), b.boxes.size()) << label;
  EXPECT_EQ(a.best_val_index, b.best_val_index) << label;
  for (size_t i = 0; i < a.boxes.size(); ++i) {
    EXPECT_TRUE(a.boxes[i] == b.boxes[i]) << label << " box " << i;
    EXPECT_EQ(a.train_curve[i].recall, b.train_curve[i].recall) << label;
    EXPECT_EQ(a.train_curve[i].precision, b.train_curve[i].precision) << label;
    EXPECT_EQ(a.val_curve[i].recall, b.val_curve[i].recall) << label;
    EXPECT_EQ(a.val_curve[i].precision, b.val_curve[i].precision) << label;
  }
}

TEST(PrimEquivalenceTest, SameBoxSequenceAcrossSeedsAndAlphas) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    for (double alpha : {0.03, 0.05, 0.1, 0.2}) {
      const Dataset d = MakeData(600, 5, seed, /*fractional=*/false);
      PrimConfig config;
      config.alpha = alpha;
      const PrimResult ref = RunPrimReference(d, d, config);
      const PrimResult opt = RunPrim(d, d, config);
      ExpectSamePrimResult(ref, opt,
                           "seed=" + std::to_string(seed) +
                               " alpha=" + std::to_string(alpha));
    }
  }
}

TEST(PrimEquivalenceTest, SameBoxSequenceWithProbabilityLabels) {
  // REDS "p" variants peel fractional targets; sums there are accumulated
  // in a different order than the reference, so allow curve values to agree
  // only to a few ulps while the geometry must match exactly.
  for (uint64_t seed : {11u, 12u, 13u}) {
    const Dataset d = MakeData(600, 5, seed, /*fractional=*/true);
    PrimConfig config;
    config.alpha = 0.07;
    const PrimResult ref = RunPrimReference(d, d, config);
    const PrimResult opt = RunPrim(d, d, config);
    ASSERT_EQ(ref.boxes.size(), opt.boxes.size()) << seed;
    EXPECT_EQ(ref.best_val_index, opt.best_val_index) << seed;
    for (size_t i = 0; i < ref.boxes.size(); ++i) {
      EXPECT_TRUE(ref.boxes[i] == opt.boxes[i]) << "seed " << seed
                                                << " box " << i;
      EXPECT_NEAR(ref.val_curve[i].precision, opt.val_curve[i].precision,
                  1e-12);
      EXPECT_NEAR(ref.val_curve[i].recall, opt.val_curve[i].recall, 1e-12);
    }
  }
}

TEST(PrimEquivalenceTest, SameResultWithTiesAndPasting) {
  for (uint64_t seed : {21u, 22u, 23u}) {
    // Discretized inputs produce heavy ties, exercising the tie-advance and
    // tie-block logic on both sides.
    const Dataset d = MakeData(500, 4, seed, /*fractional=*/false, 8);
    PrimConfig config;
    config.alpha = 0.05;
    config.paste = true;
    config.paste_alpha = 0.02;
    const PrimResult ref = RunPrimReference(d, d, config);
    const PrimResult opt = RunPrim(d, d, config);
    ExpectSamePrimResult(ref, opt, "paste seed=" + std::to_string(seed));
  }
}

TEST(PrimEquivalenceTest, PrebuiltIndexMatchesInternalBuild) {
  const Dataset d = MakeData(400, 4, 31, /*fractional=*/false);
  const auto index = ColumnIndex::Build(d);
  PrimConfig config;
  config.paste = true;
  const PrimResult with_index = RunPrim(d, d, config, index.get());
  const PrimResult without = RunPrim(d, d, config);
  ExpectSamePrimResult(with_index, without, "prebuilt index");
}

TEST(PrimEquivalenceTest, SeparateValidationData) {
  const Dataset train = MakeData(500, 4, 41, /*fractional=*/false);
  const Dataset val = MakeData(300, 4, 42, /*fractional=*/false);
  PrimConfig config;
  config.alpha = 0.05;
  const PrimResult ref = RunPrimReference(train, val, config);
  const PrimResult opt = RunPrim(train, val, config);
  ExpectSamePrimResult(ref, opt, "train != val");
}

TEST(PrimEquivalenceTest, BinnedBackendMatchesSortedBitForBit) {
  // The quantized peel state must reproduce the sorted-index kernel's boxes
  // and curves exactly -- including fractional labels, where the in-bin
  // exact refinement keeps the removed-mass sums in the same accumulation
  // order -- across continuous, tie-heavy, and pasted runs.
  for (uint64_t seed : {121u, 122u, 123u}) {
    for (bool fractional : {false, true}) {
      for (int distinct : {0, 6}) {
        const Dataset d = MakeData(700, 5, seed, fractional, distinct);
        PrimConfig sorted_config;
        sorted_config.backend = PrimPeelBackend::kSorted;
        sorted_config.paste = true;
        PrimConfig binned_config = sorted_config;
        binned_config.backend = PrimPeelBackend::kBinned;
        const PrimResult sorted_run = RunPrim(d, d, sorted_config);
        const PrimResult binned_run = RunPrim(d, d, binned_config);
        ExpectSamePrimResult(sorted_run, binned_run,
                             "seed=" + std::to_string(seed) +
                                 " fractional=" + std::to_string(fractional) +
                                 " distinct=" + std::to_string(distinct));
      }
    }
  }
}

TEST(PrimEquivalenceTest, BinnedBackendWithMoreRowsThanBins) {
  // More rows than bins forces real quantization (multiple values per bin),
  // exercising the in-bin refinement on every peel.
  const Dataset d = MakeData(3000, 4, 131, /*fractional=*/true);
  PrimConfig sorted_config;
  sorted_config.backend = PrimPeelBackend::kSorted;
  PrimConfig binned_config = sorted_config;
  binned_config.backend = PrimPeelBackend::kBinned;
  const PrimResult sorted_run = RunPrim(d, d, sorted_config);
  const PrimResult binned_run = RunPrim(d, d, binned_config);
  ExpectSamePrimResult(sorted_run, binned_run, "3000 rows");
}

TEST(PrimEquivalenceTest, PrebuiltBinnedIndexMatchesPrivateBuild) {
  const Dataset d = MakeData(500, 4, 141, /*fractional=*/false);
  const auto index = ColumnIndex::Build(d);
  const auto binned = BinnedIndex::Build(*index);
  PrimConfig config;
  const PrimResult with_indexes = RunPrim(d, d, config, index.get(),
                                          binned.get());
  const PrimResult without = RunPrim(d, d, config);
  ExpectSamePrimResult(with_indexes, without, "prebuilt binned index");
}

TEST(PrimEquivalenceTest, ParallelCandidateEvaluationMatchesSerial) {
  // Enough rows that the in-box workload clears kPrimParallelMinWork for
  // many peels; the parallel path must select the identical peel sequence.
  const Dataset d = MakeData(9000, 6, 151, /*fractional=*/false);
  for (PrimPeelBackend backend :
       {PrimPeelBackend::kSorted, PrimPeelBackend::kBinned}) {
    PrimConfig serial_config;
    serial_config.backend = backend;
    PrimConfig parallel_config = serial_config;
    parallel_config.threads = 4;
    const PrimResult serial_run = RunPrim(d, d, serial_config);
    const PrimResult parallel_run = RunPrim(d, d, parallel_config);
    ExpectSamePrimResult(serial_run, parallel_run, "parallel candidates");
  }
}

TEST(BiEquivalenceTest, SameBoxAcrossSeedsAndBeamSizes) {
  for (uint64_t seed : {51u, 52u, 53u}) {
    for (int beam : {1, 3}) {
      const Dataset d = MakeData(400, 4, seed, /*fractional=*/false, 12);
      BiConfig config;
      config.beam_size = beam;
      const BiResult ref = RunBiReference(d, config);
      const BiResult opt = RunBi(d, config);
      EXPECT_TRUE(ref.box == opt.box)
          << "seed " << seed << " beam " << beam;
      EXPECT_EQ(ref.wracc, opt.wracc);
    }
  }
}

TEST(BiEquivalenceTest, IndexedRefinementMatchesScalarPerDimension) {
  const Dataset d = MakeData(350, 4, 61, /*fractional=*/true);
  const auto index = ColumnIndex::Build(d);
  Box box = Box::Unbounded(4);
  box.set_lo(0, 0.2);
  box.set_hi(0, 0.9);
  box.set_hi(2, 0.7);
  const std::vector<int> viol = CountBoundViolations(*index, box);
  for (int j = 0; j < 4; ++j) {
    const Box ref = BestIntervalForDimension(d, box, j);
    const Box opt = BestIntervalForDimensionIndexed(d, *index, box, j, viol);
    EXPECT_TRUE(ref == opt) << "dim " << j;
  }
}

TEST(CartEquivalenceTest, PresortedTreeMatchesReference) {
  const Dataset d = MakeData(800, 5, 71, /*fractional=*/false, 20);
  const Dataset probe = MakeData(300, 5, 72, /*fractional=*/false);
  // Bootstrap rows with duplicates plus mtry subsampling, the forest's use.
  Rng bootstrap_rng(73);
  const std::vector<int> rows = bootstrap_rng.BootstrapIndices(d.num_rows());
  ml::TreeConfig config;
  config.mtry = 2;
  config.max_depth = 12;

  ml::RegressionTree reference;
  {
    ml::TreeConfig ref_config = config;
    ref_config.backend = ml::SplitBackend::kExact;
    Rng rng(99);
    reference.Fit(d, rows, ref_config, &rng);
  }
  ml::RegressionTree sorted_fit;
  {
    Rng rng(99);
    sorted_fit.Fit(d, rows, config, &rng);
  }
  ml::RegressionTree indexed_fit;
  {
    const auto index = ColumnIndex::Build(d);
    Rng rng(99);
    indexed_fit.Fit(d, rows, config, &rng, index.get());
  }
  EXPECT_EQ(reference.num_nodes(), sorted_fit.num_nodes());
  EXPECT_EQ(reference.num_nodes(), indexed_fit.num_nodes());
  for (int i = 0; i < probe.num_rows(); ++i) {
    EXPECT_DOUBLE_EQ(reference.Predict(probe.row(i)),
                     sorted_fit.Predict(probe.row(i)));
    EXPECT_DOUBLE_EQ(reference.Predict(probe.row(i)),
                     indexed_fit.Predict(probe.row(i)));
  }
}

TEST(CartEquivalenceTest, PresortedMatchesReferenceOnFractionalTies) {
  // Tie-heavy fractional targets expose accumulation order: both paths now
  // walk tied blocks in (value, row id) order, so even here the fitted
  // trees are bit-identical.
  for (uint64_t seed : {161u, 165u, 169u}) {
    const Dataset d = MakeData(300, 4, seed, /*fractional=*/true, 5);
    const Dataset probe = MakeData(150, 4, seed + 1000, /*fractional=*/true);
    ml::TreeConfig config;
    ml::RegressionTree reference;
    {
      ml::TreeConfig ref_config = config;
      ref_config.backend = ml::SplitBackend::kExact;
      Rng rng(3);
      reference.Fit(d, ref_config, &rng);
    }
    ml::RegressionTree sorted_fit;
    {
      Rng rng(3);
      sorted_fit.Fit(d, config, &rng);
    }
    ASSERT_EQ(reference.num_nodes(), sorted_fit.num_nodes()) << seed;
    for (int i = 0; i < probe.num_rows(); ++i) {
      EXPECT_DOUBLE_EQ(reference.Predict(probe.row(i)),
                       sorted_fit.Predict(probe.row(i)))
          << seed;
    }
  }
}

TEST(CartEquivalenceTest, IndexedFitMatchesSortedFitOnFractionalLabels) {
  // Fractional targets make accumulation order visible at the ulp level, so
  // the no-index sort must reproduce the index-derived tie order exactly:
  // the engine passes a shared index, the inline path does not, and both
  // must produce the same model.
  const Dataset d = MakeData(700, 4, 171, /*fractional=*/true, 10);
  const Dataset probe = MakeData(200, 4, 172, /*fractional=*/true);
  Rng bootstrap_rng(173);
  const std::vector<int> rows = bootstrap_rng.BootstrapIndices(d.num_rows());
  ml::TreeConfig config;
  config.mtry = 2;
  ml::RegressionTree sorted_fit;
  {
    Rng rng(7);
    sorted_fit.Fit(d, rows, config, &rng);
  }
  ml::RegressionTree indexed_fit;
  {
    const auto index = ColumnIndex::Build(d);
    Rng rng(7);
    indexed_fit.Fit(d, rows, config, &rng, index.get());
  }
  ASSERT_EQ(sorted_fit.num_nodes(), indexed_fit.num_nodes());
  for (int i = 0; i < probe.num_rows(); ++i) {
    EXPECT_DOUBLE_EQ(sorted_fit.Predict(probe.row(i)),
                     indexed_fit.Predict(probe.row(i)));
  }
}

TEST(CartEquivalenceTest, FeatureParallelSearchMatchesSerial) {
  // Node sizes above the parallel threshold so the pool path actually runs.
  const Dataset d = MakeData(6000, 6, 81, /*fractional=*/false);
  const Dataset probe = MakeData(200, 6, 82, /*fractional=*/false);
  ml::TreeConfig config;
  config.max_depth = 6;
  ml::RegressionTree serial;
  {
    Rng rng(5);
    serial.Fit(d, config, &rng);
  }
  ml::RegressionTree parallel;
  {
    ml::TreeConfig par_config = config;
    par_config.threads = 4;
    Rng rng(5);
    parallel.Fit(d, par_config, &rng);
  }
  EXPECT_EQ(serial.num_nodes(), parallel.num_nodes());
  for (int i = 0; i < probe.num_rows(); ++i) {
    EXPECT_DOUBLE_EQ(serial.Predict(probe.row(i)),
                     parallel.Predict(probe.row(i)));
  }
}

TEST(GbtEquivalenceTest, PresortedFitMatchesReference) {
  const Dataset d = MakeData(700, 5, 91, /*fractional=*/false, 25);
  const Dataset probe = MakeData(300, 5, 92, /*fractional=*/false);
  ml::GbtConfig config;
  config.num_rounds = 30;
  config.max_depth = 4;
  config.subsample = 0.8;  // exercises the in-bag filtered orders
  config.colsample = 0.8;

  ml::GbtConfig ref_config = config;
  ref_config.backend = ml::SplitBackend::kExact;
  ml::GradientBoostedTrees reference(ref_config);
  reference.Fit(d, 7);
  ml::GradientBoostedTrees sorted_fit(config);
  sorted_fit.Fit(d, 7);
  ASSERT_EQ(reference.num_trees(), sorted_fit.num_trees());
  // Identical accumulation orders throughout make the model bit-identical.
  for (int i = 0; i < probe.num_rows(); ++i) {
    EXPECT_DOUBLE_EQ(reference.PredictMargin(probe.row(i)),
                     sorted_fit.PredictMargin(probe.row(i)));
  }
}

TEST(GbtEquivalenceTest, SharedIndexAndParallelSearchMatch) {
  const Dataset d = MakeData(5000, 6, 101, /*fractional=*/false);
  const Dataset probe = MakeData(200, 6, 102, /*fractional=*/false);
  ml::GbtConfig config;
  config.num_rounds = 5;
  config.max_depth = 3;
  ml::GradientBoostedTrees plain(config);
  plain.Fit(d, 11);
  ml::GradientBoostedTrees with_index(config);
  {
    const auto index = ColumnIndex::Build(d);
    with_index.Fit(d, 11, index.get());
  }
  ml::GbtConfig par_config = config;
  par_config.threads = 4;
  ml::GradientBoostedTrees parallel(par_config);
  parallel.Fit(d, 11);
  for (int i = 0; i < probe.num_rows(); ++i) {
    EXPECT_DOUBLE_EQ(plain.PredictMargin(probe.row(i)),
                     with_index.PredictMargin(probe.row(i)));
    EXPECT_DOUBLE_EQ(plain.PredictMargin(probe.row(i)),
                     parallel.PredictMargin(probe.row(i)));
  }
}

TEST(RandomForestEquivalenceTest, PresortedForestMatchesReference) {
  const Dataset d = MakeData(500, 5, 111, /*fractional=*/false, 15);
  const Dataset probe = MakeData(200, 5, 112, /*fractional=*/false);
  ml::RandomForestConfig config;
  config.num_trees = 25;

  ml::RandomForestConfig ref_config = config;
  ref_config.backend = ml::SplitBackend::kExact;
  ml::RandomForest reference(ref_config);
  reference.Fit(d, 13);
  ml::RandomForest sorted_fit(config);
  sorted_fit.Fit(d, 13);
  ml::RandomForestConfig par_config = config;
  par_config.fit_threads = 4;
  ml::RandomForest parallel(par_config);
  parallel.Fit(d, 13);
  for (int i = 0; i < probe.num_rows(); ++i) {
    EXPECT_DOUBLE_EQ(reference.PredictProb(probe.row(i)),
                     sorted_fit.PredictProb(probe.row(i)));
    EXPECT_DOUBLE_EQ(reference.PredictProb(probe.row(i)),
                     parallel.PredictProb(probe.row(i)));
  }
  // OOB bookkeeping must agree too (same bootstrap streams).
  const std::vector<double> ref_oob = reference.OobPredictions(d);
  const std::vector<double> opt_oob = sorted_fit.OobPredictions(d);
  for (int i = 0; i < d.num_rows(); ++i) {
    EXPECT_DOUBLE_EQ(ref_oob[static_cast<size_t>(i)],
                     opt_oob[static_cast<size_t>(i)]);
  }
}

}  // namespace
}  // namespace reds
