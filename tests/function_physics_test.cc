// Physical sanity checks for the published-formula simulation models: known
// monotonicities and symmetries that pin down correct implementations
// (catching sign errors threshold calibration would hide).
#include <gtest/gtest.h>

#include <cmath>

#include "functions/registry.h"

namespace reds::fun {
namespace {

// Raw value of a deterministic function at a point given as unit-cube coords.
double RawAt(const TestFunction& f, std::vector<double> x) {
  const auto* det = dynamic_cast<const DeterministicFunction*>(&f);
  EXPECT_NE(det, nullptr);
  return det->Raw(x.data());
}

TEST(BoreholePhysicsTest, FlowIncreasesWithHeadDifference) {
  auto f = MakeFunction("borehole").value();
  // Input 3 is Hu (upper head), input 5 is Hl (lower head).
  std::vector<double> base(8, 0.5);
  std::vector<double> high_hu = base;
  high_hu[3] = 0.9;
  std::vector<double> high_hl = base;
  high_hl[5] = 0.9;
  EXPECT_GT(RawAt(*f, high_hu), RawAt(*f, base));
  EXPECT_LT(RawAt(*f, high_hl), RawAt(*f, base));
}

TEST(BoreholePhysicsTest, FlowIncreasesWithWellRadius) {
  auto f = MakeFunction("borehole").value();
  std::vector<double> narrow(8, 0.5), wide(8, 0.5);
  narrow[0] = 0.1;
  wide[0] = 0.9;
  EXPECT_GT(RawAt(*f, wide), RawAt(*f, narrow));
}

TEST(PistonPhysicsTest, HeavierPistonCyclesSlower) {
  auto f = MakeFunction("piston").value();
  std::vector<double> light(7, 0.5), heavy(7, 0.5);
  light[0] = 0.0;
  heavy[0] = 1.0;
  EXPECT_GT(RawAt(*f, heavy), RawAt(*f, light));  // longer cycle time
}

TEST(PistonPhysicsTest, StifferSpringCyclesFaster) {
  auto f = MakeFunction("piston").value();
  std::vector<double> soft(7, 0.5), stiff(7, 0.5);
  soft[3] = 0.1;
  stiff[3] = 0.9;
  EXPECT_LT(RawAt(*f, stiff), RawAt(*f, soft));
}

TEST(WingWeightPhysicsTest, WeightIncreasesWithAreaAndLoadFactor) {
  auto f = MakeFunction("wingweight").value();
  std::vector<double> base(10, 0.5);
  std::vector<double> big_wing = base;
  big_wing[0] = 0.95;  // S_w
  std::vector<double> high_nz = base;
  high_nz[7] = 0.95;  // ultimate load factor
  EXPECT_GT(RawAt(*f, big_wing), RawAt(*f, base));
  EXPECT_GT(RawAt(*f, high_nz), RawAt(*f, base));
}

TEST(OtlPhysicsTest, OutputVoltageRisesWithRb2) {
  auto f = MakeFunction("otlcircuit").value();
  std::vector<double> low(6, 0.5), high(6, 0.5);
  low[1] = 0.1;
  high[1] = 0.9;
  EXPECT_GT(RawAt(*f, high), RawAt(*f, low));
}

TEST(IshigamiPhysicsTest, KnownValues) {
  auto f = MakeFunction("ishigami").value();
  // At x = (0.5, 0.5, 0.5) in unit coords, all native inputs are 0:
  // f = sin(0) + 7 sin^2(0) + 0.1 * 0 * sin(0) = 0.
  EXPECT_NEAR(RawAt(*f, {0.5, 0.5, 0.5}), 0.0, 1e-12);
  // At native x1 = pi/2 (u1 = 0.75), x2 = 0, x3 = 0: f = 1.
  EXPECT_NEAR(RawAt(*f, {0.75, 0.5, 0.5}), 1.0, 1e-9);
}

TEST(IshigamiPhysicsTest, SymmetricInSecondInputSign) {
  auto f = MakeFunction("ishigami").value();
  // sin^2 makes f even in x2 around 0 (u2 = 0.5).
  EXPECT_NEAR(RawAt(*f, {0.3, 0.7, 0.6}), RawAt(*f, {0.3, 0.3, 0.6}), 1e-9);
}

TEST(SobolGPhysicsTest, KnownValuesAndSensitivityOrder) {
  auto f = MakeFunction("sobol").value();
  // At x_j = 0.5 every factor is a_j/(1+a_j).
  double expected = 1.0;
  const double a[8] = {0, 1, 4.5, 9, 99, 99, 99, 99};
  for (double aj : a) expected *= aj / (1.0 + aj);
  EXPECT_NEAR(RawAt(*f, std::vector<double>(8, 0.5)), expected, 1e-12);
  // Moving x1 (a=0) changes f far more than moving x8 (a=99).
  std::vector<double> base(8, 0.5);
  std::vector<double> move1 = base, move8 = base;
  move1[0] = 1.0;
  move8[7] = 1.0;
  const double f0 = RawAt(*f, base);
  EXPECT_GT(std::fabs(RawAt(*f, move1) - f0),
            10.0 * std::fabs(RawAt(*f, move8) - f0));
}

TEST(MorrisPhysicsTest, FirstTenInputsDominate) {
  auto f = MakeFunction("morris").value();
  // beta_i = 20 for i < 10 vs |beta_i| = 1 afterwards: perturbing x1 must
  // move the output far more than perturbing x20.
  std::vector<double> base(20, 0.5);
  std::vector<double> move1 = base, move20 = base;
  move1[0] = 0.9;
  move20[19] = 0.9;
  const double f0 = RawAt(*f, base);
  EXPECT_GT(std::fabs(RawAt(*f, move1) - f0),
            5.0 * std::fabs(RawAt(*f, move20) - f0));
}

TEST(Welch92PhysicsTest, InertInputsAreExactlyInert) {
  auto f = MakeFunction("welchetal92").value();
  std::vector<double> a(20, 0.3), b(20, 0.3);
  b[7] = 0.9;   // x8
  b[15] = 0.9;  // x16
  EXPECT_DOUBLE_EQ(RawAt(*f, a), RawAt(*f, b));
}

TEST(Hart6PhysicsTest, GlobalMinimumRegionIsLow) {
  auto f = MakeFunction("hart6sc").value();
  // The Hartmann-6 minimizer (published): raw value there must be below the
  // value at the cube center.
  const std::vector<double> minimizer{0.20169, 0.150011, 0.476874,
                                      0.275332, 0.311652, 0.6573};
  EXPECT_LT(RawAt(*f, minimizer), RawAt(*f, std::vector<double>(6, 0.5)));
}

TEST(EllipsePhysicsTest, CenterIsLowRegion) {
  auto f = MakeFunction("ellipse").value();
  // f is a positive quadratic away from its center c in the first 10 dims;
  // the raw value at any point is >= 0 and grows toward the corners.
  const double corner = RawAt(*f, std::vector<double>(15, 0.999));
  const double mid = RawAt(*f, std::vector<double>(15, 0.5));
  EXPECT_GE(mid, 0.0);
  EXPECT_GT(corner, mid);
}

}  // namespace
}  // namespace reds::fun
