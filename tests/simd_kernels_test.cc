// AVX2-vs-scalar equivalence for the dispatched hot kernels. Every
// dispatched kernel is required to be bit-identical to its plain scalar
// reference on every input, so each test runs the same kernel pinned to
// kScalar and (when the build and CPU support it) kAvx2 via ForceSimdLevel
// and compares against the reference bit for bit. Lengths deliberately
// straddle the vector width: 1-row nodes, n = width +/- 1, odd primes --
// the tail handling is where a SIMD kernel goes wrong first.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "ml/histogram.h"
#include "util/rng.h"
#include "util/simd.h"

namespace reds {
namespace {

using ml::HistBin;
using ml::HistBinQ16;
using util::SimdLevel;

// Adversarial node sizes: single row, around the 4-row unroll, around the
// 256-bit width in doubles and int16s, odd primes, and a cache-spilling
// size.
const int kSizes[] = {1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 33, 127, 4001};

// Pins the dispatch level for one scope and restores the previous level on
// exit, so a failing test cannot leak a forced level into its neighbors.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level)
      : previous_(util::ActiveSimdLevel()) {
    util::ForceSimdLevel(level);
  }
  ~ScopedSimdLevel() { util::ForceSimdLevel(previous_); }

 private:
  SimdLevel previous_;
};

struct KernelInput {
  std::vector<uint8_t> codes;
  std::vector<double> g, h;
  std::vector<int> ids;
};

// Shuffled ids over random codes/gradients: the gather pattern of a
// partitioned tree node. A few bins dominate (modulo a small bin count)
// so rows sharing a bin inside one unrolled group occur at every size.
KernelInput MakeInput(int n, uint64_t seed, int bins = 256) {
  KernelInput in;
  Rng rng(seed);
  in.codes.resize(static_cast<size_t>(n));
  in.g.resize(static_cast<size_t>(n));
  in.h.resize(static_cast<size_t>(n));
  in.ids.resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    in.codes[static_cast<size_t>(i)] =
        static_cast<uint8_t>(rng.UniformInt(static_cast<uint64_t>(bins)));
    in.g[static_cast<size_t>(i)] = rng.Normal();
    in.h[static_cast<size_t>(i)] = rng.Uniform();
    in.ids[static_cast<size_t>(i)] = i;
  }
  rng.Shuffle(&in.ids);
  return in;
}

void ExpectBinsIdentical(const std::vector<HistBin>& a,
                         const std::vector<HistBin>& b, int n) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].g, b[i].g) << "bin " << i << " n=" << n;
    EXPECT_EQ(a[i].h, b[i].h) << "bin " << i << " n=" << n;
    EXPECT_EQ(a[i].count, b[i].count) << "bin " << i << " n=" << n;
  }
}

// Runs `kernel` under both pinned dispatch levels and checks each result
// against the scalar reference bins.
template <typename Fn>
void CheckBothLevels(const std::vector<HistBin>& reference, int n,
                     const Fn& kernel) {
  for (SimdLevel level : {SimdLevel::kScalar, SimdLevel::kAvx2}) {
    ScopedSimdLevel pin(level);
    std::vector<HistBin> bins(reference.size());
    kernel(&bins);
    ExpectBinsIdentical(reference, bins, n);
  }
}

TEST(SimdKernelsTest, HistogramGMatchesReferenceAtAdversarialSizes) {
  for (int n : kSizes) {
    const KernelInput in = MakeInput(n, 1000 + static_cast<uint64_t>(n));
    std::vector<HistBin> reference(256);
    ml::AccumulateHistogramReference(in.codes.data(), in.ids.data(), n,
                                     in.g.data(), reference.data());
    CheckBothLevels(reference, n, [&](std::vector<HistBin>* bins) {
      ml::AccumulateHistogram(in.codes.data(), in.ids.data(), n, in.g.data(),
                              bins->data());
    });
  }
}

TEST(SimdKernelsTest, HistogramGHMatchesReferenceAtAdversarialSizes) {
  for (int n : kSizes) {
    const KernelInput in = MakeInput(n, 2000 + static_cast<uint64_t>(n));
    std::vector<HistBin> reference(256);
    ml::AccumulateHistogramReference(in.codes.data(), in.ids.data(), n,
                                     in.g.data(), in.h.data(),
                                     reference.data());
    CheckBothLevels(reference, n, [&](std::vector<HistBin>* bins) {
      ml::AccumulateHistogram(in.codes.data(), in.ids.data(), n, in.g.data(),
                              in.h.data(), bins->data());
    });
  }
}

TEST(SimdKernelsTest, HistogramPairsMatchesUnpackedReference) {
  for (int n : kSizes) {
    const KernelInput in = MakeInput(n, 3000 + static_cast<uint64_t>(n));
    std::vector<HistBin> reference(256);
    ml::AccumulateHistogramReference(in.codes.data(), in.ids.data(), n,
                                     in.g.data(), in.h.data(),
                                     reference.data());
    util::PackedDoubleBuffer pairs;
    ml::PackGradientPairs(in.g.data(), in.h.data(), n, &pairs);
    CheckBothLevels(reference, n, [&](std::vector<HistBin>* bins) {
      ml::AccumulateHistogramPairs(in.codes.data(), in.ids.data(), n,
                                   pairs.data(), bins->data());
    });
  }
}

TEST(SimdKernelsTest, HistogramSingleBinPileup) {
  // Every row lands in one bin: the worst case for any unrolled kernel
  // that batches its bin read-modify-writes.
  for (int n : kSizes) {
    KernelInput in = MakeInput(n, 4000 + static_cast<uint64_t>(n));
    for (auto& c : in.codes) c = 7;
    std::vector<HistBin> reference(256);
    ml::AccumulateHistogramReference(in.codes.data(), in.ids.data(), n,
                                     in.g.data(), in.h.data(),
                                     reference.data());
    EXPECT_EQ(reference[7].count, n);
    CheckBothLevels(reference, n, [&](std::vector<HistBin>* bins) {
      ml::AccumulateHistogram(in.codes.data(), in.ids.data(), n, in.g.data(),
                              in.h.data(), bins->data());
    });
  }
}

TEST(SimdKernelsTest, HistogramQ16ExactlyEqualOnEveryPath) {
  // Integer sums are associative: the Q16 kernel must be exactly equal to
  // its reference on every dispatch path, not just bit-close.
  for (int n : kSizes) {
    const KernelInput in = MakeInput(n, 5000 + static_cast<uint64_t>(n));
    std::vector<int16_t> gh16(2 * static_cast<size_t>(n));
    const double scale =
        ml::QuantizeGradientPairs(in.g.data(), in.h.data(), n, gh16.data());
    EXPECT_GT(scale, 0.0);
    std::vector<HistBinQ16> reference(256);
    ml::AccumulateHistogramQ16Reference(in.codes.data(), in.ids.data(), n,
                                        gh16.data(), reference.data());
    for (SimdLevel level : {SimdLevel::kScalar, SimdLevel::kAvx2}) {
      ScopedSimdLevel pin(level);
      std::vector<HistBinQ16> bins(256);
      ml::AccumulateHistogramQ16(in.codes.data(), in.ids.data(), n,
                                 gh16.data(), bins.data());
      for (int b = 0; b < 256; ++b) {
        EXPECT_EQ(reference[static_cast<size_t>(b)].g,
                  bins[static_cast<size_t>(b)].g)
            << "bin " << b << " n=" << n;
        EXPECT_EQ(reference[static_cast<size_t>(b)].h,
                  bins[static_cast<size_t>(b)].h);
        EXPECT_EQ(reference[static_cast<size_t>(b)].count,
                  bins[static_cast<size_t>(b)].count);
      }
    }
  }
}

TEST(SimdKernelsTest, GatherSumExactForIntegralLabels) {
  // GatherSum's AVX2 path reorders additions, which is only invoked for
  // integer-valued doubles -- where any association is exact below 2^53.
  for (int n : kSizes) {
    Rng rng(6000 + static_cast<uint64_t>(n));
    std::vector<double> v(static_cast<size_t>(n));
    std::vector<int> ids(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      v[static_cast<size_t>(i)] = rng.Bernoulli(0.3) ? 1.0 : 0.0;
      ids[static_cast<size_t>(i)] = i;
    }
    rng.Shuffle(&ids);
    const double reference = util::GatherSumReference(v.data(), ids.data(), n);
    for (SimdLevel level : {SimdLevel::kScalar, SimdLevel::kAvx2}) {
      ScopedSimdLevel pin(level);
      EXPECT_EQ(util::GatherSum(v.data(), ids.data(), n), reference)
          << "n=" << n;
    }
  }
}

// Masked-kernel fixture: a value-sorted permutation segment over a padded
// in-box bitmask, the exact shape of PRIM's binned boundary-bin scans.
struct MaskedInput {
  std::vector<double> col, y;
  std::vector<uint8_t> mask;  // 3 padding bytes past the last row
  std::vector<int> ids;       // value-sorted segment over masked rows
};

MaskedInput MakeMaskedInput(int n, uint64_t seed) {
  MaskedInput in;
  Rng rng(seed);
  in.col.resize(static_cast<size_t>(n));
  in.y.resize(static_cast<size_t>(n));
  in.mask.resize(static_cast<size_t>(n) + 3, 0xEE);  // poisoned padding
  in.ids.resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    // Few distinct values so bound comparisons hit ties at every size.
    in.col[static_cast<size_t>(i)] = static_cast<double>(rng.UniformInt(8));
    in.y[static_cast<size_t>(i)] = rng.Bernoulli(0.4) ? 1.0 : 0.0;
    in.mask[static_cast<size_t>(i)] = rng.Bernoulli(0.7) ? 1 : 0;
    in.ids[static_cast<size_t>(i)] = i;
  }
  // ids in value order (ties by row id), as ColumnIndex delivers them.
  std::stable_sort(in.ids.begin(), in.ids.end(), [&](int a, int b) {
    return in.col[static_cast<size_t>(a)] < in.col[static_cast<size_t>(b)];
  });
  return in;
}

TEST(SimdKernelsTest, MaskedCountBelowMatchesReferenceAtAdversarialSizes) {
  for (int n : kSizes) {
    const MaskedInput in = MakeMaskedInput(n, 7000 + static_cast<uint64_t>(n));
    for (double bound : {-1.0, 0.0, 3.0, 3.5, 7.0, 100.0}) {
      for (bool strict : {true, false}) {
        const int reference = util::MaskedCountBelowReference(
            in.col.data(), in.mask.data(), in.ids.data(), n, bound, strict);
        for (SimdLevel level : {SimdLevel::kScalar, SimdLevel::kAvx2}) {
          ScopedSimdLevel pin(level);
          EXPECT_EQ(util::MaskedCountBelow(in.col.data(), in.mask.data(),
                                           in.ids.data(), n, bound, strict),
                    reference)
              << "n=" << n << " bound=" << bound << " strict=" << strict;
        }
      }
    }
  }
}

TEST(SimdKernelsTest, MaskedPrefixSumExactForIntegralLabels) {
  for (int n : kSizes) {
    const MaskedInput in = MakeMaskedInput(n, 8000 + static_cast<uint64_t>(n));
    int masked = 0;
    for (int i = 0; i < n; ++i) {
      masked += in.mask[static_cast<size_t>(i)] != 0 ? 1 : 0;
    }
    // Every legal take count, including 0, 1, all, and just-short-of-all:
    // the vector/scalar handoff point moves across the whole segment.
    for (int count : {0, 1, masked / 2, masked - 1, masked}) {
      if (count < 0) continue;
      const double reference = util::MaskedPrefixSumReference(
          in.y.data(), in.mask.data(), in.ids.data(), n, count);
      for (SimdLevel level : {SimdLevel::kScalar, SimdLevel::kAvx2}) {
        ScopedSimdLevel pin(level);
        EXPECT_EQ(util::MaskedPrefixSum(in.y.data(), in.mask.data(),
                                        in.ids.data(), n, count),
                  reference)
            << "n=" << n << " count=" << count;
      }
    }
  }
}

TEST(SimdKernelsTest, MaskedKernelsAllRowsMaskedOrNone) {
  // Degenerate masks: all-in (the first peel) and all-out tails.
  for (int n : {1, 4, 5, 16, 17, 127}) {
    MaskedInput in = MakeMaskedInput(n, 9000 + static_cast<uint64_t>(n));
    for (uint8_t fill : {uint8_t{1}, uint8_t{0}}) {
      for (int i = 0; i < n; ++i) in.mask[static_cast<size_t>(i)] = fill;
      const int ref_count = util::MaskedCountBelowReference(
          in.col.data(), in.mask.data(), in.ids.data(), n, 3.0, true);
      const int take = fill ? n : 0;
      const double ref_sum = util::MaskedPrefixSumReference(
          in.y.data(), in.mask.data(), in.ids.data(), n, take);
      for (SimdLevel level : {SimdLevel::kScalar, SimdLevel::kAvx2}) {
        ScopedSimdLevel pin(level);
        EXPECT_EQ(util::MaskedCountBelow(in.col.data(), in.mask.data(),
                                         in.ids.data(), n, 3.0, true),
                  ref_count);
        EXPECT_EQ(util::MaskedPrefixSum(in.y.data(), in.mask.data(),
                                        in.ids.data(), n, take),
                  ref_sum);
      }
    }
  }
}

TEST(SimdKernelsTest, ForceLevelClampsToBuildAndCpu) {
  const SimdLevel previous = util::ActiveSimdLevel();
  const SimdLevel forced = util::ForceSimdLevel(SimdLevel::kAvx2);
  // Whatever the host, the forced level must be real: kAvx2 only when the
  // binary carries AVX2 bodies and the CPU runs them.
  EXPECT_EQ(forced == SimdLevel::kAvx2, util::Avx2Available());
  EXPECT_EQ(util::ForceSimdLevel(SimdLevel::kScalar), SimdLevel::kScalar);
  util::ForceSimdLevel(previous);
}

}  // namespace
}  // namespace reds
