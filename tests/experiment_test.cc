// Tests for the experiment harness: cell layout, metric sanity, pairing of
// datasets across methods, and the relative-change helper.
#include <gtest/gtest.h>

#include "exp/bench_flags.h"
#include "exp/experiment.h"

namespace reds::exp {
namespace {

ExperimentConfig SmallConfig() {
  ExperimentConfig config;
  config.functions = {"ellipse", "dalal3"};
  config.methods = {"P", "RPx"};
  config.sizes = {150};
  config.reps = 3;
  config.test_size = 2000;
  config.options.l_prim = 2000;
  config.options.l_bi = 1000;
  config.options.bumping_q = 8;
  config.options.tune_metamodel = false;
  config.seed = 7;
  return config;
}

TEST(ExperimentTest, RunsAllCells) {
  Runner runner(SmallConfig());
  runner.Run();
  for (const auto& f : {"ellipse", "dalal3"}) {
    for (const auto& m : {"P", "RPx"}) {
      const CellResult& c = runner.cell(f, m, 150);
      EXPECT_EQ(c.reps.size(), 3u);
      EXPECT_EQ(c.last_boxes.size(), 3u);
      for (const auto& rep : c.reps) {
        EXPECT_GE(rep.pr_auc, 0.0);
        EXPECT_LE(rep.pr_auc, 100.0 + 1e-9);
        EXPECT_GE(rep.precision, 0.0);
        EXPECT_LE(rep.precision, 100.0 + 1e-9);
        EXPECT_GE(rep.restricted, 0.0);
        EXPECT_GE(rep.runtime_seconds, 0.0);
      }
      EXPECT_GE(c.consistency, 0.0);
      EXPECT_LE(c.consistency, 100.0 + 1e-9);
    }
  }
}

TEST(ExperimentTest, MeanAggregatesReps) {
  Runner runner(SmallConfig());
  runner.Run();
  const CellResult& c = runner.cell("ellipse", "P", 150);
  const MetricSet mean = c.Mean();
  double manual = 0.0;
  for (const auto& r : c.reps) manual += r.pr_auc;
  EXPECT_NEAR(mean.pr_auc, manual / 3.0, 1e-12);
}

TEST(ExperimentTest, FunctionMeansOrderedLikeConfig) {
  Runner runner(SmallConfig());
  runner.Run();
  const auto means = runner.FunctionMeans("P", 150, &MetricSet::pr_auc);
  ASSERT_EQ(means.size(), 2u);
  EXPECT_NEAR(means[0], runner.cell("ellipse", "P", 150).Mean().pr_auc, 1e-12);
}

TEST(ExperimentTest, UnknownCellThrows) {
  Runner runner(SmallConfig());
  runner.Run();
  EXPECT_THROW(runner.cell("nope", "P", 150), std::out_of_range);
}

TEST(ExperimentTest, DeterministicAcrossRuns) {
  Runner a(SmallConfig());
  Runner b(SmallConfig());
  a.Run();
  b.Run();
  EXPECT_DOUBLE_EQ(a.cell("ellipse", "RPx", 150).Mean().pr_auc,
                   b.cell("ellipse", "RPx", 150).Mean().pr_auc);
}

TEST(ExperimentTest, RelativeChangeHelper) {
  EXPECT_DOUBLE_EQ(RelativeChangePercent(110.0, 100.0), 10.0);
  EXPECT_DOUBLE_EQ(RelativeChangePercent(90.0, 100.0), -10.0);
  EXPECT_DOUBLE_EQ(RelativeChangePercent(5.0, 0.0), 0.0);
}

TEST(BenchFlagsTest, PickRepsHonorsOverrides) {
  BenchFlags flags;
  EXPECT_EQ(PickReps(flags, 5, 50), 5);
  flags.full = true;
  EXPECT_EQ(PickReps(flags, 5, 50), 50);
  flags.reps = 12;
  EXPECT_EQ(PickReps(flags, 5, 50), 12);
}

TEST(BenchFlagsTest, PickFunctionsDefaults) {
  BenchFlags flags;
  const auto quick = PickFunctions(flags);
  EXPECT_EQ(quick.size(), 8u);
  flags.full = true;
  EXPECT_EQ(PickFunctions(flags).size(), 33u);
  flags.functions = {"morris"};
  EXPECT_EQ(PickFunctions(flags), std::vector<std::string>{"morris"});
}

}  // namespace
}  // namespace reds::exp
