// ColumnIndex invariants: the per-column sorted permutations (ordering,
// ties, constant columns), rank queries, violation counts, and columnar
// copies that the sorted-index PRIM/BI/CART kernels rely on.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "core/column_index.h"
#include "util/rng.h"

namespace reds {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

Dataset MakeData(int n, int dim, uint64_t seed, int distinct_values = 0) {
  Rng rng(seed);
  Dataset d(dim);
  std::vector<double> x(static_cast<size_t>(dim));
  for (int i = 0; i < n; ++i) {
    for (auto& v : x) {
      v = distinct_values > 0
              ? static_cast<double>(rng.UniformInt(
                    static_cast<uint64_t>(distinct_values))) /
                    distinct_values
              : rng.Uniform();
    }
    d.AddRow(x, rng.Bernoulli(0.4) ? 1.0 : 0.0);
  }
  return d;
}

TEST(ColumnIndexTest, ColumnsMatchDatasetValues) {
  const Dataset d = MakeData(200, 5, 1);
  const auto index = ColumnIndex::Build(d);
  ASSERT_EQ(index->num_rows(), 200);
  ASSERT_EQ(index->num_cols(), 5);
  for (int j = 0; j < 5; ++j) {
    for (int r = 0; r < 200; ++r) {
      EXPECT_EQ(index->column(j)[static_cast<size_t>(r)], d.x(r, j));
    }
  }
}

TEST(ColumnIndexTest, SortedRowsIsAPermutationSortedByValueThenRow) {
  // Heavy ties: only 7 distinct values per column.
  const Dataset d = MakeData(300, 4, 2, 7);
  const auto index = ColumnIndex::Build(d);
  for (int j = 0; j < 4; ++j) {
    const std::vector<int>& s = index->sorted_rows(j);
    ASSERT_EQ(s.size(), 300u);
    std::vector<bool> seen(300, false);
    for (int r : s) {
      ASSERT_GE(r, 0);
      ASSERT_LT(r, 300);
      EXPECT_FALSE(seen[static_cast<size_t>(r)]) << "duplicate row " << r;
      seen[static_cast<size_t>(r)] = true;
    }
    for (size_t i = 1; i < s.size(); ++i) {
      const double prev = d.x(s[i - 1], j);
      const double cur = d.x(s[i], j);
      EXPECT_LE(prev, cur);
      if (prev == cur) {
        EXPECT_LT(s[i - 1], s[i]) << "ties must be ordered by row id";
      }
    }
  }
}

TEST(ColumnIndexTest, ConstantColumnIsHandled) {
  Dataset d(2);
  for (int i = 0; i < 50; ++i) {
    const double x[2] = {0.5, static_cast<double>(i)};
    d.AddRow(x, i % 2 == 0 ? 1.0 : 0.0);
  }
  const auto index = ColumnIndex::Build(d);
  const std::vector<int>& s = index->sorted_rows(0);
  // All values equal: the permutation degenerates to row-id order.
  for (int i = 0; i < 50; ++i) EXPECT_EQ(s[static_cast<size_t>(i)], i);
  EXPECT_EQ(index->LowerBoundRank(0, 0.5), 0);
  EXPECT_EQ(index->UpperBoundRank(0, 0.5), 50);
  EXPECT_EQ(index->LowerBoundRank(0, 0.6), 50);
  EXPECT_EQ(index->UpperBoundRank(0, 0.4), 0);
}

TEST(ColumnIndexTest, RankQueriesMatchLinearCounts) {
  const Dataset d = MakeData(250, 3, 3, 11);
  const auto index = ColumnIndex::Build(d);
  for (int j = 0; j < 3; ++j) {
    for (double v : {-kInf, 0.0, 0.3, 5.0 / 11.0, 0.9999, 1.5, kInf}) {
      int below = 0, at_or_below = 0;
      for (int r = 0; r < 250; ++r) {
        below += d.x(r, j) < v ? 1 : 0;
        at_or_below += d.x(r, j) <= v ? 1 : 0;
      }
      EXPECT_EQ(index->LowerBoundRank(j, v), below);
      EXPECT_EQ(index->UpperBoundRank(j, v), at_or_below);
    }
  }
}

TEST(ColumnIndexTest, ValueAtRankIsTheOrderStatistic) {
  const Dataset d = MakeData(100, 2, 4);
  const auto index = ColumnIndex::Build(d);
  std::vector<double> col(100);
  for (int r = 0; r < 100; ++r) col[static_cast<size_t>(r)] = d.x(r, 1);
  std::sort(col.begin(), col.end());
  for (int k = 0; k < 100; ++k) {
    EXPECT_EQ(index->ValueAtRank(1, k), col[static_cast<size_t>(k)]);
  }
}

TEST(ColumnIndexTest, CountBoundViolationsMatchesBruteForce) {
  const Dataset d = MakeData(300, 4, 5, 9);
  const auto index = ColumnIndex::Build(d);
  Box box = Box::Unbounded(4);
  box.set_lo(0, 0.25);
  box.set_hi(1, 0.75);
  box.set_lo(2, 0.4);
  box.set_hi(2, 0.6);
  const std::vector<int> viol = CountBoundViolations(*index, box);
  ASSERT_EQ(viol.size(), 300u);
  for (int r = 0; r < 300; ++r) {
    int expected = 0;
    for (int j = 0; j < 4; ++j) {
      if (d.x(r, j) < box.lo(j) || d.x(r, j) > box.hi(j)) ++expected;
    }
    EXPECT_EQ(viol[static_cast<size_t>(r)], expected) << "row " << r;
  }
}

}  // namespace
}  // namespace reds
