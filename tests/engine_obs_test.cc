// Engine observability end to end: per-job traces name every pipeline
// stage, a warm streamed REDS job's trace proves zero fits and zero index
// builds, DumpMetrics covers every subsystem, and the legacy stat views
// stay consistent with the registry that now backs them.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/dataset_source.h"
#include "engine/discovery_engine.h"
#include "util/rng.h"

namespace reds::engine {
namespace {

#ifdef REDS_OBS_NOOP
#define SKIP_UNDER_NOOP() \
  GTEST_SKIP() << "instrumentation compiled out (REDS_OBS_NOOP)"
#else
#define SKIP_UNDER_NOOP()
#endif

// Grid-valued data: streamed quantization packs exactly (same helper as
// engine_streamed_test).
std::shared_ptr<const Dataset> MakeGridData(int n, int dim, uint64_t seed,
                                            int distinct = 48) {
  Rng rng(seed);
  auto d = std::make_shared<Dataset>(dim);
  std::vector<double> x(static_cast<size_t>(dim));
  for (int i = 0; i < n; ++i) {
    for (auto& v : x) {
      v = static_cast<double>(rng.UniformInt(
              static_cast<uint64_t>(distinct))) /
          distinct;
    }
    const double p = (x[0] < 0.45 && x[1 % dim] > 0.3) ? 0.85 : 0.1;
    d->AddRow(x, rng.Bernoulli(p) ? 1.0 : 0.0);
  }
  return d;
}

RunOptions FastOptions() {
  RunOptions options;
  options.l_prim = 1200;
  options.tune_metamodel = false;
  options.seed = 5;
  return options;
}

DiscoveryRequest SourceRequest(std::shared_ptr<const Dataset> data,
                               std::string method) {
  DiscoveryRequest request;
  request.make_train_source =
      [data]() -> std::unique_ptr<DatasetSource> {
    return std::make_unique<MatrixSource>(data);
  };
  request.method = std::move(method);
  request.options = FastOptions();
  return request;
}

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "reds_obs_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

int CountTraceFiles(const std::string& dir) {
  int n = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().string().ends_with(".trace.json")) ++n;
  }
  return n;
}

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(EngineObsTest, NoTraceDirMeansNoTrace) {
  const auto data = MakeGridData(300, 3, 7);
  DiscoveryEngine engine({/*threads=*/2});
  ASSERT_TRUE(engine.trace_dir().empty());
  const auto job = engine.Submit(SourceRequest(data, "P"));
  engine.WaitAll();
  ASSERT_EQ(job->state(), JobState::kDone);
  EXPECT_EQ(job->trace(), nullptr);
}

TEST(EngineObsTest, ColdAndWarmStreamedRedsTracesNameThePipeline) {
  SKIP_UNDER_NOOP();
  const auto data = MakeGridData(250, 4, 11);
  const std::string cache_dir = FreshDir("cache");
  const std::string trace_dir = FreshDir("traces");

  EngineConfig config;
  config.threads = 2;
  config.cache_dir = cache_dir;
  config.trace_dir = trace_dir;

  // Cold engine: the traces show the expensive paths. The streamed plain
  // PRIM job ingests the source (fingerprint + cold sketch/code build);
  // the REDS job materializes the stream, fits a real metamodel, and
  // relabels.
  {
    DiscoveryEngine cold(config);
    ASSERT_EQ(cold.trace_dir(), trace_dir);
    const auto reds_job = cold.Submit(SourceRequest(data, "RPx"));
    const auto prim_job = cold.Submit(SourceRequest(data, "P"));
    cold.WaitAll();
    ASSERT_EQ(reds_job->state(), JobState::kDone)
        << (reds_job->state() == JobState::kFailed ? reds_job->error() : "");
    ASSERT_EQ(prim_job->state(), JobState::kDone)
        << (prim_job->state() == JobState::kFailed ? prim_job->error() : "");
    ASSERT_NE(reds_job->trace(), nullptr);
    for (const char* stage :
         {"job", "ingest.materialize", "metamodel.fit", "relabel.stream",
          "prim.peel", "validate"}) {
      EXPECT_GE(reds_job->trace()->CountEvents(stage), 1)
          << "cold REDS stage " << stage;
    }
    for (const char* stage :
         {"job", "ingest.source", "ingest.fingerprint", "index.build",
          "index.sketch_pass", "index.code_pass", "prim.peel", "validate"}) {
      EXPECT_GE(prim_job->trace()->CountEvents(stage), 1)
          << "cold PRIM stage " << stage;
    }
    // Completed spans also fed the cross-job stage histograms.
    EXPECT_GE(cold.metrics().HistogramData("stage.prim.peel").count, 2u);
    EXPECT_GE(cold.metrics().HistogramData("stage.job").count, 2u);
    cold.Shutdown();
  }

  // Warm engine: the same requests served from the persistent tier. The
  // traces must prove it -- zero fits, zero engine index builds, loads
  // instead. The REDS job is served its finished relabeled stream from
  // the relabel tier: zero labeling passes, zero sketch/code passes, and
  // the metamodel is never even loaded.
  {
    DiscoveryEngine warm(config);
    const auto reds_job = warm.Submit(SourceRequest(data, "RPx"));
    const auto prim_job = warm.Submit(SourceRequest(data, "P"));
    warm.WaitAll();
    ASSERT_EQ(reds_job->state(), JobState::kDone)
        << (reds_job->state() == JobState::kFailed ? reds_job->error() : "");
    ASSERT_EQ(prim_job->state(), JobState::kDone)
        << (prim_job->state() == JobState::kFailed ? prim_job->error() : "");
    ASSERT_NE(reds_job->trace(), nullptr);
    for (const char* absent :
         {"metamodel.fit", "metamodel.load", "index.build", "relabel.stream",
          "relabel.label_pass", "index.sketch_pass", "index.code_pass"}) {
      EXPECT_EQ(reds_job->trace()->CountEvents(absent), 0)
          << "warm REDS must skip " << absent;
    }
    for (const char* stage :
         {"job", "relabel.load", "relabel.cached", "prim.peel", "validate"}) {
      EXPECT_GE(reds_job->trace()->CountEvents(stage), 1)
          << "warm REDS stage " << stage;
    }
    EXPECT_EQ(prim_job->trace()->CountEvents("index.build"), 0);
    EXPECT_EQ(prim_job->trace()->CountEvents("index.sketch_pass"), 0);
    for (const char* stage :
         {"job", "ingest.source", "ingest.fingerprint", "index.load",
          "prim.peel", "validate"}) {
      EXPECT_GE(prim_job->trace()->CountEvents(stage), 1)
          << "warm PRIM stage " << stage;
    }
    warm.Shutdown();
  }

  // All four jobs left Chrome trace JSON on disk: job numbering is
  // process-wide, so the warm engine did not overwrite the cold files.
  EXPECT_EQ(CountTraceFiles(trace_dir), 4);
  bool saw_cold_fit = false;
  bool saw_relabel = false;
  for (const auto& entry : std::filesystem::directory_iterator(trace_dir)) {
    const std::string body = ReadWholeFile(entry.path().string());
    EXPECT_NE(body.find("\"traceEvents\""), std::string::npos)
        << entry.path();
    if (body.find("metamodel.fit") != std::string::npos) saw_cold_fit = true;
    if (body.find("relabel.stream") != std::string::npos) saw_relabel = true;
  }
  EXPECT_TRUE(saw_cold_fit);
  EXPECT_TRUE(saw_relabel);

  std::filesystem::remove_all(cache_dir);
  std::filesystem::remove_all(trace_dir);
}

TEST(EngineObsTest, DumpMetricsCoversEverySubsystem) {
  SKIP_UNDER_NOOP();
  const auto data = MakeGridData(250, 4, 13);
  DiscoveryEngine engine({/*threads=*/2});
  // Two concurrent REDS jobs: the in-flight dedup makes one fit + one hit.
  const auto first = engine.Submit(SourceRequest(data, "RPx"));
  const auto second = engine.Submit(SourceRequest(data, "RPx"));
  engine.WaitAll();
  // Two sequential streamed PRIM jobs: one LRU miss + build, one hit
  // (sequential so the ingests cannot race past each other).
  const auto third = engine.Submit(SourceRequest(data, "P"));
  engine.WaitAll();
  const auto fourth = engine.Submit(SourceRequest(data, "P"));
  engine.WaitAll();
  ASSERT_EQ(first->state(), JobState::kDone)
      << (first->state() == JobState::kFailed ? first->error() : "");
  ASSERT_EQ(second->state(), JobState::kDone);
  ASSERT_EQ(third->state(), JobState::kDone)
      << (third->state() == JobState::kFailed ? third->error() : "");
  ASSERT_EQ(fourth->state(), JobState::kDone);
  // Joins the workers: pool counters/gauges are final, not racing the
  // tail of the task wrapper.
  engine.Shutdown();

  const obs::MetricsRegistry& metrics = engine.metrics();
  EXPECT_EQ(metrics.CounterValue("engine.jobs.submitted"), 4u);
  EXPECT_EQ(metrics.CounterValue("engine.jobs.completed"), 4u);
  EXPECT_EQ(metrics.CounterValue("engine.jobs.failed"), 0u);
  EXPECT_EQ(metrics.HistogramData("engine.job.latency_ns").count, 4u);
  EXPECT_EQ(metrics.CounterValue("cache.metamodel.fits"), 1u);
  EXPECT_EQ(metrics.CounterValue("cache.metamodel.hits"), 1u);
  EXPECT_EQ(metrics.CounterValue("cache.index.streamed.misses"), 1u);
  EXPECT_EQ(metrics.CounterValue("cache.index.streamed.hits"), 1u);
  EXPECT_EQ(metrics.CounterValue("engine.pool.tasks_completed"), 4u);
  EXPECT_EQ(metrics.HistogramData("engine.pool.task_wait_ns").count, 4u);
  // Idle pool: nothing queued, nobody active.
  EXPECT_EQ(metrics.GaugeValue("engine.pool.queue_depth"), 0);
  EXPECT_EQ(metrics.GaugeValue("engine.pool.active_workers"), 0);

  const std::string json = engine.DumpMetrics();
  for (const char* needle :
       {"\"engine.jobs.submitted\": 4", "\"engine.job.latency_ns\"",
        "\"cache.metamodel.fits\": 1", "\"engine.pool.queue_depth\"",
        "\"cache.metamodel.size\"", "\"engine.build.simd\"",
        "\"cache.relabel.hits\""}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }
  const std::string prom = engine.DumpMetrics(obs::ExportFormat::kPrometheus);
  EXPECT_NE(prom.find("engine_jobs_submitted 4"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE engine_job_latency_ns summary"),
            std::string::npos);
}

TEST(EngineObsTest, LegacyStatViewsMatchTheRegistry) {
  SKIP_UNDER_NOOP();
  const auto data = MakeGridData(250, 4, 17);
  const std::string cache_dir = FreshDir("views");
  EngineConfig config;
  config.threads = 2;
  config.cache_dir = cache_dir;
  DiscoveryEngine engine(config);
  const auto reds_job = engine.Submit(SourceRequest(data, "RPx"));
  const auto prim_job = engine.Submit(SourceRequest(data, "P"));
  engine.WaitAll();
  ASSERT_EQ(reds_job->state(), JobState::kDone)
      << (reds_job->state() == JobState::kFailed ? reds_job->error() : "");
  ASSERT_EQ(prim_job->state(), JobState::kDone)
      << (prim_job->state() == JobState::kFailed ? prim_job->error() : "");

  const obs::MetricsRegistry& metrics = engine.metrics();
  EXPECT_EQ(static_cast<uint64_t>(engine.metamodel_cache().fit_count()),
            metrics.CounterValue("cache.metamodel.fits"));
  EXPECT_EQ(static_cast<uint64_t>(engine.metamodel_cache().hit_count()),
            metrics.CounterValue("cache.metamodel.hits"));
  const PersistentCacheStats stats = engine.persistent_cache_stats();
  EXPECT_EQ(stats.model_writes,
            metrics.CounterValue("cache.persistent.model_writes"));
  EXPECT_EQ(stats.index_writes,
            metrics.CounterValue("cache.persistent.index_writes"));
  EXPECT_EQ(stats.model_hits,
            metrics.CounterValue("cache.persistent.model_hits"));
  EXPECT_EQ(stats.bytes_evicted,
            metrics.CounterValue("cache.persistent.bytes_evicted"));
  EXPECT_GE(stats.model_writes, 1u);
  EXPECT_GE(stats.index_writes, 1u);

  engine.Shutdown();
  std::filesystem::remove_all(cache_dir);
}

}  // namespace
}  // namespace reds::engine
