// Tests for the discovery engine: metamodel-cache accounting (k REDS
// requests on one dataset -> one fit), concurrent submission, determinism
// across thread counts, dataset fingerprints, and the result store.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

#include "engine/discovery_engine.h"
#include "engine/fingerprint.h"
#include "util/rng.h"

namespace reds::engine {
namespace {

// These tests assert exact fit/hit accounting; a developer's persistent
// cache directory must not leak in through the environment.
const bool kHermetic = [] {
  unsetenv("REDS_CACHE_DIR");
  return true;
}();

std::shared_ptr<const Dataset> MakeData(int n, int dim, uint64_t seed) {
  Rng rng(seed);
  auto d = std::make_shared<Dataset>(dim);
  std::vector<double> x(static_cast<size_t>(dim));
  for (int i = 0; i < n; ++i) {
    for (auto& v : x) v = rng.Uniform();
    d->AddRow(x, (x[0] < 0.45 && x[1] > 0.3) ? 1.0 : 0.0);
  }
  return d;
}

RunOptions FastOptions() {
  RunOptions options;
  options.l_prim = 1500;
  options.l_bi = 800;
  options.bumping_q = 6;
  options.tune_metamodel = false;
  options.seed = 5;
  return options;
}

// Engine config for the metamodel-accounting tests below. The
// relabel-stream cache serves a repeat REDS job its finished relabeled
// stream before the metamodel cache is ever consulted -- and whether a
// concurrent repeat hits it depends on job timing -- so these tests turn
// it off to count every metamodel lookup deterministically. Job-level
// coalescing is off for the same reason: a coalesced follower never
// consults any cache at all (that layer has its own accounting test,
// engine_coalesce_test).
EngineConfig CountEveryLookupConfig(int threads) {
  EngineConfig config;
  config.threads = threads;
  config.cache_relabel_streams = false;
  config.coalesce_requests = false;
  return config;
}

DiscoveryRequest MakeRequest(std::shared_ptr<const Dataset> train,
                             std::string method,
                             std::shared_ptr<const Dataset> test = nullptr) {
  DiscoveryRequest request;
  request.train = std::move(train);
  request.method = std::move(method);
  request.options = FastOptions();
  request.test = std::move(test);
  return request;
}

TEST(MetamodelCacheTest, FitCountIsOneForKSameDatasetRedsRequests) {
  const auto train = MakeData(200, 4, 1);
  DiscoveryEngine engine(CountEveryLookupConfig(/*threads=*/4));
  // Three REDS variants, all with the GBT metamodel: the relabeling (hard
  // vs. probability labels) differs but the metamodel is shared.
  std::vector<JobHandle> jobs;
  for (const char* method : {"RPx", "RPxp", "RPx"}) {
    jobs.push_back(engine.Submit(MakeRequest(train, method)));
  }
  engine.WaitAll();
  for (const auto& job : jobs) {
    ASSERT_EQ(job->state(), JobState::kDone)
        << (job->state() == JobState::kFailed ? job->error() : "");
  }
  EXPECT_EQ(engine.metamodel_cache().fit_count(), 1);
  EXPECT_EQ(engine.metamodel_cache().hit_count(), 2);
  EXPECT_EQ(engine.metamodel_cache().size(), 1);
}

TEST(MetamodelCacheTest, DistinctKindsAndDatasetsFitSeparately) {
  const auto train_a = MakeData(200, 4, 1);
  const auto train_b = MakeData(200, 4, 2);
  DiscoveryEngine engine({/*threads=*/2});
  engine.Submit(MakeRequest(train_a, "RPx"));
  engine.Submit(MakeRequest(train_a, "RPf"));  // same data, other metamodel
  engine.Submit(MakeRequest(train_b, "RPx"));  // other data, same metamodel
  engine.WaitAll();
  EXPECT_EQ(engine.metamodel_cache().fit_count(), 3);
  EXPECT_EQ(engine.metamodel_cache().hit_count(), 0);
}

TEST(MetamodelCacheTest, BitwiseEqualDatasetObjectsShareOneFit) {
  // Distinct Dataset objects with identical contents hash to the same key.
  const auto train_a = MakeData(150, 3, 7);
  const auto train_b = MakeData(150, 3, 7);
  ASSERT_NE(train_a.get(), train_b.get());
  DiscoveryEngine engine(CountEveryLookupConfig(/*threads=*/2));
  engine.Submit(MakeRequest(train_a, "RPx"));
  engine.Submit(MakeRequest(train_b, "RPx"));
  engine.WaitAll();
  EXPECT_EQ(engine.metamodel_cache().fit_count(), 1);
  EXPECT_EQ(engine.metamodel_cache().hit_count(), 1);
}

TEST(BinnedIndexCacheTest, BatchOverOneDatasetQuantizesOnce) {
  // Plain PRIM jobs route both the columnar index and its quantization
  // through the engine's fingerprint-keyed caches: three jobs over the same
  // data leave exactly one entry in each.
  const auto train = MakeData(300, 4, 11);
  DiscoveryEngine engine({/*threads=*/4});
  for (int rep = 0; rep < 3; ++rep) {
    auto request = MakeRequest(train, "P");
    request.rep = rep;
    engine.Submit(std::move(request));
  }
  engine.WaitAll();
  EXPECT_EQ(engine.column_index_cache_size(), 1);
  EXPECT_EQ(engine.binned_index_cache_size(), 1);
  // The cached quantization is the one the provider hands out.
  const auto binned = engine.GetBinnedIndex(*train);
  ASSERT_NE(binned, nullptr);
  EXPECT_EQ(binned->num_rows(), train->num_rows());
  EXPECT_EQ(engine.binned_index_cache_size(), 1);
}

TEST(BinnedIndexCacheTest, HistogramBackendKeysMetamodelsSeparately) {
  // The same dataset fit with presorted vs histogram split search must not
  // share a metamodel cache entry.
  const auto train = MakeData(200, 4, 12);
  DiscoveryEngine engine({/*threads=*/2});
  auto presorted = MakeRequest(train, "RPx");
  auto histogram = MakeRequest(train, "RPx");
  histogram.options.split_backend = ml::SplitBackend::kHistogram;
  histogram.cell = "RPx-hist";
  engine.Submit(std::move(presorted));
  engine.Submit(std::move(histogram));
  engine.WaitAll();
  EXPECT_EQ(engine.metamodel_cache().fit_count(), 2);
  EXPECT_EQ(engine.metamodel_cache().hit_count(), 0);
}

TEST(DiscoveryEngineTest, ConcurrentSubmissionStress) {
  const auto train_a = MakeData(180, 4, 3);
  const auto train_b = MakeData(180, 4, 4);
  const auto test = MakeData(2000, 4, 5);
  DiscoveryEngine engine(CountEveryLookupConfig(/*threads=*/8));
  std::vector<JobHandle> jobs;
  const char* methods[] = {"P", "RPx", "BI", "RPxp"};
  for (int i = 0; i < 32; ++i) {
    // (method, dataset) is determined by i mod 8, so every combination runs
    // with reps 0..3 (rep = i / 8).
    const bool first_dataset = (i / 4) % 2 == 0;
    DiscoveryRequest request =
        MakeRequest(first_dataset ? train_a : train_b, methods[i % 4], test);
    request.cell = std::string(methods[i % 4]) + (first_dataset ? "|a" : "|b");
    request.rep = i / 8;
    jobs.push_back(engine.Submit(std::move(request)));
  }
  engine.WaitAll();
  for (const auto& job : jobs) {
    ASSERT_EQ(job->state(), JobState::kDone)
        << (job->state() == JobState::kFailed ? job->error() : "");
    const MetricSet& m = job->metrics();
    EXPECT_GE(m.pr_auc, 0.0);
    EXPECT_LE(m.pr_auc, 100.0 + 1e-9);
    EXPECT_GE(m.precision, 0.0);
    EXPECT_GE(m.runtime_seconds, 0.0);
  }
  // Two datasets x one (GBT, untuned) metamodel each; everything else hits.
  EXPECT_EQ(engine.metamodel_cache().fit_count(), 2);
  EXPECT_EQ(engine.metamodel_cache().hit_count(), 16 - 2);
  EXPECT_TRUE(engine.results().Contains("RPx|a"));
  EXPECT_EQ(engine.results().cell("P|b").reps.size(), 4u);
}

TEST(DiscoveryEngineTest, SameSeedSameResultsRegardlessOfThreadCount) {
  const auto train = MakeData(200, 4, 9);
  const auto test = MakeData(1500, 4, 10);
  const char* methods[] = {"P", "RPx", "RPxp", "BI", "RPf"};

  auto run = [&](int threads) {
    EngineConfig config;
    config.threads = threads;
    config.seed = 99;
    DiscoveryEngine engine(config);
    std::vector<JobHandle> jobs;
    for (const char* method : methods) {
      jobs.push_back(engine.Submit(MakeRequest(train, method, test)));
    }
    engine.WaitAll();
    std::vector<std::pair<MetricSet, Box>> out;
    for (const auto& job : jobs) {
      EXPECT_EQ(job->state(), JobState::kDone);
      out.emplace_back(job->metrics(), job->output().last_box);
    }
    return out;
  };

  const auto serial = run(1);
  const auto parallel = run(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial[i].first.pr_auc, parallel[i].first.pr_auc)
        << methods[i];
    EXPECT_DOUBLE_EQ(serial[i].first.precision, parallel[i].first.precision)
        << methods[i];
    EXPECT_DOUBLE_EQ(serial[i].first.recall, parallel[i].first.recall)
        << methods[i];
    EXPECT_TRUE(serial[i].second == parallel[i].second) << methods[i];
  }
}

TEST(DiscoveryEngineTest, LazyDatasetFactoryMatchesEagerDataset) {
  const auto train = MakeData(150, 3, 11);
  DiscoveryEngine engine({/*threads=*/2});
  DiscoveryRequest lazy;
  lazy.make_train = [] { return *MakeData(150, 3, 11); };
  lazy.method = "RPx";
  lazy.options = FastOptions();
  lazy.cell = "lazy";
  const auto lazy_job = engine.Submit(std::move(lazy));
  DiscoveryRequest eager = MakeRequest(train, "RPx");
  eager.cell = "eager";
  const auto eager_job = engine.Submit(std::move(eager));
  engine.WaitAll();
  ASSERT_EQ(lazy_job->state(), JobState::kDone);
  ASSERT_EQ(eager_job->state(), JobState::kDone);
  // Bitwise-identical generated data shares the cache entry...
  EXPECT_EQ(engine.metamodel_cache().fit_count(), 1);
  // ...and therefore the exact same discovered scenario.
  EXPECT_TRUE(lazy_job->output().last_box == eager_job->output().last_box);
}

TEST(DiscoveryEngineTest, InvalidRequestsFailCleanly) {
  DiscoveryEngine engine({/*threads=*/2});
  const auto bad_method = engine.Submit(MakeRequest(MakeData(50, 2, 1), "ZZZ"));
  DiscoveryRequest no_data;
  no_data.method = "P";
  const auto no_data_job = engine.Submit(std::move(no_data));
  DiscoveryRequest both_data = MakeRequest(MakeData(50, 2, 1), "P");
  both_data.make_train = [] { return *MakeData(50, 2, 1); };
  const auto both_data_job = engine.Submit(std::move(both_data));
  engine.WaitAll();
  EXPECT_EQ(bad_method->state(), JobState::kFailed);
  EXPECT_NE(bad_method->error().find("ZZZ"), std::string::npos);
  EXPECT_EQ(no_data_job->state(), JobState::kFailed);
  EXPECT_FALSE(no_data_job->error().empty());
  EXPECT_EQ(both_data_job->state(), JobState::kFailed);
  EXPECT_NE(both_data_job->error().find("more than one"), std::string::npos);
}

TEST(FingerprintTest, SensitiveToEveryValue) {
  const auto a = MakeData(60, 3, 21);
  const auto b = MakeData(60, 3, 21);
  EXPECT_EQ(FingerprintDataset(*a), FingerprintDataset(*b));
  Dataset c = *a;
  c.set_y(59, 1.0 - c.y(59));
  EXPECT_NE(FingerprintDataset(*a), FingerprintDataset(c));
  EXPECT_NE(FingerprintDataset(*a), FingerprintDataset(*MakeData(60, 3, 22)));
  EXPECT_NE(FingerprintDataset(*a), FingerprintDataset(*MakeData(59, 3, 21)));
}

TEST(ResultStoreTest, RecordAggregateAndExport) {
  ResultStore store;
  store.Reserve("cell", 2);
  MetricSet m0;
  m0.pr_auc = 80.0;
  m0.precision = 60.0;
  MetricSet m1;
  m1.pr_auc = 90.0;
  m1.precision = 70.0;
  const Box box = Box::Unbounded(2);
  store.Record("cell", 0, m0, box);
  store.Record("cell", 1, m1, box);
  EXPECT_EQ(store.CellNames(), std::vector<std::string>{"cell"});
  EXPECT_DOUBLE_EQ(store.cell("cell").Mean().pr_auc, 85.0);
  EXPECT_DOUBLE_EQ(store.cell("cell").Mean().precision, 65.0);
  store.ComputeConsistency("cell", {0.0, 0.0}, {1.0, 1.0});
  EXPECT_DOUBLE_EQ(store.cell("cell").consistency, 100.0);
  EXPECT_THROW(store.cell("missing"), std::out_of_range);

  const std::string path = "/tmp/reds_result_store_test.csv";
  ASSERT_TRUE(store.WriteCsv(path).ok());
  const auto table = ReadCsvFile(path);
  std::remove(path.c_str());
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->rows.size(), 2u);
  EXPECT_DOUBLE_EQ(table->rows[1][2], 90.0);  // rep 1, pr_auc column
}

}  // namespace
}  // namespace reds::engine
