// Tests for the metamodels (random forest, gradient boosted trees, RBF-SVM),
// the classification metrics and the CV tuning harness.
#include <gtest/gtest.h>

#include <cmath>

#include "ml/gbt.h"
#include "ml/metrics.h"
#include "ml/random_forest.h"
#include "ml/svm.h"
#include "ml/tuning.h"
#include "util/rng.h"

namespace reds::ml {
namespace {

Dataset CircleData(int n, uint64_t seed) {
  // Positive inside a disc of radius 0.35 around the center.
  Rng rng(seed);
  Dataset d(2);
  for (int i = 0; i < n; ++i) {
    const double x[2] = {rng.Uniform(), rng.Uniform()};
    const double r2 =
        (x[0] - 0.5) * (x[0] - 0.5) + (x[1] - 0.5) * (x[1] - 0.5);
    d.AddRow(x, r2 < 0.35 * 0.35 ? 1.0 : 0.0);
  }
  return d;
}

double HoldoutAccuracy(const Metamodel& model, const Dataset& test) {
  int correct = 0;
  for (int i = 0; i < test.num_rows(); ++i) {
    const bool pred = model.PredictProb(test.row(i)) > 0.5;
    correct += pred == (test.y(i) > 0.5) ? 1 : 0;
  }
  return static_cast<double>(correct) / test.num_rows();
}

TEST(RandomForestTest, LearnsCircle) {
  const Dataset train = CircleData(600, 1);
  const Dataset test = CircleData(1000, 2);
  RandomForestConfig config;
  config.num_trees = 100;
  RandomForest rf(config);
  rf.Fit(train, 3);
  EXPECT_GT(HoldoutAccuracy(rf, test), 0.9);
}

TEST(RandomForestTest, ProbabilitiesAreCalibratedToClassShare) {
  const Dataset train = CircleData(800, 4);
  RandomForest rf;
  rf.Fit(train, 5);
  Rng rng(6);
  double mean_prob = 0.0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const double x[2] = {rng.Uniform(), rng.Uniform()};
    mean_prob += rf.PredictProb(x);
  }
  mean_prob /= n;
  EXPECT_NEAR(mean_prob, 0.35 * 0.35 * M_PI, 0.06);
}

TEST(RandomForestTest, ProbabilitiesInUnitInterval) {
  const Dataset train = CircleData(200, 7);
  RandomForest rf;
  rf.Fit(train, 8);
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    const double x[2] = {rng.Uniform(), rng.Uniform()};
    const double p = rf.PredictProb(x);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(RandomForestTest, DeterministicForSeed) {
  const Dataset train = CircleData(200, 10);
  RandomForest a, b;
  a.Fit(train, 42);
  b.Fit(train, 42);
  const double x[2] = {0.4, 0.6};
  EXPECT_DOUBLE_EQ(a.PredictProb(x), b.PredictProb(x));
}

TEST(GbtTest, LearnsCircle) {
  const Dataset train = CircleData(600, 11);
  const Dataset test = CircleData(1000, 12);
  GbtConfig config;
  config.num_rounds = 120;
  config.max_depth = 4;
  GradientBoostedTrees gbt(config);
  gbt.Fit(train, 13);
  EXPECT_GT(HoldoutAccuracy(gbt, test), 0.9);
}

TEST(GbtTest, MoreRoundsReduceTrainLoss) {
  const Dataset train = CircleData(400, 14);
  GbtConfig few, many;
  few.num_rounds = 5;
  many.num_rounds = 100;
  GradientBoostedTrees m_few(few), m_many(many);
  m_few.Fit(train, 15);
  m_many.Fit(train, 15);
  std::vector<double> p_few, p_many, y;
  for (int i = 0; i < train.num_rows(); ++i) {
    p_few.push_back(m_few.PredictProb(train.row(i)));
    p_many.push_back(m_many.PredictProb(train.row(i)));
    y.push_back(train.y(i));
  }
  EXPECT_LT(LogLoss(p_many, y), LogLoss(p_few, y));
}

TEST(GbtTest, SubsamplingStillLearns) {
  const Dataset train = CircleData(600, 16);
  const Dataset test = CircleData(500, 17);
  GbtConfig config;
  config.subsample = 0.7;
  config.colsample = 0.5;
  config.num_rounds = 150;
  GradientBoostedTrees gbt(config);
  gbt.Fit(train, 18);
  EXPECT_GT(HoldoutAccuracy(gbt, test), 0.85);
}

TEST(GbtTest, MarginIsLogOddsOfProb) {
  const Dataset train = CircleData(300, 19);
  GradientBoostedTrees gbt;
  gbt.Fit(train, 20);
  const double x[2] = {0.5, 0.5};
  const double margin = gbt.PredictMargin(x);
  const double p = gbt.PredictProb(x);
  EXPECT_NEAR(p, 1.0 / (1.0 + std::exp(-margin)), 1e-12);
}

TEST(SvmTest, LearnsCircle) {
  const Dataset train = CircleData(400, 21);
  const Dataset test = CircleData(800, 22);
  SvmConfig config;
  config.c = 4.0;
  SvmRbf svm(config);
  svm.Fit(train, 23);
  EXPECT_GT(HoldoutAccuracy(svm, test), 0.85);
}

TEST(SvmTest, DecisionSignMatchesProbability) {
  const Dataset train = CircleData(300, 24);
  SvmRbf svm;
  svm.Fit(train, 25);
  Rng rng(26);
  for (int i = 0; i < 100; ++i) {
    const double x[2] = {rng.Uniform(), rng.Uniform()};
    EXPECT_EQ(svm.Decision(x) > 0.0, svm.PredictProb(x) > 0.5);
  }
}

TEST(SvmTest, KeepsOnlySupportVectors) {
  const Dataset train = CircleData(400, 27);
  SvmRbf svm;
  svm.Fit(train, 28);
  EXPECT_GT(svm.num_support_vectors(), 0);
  EXPECT_LT(svm.num_support_vectors(), train.num_rows());
}

TEST(MetricsTest, AccuracyAndBrier) {
  const std::vector<double> prob{0.9, 0.2, 0.6, 0.4};
  const std::vector<double> y{1.0, 0.0, 0.0, 1.0};
  EXPECT_DOUBLE_EQ(Accuracy(prob, y), 0.5);
  const double expected_brier =
      (0.01 + 0.04 + 0.36 + 0.36) / 4.0;
  EXPECT_NEAR(BrierScore(prob, y), expected_brier, 1e-12);
}

TEST(MetricsTest, LogLossPerfectAndWorst) {
  EXPECT_NEAR(LogLoss({1.0, 0.0}, {1.0, 0.0}), 0.0, 1e-9);
  EXPECT_GT(LogLoss({0.0, 1.0}, {1.0, 0.0}), 10.0);
}

TEST(MetricsTest, RocAucPerfectRanking) {
  EXPECT_DOUBLE_EQ(RocAuc({0.1, 0.2, 0.8, 0.9}, {0.0, 0.0, 1.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(RocAuc({0.9, 0.8, 0.2, 0.1}, {0.0, 0.0, 1.0, 1.0}), 0.0);
}

TEST(MetricsTest, RocAucTiesGetHalfCredit) {
  EXPECT_DOUBLE_EQ(RocAuc({0.5, 0.5, 0.5, 0.5}, {0.0, 1.0, 0.0, 1.0}), 0.5);
}

TEST(TuningTest, FoldAssignmentIsBalanced) {
  const auto fold = FoldAssignment(103, 5, 1);
  std::vector<int> counts(5, 0);
  for (int f : fold) {
    ASSERT_GE(f, 0);
    ASSERT_LT(f, 5);
    counts[static_cast<size_t>(f)]++;
  }
  for (int c : counts) {
    EXPECT_GE(c, 20);
    EXPECT_LE(c, 21);
  }
}

TEST(TuningTest, TuneAndFitReturnsWorkingModel) {
  const Dataset train = CircleData(300, 30);
  const Dataset test = CircleData(500, 31);
  for (MetamodelKind kind : {MetamodelKind::kRandomForest, MetamodelKind::kGbt,
                             MetamodelKind::kSvm}) {
    auto model = TuneAndFit(kind, train, 32);
    ASSERT_NE(model, nullptr);
    EXPECT_GT(HoldoutAccuracy(*model, test), 0.8)
        << MetamodelSuffix(kind);
  }
}

TEST(TuningTest, FitDefaultReturnsWorkingModel) {
  const Dataset train = CircleData(300, 33);
  const Dataset test = CircleData(500, 34);
  for (MetamodelKind kind : {MetamodelKind::kRandomForest, MetamodelKind::kGbt,
                             MetamodelKind::kSvm}) {
    auto model = FitDefault(kind, train, 35);
    ASSERT_NE(model, nullptr);
    EXPECT_GT(HoldoutAccuracy(*model, test), 0.8) << MetamodelSuffix(kind);
  }
}

TEST(TuningTest, MetamodelSuffixNames) {
  EXPECT_EQ(MetamodelSuffix(MetamodelKind::kRandomForest), "f");
  EXPECT_EQ(MetamodelSuffix(MetamodelKind::kGbt), "x");
  EXPECT_EQ(MetamodelSuffix(MetamodelKind::kSvm), "s");
}

}  // namespace
}  // namespace reds::ml
