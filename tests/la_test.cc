// Tests for the dense linear algebra module: LU solve and the QR eigenvalue
// solver against matrices with known spectra.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>

#include "la/matrix.h"
#include "util/rng.h"

namespace reds::la {
namespace {

std::vector<double> SortedRealParts(const std::vector<std::complex<double>>& eig) {
  std::vector<double> re;
  re.reserve(eig.size());
  for (const auto& z : eig) re.push_back(z.real());
  std::sort(re.begin(), re.end());
  return re;
}

TEST(MatrixTest, IdentityAndMultiply) {
  Matrix a(2, 3);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 0) = 4;
  a(1, 1) = 5;
  a(1, 2) = 6;
  const Matrix i3 = Matrix::Identity(3);
  const Matrix prod = a.Multiply(i3);
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(prod(r, c), a(r, c));
  }
  const auto v = a.Multiply(std::vector<double>{1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(v[0], 6.0);
  EXPECT_DOUBLE_EQ(v[1], 15.0);
}

TEST(MatrixTest, TransposeRoundTrip) {
  Matrix a(2, 3);
  a(0, 2) = 5.0;
  a(1, 0) = -2.0;
  const Matrix t = a.Transpose();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_DOUBLE_EQ(t(2, 0), 5.0);
  EXPECT_DOUBLE_EQ(t(0, 1), -2.0);
}

TEST(SolveTest, SolvesKnownSystem) {
  Matrix a(3, 3);
  a(0, 0) = 2;  a(0, 1) = 1;  a(0, 2) = -1;
  a(1, 0) = -3; a(1, 1) = -1; a(1, 2) = 2;
  a(2, 0) = -2; a(2, 1) = 1;  a(2, 2) = 2;
  auto x = SolveLinearSystem(a, {8.0, -11.0, -3.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 2.0, 1e-12);
  EXPECT_NEAR((*x)[1], 3.0, 1e-12);
  EXPECT_NEAR((*x)[2], -1.0, 1e-12);
}

TEST(SolveTest, DetectsSingularMatrix) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 4;
  const auto x = SolveLinearSystem(a, {1.0, 2.0});
  EXPECT_FALSE(x.ok());
}

TEST(EigenTest, DiagonalMatrix) {
  Matrix a(3, 3);
  a(0, 0) = 3.0;
  a(1, 1) = -1.0;
  a(2, 2) = 0.5;
  auto eig = Eigenvalues(a);
  ASSERT_TRUE(eig.ok());
  const auto re = SortedRealParts(*eig);
  EXPECT_NEAR(re[0], -1.0, 1e-9);
  EXPECT_NEAR(re[1], 0.5, 1e-9);
  EXPECT_NEAR(re[2], 3.0, 1e-9);
}

TEST(EigenTest, RotationHasComplexPair) {
  // [[cos, -sin], [sin, cos]] has eigenvalues cos +- i sin.
  const double c = std::cos(0.7), s = std::sin(0.7);
  Matrix a(2, 2);
  a(0, 0) = c;
  a(0, 1) = -s;
  a(1, 0) = s;
  a(1, 1) = c;
  auto eig = Eigenvalues(a);
  ASSERT_TRUE(eig.ok());
  ASSERT_EQ(eig->size(), 2u);
  for (const auto& z : *eig) {
    EXPECT_NEAR(z.real(), c, 1e-9);
    EXPECT_NEAR(std::fabs(z.imag()), s, 1e-9);
  }
}

TEST(EigenTest, CompanionMatrixRoots) {
  // Companion matrix of p(x) = x^3 - 6x^2 + 11x - 6 with roots 1, 2, 3.
  Matrix a(3, 3);
  a(0, 0) = 6.0;
  a(0, 1) = -11.0;
  a(0, 2) = 6.0;
  a(1, 0) = 1.0;
  a(2, 1) = 1.0;
  auto eig = Eigenvalues(a);
  ASSERT_TRUE(eig.ok());
  const auto re = SortedRealParts(*eig);
  EXPECT_NEAR(re[0], 1.0, 1e-8);
  EXPECT_NEAR(re[1], 2.0, 1e-8);
  EXPECT_NEAR(re[2], 3.0, 1e-8);
}

TEST(EigenTest, TraceAndDeterminantConsistency) {
  // Eigenvalue sum equals trace; product equals determinant (checked on a
  // random 8x8 via characteristic invariants).
  Rng rng(99);
  Matrix a(8, 8);
  for (int r = 0; r < 8; ++r)
    for (int c = 0; c < 8; ++c) a(r, c) = rng.Uniform(-1.0, 1.0);
  double trace = 0.0;
  for (int i = 0; i < 8; ++i) trace += a(i, i);
  auto eig = Eigenvalues(a);
  ASSERT_TRUE(eig.ok());
  std::complex<double> sum{0.0, 0.0};
  for (const auto& z : *eig) sum += z;
  EXPECT_NEAR(sum.real(), trace, 1e-7);
  EXPECT_NEAR(sum.imag(), 0.0, 1e-7);
}

TEST(EigenTest, SpectralAbscissaOfStableSystem) {
  // -I has abscissa -1.
  Matrix a(4, 4);
  for (int i = 0; i < 4; ++i) a(i, i) = -1.0;
  auto s = SpectralAbscissa(a);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(*s, -1.0, 1e-10);
}

TEST(EigenTest, LargerRandomMatrixSumsToTrace) {
  Rng rng(12345);
  const int n = 12;
  Matrix a(n, n);
  for (int r = 0; r < n; ++r)
    for (int c = 0; c < n; ++c) a(r, c) = rng.Normal();
  double trace = 0.0;
  for (int i = 0; i < n; ++i) trace += a(i, i);
  auto eig = Eigenvalues(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_EQ(eig->size(), static_cast<size_t>(n));
  std::complex<double> sum{0.0, 0.0};
  for (const auto& z : *eig) sum += z;
  EXPECT_NEAR(sum.real(), trace, 1e-6);
}

TEST(EigenTest, RejectsNonSquare) {
  Matrix a(2, 3);
  EXPECT_FALSE(Eigenvalues(a).ok());
}

}  // namespace
}  // namespace reds::la
