// LruMap semantics and the bounded metamodel cache: max-entries eviction,
// recency updates, and the hit/miss/eviction statistics accessors.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>

#include "engine/metamodel_cache.h"
#include "util/lru_map.h"

namespace reds {
namespace {

TEST(LruMapTest, PutGetAndEviction) {
  LruMap<int, std::string> map(2);
  map.Put(1, "one");
  map.Put(2, "two");
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(map.evictions(), 0u);

  map.Put(3, "three");  // evicts 1, the least recently used
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(map.evictions(), 1u);
  EXPECT_EQ(map.Get(1), nullptr);
  ASSERT_NE(map.Get(2), nullptr);
  EXPECT_EQ(*map.Get(3), "three");
}

TEST(LruMapTest, GetRefreshesRecency) {
  LruMap<int, int> map(2);
  map.Put(1, 10);
  map.Put(2, 20);
  ASSERT_NE(map.Get(1), nullptr);  // 1 becomes most recent
  map.Put(3, 30);                  // evicts 2, not 1
  EXPECT_NE(map.Get(1), nullptr);
  EXPECT_EQ(map.Get(2), nullptr);
  EXPECT_NE(map.Get(3), nullptr);
}

TEST(LruMapTest, PeekDoesNotRefreshRecency) {
  LruMap<int, int> map(2);
  map.Put(1, 10);
  map.Put(2, 20);
  ASSERT_NE(map.Peek(1), nullptr);  // no touch
  map.Put(3, 30);                   // still evicts 1
  EXPECT_EQ(map.Get(1), nullptr);
}

TEST(LruMapTest, PutOverwritesInPlace) {
  LruMap<int, int> map(2);
  map.Put(1, 10);
  map.Put(2, 20);
  map.Put(1, 11);  // overwrite, no growth, no eviction
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(map.evictions(), 0u);
  EXPECT_EQ(*map.Get(1), 11);
}

TEST(LruMapTest, ZeroCapacityIsUnbounded) {
  LruMap<int, int> map(0);
  for (int i = 0; i < 100; ++i) map.Put(i, i);
  EXPECT_EQ(map.size(), 100u);
  EXPECT_EQ(map.evictions(), 0u);
}

TEST(LruMapTest, SetCapacityEvictsDown) {
  LruMap<int, int> map(0);
  for (int i = 0; i < 10; ++i) map.Put(i, i);
  map.SetCapacity(3);
  EXPECT_EQ(map.size(), 3u);
  EXPECT_EQ(map.evictions(), 7u);
  // The three most recent survive.
  EXPECT_NE(map.Peek(9), nullptr);
  EXPECT_NE(map.Peek(8), nullptr);
  EXPECT_NE(map.Peek(7), nullptr);
}

TEST(LruMapTest, EraseAndClearAreNotEvictions) {
  LruMap<int, int> map(5);
  map.Put(1, 10);
  map.Put(2, 20);
  EXPECT_TRUE(map.Erase(1));
  EXPECT_FALSE(map.Erase(1));
  map.Clear();
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.evictions(), 0u);
}

namespace fake {

// Minimal metamodel: the cache only stores pointers, never predicts.
class StubModel : public ml::Metamodel {
 public:
  void Fit(const Dataset&, uint64_t) override {}
  double PredictProb(const double*) const override { return 0.5; }
  int num_features() const override { return 1; }
};

std::shared_ptr<const ml::Metamodel> MakeStub() {
  return std::make_shared<StubModel>();
}

engine::MetamodelKey KeyFor(uint64_t fingerprint) {
  engine::MetamodelKey key;
  key.fingerprint = fingerprint;
  return key;
}

}  // namespace fake

TEST(MetamodelCacheLruTest, EvictsBeyondCapacityAndRefits) {
  engine::MetamodelCache cache(/*capacity=*/2);
  cache.GetOrFit(fake::KeyFor(1), fake::MakeStub);
  cache.GetOrFit(fake::KeyFor(2), fake::MakeStub);
  cache.GetOrFit(fake::KeyFor(3), fake::MakeStub);  // evicts key 1
  EXPECT_EQ(cache.size(), 2);
  EXPECT_EQ(cache.fit_count(), 3);
  EXPECT_EQ(cache.eviction_count(), 1u);

  // Key 1 was evicted: asking again is a miss that refits (and evicts 2).
  cache.GetOrFit(fake::KeyFor(1), fake::MakeStub);
  EXPECT_EQ(cache.fit_count(), 4);
  EXPECT_EQ(cache.eviction_count(), 2u);
  // Keys 3 and 1 are resident: both hit without fitting.
  cache.GetOrFit(fake::KeyFor(3), fake::MakeStub);
  cache.GetOrFit(fake::KeyFor(1), fake::MakeStub);
  EXPECT_EQ(cache.fit_count(), 4);
  EXPECT_EQ(cache.hit_count(), 2);
}

TEST(MetamodelCacheLruTest, HitsRefreshRecency) {
  engine::MetamodelCache cache(/*capacity=*/2);
  cache.GetOrFit(fake::KeyFor(1), fake::MakeStub);
  cache.GetOrFit(fake::KeyFor(2), fake::MakeStub);
  cache.GetOrFit(fake::KeyFor(1), fake::MakeStub);  // hit: 1 most recent
  cache.GetOrFit(fake::KeyFor(3), fake::MakeStub);  // evicts 2, not 1
  cache.GetOrFit(fake::KeyFor(1), fake::MakeStub);  // still resident
  EXPECT_EQ(cache.fit_count(), 3);
  EXPECT_EQ(cache.hit_count(), 2);
}

TEST(MetamodelCacheLruTest, StatsSnapshot) {
  engine::MetamodelCache cache(/*capacity=*/4);
  cache.GetOrFit(fake::KeyFor(1), fake::MakeStub);
  cache.GetOrFit(fake::KeyFor(1), fake::MakeStub);
  const engine::MetamodelCacheStats stats = cache.stats();
  EXPECT_EQ(stats.fits, 1);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.size, 1);
  EXPECT_EQ(stats.capacity, 4u);
  EXPECT_EQ(cache.capacity(), 4u);
}

TEST(MetamodelCacheLruTest, InFlightFitSurvivesEvictionPressure) {
  // An in-flight fit is pinned: even with capacity 1 and other keys
  // churning the LRU, a racing request for the same key must wait on the
  // one running fit instead of training a duplicate.
  engine::MetamodelCache cache(/*capacity=*/1);
  std::atomic<bool> release{false};
  std::atomic<int> slow_fits{0};

  std::thread slow([&] {
    cache.GetOrFit(fake::KeyFor(100), [&] {
      slow_fits.fetch_add(1);
      while (!release.load()) std::this_thread::yield();
      return fake::MakeStub();
    });
  });
  // Churn the (capacity 1) completed-model LRU while key 100 is fitting.
  while (slow_fits.load() == 0) std::this_thread::yield();
  for (uint64_t i = 0; i < 8; ++i) cache.GetOrFit(fake::KeyFor(i), fake::MakeStub);

  std::thread waiter([&] {
    // Must join the in-flight fit (a hit), not start a second one.
    cache.GetOrFit(fake::KeyFor(100), [&] {
      slow_fits.fetch_add(1);
      return fake::MakeStub();
    });
  });
  release.store(true);
  slow.join();
  waiter.join();
  EXPECT_EQ(slow_fits.load(), 1);
}

TEST(MetamodelCacheLruTest, UnboundedByDefault) {
  engine::MetamodelCache cache;
  for (uint64_t i = 0; i < 300; ++i) {
    cache.GetOrFit(fake::KeyFor(i), fake::MakeStub);
  }
  EXPECT_EQ(cache.size(), 300);
  EXPECT_EQ(cache.eviction_count(), 0u);
}

}  // namespace
}  // namespace reds
