// Tests for the CSV reader/writer round trip used by the bench figure dumps
// and the csv_discovery tool.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "util/table.h"

namespace reds {
namespace {

class CsvIoTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  void WriteRaw(const std::string& content) {
    std::ofstream f(path_);
    f << content;
  }
  const std::string path_ = "/tmp/reds_csv_io_test.csv";
};

TEST_F(CsvIoTest, RoundTrip) {
  CsvWriter writer({"x", "y", "label"});
  writer.AddRow({0.25, -1.5, 1.0});
  writer.AddRow({0.75, 2.0, 0.0});
  ASSERT_TRUE(writer.WriteFile(path_).ok());

  const auto table = ReadCsvFile(path_);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->header, (std::vector<std::string>{"x", "y", "label"}));
  ASSERT_EQ(table->rows.size(), 2u);
  EXPECT_DOUBLE_EQ(table->rows[0][1], -1.5);
  EXPECT_DOUBLE_EQ(table->rows[1][0], 0.75);
}

TEST_F(CsvIoTest, RoundTripPreservesFullDoublePrecision) {
  const double values[] = {1.0 / 3.0, 0.1234567890123456789, 6.62607015e-34,
                           -123456789.123456789, 2.0 / 7.0};
  CsvWriter writer({"v1", "v2", "v3", "v4", "v5"});
  writer.AddRow({values[0], values[1], values[2], values[3], values[4]});
  ASSERT_TRUE(writer.WriteFile(path_).ok());

  const auto table = ReadCsvFile(path_);
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->rows.size(), 1u);
  for (size_t i = 0; i < 5; ++i) {
    // Bitwise round trip: max_digits10 decimal digits identify the double.
    EXPECT_EQ(table->rows[0][i], values[i]) << "column " << i;
  }
}

TEST_F(CsvIoTest, MissingFileFails) {
  const auto table = ReadCsvFile("/tmp/definitely_not_there_reds.csv");
  EXPECT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), Status::Code::kIoError);
}

TEST_F(CsvIoTest, RaggedRowFails) {
  WriteRaw("a,b\n1,2\n3\n");
  const auto table = ReadCsvFile(path_);
  EXPECT_FALSE(table.ok());
  EXPECT_NE(table.status().message().find(":3"), std::string::npos);
}

TEST_F(CsvIoTest, NonNumericCellFails) {
  WriteRaw("a,b\n1,hello\n");
  const auto table = ReadCsvFile(path_);
  EXPECT_FALSE(table.ok());
  EXPECT_NE(table.status().message().find("hello"), std::string::npos);
}

TEST_F(CsvIoTest, HandlesCrLfAndBlankLines) {
  WriteRaw("a,b\r\n1,2\r\n\r\n3,4\r\n");
  const auto table = ReadCsvFile(path_);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows.size(), 2u);
  EXPECT_DOUBLE_EQ(table->rows[1][1], 4.0);
}

TEST_F(CsvIoTest, ScientificNotationParses) {
  WriteRaw("v\n1e-3\n-2.5E+2\n");
  const auto table = ReadCsvFile(path_);
  ASSERT_TRUE(table.ok());
  EXPECT_DOUBLE_EQ(table->rows[0][0], 0.001);
  EXPECT_DOUBLE_EQ(table->rows[1][0], -250.0);
}

}  // namespace
}  // namespace reds
