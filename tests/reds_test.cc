// End-to-end tests for REDS (Algorithm 4): relabeling properties, the
// headline improvement over plain PRIM at small N, and the semi-supervised
// entry point.
#include <gtest/gtest.h>

#include "core/binned_index.h"
#include "core/prim.h"
#include "core/quality.h"
#include "core/reds.h"
#include "functions/datagen.h"
#include "functions/registry.h"
#include "obs/trace.h"

namespace reds {
namespace {

RedsConfig QuickConfig(ml::MetamodelKind kind, bool prob, int l) {
  RedsConfig config;
  config.metamodel = kind;
  config.tune_metamodel = false;
  config.probability_labels = prob;
  config.num_new_points = l;
  return config;
}

TEST(RedsTest, RelabelProducesRequestedPoints) {
  auto f = fun::MakeFunction("ellipse");
  const Dataset d =
      fun::MakeScenarioDataset(**f, 200, fun::DesignKind::kLatinHypercube, 1);
  const RedsRelabeling r =
      RedsRelabel(d, QuickConfig(ml::MetamodelKind::kGbt, false, 3000), 2);
  EXPECT_EQ(r.new_data.num_rows(), 3000);
  EXPECT_EQ(r.new_data.num_cols(), d.num_cols());
  for (int i = 0; i < r.new_data.num_rows(); ++i) {
    EXPECT_TRUE(r.new_data.y(i) == 0.0 || r.new_data.y(i) == 1.0);
  }
  EXPECT_NE(r.metamodel, nullptr);
}

TEST(RedsTest, ProbabilityLabelsAreFractional) {
  auto f = fun::MakeFunction("ellipse");
  const Dataset d =
      fun::MakeScenarioDataset(**f, 200, fun::DesignKind::kLatinHypercube, 3);
  const RedsRelabeling r =
      RedsRelabel(d, QuickConfig(ml::MetamodelKind::kRandomForest, true, 2000), 4);
  bool any_fractional = false;
  for (int i = 0; i < r.new_data.num_rows(); ++i) {
    EXPECT_GE(r.new_data.y(i), 0.0);
    EXPECT_LE(r.new_data.y(i), 1.0);
    any_fractional =
        any_fractional || (r.new_data.y(i) > 0.0 && r.new_data.y(i) < 1.0);
  }
  EXPECT_TRUE(any_fractional);
}

TEST(RedsTest, LabelsAgreeWithMetamodel) {
  auto f = fun::MakeFunction("borehole");
  const Dataset d =
      fun::MakeScenarioDataset(**f, 150, fun::DesignKind::kLatinHypercube, 5);
  const RedsRelabeling r =
      RedsRelabel(d, QuickConfig(ml::MetamodelKind::kGbt, false, 500), 6);
  for (int i = 0; i < 50; ++i) {
    const double p = r.metamodel->PredictProb(r.new_data.row(i));
    EXPECT_EQ(r.new_data.y(i), p > 0.5 ? 1.0 : 0.0);
  }
}

TEST(RedsTest, SemiSupervisedRelabelsGivenPoints) {
  auto f = fun::MakeFunction("ellipse");
  const Dataset d =
      fun::MakeScenarioDataset(**f, 200, fun::DesignKind::kLatinHypercube, 7);
  // Unlabeled pool: 500 fresh points.
  Rng rng(8);
  std::vector<double> pool(500 * 15);
  for (auto& v : pool) v = rng.Uniform();
  const RedsRelabeling r = RedsRelabelPoints(
      d, pool, QuickConfig(ml::MetamodelKind::kRandomForest, false, 1), 9);
  EXPECT_EQ(r.new_data.num_rows(), 500);
  EXPECT_DOUBLE_EQ(r.new_data.x(0, 0), pool[0]);
}

TEST(RedsTest, CustomSamplerIsUsed) {
  auto f = fun::MakeFunction("ellipse");
  const Dataset d =
      fun::MakeScenarioDataset(**f, 150, fun::DesignKind::kLatinHypercube, 10);
  RedsConfig config = QuickConfig(ml::MetamodelKind::kGbt, false, 400);
  config.sampler = [](Rng*, int dim, double* out) {
    for (int j = 0; j < dim; ++j) out[j] = 0.25;  // degenerate distribution
  };
  const RedsRelabeling r = RedsRelabel(d, config, 11);
  for (int i = 0; i < r.new_data.num_rows(); ++i) {
    EXPECT_DOUBLE_EQ(r.new_data.x(i, 0), 0.25);
  }
}

TEST(RedsTest, StreamedRelabelingMatchesMaterializedRows) {
  auto f = fun::MakeFunction("ellipse");
  const Dataset d =
      fun::MakeScenarioDataset(**f, 150, fun::DesignKind::kLatinHypercube, 12);
  for (const bool prob : {false, true}) {
    const RedsConfig config =
        QuickConfig(ml::MetamodelKind::kGbt, prob, 900);
    const RedsRelabeling materialized = RedsRelabel(d, config, 13);
    RedsStreamedRelabeling streamed = RedsRelabelStreamed(d, config, 13);
    ASSERT_NE(streamed.new_data, nullptr);
    EXPECT_EQ(streamed.new_data->num_rows_hint(), 900);
    // Odd block size: rows must not depend on block boundaries.
    auto drained = ReadAll(streamed.new_data.get(), /*block_rows=*/77);
    ASSERT_TRUE(drained.ok());
    ASSERT_EQ(drained->num_rows(), materialized.new_data.num_rows());
    for (int i = 0; i < drained->num_rows(); ++i) {
      for (int j = 0; j < drained->num_cols(); ++j) {
        ASSERT_EQ(drained->x(i, j), materialized.new_data.x(i, j))
            << "prob=" << prob << " row " << i;
      }
      ASSERT_EQ(drained->y(i), materialized.new_data.y(i))
          << "prob=" << prob << " row " << i;
    }
    // A second pass (Reset) replays the identical stream.
    auto again = ReadAll(streamed.new_data.get(), /*block_rows=*/901);
    ASSERT_TRUE(again.ok());
    ASSERT_EQ(again->num_rows(), drained->num_rows());
    for (int i = 0; i < again->num_rows(); ++i) {
      ASSERT_EQ(again->y(i), drained->y(i));
    }
  }
}

TEST(RedsTest, SinglePassLabelCacheIsBitIdenticalToPureReplay) {
  // The fused single-pass stream (labels computed once in the sketch pass
  // and served from the O(L) cache in the coding pass) must be invisible
  // to everything downstream: identical bins, identical labels, identical
  // PRIM boxes -- only the labeling-pass count may differ.
  auto f = fun::MakeFunction("ellipse");
  const Dataset d =
      fun::MakeScenarioDataset(**f, 150, fun::DesignKind::kLatinHypercube, 40);
  StreamedDataset results[2];
  int label_passes[2] = {0, 0};
  for (const bool fused : {false, true}) {
    RedsConfig config = QuickConfig(ml::MetamodelKind::kGbt, false, 1200);
    config.cache_stream_labels = fused;
    obs::Trace trace(fused ? "fused" : "replay");
    obs::TraceBinding binding(&trace);
    RedsStreamedRelabeling streamed = RedsRelabelStreamed(d, config, 41);
    Result<StreamedDataset> built =
        BinnedIndex::BuildStreamed(streamed.new_data.get());
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    results[fused ? 1 : 0] = std::move(built).value();
    label_passes[fused ? 1 : 0] = trace.CountEvents("relabel.label_pass");
  }
#ifndef REDS_OBS_NOOP
  // Pure replay labels once per pass (sketch + coding); the fused stream
  // labels exactly once in total.
  EXPECT_EQ(label_passes[0], 2);
  EXPECT_EQ(label_passes[1], 1);
#endif
  EXPECT_EQ(results[0].y, results[1].y);
  EXPECT_EQ(results[0].fingerprint, results[1].fingerprint);
  EXPECT_EQ(results[0].input_fingerprint, results[1].input_fingerprint);
  const BinnedIndex& replay = *results[0].index;
  const BinnedIndex& fused = *results[1].index;
  ASSERT_EQ(replay.num_cols(), fused.num_cols());
  for (int j = 0; j < replay.num_cols(); ++j) {
    ASSERT_EQ(replay.num_bins(j), fused.num_bins(j));
    EXPECT_TRUE(replay.codes(j) == fused.codes(j)) << "col " << j;
  }
  PrimConfig prim;
  const PrimResult a = RunPrimStreamed(replay, results[0].y, prim, &d);
  const PrimResult b = RunPrimStreamed(fused, results[1].y, prim, &d);
  ASSERT_EQ(a.ReturnedBoxes().size(), b.ReturnedBoxes().size());
  EXPECT_TRUE(a.BestBox() == b.BestBox())
      << "single-pass and two-pass streamed REDS must peel identical boxes";
}

TEST(RedsTest, MetamodelLabelIsTheSingleSourceOfTruth) {
  auto f = fun::MakeFunction("ellipse");
  const Dataset d =
      fun::MakeScenarioDataset(**f, 150, fun::DesignKind::kLatinHypercube, 14);
  const RedsRelabeling hard =
      RedsRelabel(d, QuickConfig(ml::MetamodelKind::kGbt, false, 300), 15);
  const RedsRelabeling soft =
      RedsRelabel(d, QuickConfig(ml::MetamodelKind::kGbt, true, 300), 15);
  for (int i = 0; i < hard.new_data.num_rows(); ++i) {
    EXPECT_EQ(hard.new_data.y(i),
              MetamodelLabel(*hard.metamodel, hard.new_data.row(i), false));
    EXPECT_EQ(soft.new_data.y(i),
              MetamodelLabel(*soft.metamodel, soft.new_data.row(i), true));
  }
}

// The headline claim (Figure 2 / Section 9): at small N, PRIM on
// metamodel-relabeled data beats PRIM on the raw data. We check PR AUC on an
// independent test set, averaged over repetitions, on a function where the
// effect is strong (high-dimensional "morris").
TEST(RedsTest, ImprovesPrimOnMorrisAtSmallN) {
  auto f = fun::MakeFunction("morris");
  const Dataset test =
      fun::MakeScenarioDataset(**f, 4000, fun::DesignKind::kLatinHypercube, 99);
  double auc_plain = 0.0, auc_reds = 0.0;
  const int reps = 3;
  for (int rep = 0; rep < reps; ++rep) {
    const Dataset d = fun::MakeScenarioDataset(
        **f, 400, fun::DesignKind::kLatinHypercube, 100 + rep);
    PrimConfig prim;
    const PrimResult plain = RunPrim(d, d, prim);
    auc_plain += PrAucOnData(plain.ReturnedBoxes(), test);

    const RedsRelabeling r = RedsRelabel(
        d, QuickConfig(ml::MetamodelKind::kGbt, false, 20000), 200 + rep);
    const PrimResult reds_run = RunPrim(r.new_data, r.new_data, prim);
    auc_reds += PrAucOnData(reds_run.ReturnedBoxes(), test);
  }
  EXPECT_GT(auc_reds / reps, auc_plain / reps)
      << "REDS should dominate plain PRIM on morris at N=400";
}

}  // namespace
}  // namespace reds
