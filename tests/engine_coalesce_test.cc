// Single-flight job coalescing: N identical concurrent requests must
// perform exactly one metamodel fit and one index build, with the leader's
// output fanned out to every handle. The tests pin the race by plugging the
// one-thread pool with a gated job, so every identical request submitted
// behind it attaches to the queued leader deterministically; the "did no
// extra work" claim is then asserted by comparing every cold-work counter
// of an N-request burst against a single-request control run.
#include <gtest/gtest.h>

#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <string>
#include <vector>

#include "engine/discovery_engine.h"
#include "util/rng.h"

namespace reds::engine {
namespace {

// Exact cold-work accounting; a developer's persistent cache directory
// must not leak in through the environment.
const bool kHermetic = [] {
  unsetenv("REDS_CACHE_DIR");
  return true;
}();

Dataset MakeDataValue(int n, int dim, uint64_t seed) {
  Rng rng(seed);
  Dataset d(dim);
  std::vector<double> x(static_cast<size_t>(dim));
  for (int i = 0; i < n; ++i) {
    for (auto& v : x) v = rng.Uniform();
    d.AddRow(x, (x[0] < 0.45 && x[1] > 0.3) ? 1.0 : 0.0);
  }
  return d;
}

std::shared_ptr<const Dataset> MakeData(int n, int dim, uint64_t seed) {
  return std::make_shared<const Dataset>(MakeDataValue(n, dim, seed));
}

RunOptions FastOptions() {
  RunOptions options;
  options.l_prim = 1500;
  options.l_bi = 800;
  options.bumping_q = 6;
  options.tune_metamodel = false;
  options.seed = 5;
  return options;
}

EngineConfig ColdConfig() {
  EngineConfig config;
  config.threads = 1;  // one worker: the gate job plugs the whole pool
  config.enable_persistent_cache = false;
  return config;
}

// Blocks the pool's worker inside a make_train factory until opened.
class Gate {
 public:
  void Open() {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      open_ = true;
    }
    cv_.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return open_; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool open_ = false;
};

// Occupies the single worker with a job over its own (distinct) data, so
// everything submitted behind it is still queued -- and coalesces at
// submit time -- until the gate opens.
JobHandle SubmitGateJob(DiscoveryEngine* engine, Gate* gate) {
  DiscoveryRequest request;
  request.make_train = [gate] {
    gate->Wait();
    return MakeDataValue(80, 3, 999);
  };
  request.method = "P";
  request.options = FastOptions();
  request.cell = "gate";
  return engine->Submit(std::move(request));
}

DiscoveryRequest IdenticalRequest(std::shared_ptr<const Dataset> train,
                                  std::shared_ptr<const Dataset> test,
                                  int i) {
  DiscoveryRequest request;
  request.train = std::move(train);
  request.method = "RPx";
  request.options = FastOptions();
  request.test = std::move(test);
  request.cell = "RPx-" + std::to_string(i);  // follower-local, off the key
  request.rep = i;
  return request;
}

// Every counter that increments only when real (cache-missing) work runs.
struct ColdWork {
  uint64_t column_misses = 0;
  uint64_t binned_misses = 0;
  uint64_t streamed_misses = 0;
  uint64_t relabel_misses = 0;
  int fits = 0;
  int hits = 0;
};

struct BurstRun {
  ColdWork work;
  int fits = 0;
  int hits = 0;
  uint64_t coalesced = 0;
  std::vector<JobHandle> jobs;
};

BurstRun RunBurst(int n) {
  DiscoveryEngine engine(ColdConfig());
  Gate gate;
  const JobHandle gate_job = SubmitGateJob(&engine, &gate);
  const auto train = MakeData(200, 4, 1);
  const auto test = MakeData(1000, 4, 2);
  BurstRun run;
  for (int i = 0; i < n; ++i) {
    run.jobs.push_back(engine.Submit(IdenticalRequest(train, test, i)));
  }
  gate.Open();
  engine.WaitAll();
  EXPECT_EQ(gate_job->state(), JobState::kDone);
  run.work.column_misses =
      engine.metrics().counter("cache.index.column.misses")->Value();
  run.work.binned_misses =
      engine.metrics().counter("cache.index.binned.misses")->Value();
  run.work.streamed_misses =
      engine.metrics().counter("cache.index.streamed.misses")->Value();
  run.work.relabel_misses =
      engine.metrics().counter("cache.relabel.misses")->Value();
  run.fits = engine.metamodel_cache().fit_count();
  run.hits = engine.metamodel_cache().hit_count();
  run.coalesced = engine.metrics().counter("engine.jobs.coalesced")->Value();
  return run;
}

TEST(EngineCoalesceTest, NIdenticalRequestsDoTheWorkOfOne) {
  const BurstRun control = RunBurst(1);
  const BurstRun burst = RunBurst(6);

  // Exactly one metamodel fit on the cold engine, and -- unlike the
  // metamodel-cache dedup of previous engines -- zero additional cache
  // lookups: followers never reach any cache at all.
  EXPECT_EQ(burst.fits, 1);
  EXPECT_EQ(burst.hits, 0);
  EXPECT_EQ(burst.coalesced, 5u);

  // Every cold-work counter of the 6-request burst equals the 1-request
  // control: the five duplicates built no index, ran no relabeling, and
  // touched no cache tier.
  EXPECT_EQ(burst.work.column_misses, control.work.column_misses);
  EXPECT_EQ(burst.work.binned_misses, control.work.binned_misses);
  EXPECT_EQ(burst.work.streamed_misses, control.work.streamed_misses);
  EXPECT_EQ(burst.work.relabel_misses, control.work.relabel_misses);
  EXPECT_EQ(control.coalesced, 0u);
}

TEST(EngineCoalesceTest, EveryHandleGetsTheSameBoxesAndMetrics) {
  const BurstRun burst = RunBurst(5);
  ASSERT_EQ(burst.jobs.size(), 5u);
  for (const JobHandle& job : burst.jobs) {
    ASSERT_EQ(job->state(), JobState::kDone)
        << (job->state() == JobState::kFailed ? job->error() : "");
  }
  const JobHandle& leader = burst.jobs.front();
  ASSERT_FALSE(leader->output().trajectory.empty());
  for (size_t i = 1; i < burst.jobs.size(); ++i) {
    const JobHandle& f = burst.jobs[i];
    EXPECT_TRUE(f->output().last_box == leader->output().last_box) << i;
    ASSERT_EQ(f->output().trajectory.size(), leader->output().trajectory.size());
    for (size_t t = 0; t < leader->output().trajectory.size(); ++t) {
      EXPECT_TRUE(f->output().trajectory[t] == leader->output().trajectory[t]);
    }
    // Same test data on every request: identical metric values, evaluated
    // per handle.
    EXPECT_EQ(f->metrics().pr_auc, leader->metrics().pr_auc);
    EXPECT_EQ(f->metrics().precision, leader->metrics().precision);
    EXPECT_EQ(f->metrics().recall, leader->metrics().recall);
  }
}

TEST(EngineCoalesceTest, FollowersRecordIntoTheirOwnCells) {
  DiscoveryEngine engine(ColdConfig());
  Gate gate;
  SubmitGateJob(&engine, &gate);
  const auto train = MakeData(200, 4, 1);
  const auto test = MakeData(1000, 4, 2);
  std::vector<JobHandle> jobs;
  for (int i = 0; i < 3; ++i) {
    jobs.push_back(engine.Submit(IdenticalRequest(train, test, i)));
  }
  gate.Open();
  engine.WaitAll();
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(engine.results().Contains("RPx-" + std::to_string(i))) << i;
  }
}

TEST(EngineCoalesceTest, KeepOutputStaysFollowerLocal) {
  DiscoveryEngine engine(ColdConfig());
  Gate gate;
  SubmitGateJob(&engine, &gate);
  const auto train = MakeData(200, 4, 1);
  // Leader discards its trajectory; the follower keeps its own copy.
  DiscoveryRequest lead = IdenticalRequest(train, nullptr, 0);
  lead.keep_output = false;
  DiscoveryRequest follow = IdenticalRequest(train, nullptr, 1);
  follow.keep_output = true;
  const JobHandle leader = engine.Submit(std::move(lead));
  const JobHandle follower = engine.Submit(std::move(follow));
  gate.Open();
  engine.WaitAll();
  ASSERT_EQ(leader->state(), JobState::kDone) << leader->error();
  ASSERT_EQ(follower->state(), JobState::kDone) << follower->error();
  EXPECT_TRUE(leader->output().trajectory.empty());
  EXPECT_FALSE(follower->output().trajectory.empty());
  EXPECT_TRUE(follower->output().last_box == leader->output().last_box);
}

TEST(EngineCoalesceTest, LeaderFailureFailsEveryFollower) {
  DiscoveryEngine engine(ColdConfig());
  Gate gate;
  SubmitGateJob(&engine, &gate);
  const auto train = MakeData(100, 3, 4);
  std::vector<JobHandle> jobs;
  for (int i = 0; i < 3; ++i) {
    DiscoveryRequest request;
    request.train = train;
    request.method = "ZZZ";  // fails method parsing on the leader
    request.options = FastOptions();
    jobs.push_back(engine.Submit(std::move(request)));
  }
  gate.Open();
  engine.WaitAll();
  int leader_errors = 0;
  int follower_errors = 0;
  for (const JobHandle& job : jobs) {
    ASSERT_EQ(job->state(), JobState::kFailed);
    if (job->error().find("coalesced leader job failed") != std::string::npos) {
      ++follower_errors;
    } else {
      ++leader_errors;
    }
  }
  EXPECT_EQ(leader_errors, 1);
  EXPECT_EQ(follower_errors, 2);
}

TEST(EngineCoalesceTest, CustomProviderRequestsNeverCoalesce) {
  DiscoveryEngine engine(ColdConfig());
  Gate gate;
  SubmitGateJob(&engine, &gate);
  const auto train = MakeData(150, 3, 6);
  std::vector<JobHandle> jobs;
  for (int i = 0; i < 2; ++i) {
    DiscoveryRequest request = IdenticalRequest(train, nullptr, i);
    // A caller-supplied provider opts the request out of coalescing: the
    // engine cannot prove two callers' hooks behave identically.
    request.options.column_index_provider = [](const Dataset& d) {
      return ColumnIndex::Build(d);
    };
    jobs.push_back(engine.Submit(std::move(request)));
  }
  gate.Open();
  engine.WaitAll();
  for (const JobHandle& job : jobs) {
    ASSERT_EQ(job->state(), JobState::kDone) << job->error();
  }
  EXPECT_EQ(engine.metrics().counter("engine.jobs.coalesced")->Value(), 0u);
}

TEST(EngineCoalesceTest, WarmAndColdLatencySplitInMetrics) {
  DiscoveryEngine engine(ColdConfig());
  const auto train = MakeData(200, 4, 1);
  engine.Submit(IdenticalRequest(train, nullptr, 0));
  engine.WaitAll();  // cold: fits the metamodel, builds the indexes
  engine.Submit(IdenticalRequest(train, nullptr, 1));
  engine.WaitAll();  // warm: every tier hits; no coalescing (leader done)
  EXPECT_EQ(engine.metrics().histogram("engine.job.cold_latency_ns")->Count(),
            1u);
  EXPECT_EQ(engine.metrics().histogram("engine.job.warm_latency_ns")->Count(),
            1u);
  EXPECT_EQ(engine.metrics().histogram("engine.job.latency_ns")->Count(), 2u);
  const std::string dump = engine.DumpMetrics();
  EXPECT_NE(dump.find("engine.job.warm_latency_ns"), std::string::npos);
  EXPECT_NE(dump.find("engine.job.cold_latency_ns"), std::string::npos);
  EXPECT_NE(dump.find("engine.jobs.coalesced"), std::string::npos);
}

}  // namespace
}  // namespace reds::engine
