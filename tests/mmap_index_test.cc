// The mmap'd out-of-core index format ("REDSBMAP"): WriteMapped /
// OpenMapped must round-trip a streamed BinnedIndex so that every
// accessor -- codes, permutation, bin metadata -- reads identically
// through the mapping, and the opener must reject truncation, bit flips
// anywhere in the file, key mismatches, and shape mismatches rather than
// trust the bytes. The payload regions alias the mapping (no heap copy),
// which is exactly why the validation has to be airtight.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/binned_index.h"
#include "core/dataset_source.h"
#include "util/rng.h"

namespace reds {
namespace {

std::shared_ptr<const Dataset> MakeData(int n, int dim, uint64_t seed) {
  Rng rng(seed);
  auto d = std::make_shared<Dataset>(dim);
  std::vector<double> x(static_cast<size_t>(dim));
  for (int i = 0; i < n; ++i) {
    for (auto& v : x) v = rng.Uniform();
    d->AddRow(x, (x[0] < 0.45 && x[1] > 0.3) ? 1.0 : 0.0);
  }
  return d;
}

StreamedDataset BuildStreamedIndex(int n, int dim, uint64_t seed) {
  MatrixSource source(MakeData(n, dim, seed));
  Result<StreamedDataset> built = BinnedIndex::BuildStreamed(&source);
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  return std::move(built).value();
}

std::string TempPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "bmap_" + name + ".bin";
  std::filesystem::remove(path);
  return path;
}

void ExpectIndexesIdentical(const BinnedIndex& a, const BinnedIndex& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_cols(), b.num_cols());
  EXPECT_EQ(a.max_bins(), b.max_bins());
  EXPECT_EQ(a.kind(), b.kind());
  ASSERT_TRUE(b.has_sorted_rows());
  for (int j = 0; j < a.num_cols(); ++j) {
    ASSERT_EQ(a.num_bins(j), b.num_bins(j)) << "col " << j;
    for (int bin = 0; bin < a.num_bins(j); ++bin) {
      EXPECT_EQ(a.bin_first(j, bin), b.bin_first(j, bin));
      EXPECT_EQ(a.bin_last(j, bin), b.bin_last(j, bin));
      EXPECT_EQ(a.bin_begin_rank(j, bin), b.bin_begin_rank(j, bin));
    }
    EXPECT_EQ(a.bin_begin_rank(j, a.num_bins(j)),
              b.bin_begin_rank(j, b.num_bins(j)));
    EXPECT_TRUE(a.codes(j) == b.codes(j)) << "codes col " << j;
    EXPECT_TRUE(a.sorted_rows(j) == b.sorted_rows(j)) << "perm col " << j;
  }
}

TEST(MmapIndexTest, RoundTripReadsIdenticallyThroughTheMapping) {
  const StreamedDataset built = BuildStreamedIndex(500, 4, 3);
  const std::string path = TempPath("roundtrip");
  ASSERT_TRUE(built.index->WriteMapped(path, /*key_echo=*/99).ok());

  auto opened = BinnedIndex::OpenMapped(path, /*key_echo=*/99,
                                        /*expect_rows=*/500,
                                        /*expect_cols=*/4);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  ExpectIndexesIdentical(*built.index, **opened);

  // BinOf inverts the mapped codes just like the in-memory ones.
  const BinnedIndex& mapped = **opened;
  for (int j = 0; j < 4; ++j) {
    for (int r = 0; r < 500; r += 37) {
      EXPECT_EQ(mapped.code(j, r), built.index->code(j, r));
    }
  }
  std::filesystem::remove(path);
}

TEST(MmapIndexTest, MappedIndexOutlivesNothingItNeeds) {
  // The opened index owns the mapping: the original index and even the
  // file path string can go away while views stay readable.
  const std::string path = TempPath("lifetime");
  int rows = 0;
  std::shared_ptr<const BinnedIndex> mapped;
  {
    const StreamedDataset built = BuildStreamedIndex(300, 3, 5);
    rows = built.index->num_rows();
    ASSERT_TRUE(built.index->WriteMapped(path, 1).ok());
    auto opened = BinnedIndex::OpenMapped(path, 1, rows, 3);
    ASSERT_TRUE(opened.ok());
    mapped = std::move(opened).value();
  }
  // Deleting the file does not invalidate an open mapping on POSIX.
  std::filesystem::remove(path);
  int count = 0;
  for (uint8_t c : mapped->codes(0)) count += c < BinnedIndex::kMaxBins;
  EXPECT_EQ(count, rows);
}

TEST(MmapIndexTest, WrongKeyEchoIsRejected) {
  const StreamedDataset built = BuildStreamedIndex(200, 3, 7);
  const std::string path = TempPath("key");
  ASSERT_TRUE(built.index->WriteMapped(path, 42).ok());
  auto opened = BinnedIndex::OpenMapped(path, 43, 200, 3);
  EXPECT_FALSE(opened.ok());
  std::filesystem::remove(path);
}

TEST(MmapIndexTest, WrongShapeIsRejected) {
  const StreamedDataset built = BuildStreamedIndex(200, 3, 8);
  const std::string path = TempPath("shape");
  ASSERT_TRUE(built.index->WriteMapped(path, 5).ok());
  EXPECT_FALSE(BinnedIndex::OpenMapped(path, 5, 201, 3).ok());
  EXPECT_FALSE(BinnedIndex::OpenMapped(path, 5, 200, 4).ok());
  EXPECT_TRUE(BinnedIndex::OpenMapped(path, 5, 200, 3).ok());
  std::filesystem::remove(path);
}

TEST(MmapIndexTest, TruncationIsRejectedAtAnyLength) {
  const StreamedDataset built = BuildStreamedIndex(200, 3, 9);
  const std::string path = TempPath("trunc");
  ASSERT_TRUE(built.index->WriteMapped(path, 6).ok());
  const auto full = std::filesystem::file_size(path);
  // Cut at several depths: inside the trailer, inside the permutation,
  // inside the codes, inside the header, and to a sliver.
  for (uintmax_t cut :
       {full - 1, full - 9, full / 2, full / 8, uintmax_t{16}, uintmax_t{1}}) {
    std::filesystem::resize_file(path, cut);
    EXPECT_FALSE(BinnedIndex::OpenMapped(path, 6, 200, 3).ok())
        << "accepted a file truncated to " << cut << " of " << full;
  }
  std::filesystem::remove(path);
}

TEST(MmapIndexTest, BitFlipAnywhereIsRejected) {
  const StreamedDataset built = BuildStreamedIndex(200, 3, 10);
  const std::string path = TempPath("flip");
  ASSERT_TRUE(built.index->WriteMapped(path, 7).ok());
  const auto size = std::filesystem::file_size(path);
  // Flip one bit at several offsets spanning header, codes, permutation,
  // and the checksum itself; restore after each probe.
  for (uintmax_t offset :
       {uintmax_t{0}, uintmax_t{21}, size / 3, size / 2, size - 20,
        size - 1}) {
    char byte = 0;
    {
      std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
      f.seekg(static_cast<std::streamoff>(offset));
      f.get(byte);
      f.seekp(static_cast<std::streamoff>(offset));
      f.put(static_cast<char>(byte ^ 0x10));
    }
    EXPECT_FALSE(BinnedIndex::OpenMapped(path, 7, 200, 3).ok())
        << "accepted a bit flip at offset " << offset;
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(offset));
    f.put(byte);
  }
  // The restored file is valid again.
  EXPECT_TRUE(BinnedIndex::OpenMapped(path, 7, 200, 3).ok());
  std::filesystem::remove(path);
}

TEST(MmapIndexTest, MissingAndEmptyFilesAreRejected) {
  EXPECT_FALSE(
      BinnedIndex::OpenMapped(TempPath("missing"), 1, 10, 2).ok());
  const std::string path = TempPath("empty");
  std::ofstream(path).close();
  EXPECT_FALSE(BinnedIndex::OpenMapped(path, 1, 10, 2).ok());
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace reds
