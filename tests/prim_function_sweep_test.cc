// Parameterized sweep: PRIM and REDS invariants across a representative set
// of Table-1 functions (different dimensionalities, stochasticity, and
// structure).
#include <gtest/gtest.h>

#include "core/prim.h"
#include "core/quality.h"
#include "core/reds.h"
#include "functions/datagen.h"
#include "functions/registry.h"

namespace reds {
namespace {

class PrimFunctionSweepTest : public ::testing::TestWithParam<std::string> {};

TEST_P(PrimFunctionSweepTest, TrajectoryInvariants) {
  auto f = fun::MakeFunction(GetParam()).value();
  const Dataset d =
      fun::MakeScenarioDataset(*f, 300, fun::DefaultDesignFor(*f), 5);
  if (d.TotalPositive() < 5.0) GTEST_SKIP() << "too few positives";
  const PrimResult r = RunPrim(d, d, {});

  // Curves are aligned with boxes; recall decreases along the peel.
  ASSERT_EQ(r.boxes.size(), r.train_curve.size());
  ASSERT_EQ(r.boxes.size(), r.val_curve.size());
  for (size_t i = 1; i < r.train_curve.size(); ++i) {
    EXPECT_LE(r.train_curve[i].recall, r.train_curve[i - 1].recall + 1e-12);
  }
  // The selected box has the maximal validation precision.
  for (const auto& p : r.val_curve) {
    EXPECT_LE(p.precision,
              r.val_curve[static_cast<size_t>(r.best_val_index)].precision +
                  1e-12);
  }
  // Precision of the selected box is at least the base rate.
  EXPECT_GE(r.val_curve[static_cast<size_t>(r.best_val_index)].precision,
            d.PositiveShare() - 1e-12);
}

TEST_P(PrimFunctionSweepTest, RedsRelabelSharesAreSane) {
  auto f = fun::MakeFunction(GetParam()).value();
  const Dataset d =
      fun::MakeScenarioDataset(*f, 300, fun::DefaultDesignFor(*f), 7);
  if (d.TotalPositive() < 10.0 ||
      d.TotalPositive() > d.num_rows() - 10.0) {
    GTEST_SKIP() << "degenerate class balance";
  }
  RedsConfig config;
  config.metamodel = ml::MetamodelKind::kRandomForest;
  config.tune_metamodel = false;
  config.num_new_points = 2000;
  const RedsRelabeling r = RedsRelabel(d, config, 9);
  // The metamodel's positive share should be in the same ballpark as the
  // data's (within 0.2 absolute) -- a gross mismatch means a broken model.
  EXPECT_NEAR(r.new_data.PositiveShare(), d.PositiveShare(), 0.2)
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(RepresentativeFunctions, PrimFunctionSweepTest,
                         ::testing::Values("dalal1", "dalal3", "dalal102",
                                           "borehole", "ellipse", "hart3",
                                           "ishigami", "linketal06sin",
                                           "morris", "sobol", "welchetal92",
                                           "wingweight", "dsgc"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace reds
