// Parameterized tests over all 33 Table-1 data sources: dimensionality,
// relevance masks, probability ranges, positive-share calibration, and
// irrelevant-input invariance.
#include <gtest/gtest.h>

#include <cmath>

#include "functions/datagen.h"
#include "functions/registry.h"

namespace reds::fun {
namespace {

class FunctionTest : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<TestFunction> MakeParamFunction() {
    auto f = MakeFunction(GetParam());
    EXPECT_TRUE(f.ok());
    return std::move(*f);
  }
};

TEST_P(FunctionTest, BasicShape) {
  auto f = MakeParamFunction();
  EXPECT_EQ(f->name(), GetParam());
  EXPECT_GT(f->dim(), 0);
  EXPECT_EQ(static_cast<int>(f->relevant().size()), f->dim());
  EXPECT_GE(f->NumRelevant(), 1);
  EXPECT_LE(f->NumRelevant(), f->dim());
  EXPECT_GT(f->target_share(), 0.0);
  EXPECT_LT(f->target_share(), 1.0);
}

TEST_P(FunctionTest, ProbabilitiesAreValid) {
  auto f = MakeParamFunction();
  Rng rng(1);
  std::vector<double> x(static_cast<size_t>(f->dim()));
  for (int i = 0; i < 200; ++i) {
    for (auto& v : x) v = rng.Uniform();
    const double p = f->ProbPositive(x.data());
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    const double label = f->Label(x.data(), &rng);
    EXPECT_TRUE(label == 0.0 || label == 1.0);
  }
}

TEST_P(FunctionTest, ShareMatchesTable1) {
  auto f = MakeParamFunction();
  Rng rng(2);
  std::vector<double> x(static_cast<size_t>(f->dim()));
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    for (auto& v : x) v = rng.Uniform();
    sum += f->ProbPositive(x.data());
  }
  const double share = sum / n;
  // Calibrated functions must land close to the published share; "dsgc" has
  // a physical (uncalibrated) stability threshold, so allow a wide band.
  const double tol = GetParam() == "dsgc" ? 0.25 : 0.03;
  EXPECT_NEAR(share, f->target_share(), tol);
}

TEST_P(FunctionTest, IrrelevantInputsDoNotChangeOutput) {
  auto f = MakeParamFunction();
  if (f->stochastic()) {
    // For stochastic functions, check P(y=1|x) instead of labels.
  }
  const std::vector<bool> rel = f->relevant();
  Rng rng(3);
  std::vector<double> x(static_cast<size_t>(f->dim()));
  for (int trial = 0; trial < 20; ++trial) {
    for (auto& v : x) v = rng.Uniform();
    const double p0 = f->ProbPositive(x.data());
    std::vector<double> x2 = x;
    bool changed_any = false;
    for (int j = 0; j < f->dim(); ++j) {
      if (!rel[static_cast<size_t>(j)]) {
        x2[static_cast<size_t>(j)] = rng.Uniform();
        changed_any = true;
      }
    }
    if (!changed_any) break;
    EXPECT_DOUBLE_EQ(f->ProbPositive(x2.data()), p0)
        << "irrelevant inputs changed the outcome";
  }
}

TEST_P(FunctionTest, RelevantInputsActuallyMatter) {
  // At least one relevant input must influence P(y=1|x) somewhere.
  auto f = MakeParamFunction();
  Rng rng(4);
  std::vector<double> x(static_cast<size_t>(f->dim()));
  bool any_effect = false;
  for (int trial = 0; trial < 2000 && !any_effect; ++trial) {
    for (auto& v : x) v = rng.Uniform();
    const double p0 = f->ProbPositive(x.data());
    for (int j = 0; j < f->dim() && !any_effect; ++j) {
      if (!f->relevant()[static_cast<size_t>(j)]) continue;
      std::vector<double> x2 = x;
      x2[static_cast<size_t>(j)] = rng.Uniform();
      if (std::fabs(f->ProbPositive(x2.data()) - p0) > 1e-9) any_effect = true;
    }
  }
  EXPECT_TRUE(any_effect);
}

INSTANTIATE_TEST_SUITE_P(AllFunctions, FunctionTest,
                         ::testing::ValuesIn(AllFunctionNames()),
                         [](const auto& info) { return info.param; });

TEST(RegistryTest, AllNamesConstructible) {
  const auto names = AllFunctionNames();
  EXPECT_EQ(names.size(), 33u);
  for (const auto& n : names) {
    EXPECT_TRUE(MakeFunction(n).ok()) << n;
  }
}

TEST(RegistryTest, UnknownNameFails) {
  EXPECT_FALSE(MakeFunction("nope").ok());
}

TEST(RegistryTest, Table1Dimensions) {
  const struct {
    const char* name;
    int m;
    int i;
  } expected[] = {
      {"dalal1", 5, 2},        {"dalal102", 15, 9},
      {"borehole", 8, 8},      {"dsgc", 12, 12},
      {"ellipse", 15, 10},     {"hart3", 3, 3},
      {"hart4", 4, 4},         {"hart6sc", 6, 6},
      {"ishigami", 3, 3},      {"linketal06dec", 10, 8},
      {"linketal06simple", 10, 4}, {"linketal06sin", 10, 2},
      {"loepetal13", 10, 7},   {"moon10hd", 20, 20},
      {"moon10hdc1", 20, 5},   {"moon10low", 3, 3},
      {"morretal06", 30, 10},  {"morris", 20, 20},
      {"oakoh04", 15, 15},     {"otlcircuit", 6, 6},
      {"piston", 7, 7},        {"soblev99", 20, 19},
      {"sobol", 8, 8},         {"welchetal92", 20, 18},
      {"willetal06", 3, 2},    {"wingweight", 10, 10},
  };
  for (const auto& e : expected) {
    auto f = MakeFunction(e.name);
    ASSERT_TRUE(f.ok()) << e.name;
    EXPECT_EQ((*f)->dim(), e.m) << e.name;
    EXPECT_EQ((*f)->NumRelevant(), e.i) << e.name;
  }
}

TEST(DatagenTest, DatasetHasRequestedShape) {
  auto f = MakeFunction("borehole");
  ASSERT_TRUE(f.ok());
  const Dataset d = MakeScenarioDataset(**f, 200, DesignKind::kLatinHypercube, 1);
  EXPECT_EQ(d.num_rows(), 200);
  EXPECT_EQ(d.num_cols(), 8);
  for (int i = 0; i < d.num_rows(); ++i) {
    EXPECT_TRUE(d.y(i) == 0.0 || d.y(i) == 1.0);
  }
}

TEST(DatagenTest, DeterministicForSeed) {
  auto f = MakeFunction("ishigami");
  ASSERT_TRUE(f.ok());
  const Dataset a = MakeScenarioDataset(**f, 50, DesignKind::kLatinHypercube, 9);
  const Dataset b = MakeScenarioDataset(**f, 50, DesignKind::kLatinHypercube, 9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(a.x(i, 0), b.x(i, 0));
    EXPECT_DOUBLE_EQ(a.y(i), b.y(i));
  }
}

TEST(DatagenTest, DefaultDesignHaltonForDsgc) {
  auto dsgc = MakeFunction("dsgc");
  auto borehole = MakeFunction("borehole");
  ASSERT_TRUE(dsgc.ok() && borehole.ok());
  EXPECT_EQ(DefaultDesignFor(**dsgc), DesignKind::kHalton);
  EXPECT_EQ(DefaultDesignFor(**borehole), DesignKind::kLatinHypercube);
}

TEST(DatagenTest, MixedDesignDiscretizesEvenInputs) {
  auto f = MakeFunction("borehole");
  ASSERT_TRUE(f.ok());
  const Dataset d =
      MakeScenarioDataset(**f, 100, DesignKind::kMixedDiscrete, 11);
  for (int i = 0; i < d.num_rows(); ++i) {
    const double v = d.x(i, 1);
    EXPECT_TRUE(v == 0.1 || v == 0.3 || v == 0.5 || v == 0.7 || v == 0.9);
  }
}

TEST(DatagenTest, ShareOnLhsSampleIsCloseToTarget) {
  auto f = MakeFunction("sobol");
  ASSERT_TRUE(f.ok());
  const Dataset d =
      MakeScenarioDataset(**f, 5000, DesignKind::kLatinHypercube, 13);
  EXPECT_NEAR(d.PositiveShare(), (*f)->target_share(), 0.05);
}

}  // namespace
}  // namespace reds::fun
