// Engine robustness: CSV export racing concurrent Record()s (the store must
// not hold its mutex across file I/O), engine Shutdown() releasing the
// worker pool while results stay readable, and the shared per-dataset
// column-index cache.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "engine/discovery_engine.h"
#include "engine/result_store.h"
#include "util/rng.h"

namespace reds::engine {
namespace {

// Keep these engines hermetic: a developer's REDS_CACHE_DIR must not leak
// persistent-cache state into shutdown/robustness behavior.
const bool kHermetic = [] {
  unsetenv("REDS_CACHE_DIR");
  return true;
}();

std::shared_ptr<const Dataset> MakeData(int n, int dim, uint64_t seed) {
  Rng rng(seed);
  auto d = std::make_shared<Dataset>(dim);
  std::vector<double> x(static_cast<size_t>(dim));
  for (int i = 0; i < n; ++i) {
    for (auto& v : x) v = rng.Uniform();
    d->AddRow(x, (x[0] < 0.45 && x[1] > 0.3) ? 1.0 : 0.0);
  }
  return d;
}

RunOptions FastOptions() {
  RunOptions options;
  options.l_prim = 1200;
  options.l_bi = 600;
  options.tune_metamodel = false;
  options.seed = 5;
  return options;
}

TEST(ResultStoreConcurrencyTest, WriteCsvWhileRecording) {
  ResultStore store;
  const std::string path = "/tmp/reds_store_concurrent_test.csv";
  constexpr int kWriters = 4;
  constexpr int kRepsPerWriter = 200;
  std::atomic<bool> start{false};

  // Writers append repetitions while a reader exports snapshots: neither
  // side may deadlock or crash, and every snapshot must parse.
  std::vector<std::thread> workers;
  for (int w = 0; w < kWriters; ++w) {
    workers.emplace_back([&store, &start, w] {
      while (!start.load()) std::this_thread::yield();
      const Box box = Box::Unbounded(2);
      for (int r = 0; r < kRepsPerWriter; ++r) {
        MetricSet m;
        m.pr_auc = static_cast<double>(w * kRepsPerWriter + r);
        store.Record("cell" + std::to_string(w), r, m, box);
      }
    });
  }
  std::thread exporter([&store, &start, &path] {
    while (!start.load()) std::this_thread::yield();
    for (int i = 0; i < 25; ++i) {
      const Status status = store.WriteCsv(path);
      ASSERT_TRUE(status.ok()) << status.ToString();
      const auto snapshot = ReadCsvFile(path);
      ASSERT_TRUE(snapshot.ok());
    }
  });
  start.store(true);
  for (auto& t : workers) t.join();
  exporter.join();

  ASSERT_TRUE(store.WriteCsv(path).ok());
  const auto final_table = ReadCsvFile(path);
  std::remove(path.c_str());
  ASSERT_TRUE(final_table.ok());
  EXPECT_EQ(final_table->rows.size(),
            static_cast<size_t>(kWriters * kRepsPerWriter));
}

TEST(DiscoveryEngineShutdownTest, ResultsReadableAfterShutdown) {
  const auto train = MakeData(150, 3, 1);
  DiscoveryEngine engine({/*threads=*/2});
  const auto job = engine.Submit([&] {
    DiscoveryRequest request;
    request.train = train;
    request.method = "P";
    request.options = FastOptions();
    request.cell = "p_cell";
    return request;
  }());
  engine.Shutdown();  // drains the queue, joins the workers
  ASSERT_EQ(job->state(), JobState::kDone)
      << (job->state() == JobState::kFailed ? job->error() : "");
  EXPECT_TRUE(engine.results().Contains("p_cell"));
  EXPECT_EQ(engine.results().cell("p_cell").reps.size(), 1u);

  engine.Shutdown();  // idempotent
  // The pool is gone: further submissions are rejected loudly rather than
  // queueing forever.
  DiscoveryRequest late;
  late.train = train;
  late.method = "P";
  late.options = FastOptions();
  EXPECT_THROW(engine.Submit(std::move(late)), std::logic_error);
}

TEST(DiscoveryEngineColumnIndexTest, BatchOverSameDataIndexesOnce) {
  const auto train = MakeData(200, 4, 7);
  DiscoveryEngine engine({/*threads=*/4});
  // Non-REDS variants scan the original dataset: one shared index serves
  // the whole batch.
  for (const char* method : {"P", "BI", "P", "BI"}) {
    DiscoveryRequest request;
    request.train = train;
    request.method = method;
    request.options = FastOptions();
    request.cell = std::string("cell_") + method;
    engine.Submit(std::move(request));
  }
  engine.WaitAll();
  EXPECT_EQ(engine.column_index_cache_size(), 1);

  // The same data through the direct accessor reuses the cached index.
  const auto index = engine.GetColumnIndex(*train);
  EXPECT_EQ(engine.column_index_cache_size(), 1);
  EXPECT_EQ(index->num_rows(), train->num_rows());
}

TEST(DiscoveryEngineColumnIndexTest, DisabledCacheStillProducesResults) {
  const auto train = MakeData(150, 3, 9);
  EngineConfig config;
  config.threads = 2;
  config.cache_column_indexes = false;
  DiscoveryEngine engine(config);
  DiscoveryRequest request;
  request.train = train;
  request.method = "P";
  request.options = FastOptions();
  request.cell = "p";
  const auto job = engine.Submit(std::move(request));
  engine.WaitAll();
  ASSERT_EQ(job->state(), JobState::kDone);
  EXPECT_EQ(engine.column_index_cache_size(), 0);
}

}  // namespace
}  // namespace reds::engine
