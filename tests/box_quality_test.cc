// Tests for Dataset, Box geometry and the quality measures of Section 4.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/box.h"
#include "core/dataset.h"
#include "core/quality.h"

namespace reds {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

Dataset MakeToyData() {
  // 2-D grid; positives in the lower-left quadrant.
  Dataset d(2);
  for (int i = 0; i < 10; ++i) {
    for (int j = 0; j < 10; ++j) {
      const double x[2] = {i / 10.0, j / 10.0};
      d.AddRow(x, (x[0] < 0.5 && x[1] < 0.5) ? 1.0 : 0.0);
    }
  }
  return d;
}

TEST(DatasetTest, BasicAccessors) {
  Dataset d(3);
  EXPECT_EQ(d.num_rows(), 0);
  const double r1[3] = {0.1, 0.2, 0.3};
  d.AddRow(r1, 1.0);
  d.AddRow(std::vector<double>{0.4, 0.5, 0.6}, 0.25);
  EXPECT_EQ(d.num_rows(), 2);
  EXPECT_DOUBLE_EQ(d.x(1, 2), 0.6);
  EXPECT_DOUBLE_EQ(d.y(1), 0.25);
  EXPECT_DOUBLE_EQ(d.TotalPositive(), 1.25);
  EXPECT_DOUBLE_EQ(d.PositiveShare(), 0.625);
}

TEST(DatasetTest, SubsetRowsAllowsDuplicates) {
  Dataset d = MakeToyData();
  const Dataset sub = d.SubsetRows({0, 0, 5});
  EXPECT_EQ(sub.num_rows(), 3);
  EXPECT_DOUBLE_EQ(sub.x(0, 0), sub.x(1, 0));
}

TEST(DatasetTest, SelectColumnsKeepsTargets) {
  Dataset d = MakeToyData();
  const Dataset sub = d.SelectColumns({1});
  EXPECT_EQ(sub.num_cols(), 1);
  EXPECT_EQ(sub.num_rows(), d.num_rows());
  EXPECT_DOUBLE_EQ(sub.TotalPositive(), d.TotalPositive());
  EXPECT_DOUBLE_EQ(sub.x(3, 0), d.x(3, 1));
}

TEST(DatasetTest, ColumnRange) {
  Dataset d = MakeToyData();
  std::vector<double> lo, hi;
  d.ColumnRange(&lo, &hi);
  EXPECT_DOUBLE_EQ(lo[0], 0.0);
  EXPECT_DOUBLE_EQ(hi[0], 0.9);
}

TEST(BoxTest, UnboundedContainsEverything) {
  const Box b = Box::Unbounded(3);
  EXPECT_EQ(b.NumRestricted(), 0);
  const double x[3] = {-1e30, 0.0, 1e30};
  EXPECT_TRUE(b.Contains(x));
}

TEST(BoxTest, ContainsIsInclusive) {
  Box b = Box::Unbounded(2);
  b.set_lo(0, 0.2);
  b.set_hi(0, 0.8);
  const double on_lo[2] = {0.2, 0.0};
  const double below[2] = {0.19999, 0.0};
  EXPECT_TRUE(b.Contains(on_lo));
  EXPECT_FALSE(b.Contains(below));
}

TEST(BoxTest, NumRestrictedCountsEitherSide) {
  Box b = Box::Unbounded(4);
  b.set_lo(0, 0.1);
  b.set_hi(2, 0.9);
  b.set_lo(3, 0.2);
  b.set_hi(3, 0.7);
  EXPECT_EQ(b.NumRestricted(), 3);
}

TEST(BoxTest, ClampedVolumeClampsInfinities) {
  Box b = Box::Unbounded(2);
  b.set_lo(0, 0.5);  // [0.5, inf) x (-inf, inf) over [0,1]^2 -> 0.5
  const std::vector<double> lo{0.0, 0.0}, hi{1.0, 1.0};
  EXPECT_NEAR(b.ClampedVolume(lo, hi), 0.5, 1e-12);
}

TEST(BoxTest, IntersectCanBeEmpty) {
  Box a = Box::Unbounded(1);
  a.set_hi(0, 0.3);
  Box b = Box::Unbounded(1);
  b.set_lo(0, 0.6);
  const std::vector<double> lo{0.0}, hi{1.0};
  EXPECT_DOUBLE_EQ(a.Intersect(b).ClampedVolume(lo, hi), 0.0);
}

TEST(BoxTest, LiftToFullSpace) {
  Box sub = Box::Unbounded(2);
  sub.set_lo(0, 0.1);
  sub.set_hi(1, 0.9);
  const Box full = sub.LiftToFullSpace(5, {1, 3});
  EXPECT_EQ(full.dim(), 5);
  EXPECT_DOUBLE_EQ(full.lo(1), 0.1);
  EXPECT_DOUBLE_EQ(full.hi(3), 0.9);
  EXPECT_FALSE(full.IsRestricted(0));
  EXPECT_FALSE(full.IsRestricted(2));
  EXPECT_FALSE(full.IsRestricted(4));
}

TEST(BoxTest, ToStringRendersRule) {
  Box b = Box::Unbounded(3);
  b.set_lo(0, 0.25);
  b.set_hi(0, 0.75);
  b.set_hi(2, 0.5);
  const std::string s = b.ToString();
  EXPECT_NE(s.find("a1"), std::string::npos);
  EXPECT_NE(s.find("AND"), std::string::npos);
  EXPECT_EQ(Box::Unbounded(2).ToString(), "(any)");
}

TEST(QualityTest, PrecisionRecallOnToyData) {
  Dataset d = MakeToyData();
  Box b = Box::Unbounded(2);
  b.set_hi(0, 0.45);
  b.set_hi(1, 0.45);
  const BoxStats stats = ComputeBoxStats(d, b);
  EXPECT_DOUBLE_EQ(stats.n, 25.0);
  EXPECT_DOUBLE_EQ(stats.n_pos, 25.0);
  EXPECT_DOUBLE_EQ(Precision(stats), 1.0);
  EXPECT_DOUBLE_EQ(Recall(stats, d.TotalPositive()), 1.0);
}

TEST(QualityTest, FractionalTargetsSupported) {
  Dataset d(1);
  const double x0[1] = {0.1}, x1[1] = {0.9};
  d.AddRow(x0, 0.75);
  d.AddRow(x1, 0.25);
  Box b = Box::Unbounded(1);
  b.set_hi(0, 0.5);
  const BoxStats stats = ComputeBoxStats(d, b);
  EXPECT_DOUBLE_EQ(stats.n, 1.0);
  EXPECT_DOUBLE_EQ(stats.n_pos, 0.75);
  EXPECT_DOUBLE_EQ(Precision(stats), 0.75);
  EXPECT_DOUBLE_EQ(Recall(stats, d.TotalPositive()), 0.75);
}

TEST(QualityTest, WraccMatchesDefinition) {
  Dataset d = MakeToyData();  // N = 100, N+ = 25
  Box b = Box::Unbounded(2);
  b.set_hi(0, 0.45);
  b.set_hi(1, 0.45);
  const BoxStats stats = ComputeBoxStats(d, b);
  // WRAcc = n/N (n+/n - N+/N) = 0.25 * (1 - 0.25).
  EXPECT_NEAR(WRAcc(stats, 100.0, 25.0), 0.1875, 1e-12);
  EXPECT_DOUBLE_EQ(WRAcc({0.0, 0.0}, 100.0, 25.0), 0.0);
}

TEST(QualityTest, WraccOfFullBoxIsZero) {
  Dataset d = MakeToyData();
  EXPECT_NEAR(WRAcc(ComputeBoxStats(d, Box::Unbounded(2)), 100.0, 25.0), 0.0,
              1e-12);
}

TEST(QualityTest, PrAucOfPerfectCurve) {
  // Constant precision 1 from recall 0 to 1 -> area 1.
  const double auc = PrAuc({{1.0, 1.0}, {0.5, 1.0}, {0.1, 1.0}});
  EXPECT_NEAR(auc, 1.0, 1e-12);
}

TEST(QualityTest, PrAucTrapezoid) {
  // Two points: (recall 1, prec 0.5), (recall 0.5, prec 1).
  // Left extension: 0.5 * 1.0 = 0.5; trapezoid 0.5..1: 0.5 * 0.75 = 0.375.
  const double auc = PrAuc({{1.0, 0.5}, {0.5, 1.0}});
  EXPECT_NEAR(auc, 0.875, 1e-12);
}

TEST(QualityTest, PrAucEmptyIsZero) { EXPECT_DOUBLE_EQ(PrAuc({}), 0.0); }

TEST(QualityTest, ConsistencyIdenticalBoxes) {
  Box b = Box::Unbounded(2);
  b.set_lo(0, 0.2);
  b.set_hi(0, 0.8);
  const std::vector<double> lo{0.0, 0.0}, hi{1.0, 1.0};
  EXPECT_NEAR(Consistency(b, b, lo, hi), 1.0, 1e-12);
}

TEST(QualityTest, ConsistencyDisjointBoxesIsZero) {
  Box a = Box::Unbounded(1);
  a.set_hi(0, 0.3);
  Box b = Box::Unbounded(1);
  b.set_lo(0, 0.6);
  EXPECT_DOUBLE_EQ(Consistency(a, b, {0.0}, {1.0}), 0.0);
}

TEST(QualityTest, ConsistencyPartialOverlap) {
  Box a = Box::Unbounded(1);
  a.set_lo(0, 0.0);
  a.set_hi(0, 0.6);
  Box b = Box::Unbounded(1);
  b.set_lo(0, 0.4);
  b.set_hi(0, 1.0);
  // overlap 0.2, union 1.0.
  EXPECT_NEAR(Consistency(a, b, {0.0}, {1.0}), 0.2, 1e-12);
}

TEST(QualityTest, ConsistencyIsSymmetric) {
  Box a = Box::Unbounded(2);
  a.set_hi(0, 0.7);
  Box b = Box::Unbounded(2);
  b.set_lo(1, 0.2);
  const std::vector<double> lo{0.0, 0.0}, hi{1.0, 1.0};
  EXPECT_DOUBLE_EQ(Consistency(a, b, lo, hi), Consistency(b, a, lo, hi));
}

TEST(QualityTest, MeanPairwiseConsistencySingleBoxIsOne) {
  EXPECT_DOUBLE_EQ(
      MeanPairwiseConsistency({Box::Unbounded(1)}, {0.0}, {1.0}), 1.0);
}

TEST(QualityTest, IrrelevantRestrictedCount) {
  Box b = Box::Unbounded(4);
  b.set_lo(0, 0.1);
  b.set_lo(1, 0.1);
  b.set_lo(3, 0.1);
  const std::vector<bool> relevant{true, false, true, false};
  EXPECT_EQ(NumIrrelevantRestricted(b, relevant), 2);
}

TEST(QualityTest, PrAucOnDataMatchesManual) {
  Dataset d = MakeToyData();
  Box b1 = Box::Unbounded(2);
  Box b2 = b1;
  b2.set_hi(0, 0.45);
  b2.set_hi(1, 0.45);
  const double auc = PrAucOnData({b1, b2}, d);
  // Points: (1, 0.25) and (1, 1)?? b2 has recall 1 precision 1 -> curve is
  // dominated by (1,1); left extension 1*1 = 1 but the (1, 0.25) point also
  // sits at recall 1. Sorted by recall both at 1 -> area = 1*precision_first.
  EXPECT_GT(auc, 0.9);
  EXPECT_LE(auc, 1.0 + 1e-12);
}

}  // namespace
}  // namespace reds
