// BinnedIndex invariants: bin boundaries are quantiles (balanced in-bin
// counts), codes round-trip through BinOf and the bin value ranges, tied
// values share a bin, distinct values get their own bin when they fit, and
// degenerate/constant columns collapse to a single bin.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/binned_index.h"
#include "util/rng.h"

namespace reds {
namespace {

Dataset MakeData(int n, int dim, uint64_t seed, int distinct_values = 0) {
  Rng rng(seed);
  Dataset d(dim);
  std::vector<double> x(static_cast<size_t>(dim));
  for (int i = 0; i < n; ++i) {
    for (auto& v : x) {
      v = distinct_values > 0
              ? static_cast<double>(rng.UniformInt(
                    static_cast<uint64_t>(distinct_values))) /
                    distinct_values
              : rng.Uniform();
    }
    d.AddRow(x, rng.Bernoulli(0.4) ? 1.0 : 0.0);
  }
  return d;
}

TEST(BinnedIndexTest, CodesRoundTripThroughBinRanges) {
  const Dataset d = MakeData(2000, 4, 1);
  const auto index = ColumnIndex::Build(d);
  const auto binned = BinnedIndex::Build(*index);
  ASSERT_EQ(binned->num_rows(), 2000);
  ASSERT_EQ(binned->num_cols(), 4);
  for (int j = 0; j < 4; ++j) {
    ASSERT_LE(binned->num_bins(j), BinnedIndex::kMaxBins);
    for (int r = 0; r < 2000; ++r) {
      const int b = binned->code(j, r);
      ASSERT_GE(b, 0);
      ASSERT_LT(b, binned->num_bins(j));
      // The row's value lies inside its bin's [first, last] range ...
      EXPECT_GE(d.x(r, j), binned->bin_first(j, b));
      EXPECT_LE(d.x(r, j), binned->bin_last(j, b));
      // ... and BinOf inverts the code.
      EXPECT_EQ(binned->BinOf(j, d.x(r, j)), b);
    }
    // Bin value ranges are disjoint and increasing.
    for (int b = 1; b < binned->num_bins(j); ++b) {
      EXPECT_LT(binned->bin_last(j, b - 1), binned->bin_first(j, b));
      EXPECT_LE(binned->bin_first(j, b), binned->bin_last(j, b));
    }
  }
}

TEST(BinnedIndexTest, BinBoundariesAreQuantiles) {
  // Continuous column, all values distinct: greedy quantile packing must
  // keep every bin within a factor of ~2 of the equal share N / bins.
  const int n = 25600;
  const Dataset d = MakeData(n, 2, 2);
  const auto binned = BinnedIndex::Build(*ColumnIndex::Build(d));
  for (int j = 0; j < 2; ++j) {
    ASSERT_EQ(binned->num_bins(j), BinnedIndex::kMaxBins);
    const double share = static_cast<double>(n) / BinnedIndex::kMaxBins;
    for (int b = 0; b < binned->num_bins(j); ++b) {
      const int count =
          binned->bin_begin_rank(j, b + 1) - binned->bin_begin_rank(j, b);
      EXPECT_GE(count, 1);
      EXPECT_LE(count, static_cast<int>(2.0 * share) + 1)
          << "bin " << b << " holds " << count << " rows";
    }
  }
}

TEST(BinnedIndexTest, RanksTileTheSortedPermutation) {
  const Dataset d = MakeData(500, 3, 3, 37);
  const auto index = ColumnIndex::Build(d);
  const auto binned = BinnedIndex::Build(*index);
  for (int j = 0; j < 3; ++j) {
    EXPECT_EQ(binned->bin_begin_rank(j, 0), 0);
    EXPECT_EQ(binned->bin_begin_rank(j, binned->num_bins(j)), 500);
    for (int b = 0; b < binned->num_bins(j); ++b) {
      const int begin = binned->bin_begin_rank(j, b);
      const int end = binned->bin_begin_rank(j, b + 1);
      ASSERT_LT(begin, end);
      for (int rank = begin; rank < end; ++rank) {
        const int r = index->sorted_rows(j)[static_cast<size_t>(rank)];
        EXPECT_EQ(binned->code(j, r), b) << "rank " << rank;
      }
    }
  }
}

TEST(BinnedIndexTest, FewDistinctValuesGetOneBinEach) {
  for (int distinct : {2, 7, 64}) {
    const Dataset d = MakeData(800, 2, 4 + distinct, distinct);
    const auto binned = BinnedIndex::Build(*ColumnIndex::Build(d));
    for (int j = 0; j < 2; ++j) {
      // Every realized distinct value gets a bin of its own, and the bin is
      // a single point: first == last.
      std::vector<double> values;
      for (int r = 0; r < 800; ++r) values.push_back(d.x(r, j));
      std::sort(values.begin(), values.end());
      values.erase(std::unique(values.begin(), values.end()), values.end());
      ASSERT_EQ(binned->num_bins(j), static_cast<int>(values.size()));
      for (int b = 0; b < binned->num_bins(j); ++b) {
        EXPECT_EQ(binned->bin_first(j, b), binned->bin_last(j, b));
        EXPECT_EQ(binned->bin_first(j, b), values[static_cast<size_t>(b)]);
      }
    }
  }
}

TEST(BinnedIndexTest, TiedValuesNeverStraddleBins) {
  // 300 distinct values over 3000 rows: more distinct values than rows per
  // bin share, so bins must merge runs -- but never split one.
  const Dataset d = MakeData(3000, 2, 5, 300);
  const auto binned = BinnedIndex::Build(*ColumnIndex::Build(d), 16);
  for (int j = 0; j < 2; ++j) {
    ASSERT_LE(binned->num_bins(j), 16);
    for (int a = 0; a < 3000; ++a) {
      for (int b = a + 1; b < std::min(3000, a + 50); ++b) {
        if (d.x(a, j) == d.x(b, j)) {
          EXPECT_EQ(binned->code(j, a), binned->code(j, b));
        }
      }
    }
  }
}

TEST(BinnedIndexTest, ConstantColumnCollapsesToOneBin) {
  Dataset d(2);
  for (int i = 0; i < 50; ++i) {
    const double x[2] = {0.5, static_cast<double>(i)};
    d.AddRow(x, i % 2 == 0 ? 1.0 : 0.0);
  }
  const auto binned = BinnedIndex::Build(*ColumnIndex::Build(d));
  EXPECT_EQ(binned->num_bins(0), 1);
  EXPECT_EQ(binned->bin_first(0, 0), 0.5);
  EXPECT_EQ(binned->bin_last(0, 0), 0.5);
  for (int r = 0; r < 50; ++r) EXPECT_EQ(binned->code(0, r), 0);
  EXPECT_EQ(binned->num_bins(1), 50);  // all distinct
}

TEST(BinnedIndexTest, BinOfClampsBeyondTheDataRange) {
  const Dataset d = MakeData(100, 1, 6);
  const auto binned = BinnedIndex::Build(*ColumnIndex::Build(d));
  EXPECT_EQ(binned->BinOf(0, -10.0), 0);
  EXPECT_EQ(binned->BinOf(0, 10.0), binned->num_bins(0) - 1);
}

}  // namespace
}  // namespace reds
