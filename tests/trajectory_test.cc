// Tests for peeling-trajectory knee detection (Section 5's "sudden changes
// in the slope" made algorithmic), including the paper's Example 5.1.
#include <gtest/gtest.h>

#include <cmath>

#include "core/prim.h"
#include "core/trajectory.h"
#include "util/rng.h"

namespace reds {
namespace {

TEST(KneeTest, TooShortCurves) {
  EXPECT_TRUE(FindTrajectoryKnees({}).empty());
  EXPECT_TRUE(FindTrajectoryKnees({{1.0, 0.3}}).empty());
  EXPECT_EQ(MaxChordDistanceKnee({{1.0, 0.3}, {0.5, 0.6}}), -1);
}

TEST(KneeTest, SingleSharpKneeIsFound) {
  // Precision flat at 0.5 until recall 0.5, then jumps along a steep rise.
  std::vector<PrPoint> curve;
  for (int i = 0; i <= 5; ++i) curve.push_back({1.0 - 0.1 * i, 0.5});
  for (int i = 1; i <= 5; ++i) curve.push_back({0.5 - 0.1 * i, 0.5 + 0.1 * i});
  const auto knees = FindTrajectoryKnees(curve, 1);
  ASSERT_EQ(knees.size(), 1u);
  EXPECT_EQ(knees[0], 5);  // the corner point
}

TEST(KneeTest, MinSeparationSuppressesNeighbors) {
  std::vector<PrPoint> curve;
  for (int i = 0; i <= 10; ++i) {
    const double r = 1.0 - 0.1 * i;
    curve.push_back({r, r < 0.55 ? 1.0 - r : 0.45});
  }
  const auto knees = FindTrajectoryKnees(curve, 5, 3);
  for (size_t i = 1; i < knees.size(); ++i) {
    EXPECT_GE(knees[i] - knees[i - 1], 3);
  }
}

TEST(KneeTest, EndpointsOptional) {
  std::vector<PrPoint> curve{{1.0, 0.3}, {0.8, 0.4}, {0.6, 0.8}, {0.4, 0.85}};
  const auto with = FindTrajectoryKnees(curve, 2, 1, true);
  EXPECT_EQ(with.front(), 0);
  EXPECT_EQ(with.back(), 3);
}

TEST(KneeTest, ChordDistanceFindsElbow) {
  // Right-angle curve: elbow at the corner.
  std::vector<PrPoint> curve{{1.0, 0.2}, {0.5, 0.2}, {0.5, 0.9}};
  EXPECT_EQ(MaxChordDistanceKnee(curve), 1);
}

TEST(KneeTest, Example51TwoIntervalsAppearAsKnees) {
  // The paper's Example 5.1: f = 1 on [0,1), a-1 on [1,2], 0 on (2,h].
  // PRIM's trajectory changes slope where the box reaches a ~ 2 (all
  // positives inside) and again near a ~ 1 (pure box). Knee detection should
  // flag boxes whose upper bound sits near those two locations.
  const double h = 4.0;
  Rng rng(1);
  Dataset d(1);
  for (int i = 0; i < 4000; ++i) {
    const double a = rng.Uniform(0.0, h);
    const double p = a < 1.0 ? 1.0 : (a <= 2.0 ? a - 1.0 : 0.0);
    d.AddRow(&a, rng.Bernoulli(p) ? 1.0 : 0.0);
  }
  PrimConfig config;
  config.alpha = 0.03;
  const PrimResult r = RunPrim(d, d, config);
  const auto knees = FindTrajectoryKnees(r.val_curve, 3, 3);
  ASSERT_FALSE(knees.empty());
  // At least one knee's box boundary lies near a = 2 or a = 1.
  bool near_interval_edge = false;
  for (int k : knees) {
    const double hi = r.boxes[static_cast<size_t>(k)].hi(0);
    if (std::isfinite(hi) && (std::fabs(hi - 2.0) < 0.4 ||
                              std::fabs(hi - 1.0) < 0.4)) {
      near_interval_edge = true;
    }
  }
  EXPECT_TRUE(near_interval_edge);
}

}  // namespace
}  // namespace reds
