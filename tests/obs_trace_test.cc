// Trace: span recording via the thread-local binding, nesting across
// threads, binding save/restore, Chrome JSON export, and the stage.<name>
// histogram feed.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace reds::obs {
namespace {

#ifdef REDS_OBS_NOOP
#define SKIP_UNDER_NOOP() \
  GTEST_SKIP() << "instrumentation compiled out (REDS_OBS_NOOP)"
#else
#define SKIP_UNDER_NOOP()
#endif

TEST(TraceTest, SpanWithoutBindingIsFree) {
  SKIP_UNDER_NOOP();
  EXPECT_EQ(CurrentTrace(), nullptr);
  { Span span("unbound"); }     // must not crash or record anywhere
  TraceInstant("unbound too");
  EXPECT_EQ(CurrentTrace(), nullptr);
}

TEST(TraceTest, BoundSpansRecordInOrder) {
  SKIP_UNDER_NOOP();
  Trace trace("job-test");
  {
    TraceBinding binding(&trace);
    EXPECT_EQ(CurrentTrace(), &trace);
    {
      Span outer("outer");
      { Span inner("inner"); }
      TraceInstant("tick");
    }
  }
  EXPECT_EQ(CurrentTrace(), nullptr);
  const std::vector<TraceEvent> events = trace.events();
  ASSERT_EQ(events.size(), 3u);
  // Spans close inner-first; the instant fires before outer closes.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[0].phase, 'X');
  EXPECT_EQ(events[1].name, "tick");
  EXPECT_EQ(events[1].phase, 'i');
  EXPECT_EQ(events[2].name, "outer");
  // Nesting is expressed by time containment.
  EXPECT_LE(events[2].ts_us, events[0].ts_us);
  EXPECT_GE(events[2].ts_us + events[2].dur_us,
            events[0].ts_us + events[0].dur_us);
  EXPECT_EQ(trace.CountEvents("inner"), 1);
  EXPECT_EQ(trace.CountEvents("absent"), 0);
}

TEST(TraceTest, BindingRestoresPreviousTrace) {
  SKIP_UNDER_NOOP();
  Trace a("a");
  Trace b("b");
  {
    TraceBinding bind_a(&a);
    {
      TraceBinding bind_b(&b);
      Span span("in-b");
    }
    EXPECT_EQ(CurrentTrace(), &a);
    Span span("in-a");
  }
  EXPECT_EQ(a.CountEvents("in-a"), 1);
  EXPECT_EQ(a.CountEvents("in-b"), 0);
  EXPECT_EQ(b.CountEvents("in-b"), 1);
}

TEST(TraceTest, ThreadsGetDistinctTids) {
  SKIP_UNDER_NOOP();
  Trace trace("mt");
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&trace] {
      TraceBinding binding(&trace);
      for (int i = 0; i < kSpansPerThread; ++i) Span span("work");
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(trace.CountEvents("work"), kThreads * kSpansPerThread);
  std::vector<bool> seen_tid;
  for (const TraceEvent& e : trace.events()) {
    ASSERT_GE(e.tid, 1);
    if (e.tid >= static_cast<int>(seen_tid.size())) {
      seen_tid.resize(static_cast<size_t>(e.tid) + 1, false);
    }
    seen_tid[static_cast<size_t>(e.tid)] = true;
  }
  int distinct = 0;
  for (bool s : seen_tid) distinct += s ? 1 : 0;
  EXPECT_EQ(distinct, kThreads);
}

TEST(TraceTest, FeedsStageHistograms) {
  SKIP_UNDER_NOOP();
  MetricsRegistry registry;
  Trace trace("with-metrics", &registry);
  {
    TraceBinding binding(&trace);
    { Span span("prim.peel"); }
    { Span span("prim.peel"); }
    { Span span("validate"); }
  }
  EXPECT_EQ(registry.HistogramData("stage.prim.peel").count, 2u);
  EXPECT_EQ(registry.HistogramData("stage.validate").count, 1u);
}

TEST(TraceTest, ChromeJsonNamesEveryEvent) {
  SKIP_UNDER_NOOP();
  Trace trace("json \"quoted\" job");
  {
    TraceBinding binding(&trace);
    { Span span("metamodel.fit"); }
    TraceInstant("metamodel.cache_hit");
  }
  const std::string json = trace.ToChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\": \"metamodel.fit\""), std::string::npos);
  EXPECT_NE(json.find("\"metamodel.cache_hit\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  // The trace name is escaped, not emitted raw.
  EXPECT_NE(json.find("json \\\"quoted\\\" job"), std::string::npos);
  EXPECT_EQ(json.find("json \"quoted\" job"), std::string::npos);
}

TEST(TraceTest, WriteFileDumpsJson) {
  SKIP_UNDER_NOOP();
  Trace trace("file-job");
  {
    TraceBinding binding(&trace);
    Span span("ingest.source");
  }
  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / "obs_trace_test.json")
          .string();
  ASSERT_TRUE(trace.WriteFile(path));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), trace.ToChromeJson());
  EXPECT_FALSE(trace.WriteFile("/nonexistent-dir/trace.json"));
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace reds::obs
