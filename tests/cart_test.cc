// Tests for the CART regression tree.
#include <gtest/gtest.h>

#include <cmath>

#include "ml/cart.h"
#include "util/rng.h"

namespace reds::ml {
namespace {

Dataset StepData(int n, uint64_t seed) {
  // y = 1 iff x0 > 0.5, one clean axis-aligned step.
  Rng rng(seed);
  Dataset d(2);
  for (int i = 0; i < n; ++i) {
    const double x[2] = {rng.Uniform(), rng.Uniform()};
    d.AddRow(x, x[0] > 0.5 ? 1.0 : 0.0);
  }
  return d;
}

TEST(CartTest, LearnsSingleSplit) {
  const Dataset d = StepData(200, 1);
  RegressionTree tree;
  Rng rng(2);
  TreeConfig config;
  config.max_depth = 1;
  tree.Fit(d, config, &rng);
  const double left[2] = {0.2, 0.5};
  const double right[2] = {0.8, 0.5};
  EXPECT_LT(tree.Predict(left), 0.2);
  EXPECT_GT(tree.Predict(right), 0.8);
  EXPECT_EQ(tree.num_leaves(), 2);
}

TEST(CartTest, PureNodeBecomesLeaf) {
  Dataset d(1);
  for (int i = 0; i < 50; ++i) {
    const double x = i / 50.0;
    d.AddRow(&x, 1.0);
  }
  RegressionTree tree;
  Rng rng(3);
  tree.Fit(d, {}, &rng);
  EXPECT_EQ(tree.num_nodes(), 1);
  const double x = 0.5;
  EXPECT_DOUBLE_EQ(tree.Predict(&x), 1.0);
}

TEST(CartTest, FitsXorWithDepthTwo) {
  Rng rng(4);
  Dataset d(2);
  for (int i = 0; i < 400; ++i) {
    const double x[2] = {rng.Uniform(), rng.Uniform()};
    const bool pos = (x[0] > 0.5) != (x[1] > 0.5);
    d.AddRow(x, pos ? 1.0 : 0.0);
  }
  RegressionTree tree;
  Rng rng2(5);
  tree.Fit(d, {}, &rng2);
  int correct = 0;
  Rng rng3(6);
  for (int i = 0; i < 500; ++i) {
    const double x[2] = {rng3.Uniform(), rng3.Uniform()};
    const bool pos = (x[0] > 0.5) != (x[1] > 0.5);
    const bool pred = tree.Predict(x) > 0.5;
    correct += pred == pos ? 1 : 0;
  }
  EXPECT_GT(correct, 450);
}

TEST(CartTest, MaxDepthIsRespected) {
  const Dataset d = StepData(500, 7);
  RegressionTree tree;
  Rng rng(8);
  TreeConfig config;
  config.max_depth = 3;
  tree.Fit(d, config, &rng);
  EXPECT_LE(tree.depth(), 3);
}

TEST(CartTest, MinSamplesLeafIsRespected) {
  Rng data_rng(9);
  Dataset d(1);
  for (int i = 0; i < 100; ++i) {
    const double x = data_rng.Uniform();
    d.AddRow(&x, data_rng.Bernoulli(0.5) ? 1.0 : 0.0);
  }
  RegressionTree tree;
  Rng rng(10);
  TreeConfig config;
  config.min_samples_leaf = 20;
  tree.Fit(d, config, &rng);
  // With n = 100 and leaves >= 20 points, at most 5 leaves are possible.
  EXPECT_LE(tree.num_leaves(), 5);
}

TEST(CartTest, FitOnRowSubset) {
  const Dataset d = StepData(300, 11);
  std::vector<int> rows;
  for (int i = 0; i < 100; ++i) rows.push_back(i);
  RegressionTree tree;
  Rng rng(12);
  tree.Fit(d, rows, {}, &rng);
  EXPECT_TRUE(tree.fitted());
  const double left[2] = {0.1, 0.1};
  EXPECT_LT(tree.Predict(left), 0.3);
}

TEST(CartTest, MtryOneStillSplits) {
  const Dataset d = StepData(300, 13);
  RegressionTree tree;
  Rng rng(14);
  TreeConfig config;
  config.mtry = 1;
  tree.Fit(d, config, &rng);
  EXPECT_GT(tree.num_nodes(), 1);
}

TEST(CartTest, RegressionTargetsApproximated) {
  // Smooth target: tree mean prediction error should be small.
  Rng rng(15);
  Dataset d(1);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform();
    d.AddRow(&x, x * x);
  }
  RegressionTree tree;
  Rng rng2(16);
  TreeConfig config;
  config.min_samples_leaf = 10;
  tree.Fit(d, config, &rng2);
  double err = 0.0;
  for (int i = 0; i < 100; ++i) {
    const double x = (i + 0.5) / 100.0;
    err += std::fabs(tree.Predict(&x) - x * x);
  }
  EXPECT_LT(err / 100.0, 0.05);
}

}  // namespace
}  // namespace reds::ml
