// Tests for designs of experiments: LHS stratification, Halton properties,
// logit-normal support, mixed discretization.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "sampling/design.h"

namespace reds::sampling {
namespace {

TEST(LhsTest, OnePointPerStratumInEveryDimension) {
  Rng rng(5);
  const int n = 40, dim = 6;
  const auto design = LatinHypercube(n, dim, &rng);
  for (int j = 0; j < dim; ++j) {
    std::vector<bool> stratum(static_cast<size_t>(n), false);
    for (int i = 0; i < n; ++i) {
      const double v = design[static_cast<size_t>(i) * dim + j];
      ASSERT_GE(v, 0.0);
      ASSERT_LT(v, 1.0);
      const int s = static_cast<int>(v * n);
      EXPECT_FALSE(stratum[static_cast<size_t>(s)])
          << "duplicate stratum " << s << " in dim " << j;
      stratum[static_cast<size_t>(s)] = true;
    }
  }
}

TEST(LhsTest, DifferentSeedsGiveDifferentDesigns) {
  Rng a(1), b(2);
  const auto d1 = LatinHypercube(10, 3, &a);
  const auto d2 = LatinHypercube(10, 3, &b);
  EXPECT_NE(d1, d2);
}

TEST(HaltonTest, RadicalInverseBase2) {
  EXPECT_DOUBLE_EQ(RadicalInverse(1, 2), 0.5);
  EXPECT_DOUBLE_EQ(RadicalInverse(2, 2), 0.25);
  EXPECT_DOUBLE_EQ(RadicalInverse(3, 2), 0.75);
  EXPECT_DOUBLE_EQ(RadicalInverse(4, 2), 0.125);
}

TEST(HaltonTest, RadicalInverseBase3) {
  EXPECT_NEAR(RadicalInverse(1, 3), 1.0 / 3.0, 1e-15);
  EXPECT_NEAR(RadicalInverse(2, 3), 2.0 / 3.0, 1e-15);
  EXPECT_NEAR(RadicalInverse(3, 3), 1.0 / 9.0, 1e-15);
}

TEST(HaltonTest, FirstPrimes) {
  const auto p = FirstPrimes(8);
  EXPECT_EQ(p, (std::vector<int>{2, 3, 5, 7, 11, 13, 17, 19}));
}

TEST(HaltonTest, CoversUnitCubeEvenly) {
  const int n = 1000, dim = 4;
  const auto design = HaltonDesign(n, dim);
  for (int j = 0; j < dim; ++j) {
    double sum = 0.0;
    for (int i = 0; i < n; ++i) sum += design[static_cast<size_t>(i) * dim + j];
    EXPECT_NEAR(sum / n, 0.5, 0.03) << "dim " << j;
  }
}

TEST(HaltonTest, SkipShiftsSequence) {
  const auto a = HaltonDesign(5, 2, 0);
  const auto b = HaltonDesign(5, 2, 100);
  EXPECT_NE(a, b);
}

TEST(UniformTest, MeanIsHalf) {
  Rng rng(3);
  const auto design = UniformDesign(5000, 2, &rng);
  double sum = 0.0;
  for (double v : design) sum += v;
  EXPECT_NEAR(sum / static_cast<double>(design.size()), 0.5, 0.01);
}

TEST(LogitNormalTest, SupportAndCentering) {
  Rng rng(9);
  const auto design = LogitNormalDesign(20000, 1, 0.0, 1.0, &rng);
  double sum = 0.0;
  for (double v : design) {
    ASSERT_GT(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  // Symmetric around 0.5 for mu = 0.
  EXPECT_NEAR(sum / static_cast<double>(design.size()), 0.5, 0.01);
}

TEST(MixedTest, EvenColumnsAreDiscretized) {
  Rng rng(11);
  auto design = LatinHypercube(200, 5, &rng);
  DiscretizeEvenColumns(&design, 5, &rng);
  const std::set<double> levels{0.1, 0.3, 0.5, 0.7, 0.9};
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(levels.count(design[static_cast<size_t>(i) * 5 + 1]) == 1);
    EXPECT_TRUE(levels.count(design[static_cast<size_t>(i) * 5 + 3]) == 1);
    // Odd (0-based even) columns remain continuous with probability 1.
    EXPECT_EQ(levels.count(design[static_cast<size_t>(i) * 5 + 0]), 0u);
  }
}

TEST(SamplerTest, UniformSamplerFillsDim) {
  auto sampler = MakeUniformSampler();
  Rng rng(1);
  double x[7];
  sampler(&rng, 7, x);
  for (double v : x) {
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(SamplerTest, MixedSamplerDiscretizesEvenInputs) {
  auto sampler = MakeMixedSampler();
  Rng rng(2);
  const std::set<double> levels{0.1, 0.3, 0.5, 0.7, 0.9};
  double x[6];
  for (int rep = 0; rep < 50; ++rep) {
    sampler(&rng, 6, x);
    EXPECT_EQ(levels.count(x[1]), 1u);
    EXPECT_EQ(levels.count(x[3]), 1u);
    EXPECT_EQ(levels.count(x[5]), 1u);
  }
}

TEST(SamplerTest, LogitNormalSamplerInUnitInterval) {
  auto sampler = MakeLogitNormalSampler(0.0, 1.0);
  Rng rng(3);
  double x[4];
  for (int rep = 0; rep < 100; ++rep) {
    sampler(&rng, 4, x);
    for (double v : x) {
      EXPECT_GT(v, 0.0);
      EXPECT_LT(v, 1.0);
    }
  }
}

}  // namespace
}  // namespace reds::sampling
