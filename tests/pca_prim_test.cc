// Tests for symmetric eigendecomposition, PCA utilities and PCA-PRIM:
// rotated boxes must capture oblique scenarios that axis-aligned PRIM
// cannot describe with a single tight box.
#include <gtest/gtest.h>

#include <cmath>

#include "core/pca_prim.h"
#include "core/quality.h"
#include "la/symmetric.h"
#include "util/rng.h"

namespace reds {
namespace {

TEST(SymmetricEigenTest, DiagonalMatrix) {
  la::Matrix a(3, 3);
  a(0, 0) = 1.0;
  a(1, 1) = 5.0;
  a(2, 2) = 3.0;
  auto eig = la::SymmetricEigendecomposition(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->values[0], 5.0, 1e-12);
  EXPECT_NEAR(eig->values[1], 3.0, 1e-12);
  EXPECT_NEAR(eig->values[2], 1.0, 1e-12);
}

TEST(SymmetricEigenTest, Known2x2) {
  // [[2, 1], [1, 2]] has eigenvalues 3 and 1 with eigenvectors (1,1), (1,-1).
  la::Matrix a(2, 2);
  a(0, 0) = 2.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 2.0;
  auto eig = la::SymmetricEigendecomposition(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->values[0], 3.0, 1e-12);
  EXPECT_NEAR(eig->values[1], 1.0, 1e-12);
  EXPECT_NEAR(std::fabs(eig->vectors(0, 0)), std::sqrt(0.5), 1e-9);
  EXPECT_NEAR(std::fabs(eig->vectors(1, 0)), std::sqrt(0.5), 1e-9);
}

TEST(SymmetricEigenTest, ReconstructsMatrix) {
  Rng rng(1);
  const int n = 6;
  la::Matrix a(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      a(i, j) = rng.Uniform(-1.0, 1.0);
      a(j, i) = a(i, j);
    }
  }
  auto eig = la::SymmetricEigendecomposition(a);
  ASSERT_TRUE(eig.ok());
  // Check A v_j = lambda_j v_j for each eigenpair.
  for (int j = 0; j < n; ++j) {
    std::vector<double> v(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) v[static_cast<size_t>(i)] = eig->vectors(i, j);
    const auto av = a.Multiply(v);
    for (int i = 0; i < n; ++i) {
      EXPECT_NEAR(av[static_cast<size_t>(i)],
                  eig->values[static_cast<size_t>(j)] * v[static_cast<size_t>(i)],
                  1e-8);
    }
  }
}

TEST(SymmetricEigenTest, EigenvectorsAreOrthonormal) {
  Rng rng(2);
  const int n = 5;
  la::Matrix a(n, n);
  for (int i = 0; i < n; ++i)
    for (int j = i; j < n; ++j) a(j, i) = a(i, j) = rng.Normal();
  auto eig = la::SymmetricEigendecomposition(a);
  ASSERT_TRUE(eig.ok());
  for (int p = 0; p < n; ++p) {
    for (int q = 0; q < n; ++q) {
      double dot = 0.0;
      for (int i = 0; i < n; ++i) dot += eig->vectors(i, p) * eig->vectors(i, q);
      EXPECT_NEAR(dot, p == q ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(CovarianceTest, KnownCovariance) {
  // Two perfectly correlated columns.
  std::vector<double> data{0.0, 0.0, 1.0, 2.0, 2.0, 4.0};
  auto cov = la::CovarianceMatrix(data, 2);
  ASSERT_TRUE(cov.ok());
  EXPECT_NEAR((*cov)(0, 0), 1.0, 1e-12);
  EXPECT_NEAR((*cov)(1, 1), 4.0, 1e-12);
  EXPECT_NEAR((*cov)(0, 1), 2.0, 1e-12);
}

// Data where positives live in a rotated (diagonal) slab:
// 0.9 < x0 + x1 < 1.3. Axis-aligned PRIM cannot describe this tightly; the
// PCA rotation aligns an axis with (1,1)/sqrt(2).
Dataset DiagonalSlabData(int n, uint64_t seed) {
  Rng rng(seed);
  Dataset d(2);
  for (int i = 0; i < n; ++i) {
    const double x[2] = {rng.Uniform(), rng.Uniform()};
    const double s = x[0] + x[1];
    d.AddRow(x, (s > 0.9 && s < 1.3) ? 1.0 : 0.0);
  }
  return d;
}

TEST(PcaPrimTest, BeatsAxisAlignedPrimOnDiagonalSlab) {
  const Dataset train = DiagonalSlabData(1500, 3);
  const Dataset test = DiagonalSlabData(5000, 4);

  PrimConfig prim_config;
  const PrimResult axis = RunPrim(train, train, prim_config);

  PcaPrimConfig pca_config;
  const auto rotated = RunPcaPrim(train, train, pca_config);
  ASSERT_TRUE(rotated.ok());

  // Compare test precision at comparable recall via PR AUC.
  const double axis_auc = PrAucOnData(axis.ReturnedBoxes(), test);
  const Dataset rotated_test = ProjectDataset(*rotated, test);
  const double pca_auc =
      PrAucOnData(rotated->prim.ReturnedBoxes(), rotated_test);
  EXPECT_GT(pca_auc, axis_auc);
}

TEST(PcaPrimTest, ContainsAgreesWithProjection) {
  const Dataset train = DiagonalSlabData(800, 5);
  const auto result = RunPcaPrim(train, train, {});
  ASSERT_TRUE(result.ok());
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    const double x[2] = {rng.Uniform(), rng.Uniform()};
    const auto projected = result->Project(x);
    EXPECT_EQ(result->Contains(x),
              result->prim.BestBox().Contains(projected.data()));
  }
}

TEST(PcaPrimTest, FailsWithTooFewPositives) {
  Dataset d(3);
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    const double x[3] = {rng.Uniform(), rng.Uniform(), rng.Uniform()};
    d.AddRow(x, i == 0 ? 1.0 : 0.0);  // a single positive example
  }
  EXPECT_FALSE(RunPcaPrim(d, d, {}).ok());
}

TEST(PcaPrimTest, AllExamplesModeWorks) {
  const Dataset train = DiagonalSlabData(600, 8);
  PcaPrimConfig config;
  config.class_conditional = false;
  const auto result = RunPcaPrim(train, train, config);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->prim.boxes.empty());
}

}  // namespace
}  // namespace reds
