// Tests for PRIM peeling (+ pasting): invariants of the trajectory and
// recovery of planted boxes.
#include <gtest/gtest.h>

#include <cmath>

#include "core/prim.h"
#include "sampling/design.h"
#include "util/rng.h"

namespace reds {
namespace {

// Points uniform in [0,1]^dim; positives exactly inside `box`.
Dataset PlantedBoxData(int n, int dim, const Box& box, uint64_t seed,
                       double noise = 0.0) {
  Rng rng(seed);
  Dataset d(dim);
  std::vector<double> x(static_cast<size_t>(dim));
  for (int i = 0; i < n; ++i) {
    for (auto& v : x) v = rng.Uniform();
    double y = box.Contains(x.data()) ? 1.0 : 0.0;
    if (noise > 0.0 && rng.Bernoulli(noise)) y = 1.0 - y;
    d.AddRow(x, y);
  }
  return d;
}

Box TargetBox2D() {
  Box b = Box::Unbounded(2);
  b.set_lo(0, 0.2);
  b.set_hi(0, 0.6);
  b.set_lo(1, 0.3);
  b.set_hi(1, 0.7);
  return b;
}

TEST(PrimTest, TrajectoryStartsUnbounded) {
  const Dataset d = PlantedBoxData(400, 2, TargetBox2D(), 1);
  const PrimResult r = RunPrim(d, d, {});
  ASSERT_FALSE(r.boxes.empty());
  EXPECT_EQ(r.boxes.front().NumRestricted(), 0);
  EXPECT_NEAR(r.train_curve.front().recall, 1.0, 1e-12);
}

TEST(PrimTest, BoxesAreNested) {
  const Dataset d = PlantedBoxData(500, 3, TargetBox2D().LiftToFullSpace(3, {0, 1}), 2);
  const PrimResult r = RunPrim(d, d, {});
  for (size_t i = 1; i < r.boxes.size(); ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_LE(r.boxes[i - 1].lo(j), r.boxes[i].lo(j));
      EXPECT_GE(r.boxes[i - 1].hi(j), r.boxes[i].hi(j));
    }
  }
}

TEST(PrimTest, TrainRecallIsNonIncreasing) {
  const Dataset d = PlantedBoxData(600, 2, TargetBox2D(), 3, 0.05);
  const PrimResult r = RunPrim(d, d, {});
  for (size_t i = 1; i < r.train_curve.size(); ++i) {
    EXPECT_LE(r.train_curve[i].recall, r.train_curve[i - 1].recall + 1e-12);
  }
}

TEST(PrimTest, RecoversPlantedBoxApproximately) {
  const Box target = TargetBox2D();
  const Dataset d = PlantedBoxData(2000, 2, target, 4);
  PrimConfig config;
  config.alpha = 0.05;
  const PrimResult r = RunPrim(d, d, config);
  const Box& best = r.BestBox();
  // The selected box should sit close to the planted one.
  EXPECT_NEAR(best.lo(0), 0.2, 0.08);
  EXPECT_NEAR(best.hi(0), 0.6, 0.08);
  EXPECT_NEAR(best.lo(1), 0.3, 0.08);
  EXPECT_NEAR(best.hi(1), 0.7, 0.08);
  // And be (nearly) pure on training data.
  EXPECT_GT(r.val_curve[static_cast<size_t>(r.best_val_index)].precision, 0.95);
}

TEST(PrimTest, RespectsMinPoints) {
  const Dataset d = PlantedBoxData(300, 2, TargetBox2D(), 5, 0.2);
  PrimConfig config;
  config.min_points = 50;
  const PrimResult r = RunPrim(d, d, config);
  // Every box except possibly the last must hold at least min_points points;
  // the peel stops once support would drop below the bound.
  for (size_t i = 0; i + 1 < r.boxes.size(); ++i) {
    EXPECT_GE(ComputeBoxStats(d, r.boxes[i]).n, 50.0);
  }
}

TEST(PrimTest, SmallerAlphaPeelsMorePatiently) {
  const Dataset d = PlantedBoxData(800, 2, TargetBox2D(), 6, 0.05);
  PrimConfig coarse, fine;
  coarse.alpha = 0.2;
  fine.alpha = 0.03;
  const auto r_coarse = RunPrim(d, d, coarse);
  const auto r_fine = RunPrim(d, d, fine);
  EXPECT_GT(r_fine.boxes.size(), r_coarse.boxes.size());
}

TEST(PrimTest, FractionalLabelsWork) {
  // Fractional targets: probability ramp along dimension 0.
  Rng rng(7);
  Dataset d(2);
  for (int i = 0; i < 500; ++i) {
    const double x[2] = {rng.Uniform(), rng.Uniform()};
    d.AddRow(x, x[0] < 0.4 ? 0.9 : 0.1);
  }
  const PrimResult r = RunPrim(d, d, {});
  const Box& best = r.BestBox();
  // The dense region x0 < 0.4 should be found.
  EXPECT_TRUE(best.IsRestricted(0));
  EXPECT_LT(best.hi(0), 0.55);
}

TEST(PrimTest, ReturnedBoxesEndAtBestValidationBox) {
  const Dataset d = PlantedBoxData(600, 2, TargetBox2D(), 8, 0.1);
  const PrimResult r = RunPrim(d, d, {});
  const auto returned = r.ReturnedBoxes();
  EXPECT_EQ(static_cast<int>(returned.size()), r.best_val_index + 1);
  EXPECT_TRUE(returned.back() == r.BestBox());
}

TEST(PrimTest, SeparateValidationDataSelectsBox) {
  const Box target = TargetBox2D();
  const Dataset train = PlantedBoxData(400, 2, target, 9, 0.1);
  const Dataset val = PlantedBoxData(400, 2, target, 10, 0.1);
  const PrimResult r = RunPrim(train, val, {});
  EXPECT_GE(r.best_val_index, 0);
  EXPECT_LT(r.best_val_index, static_cast<int>(r.boxes.size()));
}

TEST(PrimTest, ConstantInputsCannotBeCut) {
  // Dimension 1 is constant; PRIM must only restrict dimension 0.
  Rng rng(11);
  Dataset d(2);
  for (int i = 0; i < 300; ++i) {
    const double x[2] = {rng.Uniform(), 0.5};
    d.AddRow(x, x[0] > 0.7 ? 1.0 : 0.0);
  }
  const PrimResult r = RunPrim(d, d, {});
  for (const Box& b : r.boxes) EXPECT_FALSE(b.IsRestricted(1));
}

TEST(PrimTest, PastingExpandsOverPeeledBox) {
  const Box target = TargetBox2D();
  const Dataset d = PlantedBoxData(1500, 2, target, 12);
  PrimConfig no_paste, paste;
  paste.paste = true;
  paste.paste_alpha = 0.02;
  const PrimResult r0 = RunPrim(d, d, no_paste);
  const PrimResult r1 = RunPrim(d, d, paste);
  const BoxStats s0 = ComputeBoxStats(d, r0.BestBox());
  const BoxStats s1 = ComputeBoxStats(d, r1.BestBox());
  // Pasting never loses training precision and can only grow the box.
  EXPECT_GE(Precision(s1) + 1e-9, Precision(s0));
  EXPECT_GE(s1.n, s0.n);
}

TEST(PrimTest, AllPositiveDataStaysFullBox) {
  Rng rng(13);
  Dataset d(2);
  for (int i = 0; i < 100; ++i) {
    const double x[2] = {rng.Uniform(), rng.Uniform()};
    d.AddRow(x, 1.0);
  }
  const PrimResult r = RunPrim(d, d, {});
  // Precision is 1 everywhere; the first (largest) box wins.
  EXPECT_EQ(r.best_val_index, 0);
}

}  // namespace
}  // namespace reds
