// Saturation load harness for the discovery service (PR 10): hundreds of
// simulated clients drive DiscoveryServer over real sockets with the mixed
// request shapes a deployment sees -- warm streamed-REDS at paper scale,
// warm eager repeats, cold one-off discoveries, and identical coalescible
// bursts -- then push offered load past the admission cap to verify the
// server sheds instead of collapsing. Client-side latencies are
// cross-checked against the server's own histograms via a metrics-scrape
// frame, and everything lands in BENCH_pr10.json-style output.
//
//   bench_net_load                         # in-process server, paper scale
//   bench_net_load --quick                 # CI smoke: seconds, small sizes
//   bench_net_load --address unix:/tmp/reds.sock   # external server
//   bench_net_load --out BENCH_pr10.json --scrape-out scrape.prom
//
// Checks (process exit code 1 if any fails):
//   warm_p50_under_10ms  warm streamed-REDS p50 <= 10 ms over the wire,
//                        measured by a dedicated single-client probe after
//                        warmup -- a latency target is an unloaded-service
//                        property, so it is not gated on the mixed phase,
//                        where a small box drowns in closed-loop queueing
//                        (the mixed-phase percentiles are still reported)
//   saturation_flat      4x offered load keeps >= 50% of 1x throughput
//   shed_seen            past-saturation load produced kShed frames
//   server_client_agree  scrape counters match client books; server p50
//                        (decode to result enqueue) <= client p50 + wire
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/discovery_engine.h"
#include "net/client.h"
#include "net/server.h"

namespace reds {
namespace {

struct LoadFlags {
  bool quick = false;
  std::string address;       // empty: spawn the server in-process
  int clients = 200;         // mixed-phase simulated clients
  int requests = 10;         // mixed-phase requests per client
  int sat_clients = 8;       // saturation 1x client count (4x = four times)
  int sat_requests = 10;     // saturation requests per client
  int threads = 0;           // engine threads (in-process server)
  int queue_depth = 2;       // saturation admission cap (in-process server)
  int think_ms = 100;        // per-client pause between mixed requests
  uint64_t seed = 42;
  // Paper scale (Fig. 9): streamed REDS over L=100k relabeled points.
  int64_t streamed_rows = 10000;
  int l_prim = 100000;
  int dims = 10;
  std::string out;
  std::string scrape_out;    // Prometheus text scrape path
};

LoadFlags ParseFlags(int argc, char** argv) {
  LoadFlags flags;
  auto next_value = [&](int* i) -> const char* {
    if (*i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[*i]);
      std::exit(2);
    }
    return argv[++*i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      flags.quick = true;
    } else if (arg == "--address") {
      flags.address = next_value(&i);
    } else if (arg == "--clients") {
      flags.clients = std::atoi(next_value(&i));
    } else if (arg == "--requests") {
      flags.requests = std::atoi(next_value(&i));
    } else if (arg == "--sat-clients") {
      flags.sat_clients = std::atoi(next_value(&i));
    } else if (arg == "--sat-requests") {
      flags.sat_requests = std::atoi(next_value(&i));
    } else if (arg == "--threads") {
      flags.threads = std::atoi(next_value(&i));
    } else if (arg == "--queue-depth") {
      flags.queue_depth = std::atoi(next_value(&i));
    } else if (arg == "--think-ms") {
      flags.think_ms = std::atoi(next_value(&i));
    } else if (arg == "--seed") {
      flags.seed = static_cast<uint64_t>(std::atoll(next_value(&i)));
    } else if (arg == "--out") {
      flags.out = next_value(&i);
    } else if (arg == "--scrape-out") {
      flags.scrape_out = next_value(&i);
    } else if (arg == "--help") {
      std::printf(
          "usage: bench_net_load [--quick] [--address unix:PATH|tcp:h:p] "
          "[--clients N] [--requests N] [--sat-clients N] [--sat-requests N] "
          "[--threads N] [--queue-depth N] [--think-ms MS] [--seed S] "
          "[--out file.json] [--scrape-out scrape.prom]\n");
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag %s (see --help)\n", arg.c_str());
      std::exit(2);
    }
  }
  if (flags.quick) {
    flags.clients = 12;
    flags.requests = 5;
    flags.sat_clients = 4;
    flags.sat_requests = 6;
    flags.think_ms = 10;
    flags.streamed_rows = 3000;
    flags.l_prim = 3000;
    flags.dims = 6;
  }
  return flags;
}

// The four request shapes in the mixed phase. Warm pools cycle 4 specs
// each, so after warmup every repeat rides hot caches; cold uses a
// globally unique seed per request; coalesce derives its seed from the
// round counter, so concurrent clients in the same round submit identical
// requests and exercise single-flight over the wire.
enum class Category { kWarmStreamed, kWarmEager, kCold, kCoalesce };

const char* CategoryName(Category c) {
  switch (c) {
    case Category::kWarmStreamed: return "warm_streamed";
    case Category::kWarmEager: return "warm_eager";
    case Category::kCold: return "cold";
    case Category::kCoalesce: return "coalesce";
  }
  return "?";
}

constexpr int kPool = 4;  // distinct specs per warm pool

struct SpecMaker {
  const LoadFlags* flags;

  net::SubmitRequest WarmStreamed(int slot) const {
    net::SubmitRequest r = net::MakeSubmit(
        0, "RPx", net::DataMode::kStreamedSource, flags->streamed_rows,
        flags->dims, flags->seed + 100 + static_cast<uint64_t>(slot), 0.05,
        flags->l_prim);
    return r;
  }
  net::SubmitRequest WarmEager(int slot) const {
    return net::MakeSubmit(0, "RPx", net::DataMode::kEager,
                           flags->quick ? 600 : 2000, flags->dims,
                           flags->seed + 200 + static_cast<uint64_t>(slot),
                           0.05, flags->quick ? 3000 : 20000);
  }
  net::SubmitRequest Cold(uint64_t unique) const {
    return net::MakeSubmit(0, "P", net::DataMode::kEager, 500, flags->dims,
                           flags->seed + 1000000 + unique, 0.05, 1500);
  }
  net::SubmitRequest Coalesce(int round) const {
    return net::MakeSubmit(0, "RPx", net::DataMode::kEager,
                           flags->quick ? 600 : 2000, flags->dims,
                           flags->seed + 3000 + static_cast<uint64_t>(round),
                           0.05, flags->quick ? 3000 : 20000);
  }
};

struct Percentiles {
  size_t count = 0;
  double p50 = 0.0, p90 = 0.0, p99 = 0.0, mean = 0.0;
};

Percentiles Summarize(std::vector<double> ms) {
  Percentiles p;
  p.count = ms.size();
  if (ms.empty()) return p;
  std::sort(ms.begin(), ms.end());
  const auto at = [&](double q) {
    return ms[std::min(ms.size() - 1,
                       static_cast<size_t>(q * static_cast<double>(ms.size())))];
  };
  p.p50 = at(0.50);
  p.p90 = at(0.90);
  p.p99 = at(0.99);
  double sum = 0.0;
  for (double v : ms) sum += v;
  p.mean = sum / static_cast<double>(ms.size());
  return p;
}

double MsSince(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Minimal extraction of `"key": <number>` after the first occurrence of
// `section` in a metrics JSON dump.
double JsonNumberAfter(const std::string& body, const std::string& section,
                       const std::string& key) {
  const size_t at = body.find(section);
  if (at == std::string::npos) return -1.0;
  const size_t k = body.find("\"" + key + "\": ", at);
  if (k == std::string::npos) return -1.0;
  return std::atof(body.c_str() + k + key.size() + 4);
}

struct MixedResult {
  std::map<std::string, std::vector<double>> latencies_ms;
  uint64_t admitted = 0;
  uint64_t shed = 0;
  uint64_t failed = 0;
  double seconds = 0.0;
};

MixedResult RunMixedPhase(const LoadFlags& flags, const std::string& address) {
  const SpecMaker specs{&flags};
  MixedResult total;
  std::mutex merge_mutex;
  std::atomic<uint64_t> cold_counter{0};
  const auto phase_start = std::chrono::steady_clock::now();

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(flags.clients));
  for (int c = 0; c < flags.clients; ++c) {
    threads.emplace_back([&, c] {
      MixedResult local;
      net::NetClient client;
      if (!client.Connect(address).ok() ||
          !client.Hello("load" + std::to_string(c)).ok()) {
        std::lock_guard<std::mutex> lock(merge_mutex);
        total.failed += static_cast<uint64_t>(flags.requests);
        return;
      }
      for (int r = 0; r < flags.requests; ++r) {
        // 40% warm streamed (the headline ask), 20% each of the rest.
        const Category category =
            (r % 5 == 0 || r % 5 == 3)   ? Category::kWarmStreamed
            : (r % 5 == 1)               ? Category::kWarmEager
            : (r % 5 == 2)               ? Category::kCold
                                         : Category::kCoalesce;
        net::SubmitRequest request =
            category == Category::kWarmStreamed
                ? specs.WarmStreamed((c + r) % kPool)
            : category == Category::kWarmEager
                ? specs.WarmEager((c + r) % kPool)
            : category == Category::kCold ? specs.Cold(cold_counter++)
                                          : specs.Coalesce(r);
        request.request_id =
            static_cast<uint64_t>(c) * 1000000ull + static_cast<uint64_t>(r);
        const auto start = std::chrono::steady_clock::now();
        auto outcome = client.Submit(request);
        if (!outcome.ok()) {
          local.failed++;
          break;  // connection gone
        }
        if (outcome->kind == net::SubmitOutcome::Kind::kShed) {
          local.shed++;
          continue;  // unlimited caps in this phase; treat as lost sample
        }
        if (outcome->kind != net::SubmitOutcome::Kind::kAdmitted) {
          local.failed++;
          continue;
        }
        auto reply = client.WaitResult(request.request_id);
        if (!reply.ok() || reply->done.failed) {
          local.failed++;
          continue;
        }
        local.admitted++;
        local.latencies_ms[CategoryName(category)].push_back(MsSince(start));
        if (flags.think_ms > 0) {
          std::this_thread::sleep_for(
              std::chrono::milliseconds(flags.think_ms));
        }
      }
      std::lock_guard<std::mutex> lock(merge_mutex);
      total.admitted += local.admitted;
      total.shed += local.shed;
      total.failed += local.failed;
      for (auto& [name, values] : local.latencies_ms) {
        auto& sink = total.latencies_ms[name];
        sink.insert(sink.end(), values.begin(), values.end());
      }
    });
  }
  for (auto& t : threads) t.join();
  total.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    phase_start)
          .count();
  return total;
}

struct SaturationRun {
  int clients = 0;
  uint64_t completed = 0;
  uint64_t shed = 0;
  uint64_t failed = 0;
  double seconds = 0.0;

  double Throughput() const {
    return seconds > 0.0 ? static_cast<double>(completed) / seconds : 0.0;
  }
};

// Closed-loop cold submits (unique seeds: never coalescible, every one
// needs a pool slot) against a low admission cap; sheds are retried after
// the server's hint. Offered load scales with the client count.
SaturationRun RunSaturation(const LoadFlags& flags, const std::string& address,
                            int clients, uint64_t seed_base) {
  const SpecMaker specs{&flags};
  SaturationRun run;
  run.clients = clients;
  std::mutex merge_mutex;
  std::atomic<uint64_t> unique{seed_base};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      SaturationRun local;
      net::NetClient client;
      if (!client.Connect(address).ok() ||
          !client.Hello("sat" + std::to_string(c)).ok()) {
        return;
      }
      for (int r = 0; r < flags.sat_requests; ++r) {
        net::SubmitRequest request = specs.Cold(unique++);
        request.request_id = 7000000ull + static_cast<uint64_t>(c) * 10000ull +
                             static_cast<uint64_t>(r);
        bool done = false;
        for (int attempt = 0; attempt < 50 && !done; ++attempt) {
          auto outcome = client.Submit(request);
          if (!outcome.ok()) return;  // connection gone; drop the rest
          if (outcome->kind == net::SubmitOutcome::Kind::kShed) {
            local.shed++;
            std::this_thread::sleep_for(std::chrono::milliseconds(
                std::min<uint32_t>(outcome->retry_after_ms, 10)));
            continue;
          }
          if (outcome->kind != net::SubmitOutcome::Kind::kAdmitted) {
            local.failed++;
            break;
          }
          auto reply = client.WaitResult(request.request_id);
          if (!reply.ok() || reply->done.failed) {
            local.failed++;
            break;
          }
          local.completed++;
          done = true;
        }
        if (!done) local.failed++;
      }
      std::lock_guard<std::mutex> lock(merge_mutex);
      run.completed += local.completed;
      run.shed += local.shed;
      run.failed += local.failed;
    });
  }
  for (auto& t : threads) t.join();
  run.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return run;
}

void AppendPercentiles(std::string* out, const char* name,
                       const Percentiles& p) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "      \"%s\": {\"count\": %zu, \"p50_ms\": %.3f, "
                "\"p90_ms\": %.3f, \"p99_ms\": %.3f, \"mean_ms\": %.3f}",
                name, p.count, p.p50, p.p90, p.p99, p.mean);
  *out += buf;
}

}  // namespace

int Main(int argc, char** argv) {
  const LoadFlags flags = ParseFlags(argc, argv);

  // In-process deployment unless --address points at an external server.
  // The saturation phase needs a low admission cap; in-process it gets its
  // own engine+server pair so the mixed phase stays uncapped, while an
  // external server is taken as configured (the CI smoke starts it with a
  // low --queue-depth on purpose).
  std::unique_ptr<engine::DiscoveryEngine> engine;
  std::unique_ptr<net::DiscoveryServer> server;
  std::unique_ptr<engine::DiscoveryEngine> sat_engine;
  std::unique_ptr<net::DiscoveryServer> sat_server;
  std::string address = flags.address;
  std::string sat_address = flags.address;
  if (address.empty()) {
    engine::EngineConfig config;
    config.threads = flags.threads;
    config.enable_persistent_cache = false;
    engine = std::make_unique<engine::DiscoveryEngine>(config);
    net::ServerConfig server_config;
    server_config.address = "unix:/tmp/reds_net_load_" +
                            std::to_string(::getpid()) + ".sock";
    server = std::make_unique<net::DiscoveryServer>(engine.get(),
                                                    server_config);
    Status s = server->Start();
    if (!s.ok()) {
      std::fprintf(stderr, "server start: %s\n", s.ToString().c_str());
      return 1;
    }
    address = server->address();

    sat_engine = std::make_unique<engine::DiscoveryEngine>(config);
    net::ServerConfig sat_config;
    sat_config.address = "unix:/tmp/reds_net_load_sat_" +
                         std::to_string(::getpid()) + ".sock";
    sat_config.max_queue_depth = flags.queue_depth;
    sat_config.retry_after_ms = 5;
    sat_server = std::make_unique<net::DiscoveryServer>(sat_engine.get(),
                                                        sat_config);
    s = sat_server->Start();
    if (!s.ok()) {
      std::fprintf(stderr, "saturation server start: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    sat_address = sat_server->address();
  }

  std::printf("== bench_net_load (%s mode) against %s ==\n",
              flags.quick ? "quick" : "full", address.c_str());

  // Warmup: materialize both warm pools once so the measured phase sees
  // hot caches, the way a long-running deployment would.
  {
    const SpecMaker specs{&flags};
    net::NetClient client;
    if (!client.Connect(address).ok() || !client.Hello("warmup").ok()) {
      std::fprintf(stderr, "warmup connect failed\n");
      return 1;
    }
    const auto start = std::chrono::steady_clock::now();
    uint64_t id = 1;
    for (int slot = 0; slot < kPool; ++slot) {
      for (net::SubmitRequest request :
           {specs.WarmStreamed(slot), specs.WarmEager(slot)}) {
        request.request_id = id++;
        if (!client.Submit(request).ok() ||
            !client.WaitResult(request.request_id).ok()) {
          std::fprintf(stderr, "warmup request failed\n");
          return 1;
        }
      }
    }
    std::printf("warmup: %d specs in %.2fs\n", 2 * kPool,
                MsSince(start) / 1000.0);
  }

  // Warm probe: the latency target itself. One client, warm streamed-REDS
  // specs only, nothing else in flight -- the p50 is the service's warm
  // answer time over the wire (after the warmup above, identical repeats
  // replay from the server's result cache, so this measures the net
  // stack, not a PRIM recompute).
  Percentiles probe;
  {
    const SpecMaker specs{&flags};
    net::NetClient client;
    if (!client.Connect(address).ok() || !client.Hello("probe").ok()) {
      std::fprintf(stderr, "probe connect failed\n");
      return 1;
    }
    std::vector<double> ms;
    const int probe_requests = 3 * kPool;
    for (int r = 0; r < probe_requests; ++r) {
      net::SubmitRequest request = specs.WarmStreamed(r % kPool);
      request.request_id = 500000ull + static_cast<uint64_t>(r);
      const auto start = std::chrono::steady_clock::now();
      if (!client.Submit(request).ok() ||
          !client.WaitResult(request.request_id).ok()) {
        std::fprintf(stderr, "probe request failed\n");
        return 1;
      }
      ms.push_back(MsSince(start));
    }
    probe = Summarize(std::move(ms));
    std::printf("warm probe: n=%zu p50 %.3fms p90 %.3fms p99 %.3fms\n",
                probe.count, probe.p50, probe.p90, probe.p99);
  }

  // Phase 1: the mixed workload.
  std::printf("mixed phase: %d clients x %d requests...\n", flags.clients,
              flags.requests);
  const MixedResult mixed = RunMixedPhase(flags, address);
  std::map<std::string, Percentiles> stats;
  for (const auto& [name, values] : mixed.latencies_ms) {
    stats[name] = Summarize(values);
  }
  std::vector<double> all_ms;
  for (const auto& [name, values] : mixed.latencies_ms) {
    all_ms.insert(all_ms.end(), values.begin(), values.end());
  }
  const Percentiles overall = Summarize(all_ms);
  for (const auto& [name, p] : stats) {
    std::printf("  %-14s n=%-5zu p50 %7.2fms  p90 %7.2fms  p99 %7.2fms\n",
                name.c_str(), p.count, p.p50, p.p90, p.p99);
  }
  std::printf("  throughput %.1f req/s (%.2fs wall, %llu done, %llu failed)\n",
              static_cast<double>(mixed.admitted) / mixed.seconds,
              mixed.seconds,
              static_cast<unsigned long long>(mixed.admitted),
              static_cast<unsigned long long>(mixed.failed));

  // Cross-check against the server's own books via a scrape frame.
  uint64_t server_admitted = 0, server_exempt = 0;
  double server_p50_ms = -1.0, server_p99_ms = -1.0;
  {
    net::NetClient client;
    if (client.Connect(address).ok() && client.Hello("scraper").ok()) {
      auto json = client.Scrape(net::ScrapeFormat::kJson);
      if (json.ok()) {
        server_admitted = static_cast<uint64_t>(
            JsonNumberAfter(*json, "\"counters\"", "net.submits_admitted"));
        server_exempt = static_cast<uint64_t>(JsonNumberAfter(
            *json, "\"counters\"", "net.submits_coalesced_exempt"));
        server_p50_ms =
            JsonNumberAfter(*json, "\"net.request_latency_ns\"", "p50") / 1e6;
        server_p99_ms =
            JsonNumberAfter(*json, "\"net.request_latency_ns\"", "p99") / 1e6;
      }
      if (!flags.scrape_out.empty()) {
        auto prom = client.Scrape(net::ScrapeFormat::kPrometheus);
        if (prom.ok()) {
          std::ofstream f(flags.scrape_out);
          f << *prom;
          std::printf("wrote %s\n", flags.scrape_out.c_str());
        }
      }
    }
  }
  std::printf(
      "  server books: admitted %llu (client saw %llu), coalesce-exempt "
      "%llu, p50 %.2fms p99 %.2fms\n",
      static_cast<unsigned long long>(server_admitted),
      static_cast<unsigned long long>(mixed.admitted + 2 * kPool +
                                      probe.count),
      static_cast<unsigned long long>(server_exempt), server_p50_ms,
      server_p99_ms);

  // Phase 2: past saturation. Offered load 1x vs 4x against the capped
  // server; shed-not-crash means 4x holds throughput instead of dying.
  std::printf("saturation phase (queue depth %d): 1x=%d clients...\n",
              flags.queue_depth, flags.sat_clients);
  const SaturationRun one_x =
      RunSaturation(flags, sat_address, flags.sat_clients, 10000000ull);
  std::printf("  1x: %.1f req/s, %llu shed\n", one_x.Throughput(),
              static_cast<unsigned long long>(one_x.shed));
  const SaturationRun four_x =
      RunSaturation(flags, sat_address, flags.sat_clients * 4, 20000000ull);
  std::printf("  4x: %.1f req/s, %llu shed\n", four_x.Throughput(),
              static_cast<unsigned long long>(four_x.shed));

  // Checks.
  const bool warm_ok = probe.count > 0 && probe.p50 <= 10.0;
  const bool sat_flat =
      four_x.Throughput() >= 0.5 * one_x.Throughput() && four_x.completed > 0;
  const bool shed_seen = one_x.shed + four_x.shed > 0;
  // Client books exclude the scraper's 0 admits but count the warmup's
  // 2*kPool and the probe's requests; the server counts every admit on
  // that socket. The server-side p50 (decode to result enqueue) must sit
  // at or below what clients saw end-to-end -- with slack for the
  // distribution mismatch (the server histogram also holds the warmup and
  // probe samples the mixed-phase client books do not).
  const uint64_t client_admitted =
      mixed.admitted + 2 * kPool + static_cast<uint64_t>(probe.count);
  const bool counts_agree = server_admitted == client_admitted;
  const bool latency_agrees =
      server_p50_ms >= 0.0 && server_p50_ms <= overall.p50 * 1.5 + 5.0;
  const bool server_client_agree = counts_agree && latency_agrees;
  const bool all_ok =
      warm_ok && sat_flat && shed_seen && server_client_agree &&
      mixed.failed == 0;
  std::printf(
      "checks: warm_p50_under_10ms=%d saturation_flat=%d shed_seen=%d "
      "server_client_agree=%d failed=%llu => %s\n",
      warm_ok, sat_flat, shed_seen, server_client_agree,
      static_cast<unsigned long long>(mixed.failed),
      all_ok ? "OK" : "FAIL");

  // JSON out.
  std::string json = "{\n  \"bench\": \"bench_net_load\",\n";
  json += std::string("  \"mode\": \"") + (flags.quick ? "quick" : "full") +
          "\",\n";
  {
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "  \"config\": {\"clients\": %d, \"requests\": %d, "
                  "\"sat_clients\": %d, \"sat_requests\": %d, "
                  "\"queue_depth\": %d, \"think_ms\": %d, "
                  "\"streamed_rows\": %lld, \"l_prim\": %d, \"dims\": %d, "
                  "\"seed\": %llu},\n",
                  flags.clients, flags.requests, flags.sat_clients,
                  flags.sat_requests, flags.queue_depth, flags.think_ms,
                  static_cast<long long>(flags.streamed_rows), flags.l_prim,
                  flags.dims, static_cast<unsigned long long>(flags.seed));
    json += buf;
  }
  {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  \"warm_probe\": {\"count\": %zu, \"p50_ms\": %.3f, "
                  "\"p90_ms\": %.3f, \"p99_ms\": %.3f, \"mean_ms\": %.3f},\n",
                  probe.count, probe.p50, probe.p90, probe.p99, probe.mean);
    json += buf;
  }
  {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  \"mixed\": {\n    \"admitted\": %llu, \"shed\": %llu, "
                  "\"failed\": %llu, \"seconds\": %.3f, "
                  "\"throughput_rps\": %.2f,\n    \"categories\": {\n",
                  static_cast<unsigned long long>(mixed.admitted),
                  static_cast<unsigned long long>(mixed.shed),
                  static_cast<unsigned long long>(mixed.failed),
                  mixed.seconds,
                  static_cast<double>(mixed.admitted) / mixed.seconds);
    json += buf;
  }
  {
    bool first = true;
    for (const auto& [name, p] : stats) {
      if (!first) json += ",\n";
      first = false;
      AppendPercentiles(&json, name.c_str(), p);
    }
    json += "\n    }\n  },\n";
  }
  {
    char buf[320];
    std::snprintf(buf, sizeof(buf),
                  "  \"server\": {\"admitted\": %llu, "
                  "\"coalesced_exempt\": %llu, \"request_p50_ms\": %.3f, "
                  "\"request_p99_ms\": %.3f},\n",
                  static_cast<unsigned long long>(server_admitted),
                  static_cast<unsigned long long>(server_exempt),
                  server_p50_ms, server_p99_ms);
    json += buf;
  }
  {
    const auto run_json = [](const char* label, const SaturationRun& r) {
      char buf[320];
      std::snprintf(buf, sizeof(buf),
                    "    {\"offered\": \"%s\", \"clients\": %d, "
                    "\"completed\": %llu, \"shed\": %llu, \"failed\": %llu, "
                    "\"seconds\": %.3f, \"throughput_rps\": %.2f}",
                    label, r.clients,
                    static_cast<unsigned long long>(r.completed),
                    static_cast<unsigned long long>(r.shed),
                    static_cast<unsigned long long>(r.failed), r.seconds,
                    r.Throughput());
      return std::string(buf);
    };
    json += "  \"saturation\": [\n" + run_json("1x", one_x) + ",\n" +
            run_json("4x", four_x) + "\n  ],\n";
  }
  {
    char buf[320];
    std::snprintf(buf, sizeof(buf),
                  "  \"checks\": {\"warm_p50_under_10ms\": %s, "
                  "\"saturation_flat\": %s, \"shed_seen\": %s, "
                  "\"server_client_agree\": %s, \"all_ok\": %s}\n}\n",
                  warm_ok ? "true" : "false", sat_flat ? "true" : "false",
                  shed_seen ? "true" : "false",
                  server_client_agree ? "true" : "false",
                  all_ok ? "true" : "false");
    json += buf;
  }
  if (!flags.out.empty()) {
    std::ofstream f(flags.out);
    f << json;
    std::printf("wrote %s\n", flags.out.c_str());
  } else {
    std::fputs(json.c_str(), stdout);
  }
  return all_ok ? 0 : 1;
}

}  // namespace reds

int main(int argc, char** argv) { return reds::Main(argc, argv); }
