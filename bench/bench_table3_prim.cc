// Reproduces paper Table 3 (+ Figure 7): quality of PRIM-based methods
// across the Table-1 functions for N in {200, 400, 800} (+ "mor800", the
// 20-input morris function at N = 800).
//
// Rows: average PR AUC / precision / consistency / #restricted / #irrel for
// P, Pc, PB, PBc, RPf, RPx, RPs. Also prints the Section 9.1.1 statistics:
// the post-hoc Friedman p-value of RPx vs Pc and the Spearman correlation
// between input count M and the relative PR AUC improvement of RPx over Pc.
//
// Quick mode (default): 8 functions, 3 reps, N in {200, 400}, L = 20000,
// untuned metamodels. --full: all 33 functions, 50 reps, N in {200, 400,
// 800}, L = 100000, CV-tuned metamodels (paper scale; hours of CPU).
#include <cstdio>

#include "exp/bench_flags.h"
#include "exp/experiment.h"
#include "stats/descriptive.h"
#include "stats/tests.h"
#include "util/table.h"

namespace reds::exp {
namespace {

const std::vector<std::string> kMethods = {"P",   "Pc",  "PB", "PBc",
                                           "RPf", "RPx", "RPs"};

void PrintMetricTable(const Runner& runner, const char* title,
                      double MetricSet::* field) {
  TablePrinter table(title);
  std::vector<std::string> header{"N"};
  header.insert(header.end(), kMethods.begin(), kMethods.end());
  table.SetHeader(header);
  for (int n : runner.config().sizes) {
    std::vector<double> row;
    for (const auto& m : kMethods) {
      row.push_back(stats::Mean(runner.FunctionMeans(m, n, field)));
    }
    table.AddRow(std::to_string(n), row, 2);
  }
  table.Print();
  std::printf("\n");
}

void PrintConsistencyTable(const Runner& runner) {
  TablePrinter table("(c) Average consistency");
  std::vector<std::string> header{"N"};
  header.insert(header.end(), kMethods.begin(), kMethods.end());
  table.SetHeader(header);
  for (int n : runner.config().sizes) {
    std::vector<double> row;
    for (const auto& m : kMethods) {
      row.push_back(stats::Mean(runner.FunctionConsistencies(m, n)));
    }
    table.AddRow(std::to_string(n), row, 2);
  }
  table.Print();
  std::printf("\n");
}

}  // namespace

int Main(int argc, char** argv) {
  const BenchFlags flags = ParseBenchFlags(argc, argv);

  ExperimentConfig config;
  config.functions = PickFunctions(flags);
  config.methods = kMethods;
  config.sizes = flags.full ? std::vector<int>{200, 400, 800}
                            : std::vector<int>{200, 400};
  config.reps = PickReps(flags, 3, 50);
  config.test_size = flags.full ? 20000 : 8000;
  config.options.l_prim = flags.full ? 100000 : 20000;
  config.options.data_plan = flags.data_plan;
  config.options.bumping_q = flags.full ? 50 : 20;
  config.options.tune_metamodel = flags.full;
  config.options.budget =
      flags.full ? ml::TuningBudget::kFull : ml::TuningBudget::kQuick;
  config.threads = flags.threads;
  config.seed = flags.seed;

  std::printf("Table 3: PRIM-based methods, %zu functions, %d reps%s\n\n",
              config.functions.size(), config.reps,
              flags.full ? " (paper scale)" : " (quick mode; --full for paper scale)");

  Runner runner(config);
  runner.Run();

  PrintMetricTable(runner, "(a) Average PR AUC", &MetricSet::pr_auc);
  PrintMetricTable(runner, "(b) Average precision", &MetricSet::precision);
  PrintConsistencyTable(runner);
  PrintMetricTable(runner, "(d) Average number of restricted inputs",
                   &MetricSet::restricted);
  PrintMetricTable(runner, "(e) Average number of irrelevantly restricted inputs",
                   &MetricSet::irrel);

  // "mor800": the morris function at N = 800 (always worth printing when
  // morris is in the function set and 800 was run; otherwise run it alone).
  {
    ExperimentConfig morris_config = config;
    morris_config.functions = {"morris"};
    morris_config.sizes = {800};
    Runner morris_runner(morris_config);
    morris_runner.Run();
    TablePrinter table("mor800 (morris, N = 800)");
    std::vector<std::string> header{"metric"};
    header.insert(header.end(), kMethods.begin(), kMethods.end());
    table.SetHeader(header);
    std::vector<double> auc, prec, cons, restr;
    for (const auto& m : kMethods) {
      const CellResult& c = morris_runner.cell("morris", m, 800);
      auc.push_back(c.Mean().pr_auc);
      prec.push_back(c.Mean().precision);
      cons.push_back(c.consistency);
      restr.push_back(c.Mean().restricted);
    }
    table.AddRow("PR AUC", auc, 2);
    table.AddRow("precision", prec, 2);
    table.AddRow("consistency", cons, 2);
    table.AddRow("# restricted", restr, 2);
    table.Print();
    std::printf("\n");
  }

  // Figure 7: relative quality change vs "Pc" at N = 400, quartiles across
  // functions.
  const int n_ref = 400;
  {
    TablePrinter fig7("Figure 7: change vs Pc at N=400, % (quartiles across functions)");
    fig7.SetHeader({"metric / method", "q1", "median", "q3"});
    const struct {
      const char* label;
      double MetricSet::* field;
      bool consistency;
    } metrics[] = {{"PR AUC", &MetricSet::pr_auc, false},
                   {"precision", &MetricSet::precision, false},
                   {"consistency", nullptr, true},
                   {"# restricted", &MetricSet::restricted, false}};
    for (const auto& metric : metrics) {
      for (const auto& m : kMethods) {
        if (m == "Pc") continue;
        std::vector<double> changes;
        for (const auto& f : config.functions) {
          double v, base;
          if (metric.consistency) {
            v = runner.cell(f, m, n_ref).consistency;
            base = runner.cell(f, "Pc", n_ref).consistency;
          } else {
            v = runner.cell(f, m, n_ref).Mean().*metric.field;
            base = runner.cell(f, "Pc", n_ref).Mean().*metric.field;
          }
          if (base != 0.0) changes.push_back(RelativeChangePercent(v, base));
        }
        if (changes.empty()) continue;
        const auto q = stats::ComputeQuartiles(changes);
        fig7.AddRow(std::string(metric.label) + " / " + m,
                    {q.q1, q.median, q.q3}, 1);
      }
    }
    fig7.Print();
    std::printf("\n");
  }

  // Section 9.1.1 statistics at N = 400.
  std::vector<std::vector<double>> blocks;
  for (const auto& f : config.functions) {
    std::vector<double> row;
    for (const auto& m : kMethods) {
      row.push_back(runner.cell(f, m, n_ref).Mean().pr_auc);
    }
    blocks.push_back(std::move(row));
  }
  const auto friedman = stats::FriedmanTest(blocks);
  const auto posthoc = stats::FriedmanPostHoc(blocks, /*RPx=*/5, /*Pc=*/1);
  std::printf("Friedman test over PR AUC at N=400: chi2 = %.2f, p = %.2g\n",
              friedman.statistic, friedman.p_value);
  std::printf("post-hoc RPx vs Pc: z = %.2f, p = %.2g\n", posthoc.statistic,
              posthoc.p_value);

  // Spearman correlation between M and relative PR AUC improvement of RPx
  // over Pc (paper reports 0.74 at N = 400).
  std::vector<double> dims, improvements;
  for (const auto& f : config.functions) {
    auto fn = fun::MakeFunction(f);
    dims.push_back((*fn)->dim());
    const double rpx = runner.cell(f, "RPx", n_ref).Mean().pr_auc;
    const double pc = runner.cell(f, "Pc", n_ref).Mean().pr_auc;
    improvements.push_back(RelativeChangePercent(rpx, pc));
  }
  std::printf("Spearman corr(M, rel. PR AUC improvement RPx vs Pc) = %.2f\n",
              stats::SpearmanCorrelation(dims, improvements));

  if (!flags.out_dir.empty()) {
    CsvWriter csv({"n", "method", "pr_auc", "precision", "consistency",
                   "restricted", "irrel"});
    for (int n : config.sizes) {
      for (size_t mi = 0; mi < kMethods.size(); ++mi) {
        csv.AddRow({static_cast<double>(n), static_cast<double>(mi),
                    stats::Mean(runner.FunctionMeans(kMethods[mi], n,
                                                     &MetricSet::pr_auc)),
                    stats::Mean(runner.FunctionMeans(kMethods[mi], n,
                                                     &MetricSet::precision)),
                    stats::Mean(runner.FunctionConsistencies(kMethods[mi], n)),
                    stats::Mean(runner.FunctionMeans(kMethods[mi], n,
                                                     &MetricSet::restricted)),
                    stats::Mean(runner.FunctionMeans(kMethods[mi], n,
                                                     &MetricSet::irrel))});
      }
    }
    (void)csv.WriteFile(flags.out_dir + "/table3.csv");
  }
  return 0;
}

}  // namespace reds::exp

int main(int argc, char** argv) { return reds::exp::Main(argc, argv); }
