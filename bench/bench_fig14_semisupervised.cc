// Reproduces paper Figure 14 (Section 9.4): REDS as a semi-supervised
// method. Inputs are sampled i.i.d. logit-normal(0, 1) instead of uniform;
// functions whose positive share drops below 5% under this distribution are
// excluded (the paper keeps 30 of 33). The plot shows relative quality
// changes of PBc / RPx vs Pc and BI / RBIcxp vs BIc at N = 400.
#include <cstdio>

#include "exp/bench_flags.h"
#include "exp/experiment.h"
#include "functions/datagen.h"
#include "stats/descriptive.h"
#include "stats/tests.h"
#include "util/table.h"

namespace reds::exp {
namespace {

// Positive share of a function under logit-normal inputs.
double LogitNormalShare(const fun::TestFunction& f, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(static_cast<size_t>(f.dim()));
  double sum = 0.0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    for (auto& v : x) v = rng.LogitNormal(0.0, 1.0);
    sum += f.ProbPositive(x.data());
  }
  return sum / n;
}

}  // namespace

int Main(int argc, char** argv) {
  const BenchFlags flags = ParseBenchFlags(argc, argv);

  // Keep only functions with > 5% positives under the logit-normal p(x).
  std::vector<std::string> functions;
  for (const auto& name : PickFunctions(flags)) {
    auto f = fun::MakeFunction(name);
    if (LogitNormalShare(**f, 7) > 0.05) functions.push_back(name);
  }

  ExperimentConfig config;
  config.functions = functions;
  config.methods = {"Pc", "PBc", "RPx", "BIc", "RBIcxp"};
  config.sizes = {400};
  config.reps = PickReps(flags, 3, 50);
  config.test_size = flags.full ? 20000 : 8000;
  config.design_override = fun::DesignKind::kLogitNormal;
  config.options.l_prim = flags.full ? 100000 : 20000;
  config.options.data_plan = flags.data_plan;
  config.options.l_bi = flags.full ? 10000 : 5000;
  config.options.bumping_q = flags.full ? 50 : 20;
  config.options.tune_metamodel = flags.full;
  config.threads = flags.threads;
  config.seed = flags.seed;

  std::printf("Figure 14: semi-supervised setting (logit-normal inputs), "
              "%zu functions kept (share > 5%%), N = 400\n\n",
              functions.size());

  Runner runner(config);
  runner.Run();

  auto quartile_row = [&](const char* label, const std::string& method,
                          const std::string& baseline,
                          double MetricSet::* field, TablePrinter* table) {
    std::vector<double> changes;
    for (const auto& f : functions) {
      const double v = runner.cell(f, method, 400).Mean().*field;
      const double b = runner.cell(f, baseline, 400).Mean().*field;
      if (b != 0.0) changes.push_back(RelativeChangePercent(v, b));
    }
    const auto q = stats::ComputeQuartiles(changes);
    table->AddRow(label, {q.q1, q.median, q.q3}, 1);
  };

  TablePrinter table("relative change vs tuned baseline, % (quartiles)");
  table.SetHeader({"comparison", "q1", "median", "q3"});
  quartile_row("PBc vs Pc: PR AUC", "PBc", "Pc", &MetricSet::pr_auc, &table);
  quartile_row("RPx vs Pc: PR AUC", "RPx", "Pc", &MetricSet::pr_auc, &table);
  quartile_row("RPx vs Pc: precision", "RPx", "Pc", &MetricSet::precision,
               &table);
  quartile_row("RBIcxp vs BIc: WRAcc", "RBIcxp", "BIc", &MetricSet::wracc,
               &table);
  table.Print();

  std::vector<std::vector<double>> blocks;
  for (const auto& f : functions) {
    blocks.push_back({runner.cell(f, "Pc", 400).Mean().pr_auc,
                      runner.cell(f, "RPx", 400).Mean().pr_auc});
  }
  const auto posthoc = stats::FriedmanPostHoc(blocks, 1, 0);
  std::printf("\nRPx vs Pc (PR AUC): z = %.2f, p = %.2g -- REDS keeps its "
              "edge when p(x) is not uniform (Section 9.4).\n",
              posthoc.statistic, posthoc.p_value);
  return 0;
}

}  // namespace reds::exp

int main(int argc, char** argv) { return reds::exp::Main(argc, argv); }
