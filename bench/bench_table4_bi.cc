// Reproduces paper Table 4 (+ Figure 8): quality of BI-based methods (BI,
// BIc, BI5, RBIcfp, RBIcxp) across the Table-1 functions: average WRAcc,
// consistency, #restricted and #irrel, plus the post-hoc Friedman test of
// RBIcxp vs BIc and the Spearman correlation between M and the relative
// WRAcc improvement (paper reports 0.77 at N = 400).
#include <cstdio>

#include "exp/bench_flags.h"
#include "exp/experiment.h"
#include "stats/descriptive.h"
#include "stats/tests.h"
#include "util/table.h"

namespace reds::exp {
namespace {

const std::vector<std::string> kMethods = {"BI", "BIc", "BI5", "RBIcfp",
                                           "RBIcxp"};

void PrintMetricTable(const Runner& runner, const char* title,
                      double MetricSet::* field) {
  TablePrinter table(title);
  std::vector<std::string> header{"N"};
  header.insert(header.end(), kMethods.begin(), kMethods.end());
  table.SetHeader(header);
  for (int n : runner.config().sizes) {
    std::vector<double> row;
    for (const auto& m : kMethods) {
      row.push_back(stats::Mean(runner.FunctionMeans(m, n, field)));
    }
    table.AddRow(std::to_string(n), row, 2);
  }
  table.Print();
  std::printf("\n");
}

}  // namespace

int Main(int argc, char** argv) {
  const BenchFlags flags = ParseBenchFlags(argc, argv);

  ExperimentConfig config;
  config.functions = PickFunctions(flags);
  config.methods = kMethods;
  config.sizes = flags.full ? std::vector<int>{200, 400, 800}
                            : std::vector<int>{200, 400};
  config.reps = PickReps(flags, 3, 50);
  config.test_size = flags.full ? 20000 : 8000;
  config.options.l_bi = flags.full ? 10000 : 5000;
  config.options.tune_metamodel = flags.full;
  config.options.budget =
      flags.full ? ml::TuningBudget::kFull : ml::TuningBudget::kQuick;
  config.threads = flags.threads;
  config.seed = flags.seed;

  std::printf("Table 4: BI-based methods, %zu functions, %d reps%s\n\n",
              config.functions.size(), config.reps,
              flags.full ? " (paper scale)" : " (quick mode; --full for paper scale)");

  Runner runner(config);
  runner.Run();

  PrintMetricTable(runner, "(a) Average WRAcc", &MetricSet::wracc);
  {
    TablePrinter table("(b) Average consistency");
    std::vector<std::string> header{"N"};
    header.insert(header.end(), kMethods.begin(), kMethods.end());
    table.SetHeader(header);
    for (int n : config.sizes) {
      std::vector<double> row;
      for (const auto& m : kMethods) {
        row.push_back(stats::Mean(runner.FunctionConsistencies(m, n)));
      }
      table.AddRow(std::to_string(n), row, 2);
    }
    table.Print();
    std::printf("\n");
  }
  PrintMetricTable(runner, "(c) Average number of restricted inputs",
                   &MetricSet::restricted);
  PrintMetricTable(runner, "(d) Average number of irrelevantly restricted inputs",
                   &MetricSet::irrel);

  // Figure 8: relative quality change vs "BIc" at N = 400.
  const int n_ref = 400;
  {
    TablePrinter fig8("Figure 8: change vs BIc at N=400, % (quartiles across functions)");
    fig8.SetHeader({"metric / method", "q1", "median", "q3"});
    for (const auto& m : std::vector<std::string>{"BI", "RBIcxp"}) {
      for (const auto& [label, field] :
           std::vector<std::pair<const char*, double MetricSet::*>>{
               {"WRAcc", &MetricSet::wracc},
               {"# restricted", &MetricSet::restricted}}) {
        std::vector<double> changes;
        for (const auto& f : config.functions) {
          const double v = runner.cell(f, m, n_ref).Mean().*field;
          const double base = runner.cell(f, "BIc", n_ref).Mean().*field;
          if (base != 0.0) changes.push_back(RelativeChangePercent(v, base));
        }
        if (changes.empty()) continue;
        const auto q = stats::ComputeQuartiles(changes);
        fig8.AddRow(std::string(label) + " / " + m, {q.q1, q.median, q.q3}, 1);
      }
      std::vector<double> cons_changes;
      for (const auto& f : config.functions) {
        const double v = runner.cell(f, m, n_ref).consistency;
        const double base = runner.cell(f, "BIc", n_ref).consistency;
        if (base != 0.0) cons_changes.push_back(RelativeChangePercent(v, base));
      }
      if (!cons_changes.empty()) {
        const auto q = stats::ComputeQuartiles(cons_changes);
        fig8.AddRow(std::string("consistency / ") + m, {q.q1, q.median, q.q3},
                    1);
      }
    }
    fig8.Print();
    std::printf("\n");
  }

  // Statistics at N = 400.
  std::vector<std::vector<double>> blocks;
  for (const auto& f : config.functions) {
    std::vector<double> row;
    for (const auto& m : kMethods) {
      row.push_back(runner.cell(f, m, n_ref).Mean().wracc);
    }
    blocks.push_back(std::move(row));
  }
  const auto posthoc = stats::FriedmanPostHoc(blocks, /*RBIcxp=*/4, /*BIc=*/1);
  std::printf("post-hoc Friedman RBIcxp vs BIc (WRAcc, N=400): z = %.2f, "
              "p = %.2g\n",
              posthoc.statistic, posthoc.p_value);

  std::vector<double> dims, improvements;
  for (const auto& f : config.functions) {
    auto fn = fun::MakeFunction(f);
    dims.push_back((*fn)->dim());
    const double reds_val = runner.cell(f, "RBIcxp", n_ref).Mean().wracc;
    const double base = runner.cell(f, "BIc", n_ref).Mean().wracc;
    improvements.push_back(RelativeChangePercent(reds_val, base));
  }
  std::printf("Spearman corr(M, rel. WRAcc improvement RBIcxp vs BIc) = %.2f\n",
              stats::SpearmanCorrelation(dims, improvements));

  if (!flags.out_dir.empty()) {
    CsvWriter csv({"n", "method", "wracc", "consistency", "restricted",
                   "irrel"});
    for (int n : config.sizes) {
      for (size_t mi = 0; mi < kMethods.size(); ++mi) {
        csv.AddRow({static_cast<double>(n), static_cast<double>(mi),
                    stats::Mean(runner.FunctionMeans(kMethods[mi], n,
                                                     &MetricSet::wracc)),
                    stats::Mean(runner.FunctionConsistencies(kMethods[mi], n)),
                    stats::Mean(runner.FunctionMeans(kMethods[mi], n,
                                                     &MetricSet::restricted)),
                    stats::Mean(runner.FunctionMeans(kMethods[mi], n,
                                                     &MetricSet::irrel))});
      }
    }
    (void)csv.WriteFile(flags.out_dir + "/table4.csv");
  }
  return 0;
}

}  // namespace reds::exp

int main(int argc, char** argv) { return reds::exp::Main(argc, argv); }
