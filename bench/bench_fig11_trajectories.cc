// Reproduces paper Figure 11: peeling trajectories and PR AUC for "morris"
// at N = 400. The "RPx" trajectory should dominate "P" and "Pc" (higher
// precision at equal recall), and its PR AUC distribution should beat "Pc"
// with a tiny Wilcoxon-Mann-Whitney p-value (paper: p < 1e-15 at 50 reps).
#include <cstdio>

#include "core/method.h"
#include "core/quality.h"
#include "exp/bench_flags.h"
#include "functions/datagen.h"
#include "functions/registry.h"
#include "stats/descriptive.h"
#include "stats/tests.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace reds::exp {
namespace {

// Test-set PR curve of a trajectory, resampled at fixed recall grid points
// by linear interpolation, so curves average across repetitions.
std::vector<double> ResampleCurve(const std::vector<Box>& trajectory,
                                  const Dataset& test,
                                  const std::vector<double>& recall_grid) {
  std::vector<PrPoint> pts;
  const double total_pos = test.TotalPositive();
  for (const Box& b : trajectory) {
    const BoxStats stats = ComputeBoxStats(test, b);
    pts.push_back({Recall(stats, total_pos), Precision(stats)});
  }
  std::sort(pts.begin(), pts.end(),
            [](const PrPoint& a, const PrPoint& b) { return a.recall < b.recall; });
  std::vector<double> out;
  out.reserve(recall_grid.size());
  for (double r : recall_grid) {
    // Find the bracketing trajectory points.
    double prec = pts.front().precision;
    for (size_t i = 0; i < pts.size(); ++i) {
      if (pts[i].recall >= r) {
        if (i == 0) {
          prec = pts[0].precision;
        } else {
          const double t = (r - pts[i - 1].recall) /
                           std::max(1e-12, pts[i].recall - pts[i - 1].recall);
          prec = pts[i - 1].precision +
                 t * (pts[i].precision - pts[i - 1].precision);
        }
        break;
      }
      prec = pts[i].precision;
    }
    out.push_back(prec);
  }
  return out;
}

}  // namespace

int Main(int argc, char** argv) {
  const BenchFlags flags = ParseBenchFlags(argc, argv);
  const int reps = PickReps(flags, 5, 50);
  const std::vector<std::string> methods{"P", "Pc", "RPx"};

  auto function = fun::MakeFunction("morris").value();
  const Dataset test = fun::MakeScenarioDataset(
      *function, flags.full ? 20000 : 8000, fun::DesignKind::kLatinHypercube,
      DeriveSeed(flags.seed, 1));

  std::vector<double> recall_grid;
  for (double r = 0.1; r <= 1.0001; r += 0.1) recall_grid.push_back(r);

  std::vector<std::vector<std::vector<double>>> curves(
      methods.size(),
      std::vector<std::vector<double>>(static_cast<size_t>(reps)));
  std::vector<std::vector<double>> aucs(methods.size(),
                                        std::vector<double>(reps));

  ThreadPool pool(flags.threads);
  for (int rep = 0; rep < reps; ++rep) {
    pool.Submit([&, rep] {
      const Dataset train = fun::MakeScenarioDataset(
          *function, 400, fun::DesignKind::kLatinHypercube,
          DeriveSeed(flags.seed, 100 + rep));
      for (size_t mi = 0; mi < methods.size(); ++mi) {
        RunOptions options;
        options.l_prim = flags.full ? 100000 : 20000;
        options.data_plan = flags.data_plan;
        options.tune_metamodel = flags.full;
        options.seed = DeriveSeed(flags.seed, 1000 * (mi + 1) + rep);
        const MethodOutput out =
            RunMethod(*MethodSpec::Parse(methods[mi]), train, options);
        curves[mi][static_cast<size_t>(rep)] =
            ResampleCurve(out.trajectory, test, recall_grid);
        aucs[mi][static_cast<size_t>(rep)] =
            100.0 * PrAucOnData(out.trajectory, test);
      }
    });
  }
  pool.Wait();

  std::printf("Figure 11: peeling trajectories, 'morris', N = 400, %d reps\n\n",
              reps);
  TablePrinter table("mean precision at recall r (test data)");
  table.SetHeader({"recall", "P", "Pc", "RPx"});
  for (size_t g = 0; g < recall_grid.size(); ++g) {
    std::vector<double> row;
    for (size_t mi = 0; mi < methods.size(); ++mi) {
      double sum = 0.0;
      for (int rep = 0; rep < reps; ++rep) {
        sum += curves[mi][static_cast<size_t>(rep)][g];
      }
      row.push_back(sum / reps);
    }
    table.AddRow(FormatDouble(recall_grid[g], 1), row, 3);
  }
  table.Print();

  std::printf("\n");
  TablePrinter auc_table("PR AUC distribution (x100)");
  auc_table.SetHeader({"method", "q1", "median", "q3"});
  for (size_t mi = 0; mi < methods.size(); ++mi) {
    const auto q = stats::ComputeQuartiles(aucs[mi]);
    auc_table.AddRow(methods[mi], {q.q1, q.median, q.q3}, 2);
  }
  auc_table.Print();

  const auto wmw = stats::WilcoxonRankSum(aucs[2], aucs[1]);
  std::printf("\nWilcoxon-Mann-Whitney RPx vs Pc: z = %.2f, p = %.3g "
              "(paper: p < 1e-15 at 50 reps)\n",
              wmw.statistic, wmw.p_value);

  if (!flags.out_dir.empty()) {
    CsvWriter csv({"recall", "P", "Pc", "RPx"});
    for (size_t g = 0; g < recall_grid.size(); ++g) {
      std::vector<double> row{recall_grid[g]};
      for (size_t mi = 0; mi < methods.size(); ++mi) {
        double sum = 0.0;
        for (int rep = 0; rep < reps; ++rep) {
          sum += curves[mi][static_cast<size_t>(rep)][g];
        }
        row.push_back(sum / reps);
      }
      csv.AddRow(row);
    }
    (void)csv.WriteFile(flags.out_dir + "/fig11.csv");
  }
  return 0;
}

}  // namespace reds::exp

int main(int argc, char** argv) { return reds::exp::Main(argc, argv); }
