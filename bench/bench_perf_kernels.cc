// Perf-regression harness for the columnar and quantized hot paths: times
// the exact scalar kernels, the PR 2 sorted/presorted kernels, and the PR 3
// binned/histogram kernels against each other on the paper-scale shapes
// (PRIM peeling over L relabeled points, GBT/RF metamodel fits, BI beam
// search) and emits machine-readable JSON, extending the BENCH_*.json
// trajectory. Exact kernels must reproduce their reference bit-for-bit;
// approximate kernels (histogram trees beyond the bin budget) must stay
// within a small training-quality delta.
//
//   bench_perf_kernels            # paper scale: n=10k, L=100k, d=10
//   bench_perf_kernels --quick    # CI smoke: tiny sizes, seconds not minutes
//   bench_perf_kernels --out BENCH_pr3.json
//   bench_perf_kernels --quick --check-against bench/quick_reference.json
//                                 # fail when timings regress > 3x
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/best_interval.h"
#include "core/dataset_source.h"
#include "core/method.h"
#include "core/prim.h"
#include "engine/discovery_engine.h"
#include "ml/gbt.h"
#include "ml/histogram.h"
#include "ml/metrics.h"
#include "ml/random_forest.h"
#include "ml/tuning.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "shard/coordinator.h"
#include "shard/source_spec.h"
#include "shard/worker.h"
#include "util/rng.h"
#include "util/simd.h"

namespace reds {
namespace {

struct PerfFlags {
  bool quick = false;
  int n_train = 10000;   // metamodel training size (paper Fig. 9 scale)
  int l_points = 100000; // relabeled dataset size L
  int dims = 10;
  int reps = 3;          // timing repetitions; best is reported
  int threads = 4;       // for the *_parallel kernels
  uint64_t seed = 42;
  std::string out;           // JSON path; empty: stdout only
  std::string metrics_out;   // MetricsRegistry JSON path; empty: none
  std::string check_against; // reference JSON; empty: no regression gate
  double check_tolerance = 3.0;
  std::string only;          // substring filter on kernel names; empty: all
};

PerfFlags ParseFlags(int argc, char** argv) {
  PerfFlags flags;
  auto next_value = [&](int* i) -> const char* {
    if (*i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[*i]);
      std::exit(2);
    }
    return argv[++*i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      flags.quick = true;
    } else if (arg == "--full") {
      flags.quick = false;
    } else if (arg == "--n") {
      flags.n_train = std::atoi(next_value(&i));
    } else if (arg == "--l") {
      flags.l_points = std::atoi(next_value(&i));
    } else if (arg == "--d") {
      flags.dims = std::atoi(next_value(&i));
    } else if (arg == "--reps") {
      flags.reps = std::atoi(next_value(&i));
    } else if (arg == "--threads") {
      flags.threads = std::atoi(next_value(&i));
    } else if (arg == "--seed") {
      flags.seed = static_cast<uint64_t>(std::atoll(next_value(&i)));
    } else if (arg == "--out") {
      flags.out = next_value(&i);
    } else if (arg == "--metrics-out") {
      flags.metrics_out = next_value(&i);
    } else if (arg == "--check-against") {
      flags.check_against = next_value(&i);
    } else if (arg == "--check-tolerance") {
      flags.check_tolerance = std::atof(next_value(&i));
    } else if (arg == "--only") {
      flags.only = next_value(&i);
    } else if (arg == "--help") {
      std::printf(
          "usage: bench_perf_kernels [--quick|--full] [--n N] [--l L] "
          "[--d D] [--reps R] [--threads T] [--seed S] [--out file.json] "
          "[--metrics-out metrics.json] [--check-against ref.json] "
          "[--check-tolerance X] [--only name_substring]\n");
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag %s (see --help)\n", arg.c_str());
      std::exit(2);
    }
  }
  if (flags.quick) {
    flags.n_train = 600;
    flags.l_points = 3000;
    flags.dims = 6;
    flags.reps = 1;
  }
  return flags;
}

Dataset RandomData(int n, int dim, uint64_t seed, int distinct_values = 0) {
  Rng rng(seed);
  Dataset d(dim);
  d.Reserve(n);
  std::vector<double> x(static_cast<size_t>(dim));
  for (int i = 0; i < n; ++i) {
    for (auto& v : x) {
      v = distinct_values > 0
              ? static_cast<double>(rng.UniformInt(
                    static_cast<uint64_t>(distinct_values))) /
                    distinct_values
              : rng.Uniform();
    }
    const double p = (x[0] < 0.45 && x[1] > 0.3) ? 0.8 : 0.15;
    d.AddRow(x, rng.Bernoulli(p) ? 1.0 : 0.0);
  }
  return d;
}

struct KernelResult {
  std::string name;
  std::string detail;
  double reference_seconds = 0.0;
  double optimized_seconds = 0.0;
  bool identical = true;      // optimized output matched the reference
  bool approximate = false;   // histogram kernels: identity not required
  double quality_delta = 0.0; // |train quality gap| for approximate kernels
  /// Per-kernel bound on quality_delta: log-loss gap for the histogram
  /// kernels, relative slowdown for metrics_overhead (the <1% budget).
  double quality_tolerance = 0.05;

  double Speedup() const {
    return optimized_seconds > 0.0 ? reference_seconds / optimized_seconds
                                   : 0.0;
  }
  bool Ok() const {
    return approximate ? quality_delta <= quality_tolerance : identical;
  }
};

// Best-of-reps wall time of fn().
double TimeBest(int reps, const std::function<void()>& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const double s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    best = std::min(best, s);
  }
  return best;
}

bool SamePrimResult(const PrimResult& a, const PrimResult& b) {
  if (a.boxes.size() != b.boxes.size()) return false;
  if (a.best_val_index != b.best_val_index) return false;
  for (size_t i = 0; i < a.boxes.size(); ++i) {
    if (!(a.boxes[i] == b.boxes[i])) return false;
  }
  return true;
}

double TrainLogLoss(const ml::Metamodel& model, const Dataset& d) {
  std::vector<double> prob, y;
  prob.reserve(static_cast<size_t>(d.num_rows()));
  y.reserve(static_cast<size_t>(d.num_rows()));
  for (int i = 0; i < d.num_rows(); ++i) {
    prob.push_back(model.PredictProb(d.row(i)));
    y.push_back(d.y(i) > 0.5 ? 1.0 : 0.0);
  }
  return ml::LogLoss(prob, y);
}

// --- PRIM: scalar reference vs sorted-index kernel (the PR 2 pair). ------
KernelResult BenchPrimPeel(const PerfFlags& flags, bool paste) {
  KernelResult result;
  result.name = paste ? "prim_paste" : "prim_peel";
  const Dataset d = RandomData(flags.l_points, flags.dims, flags.seed);
  PrimConfig config;
  config.alpha = 0.05;
  config.paste = paste;
  config.backend = PrimPeelBackend::kSorted;
  result.detail = "L=" + std::to_string(flags.l_points) +
                  " d=" + std::to_string(flags.dims) + " alpha=0.05" +
                  (paste ? " +pasting" : "");

  PrimResult ref, opt;
  result.reference_seconds =
      TimeBest(flags.reps, [&] { ref = RunPrimReference(d, d, config); });
  result.optimized_seconds =
      TimeBest(flags.reps, [&] { opt = RunPrim(d, d, config); });
  result.identical = SamePrimResult(ref, opt);
  return result;
}

// --- PRIM: sorted-index kernel vs binned kernel (the PR 3 pair). Both ----
// get prebuilt indexes, so the timing isolates the peel loops themselves.
KernelResult BenchPrimBinned(const PerfFlags& flags, int threads) {
  KernelResult result;
  result.name = threads > 1 ? "prim_peel_binned_parallel" : "prim_peel_binned";
  const Dataset d = RandomData(flags.l_points, flags.dims, flags.seed);
  const auto index = ColumnIndex::Build(d);
  const auto binned = BinnedIndex::Build(*index);
  PrimConfig sorted_config;
  sorted_config.alpha = 0.05;
  sorted_config.backend = PrimPeelBackend::kSorted;
  PrimConfig binned_config = sorted_config;
  binned_config.backend = PrimPeelBackend::kBinned;
  binned_config.threads = threads;
  result.detail = "L=" + std::to_string(flags.l_points) +
                  " d=" + std::to_string(flags.dims) + " alpha=0.05" +
                  (threads > 1 ? " threads=" + std::to_string(threads) : "");

  PrimResult ref, opt;
  result.reference_seconds = TimeBest(
      flags.reps, [&] { ref = RunPrim(d, d, sorted_config, index.get()); });
  result.optimized_seconds = TimeBest(flags.reps, [&] {
    opt = RunPrim(d, d, binned_config, index.get(), binned.get());
  });
  result.identical = SamePrimResult(ref, opt);
  return result;
}

// --- GBT: scalar reference vs presorted (PR 2 pair). ---------------------
KernelResult BenchGbtFit(const PerfFlags& flags, int threads) {
  KernelResult result;
  result.name = threads > 1 ? "gbt_fit_parallel" : "gbt_fit";
  const Dataset d = RandomData(flags.n_train, flags.dims, flags.seed + 1);
  const Dataset probe = RandomData(256, flags.dims, flags.seed + 2);
  ml::GbtConfig config;
  config.num_rounds = flags.quick ? 20 : 100;
  config.max_depth = 4;
  result.detail = "n=" + std::to_string(flags.n_train) +
                  " d=" + std::to_string(flags.dims) +
                  " rounds=" + std::to_string(config.num_rounds) +
                  (threads > 1 ? " threads=" + std::to_string(threads) : "");

  ml::GbtConfig ref_config = config;
  ref_config.backend = ml::SplitBackend::kExact;
  ml::GbtConfig opt_config = config;
  opt_config.threads = threads;

  ml::GradientBoostedTrees ref(ref_config), opt(opt_config);
  result.reference_seconds =
      TimeBest(flags.reps, [&] { ref.Fit(d, flags.seed + 3); });
  result.optimized_seconds =
      TimeBest(flags.reps, [&] { opt.Fit(d, flags.seed + 3); });
  for (int i = 0; i < probe.num_rows() && result.identical; ++i) {
    result.identical =
        ref.PredictMargin(probe.row(i)) == opt.PredictMargin(probe.row(i));
  }
  return result;
}

// --- GBT: presorted vs histogram (PR 3 pair, approximate). Both fits -----
// get the prebuilt shared indexes, isolating the split-search cost.
KernelResult BenchGbtHist(const PerfFlags& flags, int threads) {
  KernelResult result;
  result.name = threads > 1 ? "gbt_fit_hist_parallel" : "gbt_fit_hist";
  result.approximate = true;
  const Dataset d = RandomData(flags.n_train, flags.dims, flags.seed + 1);
  ml::GbtConfig config;
  config.num_rounds = flags.quick ? 20 : 100;
  config.max_depth = 4;
  config.threads = threads;
  result.detail = "n=" + std::to_string(flags.n_train) +
                  " d=" + std::to_string(flags.dims) +
                  " rounds=" + std::to_string(config.num_rounds) +
                  (threads > 1 ? " threads=" + std::to_string(threads) : "");

  const auto index = ColumnIndex::Build(d);
  const auto binned = BinnedIndex::Build(*index);
  ml::GbtConfig hist_config = config;
  hist_config.backend = ml::SplitBackend::kHistogram;

  ml::GradientBoostedTrees ref(config), opt(hist_config);
  result.reference_seconds = TimeBest(
      flags.reps, [&] { ref.Fit(d, flags.seed + 3, index.get()); });
  result.optimized_seconds = TimeBest(flags.reps, [&] {
    opt.Fit(d, flags.seed + 3, index.get(), binned.get());
  });
  result.quality_delta = std::fabs(TrainLogLoss(ref, d) - TrainLogLoss(opt, d));
  result.identical = result.quality_delta == 0.0;
  return result;
}

// --- RF: scalar reference vs presorted (PR 2 pair). ----------------------
KernelResult BenchRfFit(const PerfFlags& flags) {
  KernelResult result;
  result.name = "rf_fit";
  const Dataset d = RandomData(flags.n_train, flags.dims, flags.seed + 4);
  const Dataset probe = RandomData(256, flags.dims, flags.seed + 5);
  ml::RandomForestConfig config;
  config.num_trees = flags.quick ? 10 : 50;
  result.detail = "n=" + std::to_string(flags.n_train) +
                  " d=" + std::to_string(flags.dims) +
                  " trees=" + std::to_string(config.num_trees);

  ml::RandomForestConfig ref_config = config;
  ref_config.backend = ml::SplitBackend::kExact;
  ml::RandomForest ref(ref_config), opt(config);
  result.reference_seconds =
      TimeBest(flags.reps, [&] { ref.Fit(d, flags.seed + 6); });
  result.optimized_seconds =
      TimeBest(flags.reps, [&] { opt.Fit(d, flags.seed + 6); });
  for (int i = 0; i < probe.num_rows() && result.identical; ++i) {
    result.identical =
        ref.PredictProb(probe.row(i)) == opt.PredictProb(probe.row(i));
  }
  return result;
}

// --- RF: presorted vs histogram (PR 3 pair, approximate). ----------------
KernelResult BenchRfHist(const PerfFlags& flags) {
  KernelResult result;
  result.name = "rf_fit_hist";
  result.approximate = true;
  const Dataset d = RandomData(flags.n_train, flags.dims, flags.seed + 4);
  ml::RandomForestConfig config;
  config.num_trees = flags.quick ? 10 : 50;
  result.detail = "n=" + std::to_string(flags.n_train) +
                  " d=" + std::to_string(flags.dims) +
                  " trees=" + std::to_string(config.num_trees);

  const auto index = ColumnIndex::Build(d);
  const auto binned = BinnedIndex::Build(*index);
  ml::RandomForestConfig hist_config = config;
  hist_config.backend = ml::SplitBackend::kHistogram;
  ml::RandomForest ref(config), opt(hist_config);
  result.reference_seconds = TimeBest(
      flags.reps, [&] { ref.Fit(d, flags.seed + 6, index.get()); });
  result.optimized_seconds = TimeBest(flags.reps, [&] {
    opt.Fit(d, flags.seed + 6, index.get(), binned.get());
  });
  result.quality_delta = std::fabs(TrainLogLoss(ref, d) - TrainLogLoss(opt, d));
  result.identical = result.quality_delta == 0.0;
  return result;
}

// --- Histogram accumulation: scalar reference vs the dispatched packed ---
// pair kernel (AVX2 fused 128-bit bin updates when available). The pack
// runs outside the timed region, as in GBT: it is paid once per boosting
// round and amortized over depth x features accumulations. Repeated
// passes over one node-sized id set amortize timer granularity; bins must
// match bit for bit. n is floored at 100k even in quick mode -- at the
// old quick size (3000 rows) the whole working set sat in L1 and the
// measurement was timer jitter, not kernel speed.
KernelResult BenchHistAccumulate(const PerfFlags& flags) {
  KernelResult result;
  result.name = "hist_accumulate";
  const int n = std::max(flags.l_points, 100000);
  Rng rng(flags.seed + 8);
  std::vector<uint8_t> codes(static_cast<size_t>(n));
  std::vector<double> g(static_cast<size_t>(n)), h(static_cast<size_t>(n));
  std::vector<int> ids(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    codes[static_cast<size_t>(i)] = static_cast<uint8_t>(rng.UniformInt(256));
    g[static_cast<size_t>(i)] = rng.Normal();
    h[static_cast<size_t>(i)] = rng.Uniform();
    ids[static_cast<size_t>(i)] = i;
  }
  rng.Shuffle(&ids);  // gather pattern, as in a partitioned tree node
  const int passes = flags.quick ? 20 : 200;
  result.detail = "n=" + std::to_string(n) + " bins=256 passes=" +
                  std::to_string(passes) + " simd=" +
                  util::SimdLevelName(util::ActiveSimdLevel());

  util::PackedDoubleBuffer pairs;
  ml::PackGradientPairs(g.data(), h.data(), n, &pairs);

  std::vector<ml::HistBin> ref_bins(256), opt_bins(256);
  result.reference_seconds = TimeBest(flags.reps, [&] {
    for (int p = 0; p < passes; ++p) {
      std::fill(ref_bins.begin(), ref_bins.end(), ml::HistBin());
      ml::AccumulateHistogramReference(codes.data(), ids.data(), n, g.data(),
                                       h.data(), ref_bins.data());
    }
  });
  result.optimized_seconds = TimeBest(flags.reps, [&] {
    for (int p = 0; p < passes; ++p) {
      std::fill(opt_bins.begin(), opt_bins.end(), ml::HistBin());
      ml::AccumulateHistogramPairs(codes.data(), ids.data(), n, pairs.data(),
                                   opt_bins.data());
    }
  });
  for (int b = 0; b < 256 && result.identical; ++b) {
    result.identical = ref_bins[static_cast<size_t>(b)].g ==
                           opt_bins[static_cast<size_t>(b)].g &&
                       ref_bins[static_cast<size_t>(b)].h ==
                           opt_bins[static_cast<size_t>(b)].h &&
                       ref_bins[static_cast<size_t>(b)].count ==
                           opt_bins[static_cast<size_t>(b)].count;
  }
  return result;
}

// --- Quantized-gradient histogram: int16 packed pairs, int64 bin sums ---
// (4 bytes per row instead of 16: 4x the gradient density per cache
// line). Integer sums are associative, so every dispatch path must be
// exactly equal to the reference -- not just bit-close.
KernelResult BenchHistAccumulateQ16(const PerfFlags& flags) {
  KernelResult result;
  result.name = "hist_accumulate_q16";
  const int n = std::max(flags.l_points, 100000);
  Rng rng(flags.seed + 8);
  std::vector<uint8_t> codes(static_cast<size_t>(n));
  std::vector<double> g(static_cast<size_t>(n)), h(static_cast<size_t>(n));
  std::vector<int> ids(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    codes[static_cast<size_t>(i)] = static_cast<uint8_t>(rng.UniformInt(256));
    g[static_cast<size_t>(i)] = rng.Normal();
    h[static_cast<size_t>(i)] = rng.Uniform();
    ids[static_cast<size_t>(i)] = i;
  }
  rng.Shuffle(&ids);
  const int passes = flags.quick ? 20 : 200;
  result.detail = "n=" + std::to_string(n) + " bins=256 passes=" +
                  std::to_string(passes) + " simd=" +
                  util::SimdLevelName(util::ActiveSimdLevel());

  std::vector<int16_t> gh16(2 * static_cast<size_t>(n));
  ml::QuantizeGradientPairs(g.data(), h.data(), n, gh16.data());

  std::vector<ml::HistBinQ16> ref_bins(256), opt_bins(256);
  result.reference_seconds = TimeBest(flags.reps, [&] {
    for (int p = 0; p < passes; ++p) {
      std::fill(ref_bins.begin(), ref_bins.end(), ml::HistBinQ16());
      ml::AccumulateHistogramQ16Reference(codes.data(), ids.data(), n,
                                          gh16.data(), ref_bins.data());
    }
  });
  result.optimized_seconds = TimeBest(flags.reps, [&] {
    for (int p = 0; p < passes; ++p) {
      std::fill(opt_bins.begin(), opt_bins.end(), ml::HistBinQ16());
      ml::AccumulateHistogramQ16(codes.data(), ids.data(), n, gh16.data(),
                                 opt_bins.data());
    }
  });
  for (int b = 0; b < 256 && result.identical; ++b) {
    result.identical = ref_bins[static_cast<size_t>(b)].g ==
                           opt_bins[static_cast<size_t>(b)].g &&
                       ref_bins[static_cast<size_t>(b)].h ==
                           opt_bins[static_cast<size_t>(b)].h &&
                       ref_bins[static_cast<size_t>(b)].count ==
                           opt_bins[static_cast<size_t>(b)].count;
  }
  return result;
}

// --- Streaming build path: in-memory exact quantization (ColumnIndex + ---
// BinnedIndex) vs the two-pass sketch-binned streaming build. Approximate:
// the two packings place boundaries differently (greedy equal-share vs
// exact-rank quantiles), so the quality delta is the worst bin-balance
// deviation -- max |bin population - n/bins| / n, which the sketch's rank
// error bounds on this continuous (tie-free) data.
KernelResult BenchStreamedBuild(const PerfFlags& flags, int threads) {
  KernelResult result;
  result.name = threads > 1 ? "binned_build_streamed_parallel"
                            : "binned_build_streamed";
  result.approximate = true;
  const auto data = std::make_shared<Dataset>(
      RandomData(flags.l_points, flags.dims, flags.seed + 9));
  result.detail = "L=" + std::to_string(flags.l_points) +
                  " d=" + std::to_string(flags.dims) +
                  (threads > 1 ? " threads=" + std::to_string(threads) : "");

  std::shared_ptr<const BinnedIndex> exact;
  result.reference_seconds = TimeBest(flags.reps, [&] {
    exact = BinnedIndex::Build(*ColumnIndex::Build(*data));
  });
  Result<StreamedDataset> streamed = Status::RuntimeError("not run");
  result.optimized_seconds = TimeBest(flags.reps, [&] {
    MatrixSource source(data);
    StreamedBuildOptions options;
    options.threads = threads;
    streamed = BinnedIndex::BuildStreamed(&source, options);
  });
  if (!streamed.ok()) {
    result.identical = false;
    result.quality_delta = 1.0;
    return result;
  }
  const double n = static_cast<double>(data->num_rows());
  double worst = 0.0;
  for (int j = 0; j < flags.dims; ++j) {
    const BinnedIndex& index = *streamed->index;
    const double share = n / index.num_bins(j);
    for (int b = 0; b < index.num_bins(j); ++b) {
      const double population =
          index.bin_begin_rank(j, b + 1) - index.bin_begin_rank(j, b);
      worst = std::max(worst, std::fabs(population - share) / n);
    }
  }
  result.quality_delta = worst;
  result.identical = exact->codes(0) == streamed->index->codes(0);
  return result;
}

// --- Streamed PRIM: the sorted-index kernel on the materialized matrix ---
// vs RunPrimStreamed on codes alone. Discrete-valued data keeps both in
// the exact regime, so the boxes must be bit-identical; both get prebuilt
// indexes, isolating the peel loops.
KernelResult BenchPrimStreamed(const PerfFlags& flags) {
  KernelResult result;
  result.name = "prim_peel_streamed";
  const auto data = std::make_shared<Dataset>(
      RandomData(flags.l_points, flags.dims, flags.seed, /*distinct=*/128));
  const auto index = ColumnIndex::Build(*data);
  MatrixSource source(data);
  auto streamed = BinnedIndex::BuildStreamed(&source);
  PrimConfig sorted_config;
  sorted_config.alpha = 0.05;
  sorted_config.backend = PrimPeelBackend::kSorted;
  result.detail = "L=" + std::to_string(flags.l_points) +
                  " d=" + std::to_string(flags.dims) +
                  " alpha=0.05 128-distinct";
  if (!streamed.ok()) {
    result.identical = false;
    return result;
  }

  PrimResult ref, opt;
  result.reference_seconds = TimeBest(
      flags.reps, [&] { ref = RunPrim(*data, *data, sorted_config, index.get()); });
  result.optimized_seconds = TimeBest(flags.reps, [&] {
    opt = RunPrimStreamed(*streamed->index, streamed->y, sorted_config);
  });
  result.identical = SamePrimResult(ref, opt);
  return result;
}

// Grid-valued sampler: every sampled column has `distinct` values, keeping
// the REDS streamed-vs-materialized pair in the exact-pack regime where
// the results must match bit for bit.
sampling::PointSampler GridSampler(int distinct) {
  return [distinct](Rng* rng, int dim, double* out) {
    for (int j = 0; j < dim; ++j) {
      out[j] = static_cast<double>(rng->UniformInt(
                   static_cast<uint64_t>(distinct))) /
               distinct;
    }
  };
}

// --- REDS relabeling: materialize L labeled points + exact quantization ---
// vs the streamed pipeline (generator source -> two-pass sketch build).
// The metamodel is prefit and shared through the provider hook, so the
// timing isolates sampling + labeling + indexing -- the part the streamed
// plan restructures. Codes must match bit for bit (128-distinct grid).
KernelResult BenchRedsRelabelStreamed(const PerfFlags& flags) {
  KernelResult result;
  result.name = "reds_relabel_streamed";
  const Dataset train = RandomData(flags.n_train / 4, flags.dims,
                                   flags.seed + 10, /*distinct=*/64);
  const auto prefit = std::shared_ptr<const ml::Metamodel>(
      ml::FitDefault(ml::MetamodelKind::kGbt, train, flags.seed + 11));
  RedsConfig config;
  config.tune_metamodel = false;
  config.num_new_points = flags.l_points;
  config.sampler = GridSampler(128);
  config.metamodel_provider = [prefit](const Dataset&, ml::MetamodelKind,
                                       bool, ml::TuningBudget,
                                       ml::SplitBackend, ml::GrowthPolicy,
                                       int, uint64_t) {
    return prefit;
  };
  result.detail = "L=" + std::to_string(flags.l_points) +
                  " d=" + std::to_string(flags.dims) + " 128-distinct";

  std::shared_ptr<const BinnedIndex> exact;
  result.reference_seconds = TimeBest(flags.reps, [&] {
    const RedsRelabeling r = RedsRelabel(train, config, flags.seed + 12);
    exact = BinnedIndex::Build(r.new_data);
  });
  Result<StreamedDataset> streamed = Status::RuntimeError("not run");
  result.optimized_seconds = TimeBest(flags.reps, [&] {
    RedsStreamedRelabeling r =
        RedsRelabelStreamed(train, config, flags.seed + 12);
    streamed = BinnedIndex::BuildStreamed(r.new_data.get());
  });
  result.identical = streamed.ok();
  for (int j = 0; j < flags.dims && result.identical; ++j) {
    result.identical = exact->codes(j) == streamed->index->codes(j);
  }
  return result;
}

// --- End-to-end REDS discovery ("RPx"): the materialized data plan vs ----
// the streamed one inside RunMethod itself (metamodel fit + relabel +
// index + peel). On grid-sampled points both plans must discover the
// identical box sequence.
KernelResult BenchMethodRedsStreamed(const PerfFlags& flags) {
  KernelResult result;
  result.name = "method_reds_streamed_e2e";
  const Dataset train = RandomData(flags.n_train / 4, flags.dims,
                                   flags.seed + 13, /*distinct=*/64);
  RunOptions options;
  options.l_prim = flags.l_points;
  options.tune_metamodel = false;
  options.sampler = GridSampler(128);
  options.seed = flags.seed + 14;
  result.detail = "RPx N=" + std::to_string(flags.n_train / 4) +
                  " L=" + std::to_string(flags.l_points) +
                  " d=" + std::to_string(flags.dims) + " 128-distinct";
  const auto spec = MethodSpec::Parse("RPx");

  MethodOutput ref, opt;
  RunOptions materialized = options;
  materialized.data_plan = MethodDataPlan::kMaterialized;
  result.reference_seconds = TimeBest(
      flags.reps, [&] { ref = RunMethod(*spec, train, materialized); });
  RunOptions streamed = options;
  streamed.data_plan = MethodDataPlan::kStreamed;
  result.optimized_seconds = TimeBest(
      flags.reps, [&] { opt = RunMethod(*spec, train, streamed); });
  result.identical = ref.trajectory.size() == opt.trajectory.size() &&
                     ref.last_box == opt.last_box;
  for (size_t i = 0; i < ref.trajectory.size() && result.identical; ++i) {
    result.identical = ref.trajectory[i] == opt.trajectory[i];
  }
  return result;
}

// --- Observability overhead: the streamed PRIM peel loop undecorated vs --
// the identical loop under a bound Trace + MetricsRegistry (every span it
// opens is recorded and fed into stage histograms -- the engine's traced
// configuration). The delta is what instrumentation costs; the budget is
// 1% of kernel time, with sub-2ms deltas written off as timer jitter.
// Results must stay bit-identical: observation must never perturb the
// computation.
KernelResult BenchMetricsOverhead(const PerfFlags& flags) {
  KernelResult result;
  result.name = "metrics_overhead";
  result.approximate = true;
  result.quality_tolerance = 0.01;
  const auto data = std::make_shared<Dataset>(
      RandomData(flags.l_points, flags.dims, flags.seed, /*distinct=*/128));
  MatrixSource source(data);
  auto streamed = BinnedIndex::BuildStreamed(&source);
  PrimConfig config;
  config.alpha = 0.05;
  config.backend = PrimPeelBackend::kSorted;
  const int passes = flags.quick ? 4 : 6;
  result.detail = "L=" + std::to_string(flags.l_points) +
                  " d=" + std::to_string(flags.dims) + " passes=" +
                  std::to_string(passes) + " traced-vs-untraced";
  if (!streamed.ok()) {
    result.identical = false;
    result.quality_delta = 1.0;
    return result;
  }

  PrimResult ref, opt;
  result.reference_seconds = TimeBest(flags.reps, [&] {
    for (int p = 0; p < passes; ++p) {
      ref = RunPrimStreamed(*streamed->index, streamed->y, config);
    }
  });
  obs::MetricsRegistry registry;
  result.optimized_seconds = TimeBest(flags.reps, [&] {
    obs::Trace trace("bench-metrics-overhead", &registry);
    obs::TraceBinding binding(&trace);
    for (int p = 0; p < passes; ++p) {
      opt = RunPrimStreamed(*streamed->index, streamed->y, config);
    }
  });
  result.identical = SamePrimResult(ref, opt);
  const double delta = result.optimized_seconds - result.reference_seconds;
  result.quality_delta = delta <= 0.002 || result.reference_seconds <= 0.0
                             ? 0.0
                             : delta / result.reference_seconds;
  return result;
}

KernelResult BenchBi(const PerfFlags& flags) {
  KernelResult result;
  result.name = "bi_search";
  // BI runs on the smaller L (paper: l_bi = 10k).
  const int n = std::max(200, flags.l_points / 10);
  const Dataset d = RandomData(n, flags.dims, flags.seed + 7);
  BiConfig config;
  result.detail = "L=" + std::to_string(n) + " d=" +
                  std::to_string(flags.dims) + " beam=1";

  BiResult ref, opt;
  result.reference_seconds =
      TimeBest(flags.reps, [&] { ref = RunBiReference(d, config); });
  result.optimized_seconds =
      TimeBest(flags.reps, [&] { opt = RunBi(d, config); });
  result.identical = ref.box == opt.box;
  return result;
}

// --- CV tuning fold plans: the materialized reference (SubsetRows copies --
// one training matrix + one fold index per grid evaluation) vs the
// streamed plan (row views over a single shared full-data index, O(one
// fold) extra residency). Presorted backend keeps the fold views exact, so
// the winning cell, the refit model, and every probe prediction must be
// bit-identical -- the speedup is a bonus on top of the residency win the
// memory smoke asserts separately.
KernelResult BenchTuningStreamedFolds(const PerfFlags& flags) {
  KernelResult result;
  result.name = "tuning_streamed_folds";
  const int n = flags.quick ? flags.n_train : 2500;
  const Dataset d = RandomData(n, flags.dims, flags.seed + 15);
  const Dataset probe = RandomData(256, flags.dims, flags.seed + 16);
  ml::TuningConfig materialized;
  materialized.folds = 3;
  materialized.fold_plan = ml::CvFoldPlan::kMaterialized;
  ml::TuningConfig streamed = materialized;
  streamed.fold_plan = ml::CvFoldPlan::kStreamed;
  result.detail = "gbt n=" + std::to_string(n) +
                  " d=" + std::to_string(flags.dims) + " folds=3 grid=4";

  std::unique_ptr<ml::Metamodel> ref, opt;
  result.reference_seconds = TimeBest(flags.reps, [&] {
    ref = ml::TuneAndFit(ml::MetamodelKind::kGbt, d, flags.seed + 17,
                         materialized);
  });
  result.optimized_seconds = TimeBest(flags.reps, [&] {
    opt = ml::TuneAndFit(ml::MetamodelKind::kGbt, d, flags.seed + 17,
                         streamed);
  });
  result.identical = ref != nullptr && opt != nullptr;
  for (int i = 0; i < probe.num_rows() && result.identical; ++i) {
    result.identical =
        ref->PredictProb(probe.row(i)) == opt->PredictProb(probe.row(i));
  }
  return result;
}

// --- GBT growth policies: depth-wise depth-8 trees (up to 255 leaves per --
// round) vs leaf-wise growth capped at 64 best-gain leaves. Best-first
// expansion spends its leaf budget where the gain is, so the capped tree
// matches the deeper one on held-out loss while expanding ~4x fewer
// nodes -- the quality delta is measured on a held-out probe, not the
// training set, precisely because the extra depth-wise leaves buy mostly
// memorization.
KernelResult BenchGbtLeafwise(const PerfFlags& flags) {
  KernelResult result;
  result.name = "gbt_leafwise";
  result.approximate = true;
  result.quality_tolerance = 0.1;
  const int n = flags.quick ? flags.l_points : 100000;
  const Dataset d = RandomData(n, flags.dims, flags.seed + 18);
  const Dataset probe = RandomData(4096, flags.dims, flags.seed + 19);
  ml::GbtConfig depth_wise;
  depth_wise.num_rounds = flags.quick ? 20 : 50;
  depth_wise.max_depth = 8;
  depth_wise.backend = ml::SplitBackend::kHistogram;
  ml::GbtConfig leaf_wise = depth_wise;
  leaf_wise.growth = ml::GrowthPolicy::kLeafWise;
  leaf_wise.max_leaves = 64;
  result.detail = "n=" + std::to_string(n) +
                  " d=" + std::to_string(flags.dims) +
                  " rounds=" + std::to_string(depth_wise.num_rounds) +
                  " depth8-vs-64leaf";

  const auto index = ColumnIndex::Build(d);
  const auto binned = BinnedIndex::Build(*index);
  ml::GradientBoostedTrees ref(depth_wise), opt(leaf_wise);
  result.reference_seconds = TimeBest(flags.reps, [&] {
    ref.Fit(d, flags.seed + 20, index.get(), binned.get());
  });
  result.optimized_seconds = TimeBest(flags.reps, [&] {
    opt.Fit(d, flags.seed + 20, index.get(), binned.get());
  });
  result.quality_delta =
      std::fabs(TrainLogLoss(ref, probe) - TrainLogLoss(opt, probe));
  result.identical = result.quality_delta == 0.0;
  return result;
}

// --- Engine serving path: a burst of identical REDS requests against a ----
// cold engine with single-flight coalescing off (every duplicate re-walks
// the cache tiers and re-runs its own discovery) vs on (one leader does
// the work once; duplicates only re-evaluate their own metrics against the
// shared output). Every handle in both runs must report the same final
// box.
KernelResult BenchEngineCoalescedBatch(const PerfFlags& flags) {
  KernelResult result;
  result.name = "engine_coalesced_batch";
  const int burst = 8;
  const auto train = std::make_shared<const Dataset>(
      RandomData(flags.n_train / 4, flags.dims, flags.seed + 21));
  RunOptions options;
  options.l_prim = flags.l_points;
  options.tune_metamodel = false;
  options.seed = flags.seed + 22;
  result.detail = "RPx x" + std::to_string(burst) +
                  " L=" + std::to_string(flags.l_points) +
                  " threads=" + std::to_string(flags.threads);

  const auto run_burst = [&](bool coalesce, Box* last_box) {
    engine::EngineConfig config;
    config.threads = flags.threads;
    config.enable_persistent_cache = false;
    config.coalesce_requests = coalesce;
    engine::DiscoveryEngine engine(config);
    std::vector<engine::JobHandle> jobs;
    for (int i = 0; i < burst; ++i) {
      engine::DiscoveryRequest request;
      request.train = train;
      request.method = "RPx";
      request.options = options;
      jobs.push_back(engine.Submit(std::move(request)));
    }
    engine.WaitAll();
    bool same = true;
    for (const engine::JobHandle& job : jobs) {
      same = same && job->state() == engine::JobState::kDone &&
             job->output().last_box == jobs.front()->output().last_box;
    }
    *last_box = jobs.front()->output().last_box;
    return same;
  };

  Box ref_box, opt_box;
  bool agree = true;
  result.reference_seconds = TimeBest(
      flags.reps, [&] { agree = run_burst(false, &ref_box) && agree; });
  result.optimized_seconds = TimeBest(
      flags.reps, [&] { agree = run_burst(true, &opt_box) && agree; });
  result.identical = agree && ref_box == opt_box;
  return result;
}

// --- Serving over the wire: the socket tax on a warm request. The same ---
// warm eager RPx request submitted straight into the engine (reference)
// vs through DiscoveryServer's epoll loop over a unix socket (optimized
// column = full wire roundtrip: encode, decode pool, admission, epoll
// write-back). Speedup < 1 IS the measurement -- it bounds the serving
// overhead -- and the wire answer must match the in-process box exactly.
KernelResult BenchNetWarmRoundtrip(const PerfFlags& flags) {
  KernelResult result;
  result.name = "net_warm_roundtrip";
  result.detail = "RPx warm L=" + std::to_string(flags.l_points) +
                  " d=" + std::to_string(flags.dims) + " unix-socket";

  engine::EngineConfig engine_config;
  engine_config.threads = flags.threads;
  engine_config.enable_persistent_cache = false;
  engine::DiscoveryEngine engine(engine_config);
  net::ServerConfig server_config;
  server_config.address =
      "unix:/tmp/reds_bench_warm_" + std::to_string(::getpid()) + ".sock";
  // Result cache off: this kernel bounds the socket tax on a real warm
  // *engine* run, so the repeats must reach the engine, not replay.
  server_config.result_cache_entries = 0;
  net::DiscoveryServer server(&engine, server_config);
  if (!server.Start().ok()) {
    result.identical = false;
    return result;
  }
  net::NetClient client;
  if (!client.Connect(server.address()).ok() ||
      !client.Hello("bench_perf_kernels").ok()) {
    result.identical = false;
    return result;
  }

  uint64_t next_id = 1;
  net::SubmitRequest wire =
      net::MakeSubmit(0, "RPx", net::DataMode::kEager, flags.n_train,
                      flags.dims, flags.seed + 23, 0.05, flags.l_points);
  const auto wire_once = [&]() -> Box {
    net::SubmitRequest request = wire;
    request.request_id = next_id++;
    auto outcome = client.Submit(request);
    auto reply = client.WaitResult(request.request_id);
    if (!outcome.ok() || !reply.ok() || reply->done.failed) return Box();
    return reply->done.last_box;
  };

  // The exact dataset the server materializes from the spec, for the
  // in-process run.
  auto source = shard::MakeSource(wire.source, 1, 0);
  const auto train = std::make_shared<const Dataset>(
      std::move(ReadAll(source->get(), wire.source.block_rows).value()));
  const auto direct_once = [&]() -> Box {
    engine::DiscoveryRequest request;
    request.train = train;
    request.method = wire.method;
    request.options.default_alpha = wire.alpha;
    request.options.min_points = wire.min_points;
    request.options.l_prim = wire.l_prim;
    request.options.seed = wire.options_seed;
    request.options.tune_metamodel = false;
    engine::JobHandle job = engine.Submit(std::move(request));
    job->Wait();
    return job->state() == engine::JobState::kDone ? job->output().last_box
                                                   : Box();
  };

  Box warm_box = wire_once();  // cold pass: warm every cache, untimed
  Box direct_box = warm_box, wire_box = warm_box;
  result.reference_seconds =
      TimeBest(flags.reps, [&] { direct_box = direct_once(); });
  result.optimized_seconds =
      TimeBest(flags.reps, [&] { wire_box = wire_once(); });
  result.identical = wire_box.dim() > 0 && wire_box == direct_box &&
                     wire_box == warm_box;
  return result;
}

// --- Serving over the wire: concurrency past one connection. The same ----
// warm request set issued one-at-a-time on a single connection
// (reference) vs pipelined from several client threads at once
// (optimized). Identical completed specs replay from the result cache and
// identical in-flight specs coalesce, so concurrent clients scale
// throughput instead of re-running discoveries; every reply must carry
// the serial run's box.
KernelResult BenchNetSaturationThroughput(const PerfFlags& flags) {
  KernelResult result;
  result.name = "net_saturation_throughput";
  const int total = flags.quick ? 24 : 64;
  const int clients = std::min(8, std::max(2, flags.threads));
  const int pool = 4;  // distinct specs cycled through the request stream
  result.detail = "RPx x" + std::to_string(total) + " pool=" +
                  std::to_string(pool) + " conns=" + std::to_string(clients);

  engine::EngineConfig engine_config;
  engine_config.threads = flags.threads;
  engine_config.enable_persistent_cache = false;
  engine::DiscoveryEngine engine(engine_config);
  net::ServerConfig server_config;
  server_config.address =
      "unix:/tmp/reds_bench_sat_" + std::to_string(::getpid()) + ".sock";
  net::DiscoveryServer server(&engine, server_config);
  if (!server.Start().ok()) {
    result.identical = false;
    return result;
  }

  const auto spec_for = [&](int slot) {
    return net::MakeSubmit(0, "RPx", net::DataMode::kEager,
                           flags.n_train / 2, flags.dims,
                           flags.seed + 31 + static_cast<uint64_t>(slot),
                           0.05, flags.l_points);
  };

  // Warm pass, untimed: one run per distinct spec fills every cache and
  // records the reference box each later reply must reproduce.
  std::vector<Box> expected;
  {
    net::NetClient client;
    if (!client.Connect(server.address()).ok() ||
        !client.Hello("warmup").ok()) {
      result.identical = false;
      return result;
    }
    for (int slot = 0; slot < pool; ++slot) {
      net::SubmitRequest request = spec_for(slot);
      request.request_id = static_cast<uint64_t>(slot) + 1;
      if (!client.Submit(request).ok()) {
        result.identical = false;
        return result;
      }
      auto reply = client.WaitResult(request.request_id);
      if (!reply.ok() || reply->done.failed) {
        result.identical = false;
        return result;
      }
      expected.push_back(reply->done.last_box);
    }
  }

  std::atomic<bool> agree{true};
  const auto run_span = [&](net::NetClient* client, uint64_t id_base,
                            int begin, int end) {
    // Pipelined: submit the whole span, then collect -- in-flight depth is
    // the span length, which is what saturates the loop.
    for (int i = begin; i < end; ++i) {
      net::SubmitRequest request = spec_for(i % pool);
      request.request_id = id_base + static_cast<uint64_t>(i);
      auto outcome = client->Submit(request);
      if (!outcome.ok() ||
          outcome->kind != net::SubmitOutcome::Kind::kAdmitted) {
        agree = false;
        return;
      }
    }
    for (int i = begin; i < end; ++i) {
      auto reply = client->WaitResult(id_base + static_cast<uint64_t>(i));
      if (!reply.ok() || reply->done.failed ||
          !(reply->done.last_box == expected[i % pool])) {
        agree = false;
        return;
      }
    }
  };

  result.reference_seconds = TimeBest(flags.reps, [&] {
    net::NetClient client;
    if (!client.Connect(server.address()).ok() ||
        !client.Hello("serial").ok()) {
      agree = false;
      return;
    }
    for (int i = 0; i < total; ++i) {  // strictly one in flight
      run_span(&client, 1000, i, i + 1);
    }
  });
  result.optimized_seconds = TimeBest(flags.reps, [&] {
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        net::NetClient client;
        if (!client.Connect(server.address()).ok() ||
            !client.Hello("conn" + std::to_string(c)).ok()) {
          agree = false;
          return;
        }
        const int per = (total + clients - 1) / clients;
        run_span(&client, 100000ull * static_cast<uint64_t>(c + 1),
                 c * per, std::min(total, (c + 1) * per));
      });
    }
    for (auto& t : threads) t.join();
  });
  result.identical = agree.load();
  return result;
}

void WriteJson(const PerfFlags& flags, const std::vector<KernelResult>& results,
               std::FILE* stream) {
  std::fprintf(stream, "{\n");
  std::fprintf(stream, "  \"bench\": \"bench_perf_kernels\",\n");
  std::fprintf(stream, "  \"mode\": \"%s\",\n", flags.quick ? "quick" : "full");
  std::fprintf(stream,
               "  \"config\": {\"n_train\": %d, \"l_points\": %d, \"dims\": "
               "%d, \"reps\": %d, \"threads\": %d, \"seed\": %llu, "
               "\"simd\": \"%s\"},\n",
               flags.n_train, flags.l_points, flags.dims, flags.reps,
               flags.threads, static_cast<unsigned long long>(flags.seed),
               util::SimdLevelName(util::ActiveSimdLevel()));
  std::fprintf(stream, "  \"kernels\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const KernelResult& r = results[i];
    std::fprintf(stream,
                 "    {\"name\": \"%s\", \"detail\": \"%s\", "
                 "\"reference_seconds\": %.6f, \"optimized_seconds\": %.6f, "
                 "\"speedup\": %.3f, \"identical\": %s, \"approximate\": %s, "
                 "\"quality_delta\": %.6f, \"quality_tolerance\": %.3f, "
                 "\"ok\": %s}%s\n",
                 r.name.c_str(), r.detail.c_str(), r.reference_seconds,
                 r.optimized_seconds, r.Speedup(),
                 r.identical ? "true" : "false",
                 r.approximate ? "true" : "false", r.quality_delta,
                 r.quality_tolerance, r.Ok() ? "true" : "false",
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(stream, "  ]\n}\n");
}

// Minimal extraction of {name -> optimized_seconds} from a JSON file this
// harness wrote earlier (one kernel object per line).
bool LoadReferenceTimings(const std::string& path,
                          std::vector<std::pair<std::string, double>>* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    const size_t name_key = line.find("\"name\": \"");
    if (name_key == std::string::npos) continue;
    const size_t name_begin = name_key + std::strlen("\"name\": \"");
    const size_t name_end = line.find('"', name_begin);
    if (name_end == std::string::npos) continue;
    const size_t opt_key = line.find("\"optimized_seconds\": ");
    if (opt_key == std::string::npos) continue;
    const double seconds =
        std::atof(line.c_str() + opt_key +
                  std::strlen("\"optimized_seconds\": "));
    out->emplace_back(line.substr(name_begin, name_end - name_begin), seconds);
  }
  return !out->empty();
}

// Regression gate: every kernel in the committed reference must be present
// and not slower than tolerance x its reference timing (plus a small
// absolute slack -- smoke timings are milliseconds and jittery).
bool CheckAgainstReference(const PerfFlags& flags,
                           const std::vector<KernelResult>& results) {
  std::vector<std::pair<std::string, double>> reference;
  if (!LoadReferenceTimings(flags.check_against, &reference)) {
    std::fprintf(stderr, "cannot read reference timings from %s\n",
                 flags.check_against.c_str());
    return false;
  }
  constexpr double kAbsoluteSlack = 0.05;  // seconds
  bool ok = true;
  for (const auto& [name, ref_seconds] : reference) {
    const KernelResult* current = nullptr;
    for (const KernelResult& r : results) {
      if (r.name == name) {
        current = &r;
        break;
      }
    }
    if (current == nullptr) {
      std::fprintf(stderr, "CHECK FAIL: kernel %s missing from this run\n",
                   name.c_str());
      ok = false;
      continue;
    }
    const double limit = ref_seconds * flags.check_tolerance + kAbsoluteSlack;
    if (current->optimized_seconds > limit) {
      std::fprintf(stderr,
                   "CHECK FAIL: %s took %.3fs, reference %.3fs "
                   "(limit %.3fs at %.1fx)\n",
                   name.c_str(), current->optimized_seconds, ref_seconds,
                   limit, flags.check_tolerance);
      ok = false;
    } else {
      std::printf("check ok: %-26s %.3fs <= %.3fs\n", name.c_str(),
                  current->optimized_seconds, limit);
    }
  }
  return ok;
}

// CPU time of the calling thread; excludes time blocked on I/O or
// preempted by other threads.
double ThreadCpuSeconds() {
  timespec ts;
  ::clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

// --- Sharded discovery: the full single-process streamed pipeline ------
// (generate + quantize + peel) vs a W-worker fleet over the same synthetic
// stream. Workers run in-process over socketpairs, but each generates,
// sketches and codes only its 1/W block stride -- the mechanism the
// multi-process topology scales by -- while the coordinator folds their
// summaries and drives one round trip per applied peel. Exact-pack data
// (distinct values under the bin cap), so the fleet's boxes must match the
// single-process run bit for bit.
//
// Timing is the thread-CPU critical path, not wall clock: the fleet side
// reports max(worker CPU) + coordinator CPU. In the real topology the
// workers are independent processes on their own cores, so the critical
// path IS the wall time of an unloaded >=W-core host -- while wall clock
// measured here would only report how many cores this particular machine
// (often a 1-2 core CI container) happens to have. CPU clocks exclude
// blocked time, so the coordinator's waits on worker replies don't
// double-count the work it is waiting for.
KernelResult BenchShardScaling(const PerfFlags& flags) {
  KernelResult result;
  result.name = "shard_scaling";
  const int workers = std::max(2, flags.threads);
  shard::SourceSpec spec;
  spec.kind = shard::SourceSpec::Kind::kSynthetic;
  spec.block_rows = 8192;
  spec.rows = flags.quick ? 200000 : 10000000;  // the L=10M target shape
  spec.dims = flags.dims;
  spec.distinct = 48;
  spec.seed = flags.seed;
  result.detail = "L=" + std::to_string(spec.rows) +
                  " d=" + std::to_string(spec.dims) +
                  " workers=" + std::to_string(workers) + " critical-path";
  StreamedBuildOptions build_options;
  build_options.block_rows = spec.block_rows;
  PrimConfig config;
  config.alpha = 0.05;
  config.min_points = 20;

  PrimResult ref, opt;
  result.reference_seconds = 1e300;
  for (int rep = 0; rep < flags.reps; ++rep) {
    const double cpu0 = ThreadCpuSeconds();
    shard::SyntheticBlockSource source(spec, 1, 0);
    const Result<StreamedDataset> data =
        BinnedIndex::BuildStreamed(&source, build_options);
    if (!data.ok()) {
      std::fprintf(stderr, "shard_scaling reference: %s\n",
                   data.status().ToString().c_str());
      std::exit(1);
    }
    ref = RunPrimStreamed(*data->index, data->y, config);
    result.reference_seconds =
        std::min(result.reference_seconds, ThreadCpuSeconds() - cpu0);
  }

  result.optimized_seconds = 1e300;
  for (int rep = 0; rep < flags.reps; ++rep) {
    std::vector<int> coordinator_fds, worker_fds;
    for (int w = 0; w < workers; ++w) {
      int sv[2];
      if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
        std::perror("socketpair");
        std::exit(1);
      }
      coordinator_fds.push_back(sv[0]);
      worker_fds.push_back(sv[1]);
    }
    std::vector<std::thread> threads;
    std::vector<Status> statuses(static_cast<size_t>(workers));
    std::vector<double> worker_cpu(static_cast<size_t>(workers), 0.0);
    for (int w = 0; w < workers; ++w) {
      threads.emplace_back([&, w] {
        shard::SyntheticBlockSource source(spec, workers, w);
        statuses[static_cast<size_t>(w)] =
            shard::RunShardWorker(worker_fds[static_cast<size_t>(w)],
                                  &source);
        worker_cpu[static_cast<size_t>(w)] = ThreadCpuSeconds();
      });
    }
    const double coordinator_cpu0 = ThreadCpuSeconds();
    shard::ShardCoordinator coordinator(coordinator_fds, build_options);
    Status s = coordinator.BuildGlobalBins();
    if (s.ok()) {
      Result<PrimResult> r = coordinator.RunPrim(config);
      if (r.ok()) {
        opt = *std::move(r);
      } else {
        s = r.status();
      }
    }
    coordinator.Shutdown();
    const double coordinator_cpu = ThreadCpuSeconds() - coordinator_cpu0;
    for (std::thread& t : threads) t.join();
    for (int fd : coordinator_fds) ::close(fd);
    for (int fd : worker_fds) ::close(fd);
    for (const Status& ws : statuses) {
      if (!ws.ok()) s = ws;
    }
    if (!s.ok()) {
      std::fprintf(stderr, "shard_scaling fleet: %s\n",
                   s.ToString().c_str());
      result.identical = false;
    }
    const double slowest_worker =
        *std::max_element(worker_cpu.begin(), worker_cpu.end());
    result.optimized_seconds = std::min(result.optimized_seconds,
                                        slowest_worker + coordinator_cpu);
  }
  result.identical = result.identical && SamePrimResult(ref, opt);
  return result;
}

}  // namespace
}  // namespace reds

int main(int argc, char** argv) {
  using namespace reds;
  const PerfFlags flags = ParseFlags(argc, argv);

  std::vector<KernelResult> results;
  std::printf("== bench_perf_kernels (%s mode) ==\n",
              flags.quick ? "quick" : "full");
  auto run = [&](KernelResult r) {
    std::printf("%-26s %-36s ref %8.3fs  opt %8.3fs  speedup %6.2fx  %s\n",
                r.name.c_str(), r.detail.c_str(), r.reference_seconds,
                r.optimized_seconds, r.Speedup(),
                r.approximate
                    ? (r.Ok() ? "quality ok" : "QUALITY MISMATCH")
                    : (r.identical ? "identical" : "MISMATCH"));
    std::fflush(stdout);
    results.push_back(std::move(r));
  };

  // Each kernel is wrapped in a thunk so --only can skip the (expensive)
  // setup of filtered-out kernels entirely, not just their report lines.
  auto maybe = [&](const char* name, auto make) {
    if (!flags.only.empty() &&
        std::string(name).find(flags.only) == std::string::npos) {
      return;
    }
    run(make());
  };
  maybe("prim_peel", [&] { return BenchPrimPeel(flags, /*paste=*/false); });
  maybe("prim_paste", [&] { return BenchPrimPeel(flags, /*paste=*/true); });
  maybe("prim_peel_binned",
        [&] { return BenchPrimBinned(flags, /*threads=*/1); });
  maybe("prim_peel_binned_parallel",
        [&] { return BenchPrimBinned(flags, flags.threads); });
  maybe("gbt_fit", [&] { return BenchGbtFit(flags, /*threads=*/1); });
  maybe("gbt_fit_parallel", [&] { return BenchGbtFit(flags, flags.threads); });
  maybe("gbt_fit_hist", [&] { return BenchGbtHist(flags, /*threads=*/1); });
  maybe("gbt_fit_hist_parallel",
        [&] { return BenchGbtHist(flags, flags.threads); });
  maybe("rf_fit", [&] { return BenchRfFit(flags); });
  maybe("rf_fit_hist", [&] { return BenchRfHist(flags); });
  maybe("bi_search", [&] { return BenchBi(flags); });
  maybe("hist_accumulate", [&] { return BenchHistAccumulate(flags); });
  maybe("hist_accumulate_q16", [&] { return BenchHistAccumulateQ16(flags); });
  maybe("binned_build_streamed",
        [&] { return BenchStreamedBuild(flags, /*threads=*/1); });
  maybe("binned_build_streamed_parallel",
        [&] { return BenchStreamedBuild(flags, flags.threads); });
  maybe("prim_peel_streamed", [&] { return BenchPrimStreamed(flags); });
  maybe("reds_relabel_streamed",
        [&] { return BenchRedsRelabelStreamed(flags); });
  maybe("method_reds_streamed_e2e",
        [&] { return BenchMethodRedsStreamed(flags); });
  maybe("metrics_overhead", [&] { return BenchMetricsOverhead(flags); });
  maybe("tuning_streamed_folds",
        [&] { return BenchTuningStreamedFolds(flags); });
  maybe("gbt_leafwise", [&] { return BenchGbtLeafwise(flags); });
  maybe("engine_coalesced_batch",
        [&] { return BenchEngineCoalescedBatch(flags); });
  maybe("shard_scaling", [&] { return BenchShardScaling(flags); });
  maybe("net_warm_roundtrip", [&] { return BenchNetWarmRoundtrip(flags); });
  maybe("net_saturation_throughput",
        [&] { return BenchNetSaturationThroughput(flags); });

  bool all_ok = true;
  for (const auto& r : results) all_ok = all_ok && r.Ok();

  if (!flags.metrics_out.empty()) {
    // The run as a MetricsRegistry dump: per-kernel latency histograms plus
    // pass/fail counters, in the same JSON shape DiscoveryEngine::
    // DumpMetrics emits -- one parser serves both.
    obs::MetricsRegistry registry;
    for (const auto& r : results) {
      registry.histogram("bench." + r.name + ".reference_ns")
          ->Observe(static_cast<uint64_t>(r.reference_seconds * 1e9));
      registry.histogram("bench." + r.name + ".optimized_ns")
          ->Observe(static_cast<uint64_t>(r.optimized_seconds * 1e9));
      registry.counter("bench.kernels.total")->Add(1);
      if (r.Ok()) registry.counter("bench.kernels.ok")->Add(1);
    }
    std::FILE* f = std::fopen(flags.metrics_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", flags.metrics_out.c_str());
      return 1;
    }
    const std::string json = registry.ToJson();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", flags.metrics_out.c_str());
  }

  if (!flags.out.empty()) {
    std::FILE* f = std::fopen(flags.out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", flags.out.c_str());
      return 1;
    }
    WriteJson(flags, results, f);
    std::fclose(f);
    std::printf("wrote %s\n", flags.out.c_str());
  } else {
    WriteJson(flags, results, stdout);
  }
  if (!all_ok) {
    std::fprintf(stderr, "ERROR: a kernel diverged from its reference\n");
    return 1;
  }
  if (!flags.check_against.empty() &&
      !CheckAgainstReference(flags, results)) {
    std::fprintf(stderr, "ERROR: smoke timings regressed past tolerance\n");
    return 1;
  }
  return 0;
}
