// Perf-regression harness for the columnar hot paths: times the reference
// scalar kernels against the sorted-index/presorted implementations on the
// paper-scale shapes (PRIM peeling over L relabeled points, GBT/RF
// metamodel fits on the train matrix, BI beam search) and emits
// machine-readable JSON, establishing the BENCH_*.json trajectory.
//
//   bench_perf_kernels            # paper scale: n=10k, L=100k, d=10
//   bench_perf_kernels --quick    # CI smoke: tiny sizes, seconds not minutes
//   bench_perf_kernels --out BENCH_pr2.json
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "core/best_interval.h"
#include "core/prim.h"
#include "ml/gbt.h"
#include "ml/random_forest.h"
#include "util/rng.h"

namespace reds {
namespace {

struct PerfFlags {
  bool quick = false;
  int n_train = 10000;   // metamodel training size (paper Fig. 9 scale)
  int l_points = 100000; // relabeled dataset size L
  int dims = 10;
  int reps = 3;          // timing repetitions; best is reported
  int threads = 4;       // for the *_parallel kernels
  uint64_t seed = 42;
  std::string out;       // JSON path; empty: stdout only
};

PerfFlags ParseFlags(int argc, char** argv) {
  PerfFlags flags;
  auto next_value = [&](int* i) -> const char* {
    if (*i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[*i]);
      std::exit(2);
    }
    return argv[++*i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      flags.quick = true;
    } else if (arg == "--full") {
      flags.quick = false;
    } else if (arg == "--n") {
      flags.n_train = std::atoi(next_value(&i));
    } else if (arg == "--l") {
      flags.l_points = std::atoi(next_value(&i));
    } else if (arg == "--d") {
      flags.dims = std::atoi(next_value(&i));
    } else if (arg == "--reps") {
      flags.reps = std::atoi(next_value(&i));
    } else if (arg == "--threads") {
      flags.threads = std::atoi(next_value(&i));
    } else if (arg == "--seed") {
      flags.seed = static_cast<uint64_t>(std::atoll(next_value(&i)));
    } else if (arg == "--out") {
      flags.out = next_value(&i);
    } else if (arg == "--help") {
      std::printf(
          "usage: bench_perf_kernels [--quick|--full] [--n N] [--l L] "
          "[--d D] [--reps R] [--threads T] [--seed S] [--out file.json]\n");
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag %s (see --help)\n", arg.c_str());
      std::exit(2);
    }
  }
  if (flags.quick) {
    flags.n_train = 600;
    flags.l_points = 3000;
    flags.dims = 6;
    flags.reps = 1;
  }
  return flags;
}

Dataset RandomData(int n, int dim, uint64_t seed) {
  Rng rng(seed);
  Dataset d(dim);
  d.Reserve(n);
  std::vector<double> x(static_cast<size_t>(dim));
  for (int i = 0; i < n; ++i) {
    for (auto& v : x) v = rng.Uniform();
    const double p = (x[0] < 0.45 && x[1] > 0.3) ? 0.8 : 0.15;
    d.AddRow(x, rng.Bernoulli(p) ? 1.0 : 0.0);
  }
  return d;
}

struct KernelResult {
  std::string name;
  std::string detail;
  double reference_seconds = 0.0;
  double optimized_seconds = 0.0;
  bool identical = true;  // optimized output matched the reference

  double Speedup() const {
    return optimized_seconds > 0.0 ? reference_seconds / optimized_seconds
                                   : 0.0;
  }
};

// Best-of-reps wall time of fn().
double TimeBest(int reps, const std::function<void()>& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const double s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    best = std::min(best, s);
  }
  return best;
}

KernelResult BenchPrimPeel(const PerfFlags& flags, bool paste) {
  KernelResult result;
  result.name = paste ? "prim_paste" : "prim_peel";
  const Dataset d = RandomData(flags.l_points, flags.dims, flags.seed);
  PrimConfig config;
  config.alpha = 0.05;
  config.paste = paste;
  result.detail = "L=" + std::to_string(flags.l_points) +
                  " d=" + std::to_string(flags.dims) + " alpha=0.05" +
                  (paste ? " +pasting" : "");

  PrimResult ref, opt;
  result.reference_seconds =
      TimeBest(flags.reps, [&] { ref = RunPrimReference(d, d, config); });
  result.optimized_seconds =
      TimeBest(flags.reps, [&] { opt = RunPrim(d, d, config); });
  result.identical = ref.boxes.size() == opt.boxes.size() &&
                     ref.best_val_index == opt.best_val_index &&
                     ref.BestBox() == opt.BestBox();
  return result;
}

KernelResult BenchGbtFit(const PerfFlags& flags, int threads) {
  KernelResult result;
  result.name = threads > 1 ? "gbt_fit_parallel" : "gbt_fit";
  const Dataset d = RandomData(flags.n_train, flags.dims, flags.seed + 1);
  const Dataset probe = RandomData(256, flags.dims, flags.seed + 2);
  ml::GbtConfig config;
  config.num_rounds = flags.quick ? 20 : 100;
  config.max_depth = 4;
  result.detail = "n=" + std::to_string(flags.n_train) +
                  " d=" + std::to_string(flags.dims) +
                  " rounds=" + std::to_string(config.num_rounds) +
                  (threads > 1 ? " threads=" + std::to_string(threads) : "");

  ml::GbtConfig ref_config = config;
  ref_config.presorted = false;
  ml::GbtConfig opt_config = config;
  opt_config.threads = threads;

  ml::GradientBoostedTrees ref(ref_config), opt(opt_config);
  result.reference_seconds =
      TimeBest(flags.reps, [&] { ref.Fit(d, flags.seed + 3); });
  result.optimized_seconds =
      TimeBest(flags.reps, [&] { opt.Fit(d, flags.seed + 3); });
  for (int i = 0; i < probe.num_rows() && result.identical; ++i) {
    result.identical =
        ref.PredictMargin(probe.row(i)) == opt.PredictMargin(probe.row(i));
  }
  return result;
}

KernelResult BenchRfFit(const PerfFlags& flags) {
  KernelResult result;
  result.name = "rf_fit";
  const Dataset d = RandomData(flags.n_train, flags.dims, flags.seed + 4);
  const Dataset probe = RandomData(256, flags.dims, flags.seed + 5);
  ml::RandomForestConfig config;
  config.num_trees = flags.quick ? 10 : 50;
  result.detail = "n=" + std::to_string(flags.n_train) +
                  " d=" + std::to_string(flags.dims) +
                  " trees=" + std::to_string(config.num_trees);

  ml::RandomForestConfig ref_config = config;
  ref_config.presorted = false;
  ml::RandomForest ref(ref_config), opt(config);
  result.reference_seconds =
      TimeBest(flags.reps, [&] { ref.Fit(d, flags.seed + 6); });
  result.optimized_seconds =
      TimeBest(flags.reps, [&] { opt.Fit(d, flags.seed + 6); });
  for (int i = 0; i < probe.num_rows() && result.identical; ++i) {
    result.identical =
        ref.PredictProb(probe.row(i)) == opt.PredictProb(probe.row(i));
  }
  return result;
}

KernelResult BenchBi(const PerfFlags& flags) {
  KernelResult result;
  result.name = "bi_search";
  // BI runs on the smaller L (paper: l_bi = 10k).
  const int n = std::max(200, flags.l_points / 10);
  const Dataset d = RandomData(n, flags.dims, flags.seed + 7);
  BiConfig config;
  result.detail = "L=" + std::to_string(n) + " d=" +
                  std::to_string(flags.dims) + " beam=1";

  BiResult ref, opt;
  result.reference_seconds =
      TimeBest(flags.reps, [&] { ref = RunBiReference(d, config); });
  result.optimized_seconds =
      TimeBest(flags.reps, [&] { opt = RunBi(d, config); });
  result.identical = ref.box == opt.box;
  return result;
}

void WriteJson(const PerfFlags& flags, const std::vector<KernelResult>& results,
               std::FILE* stream) {
  std::fprintf(stream, "{\n");
  std::fprintf(stream, "  \"bench\": \"bench_perf_kernels\",\n");
  std::fprintf(stream, "  \"mode\": \"%s\",\n", flags.quick ? "quick" : "full");
  std::fprintf(stream,
               "  \"config\": {\"n_train\": %d, \"l_points\": %d, \"dims\": "
               "%d, \"reps\": %d, \"threads\": %d, \"seed\": %llu},\n",
               flags.n_train, flags.l_points, flags.dims, flags.reps,
               flags.threads, static_cast<unsigned long long>(flags.seed));
  std::fprintf(stream, "  \"kernels\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const KernelResult& r = results[i];
    std::fprintf(stream,
                 "    {\"name\": \"%s\", \"detail\": \"%s\", "
                 "\"reference_seconds\": %.6f, \"optimized_seconds\": %.6f, "
                 "\"speedup\": %.3f, \"identical\": %s}%s\n",
                 r.name.c_str(), r.detail.c_str(), r.reference_seconds,
                 r.optimized_seconds, r.Speedup(),
                 r.identical ? "true" : "false",
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(stream, "  ]\n}\n");
}

}  // namespace
}  // namespace reds

int main(int argc, char** argv) {
  using namespace reds;
  const PerfFlags flags = ParseFlags(argc, argv);

  std::vector<KernelResult> results;
  std::printf("== bench_perf_kernels (%s mode) ==\n",
              flags.quick ? "quick" : "full");
  auto run = [&](KernelResult r) {
    std::printf("%-18s %-36s ref %8.3fs  opt %8.3fs  speedup %6.2fx  %s\n",
                r.name.c_str(), r.detail.c_str(), r.reference_seconds,
                r.optimized_seconds, r.Speedup(),
                r.identical ? "identical" : "MISMATCH");
    std::fflush(stdout);
    results.push_back(std::move(r));
  };

  run(BenchPrimPeel(flags, /*paste=*/false));
  run(BenchPrimPeel(flags, /*paste=*/true));
  run(BenchGbtFit(flags, /*threads=*/1));
  run(BenchGbtFit(flags, flags.threads));
  run(BenchRfFit(flags));
  run(BenchBi(flags));

  bool all_identical = true;
  for (const auto& r : results) all_identical = all_identical && r.identical;

  if (!flags.out.empty()) {
    std::FILE* f = std::fopen(flags.out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", flags.out.c_str());
      return 1;
    }
    WriteJson(flags, results, f);
    std::fclose(f);
    std::printf("wrote %s\n", flags.out.c_str());
  } else {
    WriteJson(flags, results, stdout);
  }
  if (!all_identical) {
    std::fprintf(stderr, "ERROR: optimized kernel output diverged\n");
    return 1;
  }
  return 0;
}
