// Micro-benchmarks (google-benchmark) for the complexity claims of paper
// Section 7: PRIM peeling ~ O(M N (log N + 1/alpha)), BestIntervalWRAcc
// linear in N after sorting, metamodel training costs, and the substrate
// pieces (eigen solver, LHS, DSGC evaluation, REDS relabeling).
#include <benchmark/benchmark.h>

#include "core/best_interval.h"
#include "core/prim.h"
#include "core/reds.h"
#include "engine/discovery_engine.h"
#include "functions/dsgc.h"
#include "functions/registry.h"
#include "la/matrix.h"
#include "ml/gbt.h"
#include "ml/random_forest.h"
#include "ml/svm.h"
#include "sampling/design.h"
#include "util/rng.h"

namespace reds {
namespace {

Dataset RandomData(int n, int dim, uint64_t seed) {
  Rng rng(seed);
  Dataset d(dim);
  std::vector<double> x(static_cast<size_t>(dim));
  for (int i = 0; i < n; ++i) {
    for (auto& v : x) v = rng.Uniform();
    d.AddRow(x, rng.Bernoulli(x[0] < 0.4 ? 0.8 : 0.2) ? 1.0 : 0.0);
  }
  return d;
}

void BM_PrimPeel(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Dataset d = RandomData(n, 10, 1);
  PrimConfig config;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunPrim(d, d, config).boxes.size());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_PrimPeel)->Range(256, 16384)->Complexity(benchmark::oNLogN);

void BM_BestIntervalOneDim(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Dataset d = RandomData(n, 4, 2);
  const Box box = Box::Unbounded(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BestIntervalForDimension(d, box, 0).dim());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_BestIntervalOneDim)->Range(256, 32768)->Complexity(benchmark::oNLogN);

void BM_BiFull(benchmark::State& state) {
  const Dataset d = RandomData(static_cast<int>(state.range(0)), 8, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunBi(d, {}).wracc);
  }
}
BENCHMARK(BM_BiFull)->Range(256, 4096);

void BM_RandomForestFit(benchmark::State& state) {
  const Dataset d = RandomData(static_cast<int>(state.range(0)), 10, 4);
  ml::RandomForestConfig config;
  config.num_trees = 50;
  for (auto _ : state) {
    ml::RandomForest rf(config);
    rf.Fit(d, 5);
    benchmark::DoNotOptimize(rf.num_trees());
  }
}
BENCHMARK(BM_RandomForestFit)->Range(128, 1024);

void BM_GbtFit(benchmark::State& state) {
  const Dataset d = RandomData(static_cast<int>(state.range(0)), 10, 6);
  ml::GbtConfig config;
  config.num_rounds = 50;
  for (auto _ : state) {
    ml::GradientBoostedTrees gbt(config);
    gbt.Fit(d, 7);
    benchmark::DoNotOptimize(gbt.num_trees());
  }
}
BENCHMARK(BM_GbtFit)->Range(128, 1024);

void BM_SvmFit(benchmark::State& state) {
  const Dataset d = RandomData(static_cast<int>(state.range(0)), 10, 8);
  for (auto _ : state) {
    ml::SvmRbf svm;
    svm.Fit(d, 9);
    benchmark::DoNotOptimize(svm.num_support_vectors());
  }
}
BENCHMARK(BM_SvmFit)->Range(128, 512);

void BM_Eigenvalues15x15(benchmark::State& state) {
  Rng rng(10);
  la::Matrix a(15, 15);
  for (int r = 0; r < 15; ++r)
    for (int c = 0; c < 15; ++c) a(r, c) = rng.Normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::Eigenvalues(a)->size());
  }
}
BENCHMARK(BM_Eigenvalues15x15);

void BM_DsgcEvaluate(benchmark::State& state) {
  Rng rng(11);
  double x[12];
  for (auto _ : state) {
    for (auto& v : x) v = rng.Uniform();
    benchmark::DoNotOptimize(
        fun::DsgcSpectralAbscissa(fun::DsgcParamsFromUnitCube(x)));
  }
}
BENCHMARK(BM_DsgcEvaluate);

void BM_LatinHypercube(benchmark::State& state) {
  Rng rng(12);
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampling::LatinHypercube(n, 20, &rng).size());
  }
}
BENCHMARK(BM_LatinHypercube)->Range(256, 16384);

void BM_RedsRelabel(benchmark::State& state) {
  const Dataset d = RandomData(400, 10, 13);
  RedsConfig config;
  config.metamodel = ml::MetamodelKind::kGbt;
  config.tune_metamodel = false;
  config.num_new_points = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RedsRelabel(d, config, 14).new_data.num_rows());
  }
}
BENCHMARK(BM_RedsRelabel)->Range(1024, 32768);

// Discovery-engine batch of three REDS variants sharing one GBT metamodel
// ("RPx", "RPxp", "RBIx" on the same data). With the cache on, the
// metamodel is fit once and reused; with it off, every request fits its
// own. The ratio of these two benchmarks is the cache's amortization win.
void RunEngineThreeVariantBatch(benchmark::State& state,
                                bool cache_metamodels) {
  const auto d = std::make_shared<const Dataset>(RandomData(400, 10, 15));
  RunOptions options;
  options.l_prim = 4000;
  options.l_bi = 2000;
  options.tune_metamodel = false;
  for (auto _ : state) {
    engine::EngineConfig config;
    config.threads = 1;  // serialize so the fit cost is not hidden by cores
    config.cache_metamodels = cache_metamodels;
    // Measure real fits: a developer's REDS_CACHE_DIR must not turn the
    // uncached arm into warm disk loads.
    config.enable_persistent_cache = false;
    engine::DiscoveryEngine eng(config);
    for (const char* method : {"RPx", "RPxp", "RBIx"}) {
      engine::DiscoveryRequest request;
      request.train = d;
      request.method = method;
      request.options = options;
      eng.Submit(std::move(request));
    }
    eng.WaitAll();
    benchmark::DoNotOptimize(eng.metamodel_cache().fit_count());
  }
}

void BM_EngineBatch3VariantsUncached(benchmark::State& state) {
  RunEngineThreeVariantBatch(state, false);
}
BENCHMARK(BM_EngineBatch3VariantsUncached)->Unit(benchmark::kMillisecond);

void BM_EngineBatch3VariantsCached(benchmark::State& state) {
  RunEngineThreeVariantBatch(state, true);
}
BENCHMARK(BM_EngineBatch3VariantsCached)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace reds

BENCHMARK_MAIN();
