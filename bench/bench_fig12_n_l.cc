// Reproduces paper Figure 12: learning curves on "morris".
//   Left plots:  quality vs the number of simulations N (L fixed) for
//                P / Pc / RPx / RPxp (PR AUC) and BI / BIc / RBIcxp (WRAcc).
//   Right plots: quality vs the number of relabeled points L at N = 400.
// The key findings to reproduce: the REDS learning curves dominate the
// baselines, and "RPxp" beats "P" even at L = N = 400 (the Proposition 1
// effect of probability labels).
#include <cstdio>

#include "core/method.h"
#include "core/quality.h"
#include "exp/bench_flags.h"
#include "functions/datagen.h"
#include "functions/registry.h"
#include "stats/descriptive.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace reds::exp {
namespace {

struct Sweep {
  std::vector<int> values;     // N or L values
  std::vector<std::string> methods;
};

}  // namespace

int Main(int argc, char** argv) {
  const BenchFlags flags = ParseBenchFlags(argc, argv);
  const int reps = PickReps(flags, 3, 50);

  auto function = fun::MakeFunction("morris").value();
  const Dataset test = fun::MakeScenarioDataset(
      *function, flags.full ? 20000 : 8000, fun::DesignKind::kLatinHypercube,
      DeriveSeed(flags.seed, 1));

  const int default_l = flags.full ? 100000 : 20000;
  const std::vector<int> n_values = flags.full
                                        ? std::vector<int>{200, 400, 800, 1600, 3200}
                                        : std::vector<int>{200, 400, 800};
  const std::vector<int> l_values =
      flags.full ? std::vector<int>{400, 1600, 6400, 25000, 100000}
                 : std::vector<int>{400, 1600, 6400, 20000};

  auto run_one = [&](const std::string& method, int n, int l, int rep) {
    const Dataset train = fun::MakeScenarioDataset(
        *function, n, fun::DesignKind::kLatinHypercube,
        DeriveSeed(flags.seed, 100 + 7ULL * n + rep));
    RunOptions options;
    options.l_prim = l;
    options.l_bi = std::min(l, 10000);
    options.data_plan = flags.data_plan;
    options.tune_metamodel = flags.full;
    options.seed = DeriveSeed(flags.seed, 31ULL * n + 17ULL * l + rep);
    const MethodOutput out =
        RunMethod(*MethodSpec::Parse(method), train, options);
    const bool is_bi = method.find("BI") != std::string::npos;
    if (is_bi) return 100.0 * BoxWRAcc(test, out.last_box);
    return 100.0 * PrAucOnData(out.trajectory, test);
  };

  // --- Left plots: quality vs N. ---
  const std::vector<std::string> prim_methods{"P", "Pc", "RPx", "RPxp"};
  const std::vector<std::string> bi_methods{"BI", "BIc", "RBIcxp"};

  auto sweep_n = [&](const std::vector<std::string>& methods,
                     const char* title, const char* csv_name) {
    std::vector<std::vector<std::vector<double>>> results(
        methods.size(), std::vector<std::vector<double>>(
                            n_values.size(), std::vector<double>(reps)));
    ThreadPool pool(flags.threads);
    for (size_t mi = 0; mi < methods.size(); ++mi) {
      for (size_t ni = 0; ni < n_values.size(); ++ni) {
        for (int rep = 0; rep < reps; ++rep) {
          pool.Submit([&, mi, ni, rep] {
            results[mi][ni][static_cast<size_t>(rep)] =
                run_one(methods[mi], n_values[ni], default_l, rep);
          });
        }
      }
    }
    pool.Wait();
    TablePrinter table(title);
    std::vector<std::string> header{"N"};
    header.insert(header.end(), methods.begin(), methods.end());
    table.SetHeader(header);
    for (size_t ni = 0; ni < n_values.size(); ++ni) {
      std::vector<double> row;
      for (size_t mi = 0; mi < methods.size(); ++mi) {
        row.push_back(stats::Median(results[mi][ni]));
      }
      table.AddRow(std::to_string(n_values[ni]), row, 2);
    }
    table.Print();
    std::printf("\n");
    if (!flags.out_dir.empty()) {
      std::vector<std::string> csv_header{"n"};
      csv_header.insert(csv_header.end(), methods.begin(), methods.end());
      CsvWriter csv(csv_header);
      for (size_t ni = 0; ni < n_values.size(); ++ni) {
        std::vector<double> row{static_cast<double>(n_values[ni])};
        for (size_t mi = 0; mi < methods.size(); ++mi) {
          row.push_back(stats::Median(results[mi][ni]));
        }
        csv.AddRow(row);
      }
      (void)csv.WriteFile(flags.out_dir + "/" + csv_name);
    }
  };

  std::printf("Figure 12, left: learning curves on 'morris' (median of %d "
              "reps, L = %d)\n\n",
              reps, default_l);
  sweep_n(prim_methods, "median PR AUC vs N", "fig12_prim_n.csv");
  sweep_n(bi_methods, "median WRAcc vs N", "fig12_bi_n.csv");

  // --- Right plots: quality vs L at N = 400. ---
  std::printf("Figure 12, right: influence of L at N = 400\n\n");
  {
    std::vector<std::vector<std::vector<double>>> results(
        2, std::vector<std::vector<double>>(l_values.size(),
                                            std::vector<double>(reps)));
    std::vector<double> baseline(reps);
    ThreadPool pool(flags.threads);
    for (size_t li = 0; li < l_values.size(); ++li) {
      for (int rep = 0; rep < reps; ++rep) {
        pool.Submit([&, li, rep] {
          results[0][li][static_cast<size_t>(rep)] =
              run_one("RPx", 400, l_values[li], rep);
          results[1][li][static_cast<size_t>(rep)] =
              run_one("RPxp", 400, l_values[li], rep);
        });
      }
    }
    for (int rep = 0; rep < reps; ++rep) {
      pool.Submit([&, rep] { baseline[rep] = run_one("P", 400, 1, rep); });
    }
    pool.Wait();
    TablePrinter table("median PR AUC vs L (N = 400)");
    table.SetHeader({"L", "RPx", "RPxp"});
    for (size_t li = 0; li < l_values.size(); ++li) {
      table.AddRow(std::to_string(l_values[li]),
                   {stats::Median(results[0][li]), stats::Median(results[1][li])},
                   2);
    }
    table.Print();
    std::printf("baseline P (no REDS): median PR AUC %.2f\n",
                stats::Median(baseline));
    std::printf("\nNote RPxp at L = 400 = N already beats P -- probability "
                "labels lower the estimator variance (Proposition 1).\n");
  }
  return 0;
}

}  // namespace reds::exp

int main(int argc, char** argv) { return reds::exp::Main(argc, argv); }
