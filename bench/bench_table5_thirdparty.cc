// Reproduces paper Table 5 (+ Figure 13): scenario discovery from the
// third-party datasets "TGL" and "lake" with no simulation model available.
// Methods: Pc, RPf, RPfp; protocol: 5-fold cross-validation repeated 10
// times (quick mode: 3 repeats). Metrics: PR AUC, precision, consistency,
// #restricted -- all on the held-out folds. The paper's shape: REDS ("RPf",
// "RPfp") beats "Pc" on every metric, most dramatically on consistency.
#include <cstdio>

#include "core/method.h"
#include "core/quality.h"
#include "exp/bench_flags.h"
#include "functions/thirdparty.h"
#include "ml/tuning.h"
#include "stats/descriptive.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace reds::exp {
namespace {

struct FoldMetrics {
  double pr_auc = 0.0;
  double precision = 0.0;
  double restricted = 0.0;
  Box last_box;
};

FoldMetrics RunFold(const Dataset& train, const Dataset& holdout,
                    const std::string& method, double alpha, int l,
                    bool tune_metamodel, uint64_t seed) {
  RunOptions options;
  options.default_alpha = alpha;
  options.l_prim = l;
  options.tune_metamodel = tune_metamodel;
  options.seed = seed;
  const MethodOutput out =
      RunMethod(*MethodSpec::Parse(method), train, options);
  FoldMetrics metrics;
  metrics.pr_auc = 100.0 * PrAucOnData(out.trajectory, holdout);
  const BoxStats stats = ComputeBoxStats(holdout, out.last_box);
  metrics.precision = 100.0 * Precision(stats);
  metrics.restricted = out.last_box.NumRestricted();
  metrics.last_box = out.last_box;
  return metrics;
}

}  // namespace

int Main(int argc, char** argv) {
  const BenchFlags flags = ParseBenchFlags(argc, argv);
  const int repeats = PickReps(flags, 3, 10);
  const int folds = 5;
  const std::vector<std::string> methods{"Pc", "RPf", "RPfp"};

  const struct {
    const char* name;
    Dataset data;
    double alpha;  // the paper uses 0.1 for TGL, 0.05 elsewhere
  } datasets[] = {{"TGL", fun::MakeTglDataset(), 0.1},
                  {"lake", fun::MakeLakeDataset(), 0.05}};

  std::printf("Table 5 / Figure 13: third-party data, %d-fold CV x %d "
              "repeats\n\n",
              folds, repeats);

  for (const auto& ds : datasets) {
    const int n = ds.data.num_rows();
    std::vector<std::vector<double>> auc(methods.size());
    std::vector<std::vector<double>> precision(methods.size());
    std::vector<std::vector<double>> restricted(methods.size());
    std::vector<std::vector<Box>> boxes(methods.size());
    std::mutex mu;

    ThreadPool pool(flags.threads);
    for (int repeat = 0; repeat < repeats; ++repeat) {
      const auto fold = ml::FoldAssignment(
          n, folds, DeriveSeed(flags.seed, 100 + repeat));
      for (int f = 0; f < folds; ++f) {
        pool.Submit([&, repeat, f, fold] {
          std::vector<int> train_rows, test_rows;
          for (int i = 0; i < n; ++i) {
            (fold[static_cast<size_t>(i)] == f ? test_rows : train_rows)
                .push_back(i);
          }
          const Dataset train = ds.data.SubsetRows(train_rows);
          const Dataset holdout = ds.data.SubsetRows(test_rows);
          for (size_t mi = 0; mi < methods.size(); ++mi) {
            const FoldMetrics m = RunFold(
                train, holdout, methods[mi], ds.alpha,
                flags.full ? 100000 : 20000, flags.full,
                DeriveSeed(flags.seed, 1000ULL * (mi + 1) + 10ULL * repeat + f));
            std::lock_guard<std::mutex> lock(mu);
            auc[mi].push_back(m.pr_auc);
            precision[mi].push_back(m.precision);
            restricted[mi].push_back(m.restricted);
            boxes[mi].push_back(m.last_box);
          }
        });
      }
    }
    pool.Wait();

    TablePrinter table(std::string("dataset: ") + ds.name);
    table.SetHeader({"metric", "Pc", "RPf", "RPfp"});
    std::vector<double> auc_row, prec_row, cons_row, restr_row;
    const std::vector<double> lo(static_cast<size_t>(ds.data.num_cols()), 0.0);
    const std::vector<double> hi(static_cast<size_t>(ds.data.num_cols()), 1.0);
    for (size_t mi = 0; mi < methods.size(); ++mi) {
      auc_row.push_back(stats::Mean(auc[mi]));
      prec_row.push_back(stats::Mean(precision[mi]));
      cons_row.push_back(100.0 * MeanPairwiseConsistency(boxes[mi], lo, hi));
      restr_row.push_back(stats::Mean(restricted[mi]));
    }
    table.AddRow("PR AUC", auc_row, 1);
    table.AddRow("precision", prec_row, 1);
    table.AddRow("consistency", cons_row, 1);
    table.AddRow("# restricted", restr_row, 2);
    table.Print();
    std::printf("\n");
  }
  std::printf("expected shape (paper Table 5): REDS >= Pc everywhere, with "
              "the largest margins on consistency.\n");
  return 0;
}

}  // namespace reds::exp

int main(int argc, char** argv) { return reds::exp::Main(argc, argv); }
