// Ablation (paper Section 10, future work): combining REDS with active
// learning. At an equal simulation budget, compares
//   (a) plain PRIM on an LHS design,
//   (b) REDS on an LHS design,
//   (c) REDS on an actively sampled design (uncertainty sampling with a
//       random-forest metamodel).
// The paper conjectures (c) >= (b) > (a); this bench measures it.
#include <cstdio>

#include "core/active.h"
#include "core/prim.h"
#include "core/quality.h"
#include "core/reds.h"
#include "exp/bench_flags.h"
#include "functions/datagen.h"
#include "functions/registry.h"
#include "stats/descriptive.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace reds::exp {

int Main(int argc, char** argv) {
  const BenchFlags flags = ParseBenchFlags(argc, argv);
  const int reps = PickReps(flags, 3, 25);
  const int budget = 400;  // total simulations per variant
  const std::vector<std::string> functions =
      flags.functions.empty()
          ? std::vector<std::string>{"ellipse", "morris", "hart6sc"}
          : flags.functions;

  std::printf("Ablation: REDS + active learning, budget = %d simulations, "
              "%d reps\n\n",
              budget, reps);

  TablePrinter table("mean test PR AUC (x100)");
  table.SetHeader({"function", "P (LHS)", "REDS (LHS)", "REDS (active)"});

  for (const auto& name : functions) {
    auto function = fun::MakeFunction(name).value();
    const Dataset test = fun::MakeScenarioDataset(
        *function, flags.full ? 20000 : 6000, fun::DesignKind::kLatinHypercube,
        DeriveSeed(flags.seed, 3));

    std::vector<double> plain(reps), reds_lhs(reps), reds_active(reps);
    ThreadPool pool(flags.threads);
    for (int rep = 0; rep < reps; ++rep) {
      pool.Submit([&, rep] {
        const uint64_t seed = DeriveSeed(flags.seed, 100 + rep);
        // (a)+(b): one LHS design of `budget` points.
        const Dataset lhs = fun::MakeScenarioDataset(
            *function, budget, fun::DesignKind::kLatinHypercube, seed);
        PrimConfig prim;
        plain[rep] = 100.0 * PrAucOnData(
                                 RunPrim(lhs, lhs, prim).ReturnedBoxes(), test);

        RedsConfig config;
        config.metamodel = ml::MetamodelKind::kRandomForest;
        config.tune_metamodel = false;
        config.num_new_points = flags.full ? 100000 : 20000;
        {
          const RedsRelabeling r = RedsRelabel(lhs, config, seed + 1);
          reds_lhs[rep] = 100.0 * PrAucOnData(
              RunPrim(r.new_data, lhs, prim).ReturnedBoxes(), test);
        }

        // (c): same budget, actively sampled.
        Rng oracle_rng(DeriveSeed(seed, 5));
        ActiveSamplingConfig active;
        active.initial_points = budget / 2;
        active.batch_size = budget / 8;
        active.rounds = 4;  // initial + 4 * budget/8 = budget
        const Dataset active_data = RunActiveSampling(
            function->dim(),
            [&](const double* x) { return function->Label(x, &oracle_rng); },
            active, seed + 2);
        const RedsRelabeling r = RedsRelabel(active_data, config, seed + 3);
        reds_active[rep] = 100.0 * PrAucOnData(
            RunPrim(r.new_data, active_data, prim).ReturnedBoxes(), test);
      });
    }
    pool.Wait();
    table.AddRow(name, {stats::Mean(plain), stats::Mean(reds_lhs),
                        stats::Mean(reds_active)},
                 2);
  }
  table.Print();
  std::printf("\nuncertainty sampling concentrates simulations near the "
              "scenario boundary, sharpening the metamodel exactly where "
              "PRIM peels.\n");
  return 0;
}

}  // namespace reds::exp

int main(int argc, char** argv) { return reds::exp::Main(argc, argv); }
