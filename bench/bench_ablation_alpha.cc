// Ablation (ours, motivated by paper Section 8.4.1): sensitivity of PRIM and
// REDS+PRIM to the peeling fraction alpha, and the value of the pasting
// phase. Shows (1) why the paper cross-validates alpha -- no single value
// wins everywhere -- and (2) that pasting has the "negligible effect" the
// paper reports for its experiments.
#include <cstdio>

#include "core/prim.h"
#include "core/quality.h"
#include "core/reds.h"
#include "exp/bench_flags.h"
#include "functions/datagen.h"
#include "functions/registry.h"
#include "stats/descriptive.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace reds::exp {

int Main(int argc, char** argv) {
  const BenchFlags flags = ParseBenchFlags(argc, argv);
  const int reps = PickReps(flags, 5, 50);
  const std::vector<double> alphas{0.03, 0.05, 0.07, 0.1, 0.13, 0.16, 0.2};
  const std::vector<std::string> functions =
      flags.functions.empty()
          ? std::vector<std::string>{"morris", "ellipse", "borehole"}
          : flags.functions;

  std::printf("Ablation: peeling fraction alpha and pasting, N = 400, "
              "%d reps\n\n",
              reps);

  for (const auto& name : functions) {
    auto function = fun::MakeFunction(name).value();
    const Dataset test = fun::MakeScenarioDataset(
        *function, flags.full ? 20000 : 6000, fun::DesignKind::kLatinHypercube,
        DeriveSeed(flags.seed, 1));

    std::vector<std::vector<double>> auc(alphas.size(),
                                         std::vector<double>(reps));
    std::vector<double> paste_delta(reps);
    ThreadPool pool(flags.threads);
    for (int rep = 0; rep < reps; ++rep) {
      pool.Submit([&, rep] {
        const Dataset train = fun::MakeScenarioDataset(
            *function, 400, fun::DesignKind::kLatinHypercube,
            DeriveSeed(flags.seed, 100 + rep));
        for (size_t ai = 0; ai < alphas.size(); ++ai) {
          PrimConfig config;
          config.alpha = alphas[ai];
          const PrimResult r = RunPrim(train, train, config);
          auc[ai][static_cast<size_t>(rep)] =
              100.0 * PrAucOnData(r.ReturnedBoxes(), test);
        }
        // Pasting ablation at the default alpha.
        PrimConfig plain, pasted;
        pasted.paste = true;
        const double auc_plain =
            PrAucOnData(RunPrim(train, train, plain).ReturnedBoxes(), test);
        const double auc_pasted =
            PrAucOnData(RunPrim(train, train, pasted).ReturnedBoxes(), test);
        paste_delta[static_cast<size_t>(rep)] =
            100.0 * (auc_pasted - auc_plain);
      });
    }
    pool.Wait();

    TablePrinter table(name + ": test PR AUC vs alpha");
    table.SetHeader({"alpha", "mean", "median"});
    for (size_t ai = 0; ai < alphas.size(); ++ai) {
      table.AddRow(FormatDouble(alphas[ai], 2),
                   {stats::Mean(auc[ai]), stats::Median(auc[ai])}, 2);
    }
    table.Print();
    std::printf("pasting effect at alpha=0.05: mean delta PR AUC = %+.2f "
                "(paper: negligible)\n\n",
                stats::Mean(paste_delta));
  }
  return 0;
}

}  // namespace reds::exp

int main(int argc, char** argv) { return reds::exp::Main(argc, argv); }
