// Ablation (ours, motivated by paper Sections 6.1-6.2 and 9.1.1): metamodel
// family and label type inside REDS. Compares RPf / RPfp / RPx / RPxp / RPs
// at N = 400 on a function subset -- hard labels (bnd thresholding) vs
// probability labels (the Proposition 1 variance reduction), and random
// forest vs boosted trees vs SVM as the intermediate model.
#include <cstdio>

#include "exp/bench_flags.h"
#include "exp/experiment.h"
#include "stats/descriptive.h"
#include "util/table.h"

namespace reds::exp {

int Main(int argc, char** argv) {
  const BenchFlags flags = ParseBenchFlags(argc, argv);

  ExperimentConfig config;
  config.functions = flags.functions.empty()
                         ? std::vector<std::string>{"morris", "ellipse",
                                                    "dalal3", "hart6sc"}
                         : flags.functions;
  config.methods = {"P", "RPf", "RPfp", "RPx", "RPxp", "RPs"};
  config.sizes = {400};
  config.reps = PickReps(flags, 3, 50);
  config.test_size = flags.full ? 20000 : 8000;
  config.options.l_prim = flags.full ? 100000 : 20000;
  config.options.data_plan = flags.data_plan;
  config.options.tune_metamodel = flags.full;
  config.threads = flags.threads;
  config.seed = flags.seed;

  std::printf("Ablation: metamodel family and label type in REDS, N = 400, "
              "%zu functions, %d reps\n\n",
              config.functions.size(), config.reps);

  Runner runner(config);
  runner.Run();

  TablePrinter table("test quality by REDS variant (mean over functions)");
  table.SetHeader({"method", "PR AUC", "precision", "consistency",
                   "# restricted", "# irrel"});
  for (const auto& m : config.methods) {
    table.AddRow(
        m,
        {stats::Mean(runner.FunctionMeans(m, 400, &MetricSet::pr_auc)),
         stats::Mean(runner.FunctionMeans(m, 400, &MetricSet::precision)),
         stats::Mean(runner.FunctionConsistencies(m, 400)),
         stats::Mean(runner.FunctionMeans(m, 400, &MetricSet::restricted)),
         stats::Mean(runner.FunctionMeans(m, 400, &MetricSet::irrel))},
        2);
  }
  table.Print();

  std::printf("\nPer-function PR AUC:\n");
  TablePrinter per_fn("");
  std::vector<std::string> header{"function"};
  header.insert(header.end(), config.methods.begin(), config.methods.end());
  per_fn.SetHeader(header);
  for (const auto& f : config.functions) {
    std::vector<double> row;
    for (const auto& m : config.methods) {
      row.push_back(runner.cell(f, m, 400).Mean().pr_auc);
    }
    per_fn.AddRow(f, row, 2);
  }
  per_fn.Print();
  std::printf("\nexpected shape: every REDS variant beats plain P; 'p' "
              "variants match or beat their hard-label twins (paper 9.1.1: "
              "'RPxp'/'RPfp' behaved similarly to 'RPx'/'RPf').\n");
  return 0;
}

}  // namespace reds::exp

int main(int argc, char** argv) { return reds::exp::Main(argc, argv); }
