// Reproduces paper Figure 6 (the Example 8.1 demonstration): why evaluations
// need hyperparameter optimization and independent test data.
//
// 50 datasets of N = 400 from "morris"; BI with default m = M ("BI") and
// with m chosen by 5-fold CV ("BIc"); WRAcc evaluated on the 20000-point
// test set ("BI", "BIc") and on the training data ("tBI", "tBIc"). The
// paper's observations to reproduce:
//   * BIc > BI (tuning helps on test data),
//   * tBI, tBIc >> BI, BIc (train evaluation is overly optimistic),
//   * tBI > tBIc but BIc > BI (train evaluation misranks the methods).
#include <cstdio>

#include "core/method.h"
#include "exp/bench_flags.h"
#include "functions/datagen.h"
#include "functions/registry.h"
#include "stats/descriptive.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace reds::exp {

int Main(int argc, char** argv) {
  const BenchFlags flags = ParseBenchFlags(argc, argv);
  const int reps = PickReps(flags, 10, 50);
  const int n = 400;

  auto function = fun::MakeFunction("morris").value();
  const Dataset test = fun::MakeScenarioDataset(
      *function, flags.full ? 20000 : 8000, fun::DesignKind::kLatinHypercube,
      DeriveSeed(flags.seed, 1));

  std::vector<double> bi(reps), bic(reps), tbi(reps), tbic(reps);
  ThreadPool pool(flags.threads);
  for (int rep = 0; rep < reps; ++rep) {
    pool.Submit([&, rep] {
      const Dataset train = fun::MakeScenarioDataset(
          *function, n, fun::DesignKind::kLatinHypercube,
          DeriveSeed(flags.seed, 100 + rep));
      RunOptions options;
      options.seed = DeriveSeed(flags.seed, 200 + rep);
      const MethodOutput plain =
          RunMethod(*MethodSpec::Parse("BI"), train, options);
      const MethodOutput tuned =
          RunMethod(*MethodSpec::Parse("BIc"), train, options);
      bi[rep] = 100.0 * BoxWRAcc(test, plain.last_box);
      bic[rep] = 100.0 * BoxWRAcc(test, tuned.last_box);
      tbi[rep] = 100.0 * BoxWRAcc(train, plain.last_box);
      tbic[rep] = 100.0 * BoxWRAcc(train, tuned.last_box);
    });
  }
  pool.Wait();

  std::printf("Figure 6: BI on 'morris', N = %d, %d datasets\n", n, reps);
  std::printf("('t' prefix = evaluated on train data; 'c' = m tuned by CV)\n\n");
  TablePrinter table("WRAcc quartiles (x100)");
  table.SetHeader({"variant", "q1", "median", "q3", "mean"});
  const auto add = [&](const char* name, const std::vector<double>& v) {
    const auto q = stats::ComputeQuartiles(v);
    table.AddRow(name, {q.q1, q.median, q.q3, stats::Mean(v)}, 2);
  };
  add("BI", bi);
  add("BIc", bic);
  add("tBI", tbi);
  add("tBIc", tbic);
  table.Print();

  std::printf("\nexpected pattern: tBI > tBIc but BIc >= BI -- training-data "
              "evaluation both inflates and misranks.\n");

  if (!flags.out_dir.empty()) {
    CsvWriter csv({"rep", "BI", "BIc", "tBI", "tBIc"});
    for (int rep = 0; rep < reps; ++rep) {
      csv.AddRow({static_cast<double>(rep), bi[rep], bic[rep], tbi[rep],
                  tbic[rep]});
    }
    (void)csv.WriteFile(flags.out_dir + "/fig06.csv");
  }
  return 0;
}

}  // namespace reds::exp

int main(int argc, char** argv) { return reds::exp::Main(argc, argv); }
