// Reproduces paper Figure 9: runtimes of PRIM-based (Pc, PBc, RPf, RPx) and
// BI-based (BI, BIc, RBIcxp) methods as functions of the dataset size N.
// Absolute numbers differ from the paper's R implementation; the shape to
// reproduce is (1) REDS's runtime dominated by the L-dependent terms (flat
// in N), (2) everything well under the paper's 800-second ceiling.
#include <cstdio>

#include "exp/bench_flags.h"
#include "exp/experiment.h"
#include "stats/descriptive.h"
#include "util/table.h"

namespace reds::exp {

int Main(int argc, char** argv) {
  const BenchFlags flags = ParseBenchFlags(argc, argv);

  ExperimentConfig config;
  config.functions = flags.functions.empty()
                         ? std::vector<std::string>{"ellipse", "morris",
                                                    "borehole", "sobol"}
                         : flags.functions;
  config.methods = {"Pc", "PBc", "RPf", "RPx", "BI", "BIc", "RBIcxp"};
  config.sizes = {200, 400, 800};
  config.reps = PickReps(flags, 3, 50);
  config.test_size = 2000;  // runtime study; test data barely matters
  config.options.l_prim = flags.full ? 100000 : 20000;
  config.options.data_plan = flags.data_plan;
  config.options.l_bi = flags.full ? 10000 : 5000;
  config.options.bumping_q = flags.full ? 50 : 20;
  config.options.tune_metamodel = flags.full;
  config.threads = flags.threads;
  config.seed = flags.seed;

  Runner runner(config);
  runner.Run();

  std::printf("Figure 9: mean runtime per discovery run (seconds), averaged "
              "over %zu functions x %d reps\n\n",
              config.functions.size(), config.reps);
  TablePrinter table("runtime vs N");
  std::vector<std::string> header{"N"};
  header.insert(header.end(), config.methods.begin(), config.methods.end());
  table.SetHeader(header);
  for (int n : config.sizes) {
    std::vector<double> row;
    for (const auto& m : config.methods) {
      row.push_back(
          stats::Mean(runner.FunctionMeans(m, n, &MetricSet::runtime_seconds)));
    }
    table.AddRow(std::to_string(n), row, 3);
  }
  table.Print();
  std::printf("\nREDS methods are dominated by the L-dependent relabel+PRIM "
              "cost, so they grow slowly with N (paper Section 9.1.1).\n");

  if (!flags.out_dir.empty()) {
    CsvWriter csv({"n", "method", "runtime_seconds"});
    for (int n : config.sizes) {
      for (size_t mi = 0; mi < config.methods.size(); ++mi) {
        csv.AddRow({static_cast<double>(n), static_cast<double>(mi),
                    stats::Mean(runner.FunctionMeans(
                        config.methods[mi], n, &MetricSet::runtime_seconds))});
      }
    }
    (void)csv.WriteFile(flags.out_dir + "/fig09.csv");
  }
  return 0;
}

}  // namespace reds::exp

int main(int argc, char** argv) { return reds::exp::Main(argc, argv); }
