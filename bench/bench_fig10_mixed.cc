// Reproduces paper Figure 10 (Section 9.1.2): mixed continuous/discrete
// inputs. Even-numbered inputs are drawn i.i.d. from {0.1, 0.3, 0.5, 0.7,
// 0.9}; the plot shows relative quality changes of the best REDS variants
// ("RPcxp", "RBIcxp") against the tuned baselines ("Pc", "BIc") at N = 400.
#include <cstdio>

#include "exp/bench_flags.h"
#include "exp/experiment.h"
#include "stats/descriptive.h"
#include "stats/tests.h"
#include "util/table.h"

namespace reds::exp {

int Main(int argc, char** argv) {
  const BenchFlags flags = ParseBenchFlags(argc, argv);

  ExperimentConfig config;
  config.functions = PickFunctions(flags);
  // The paper excludes "dsgc" from the mixed-input study.
  std::erase(config.functions, std::string("dsgc"));
  config.methods = {"Pc", "RPcxp", "BIc", "RBIcxp"};
  config.sizes = {400};
  config.reps = PickReps(flags, 3, 50);
  config.test_size = flags.full ? 20000 : 8000;
  config.design_override = fun::DesignKind::kMixedDiscrete;
  config.options.l_prim = flags.full ? 100000 : 20000;
  config.options.data_plan = flags.data_plan;
  config.options.l_bi = flags.full ? 10000 : 5000;
  config.options.tune_metamodel = flags.full;
  config.threads = flags.threads;
  config.seed = flags.seed;

  Runner runner(config);
  runner.Run();

  std::printf("Figure 10: mixed inputs (even inputs in {0.1,...,0.9}), "
              "N = 400, %zu functions\n\n",
              config.functions.size());

  // Relative change per function, quartiles across functions.
  auto quartile_row = [&](const char* label, const std::string& method,
                          const std::string& baseline,
                          double MetricSet::* field, TablePrinter* table) {
    std::vector<double> changes;
    for (const auto& f : config.functions) {
      const double v = runner.cell(f, method, 400).Mean().*field;
      const double b = runner.cell(f, baseline, 400).Mean().*field;
      if (b != 0.0) changes.push_back(RelativeChangePercent(v, b));
    }
    const auto q = stats::ComputeQuartiles(changes);
    table->AddRow(label, {q.q1, q.median, q.q3}, 1);
  };

  TablePrinter table("relative change vs tuned baseline, % (quartiles)");
  table.SetHeader({"comparison", "q1", "median", "q3"});
  quartile_row("RPcxp vs Pc: PR AUC", "RPcxp", "Pc", &MetricSet::pr_auc,
               &table);
  quartile_row("RPcxp vs Pc: precision", "RPcxp", "Pc", &MetricSet::precision,
               &table);
  quartile_row("RBIcxp vs BIc: WRAcc", "RBIcxp", "BIc", &MetricSet::wracc,
               &table);
  table.Print();

  // Significance (paper: p <= 0.017 for all three).
  for (const auto& [m, b, field, name] :
       std::vector<std::tuple<std::string, std::string, double MetricSet::*,
                              const char*>>{
           {"RPcxp", "Pc", &MetricSet::pr_auc, "PR AUC"},
           {"RPcxp", "Pc", &MetricSet::precision, "precision"},
           {"RBIcxp", "BIc", &MetricSet::wracc, "WRAcc"}}) {
    std::vector<std::vector<double>> blocks;
    for (const auto& f : config.functions) {
      blocks.push_back({runner.cell(f, b, 400).Mean().*field,
                        runner.cell(f, m, 400).Mean().*field});
    }
    const auto posthoc = stats::FriedmanPostHoc(blocks, 1, 0);
    std::printf("%s vs %s (%s): z = %.2f, p = %.2g\n", m.c_str(), b.c_str(),
                name, posthoc.statistic, posthoc.p_value);
  }
  return 0;
}

}  // namespace reds::exp

int main(int argc, char** argv) { return reds::exp::Main(argc, argv); }
