// Read-only memory-mapped files: the out-of-core backing of the binned
// data plane. A MappedFile maps a whole file MAP_PRIVATE/PROT_READ, so
// consumers index straight into the page cache -- bytes fault in on first
// touch and clean pages are reclaimable under memory pressure, which keeps
// resident size bounded for code columns far larger than RAM.
#ifndef REDS_UTIL_MMAP_FILE_H_
#define REDS_UTIL_MMAP_FILE_H_

#include <cstddef>
#include <string>

#include "util/status.h"

namespace reds::util {

/// RAII read-only mapping of one file. Movable, not copyable; unmaps on
/// destruction. The mapping stays valid for the object's lifetime even if
/// the file is unlinked (standard mmap semantics), so cache eviction of the
/// underlying file cannot invalidate live readers.
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Maps `path` read-only. Fails (Status) on missing/unreadable files and
  /// on empty files (an empty mapping is never a valid cache artifact).
  static Result<MappedFile> OpenReadOnly(const std::string& path);

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  bool valid() const { return data_ != nullptr; }

 private:
  char* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace reds::util

#endif  // REDS_UTIL_MMAP_FILE_H_
