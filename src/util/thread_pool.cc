#include "util/thread_pool.h"

#include <algorithm>
#include <stdexcept>

namespace reds {

ThreadPool::ThreadPool(int num_threads, obs::MetricsRegistry* metrics,
                       const std::string& metric_prefix) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  num_threads = std::max(num_threads, 1);
  if (metrics != nullptr) {
    queue_depth_ = metrics->gauge(metric_prefix + ".queue_depth");
    active_workers_ = metrics->gauge(metric_prefix + ".active_workers");
    task_wait_ = metrics->histogram(metric_prefix + ".task_wait_ns");
    tasks_completed_ = metrics->counter(metric_prefix + ".tasks_completed");
  }
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (stop_) return;  // already shut down (workers drain before exiting)
    stop_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  Task entry{std::move(task), {}};
  if (task_wait_ != nullptr) {
    entry.enqueued = std::chrono::steady_clock::now();
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (stop_) {
      throw std::logic_error("ThreadPool::Submit after Shutdown");
    }
    tasks_.push(std::move(entry));
  }
  if (queue_depth_ != nullptr) queue_depth_->Add(1);
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++active_;
    }
    if (queue_depth_ != nullptr) queue_depth_->Add(-1);
    if (active_workers_ != nullptr) active_workers_->Add(1);
    if (task_wait_ != nullptr) {
      task_wait_->Observe(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - task.enqueued)
              .count()));
    }
    task.fn();
    if (active_workers_ != nullptr) active_workers_->Add(-1);
    if (tasks_completed_ != nullptr) tasks_completed_->Add(1);
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --active_;
      if (tasks_.empty() && active_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(int begin, int end, const std::function<void(int)>& body,
                 int num_threads) {
  if (end <= begin) return;
  ThreadPool pool(num_threads);
  for (int i = begin; i < end; ++i) {
    pool.Submit([&body, i] { body(i); });
  }
  pool.Wait();
}

}  // namespace reds
