// AVX2 body for util::GatherSum. Compiled with -mavx2 (see CMakeLists);
// never referenced unless ActiveSimdLevel() == kAvx2.
//
// The vector accumulation reassociates the sum, so this path is only legal
// for integer-valued doubles (see the GatherSum contract in simd.h): any
// association of integer addends below 2^53 yields the same exact value,
// which keeps the result bit-identical to the sequential reference.
#include "util/simd.h"

#if defined(REDS_HAVE_AVX2) && defined(__AVX2__)

#include <immintrin.h>

namespace reds::util {

namespace {

// Gathers 4 in-box mask bytes as a 4-lane 0/-1 predicate. The 32-bit
// scale-1 gathers read 3 bytes past each mask[id], covered by the callers'
// padded allocations (see the contract in simd.h).
inline __m128i GatherMaskNonZero(const unsigned char* mask, __m128i ids) {
  // The masked-gather form with an explicit zero source: equivalent to the
  // plain gather here (all lanes on), but avoids GCC's uninitialized
  // pass-through operand warning.
  __m128i bytes = _mm_mask_i32gather_epi32(
      _mm_setzero_si128(), reinterpret_cast<const int*>(mask), ids,
      _mm_set1_epi32(-1), 1);
  bytes = _mm_and_si128(bytes, _mm_set1_epi32(0xFF));
  return _mm_cmpgt_epi32(bytes, _mm_setzero_si128());
}

}  // namespace

double GatherSumAvx2(const double* v, const int* ids, int n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i id_lo =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ids + i));
    const __m128i id_hi =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ids + i + 4));
    acc0 = _mm256_add_pd(acc0, _mm256_i32gather_pd(v, id_lo, 8));
    acc1 = _mm256_add_pd(acc1, _mm256_i32gather_pd(v, id_hi, 8));
  }
  const __m256d acc = _mm256_add_pd(acc0, acc1);
  const __m128d lo = _mm256_castpd256_pd128(acc);
  const __m128d hi = _mm256_extractf128_pd(acc, 1);
  const __m128d sum2 = _mm_add_pd(lo, hi);
  double sum = _mm_cvtsd_f64(_mm_add_sd(sum2, _mm_unpackhi_pd(sum2, sum2)));
  for (; i < n; ++i) sum += v[ids[i]];
  return sum;
}

// Exact on every input: the result is an integer count, and each lane's
// predicate is evaluated exactly as the scalar reference evaluates it.
int MaskedCountBelowAvx2(const double* col, const unsigned char* mask,
                         const int* ids, int n, double bound, bool strict) {
  const __m256d vbound = _mm256_set1_pd(bound);
  int count = 0;
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i id =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ids + i));
    const __m256d vals = _mm256_i32gather_pd(col, id, 8);
    const __m256d below = strict ? _mm256_cmp_pd(vals, vbound, _CMP_LT_OQ)
                                 : _mm256_cmp_pd(vals, vbound, _CMP_LE_OQ);
    const int below_bits = _mm256_movemask_pd(below);
    const int mask_bits =
        _mm_movemask_ps(_mm_castsi128_ps(GatherMaskNonZero(mask, id)));
    count += __builtin_popcount(below_bits & mask_bits & 0xF);
  }
  for (; i < n; ++i) {
    const int r = ids[i];
    const bool below = strict ? col[r] < bound : col[r] <= bound;
    if (below && mask[r] != 0) ++count;
  }
  return count;
}

// Reorders the additions (vector accumulators), legal only for
// integer-valued y (see the MaskedPrefixSum contract in simd.h). Vector
// groups stop as soon as the next 4 masked rows might overshoot `count`;
// the scalar tail takes the rest one row at a time.
double MaskedPrefixSumAvx2(const double* y, const unsigned char* mask,
                           const int* ids, int n, int count) {
  __m256d acc = _mm256_setzero_pd();
  int taken = 0;
  int i = 0;
  for (; i + 4 <= n && taken + 4 <= count; i += 4) {
    const __m128i id =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ids + i));
    const __m128i keep32 = GatherMaskNonZero(mask, id);
    const __m256d keep =
        _mm256_castsi256_pd(_mm256_cvtepi32_epi64(keep32));
    acc = _mm256_add_pd(
        acc, _mm256_mask_i32gather_pd(_mm256_setzero_pd(), y, id, keep, 8));
    taken += __builtin_popcount(
        _mm_movemask_ps(_mm_castsi128_ps(keep32)) & 0xF);
  }
  const __m128d lo = _mm256_castpd256_pd128(acc);
  const __m128d hi = _mm256_extractf128_pd(acc, 1);
  const __m128d sum2 = _mm_add_pd(lo, hi);
  double sum = _mm_cvtsd_f64(_mm_add_sd(sum2, _mm_unpackhi_pd(sum2, sum2)));
  for (; i < n && taken < count; ++i) {
    const int r = ids[i];
    if (mask[r] == 0) continue;
    sum += y[r];
    ++taken;
  }
  return sum;
}

}  // namespace reds::util

#endif  // REDS_HAVE_AVX2 && __AVX2__
