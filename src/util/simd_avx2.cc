// AVX2 body for util::GatherSum. Compiled with -mavx2 (see CMakeLists);
// never referenced unless ActiveSimdLevel() == kAvx2.
//
// The vector accumulation reassociates the sum, so this path is only legal
// for integer-valued doubles (see the GatherSum contract in simd.h): any
// association of integer addends below 2^53 yields the same exact value,
// which keeps the result bit-identical to the sequential reference.
#include "util/simd.h"

#if defined(REDS_HAVE_AVX2) && defined(__AVX2__)

#include <immintrin.h>

namespace reds::util {

double GatherSumAvx2(const double* v, const int* ids, int n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i id_lo =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ids + i));
    const __m128i id_hi =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ids + i + 4));
    acc0 = _mm256_add_pd(acc0, _mm256_i32gather_pd(v, id_lo, 8));
    acc1 = _mm256_add_pd(acc1, _mm256_i32gather_pd(v, id_hi, 8));
  }
  const __m256d acc = _mm256_add_pd(acc0, acc1);
  const __m128d lo = _mm256_castpd256_pd128(acc);
  const __m128d hi = _mm256_extractf128_pd(acc, 1);
  const __m128d sum2 = _mm_add_pd(lo, hi);
  double sum = _mm_cvtsd_f64(_mm_add_sd(sum2, _mm_unpackhi_pd(sum2, sum2)));
  for (; i < n; ++i) sum += v[ids[i]];
  return sum;
}

}  // namespace reds::util

#endif  // REDS_HAVE_AVX2 && __AVX2__
