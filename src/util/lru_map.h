// Generic least-recently-used map: an ordered map over a recency list with
// max-entry eviction. Single-threaded by design -- callers that share one
// (the engine's metamodel and column-index caches) hold their own mutex.
#ifndef REDS_UTIL_LRU_MAP_H_
#define REDS_UTIL_LRU_MAP_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <utility>

namespace reds {

/// Map with LRU eviction. Get() and Put() count as uses; when a Put pushes
/// the size above the capacity, least-recently-used entries are dropped.
/// Capacity 0 means unbounded.
template <typename Key, typename Value>
class LruMap {
 public:
  explicit LruMap(size_t capacity = 0) : capacity_(capacity) {}

  /// Pointer to the value (touching the entry), or nullptr when absent.
  /// Valid until the next modifying call.
  Value* Get(const Key& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    items_.splice(items_.begin(), items_, it->second);
    return &it->second->second;
  }

  /// As Get() without refreshing the entry's recency.
  Value* Peek(const Key& key) {
    const auto it = index_.find(key);
    return it == index_.end() ? nullptr : &it->second->second;
  }

  /// Inserts or overwrites, marks the entry most recent, and evicts the
  /// least recent entries while over capacity.
  void Put(const Key& key, Value value) {
    const auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      items_.splice(items_.begin(), items_, it->second);
      return;
    }
    items_.emplace_front(key, std::move(value));
    index_.emplace(key, items_.begin());
    EvictOverCapacity();
  }

  /// Removes the entry; returns whether it existed. Not counted as an
  /// eviction.
  bool Erase(const Key& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) return false;
    items_.erase(it->second);
    index_.erase(it);
    return true;
  }

  size_t size() const { return index_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t evictions() const { return evictions_; }

  /// Changes the bound, evicting down if the map is over the new capacity.
  void SetCapacity(size_t capacity) {
    capacity_ = capacity;
    EvictOverCapacity();
  }

  /// Drops everything; not counted as evictions.
  void Clear() {
    items_.clear();
    index_.clear();
  }

 private:
  void EvictOverCapacity() {
    while (capacity_ > 0 && index_.size() > capacity_) {
      index_.erase(items_.back().first);
      items_.pop_back();
      ++evictions_;
    }
  }

  using Item = std::pair<Key, Value>;
  std::list<Item> items_;  // front = most recently used
  std::map<Key, typename std::list<Item>::iterator> index_;
  size_t capacity_;
  uint64_t evictions_ = 0;
};

}  // namespace reds

#endif  // REDS_UTIL_LRU_MAP_H_
