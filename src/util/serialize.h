// Little-endian binary (de)serialization for the persistent cache tier.
// ByteWriter appends fixed-width scalars and length-prefixed vectors to a
// string; ByteReader parses them back with bounds checks that fail softly
// (ok() flips to false, reads return zeros) so truncated or corrupted cache
// files are rejected instead of crashing or over-allocating. The byte
// layout is explicit -- one byte at a time, least significant first -- so
// files written on any host parse on any other.
#ifndef REDS_UTIL_SERIALIZE_H_
#define REDS_UTIL_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace reds::util {

class ByteWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }

  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) U8(static_cast<uint8_t>(v >> (8 * i)));
  }

  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) U8(static_cast<uint8_t>(v >> (8 * i)));
  }

  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }

  void F64(double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }

  void VecF64(const std::vector<double>& v) {
    U64(v.size());
    for (double x : v) F64(x);
  }

  void VecI32(const std::vector<int>& v) {
    U64(v.size());
    for (int x : v) I32(x);
  }

  void VecU8(const std::vector<uint8_t>& v) {
    U64(v.size());
    for (uint8_t x : v) U8(x);
  }

  void Str(const std::string& s) {
    U64(s.size());
    buf_.append(s);
  }

  const std::string& data() const { return buf_; }
  size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

class ByteReader {
 public:
  ByteReader(const char* data, size_t size) : p_(data), size_(size) {}
  explicit ByteReader(const std::string& data)
      : ByteReader(data.data(), data.size()) {}

  uint8_t U8() {
    if (pos_ >= size_) {
      ok_ = false;
      return 0;
    }
    return static_cast<uint8_t>(p_[pos_++]);
  }

  uint32_t U32() {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(U8()) << (8 * i);
    return v;
  }

  uint64_t U64() {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(U8()) << (8 * i);
    return v;
  }

  int32_t I32() { return static_cast<int32_t>(U32()); }

  double F64() {
    const uint64_t bits = U64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  // Length-prefixed vectors reject declared sizes larger than the bytes
  // actually remaining, so a corrupted length cannot trigger a huge
  // allocation before the payload runs out.
  std::vector<double> VecF64() { return Vec<double>(8, [this] { return F64(); }); }
  std::vector<int> VecI32() { return Vec<int>(4, [this] { return I32(); }); }
  std::vector<uint8_t> VecU8() { return Vec<uint8_t>(1, [this] { return U8(); }); }

  std::string Str() {
    const uint64_t n = U64();
    if (!ok_ || n > remaining()) {
      ok_ = false;
      return {};
    }
    std::string s(p_ + pos_, static_cast<size_t>(n));
    pos_ += static_cast<size_t>(n);
    return s;
  }

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == size_; }
  size_t remaining() const { return size_ - pos_; }

 private:
  template <typename T, typename Fn>
  std::vector<T> Vec(size_t elem_bytes, const Fn& next) {
    const uint64_t n = U64();
    if (!ok_ || n > remaining() / elem_bytes) {
      ok_ = false;
      return {};
    }
    std::vector<T> v;
    v.reserve(static_cast<size_t>(n));
    for (uint64_t i = 0; i < n && ok_; ++i) v.push_back(next());
    return v;
  }

  const char* p_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

/// FNV-1a 64 over a byte range; the checksum the cache files carry.
inline uint64_t Fnv64(const char* data, size_t size,
                      uint64_t h = 1469598103934665603ULL) {
  constexpr uint64_t kPrime = 1099511628211ULL;
  for (size_t i = 0; i < size; ++i) {
    h ^= static_cast<uint8_t>(data[i]);
    h *= kPrime;
  }
  return h;
}

}  // namespace reds::util

#endif  // REDS_UTIL_SERIALIZE_H_
