// Special functions and distribution CDFs needed by the statistics module.
#ifndef REDS_UTIL_SPECIAL_H_
#define REDS_UTIL_SPECIAL_H_

namespace reds {

/// Regularized lower incomplete gamma function P(a, x), a > 0, x >= 0.
double RegularizedGammaP(double a, double x);

/// Regularized upper incomplete gamma function Q(a, x) = 1 - P(a, x).
double RegularizedGammaQ(double a, double x);

/// Standard normal cumulative distribution function.
double NormalCdf(double z);

/// Inverse of the standard normal CDF (Acklam's rational approximation,
/// |relative error| < 1.15e-9).
double NormalQuantile(double p);

/// Chi-squared CDF with k degrees of freedom.
double ChiSquaredCdf(double x, double k);

/// Two-sided p-value for a standard normal test statistic z.
double TwoSidedNormalPValue(double z);

}  // namespace reds

#endif  // REDS_UTIL_SPECIAL_H_
