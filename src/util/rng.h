// Deterministic pseudo-random number generation (xoshiro256++ seeded through
// splitmix64). Every stochastic component of the library takes an explicit
// seed so experiments are bit-reproducible.
#ifndef REDS_UTIL_RNG_H_
#define REDS_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace reds {

/// splitmix64 step; used to derive well-mixed child seeds from a master seed.
uint64_t SplitMix64(uint64_t* state);

/// Derives a child seed from a parent seed and a stream id. Used to give each
/// (experiment, function, repetition) its own independent RNG stream.
uint64_t DeriveSeed(uint64_t parent, uint64_t stream);

/// xoshiro256++ generator with convenience sampling methods.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal deviate (polar Box-Muller).
  double Normal();

  /// Normal deviate with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// Logit-normal deviate: sigmoid(Normal(mu, sigma)); support (0, 1).
  double LogitNormal(double mu, double sigma);

  /// Fisher-Yates shuffle of v.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (std::size_t i = v->size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(UniformInt(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// n indices drawn with replacement from [0, n) (a bootstrap sample).
  std::vector<int> BootstrapIndices(int n);

  /// k distinct indices drawn without replacement from [0, n), in random
  /// order. Requires 0 <= k <= n.
  std::vector<int> SampleWithoutReplacement(int n, int k);

 private:
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace reds

#endif  // REDS_UTIL_RNG_H_
