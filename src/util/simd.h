// Runtime CPU-feature dispatch for the SIMD hot kernels. The library is
// compiled for a baseline x86-64 target; translation units holding AVX2
// bodies are compiled with -mavx2 only (guarded by REDS_HAVE_AVX2 from
// CMake), and every dispatched kernel consults ActiveSimdLevel() per call
// -- a cached relaxed atomic load plus branch, cheap next to any kernel
// invocation -- so tests can pin either path via ForceSimdLevel and the
// REDS_SIMD=off/scalar environment override works without re-linking.
// Dispatched kernels are REQUIRED to be bit-identical to their scalar
// reference implementations on every input; anything order-sensitive
// (double summation) must keep its accumulation order.
#ifndef REDS_UTIL_SIMD_H_
#define REDS_UTIL_SIMD_H_

#include <cstddef>

namespace reds::util {

/// Instruction-set tiers the dispatched kernels can run at. Values are
/// stable (exported as the engine.build.simd gauge and in bench JSON).
enum class SimdLevel : int {
  kScalar = 0,
  kAvx2 = 1,
};

/// The tier dispatched kernels use for this process. Resolved once on
/// first use: REDS_SIMD=off|scalar forces kScalar; otherwise the highest
/// tier both compiled in (REDS_HAVE_AVX2) and supported by the CPU.
SimdLevel ActiveSimdLevel();

/// "scalar" or "avx2".
const char* SimdLevelName(SimdLevel level);

/// Test hook: pins the active level, clamped to what the build and CPU
/// actually support (asking for kAvx2 on a non-AVX2 host leaves kScalar).
/// Returns the level actually in effect.
SimdLevel ForceSimdLevel(SimdLevel level);

/// True when the binary carries AVX2 kernel bodies and the CPU can run
/// them, regardless of the REDS_SIMD override.
bool Avx2Available();

/// Sum of v[ids[0]] + v[ids[1]] + ... + v[ids[n-1]], dispatched. The AVX2
/// path reorders the additions (vector accumulators), so it is only
/// invoked by callers whose values are integer-valued doubles (sums of
/// {0,1} labels are exact in any association below 2^53); the scalar
/// fallback adds strictly in ids order. GatherSumReference is the pinned
/// sequential loop.
double GatherSum(const double* v, const int* ids, int n);
double GatherSumReference(const double* v, const int* ids, int n);

/// Number of i in [0, n) with (strict ? col[ids[i]] < bound
///                                    : col[ids[i]] <= bound) && mask[ids[i]].
/// The boundary-bin scan of PRIM's binned peel kernel: ids is a value-sorted
/// permutation segment and mask the in-box bitmask, so a full-segment masked
/// count equals the early-break scalar walk. Counts are integers, so the
/// dispatched path is exact by construction. The AVX2 body gathers mask
/// bytes 4 at a time with 32-bit loads: `mask` must stay readable for 3
/// bytes past the largest id (callers pad their bitmask allocation).
int MaskedCountBelow(const double* col, const unsigned char* mask,
                     const int* ids, int n, double bound, bool strict);
int MaskedCountBelowReference(const double* col, const unsigned char* mask,
                              const int* ids, int n, double bound,
                              bool strict);

/// Sum of y[ids[i]] over the first `count` i in [0, n) with mask[ids[i]]
/// set, scanning i ascending; ids must hold at least `count` masked rows.
/// The AVX2 path reorders the additions, so -- like GatherSum -- it is only
/// invoked by callers whose y values are integer-valued doubles (PRIM's
/// hard {0,1} relabels), where any association below 2^53 is exact. Same
/// 3-byte mask padding requirement as MaskedCountBelow.
double MaskedPrefixSum(const double* y, const unsigned char* mask,
                       const int* ids, int n, int count);
double MaskedPrefixSumReference(const double* y, const unsigned char* mask,
                                const int* ids, int n, int count);

/// Allocates an n-double buffer, 2 MiB-aligned and advised onto
/// transparent huge pages when the size warrants it (a random-index walk
/// over a multi-megabyte buffer otherwise pays an STLB lookup per access).
/// Returns nullptr only when the underlying allocation fails.
double* AllocPackedDoubles(size_t n);
void FreePackedDoubles(double* p);

/// RAII wrapper for AllocPackedDoubles; used for packed gradient pairs.
class PackedDoubleBuffer {
 public:
  PackedDoubleBuffer() = default;
  ~PackedDoubleBuffer() { FreePackedDoubles(data_); }
  PackedDoubleBuffer(const PackedDoubleBuffer&) = delete;
  PackedDoubleBuffer& operator=(const PackedDoubleBuffer&) = delete;
  PackedDoubleBuffer(PackedDoubleBuffer&& o) noexcept
      : data_(o.data_), size_(o.size_) {
    o.data_ = nullptr;
    o.size_ = 0;
  }
  PackedDoubleBuffer& operator=(PackedDoubleBuffer&& o) noexcept {
    if (this != &o) {
      FreePackedDoubles(data_);
      data_ = o.data_;
      size_ = o.size_;
      o.data_ = nullptr;
      o.size_ = 0;
    }
    return *this;
  }

  /// Ensures capacity for n doubles (geometric growth, contents dropped).
  void Resize(size_t n);

  double* data() { return data_; }
  const double* data() const { return data_; }
  size_t size() const { return size_; }

 private:
  double* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace reds::util

#endif  // REDS_UTIL_SIMD_H_
