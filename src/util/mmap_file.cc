#include "util/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace reds::util {

MappedFile::~MappedFile() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) ::munmap(data_, size_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

Result<MappedFile> MappedFile::OpenReadOnly(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IoError("cannot open " + path + ": " +
                            std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError("fstat " + path + ": " + std::strerror(err));
  }
  if (st.st_size <= 0) {
    ::close(fd);
    return Status::InvalidArgument("empty file: " + path);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping holds its own reference to the file
  if (addr == MAP_FAILED) {
    return Status::IoError("mmap " + path + ": " + std::strerror(errno));
  }
  // Code-column scans are row-gather (random within a column); let the
  // kernel know not to waste readahead on a sequential assumption.
  ::madvise(addr, size, MADV_RANDOM);
  MappedFile out;
  out.data_ = static_cast<char*>(addr);
  out.size_ = size;
  return out;
}

}  // namespace reds::util
