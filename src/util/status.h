// Status/Result error handling in the RocksDB/Arrow style: fallible library
// entry points return a Status (or Result<T>) instead of throwing.
#ifndef REDS_UTIL_STATUS_H_
#define REDS_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace reds {

/// Outcome of a fallible operation. Cheap to copy; holds a code and message.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kOutOfRange,
    kFailedPrecondition,
    kRuntimeError,
    kIoError,
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }
  static Status RuntimeError(std::string msg) {
    return Status(Code::kRuntimeError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(Code::kIoError, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" string for logs and test failures.
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Dereferencing a non-ok
/// Result is a programmer error (asserted in debug builds).
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}          // NOLINT(implicit)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT(implicit)

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace reds

#endif  // REDS_UTIL_STATUS_H_
