#include "util/fingerprint.h"

#include <cstring>

namespace reds::util {

namespace {

// Salts keep the two scopes from colliding on datasets that happen to
// serialize identically (e.g. a 1-column dataset whose x column equals
// another's y column).
constexpr uint64_t kInputsSalt = 0x785f6f6e6c79ULL;  // "x_only"
constexpr uint64_t kFullSalt = 0x78795f66756c6cULL;  // "xy_full"

// FNV-1a folding one 64-bit word per step (xor, then the FNV prime
// multiply). The byte-at-a-time variant costs eight serial multiplies per
// double and was a measurable slice of every streamed index build; one
// multiply per value hashes the same information through the same prime.
inline void HashValue(uint64_t* h, uint64_t v) {
  *h = (*h ^ v) * 1099511628211ULL;
}

inline void HashDouble(uint64_t* h, double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  HashValue(h, bits);
}

}  // namespace

DatasetHasher::DatasetHasher(Scope scope, int num_cols)
    : scope_(scope), num_cols_(num_cols), h_(1469598103934665603ULL) {
  HashValue(&h_, scope == Scope::kInputs ? kInputsSalt : kFullSalt);
  HashValue(&h_, static_cast<uint64_t>(num_cols));
}

void DatasetHasher::AddRows(const double* x, const double* y, int rows) {
  for (int r = 0; r < rows; ++r) {
    const double* row = x + static_cast<size_t>(r) * num_cols_;
    for (int c = 0; c < num_cols_; ++c) HashDouble(&h_, row[c]);
    if (scope_ == Scope::kFull) HashDouble(&h_, y[r]);
  }
  rows_ += rows;
}

uint64_t DatasetHasher::Finalize() const {
  uint64_t h = h_;
  HashValue(&h, static_cast<uint64_t>(rows_));
  return h;
}

}  // namespace reds::util
