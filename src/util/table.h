// Console table printer used by the benchmark harness to emit the paper's
// tables, plus a CSV writer for figure series.
#ifndef REDS_UTIL_TABLE_H_
#define REDS_UTIL_TABLE_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace reds {

/// Formats a double with `digits` significant decimals, trimming trailing
/// zeros ("41.3", "0.08", "7").
std::string FormatDouble(double value, int digits = 3);

/// Accumulates rows of strings and prints them with aligned columns.
class TablePrinter {
 public:
  explicit TablePrinter(std::string title = "") : title_(std::move(title)) {}

  void SetHeader(std::vector<std::string> header) { header_ = std::move(header); }
  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Convenience: first cell is a label, the rest are formatted doubles.
  void AddRow(const std::string& label, const std::vector<double>& values,
              int digits = 3);

  /// Renders the table (title, header, separator, rows) to a string.
  std::string ToString() const;

  /// Prints ToString() to stdout.
  void Print() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Splits one CSV line on commas (no quoting); always yields at least one
/// cell. Shared by the materialized reader below and the streaming
/// CsvFileSource so the grammar cannot drift between the two paths.
void SplitCsvLine(const std::string& line, std::vector<std::string>* cells);

/// Drops a trailing '\r' (CRLF files read through getline).
void StripTrailingCr(std::string* line);

/// Parsed CSV contents: a header line plus numeric rows.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<double>> rows;
};

/// Reads a numeric CSV file (first line headers, comma separated, no
/// quoting). Fails on missing files, ragged rows or non-numeric cells.
Result<CsvTable> ReadCsvFile(const std::string& path);

/// Writes rows of doubles to a CSV file with a header line. Used to dump the
/// series behind each reproduced figure.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void AddRow(const std::vector<double>& row) { rows_.push_back(row); }

  /// Writes the accumulated rows to `path`.
  Status WriteFile(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<double>> rows_;
};

}  // namespace reds

#endif  // REDS_UTIL_TABLE_H_
