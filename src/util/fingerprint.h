// Incremental dataset fingerprinting with a stable, documented byte layout.
// The engine keys every cache tier -- metamodels, column/binned indexes, and
// the on-disk persistence directory -- by these 64-bit hashes, and the
// streaming ingestion path must produce the same key chunk-at-a-time that
// the in-memory path produces from a materialized Dataset. Both therefore
// hash the identical byte stream:
//
//   u64  scope salt            (kInputsSalt or kFullSalt)
//   u64  num_cols
//   per row, in stream order:  num_cols doubles (IEEE-754 bit patterns);
//                              the kFull scope appends the row's target
//   u64  num_rows              (hashed at Finalize, so one-pass streams need
//                               not know the row count upfront)
//
// every value folded through FNV-1a 64 one 64-bit word at a time (xor with
// the IEEE-754 bit pattern, multiply by the FNV prime). Equal datasets
// (bitwise) always agree; distinct ones collide with probability ~2^-64.
#ifndef REDS_UTIL_FINGERPRINT_H_
#define REDS_UTIL_FINGERPRINT_H_

#include <cstdint>

namespace reds::util {

/// One-pass FNV-1a dataset hasher. Feed rows in stream order, then
/// Finalize(); chunk boundaries never affect the result.
class DatasetHasher {
 public:
  enum class Scope {
    kInputs,  // x only: the identity of a ColumnIndex / BinnedIndex
    kFull,    // x and y: the identity of a trained metamodel's data
  };

  DatasetHasher(Scope scope, int num_cols);

  /// Hashes `rows` row-major rows of num_cols inputs each; `y` holds one
  /// target per row and may be null under Scope::kInputs.
  void AddRows(const double* x, const double* y, int rows);

  void AddRow(const double* x, double y) { AddRows(x, &y, 1); }

  int64_t rows() const { return rows_; }

  /// The fingerprint of everything added so far (appends the row count
  /// without mutating the running state, so it may be called repeatedly).
  uint64_t Finalize() const;

 private:
  Scope scope_;
  int num_cols_;
  int64_t rows_ = 0;
  uint64_t h_;
};

}  // namespace reds::util

#endif  // REDS_UTIL_FINGERPRINT_H_
