// Minimal fixed-size thread pool with a ParallelFor helper; the experiment
// harness uses it to run (method x function x repetition) cells concurrently.
#ifndef REDS_UTIL_THREAD_POOL_H_
#define REDS_UTIL_THREAD_POOL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace reds {

/// Fixed-size worker pool. Tasks are void() callables; Wait() blocks until
/// the queue drains and all in-flight tasks finish.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (defaults to hardware
  /// concurrency; always at least one). When `metrics` is non-null the
  /// pool maintains `<prefix>.queue_depth` / `<prefix>.active_workers`
  /// gauges, a `<prefix>.task_wait_ns` histogram (submit-to-start latency,
  /// the backpressure signal), and a `<prefix>.tasks_completed` counter.
  /// Short-lived private pools (ParallelFor, PRIM backends) pass null and
  /// pay nothing.
  explicit ThreadPool(int num_threads = 0,
                      obs::MetricsRegistry* metrics = nullptr,
                      const std::string& metric_prefix = "engine.pool");
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution. Throws std::logic_error after
  /// Shutdown().
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed.
  void Wait();

  /// Drains the queue, then stops and joins every worker thread, releasing
  /// their stacks and OS handles. Idempotent; the destructor calls it.
  /// After Shutdown() the pool accepts no further tasks.
  void Shutdown();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  struct Task {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;  // set when instrumented
  };

  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<Task> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  int active_ = 0;
  bool stop_ = false;
  // Resolved once at construction; all null when no registry is attached.
  obs::Gauge* queue_depth_ = nullptr;
  obs::Gauge* active_workers_ = nullptr;
  obs::Histogram* task_wait_ = nullptr;
  obs::Counter* tasks_completed_ = nullptr;
};

/// Runs body(i) for i in [begin, end) across `num_threads` workers. Spawns a
/// private pool; intended for coarse-grained outer loops.
void ParallelFor(int begin, int end, const std::function<void(int)>& body,
                 int num_threads = 0);

}  // namespace reds

#endif  // REDS_UTIL_THREAD_POOL_H_
