#include "util/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace reds::util {
namespace {

std::atomic<int> g_level{-1};

int DetectLevel() {
  const char* env = std::getenv("REDS_SIMD");
  if (env != nullptr &&
      (std::strcmp(env, "off") == 0 || std::strcmp(env, "scalar") == 0)) {
    return static_cast<int>(SimdLevel::kScalar);
  }
  if (Avx2Available()) return static_cast<int>(SimdLevel::kAvx2);
  return static_cast<int>(SimdLevel::kScalar);
}

}  // namespace

bool Avx2Available() {
#if defined(REDS_HAVE_AVX2) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

SimdLevel ActiveSimdLevel() {
  int level = g_level.load(std::memory_order_relaxed);
  if (level < 0) {
    level = DetectLevel();
    g_level.store(level, std::memory_order_relaxed);
  }
  return static_cast<SimdLevel>(level);
}

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

SimdLevel ForceSimdLevel(SimdLevel level) {
  int want = static_cast<int>(level);
  if (level == SimdLevel::kAvx2 && !Avx2Available()) {
    want = static_cast<int>(SimdLevel::kScalar);
  }
  g_level.store(want, std::memory_order_relaxed);
  return static_cast<SimdLevel>(want);
}

double GatherSumReference(const double* v, const int* ids, int n) {
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += v[ids[i]];
  return sum;
}

int MaskedCountBelowReference(const double* col, const unsigned char* mask,
                              const int* ids, int n, double bound,
                              bool strict) {
  int count = 0;
  if (strict) {
    for (int i = 0; i < n; ++i) {
      const int r = ids[i];
      if (col[r] < bound && mask[r] != 0) ++count;
    }
  } else {
    for (int i = 0; i < n; ++i) {
      const int r = ids[i];
      if (col[r] <= bound && mask[r] != 0) ++count;
    }
  }
  return count;
}

double MaskedPrefixSumReference(const double* y, const unsigned char* mask,
                                const int* ids, int n, int count) {
  double sum = 0.0;
  int taken = 0;
  for (int i = 0; i < n && taken < count; ++i) {
    const int r = ids[i];
    if (mask[r] == 0) continue;
    sum += y[r];
    ++taken;
  }
  return sum;
}

#if defined(REDS_HAVE_AVX2)
double GatherSumAvx2(const double* v, const int* ids, int n);
int MaskedCountBelowAvx2(const double* col, const unsigned char* mask,
                         const int* ids, int n, double bound, bool strict);
double MaskedPrefixSumAvx2(const double* y, const unsigned char* mask,
                           const int* ids, int n, int count);
#endif

double GatherSum(const double* v, const int* ids, int n) {
#if defined(REDS_HAVE_AVX2)
  if (ActiveSimdLevel() == SimdLevel::kAvx2) {
    return GatherSumAvx2(v, ids, n);
  }
#endif
  return GatherSumReference(v, ids, n);
}

int MaskedCountBelow(const double* col, const unsigned char* mask,
                     const int* ids, int n, double bound, bool strict) {
#if defined(REDS_HAVE_AVX2)
  if (ActiveSimdLevel() == SimdLevel::kAvx2) {
    return MaskedCountBelowAvx2(col, mask, ids, n, bound, strict);
  }
#endif
  return MaskedCountBelowReference(col, mask, ids, n, bound, strict);
}

double MaskedPrefixSum(const double* y, const unsigned char* mask,
                       const int* ids, int n, int count) {
#if defined(REDS_HAVE_AVX2)
  if (ActiveSimdLevel() == SimdLevel::kAvx2) {
    return MaskedPrefixSumAvx2(y, mask, ids, n, count);
  }
#endif
  return MaskedPrefixSumReference(y, mask, ids, n, count);
}

double* AllocPackedDoubles(size_t n) {
  if (n == 0) n = 1;
  const size_t huge = size_t{2} << 20;
  size_t bytes = n * sizeof(double);
  if (bytes >= huge / 2) {
    // Round to whole 2 MiB chunks so the region is hugepage-mappable.
    // Buffers from half a chunk up are rounded up too: a 1.6 MB gradient
    // table walked in random order pays ~400 TLB entries on 4K pages but
    // exactly one on a hugepage, and that dwarfs the slack memory.
    bytes = (bytes + huge - 1) & ~(huge - 1);
    void* p = std::aligned_alloc(huge, bytes);
    if (p != nullptr) {
#if defined(__linux__) && defined(MADV_HUGEPAGE)
      madvise(p, bytes, MADV_HUGEPAGE);
#endif
      return static_cast<double*>(p);
    }
    // Fall through to a plain allocation on exotic failure.
  }
  bytes = (n * sizeof(double) + 63) & ~size_t{63};
  return static_cast<double*>(std::aligned_alloc(64, bytes));
}

void FreePackedDoubles(double* p) { std::free(p); }

void PackedDoubleBuffer::Resize(size_t n) {
  if (n <= size_) return;
  FreePackedDoubles(data_);
  data_ = AllocPackedDoubles(n);
  size_ = data_ == nullptr ? 0 : n;
}

}  // namespace reds::util
