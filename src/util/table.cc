#include "util/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

namespace reds {

std::string FormatDouble(double value, int digits) {
  if (std::isnan(value)) return "nan";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  if (s == "-0") s = "0";
  return s;
}

void TablePrinter::AddRow(const std::string& label,
                          const std::vector<double>& values, int digits) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(FormatDouble(v, digits));
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  std::vector<size_t> width(cols, 0);
  auto measure = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      width[i] = std::max(width[i], row[i].size());
    }
  };
  measure(header_);
  for (const auto& r : rows_) measure(r);

  std::ostringstream out;
  if (!title_.empty()) out << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < cols; ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      out << cell << std::string(width[i] - cell.size(), ' ');
      if (i + 1 < cols) out << "  ";
    }
    out << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    size_t total = 0;
    for (size_t i = 0; i < cols; ++i) total += width[i] + (i + 1 < cols ? 2 : 0);
    out << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
  return out.str();
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

void SplitCsvLine(const std::string& line, std::vector<std::string>* cells) {
  cells->clear();
  size_t begin = 0;
  while (begin <= line.size()) {
    size_t end = line.find(',', begin);
    if (end == std::string::npos) end = line.size();
    cells->push_back(line.substr(begin, end - begin));
    begin = end + 1;
  }
}

void StripTrailingCr(std::string* line) {
  if (!line->empty() && line->back() == '\r') line->pop_back();
}

Result<CsvTable> ReadCsvFile(const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::IoError("cannot open " + path);
  CsvTable table;
  std::string line;
  if (!std::getline(f, line)) return Status::IoError("empty file: " + path);
  StripTrailingCr(&line);
  SplitCsvLine(line, &table.header);
  int line_no = 1;
  std::vector<std::string> cells;
  while (std::getline(f, line)) {
    ++line_no;
    StripTrailingCr(&line);
    if (line.empty()) continue;
    SplitCsvLine(line, &cells);
    if (cells.size() != table.header.size()) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": ragged row");
    }
    std::vector<double> row;
    row.reserve(cells.size());
    for (const auto& cell : cells) {
      char* end = nullptr;
      const double v = std::strtod(cell.c_str(), &end);
      if (end == cell.c_str() || *end != '\0') {
        return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                       ": non-numeric cell '" + cell + "'");
      }
      row.push_back(v);
    }
    table.rows.push_back(std::move(row));
  }
  return table;
}

Status CsvWriter::WriteFile(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return Status::IoError("cannot open " + path);
  // max_digits10 makes the decimal text round-trip to the exact double; the
  // default stream precision (6 significant digits) silently corrupts
  // figure series on re-read.
  f << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (size_t i = 0; i < header_.size(); ++i) {
    if (i) f << ',';
    f << header_[i];
  }
  f << '\n';
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) f << ',';
      f << row[i];
    }
    f << '\n';
  }
  if (!f) return Status::IoError("write failed for " + path);
  return Status::OK();
}

}  // namespace reds
