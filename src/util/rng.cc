#include "util/rng.h"

#include <cassert>
#include <cmath>
#include <numeric>

namespace reds {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t DeriveSeed(uint64_t parent, uint64_t stream) {
  uint64_t state = parent ^ (0x6a09e667f3bcc909ULL + stream * 0x9e3779b97f4a7c15ULL);
  SplitMix64(&state);
  return SplitMix64(&state);
}

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t state = seed;
  for (auto& s : s_) s = SplitMix64(&state);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = Uniform(-1.0, 1.0);
    v = Uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

double Rng::LogitNormal(double mu, double sigma) {
  const double z = Normal(mu, sigma);
  return 1.0 / (1.0 + std::exp(-z));
}

std::vector<int> Rng::BootstrapIndices(int n) {
  std::vector<int> idx(static_cast<size_t>(n));
  for (auto& i : idx) i = static_cast<int>(UniformInt(static_cast<uint64_t>(n)));
  return idx;
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  assert(k >= 0 && k <= n);
  std::vector<int> idx(static_cast<size_t>(n));
  std::iota(idx.begin(), idx.end(), 0);
  // Partial Fisher-Yates: the first k slots are the sample.
  for (int i = 0; i < k; ++i) {
    int j = i + static_cast<int>(UniformInt(static_cast<uint64_t>(n - i)));
    std::swap(idx[static_cast<size_t>(i)], idx[static_cast<size_t>(j)]);
  }
  idx.resize(static_cast<size_t>(k));
  return idx;
}

}  // namespace reds
