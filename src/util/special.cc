#include "util/special.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace reds {

namespace {

constexpr int kMaxIterations = 500;
constexpr double kEpsilon = 1e-14;

// Series expansion of P(a, x); converges quickly for x < a + 1.
double GammaPSeries(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double term = sum;
  for (int i = 0; i < kMaxIterations; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * kEpsilon) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Continued fraction for Q(a, x); converges quickly for x >= a + 1.
double GammaQContinuedFraction(double a, double x) {
  const double kTiny = std::numeric_limits<double>::min() / kEpsilon;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < kEpsilon) break;
  }
  return std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
}

}  // namespace

double RegularizedGammaP(double a, double x) {
  assert(a > 0.0 && x >= 0.0);
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return GammaPSeries(a, x);
  return 1.0 - GammaQContinuedFraction(a, x);
}

double RegularizedGammaQ(double a, double x) {
  return 1.0 - RegularizedGammaP(a, x);
}

double NormalCdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double NormalQuantile(double p) {
  assert(p > 0.0 && p < 1.0);
  // Acklam's algorithm.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  double q, r, x;
  if (p < p_low) {
    q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    q = p - 0.5;
    r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  return x;
}

double ChiSquaredCdf(double x, double k) {
  if (x <= 0.0) return 0.0;
  return RegularizedGammaP(k / 2.0, x / 2.0);
}

double TwoSidedNormalPValue(double z) {
  return 2.0 * (1.0 - NormalCdf(std::fabs(z)));
}

}  // namespace reds
