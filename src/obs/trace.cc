#include "obs/trace.h"

#include <cstdio>
#include <fstream>

namespace reds::obs {

namespace {

thread_local Trace* g_current_trace = nullptr;

double MicrosSince(std::chrono::steady_clock::time_point epoch,
                   std::chrono::steady_clock::time_point t) {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(t - epoch)
                 .count()) /
         1000.0;
}

// Minimal JSON string escaping; span names are identifiers but job labels
// may carry method grammars with arbitrary characters.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

Trace* CurrentTrace() noexcept { return g_current_trace; }

#ifndef REDS_OBS_NOOP
TraceBinding::TraceBinding(Trace* trace) noexcept
    : previous_(g_current_trace) {
  g_current_trace = trace;
}

TraceBinding::~TraceBinding() { g_current_trace = previous_; }
#endif

Trace::Trace(std::string name, MetricsRegistry* metrics)
    : name_(std::move(name)),
      metrics_(metrics),
      epoch_(std::chrono::steady_clock::now()) {}

int Trace::TidForCurrentThread() {
  const auto id = std::this_thread::get_id();
  const auto it = tids_.find(id);
  if (it != tids_.end()) return it->second;
  const int tid = static_cast<int>(tids_.size()) + 1;
  tids_.emplace(id, tid);
  return tid;
}

void Trace::AddSpan(const std::string& name,
                    std::chrono::steady_clock::time_point start,
                    std::chrono::steady_clock::time_point end) {
  TraceEvent ev;
  ev.name = name;
  ev.phase = 'X';
  ev.ts_us = MicrosSince(epoch_, start);
  ev.dur_us = MicrosSince(start, end);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    ev.tid = TidForCurrentThread();
    events_.push_back(ev);
  }
  if (metrics_ != nullptr) {
    metrics_->histogram("stage." + name)
        ->Observe(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
                .count()));
  }
}

void Trace::AddInstant(const std::string& name) {
  TraceEvent ev;
  ev.name = name;
  ev.phase = 'i';
  ev.ts_us = MicrosSince(epoch_, std::chrono::steady_clock::now());
  std::unique_lock<std::mutex> lock(mutex_);
  ev.tid = TidForCurrentThread();
  events_.push_back(std::move(ev));
}

std::vector<TraceEvent> Trace::events() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return events_;
}

int Trace::CountEvents(const std::string& name) const {
  std::unique_lock<std::mutex> lock(mutex_);
  int n = 0;
  for (const TraceEvent& ev : events_) {
    if (ev.name == name) ++n;
  }
  return n;
}

std::string Trace::ToChromeJson() const {
  std::unique_lock<std::mutex> lock(mutex_);
  std::string out = "{\n\"traceEvents\": [\n";
  bool first = true;
  for (const TraceEvent& ev : events_) {
    if (!first) out += ",\n";
    first = false;
    char buf[160];
    if (ev.phase == 'X') {
      std::snprintf(buf, sizeof(buf),
                    "\"ph\": \"X\", \"ts\": %.3f, \"dur\": %.3f, "
                    "\"pid\": 1, \"tid\": %d",
                    ev.ts_us, ev.dur_us, ev.tid);
    } else {
      std::snprintf(buf, sizeof(buf),
                    "\"ph\": \"i\", \"ts\": %.3f, \"s\": \"t\", "
                    "\"pid\": 1, \"tid\": %d",
                    ev.ts_us, ev.tid);
    }
    out += "{\"name\": \"" + JsonEscape(ev.name) + "\", \"cat\": \"reds\", " +
           buf + "}";
  }
  out += "\n],\n\"displayTimeUnit\": \"ms\",\n\"otherData\": {\"trace\": \"" +
         JsonEscape(name_) + "\"}\n}\n";
  return out;
}

bool Trace::WriteFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << ToChromeJson();
  return static_cast<bool>(out);
}

}  // namespace reds::obs
