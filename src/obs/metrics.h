// Engine-wide metrics: a registry of named counters, gauges, and mergeable
// log-bucket latency histograms. Instrumentation sites resolve their metric
// once (pointers are stable for the registry's lifetime) and then record
// lock-free: counters are thread-sharded, gauges are single atomics, and
// histogram buckets are relaxed atomic adds. The registry exports two ways
// -- stable JSON and Prometheus text exposition -- so the same numbers feed
// tests, BENCH_*.json records, and a scrape endpoint once the network
// service lands.
//
// Compiled-in no-op mode: building with -DREDS_OBS_NOOP compiles out every
// timed path -- Histogram::Observe, ScopedTimer, trace spans/instants --
// measuring the instrumentation floor with zero clock reads. Counters and
// gauges stay live in every mode: they are one relaxed atomic add on rare
// events, and the cache stat views (hit/miss/write counts) are thin reads
// over them, so disabling them would change observable engine behavior.
#ifndef REDS_OBS_METRICS_H_
#define REDS_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/serialize.h"

namespace reds::obs {

/// Monotonic counter, sharded across cache lines so concurrent writers on
/// different threads do not bounce one hot line. Value() sums the shards.
class Counter {
 public:
  static constexpr int kShards = 16;

  void Add(uint64_t delta = 1) noexcept {
    // Live even under REDS_OBS_NOOP: cache stat views read these.
    shards_[ShardIndex()].value.fetch_add(delta, std::memory_order_relaxed);
  }

  uint64_t Value() const noexcept {
    uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };

  static size_t ShardIndex() noexcept;

  std::array<Shard, kShards> shards_;
};

/// Point-in-time signed value (queue depth, cache size, active workers).
class Gauge {
 public:
  void Set(int64_t value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }

  void Add(int64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  int64_t Value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> value_{0};
};

/// Value-type histogram contents: bucket counts plus count/sum/min/max.
/// Merge adds bucket-wise, so merging is associative and commutative --
/// per-thread, per-job, or per-process histograms fold into one without
/// loss (the basis for the sharded-discovery and service PRs).
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;  // 0 when count == 0
  uint64_t max = 0;
  std::vector<uint64_t> buckets;

  void Merge(const HistogramSnapshot& other);

  /// Quantile by nearest rank: the representative value (bucket midpoint)
  /// of the bucket holding the ceil(p * count)-th smallest observation.
  /// Within the histogram's relative error bound (see Histogram) of the
  /// exact sample quantile. Returns 0 when empty; p in [0, 1].
  double Quantile(double p) const;

  double MeanValue() const {
    return count > 0 ? static_cast<double>(sum) / static_cast<double>(count)
                     : 0.0;
  }
};

/// Mergeable log-bucket latency histogram over uint64 values (convention:
/// record durations in nanoseconds). Layout: values below kSubBuckets are
/// recorded exactly (unit-width buckets); above, each power-of-two octave
/// splits into kSubBuckets linear sub-buckets, so the relative error of any
/// reported quantile is at most 1/kSubBuckets (3.125%). Observe() is two
/// relaxed atomic adds plus min/max updates -- safe and cheap from any
/// thread.
class Histogram {
 public:
  static constexpr int kSubBuckets = 32;       // power of two
  static constexpr int kSubShift = 5;          // log2(kSubBuckets)
  static constexpr int kNumBuckets = kSubBuckets * (64 - kSubShift + 1);

  Histogram();

  void Observe(uint64_t value) noexcept;

  /// Records the duration of `fn` in nanoseconds.
  template <typename Fn>
  void Time(Fn&& fn) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    Observe(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count()));
  }

  uint64_t Count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  uint64_t Sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  double Quantile(double p) const { return TakeSnapshot().Quantile(p); }

  HistogramSnapshot TakeSnapshot() const;

  /// Folds a snapshot (e.g. from another process) into this histogram.
  void MergeFrom(const HistogramSnapshot& snapshot);

  /// Index of the bucket holding `value` (exposed for tests).
  static int BucketIndex(uint64_t value) noexcept;
  /// Inclusive lower bound of bucket `index`.
  static uint64_t BucketLowerBound(int index) noexcept;
  /// Representative (midpoint) value reported for bucket `index`.
  static double BucketRepresentative(int index) noexcept;

 private:
  std::vector<std::atomic<uint64_t>> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

/// Records the wall time of a scope into a histogram, in nanoseconds.
/// A null histogram makes the timer free of clock calls.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram) : histogram_(histogram) {
#ifndef REDS_OBS_NOOP
    if (histogram_ != nullptr) start_ = std::chrono::steady_clock::now();
#endif
  }
  ~ScopedTimer() {
#ifndef REDS_OBS_NOOP
    if (histogram_ != nullptr) {
      histogram_->Observe(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start_)
              .count()));
    }
#endif
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

enum class ExportFormat { kJson, kPrometheus };

/// Value-type snapshot of a whole registry: every counter/gauge/histogram
/// by name. Merge folds another snapshot in (counters and histograms add,
/// gauges take the other side's value when present -- last writer wins,
/// matching their point-in-time semantics), so per-worker snapshots from a
/// sharded fleet fold into one associative fleet view. Serialize/
/// Deserialize round-trip the snapshot through util/serialize for the
/// shard transport.
struct RegistrySnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  void Merge(const RegistrySnapshot& other);
  void SerializeTo(util::ByteWriter* out) const;
  static bool DeserializeFrom(util::ByteReader* in, RegistrySnapshot* out);
};

/// Named metrics, one namespace per kind. counter()/gauge()/histogram()
/// get-or-create and return pointers that stay valid for the registry's
/// lifetime, so instrumentation sites resolve once at construction and
/// record without further lookups. Thread-safe.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  /// Counter value by name; 0 when absent (test/assertion convenience).
  uint64_t CounterValue(const std::string& name) const;
  int64_t GaugeValue(const std::string& name) const;
  /// Snapshot of a histogram by name; empty when absent.
  HistogramSnapshot HistogramData(const std::string& name) const;

  /// Consistent-enough snapshot of every metric (each metric is read
  /// atomically; the set is whatever is registered at call time).
  RegistrySnapshot TakeSnapshot() const;

  /// Folds a snapshot from another registry (typically another process's
  /// worker registry) into this one: counters Add the delta, gauges Set,
  /// histograms MergeFrom. Metrics absent here are created.
  void MergeSnapshot(const RegistrySnapshot& snapshot);

  /// Stable JSON: {"counters": {...}, "gauges": {...}, "histograms":
  /// {name: {count, sum, mean, min, max, p50, p90, p95, p99}}}. Keys are
  /// sorted (std::map order) so repeated dumps diff cleanly.
  std::string ToJson() const;

  /// Prometheus text exposition (one scrape page): counters and gauges as
  /// their native types, histograms as summaries with quantile labels.
  /// Metric names are sanitized ('.' and '-' become '_').
  std::string ToPrometheusText() const;

  std::string Dump(ExportFormat format) const {
    return format == ExportFormat::kJson ? ToJson() : ToPrometheusText();
  }

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace reds::obs

#endif  // REDS_OBS_METRICS_H_
