// Per-job pipeline tracing: a Trace collects thread-safe spans covering the
// discovery pipeline (ingest/fingerprint, sketch pass, bin/code build,
// metamodel fit vs cache hit, relabel stream, tuning, peel/paste,
// validation) and exports Chrome trace-event JSON loadable in
// chrome://tracing or Perfetto.
//
// Deep layers (method.cc, reds.cc, prim.cc, binned_index.cc) never see a
// Trace in their signatures. The engine worker binds the job's trace to the
// current thread with a TraceBinding, and instrumentation sites open spans
// against whatever trace is bound:
//
//   obs::Span span("prim.peel");        // no-op when no trace is bound
//   obs::TraceInstant("metamodel.cache_hit");
//
// Spans are recorded as Chrome 'X' (complete) events; nesting is implicit
// via time containment per thread, which Perfetto renders as a flame graph.
// When the trace holds a MetricsRegistry, each completed span also feeds
// the `stage.<name>` latency histogram, so stage-level quantiles accumulate
// across jobs without a separate instrumentation pass.
//
// Building with -DREDS_OBS_NOOP compiles Span/TraceBinding/TraceInstant to
// empty inlines (see obs/metrics.h).
#ifndef REDS_OBS_TRACE_H_
#define REDS_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"

namespace reds::obs {

/// One Chrome trace event. phase 'X' = complete span (ts + dur), 'i' =
/// instant. Timestamps and durations are microseconds relative to the
/// trace's construction.
struct TraceEvent {
  std::string name;
  char phase = 'X';
  double ts_us = 0.0;
  double dur_us = 0.0;
  int tid = 0;
};

/// Thread-safe per-job event collection. Create one per job, bind it to
/// each worker thread that executes the job (TraceBinding), and dump with
/// ToChromeJson()/WriteFile() once the job finishes.
class Trace {
 public:
  /// `name` labels the trace (job id / method); `metrics`, when non-null,
  /// receives a `stage.<span-name>` histogram observation (nanoseconds)
  /// for every completed span.
  explicit Trace(std::string name, MetricsRegistry* metrics = nullptr);

  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  const std::string& name() const { return name_; }

  /// Appends a completed span; thread-safe. `start`/`end` come from
  /// std::chrono::steady_clock (Span handles this).
  void AddSpan(const std::string& name,
               std::chrono::steady_clock::time_point start,
               std::chrono::steady_clock::time_point end);

  /// Appends an instant event at now; thread-safe.
  void AddInstant(const std::string& name);

  /// Snapshot of the recorded events (test convenience).
  std::vector<TraceEvent> events() const;

  /// Number of recorded events whose name equals `name`.
  int CountEvents(const std::string& name) const;

  /// Chrome trace-event JSON: {"traceEvents": [...], ...}. Valid for
  /// chrome://tracing and Perfetto.
  std::string ToChromeJson() const;

  /// Writes ToChromeJson() to `path`; returns false on I/O failure.
  bool WriteFile(const std::string& path) const;

 private:
  int TidForCurrentThread();  // requires mutex_ held

  const std::string name_;
  MetricsRegistry* const metrics_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::unordered_map<std::thread::id, int> tids_;
};

/// The trace bound to the current thread (null when none).
Trace* CurrentTrace() noexcept;

/// Binds a trace to the current thread for the binding's lifetime,
/// restoring the previous binding on destruction. The engine worker wraps
/// each job body in one of these so every Span opened below lands in the
/// job's trace.
class TraceBinding {
 public:
#ifndef REDS_OBS_NOOP
  explicit TraceBinding(Trace* trace) noexcept;
  ~TraceBinding();
#else
  explicit TraceBinding(Trace*) noexcept {}
  ~TraceBinding() = default;
#endif
  TraceBinding(const TraceBinding&) = delete;
  TraceBinding& operator=(const TraceBinding&) = delete;

 private:
#ifndef REDS_OBS_NOOP
  Trace* previous_;
#endif
};

/// RAII span against the currently bound trace. Free (no clock call) when
/// no trace is bound.
class Span {
 public:
#ifndef REDS_OBS_NOOP
  explicit Span(const char* name) noexcept : trace_(CurrentTrace()) {
    if (trace_ != nullptr) {
      name_ = name;
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~Span() {
    if (trace_ != nullptr) {
      trace_->AddSpan(name_, start_, std::chrono::steady_clock::now());
    }
  }
#else
  explicit Span(const char*) noexcept {}
  ~Span() = default;
#endif
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
#ifndef REDS_OBS_NOOP
  Trace* trace_;
  const char* name_ = "";
  std::chrono::steady_clock::time_point start_;
#endif
};

/// Records an instant event in the currently bound trace (no-op when none).
#ifndef REDS_OBS_NOOP
inline void TraceInstant(const char* name) {
  Trace* t = CurrentTrace();
  if (t != nullptr) t->AddInstant(name);
}
#else
inline void TraceInstant(const char*) {}
#endif

}  // namespace reds::obs

#endif  // REDS_OBS_TRACE_H_
