#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

namespace reds::obs {

size_t Counter::ShardIndex() noexcept {
  // Each thread claims one shard slot on first use; round-robin assignment
  // spreads unrelated threads across the lines.
  static std::atomic<size_t> next{0};
  thread_local const size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) %
      static_cast<size_t>(kShards);
  return slot;
}

Histogram::Histogram() : buckets_(static_cast<size_t>(kNumBuckets)) {}

int Histogram::BucketIndex(uint64_t value) noexcept {
  if (value < static_cast<uint64_t>(kSubBuckets)) {
    return static_cast<int>(value);
  }
  const int exponent = std::bit_width(value) - 1;  // >= kSubShift
  const int sub = static_cast<int>((value - (uint64_t{1} << exponent)) >>
                                   (exponent - kSubShift));
  return kSubBuckets + (exponent - kSubShift) * kSubBuckets + sub;
}

uint64_t Histogram::BucketLowerBound(int index) noexcept {
  if (index < kSubBuckets) return static_cast<uint64_t>(index);
  const int group = (index - kSubBuckets) / kSubBuckets;
  const int sub = (index - kSubBuckets) % kSubBuckets;
  const int exponent = group + kSubShift;
  return (uint64_t{1} << exponent) +
         (static_cast<uint64_t>(sub) << (exponent - kSubShift));
}

double Histogram::BucketRepresentative(int index) noexcept {
  if (index < kSubBuckets) return static_cast<double>(index);  // exact
  const int group = (index - kSubBuckets) / kSubBuckets;
  const int exponent = group + kSubShift;
  const uint64_t width = uint64_t{1} << (exponent - kSubShift);
  return static_cast<double>(BucketLowerBound(index)) +
         static_cast<double>(width - 1) * 0.5;
}

void Histogram::Observe(uint64_t value) noexcept {
#ifndef REDS_OBS_NOOP
  buckets_[static_cast<size_t>(BucketIndex(value))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
#else
  (void)value;
#endif
}

HistogramSnapshot Histogram::TakeSnapshot() const {
  HistogramSnapshot out;
  out.buckets.resize(static_cast<size_t>(kNumBuckets));
  for (int b = 0; b < kNumBuckets; ++b) {
    out.buckets[static_cast<size_t>(b)] =
        buckets_[static_cast<size_t>(b)].load(std::memory_order_relaxed);
  }
  out.count = count_.load(std::memory_order_relaxed);
  out.sum = sum_.load(std::memory_order_relaxed);
  const uint64_t lo = min_.load(std::memory_order_relaxed);
  out.min = out.count > 0 && lo != UINT64_MAX ? lo : 0;
  out.max = max_.load(std::memory_order_relaxed);
  return out;
}

void Histogram::MergeFrom(const HistogramSnapshot& snapshot) {
#ifndef REDS_OBS_NOOP
  const size_t n = std::min(snapshot.buckets.size(),
                            static_cast<size_t>(kNumBuckets));
  for (size_t b = 0; b < n; ++b) {
    if (snapshot.buckets[b] > 0) {
      buckets_[b].fetch_add(snapshot.buckets[b], std::memory_order_relaxed);
    }
  }
  count_.fetch_add(snapshot.count, std::memory_order_relaxed);
  sum_.fetch_add(snapshot.sum, std::memory_order_relaxed);
  if (snapshot.count > 0) {
    uint64_t seen = min_.load(std::memory_order_relaxed);
    while (snapshot.min < seen &&
           !min_.compare_exchange_weak(seen, snapshot.min,
                                       std::memory_order_relaxed)) {
    }
    seen = max_.load(std::memory_order_relaxed);
    while (snapshot.max > seen &&
           !max_.compare_exchange_weak(seen, snapshot.max,
                                       std::memory_order_relaxed)) {
    }
  }
#else
  (void)snapshot;
#endif
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (buckets.size() < other.buckets.size()) {
    buckets.resize(other.buckets.size(), 0);
  }
  for (size_t b = 0; b < other.buckets.size(); ++b) {
    buckets[b] += other.buckets[b];
  }
  if (other.count > 0) {
    min = count > 0 ? std::min(min, other.min) : other.min;
    max = count > 0 ? std::max(max, other.max) : other.max;
  }
  count += other.count;
  sum += other.sum;
}

double HistogramSnapshot::Quantile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  // Nearest rank: the smallest bucket whose cumulative count reaches
  // ceil(p * count), with rank 1 for p == 0 (the minimum).
  uint64_t rank = static_cast<uint64_t>(
      std::max(1.0, std::ceil(p * static_cast<double>(count))));
  rank = std::min(rank, count);
  uint64_t cumulative = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    cumulative += buckets[b];
    if (cumulative >= rank) {
      double value = Histogram::BucketRepresentative(static_cast<int>(b));
      // The recorded extremes tighten the outermost buckets.
      value = std::max(value, static_cast<double>(min));
      value = std::min(value, static_cast<double>(max));
      return value;
    }
  }
  return static_cast<double>(max);
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

uint64_t MetricsRegistry::CounterValue(const std::string& name) const {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->Value();
}

int64_t MetricsRegistry::GaugeValue(const std::string& name) const {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second->Value();
}

HistogramSnapshot MetricsRegistry::HistogramData(
    const std::string& name) const {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? HistogramSnapshot() :
                                   it->second->TakeSnapshot();
}

void RegistrySnapshot::Merge(const RegistrySnapshot& other) {
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const auto& [name, value] : other.gauges) gauges[name] = value;
  for (const auto& [name, snapshot] : other.histograms) {
    auto [it, inserted] = histograms.try_emplace(name, snapshot);
    if (!inserted) it->second.Merge(snapshot);
  }
}

void RegistrySnapshot::SerializeTo(util::ByteWriter* out) const {
  out->U64(counters.size());
  for (const auto& [name, value] : counters) {
    out->Str(name);
    out->U64(value);
  }
  out->U64(gauges.size());
  for (const auto& [name, value] : gauges) {
    out->Str(name);
    out->U64(static_cast<uint64_t>(value));
  }
  out->U64(histograms.size());
  for (const auto& [name, h] : histograms) {
    out->Str(name);
    out->U64(h.count);
    out->U64(h.sum);
    out->U64(h.min);
    out->U64(h.max);
    out->U64(h.buckets.size());
    for (uint64_t b : h.buckets) out->U64(b);
  }
}

bool RegistrySnapshot::DeserializeFrom(util::ByteReader* in,
                                       RegistrySnapshot* out) {
  out->counters.clear();
  out->gauges.clear();
  out->histograms.clear();
  const uint64_t num_counters = in->U64();
  if (num_counters > in->remaining()) return false;
  for (uint64_t i = 0; i < num_counters && in->ok(); ++i) {
    const std::string name = in->Str();
    out->counters[name] = in->U64();
  }
  const uint64_t num_gauges = in->U64();
  if (num_gauges > in->remaining()) return false;
  for (uint64_t i = 0; i < num_gauges && in->ok(); ++i) {
    const std::string name = in->Str();
    out->gauges[name] = static_cast<int64_t>(in->U64());
  }
  const uint64_t num_histograms = in->U64();
  if (num_histograms > in->remaining()) return false;
  for (uint64_t i = 0; i < num_histograms && in->ok(); ++i) {
    const std::string name = in->Str();
    HistogramSnapshot h;
    h.count = in->U64();
    h.sum = in->U64();
    h.min = in->U64();
    h.max = in->U64();
    const uint64_t num_buckets = in->U64();
    if (!in->ok() || num_buckets > in->remaining() / 8) return false;
    h.buckets.reserve(static_cast<size_t>(num_buckets));
    for (uint64_t b = 0; b < num_buckets; ++b) h.buckets.push_back(in->U64());
    out->histograms[name] = std::move(h);
  }
  return in->ok();
}

RegistrySnapshot MetricsRegistry::TakeSnapshot() const {
  std::unique_lock<std::mutex> lock(mutex_);
  RegistrySnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->Value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms[name] = histogram->TakeSnapshot();
  }
  return snapshot;
}

void MetricsRegistry::MergeSnapshot(const RegistrySnapshot& snapshot) {
  for (const auto& [name, value] : snapshot.counters) {
    if (value > 0) counter(name)->Add(value);
  }
  for (const auto& [name, value] : snapshot.gauges) {
    gauge(name)->Set(value);
  }
  for (const auto& [name, h] : snapshot.histograms) {
    histogram(name)->MergeFrom(h);
  }
}

namespace {

void AppendJsonNumber(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  *out += buf;
}

std::string PrometheusName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == '.' || c == '-') c = '_';
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::ToJson() const {
  std::unique_lock<std::mutex> lock(mutex_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": " + std::to_string(counter->Value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": " + std::to_string(gauge->Value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    const HistogramSnapshot s = histogram->TakeSnapshot();
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": {\"count\": " + std::to_string(s.count) +
           ", \"sum\": " + std::to_string(s.sum) + ", \"mean\": ";
    AppendJsonNumber(&out, s.MeanValue());
    out += ", \"min\": " + std::to_string(s.min) +
           ", \"max\": " + std::to_string(s.max);
    for (const auto& [label, p] :
         {std::pair<const char*, double>{"p50", 0.50},
          {"p90", 0.90},
          {"p95", 0.95},
          {"p99", 0.99}}) {
      out += std::string(", \"") + label + "\": ";
      AppendJsonNumber(&out, s.Quantile(p));
    }
    out += "}";
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

std::string MetricsRegistry::ToPrometheusText() const {
  std::unique_lock<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    const std::string p = PrometheusName(name);
    out += "# TYPE " + p + " counter\n";
    out += p + " " + std::to_string(counter->Value()) + "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    const std::string p = PrometheusName(name);
    out += "# TYPE " + p + " gauge\n";
    out += p + " " + std::to_string(gauge->Value()) + "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    const std::string p = PrometheusName(name);
    const HistogramSnapshot s = histogram->TakeSnapshot();
    out += "# TYPE " + p + " summary\n";
    for (const auto& [label, q] :
         {std::pair<const char*, double>{"0.5", 0.50},
          {"0.9", 0.90},
          {"0.95", 0.95},
          {"0.99", 0.99}}) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.6g", s.Quantile(q));
      out += p + "{quantile=\"" + label + "\"} " + buf + "\n";
    }
    out += p + "_sum " + std::to_string(s.sum) + "\n";
    out += p + "_count " + std::to_string(s.count) + "\n";
  }
  return out;
}

}  // namespace reds::obs
