#include "la/matrix.h"

#include <algorithm>
#include <cmath>

namespace reds::la {

Matrix Matrix::Identity(int n) {
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (int r = 0; r < rows_; ++r)
    for (int c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (int i = 0; i < rows_; ++i) {
    for (int k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      for (int j = 0; j < other.cols_; ++j) {
        out(i, j) += aik * other(k, j);
      }
    }
  }
  return out;
}

std::vector<double> Matrix::Multiply(const std::vector<double>& v) const {
  assert(static_cast<int>(v.size()) == cols_);
  std::vector<double> out(static_cast<size_t>(rows_), 0.0);
  for (int i = 0; i < rows_; ++i) {
    double s = 0.0;
    for (int j = 0; j < cols_; ++j) s += (*this)(i, j) * v[static_cast<size_t>(j)];
    out[static_cast<size_t>(i)] = s;
  }
  return out;
}

double Matrix::MaxAbs() const {
  double m = 0.0;
  for (int r = 0; r < rows_; ++r)
    for (int c = 0; c < cols_; ++c) m = std::max(m, std::fabs((*this)(r, c)));
  return m;
}

Result<std::vector<double>> SolveLinearSystem(Matrix a, std::vector<double> b) {
  const int n = a.rows();
  if (a.cols() != n) return Status::InvalidArgument("matrix not square");
  if (static_cast<int>(b.size()) != n) {
    return Status::InvalidArgument("rhs size mismatch");
  }
  for (int col = 0; col < n; ++col) {
    int pivot = col;
    for (int r = col + 1; r < n; ++r) {
      if (std::fabs(a(r, col)) > std::fabs(a(pivot, col))) pivot = r;
    }
    if (std::fabs(a(pivot, col)) < 1e-300) {
      return Status::FailedPrecondition("singular matrix in SolveLinearSystem");
    }
    if (pivot != col) {
      for (int c = 0; c < n; ++c) std::swap(a(col, c), a(pivot, c));
      std::swap(b[static_cast<size_t>(col)], b[static_cast<size_t>(pivot)]);
    }
    for (int r = col + 1; r < n; ++r) {
      const double factor = a(r, col) / a(col, col);
      if (factor == 0.0) continue;
      a(r, col) = 0.0;
      for (int c = col + 1; c < n; ++c) a(r, c) -= factor * a(col, c);
      b[static_cast<size_t>(r)] -= factor * b[static_cast<size_t>(col)];
    }
  }
  std::vector<double> x(static_cast<size_t>(n));
  for (int r = n - 1; r >= 0; --r) {
    double s = b[static_cast<size_t>(r)];
    for (int c = r + 1; c < n; ++c) s -= a(r, c) * x[static_cast<size_t>(c)];
    x[static_cast<size_t>(r)] = s / a(r, r);
  }
  return x;
}

namespace {

// In-place balancing (Osborne): scales rows/columns by powers of 2 to reduce
// the matrix norm; improves eigenvalue accuracy.
void Balance(Matrix* a) {
  const int n = a->rows();
  const double radix = 2.0;
  bool done = false;
  while (!done) {
    done = true;
    for (int i = 0; i < n; ++i) {
      double r = 0.0, c = 0.0;
      for (int j = 0; j < n; ++j) {
        if (j == i) continue;
        c += std::fabs((*a)(j, i));
        r += std::fabs((*a)(i, j));
      }
      if (c == 0.0 || r == 0.0) continue;
      double g = r / radix;
      double f = 1.0;
      const double s = c + r;
      while (c < g) {
        f *= radix;
        c *= radix * radix;
      }
      g = r * radix;
      while (c > g) {
        f /= radix;
        c /= radix * radix;
      }
      if ((c + r) / f < 0.95 * s) {
        done = false;
        const double ginv = 1.0 / f;
        for (int j = 0; j < n; ++j) (*a)(i, j) *= ginv;
        for (int j = 0; j < n; ++j) (*a)(j, i) *= f;
      }
    }
  }
}

// Reduction to upper Hessenberg form by stabilized elementary similarity
// transformations (Numerical Recipes "elmhes").
void HessenbergReduce(Matrix* a) {
  const int n = a->rows();
  for (int m = 1; m < n - 1; ++m) {
    double x = 0.0;
    int i = m;
    for (int j = m; j < n; ++j) {
      if (std::fabs((*a)(j, m - 1)) > std::fabs(x)) {
        x = (*a)(j, m - 1);
        i = j;
      }
    }
    if (i != m) {
      for (int j = m - 1; j < n; ++j) std::swap((*a)(i, j), (*a)(m, j));
      for (int j = 0; j < n; ++j) std::swap((*a)(j, i), (*a)(j, m));
    }
    if (x != 0.0) {
      for (i = m + 1; i < n; ++i) {
        double y = (*a)(i, m - 1);
        if (y == 0.0) continue;
        y /= x;
        (*a)(i, m - 1) = y;
        for (int j = m; j < n; ++j) (*a)(i, j) -= y * (*a)(m, j);
        for (int j = 0; j < n; ++j) (*a)(j, m) += y * (*a)(j, i);
      }
    }
  }
  // Zero the lower part below the first subdiagonal.
  for (int r = 2; r < n; ++r)
    for (int c = 0; c < r - 1; ++c) (*a)(r, c) = 0.0;
}

// Francis QR iteration on an upper Hessenberg matrix (Numerical Recipes
// "hqr"). Returns false if convergence fails.
bool HessenbergQr(Matrix* aptr, std::vector<std::complex<double>>* eig) {
  Matrix& a = *aptr;
  const int n = a.rows();
  eig->clear();
  eig->reserve(static_cast<size_t>(n));
  double anorm = 0.0;
  for (int i = 0; i < n; ++i)
    for (int j = std::max(i - 1, 0); j < n; ++j) anorm += std::fabs(a(i, j));
  if (anorm == 0.0) {
    eig->assign(static_cast<size_t>(n), {0.0, 0.0});
    return true;
  }
  int nn = n - 1;
  double t = 0.0;
  while (nn >= 0) {
    int its = 0;
    int l;
    do {
      for (l = nn; l >= 1; --l) {
        const double s = std::fabs(a(l - 1, l - 1)) + std::fabs(a(l, l));
        double ss = s == 0.0 ? anorm : s;
        if (std::fabs(a(l, l - 1)) + ss == ss) {
          a(l, l - 1) = 0.0;
          break;
        }
      }
      double x = a(nn, nn);
      if (l == nn) {
        eig->push_back({x + t, 0.0});
        --nn;
      } else {
        double y = a(nn - 1, nn - 1);
        double w = a(nn, nn - 1) * a(nn - 1, nn);
        if (l == nn - 1) {
          double p = 0.5 * (y - x);
          double q = p * p + w;
          double z = std::sqrt(std::fabs(q));
          x += t;
          if (q >= 0.0) {
            z = p + (p >= 0.0 ? std::fabs(z) : -std::fabs(z));
            eig->push_back({x + z, 0.0});
            eig->push_back({z == 0.0 ? x : x - w / z, 0.0});
          } else {
            eig->push_back({x + p, z});
            eig->push_back({x + p, -z});
          }
          nn -= 2;
        } else {
          if (its == 60) return false;
          double p = 0.0, q = 0.0, z = 0.0, r = 0.0, s = 0.0;
          if (its == 10 || its == 20) {
            // Exceptional shift.
            t += x;
            for (int i = 0; i <= nn; ++i) a(i, i) -= x;
            s = std::fabs(a(nn, nn - 1)) + std::fabs(a(nn - 1, nn - 2));
            x = y = 0.75 * s;
            w = -0.4375 * s * s;
          }
          ++its;
          int m;
          for (m = nn - 2; m >= l; --m) {
            z = a(m, m);
            r = x - z;
            s = y - z;
            p = (r * s - w) / a(m + 1, m) + a(m, m + 1);
            q = a(m + 1, m + 1) - z - r - s;
            r = a(m + 2, m + 1);
            s = std::fabs(p) + std::fabs(q) + std::fabs(r);
            p /= s;
            q /= s;
            r /= s;
            if (m == l) break;
            const double u = std::fabs(a(m, m - 1)) * (std::fabs(q) + std::fabs(r));
            const double v = std::fabs(p) * (std::fabs(a(m - 1, m - 1)) +
                                             std::fabs(z) + std::fabs(a(m + 1, m + 1)));
            if (u + v == v) break;
          }
          for (int i = m + 2; i <= nn; ++i) {
            a(i, i - 2) = 0.0;
            if (i != m + 2) a(i, i - 3) = 0.0;
          }
          for (int k = m; k <= nn - 1; ++k) {
            if (k != m) {
              p = a(k, k - 1);
              q = a(k + 1, k - 1);
              r = k != nn - 1 ? a(k + 2, k - 1) : 0.0;
              x = std::fabs(p) + std::fabs(q) + std::fabs(r);
              if (x != 0.0) {
                p /= x;
                q /= x;
                r /= x;
              }
            }
            s = std::sqrt(p * p + q * q + r * r);
            if (p < 0.0) s = -s;
            if (s == 0.0) continue;
            if (k == m) {
              if (l != m) a(k, k - 1) = -a(k, k - 1);
            } else {
              a(k, k - 1) = -s * x;
            }
            p += s;
            x = p / s;
            y = q / s;
            z = r / s;
            q /= p;
            r /= p;
            for (int j = k; j <= nn; ++j) {
              p = a(k, j) + q * a(k + 1, j);
              if (k != nn - 1) {
                p += r * a(k + 2, j);
                a(k + 2, j) -= p * z;
              }
              a(k + 1, j) -= p * y;
              a(k, j) -= p * x;
            }
            const int mmin = nn < k + 3 ? nn : k + 3;
            for (int i = l; i <= mmin; ++i) {
              p = x * a(i, k) + y * a(i, k + 1);
              if (k != nn - 1) {
                p += z * a(i, k + 2);
                a(i, k + 2) -= p * r;
              }
              a(i, k + 1) -= p * q;
              a(i, k) -= p;
            }
          }
        }
      }
    } while (l < nn - 1 && nn >= 0);
  }
  return true;
}

}  // namespace

Result<std::vector<std::complex<double>>> Eigenvalues(Matrix a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Eigenvalues requires a square matrix");
  }
  if (a.rows() == 0) return std::vector<std::complex<double>>{};
  Balance(&a);
  HessenbergReduce(&a);
  std::vector<std::complex<double>> eig;
  if (!HessenbergQr(&a, &eig)) {
    return Status::RuntimeError("QR eigenvalue iteration did not converge");
  }
  return eig;
}

Result<double> SpectralAbscissa(const Matrix& a) {
  auto eig = Eigenvalues(a);
  if (!eig.ok()) return eig.status();
  double best = -1e300;
  for (const auto& z : *eig) best = std::max(best, z.real());
  return best;
}

}  // namespace reds::la
