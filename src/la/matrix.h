// Small dense linear algebra: row-major matrices, LU solve, and a real
// non-symmetric eigenvalue solver (Hessenberg reduction + shifted QR).
// Sized for the library's needs (the 12x12 Jacobian of the DSGC grid model),
// not for large-scale numerics.
#ifndef REDS_LA_MATRIX_H_
#define REDS_LA_MATRIX_H_

#include <cassert>
#include <complex>
#include <vector>

#include "util/status.h"

namespace reds::la {

/// Non-owning row-major view of an R x C block of doubles: the matrix-free
/// counterpart of Matrix for code that consumes data in streamed chunks
/// (core::DatasetSource hands out blocks as views into reusable buffers, so
/// no per-block Matrix is ever materialized). The viewed storage must
/// outlive the view.
class ConstMatrixView {
 public:
  ConstMatrixView() : data_(nullptr), rows_(0), cols_(0) {}
  ConstMatrixView(const double* data, int rows, int cols)
      : data_(data), rows_(rows), cols_(cols) {
    assert(rows >= 0 && cols >= 0);
    assert(data != nullptr || rows == 0);
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  double operator()(int r, int c) const {
    assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * static_cast<size_t>(cols_) +
                 static_cast<size_t>(c)];
  }

  /// Pointer to the start of row r (contiguous, cols() doubles).
  const double* row(int r) const {
    assert(r >= 0 && r < rows_);
    return data_ + static_cast<size_t>(r) * static_cast<size_t>(cols_);
  }

  const double* data() const { return data_; }

 private:
  const double* data_;
  int rows_, cols_;
};

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(int rows, int cols, double fill = 0.0)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * static_cast<size_t>(cols), fill) {
    assert(rows >= 0 && cols >= 0);
  }

  static Matrix Identity(int n);

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  double& operator()(int r, int c) {
    assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * static_cast<size_t>(cols_) +
                 static_cast<size_t>(c)];
  }
  double operator()(int r, int c) const {
    assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * static_cast<size_t>(cols_) +
                 static_cast<size_t>(c)];
  }

  Matrix Transpose() const;

  /// Matrix product; requires cols() == other.rows().
  Matrix Multiply(const Matrix& other) const;

  /// Matrix-vector product; requires cols() == v.size().
  std::vector<double> Multiply(const std::vector<double>& v) const;

  /// Maximum absolute entry.
  double MaxAbs() const;

  /// Matrix-free view of the full storage.
  ConstMatrixView View() const {
    return ConstMatrixView(data_.data(), rows_, cols_);
  }

 private:
  int rows_, cols_;
  std::vector<double> data_;
};

/// Solves A x = b with partial-pivoted LU. Fails if A is singular (to
/// working precision) or dimensions mismatch.
Result<std::vector<double>> SolveLinearSystem(Matrix a, std::vector<double> b);

/// All eigenvalues of a real square matrix, as complex numbers, in no
/// particular order. Uses balancing, Householder Hessenberg reduction and the
/// Francis double-shift QR iteration. Fails if the iteration does not
/// converge (rare; pathological inputs).
Result<std::vector<std::complex<double>>> Eigenvalues(Matrix a);

/// Largest real part among the eigenvalues of `a`. Convenience for stability
/// analysis of linearized dynamical systems.
Result<double> SpectralAbscissa(const Matrix& a);

}  // namespace reds::la

#endif  // REDS_LA_MATRIX_H_
