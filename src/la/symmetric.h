// Symmetric eigendecomposition (cyclic Jacobi) and PCA helpers; used by
// PCA-PRIM (Dalal et al. 2013), the rotation-based PRIM variant the paper
// lists as compatible with REDS.
#ifndef REDS_LA_SYMMETRIC_H_
#define REDS_LA_SYMMETRIC_H_

#include "la/matrix.h"

namespace reds::la {

/// Eigendecomposition of a symmetric matrix: a = V diag(values) V^T.
/// Eigenvalues are sorted in decreasing order; V's columns are the matching
/// orthonormal eigenvectors. Fails on non-square input; symmetry is assumed
/// (the strictly lower triangle is ignored).
struct SymmetricEigen {
  std::vector<double> values;
  Matrix vectors;  // column j is the eigenvector of values[j]
};
Result<SymmetricEigen> SymmetricEigendecomposition(Matrix a);

/// Covariance matrix of row-major data (n x dim), with the 1/(n-1)
/// normalization. Requires n >= 2.
Result<Matrix> CovarianceMatrix(const std::vector<double>& data, int dim);

}  // namespace reds::la

#endif  // REDS_LA_SYMMETRIC_H_
