#include "la/symmetric.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace reds::la {

Result<SymmetricEigen> SymmetricEigendecomposition(Matrix a) {
  const int n = a.rows();
  if (a.cols() != n) return Status::InvalidArgument("matrix not square");
  Matrix v = Matrix::Identity(n);

  // Cyclic Jacobi sweeps.
  for (int sweep = 0; sweep < 100; ++sweep) {
    double off = 0.0;
    for (int p = 0; p < n; ++p) {
      for (int q = p + 1; q < n; ++q) off += a(p, q) * a(p, q);
    }
    if (off < 1e-24) break;
    for (int p = 0; p < n; ++p) {
      for (int q = p + 1; q < n; ++q) {
        if (std::fabs(a(p, q)) < 1e-300) continue;
        const double theta = (a(q, q) - a(p, p)) / (2.0 * a(p, q));
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Rotate rows/columns p and q of a.
        for (int k = 0; k < n; ++k) {
          const double akp = a(k, p), akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (int k = 0; k < n; ++k) {
          const double apk = a(p, k), aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        // Accumulate the rotation into v.
        for (int k = 0; k < n; ++k) {
          const double vkp = v(k, p), vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  SymmetricEigen out;
  out.values.resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) out.values[static_cast<size_t>(i)] = a(i, i);
  // Sort decreasing, permuting eigenvector columns along.
  std::vector<int> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int x, int y) {
    return out.values[static_cast<size_t>(x)] > out.values[static_cast<size_t>(y)];
  });
  SymmetricEigen sorted;
  sorted.values.resize(static_cast<size_t>(n));
  sorted.vectors = Matrix(n, n);
  for (int j = 0; j < n; ++j) {
    const int src = order[static_cast<size_t>(j)];
    sorted.values[static_cast<size_t>(j)] = out.values[static_cast<size_t>(src)];
    for (int i = 0; i < n; ++i) sorted.vectors(i, j) = v(i, src);
  }
  return sorted;
}

Result<Matrix> CovarianceMatrix(const std::vector<double>& data, int dim) {
  if (dim <= 0 || data.size() % static_cast<size_t>(dim) != 0) {
    return Status::InvalidArgument("bad data shape");
  }
  const int n = static_cast<int>(data.size()) / dim;
  if (n < 2) return Status::InvalidArgument("need at least 2 rows");
  std::vector<double> mean(static_cast<size_t>(dim), 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < dim; ++j) {
      mean[static_cast<size_t>(j)] += data[static_cast<size_t>(i) * dim + j];
    }
  }
  for (auto& m : mean) m /= n;
  Matrix cov(dim, dim);
  for (int i = 0; i < n; ++i) {
    for (int a = 0; a < dim; ++a) {
      const double da = data[static_cast<size_t>(i) * dim + a] - mean[static_cast<size_t>(a)];
      for (int b = a; b < dim; ++b) {
        const double db = data[static_cast<size_t>(i) * dim + b] - mean[static_cast<size_t>(b)];
        cov(a, b) += da * db;
      }
    }
  }
  for (int a = 0; a < dim; ++a) {
    for (int b = a; b < dim; ++b) {
      cov(a, b) /= n - 1;
      cov(b, a) = cov(a, b);
    }
  }
  return cov;
}

}  // namespace reds::la
