// Descriptive statistics used by the experiment harness and benches.
#ifndef REDS_STATS_DESCRIPTIVE_H_
#define REDS_STATS_DESCRIPTIVE_H_

#include <vector>

namespace reds::stats {

double Mean(const std::vector<double>& v);
double Variance(const std::vector<double>& v);  // sample variance (n-1)
double StdDev(const std::vector<double>& v);
double Median(std::vector<double> v);

/// Empirical quantile with linear interpolation (type-7, R default);
/// p in [0, 1].
double Quantile(std::vector<double> v, double p);

/// First and third quartiles.
struct Quartiles {
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
};
Quartiles ComputeQuartiles(const std::vector<double>& v);

/// Ranks with midranks for ties (1-based).
std::vector<double> Ranks(const std::vector<double>& v);

}  // namespace reds::stats

#endif  // REDS_STATS_DESCRIPTIVE_H_
