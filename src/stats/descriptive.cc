#include "stats/descriptive.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace reds::stats {

double Mean(const std::vector<double>& v) {
  assert(!v.empty());
  return std::accumulate(v.begin(), v.end(), 0.0) / static_cast<double>(v.size());
}

double Variance(const std::vector<double>& v) {
  assert(v.size() >= 2);
  const double m = Mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return s / static_cast<double>(v.size() - 1);
}

double StdDev(const std::vector<double>& v) { return std::sqrt(Variance(v)); }

double Quantile(std::vector<double> v, double p) {
  assert(!v.empty() && p >= 0.0 && p <= 1.0);
  std::sort(v.begin(), v.end());
  const double h = (static_cast<double>(v.size()) - 1.0) * p;
  const auto lo = static_cast<size_t>(std::floor(h));
  const auto hi = static_cast<size_t>(std::ceil(h));
  return v[lo] + (h - std::floor(h)) * (v[hi] - v[lo]);
}

double Median(std::vector<double> v) { return Quantile(std::move(v), 0.5); }

Quartiles ComputeQuartiles(const std::vector<double>& v) {
  return {Quantile(v, 0.25), Quantile(v, 0.5), Quantile(v, 0.75)};
}

std::vector<double> Ranks(const std::vector<double>& v) {
  const size_t n = v.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return v[a] < v[b]; });
  std::vector<double> rank(n);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && v[order[j + 1]] == v[order[i]]) ++j;
    const double mid = 0.5 * (static_cast<double>(i) + static_cast<double>(j)) + 1.0;
    for (size_t k = i; k <= j; ++k) rank[order[k]] = mid;
    i = j + 1;
  }
  return rank;
}

}  // namespace reds::stats
