#include "stats/tests.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "stats/descriptive.h"
#include "util/special.h"

namespace reds::stats {

TestResult WilcoxonRankSum(const std::vector<double>& a,
                           const std::vector<double>& b) {
  const double n1 = static_cast<double>(a.size());
  const double n2 = static_cast<double>(b.size());
  assert(n1 > 0 && n2 > 0);
  std::vector<double> pooled = a;
  pooled.insert(pooled.end(), b.begin(), b.end());
  const std::vector<double> rank = Ranks(pooled);
  double r1 = 0.0;
  for (size_t i = 0; i < a.size(); ++i) r1 += rank[i];
  const double u = r1 - n1 * (n1 + 1.0) / 2.0;
  const double mean_u = n1 * n2 / 2.0;

  // Tie correction for the variance.
  std::vector<double> sorted = pooled;
  std::sort(sorted.begin(), sorted.end());
  double tie_term = 0.0;
  const double n = n1 + n2;
  for (size_t i = 0; i < sorted.size();) {
    size_t j = i;
    while (j + 1 < sorted.size() && sorted[j + 1] == sorted[i]) ++j;
    const double t = static_cast<double>(j - i + 1);
    tie_term += t * t * t - t;
    i = j + 1;
  }
  const double var_u =
      n1 * n2 / 12.0 * ((n + 1.0) - tie_term / (n * (n - 1.0)));
  if (var_u <= 0.0) return {0.0, 1.0};
  const double z = (u - mean_u) / std::sqrt(var_u);
  return {z, TwoSidedNormalPValue(z)};
}

TestResult WilcoxonSignedRank(const std::vector<double>& a,
                              const std::vector<double>& b) {
  assert(a.size() == b.size());
  std::vector<double> abs_diff;
  std::vector<int> sign;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    if (d == 0.0) continue;
    abs_diff.push_back(std::fabs(d));
    sign.push_back(d > 0.0 ? 1 : -1);
  }
  const double n = static_cast<double>(abs_diff.size());
  if (n < 1.0) return {0.0, 1.0};
  const std::vector<double> rank = Ranks(abs_diff);
  double w_plus = 0.0;
  for (size_t i = 0; i < rank.size(); ++i) {
    if (sign[i] > 0) w_plus += rank[i];
  }
  const double mean_w = n * (n + 1.0) / 4.0;
  const double var_w = n * (n + 1.0) * (2.0 * n + 1.0) / 24.0;
  if (var_w <= 0.0) return {0.0, 1.0};
  const double z = (w_plus - mean_w) / std::sqrt(var_w);
  return {z, TwoSidedNormalPValue(z)};
}

std::vector<double> FriedmanMeanRanks(
    const std::vector<std::vector<double>>& blocks) {
  assert(!blocks.empty());
  const size_t k = blocks.front().size();
  std::vector<double> mean_rank(k, 0.0);
  for (const auto& row : blocks) {
    assert(row.size() == k);
    const std::vector<double> rank = Ranks(row);
    for (size_t j = 0; j < k; ++j) mean_rank[j] += rank[j];
  }
  for (auto& r : mean_rank) r /= static_cast<double>(blocks.size());
  return mean_rank;
}

TestResult FriedmanTest(const std::vector<std::vector<double>>& blocks) {
  const double n = static_cast<double>(blocks.size());
  const double k = static_cast<double>(blocks.front().size());
  assert(n >= 2 && k >= 2);
  const std::vector<double> mean_rank = FriedmanMeanRanks(blocks);
  double sum_sq = 0.0;
  for (double r : mean_rank) {
    const double diff = r - (k + 1.0) / 2.0;
    sum_sq += diff * diff;
  }
  const double chi2 = 12.0 * n / (k * (k + 1.0)) * sum_sq;
  const double p = 1.0 - ChiSquaredCdf(chi2, k - 1.0);
  return {chi2, p};
}

TestResult FriedmanPostHoc(const std::vector<std::vector<double>>& blocks,
                           int method_i, int method_j) {
  const double n = static_cast<double>(blocks.size());
  const double k = static_cast<double>(blocks.front().size());
  const std::vector<double> mean_rank = FriedmanMeanRanks(blocks);
  const double se = std::sqrt(k * (k + 1.0) / (6.0 * n));
  const double z = (mean_rank[static_cast<size_t>(method_i)] -
                    mean_rank[static_cast<size_t>(method_j)]) /
                   se;
  return {z, TwoSidedNormalPValue(z)};
}

double SpearmanCorrelation(const std::vector<double>& a,
                           const std::vector<double>& b) {
  assert(a.size() == b.size() && a.size() >= 2);
  const std::vector<double> ra = Ranks(a);
  const std::vector<double> rb = Ranks(b);
  const double ma = Mean(ra);
  const double mb = Mean(rb);
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (size_t i = 0; i < ra.size(); ++i) {
    cov += (ra[i] - ma) * (rb[i] - mb);
    va += (ra[i] - ma) * (ra[i] - ma);
    vb += (rb[i] - mb) * (rb[i] - mb);
  }
  if (va <= 0.0 || vb <= 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

}  // namespace reds::stats
