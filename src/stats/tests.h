// Nonparametric hypothesis tests used in the paper's evaluation:
// Wilcoxon-Mann-Whitney (Figure 11), Wilcoxon signed-rank, the Friedman test
// with pairwise post-hoc comparisons (Sections 9.1-9.2), and Spearman
// correlation (dimensionality vs improvement).
#ifndef REDS_STATS_TESTS_H_
#define REDS_STATS_TESTS_H_

#include <vector>

namespace reds::stats {

struct TestResult {
  double statistic = 0.0;
  double p_value = 1.0;
};

/// Two-sided Wilcoxon-Mann-Whitney rank-sum test (normal approximation with
/// tie correction).
TestResult WilcoxonRankSum(const std::vector<double>& a,
                           const std::vector<double>& b);

/// Two-sided Wilcoxon signed-rank test for paired samples (zeros dropped,
/// normal approximation).
TestResult WilcoxonSignedRank(const std::vector<double>& a,
                              const std::vector<double>& b);

/// Friedman test: `blocks` is a (datasets x methods) matrix of quality
/// values; higher is better. Returns the chi-squared statistic and p-value.
TestResult FriedmanTest(const std::vector<std::vector<double>>& blocks);

/// Mean rank per method across blocks (1 = worst with higher-is-better
/// values ranked ascending; we rank so that the best method has the highest
/// mean rank).
std::vector<double> FriedmanMeanRanks(
    const std::vector<std::vector<double>>& blocks);

/// Post-hoc pairwise comparison of methods i and j after a Friedman test
/// (Nemenyi-style z-test on mean-rank difference).
TestResult FriedmanPostHoc(const std::vector<std::vector<double>>& blocks,
                           int method_i, int method_j);

/// Spearman rank correlation coefficient.
double SpearmanCorrelation(const std::vector<double>& a,
                           const std::vector<double>& b);

}  // namespace reds::stats

#endif  // REDS_STATS_TESTS_H_
