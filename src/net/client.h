// NetClient: a blocking discovery-service client over the frame protocol.
// One connection, any number of requests in flight -- the server
// interleaves reply frames for different request ids on the same socket,
// so the client demultiplexes: frames for the id a caller is waiting on
// are consumed, frames for other ids are stashed and served to their own
// waiters later. Single-threaded by design (the load harness runs one
// NetClient per simulated client thread); not thread-safe.
#ifndef REDS_NET_CLIENT_H_
#define REDS_NET_CLIENT_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "net/protocol.h"
#include "shard/wire.h"
#include "util/status.h"

namespace reds::net {

/// What Submit() came back with: admitted (ack + flags), shed (retry
/// hint), or rejected in-band (error message; the connection survives).
struct SubmitOutcome {
  enum class Kind { kAdmitted, kShed, kRejected };

  Kind kind = Kind::kRejected;
  uint8_t flags = 0;          // kAdmitted: SubmitAck flags
  uint32_t retry_after_ms = 0;  // kShed
  std::string message;          // kShed reason / kRejected error
};

/// A request's terminal reply plus any streamed trajectory chunks.
struct RequestResult {
  ResultDone done;
  std::vector<Box> boxes;  // in trajectory order; empty unless requested
};

class NetClient {
 public:
  NetClient() = default;
  ~NetClient() { Close(); }

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// Connects to "unix:PATH" or "tcp:host:port" (blocking socket).
  Status Connect(const std::string& address);

  /// Performs the version handshake; must be the first exchange.
  Result<HelloAck> Hello(const std::string& client_name);

  /// Sends one submit and waits for its admission reply (ack, shed, or
  /// in-band error). Result frames of other in-flight ids arriving first
  /// are stashed, not lost.
  Result<SubmitOutcome> Submit(const SubmitRequest& request);

  /// Blocks until `request_id`'s kResultDone arrives, collecting its
  /// streamed box chunks on the way.
  Result<RequestResult> WaitResult(uint64_t request_id);

  Result<StatusReply> PollStatus(uint64_t request_id);

  /// Fetches the server's metrics registry in the requested format.
  Result<std::string> Scrape(ScrapeFormat format);

  Status Ping();

  /// Half-closes the write side, letting the server drain pending results
  /// before it hangs up. Readers (WaitResult) still work afterwards.
  Status FinishWrites();

  void Close();

  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }

 private:
  /// Next frame a reply-wait loop should examine: the first stashed frame
  /// whose type is in `wanted`, else a fresh read from the socket. Reply
  /// loops re-stash unmatched result frames, so they must never be handed
  /// a frame the same call already stashed -- popping the stash blindly
  /// would cycle those frames forever without touching the socket.
  Result<shard::Frame> NextReply(std::initializer_list<shard::MsgType> wanted);

  int fd_ = -1;
  std::deque<shard::Frame> stash_;  // frames read while waiting for others
  size_t max_frame_bytes_ = 64ull << 20;
};

/// Fills the wire options of a SubmitRequest from the common knobs; the
/// harness and tests share it so requests stay comparable.
SubmitRequest MakeSubmit(uint64_t request_id, const std::string& method,
                         DataMode mode, int64_t rows, int dims, uint64_t seed,
                         double alpha, int l_prim);

}  // namespace reds::net

#endif  // REDS_NET_CLIENT_H_
