#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "core/method.h"
#include "shard/source_spec.h"

namespace reds::net {

namespace {

uint64_t NsSince(std::chrono::steady_clock::time_point t0) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

std::string EncodePayload(const std::function<void(util::ByteWriter*)>& fn) {
  util::ByteWriter w;
  fn(&w);
  return w.data();
}

// Result-cache key: every request field that shapes the answer. The id is
// the client's demux handle and want_boxes only selects which frames are
// sent, so both are canonicalized out; everything else rides the payload
// serialization, which tracks field additions automatically.
uint64_t RequestFingerprint(const SubmitRequest& msg) {
  SubmitRequest canon = msg;
  canon.request_id = 0;
  canon.want_boxes = false;
  util::ByteWriter bytes;
  canon.SerializeTo(&bytes);
  return util::Fnv64(bytes.data().data(), bytes.size());
}

}  // namespace

void DiscoveryServer::EventQueue::Push(Event event) {
  std::lock_guard<std::mutex> lock(mutex);
  if (!open) return;
  events.push_back(std::move(event));
  if (wake_fd >= 0) {
    // A full pipe is fine: unread wakeup bytes already guarantee a drain.
    char b = 1;
    ssize_t ignored = ::write(wake_fd, &b, 1);
    (void)ignored;
  }
}

void DiscoveryServer::EventQueue::Close() {
  std::lock_guard<std::mutex> lock(mutex);
  open = false;
  if (wake_fd >= 0) {
    ::close(wake_fd);
    wake_fd = -1;
  }
  events.clear();
}

DiscoveryServer::DiscoveryServer(engine::DiscoveryEngine* engine,
                                 ServerConfig config)
    : engine_(engine),
      config_(std::move(config)),
      events_(std::make_shared<EventQueue>()),
      datasets_(config_.dataset_cache_capacity),
      result_cache_(std::make_shared<ResultCache>(config_.result_cache_entries)),
      decode_pool_(std::max(1, config_.decode_threads), &engine_->metrics(),
                   "net.decode") {
  obs::MetricsRegistry& m = engine_->metrics();
  accepted_ = m.counter("net.connections_accepted");
  closed_ = m.counter("net.connections_closed");
  admitted_ = m.counter("net.submits_admitted");
  coalesced_exempt_ = m.counter("net.submits_coalesced_exempt");
  result_cache_hits_ = m.counter("net.result_cache_hits");
  shed_ = m.counter("net.submits_shed");
  protocol_errors_ = m.counter("net.protocol_errors");
  results_delivered_ = m.counter("net.results_delivered");
  open_conns_ = m.gauge("net.connections_open");
  request_latency_ = m.histogram("net.request_latency_ns");
}

DiscoveryServer::~DiscoveryServer() { Stop(); }

Status DiscoveryServer::Listen() {
  const std::string& addr = config_.address;
  if (addr.rfind("unix:", 0) == 0) {
    const std::string path = addr.substr(5);
    sockaddr_un sa{};
    if (path.empty() || path.size() >= sizeof(sa.sun_path)) {
      return Status::InvalidArgument("net server: bad unix socket path: " +
                                     path);
    }
    listen_fd_ =
        ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) {
      return Status::IoError(std::string("net server: socket: ") +
                             std::strerror(errno));
    }
    ::unlink(path.c_str());
    sa.sun_family = AF_UNIX;
    std::memcpy(sa.sun_path, path.c_str(), path.size());
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      return Status::IoError(std::string("net server: bind ") + path + ": " +
                             std::strerror(errno));
    }
    unix_path_ = path;
    bound_address_ = addr;
  } else if (addr.rfind("tcp:", 0) == 0) {
    const std::string rest = addr.substr(4);
    const size_t colon = rest.rfind(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("net server: tcp address needs a port: " +
                                     addr);
    }
    const std::string host = rest.substr(0, colon);
    const int port = std::atoi(rest.c_str() + colon + 1);
    if (port < 0 || port > 65535) {
      return Status::InvalidArgument("net server: bad tcp port in " + addr);
    }
    listen_fd_ =
        ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) {
      return Status::IoError(std::string("net server: socket: ") +
                             std::strerror(errno));
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(static_cast<uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &sa.sin_addr) != 1) {
      return Status::InvalidArgument("net server: bad tcp host in " + addr);
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      return Status::IoError(std::string("net server: bind ") + addr + ": " +
                             std::strerror(errno));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    bound_address_ =
        "tcp:" + host + ":" + std::to_string(ntohs(bound.sin_port));
  } else {
    return Status::InvalidArgument(
        "net server: address must be unix:PATH or tcp:host:port, got " + addr);
  }
  if (::listen(listen_fd_, 128) != 0) {
    return Status::IoError(std::string("net server: listen: ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status DiscoveryServer::Start() {
  if (running_.load()) {
    return Status::FailedPrecondition("net server: already started");
  }
  Status s = Listen();
  if (!s.ok()) return s;
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return Status::IoError(std::string("net server: epoll_create1: ") +
                           std::strerror(errno));
  }
  int pipe_fds[2];
  if (::pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) != 0) {
    return Status::IoError(std::string("net server: pipe2: ") +
                           std::strerror(errno));
  }
  wake_read_fd_ = pipe_fds[0];
  {
    std::lock_guard<std::mutex> lock(events_->mutex);
    events_->wake_fd = pipe_fds[1];
    events_->open = true;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = 0;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.u64 = 1;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_read_fd_, &ev);
  running_.store(true);
  loop_ = std::thread(&DiscoveryServer::LoopThread, this);
  return Status::OK();
}

void DiscoveryServer::Stop() {
  bool expected = true;
  if (!running_.compare_exchange_strong(expected, false)) return;
  {
    // Kick the loop out of epoll_wait.
    std::lock_guard<std::mutex> lock(events_->mutex);
    if (events_->wake_fd >= 0) {
      char b = 0;
      ssize_t ignored = ::write(events_->wake_fd, &b, 1);
      (void)ignored;
    }
  }
  loop_.join();
  // Decode tasks still in flight push into the queue (processed never) and
  // may submit engine jobs; their completion callbacks then find the queue
  // closed. Nothing blocks, nothing leaks.
  decode_pool_.Shutdown();
  events_->Close();
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  wake_read_fd_ = epoll_fd_ = listen_fd_ = -1;
  if (!unix_path_.empty()) ::unlink(unix_path_.c_str());
}

void DiscoveryServer::LoopThread() {
  std::vector<epoll_event> events(64);
  while (running_.load(std::memory_order_relaxed)) {
    int timeout_ms = 100;
    if (config_.keepalive_ms > 0) {
      timeout_ms = std::max(5, std::min(100, config_.keepalive_ms / 4));
    }
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t id = events[i].data.u64;
      const uint32_t flags = events[i].events;
      if (id == 0) {
        AcceptNew();
        continue;
      }
      if (id == 1) {
        ProcessEvents();
        continue;
      }
      Connection* conn = FindConn(id);
      if (!conn) continue;
      if (flags & EPOLLERR) {
        CloseConn(id);
        continue;
      }
      if (flags & (EPOLLIN | EPOLLHUP)) {
        HandleReadable(conn, (flags & EPOLLHUP) != 0);
        conn = FindConn(id);
        if (!conn) continue;
      }
      if (flags & EPOLLOUT) HandleWritable(conn);
    }
    SweepKeepalive();
  }
  // Teardown on the loop thread, where connections live.
  std::vector<uint64_t> ids;
  ids.reserve(conns_.size());
  for (const auto& entry : conns_) ids.push_back(entry.first);
  for (uint64_t id : ids) CloseConn(id);
}

void DiscoveryServer::AcceptNew() {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN: accepted everything pending
    }
    const uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<Connection>(config_.max_frame_bytes);
    conn->fd = fd;
    conn->id = id;
    conn->shared = std::make_shared<ConnShared>();
    conn->last_activity = std::chrono::steady_clock::now();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    conns_.emplace(id, std::move(conn));
    accepted_->Add(1);
    open_conns_->Add(1);
  }
}

DiscoveryServer::Connection* DiscoveryServer::FindConn(uint64_t conn_id) {
  const auto it = conns_.find(conn_id);
  return it == conns_.end() ? nullptr : it->second.get();
}

void DiscoveryServer::CloseConn(uint64_t conn_id) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Connection* conn = it->second.get();
  conn->shared->alive.store(false);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  conns_.erase(it);
  closed_->Add(1);
  open_conns_->Add(-1);
}

void DiscoveryServer::SendFrame(Connection* conn, shard::MsgType type,
                                const std::string& payload) {
  conn->out.Push(type, payload);
}

void DiscoveryServer::SetWriteInterest(Connection* conn, bool want) {
  if (conn->want_write == want) return;
  conn->want_write = want;
  epoll_event ev{};
  ev.events = ((conn->draining || conn->closing) ? 0u : EPOLLIN) |
              (want ? EPOLLOUT : 0u);
  ev.data.u64 = conn->id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void DiscoveryServer::MaybeFinishClose(Connection* conn) {
  if (!conn->out.empty()) return;
  if (conn->closing) {
    CloseConn(conn->id);
    return;
  }
  if (conn->draining && conn->shared->inflight.load() == 0) {
    CloseConn(conn->id);
  }
}

// May close (and free) the connection; callers must not touch `conn`
// afterwards -- call only as the final action on it.
void DiscoveryServer::FlushConn(Connection* conn) {
  if (conn->out.empty()) {
    SetWriteInterest(conn, false);
    MaybeFinishClose(conn);
    return;
  }
  bool blocked = false;
  Status s = conn->out.Flush(conn->fd, &blocked);
  if (!s.ok()) {
    CloseConn(conn->id);
    return;
  }
  SetWriteInterest(conn, blocked);
  if (!blocked) MaybeFinishClose(conn);
}

void DiscoveryServer::BeginDrain(Connection* conn) {
  if (!conn->draining) {
    conn->draining = true;
    epoll_event ev{};
    ev.events = conn->want_write ? EPOLLOUT : 0u;
    ev.data.u64 = conn->id;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
  }
  MaybeFinishClose(conn);
}

void DiscoveryServer::HandleReadable(Connection* conn, bool hup) {
  if (conn->closing || conn->draining) {
    FlushConn(conn);
    return;
  }
  conn->last_activity = std::chrono::steady_clock::now();
  char buf[65536];
  for (;;) {
    const ssize_t r = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (r > 0) {
      Status s = conn->decoder.Feed(buf, static_cast<size_t>(r));
      if (!s.ok()) {
        ProtocolError(conn, 0, s.message());
        FlushConn(conn);
        return;
      }
      shard::Frame frame;
      while (!conn->closing && conn->decoder.Next(&frame)) {
        DispatchFrame(conn, std::move(frame));
      }
      if (conn->closing) {
        FlushConn(conn);
        return;
      }
      continue;
    }
    if (r == 0) {
      // FIN with EPOLLHUP means the peer is fully gone (nothing we write
      // can arrive); a bare FIN is a half-close -- the client wants its
      // pending results before we hang up.
      if (hup) {
        CloseConn(conn->id);
      } else {
        BeginDrain(conn);
      }
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      FlushConn(conn);
      return;
    }
    CloseConn(conn->id);
    return;
  }
}

void DiscoveryServer::HandleWritable(Connection* conn) { FlushConn(conn); }

void DiscoveryServer::ProtocolError(Connection* conn, uint64_t request_id,
                                    const std::string& message) {
  protocol_errors_->Add(1);
  ErrorReply err;
  err.request_id = request_id;
  err.message = message;
  SendFrame(conn, shard::MsgType::kError,
            EncodePayload([&](util::ByteWriter* w) { err.SerializeTo(w); }));
  conn->closing = true;
  conn->shared->alive.store(false);
}

void DiscoveryServer::DispatchFrame(Connection* conn, shard::Frame frame) {
  using shard::MsgType;
  if (!conn->hello_done) {
    if (frame.type != MsgType::kHello) {
      ProtocolError(conn, 0, "expected hello before any other frame");
      return;
    }
    Result<HelloRequest> hello = HelloRequest::Parse(frame.payload);
    if (!hello.ok()) {
      ProtocolError(conn, 0, hello.status().message());
      return;
    }
    if (hello->version != kProtocolVersion) {
      ProtocolError(conn, 0, "unsupported protocol version " +
                                 std::to_string(hello->version));
      return;
    }
    conn->hello_done = true;
    HelloAck ack;
    ack.max_inflight_per_client =
        static_cast<uint32_t>(std::max(0, config_.max_inflight_per_client));
    ack.max_queue_depth =
        static_cast<uint32_t>(std::max(0, config_.max_queue_depth));
    ack.max_frame_bytes = config_.max_frame_bytes;
    ack.engine_threads = engine_->threads();
    SendFrame(conn, MsgType::kHelloAck,
              EncodePayload([&](util::ByteWriter* w) { ack.SerializeTo(w); }));
    return;
  }
  switch (frame.type) {
    case MsgType::kPing:
      SendFrame(conn, MsgType::kPong, std::string());
      return;
    case MsgType::kStatusPoll: {
      Result<StatusPoll> poll = StatusPoll::Parse(frame.payload);
      if (!poll.ok()) {
        ProtocolError(conn, 0, poll.status().message());
        return;
      }
      StatusReply reply;
      reply.request_id = poll->request_id;
      {
        std::lock_guard<std::mutex> lock(conn->shared->mutex);
        const auto it = conn->shared->jobs.find(poll->request_id);
        if (it == conn->shared->jobs.end()) {
          reply.state = WireJobState::kUnknown;
        } else {
          switch (it->second->state()) {
            case engine::JobState::kQueued:
              reply.state = WireJobState::kQueued;
              break;
            case engine::JobState::kRunning:
              reply.state = WireJobState::kRunning;
              break;
            case engine::JobState::kDone:
              reply.state = WireJobState::kDone;
              break;
            case engine::JobState::kFailed:
              reply.state = WireJobState::kFailed;
              reply.error = it->second->error();
              break;
          }
        }
      }
      SendFrame(
          conn, MsgType::kStatusReply,
          EncodePayload([&](util::ByteWriter* w) { reply.SerializeTo(w); }));
      return;
    }
    case MsgType::kSubmit: {
      auto shared = conn->shared;
      const uint64_t id = conn->id;
      decode_pool_.Submit(
          [this, id, shared, payload = std::move(frame.payload)]() {
            HandleSubmit(id, shared, payload);
          });
      return;
    }
    case MsgType::kMetricsScrape: {
      const uint64_t id = conn->id;
      decode_pool_.Submit([this, id, payload = std::move(frame.payload)]() {
        HandleScrape(id, payload);
      });
      return;
    }
    default:
      ProtocolError(conn, 0,
                    "unexpected frame type " +
                        std::to_string(static_cast<int>(frame.type)));
  }
}

void DiscoveryServer::ProcessEvents() {
  // Drain the pipe before taking the queue: a wakeup byte written after
  // this drain implies its event was pushed after the swap below, so it is
  // never lost -- the byte survives and re-triggers epoll.
  char buf[256];
  while (::read(wake_read_fd_, buf, sizeof(buf)) > 0) {
  }
  std::vector<Event> batch;
  {
    std::lock_guard<std::mutex> lock(events_->mutex);
    batch.swap(events_->events);
  }
  for (Event& event : batch) {
    Connection* conn = FindConn(event.conn_id);
    if (!conn) continue;  // client left; delivery evaporates
    for (auto& frame : event.frames) {
      conn->out.Push(frame.first, frame.second);
    }
    // Frames first, then the in-flight decrement: a draining connection
    // must never look finished before its final frames are queued.
    if (event.inflight_delta != 0) {
      conn->shared->inflight.fetch_add(event.inflight_delta);
    }
    if (!event.frames.empty()) {
      conn->last_activity = std::chrono::steady_clock::now();
    }
    if (event.fatal) {
      conn->closing = true;
      conn->shared->alive.store(false);
    }
    FlushConn(conn);
  }
}

void DiscoveryServer::SweepKeepalive() {
  if (config_.keepalive_ms <= 0) return;
  const auto now = std::chrono::steady_clock::now();
  const auto limit = std::chrono::milliseconds(config_.keepalive_ms);
  std::vector<uint64_t> expired;
  for (const auto& entry : conns_) {
    const Connection* conn = entry.second.get();
    if (conn->shared->inflight.load() > 0) continue;
    if (!conn->out.empty()) continue;
    if (now - conn->last_activity > limit) expired.push_back(entry.first);
  }
  for (uint64_t id : expired) CloseConn(id);
}

Status DiscoveryServer::ValidateSubmit(const SubmitRequest& msg) const {
  if (msg.source.kind != shard::SourceSpec::Kind::kSynthetic) {
    return Status::InvalidArgument(
        "only synthetic sources are accepted over the wire");
  }
  if (msg.source.rows < 1 || msg.source.rows > 100'000'000) {
    return Status::InvalidArgument("source rows out of range");
  }
  if (msg.source.dims < 1 || msg.source.dims > 512) {
    return Status::InvalidArgument("source dims out of range");
  }
  if (msg.source.distinct < 2 || msg.source.distinct > 256) {
    return Status::InvalidArgument("source distinct out of range");
  }
  if (msg.source.block_rows < 1 || msg.source.block_rows > (1 << 20)) {
    return Status::InvalidArgument("source block_rows out of range");
  }
  Result<MethodSpec> spec = MethodSpec::Parse(msg.method);
  if (!spec.ok()) return spec.status();
  if (!(msg.alpha > 0.0) || !(msg.alpha < 1.0)) {
    return Status::InvalidArgument("alpha must be in (0, 1)");
  }
  if (msg.min_points < 1) {
    return Status::InvalidArgument("min_points must be positive");
  }
  if (msg.l_prim < 10 || msg.l_prim > 100'000'000) {
    return Status::InvalidArgument("l_prim out of range");
  }
  if (msg.data_mode == DataMode::kEager &&
      msg.source.rows * msg.source.dims > config_.max_eager_cells) {
    return Status::InvalidArgument(
        "eager dataset too large; use streamed mode");
  }
  return Status::OK();
}

Result<std::shared_ptr<const Dataset>> DiscoveryServer::EagerDataset(
    const shard::SourceSpec& spec) {
  util::ByteWriter key_bytes;
  spec.SerializeTo(&key_bytes);
  const uint64_t key =
      util::Fnv64(key_bytes.data().data(), key_bytes.size());
  // Built under the lock: a concurrent burst of identical specs
  // materializes once, which in turn is what lets the burst's engine
  // submissions coalesce (same Dataset pointer, same fingerprint).
  std::lock_guard<std::mutex> lock(dataset_mutex_);
  if (auto* hit = datasets_.Get(key)) return *hit;
  Result<std::unique_ptr<DatasetSource>> source = shard::MakeSource(spec, 1, 0);
  if (!source.ok()) return source.status();
  Result<Dataset> data = ReadAll(source->get(), spec.block_rows);
  if (!data.ok()) return data.status();
  std::shared_ptr<const Dataset> dataset =
      std::make_shared<const Dataset>(std::move(*data));
  datasets_.Put(key, dataset);
  return dataset;
}

void DiscoveryServer::Shed(uint64_t conn_id, uint64_t request_id,
                           const std::string& reason) {
  shed_->Add(1);
  ShedReply reply;
  reply.request_id = request_id;
  reply.retry_after_ms = config_.retry_after_ms;
  reply.reason = reason;
  Event event;
  event.conn_id = conn_id;
  event.frames.emplace_back(
      shard::MsgType::kShed,
      EncodePayload([&](util::ByteWriter* w) { reply.SerializeTo(w); }));
  events_->Push(std::move(event));
}

void DiscoveryServer::ReplayCachedResult(
    uint64_t conn_id, const std::shared_ptr<ConnShared>& shared,
    const SubmitRequest& msg, const CachedResult& cached,
    std::chrono::steady_clock::time_point t0) {
  admitted_->Add(1);
  result_cache_hits_->Add(1);
  // The in-flight count covers the replay so a half-closing connection
  // drains it like any other pending result; the result event below
  // carries the matching decrement.
  shared->inflight.fetch_add(1);

  SubmitAck ack;
  ack.request_id = msg.request_id;
  ack.flags = kAdmitResultCached;
  Event ack_event;
  ack_event.conn_id = conn_id;
  ack_event.frames.emplace_back(
      shard::MsgType::kSubmitAck,
      EncodePayload([&](util::ByteWriter* w) { ack.SerializeTo(w); }));
  events_->Push(std::move(ack_event));

  Event event;
  event.conn_id = conn_id;
  event.inflight_delta = -1;
  if (msg.want_boxes) {
    const int chunk = std::max(1, config_.result_chunk_boxes);
    const size_t total = cached.trajectory.size();
    for (size_t i = 0; i < total; i += static_cast<size_t>(chunk)) {
      ResultBoxes boxes;
      boxes.request_id = msg.request_id;
      boxes.first_index = static_cast<uint32_t>(i);
      const size_t end = std::min(total, i + static_cast<size_t>(chunk));
      boxes.boxes.assign(cached.trajectory.begin() + i,
                         cached.trajectory.begin() + end);
      event.frames.emplace_back(
          shard::MsgType::kResultBoxes,
          EncodePayload([&](util::ByteWriter* w) { boxes.SerializeTo(w); }));
    }
  }
  ResultDone done;
  done.request_id = msg.request_id;
  done.flags = kAdmitResultCached;
  done.last_box = cached.last_box;
  done.trajectory_len = static_cast<uint32_t>(cached.trajectory.size());
  done.restricted = cached.restricted;
  done.runtime_seconds = cached.runtime_seconds;
  done.server_latency_ns = NsSince(t0);
  event.frames.emplace_back(
      shard::MsgType::kResultDone,
      EncodePayload([&](util::ByteWriter* w) { done.SerializeTo(w); }));
  request_latency_->Observe(done.server_latency_ns);
  results_delivered_->Add(1);
  events_->Push(std::move(event));
}

void DiscoveryServer::HandleSubmit(uint64_t conn_id,
                                   std::shared_ptr<ConnShared> shared,
                                   const std::string& payload) {
  const auto t0 = std::chrono::steady_clock::now();
  Result<SubmitRequest> parsed = SubmitRequest::Parse(payload);
  if (!parsed.ok()) {
    // Unparseable submit: the stream cannot be trusted frame-by-frame.
    protocol_errors_->Add(1);
    ErrorReply err;
    err.message = parsed.status().message();
    Event event;
    event.conn_id = conn_id;
    event.fatal = true;
    event.frames.emplace_back(
        shard::MsgType::kError,
        EncodePayload([&](util::ByteWriter* w) { err.SerializeTo(w); }));
    events_->Push(std::move(event));
    return;
  }
  const SubmitRequest msg = std::move(*parsed);
  Status valid = ValidateSubmit(msg);
  if (!valid.ok()) {
    // Framing is intact, the request is just unacceptable: reply in-band
    // and keep the connection.
    protocol_errors_->Add(1);
    ErrorReply err;
    err.request_id = msg.request_id;
    err.message = valid.message();
    Event event;
    event.conn_id = conn_id;
    event.frames.emplace_back(
        shard::MsgType::kError,
        EncodePayload([&](util::ByteWriter* w) { err.SerializeTo(w); }));
    events_->Push(std::move(event));
    return;
  }

  // Cheapest admission path first: a completed identical request replays
  // from the result cache -- no dataset materialization, no engine slot,
  // no cap accounting.
  const uint64_t fingerprint = RequestFingerprint(msg);
  if (config_.result_cache_entries > 0) {
    std::shared_ptr<const CachedResult> hit;
    {
      std::lock_guard<std::mutex> lock(result_cache_->mutex);
      if (auto* entry = result_cache_->map.Get(fingerprint)) hit = *entry;
    }
    if (hit) {
      ReplayCachedResult(conn_id, shared, msg, *hit, t0);
      return;
    }
  }

  engine::DiscoveryRequest req;
  req.method = msg.method;
  req.keep_output = true;
  req.options.default_alpha = msg.alpha;
  req.options.min_points = msg.min_points;
  req.options.l_prim = msg.l_prim;
  req.options.seed = msg.options_seed;
  req.options.tune_metamodel = msg.tune_metamodel;

  bool exempt = false;
  if (msg.data_mode == DataMode::kEager) {
    Result<std::shared_ptr<const Dataset>> dataset = EagerDataset(msg.source);
    if (!dataset.ok()) {
      ErrorReply err;
      err.request_id = msg.request_id;
      err.message = dataset.status().message();
      Event event;
      event.conn_id = conn_id;
      event.frames.emplace_back(
          shard::MsgType::kError,
          EncodePayload([&](util::ByteWriter* w) { err.SerializeTo(w); }));
      events_->Push(std::move(event));
      return;
    }
    req.train = *dataset;
    // Advisory single-flight probe: a true here means this submit attaches
    // to an in-flight leader and takes no pool slot, so admission caps do
    // not apply. The window can close before Submit -- then the request
    // becomes a fresh leader against warm caches, which is strictly
    // cheaper than what the cap was sized for.
    exempt = engine_->WouldCoalesce(req);
  } else {
    const shard::SourceSpec spec = msg.source;
    req.make_train_source = [spec]() {
      return std::move(shard::MakeSource(spec, 1, 0).value());
    };
  }

  if (exempt) {
    coalesced_exempt_->Add(1);
  } else {
    if (config_.max_inflight_per_client > 0 &&
        shared->inflight.load() >= config_.max_inflight_per_client) {
      Shed(conn_id, msg.request_id, "per-client in-flight quota reached");
      return;
    }
    if (config_.max_queue_depth > 0 &&
        engine_->inflight_leader_jobs() >= config_.max_queue_depth) {
      Shed(conn_id, msg.request_id, "engine queue depth at cap");
      return;
    }
  }

  shared->inflight.fetch_add(1);
  engine::JobHandle handle = engine_->Submit(std::move(req));
  {
    std::lock_guard<std::mutex> lock(shared->mutex);
    shared->jobs[msg.request_id] = handle;
  }
  admitted_->Add(1);

  const uint8_t flags = exempt ? kAdmitCoalescedExempt : 0;
  SubmitAck ack;
  ack.request_id = msg.request_id;
  ack.flags = flags;
  Event ack_event;
  ack_event.conn_id = conn_id;
  ack_event.frames.emplace_back(
      shard::MsgType::kSubmitAck,
      EncodePayload([&](util::ByteWriter* w) { ack.SerializeTo(w); }));
  events_->Push(std::move(ack_event));

  // Completion fan-in. Registered after the ack is queued, so even a job
  // that already finished pushes its result event behind the ack (the
  // callback then runs synchronously right here). Captures the job weakly:
  // the callback lives inside the job, and a strong self-reference would
  // leak it. The result cache is captured by shared_ptr -- a job that
  // outlives the server still files its result harmlessly.
  auto events = events_;
  std::weak_ptr<engine::Job> weak = handle;
  const uint64_t request_id = msg.request_id;
  const bool want_boxes = msg.want_boxes;
  const int chunk = std::max(1, config_.result_chunk_boxes);
  obs::Histogram* latency = request_latency_;
  obs::Counter* delivered = results_delivered_;
  auto cache = config_.result_cache_entries > 0 ? result_cache_ : nullptr;
  handle->NotifyOnFinish([events, weak, shared, conn_id, request_id,
                          want_boxes, flags, chunk, t0, latency, delivered,
                          cache, fingerprint]() {
    {
      std::lock_guard<std::mutex> lock(shared->mutex);
      shared->jobs.erase(request_id);
    }
    std::shared_ptr<engine::Job> job = weak.lock();
    if (!job) return;
    // File the result before checking whether the client is still here:
    // the discovery is done either way, and the next identical request
    // should ride it.
    if (cache && job->state() == engine::JobState::kDone) {
      const MethodOutput& out = job->output();
      auto entry = std::make_shared<const CachedResult>(CachedResult{
          out.trajectory, out.last_box, out.last_box.NumRestricted(),
          out.runtime_seconds});
      std::lock_guard<std::mutex> lock(cache->mutex);
      cache->map.Put(fingerprint, std::move(entry));
    }
    // Client already gone: the engine job finished normally (it was never
    // touched), only the delivery evaporates.
    if (!shared->alive.load()) return;
    Event event;
    event.conn_id = conn_id;
    event.inflight_delta = -1;
    ResultDone done;
    done.request_id = request_id;
    done.flags = flags;
    if (job->state() == engine::JobState::kFailed) {
      done.failed = true;
      done.error = job->error();
    } else {
      const MethodOutput& out = job->output();
      if (want_boxes) {
        const size_t total = out.trajectory.size();
        for (size_t i = 0; i < total; i += static_cast<size_t>(chunk)) {
          ResultBoxes boxes;
          boxes.request_id = request_id;
          boxes.first_index = static_cast<uint32_t>(i);
          const size_t end = std::min(total, i + static_cast<size_t>(chunk));
          boxes.boxes.assign(out.trajectory.begin() + i,
                             out.trajectory.begin() + end);
          event.frames.emplace_back(
              shard::MsgType::kResultBoxes,
              EncodePayload(
                  [&](util::ByteWriter* w) { boxes.SerializeTo(w); }));
        }
      }
      done.last_box = out.last_box;
      done.trajectory_len = static_cast<uint32_t>(out.trajectory.size());
      done.restricted = out.last_box.NumRestricted();
      done.runtime_seconds = out.runtime_seconds;
    }
    const uint64_t ns = NsSince(t0);
    done.server_latency_ns = ns;
    event.frames.emplace_back(
        shard::MsgType::kResultDone,
        EncodePayload([&](util::ByteWriter* w) { done.SerializeTo(w); }));
    latency->Observe(ns);
    delivered->Add(1);
    events->Push(std::move(event));
  });
}

void DiscoveryServer::HandleScrape(uint64_t conn_id,
                                   const std::string& payload) {
  Result<MetricsScrape> msg = MetricsScrape::Parse(payload);
  Event event;
  event.conn_id = conn_id;
  if (!msg.ok()) {
    protocol_errors_->Add(1);
    ErrorReply err;
    err.message = msg.status().message();
    event.fatal = true;
    event.frames.emplace_back(
        shard::MsgType::kError,
        EncodePayload([&](util::ByteWriter* w) { err.SerializeTo(w); }));
  } else {
    MetricsDump dump;
    dump.body = engine_->DumpMetrics(msg->format == ScrapeFormat::kPrometheus
                                         ? obs::ExportFormat::kPrometheus
                                         : obs::ExportFormat::kJson);
    event.frames.emplace_back(
        shard::MsgType::kMetricsDump,
        EncodePayload([&](util::ByteWriter* w) { dump.SerializeTo(w); }));
  }
  events_->Push(std::move(event));
}

}  // namespace reds::net
