// DiscoveryServer: the engine served over a socket. A single-threaded
// epoll loop owns every connection -- accept, nonblocking reads through a
// shard::FrameDecoder, nonblocking writes through a FrameWriteQueue,
// keepalive expiry, half-close draining -- while a small decode pool does
// the per-request work (payload parsing, dataset materialization, engine
// submission) off the loop. Completion fans back in over a pipe: engine
// job callbacks push encoded reply frames onto a mutex-guarded event queue
// and write one wakeup byte; the loop drains the queue and feeds each
// connection's write queue, so no engine thread ever touches a socket.
//
// Admission control is the perf core. Before a submit takes a pool slot it
// must clear (in order):
//   1. the result cache -- an identical request that already completed is
//      replayed outright (requests are declarative and deterministic), so
//      it burns no slot and bypasses every cap;
//   2. coalescing exemption -- an identical eager request already in
//      flight means this one attaches to that leader and burns no slot,
//      so it bypasses every cap (the whole point of single-flight);
//   3. the per-client in-flight quota (max_inflight_per_client);
//   4. the global queue-depth cap (max_queue_depth), checked against
//      DiscoveryEngine::inflight_leader_jobs() -- the gauge of actual
//      pool-slot holders, not raw submissions.
// A refused submit is shed, not queued: the client gets a kShed frame with
// retry_after_ms and owns the retry, which is what keeps p99 bounded past
// saturation instead of collapsing into an unbounded server-side queue.
#ifndef REDS_NET_SERVER_H_
#define REDS_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/dataset.h"
#include "engine/discovery_engine.h"
#include "net/protocol.h"
#include "shard/wire.h"
#include "util/lru_map.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace reds::net {

struct ServerConfig {
  /// "unix:/path/to.sock" or "tcp:host:port" (port 0 picks an ephemeral
  /// port; address() reports the resolved one).
  std::string address = "tcp:127.0.0.1:0";

  /// Threads parsing payloads and materializing datasets off the loop.
  int decode_threads = 2;

  /// Global cap on engine pool-slot holders (leaders + non-coalescible
  /// jobs). A submit arriving with inflight_leader_jobs() at the cap is
  /// shed. 0 = unlimited.
  int max_queue_depth = 0;

  /// Per-connection cap on admitted-but-undelivered requests. 0 = unlimited.
  int max_inflight_per_client = 0;

  /// Retry hint carried by kShed frames.
  uint32_t retry_after_ms = 50;

  /// Connections idle longer than this (no reads, no result deliveries,
  /// nothing in flight) are closed. 0 = never.
  int keepalive_ms = 0;

  /// Per-frame payload cap enforced by the decoder against hostile peers.
  size_t max_frame_bytes = 8u << 20;

  /// Server-side LRU of materialized eager datasets, keyed by the
  /// SourceSpec's bytes. One materialization per distinct spec is what
  /// lets identical eager submits from different connections coalesce.
  size_t dataset_cache_capacity = 16;

  /// Upper bound on rows * dims an eager request may materialize.
  int64_t max_eager_cells = 50'000'000;

  /// Server-side LRU of completed results, keyed by a fingerprint of the
  /// request minus its id. Requests are declarative and deterministic, so
  /// an identical repeat replays the stored trajectory instead of
  /// re-running discovery: warm latency over the wire becomes the cost of
  /// the net stack, not of a PRIM recompute, and the replay burns no
  /// engine slot (so, like coalesced followers, it bypasses admission
  /// caps). 0 disables the cache.
  size_t result_cache_entries = 32;

  /// Boxes per kResultBoxes frame when a request streams its trajectory.
  int result_chunk_boxes = 64;
};

class DiscoveryServer {
 public:
  /// The engine is borrowed and must outlive the server. Net metrics
  /// (net.* counters, the decode pool's net.decode.* gauges) register in
  /// the engine's registry so one kMetricsScrape covers both layers.
  DiscoveryServer(engine::DiscoveryEngine* engine, ServerConfig config);
  ~DiscoveryServer();

  DiscoveryServer(const DiscoveryServer&) = delete;
  DiscoveryServer& operator=(const DiscoveryServer&) = delete;

  /// Binds, listens, and starts the loop + decode threads.
  Status Start();

  /// Stops accepting, closes every connection, joins all threads.
  /// Idempotent; the destructor calls it. Engine jobs already admitted
  /// keep running to completion (their delivery callbacks become no-ops).
  void Stop();

  /// The bound address in config grammar, with the resolved TCP port.
  const std::string& address() const { return bound_address_; }

  const ServerConfig& config() const { return config_; }

 private:
  /// Reply frames and bookkeeping crossing from decode/engine threads to
  /// the loop. inflight_delta is applied by the loop *after* the frames
  /// are queued, so a draining connection is never closed between its
  /// in-flight count reaching zero and its final frames arriving.
  struct Event {
    uint64_t conn_id = 0;
    std::vector<std::pair<shard::MsgType, std::string>> frames;
    int inflight_delta = 0;
    bool fatal = false;  // close the connection once the frames flush
  };

  /// Shared with decode threads and engine callbacks; owns the wakeup
  /// pipe's write end. Outlives the server via shared_ptr so a job
  /// finishing after Stop() pushes into a closed queue harmlessly.
  struct EventQueue {
    std::mutex mutex;
    std::vector<Event> events;
    int wake_fd = -1;  // write end of the loop's wakeup pipe
    bool open = false;

    void Push(Event event);
    void Close();
  };

  /// Cross-thread slice of one connection. The loop owns lifecycle
  /// (alive); decode threads admit (inflight up, jobs insert); engine
  /// callbacks retire (jobs erase; inflight comes down via the event).
  struct ConnShared {
    std::atomic<bool> alive{true};
    std::atomic<int> inflight{0};
    std::mutex mutex;
    std::unordered_map<uint64_t, engine::JobHandle> jobs;  // by request id
  };

  /// A completed request's replayable outcome (successes only; failures
  /// are never cached). Everything a result frame sequence needs, so a hit
  /// is served without touching the engine.
  struct CachedResult {
    std::vector<Box> trajectory;
    Box last_box;
    int32_t restricted = 0;
    double runtime_seconds = 0.0;
  };

  /// Completed-result LRU shared with engine completion callbacks, which
  /// may outlive the server (admitted jobs keep running after Stop());
  /// hence the shared_ptr ownership and internal mutex.
  struct ResultCache {
    explicit ResultCache(size_t capacity) : map(capacity) {}
    std::mutex mutex;
    LruMap<uint64_t, std::shared_ptr<const CachedResult>> map;
  };

  /// Loop-thread-only connection state.
  struct Connection {
    int fd = -1;
    uint64_t id = 0;
    shard::FrameDecoder decoder;
    shard::FrameWriteQueue out;
    bool want_write = false;  // EPOLLOUT currently registered
    bool hello_done = false;
    bool draining = false;  // peer half-closed: deliver results, then close
    bool closing = false;   // protocol-fatal: flush what is queued, close
    std::chrono::steady_clock::time_point last_activity;
    std::shared_ptr<ConnShared> shared;

    explicit Connection(size_t max_frame) : decoder(max_frame) {}
  };

  // Loop thread.
  void LoopThread();
  void AcceptNew();
  void HandleReadable(Connection* conn, bool hup);
  void HandleWritable(Connection* conn);
  void DispatchFrame(Connection* conn, shard::Frame frame);
  void ProcessEvents();
  void SweepKeepalive();
  void FlushConn(Connection* conn);
  void SetWriteInterest(Connection* conn, bool want);
  void BeginDrain(Connection* conn);
  /// Closes now if the connection has nothing left to deliver.
  void MaybeFinishClose(Connection* conn);
  void CloseConn(uint64_t conn_id);
  void SendFrame(Connection* conn, shard::MsgType type,
                 const std::string& payload);
  /// kError + fatal close: the byte stream can no longer be trusted.
  void ProtocolError(Connection* conn, uint64_t request_id,
                     const std::string& message);
  Connection* FindConn(uint64_t conn_id);

  // Decode threads.
  void HandleSubmit(uint64_t conn_id, std::shared_ptr<ConnShared> shared,
                    const std::string& payload);
  void HandleScrape(uint64_t conn_id, const std::string& payload);
  Status ValidateSubmit(const SubmitRequest& msg) const;
  Result<std::shared_ptr<const Dataset>> EagerDataset(
      const shard::SourceSpec& spec);
  void Shed(uint64_t conn_id, uint64_t request_id, const std::string& reason);
  /// Admits `msg` off the result cache: ack + replayed result frames, no
  /// engine job. Runs on a decode thread.
  void ReplayCachedResult(uint64_t conn_id,
                          const std::shared_ptr<ConnShared>& shared,
                          const SubmitRequest& msg, const CachedResult& cached,
                          std::chrono::steady_clock::time_point t0);

  Status Listen();

  engine::DiscoveryEngine* engine_;
  ServerConfig config_;
  std::string bound_address_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_read_fd_ = -1;
  std::string unix_path_;  // unlinked at Stop when bound to a unix socket

  std::atomic<bool> running_{false};
  std::thread loop_;
  std::shared_ptr<EventQueue> events_;

  uint64_t next_conn_id_ = 2;  // 0 = listen fd, 1 = wakeup pipe
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> conns_;

  std::mutex dataset_mutex_;
  LruMap<uint64_t, std::shared_ptr<const Dataset>> datasets_;

  std::shared_ptr<ResultCache> result_cache_;

  // net.* metrics, resolved once against the engine's registry.
  obs::Counter* accepted_ = nullptr;
  obs::Counter* closed_ = nullptr;
  obs::Counter* admitted_ = nullptr;
  obs::Counter* coalesced_exempt_ = nullptr;
  obs::Counter* result_cache_hits_ = nullptr;
  obs::Counter* shed_ = nullptr;
  obs::Counter* protocol_errors_ = nullptr;
  obs::Counter* results_delivered_ = nullptr;
  obs::Gauge* open_conns_ = nullptr;
  obs::Histogram* request_latency_ = nullptr;  // ns, decode to result enqueue

  // Last member: decode tasks reference everything above, so they must
  // drain first on destruction.
  ThreadPool decode_pool_;
};

}  // namespace reds::net

#endif  // REDS_NET_SERVER_H_
