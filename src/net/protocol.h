// Payload layouts of the client-facing discovery service (frame types
// shard::MsgType 64+; framing itself lives in shard/wire.h). Every payload
// is a util/serialize byte stream parsed with the same bounds-checked
// ByteReader the cache tier uses, so a hostile peer's truncated or
// corrupted payload fails parsing softly instead of crashing or
// over-allocating. The request model is deliberately declarative: a client
// names a deterministic synthetic dataset (shard::SourceSpec) plus a
// method and a few knobs, never ships raw bytes to execute -- the server
// materializes or streams the data itself, which is what lets identical
// requests share every engine cache tier and coalesce across connections.
#ifndef REDS_NET_PROTOCOL_H_
#define REDS_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/box.h"
#include "shard/source_spec.h"
#include "util/serialize.h"
#include "util/status.h"

namespace reds::net {

/// Bumped on any incompatible payload change; the handshake rejects
/// mismatches before any request is interpreted.
constexpr uint32_t kProtocolVersion = 1;

/// How the server ingests the request's dataset.
enum class DataMode : uint8_t {
  /// Materialize the spec into an in-memory Dataset (server-side LRU, one
  /// materialization per distinct spec). Eager requests are coalescing-
  /// eligible: identical concurrent submissions ride one engine job.
  kEager = 0,
  /// Hand the engine a DatasetSource factory: the streaming data plane
  /// ingests it (O(block) residency, streamed-index + relabel-stream
  /// caches). Never coalesced, but warm repeats skip all cold work.
  kStreamedSource = 1,
};

struct HelloRequest {
  uint32_t version = kProtocolVersion;
  std::string client_name;

  void SerializeTo(util::ByteWriter* out) const;
  static Result<HelloRequest> Parse(const std::string& payload);
};

struct HelloAck {
  uint32_t version = kProtocolVersion;
  uint32_t max_inflight_per_client = 0;  // 0 = unlimited
  uint32_t max_queue_depth = 0;          // 0 = unlimited
  uint64_t max_frame_bytes = 0;
  int32_t engine_threads = 0;

  void SerializeTo(util::ByteWriter* out) const;
  static Result<HelloAck> Parse(const std::string& payload);
};

/// One discovery submission. `request_id` is chosen by the client (unique
/// per connection) and echoed on every reply frame, so one connection can
/// keep several requests in flight and demultiplex the interleaved
/// responses.
struct SubmitRequest {
  uint64_t request_id = 0;
  std::string method;  // MethodSpec grammar, e.g. "P", "RPx"
  DataMode data_mode = DataMode::kEager;
  shard::SourceSpec source;  // kSynthetic only; the server rejects kCsv
  double alpha = 0.05;
  int32_t min_points = 20;
  int32_t l_prim = 10000;  // REDS relabeled-point budget
  uint64_t options_seed = 0;
  bool tune_metamodel = false;
  bool want_boxes = false;  // stream the trajectory, not just the last box

  void SerializeTo(util::ByteWriter* out) const;
  static Result<SubmitRequest> Parse(const std::string& payload);
};

/// SubmitAck flag bit: the request was admitted as a coalesced follower of
/// an identical in-flight job -- it burns no pool slot and was therefore
/// exempt from the queue-depth cap.
constexpr uint8_t kAdmitCoalescedExempt = 1;

/// SubmitAck flag bit: an identical request already completed and the
/// reply was replayed from the server's result cache. Requests are fully
/// declarative and deterministic, so the replay is the answer the engine
/// would recompute; no pool slot is burned and admission caps are
/// bypassed.
constexpr uint8_t kAdmitResultCached = 2;

struct SubmitAck {
  uint64_t request_id = 0;
  uint8_t flags = 0;

  void SerializeTo(util::ByteWriter* out) const;
  static Result<SubmitAck> Parse(const std::string& payload);
};

/// Admission refused: the pool is saturated past the queue-depth cap or
/// the client is over its in-flight quota. The client owns the retry.
struct ShedReply {
  uint64_t request_id = 0;
  uint32_t retry_after_ms = 0;
  std::string reason;

  void SerializeTo(util::ByteWriter* out) const;
  static Result<ShedReply> Parse(const std::string& payload);
};

struct StatusPoll {
  uint64_t request_id = 0;

  void SerializeTo(util::ByteWriter* out) const;
  static Result<StatusPoll> Parse(const std::string& payload);
};

/// Wire encoding of a job's lifecycle state.
enum class WireJobState : uint8_t {
  kQueued = 0,
  kRunning = 1,
  kDone = 2,
  kFailed = 3,
  kUnknown = 4,  // request id this connection never admitted (or long gone)
};

struct StatusReply {
  uint64_t request_id = 0;
  WireJobState state = WireJobState::kUnknown;
  std::string error;  // non-empty only for kFailed

  void SerializeTo(util::ByteWriter* out) const;
  static Result<StatusReply> Parse(const std::string& payload);
};

/// One chunk of the trajectory, streamed in order before kResultDone when
/// the request asked for boxes. `first_index` is the trajectory position
/// of boxes.front().
struct ResultBoxes {
  uint64_t request_id = 0;
  uint32_t first_index = 0;
  std::vector<Box> boxes;

  void SerializeTo(util::ByteWriter* out) const;
  static Result<ResultBoxes> Parse(const std::string& payload);
};

/// Final frame of a request: the selected box plus the scalar metrics.
/// `failed` carries engine-side job failures in-band (the connection
/// stays usable); kError frames are reserved for protocol violations.
struct ResultDone {
  uint64_t request_id = 0;
  bool failed = false;
  std::string error;
  Box last_box;
  uint32_t trajectory_len = 0;
  int32_t restricted = 0;
  double runtime_seconds = 0.0;   // engine-measured method runtime
  uint64_t server_latency_ns = 0; // submit-frame decode to result encode
  uint8_t flags = 0;              // kAdmit* admission-path bits

  void SerializeTo(util::ByteWriter* out) const;
  static Result<ResultDone> Parse(const std::string& payload);
};

enum class ScrapeFormat : uint8_t { kJson = 0, kPrometheus = 1 };

struct MetricsScrape {
  ScrapeFormat format = ScrapeFormat::kPrometheus;

  void SerializeTo(util::ByteWriter* out) const;
  static Result<MetricsScrape> Parse(const std::string& payload);
};

struct MetricsDump {
  std::string body;

  void SerializeTo(util::ByteWriter* out) const;
  static Result<MetricsDump> Parse(const std::string& payload);
};

/// Protocol-violation reply (malformed payload, unknown frame type, bad
/// handshake). `request_id` is 0 when the error is not request-bound.
/// Fatal errors close the connection right after the frame flushes.
struct ErrorReply {
  uint64_t request_id = 0;
  std::string message;

  void SerializeTo(util::ByteWriter* out) const;
  static Result<ErrorReply> Parse(const std::string& payload);
};

/// Box <-> bytes helpers shared by the result frames.
void WriteBox(util::ByteWriter* out, const Box& box);
Result<Box> ReadBox(util::ByteReader* in);

}  // namespace reds::net

#endif  // REDS_NET_PROTOCOL_H_
