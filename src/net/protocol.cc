#include "net/protocol.h"

namespace reds::net {

namespace {

Status Malformed(const char* what) {
  return Status::IoError(std::string("net protocol: malformed ") + what +
                         " payload");
}

}  // namespace

void WriteBox(util::ByteWriter* out, const Box& box) {
  out->U32(static_cast<uint32_t>(box.dim()));
  for (int j = 0; j < box.dim(); ++j) {
    out->F64(box.lo(j));
    out->F64(box.hi(j));
  }
}

Result<Box> ReadBox(util::ByteReader* in) {
  const uint32_t dim = in->U32();
  // Each dimension costs 16 bytes; reject declared dims the remaining
  // bytes cannot possibly back before allocating anything.
  if (!in->ok() || dim > in->remaining() / 16) {
    return Status::IoError("net protocol: malformed box");
  }
  Box box = Box::Unbounded(static_cast<int>(dim));
  for (uint32_t j = 0; j < dim; ++j) {
    box.set_lo(static_cast<int>(j), in->F64());
    box.set_hi(static_cast<int>(j), in->F64());
  }
  if (!in->ok()) return Status::IoError("net protocol: malformed box");
  return box;
}

void HelloRequest::SerializeTo(util::ByteWriter* out) const {
  out->U32(version);
  out->Str(client_name);
}

Result<HelloRequest> HelloRequest::Parse(const std::string& payload) {
  util::ByteReader in(payload);
  HelloRequest msg;
  msg.version = in.U32();
  msg.client_name = in.Str();
  if (!in.ok()) return Malformed("hello");
  return msg;
}

void HelloAck::SerializeTo(util::ByteWriter* out) const {
  out->U32(version);
  out->U32(max_inflight_per_client);
  out->U32(max_queue_depth);
  out->U64(max_frame_bytes);
  out->I32(engine_threads);
}

Result<HelloAck> HelloAck::Parse(const std::string& payload) {
  util::ByteReader in(payload);
  HelloAck msg;
  msg.version = in.U32();
  msg.max_inflight_per_client = in.U32();
  msg.max_queue_depth = in.U32();
  msg.max_frame_bytes = in.U64();
  msg.engine_threads = in.I32();
  if (!in.ok()) return Malformed("hello-ack");
  return msg;
}

void SubmitRequest::SerializeTo(util::ByteWriter* out) const {
  out->U64(request_id);
  out->Str(method);
  out->U8(static_cast<uint8_t>(data_mode));
  source.SerializeTo(out);
  out->F64(alpha);
  out->I32(min_points);
  out->I32(l_prim);
  out->U64(options_seed);
  out->U8(tune_metamodel ? 1 : 0);
  out->U8(want_boxes ? 1 : 0);
}

Result<SubmitRequest> SubmitRequest::Parse(const std::string& payload) {
  util::ByteReader in(payload);
  SubmitRequest msg;
  msg.request_id = in.U64();
  msg.method = in.Str();
  const uint8_t mode = in.U8();
  if (mode > static_cast<uint8_t>(DataMode::kStreamedSource)) {
    return Malformed("submit (data mode)");
  }
  msg.data_mode = static_cast<DataMode>(mode);
  Result<shard::SourceSpec> spec = shard::SourceSpec::DeserializeFrom(&in);
  if (!spec.ok()) return spec.status();
  msg.source = *spec;
  msg.alpha = in.F64();
  msg.min_points = in.I32();
  msg.l_prim = in.I32();
  msg.options_seed = in.U64();
  msg.tune_metamodel = in.U8() != 0;
  msg.want_boxes = in.U8() != 0;
  if (!in.ok()) return Malformed("submit");
  return msg;
}

void SubmitAck::SerializeTo(util::ByteWriter* out) const {
  out->U64(request_id);
  out->U8(flags);
}

Result<SubmitAck> SubmitAck::Parse(const std::string& payload) {
  util::ByteReader in(payload);
  SubmitAck msg;
  msg.request_id = in.U64();
  msg.flags = in.U8();
  if (!in.ok()) return Malformed("submit-ack");
  return msg;
}

void ShedReply::SerializeTo(util::ByteWriter* out) const {
  out->U64(request_id);
  out->U32(retry_after_ms);
  out->Str(reason);
}

Result<ShedReply> ShedReply::Parse(const std::string& payload) {
  util::ByteReader in(payload);
  ShedReply msg;
  msg.request_id = in.U64();
  msg.retry_after_ms = in.U32();
  msg.reason = in.Str();
  if (!in.ok()) return Malformed("shed");
  return msg;
}

void StatusPoll::SerializeTo(util::ByteWriter* out) const {
  out->U64(request_id);
}

Result<StatusPoll> StatusPoll::Parse(const std::string& payload) {
  util::ByteReader in(payload);
  StatusPoll msg;
  msg.request_id = in.U64();
  if (!in.ok()) return Malformed("status-poll");
  return msg;
}

void StatusReply::SerializeTo(util::ByteWriter* out) const {
  out->U64(request_id);
  out->U8(static_cast<uint8_t>(state));
  out->Str(error);
}

Result<StatusReply> StatusReply::Parse(const std::string& payload) {
  util::ByteReader in(payload);
  StatusReply msg;
  msg.request_id = in.U64();
  const uint8_t state = in.U8();
  if (state > static_cast<uint8_t>(WireJobState::kUnknown)) {
    return Malformed("status-reply (state)");
  }
  msg.state = static_cast<WireJobState>(state);
  msg.error = in.Str();
  if (!in.ok()) return Malformed("status-reply");
  return msg;
}

void ResultBoxes::SerializeTo(util::ByteWriter* out) const {
  out->U64(request_id);
  out->U32(first_index);
  out->U32(static_cast<uint32_t>(boxes.size()));
  for (const Box& box : boxes) WriteBox(out, box);
}

Result<ResultBoxes> ResultBoxes::Parse(const std::string& payload) {
  util::ByteReader in(payload);
  ResultBoxes msg;
  msg.request_id = in.U64();
  msg.first_index = in.U32();
  const uint32_t count = in.U32();
  // A box is at least 4 bytes (its dim header); bound the reserve.
  if (!in.ok() || count > in.remaining() / 4) {
    return Malformed("result-boxes (count)");
  }
  msg.boxes.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Result<Box> box = ReadBox(&in);
    if (!box.ok()) return box.status();
    msg.boxes.push_back(std::move(*box));
  }
  if (!in.ok()) return Malformed("result-boxes");
  return msg;
}

void ResultDone::SerializeTo(util::ByteWriter* out) const {
  out->U64(request_id);
  out->U8(failed ? 1 : 0);
  out->Str(error);
  WriteBox(out, last_box);
  out->U32(trajectory_len);
  out->I32(restricted);
  out->F64(runtime_seconds);
  out->U64(server_latency_ns);
  out->U8(flags);
}

Result<ResultDone> ResultDone::Parse(const std::string& payload) {
  util::ByteReader in(payload);
  ResultDone msg;
  msg.request_id = in.U64();
  msg.failed = in.U8() != 0;
  msg.error = in.Str();
  Result<Box> box = ReadBox(&in);
  if (!box.ok()) return box.status();
  msg.last_box = std::move(*box);
  msg.trajectory_len = in.U32();
  msg.restricted = in.I32();
  msg.runtime_seconds = in.F64();
  msg.server_latency_ns = in.U64();
  msg.flags = in.U8();
  if (!in.ok()) return Malformed("result-done");
  return msg;
}

void MetricsScrape::SerializeTo(util::ByteWriter* out) const {
  out->U8(static_cast<uint8_t>(format));
}

Result<MetricsScrape> MetricsScrape::Parse(const std::string& payload) {
  util::ByteReader in(payload);
  MetricsScrape msg;
  const uint8_t format = in.U8();
  if (format > static_cast<uint8_t>(ScrapeFormat::kPrometheus)) {
    return Malformed("metrics-scrape (format)");
  }
  msg.format = static_cast<ScrapeFormat>(format);
  if (!in.ok()) return Malformed("metrics-scrape");
  return msg;
}

void MetricsDump::SerializeTo(util::ByteWriter* out) const {
  out->Str(body);
}

Result<MetricsDump> MetricsDump::Parse(const std::string& payload) {
  util::ByteReader in(payload);
  MetricsDump msg;
  msg.body = in.Str();
  if (!in.ok()) return Malformed("metrics-dump");
  return msg;
}

void ErrorReply::SerializeTo(util::ByteWriter* out) const {
  out->U64(request_id);
  out->Str(message);
}

Result<ErrorReply> ErrorReply::Parse(const std::string& payload) {
  util::ByteReader in(payload);
  ErrorReply msg;
  msg.request_id = in.U64();
  msg.message = in.Str();
  if (!in.ok()) return Malformed("error");
  return msg;
}

}  // namespace reds::net
