#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <functional>

namespace reds::net {

namespace {

std::string Encode(const std::function<void(util::ByteWriter*)>& fn) {
  util::ByteWriter w;
  fn(&w);
  return w.data();
}

}  // namespace

Status NetClient::Connect(const std::string& address) {
  if (fd_ >= 0) return Status::FailedPrecondition("net client: already connected");
  if (address.rfind("unix:", 0) == 0) {
    const std::string path = address.substr(5);
    sockaddr_un sa{};
    if (path.empty() || path.size() >= sizeof(sa.sun_path)) {
      return Status::InvalidArgument("net client: bad unix socket path: " +
                                     path);
    }
    fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) {
      return Status::IoError(std::string("net client: socket: ") +
                             std::strerror(errno));
    }
    sa.sun_family = AF_UNIX;
    std::memcpy(sa.sun_path, path.c_str(), path.size());
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      const std::string err = std::strerror(errno);
      Close();
      return Status::IoError("net client: connect " + path + ": " + err);
    }
    return Status::OK();
  }
  if (address.rfind("tcp:", 0) == 0) {
    const std::string rest = address.substr(4);
    const size_t colon = rest.rfind(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("net client: tcp address needs a port: " +
                                     address);
    }
    const std::string host = rest.substr(0, colon);
    const int port = std::atoi(rest.c_str() + colon + 1);
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) {
      return Status::IoError(std::string("net client: socket: ") +
                             std::strerror(errno));
    }
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(static_cast<uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &sa.sin_addr) != 1) {
      Close();
      return Status::InvalidArgument("net client: bad tcp host in " + address);
    }
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      const std::string err = std::strerror(errno);
      Close();
      return Status::IoError("net client: connect " + address + ": " + err);
    }
    // Request/reply framing benefits from immediate small writes.
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return Status::OK();
  }
  return Status::InvalidArgument(
      "net client: address must be unix:PATH or tcp:host:port, got " +
      address);
}

void NetClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  stash_.clear();
}

Status NetClient::FinishWrites() {
  if (fd_ < 0) return Status::FailedPrecondition("net client: not connected");
  if (::shutdown(fd_, SHUT_WR) != 0) {
    return Status::IoError(std::string("net client: shutdown: ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

Result<shard::Frame> NetClient::NextReply(
    std::initializer_list<shard::MsgType> wanted) {
  for (auto it = stash_.begin(); it != stash_.end(); ++it) {
    for (shard::MsgType type : wanted) {
      if (it->type == type) {
        shard::Frame frame = std::move(*it);
        stash_.erase(it);
        return frame;
      }
    }
  }
  if (fd_ < 0) return Status::FailedPrecondition("net client: not connected");
  return shard::ReadFrame(fd_, max_frame_bytes_);
}

Result<HelloAck> NetClient::Hello(const std::string& client_name) {
  HelloRequest hello;
  hello.client_name = client_name;
  Status s = shard::WriteFrame(
      fd_, shard::MsgType::kHello,
      Encode([&](util::ByteWriter* w) { hello.SerializeTo(w); }));
  if (!s.ok()) return s;
  Result<shard::Frame> frame = NextReply(
      {shard::MsgType::kHelloAck, shard::MsgType::kError});
  if (!frame.ok()) return frame.status();
  if (frame->type == shard::MsgType::kError) {
    Result<ErrorReply> err = ErrorReply::Parse(frame->payload);
    return Status::IoError("net client: hello rejected: " +
                           (err.ok() ? err->message : std::string("?")));
  }
  if (frame->type != shard::MsgType::kHelloAck) {
    return Status::IoError("net client: expected hello-ack, got type " +
                           std::to_string(static_cast<int>(frame->type)));
  }
  return HelloAck::Parse(frame->payload);
}

Result<SubmitOutcome> NetClient::Submit(const SubmitRequest& request) {
  Status s = shard::WriteFrame(
      fd_, shard::MsgType::kSubmit,
      Encode([&](util::ByteWriter* w) { request.SerializeTo(w); }));
  if (!s.ok()) return s;
  for (;;) {
    Result<shard::Frame> frame =
        NextReply({shard::MsgType::kSubmitAck, shard::MsgType::kShed,
                   shard::MsgType::kError});
    if (!frame.ok()) return frame.status();
    switch (frame->type) {
      case shard::MsgType::kSubmitAck: {
        Result<SubmitAck> ack = SubmitAck::Parse(frame->payload);
        if (!ack.ok()) return ack.status();
        if (ack->request_id != request.request_id) {
          return Status::IoError("net client: submit-ack for unexpected id");
        }
        SubmitOutcome outcome;
        outcome.kind = SubmitOutcome::Kind::kAdmitted;
        outcome.flags = ack->flags;
        return outcome;
      }
      case shard::MsgType::kShed: {
        Result<ShedReply> shed = ShedReply::Parse(frame->payload);
        if (!shed.ok()) return shed.status();
        if (shed->request_id != request.request_id) {
          return Status::IoError("net client: shed for unexpected id");
        }
        SubmitOutcome outcome;
        outcome.kind = SubmitOutcome::Kind::kShed;
        outcome.retry_after_ms = shed->retry_after_ms;
        outcome.message = shed->reason;
        return outcome;
      }
      case shard::MsgType::kError: {
        Result<ErrorReply> err = ErrorReply::Parse(frame->payload);
        if (!err.ok()) return err.status();
        SubmitOutcome outcome;
        outcome.kind = SubmitOutcome::Kind::kRejected;
        outcome.message = err->message;
        return outcome;
      }
      case shard::MsgType::kResultBoxes:
      case shard::MsgType::kResultDone:
        // Completion of an earlier request racing ahead of this admission
        // reply; keep it for its WaitResult.
        stash_.push_back(std::move(*frame));
        continue;
      default:
        return Status::IoError(
            "net client: unexpected frame type " +
            std::to_string(static_cast<int>(frame->type)) +
            " while awaiting submit reply");
    }
  }
}

Result<RequestResult> NetClient::WaitResult(uint64_t request_id) {
  RequestResult result;
  // Serve stashed frames for this id first, in arrival order.
  for (;;) {
    bool progressed = false;
    for (auto it = stash_.begin(); it != stash_.end();) {
      if (it->type == shard::MsgType::kResultBoxes) {
        Result<ResultBoxes> boxes = ResultBoxes::Parse(it->payload);
        if (boxes.ok() && boxes->request_id == request_id) {
          for (Box& box : boxes->boxes) result.boxes.push_back(std::move(box));
          it = stash_.erase(it);
          progressed = true;
          continue;
        }
      } else if (it->type == shard::MsgType::kResultDone) {
        Result<ResultDone> done = ResultDone::Parse(it->payload);
        if (done.ok() && done->request_id == request_id) {
          result.done = std::move(*done);
          stash_.erase(it);
          return result;
        }
      }
      ++it;
    }
    if (!progressed) break;
  }
  for (;;) {
    if (fd_ < 0) return Status::FailedPrecondition("net client: not connected");
    Result<shard::Frame> frame = shard::ReadFrame(fd_, max_frame_bytes_);
    if (!frame.ok()) return frame.status();
    if (frame->type == shard::MsgType::kResultBoxes) {
      Result<ResultBoxes> boxes = ResultBoxes::Parse(frame->payload);
      if (!boxes.ok()) return boxes.status();
      if (boxes->request_id == request_id) {
        for (Box& box : boxes->boxes) result.boxes.push_back(std::move(box));
      } else {
        stash_.push_back(std::move(*frame));
      }
      continue;
    }
    if (frame->type == shard::MsgType::kResultDone) {
      Result<ResultDone> done = ResultDone::Parse(frame->payload);
      if (!done.ok()) return done.status();
      if (done->request_id == request_id) {
        result.done = std::move(*done);
        return result;
      }
      stash_.push_back(std::move(*frame));
      continue;
    }
    if (frame->type == shard::MsgType::kError) {
      Result<ErrorReply> err = ErrorReply::Parse(frame->payload);
      return Status::IoError("net client: server error: " +
                             (err.ok() ? err->message : std::string("?")));
    }
    // Anything else (pong, status replies) belongs to interleaved calls
    // this client does not make while waiting; stash defensively.
    stash_.push_back(std::move(*frame));
  }
}

Result<StatusReply> NetClient::PollStatus(uint64_t request_id) {
  StatusPoll poll;
  poll.request_id = request_id;
  Status s = shard::WriteFrame(
      fd_, shard::MsgType::kStatusPoll,
      Encode([&](util::ByteWriter* w) { poll.SerializeTo(w); }));
  if (!s.ok()) return s;
  for (;;) {
    Result<shard::Frame> frame =
        NextReply({shard::MsgType::kStatusReply, shard::MsgType::kError});
    if (!frame.ok()) return frame.status();
    if (frame->type == shard::MsgType::kStatusReply) {
      Result<StatusReply> reply = StatusReply::Parse(frame->payload);
      if (!reply.ok()) return reply.status();
      if (reply->request_id == request_id) return reply;
      continue;  // stale reply for an older poll; keep reading
    }
    if (frame->type == shard::MsgType::kResultBoxes ||
        frame->type == shard::MsgType::kResultDone) {
      stash_.push_back(std::move(*frame));
      continue;
    }
    return Status::IoError("net client: unexpected frame type " +
                           std::to_string(static_cast<int>(frame->type)) +
                           " while awaiting status reply");
  }
}

Result<std::string> NetClient::Scrape(ScrapeFormat format) {
  MetricsScrape scrape;
  scrape.format = format;
  Status s = shard::WriteFrame(
      fd_, shard::MsgType::kMetricsScrape,
      Encode([&](util::ByteWriter* w) { scrape.SerializeTo(w); }));
  if (!s.ok()) return s;
  for (;;) {
    Result<shard::Frame> frame =
        NextReply({shard::MsgType::kMetricsDump, shard::MsgType::kError});
    if (!frame.ok()) return frame.status();
    if (frame->type == shard::MsgType::kMetricsDump) {
      Result<MetricsDump> dump = MetricsDump::Parse(frame->payload);
      if (!dump.ok()) return dump.status();
      return dump->body;
    }
    if (frame->type == shard::MsgType::kResultBoxes ||
        frame->type == shard::MsgType::kResultDone) {
      stash_.push_back(std::move(*frame));
      continue;
    }
    if (frame->type == shard::MsgType::kError) {
      Result<ErrorReply> err = ErrorReply::Parse(frame->payload);
      return Status::IoError("net client: scrape rejected: " +
                             (err.ok() ? err->message : std::string("?")));
    }
    return Status::IoError("net client: unexpected frame type " +
                           std::to_string(static_cast<int>(frame->type)) +
                           " while awaiting metrics dump");
  }
}

Status NetClient::Ping() {
  Status s = shard::WriteFrame(fd_, shard::MsgType::kPing, std::string());
  if (!s.ok()) return s;
  for (;;) {
    Result<shard::Frame> frame =
        NextReply({shard::MsgType::kPong, shard::MsgType::kError});
    if (!frame.ok()) return frame.status();
    if (frame->type == shard::MsgType::kPong) return Status::OK();
    if (frame->type == shard::MsgType::kResultBoxes ||
        frame->type == shard::MsgType::kResultDone) {
      stash_.push_back(std::move(*frame));
      continue;
    }
    return Status::IoError("net client: unexpected frame type " +
                           std::to_string(static_cast<int>(frame->type)) +
                           " while awaiting pong");
  }
}

SubmitRequest MakeSubmit(uint64_t request_id, const std::string& method,
                         DataMode mode, int64_t rows, int dims, uint64_t seed,
                         double alpha, int l_prim) {
  SubmitRequest request;
  request.request_id = request_id;
  request.method = method;
  request.data_mode = mode;
  request.source.kind = shard::SourceSpec::Kind::kSynthetic;
  request.source.rows = rows;
  request.source.dims = dims;
  request.source.seed = seed;
  request.alpha = alpha;
  request.l_prim = l_prim;
  return request;
}

}  // namespace reds::net
