// Additive / low-interaction metamodeling benchmarks: the Linkletter 2006
// family, Loeppky 2013, Moon 2010 functions, Williams 2006 and the paper's
// own "ellipse" function. Where the original coefficients are not public,
// these keep the published dimensionality, relevant-input count and
// structural family (see the substitution table in DESIGN.md).
#include <cmath>

#include "functions/registry.h"

namespace reds::fun {

namespace {

// --- linketal06dec: decreasing coefficients, 8 of 10 inputs active. ---
class Link06Dec final : public DeterministicFunction {
 public:
  std::string name() const override { return "linketal06dec"; }
  int dim() const override { return 10; }
  std::vector<bool> relevant() const override {
    std::vector<bool> rel(10, false);
    for (int j = 0; j < 8; ++j) rel[static_cast<size_t>(j)] = true;
    return rel;
  }
  double target_share() const override { return 0.253; }
  double Raw(const double* x) const override {
    double y = 0.0;
    double coef = 0.2;
    for (int j = 0; j < 8; ++j) {
      y += coef * x[j];
      coef /= 2.0;
    }
    return y;
  }
};

// --- linketal06simple: equal weights on the first 4 of 10 inputs. ---
class Link06Simple final : public DeterministicFunction {
 public:
  std::string name() const override { return "linketal06simple"; }
  int dim() const override { return 10; }
  std::vector<bool> relevant() const override {
    std::vector<bool> rel(10, false);
    for (int j = 0; j < 4; ++j) rel[static_cast<size_t>(j)] = true;
    return rel;
  }
  double target_share() const override { return 0.285; }
  double Raw(const double* x) const override {
    return 0.5 * (x[0] + x[1] + x[2] + x[3]);
  }
};

// --- linketal06sin: sine function, 2 of 10 inputs active. ---
class Link06Sin final : public DeterministicFunction {
 public:
  std::string name() const override { return "linketal06sin"; }
  int dim() const override { return 10; }
  std::vector<bool> relevant() const override {
    std::vector<bool> rel(10, false);
    rel[0] = rel[1] = true;
    return rel;
  }
  double target_share() const override { return 0.272; }
  double Raw(const double* x) const override {
    return std::sin(2.0 * M_PI * x[0]) + 2.0 * x[1];
  }
};

// --- loepetal13: strong main effects plus pairwise interactions among the
// first three inputs, weak tail; 7 of 10 inputs active. ---
class Loeppky13 final : public DeterministicFunction {
 public:
  std::string name() const override { return "loepetal13"; }
  int dim() const override { return 10; }
  std::vector<bool> relevant() const override {
    std::vector<bool> rel(10, false);
    for (int j = 0; j < 7; ++j) rel[static_cast<size_t>(j)] = true;
    return rel;
  }
  double target_share() const override { return 0.389; }
  double Raw(const double* x) const override {
    return 6.0 * x[0] + 4.0 * x[1] + 5.5 * x[2] + 3.0 * x[0] * x[1] +
           2.2 * x[0] * x[2] + 1.4 * x[1] * x[2] + x[3] + 0.5 * x[4] +
           0.2 * x[5] + 0.1 * x[6];
  }
};

// --- moon10hd: high-dimensional, all 20 inputs active with alternating
// signs and light interactions. ---
class Moon10Hd final : public DeterministicFunction {
 public:
  std::string name() const override { return "moon10hd"; }
  int dim() const override { return 20; }
  std::vector<bool> relevant() const override {
    return std::vector<bool>(20, true);
  }
  double target_share() const override { return 0.421; }
  double Raw(const double* x) const override {
    double y = 0.0;
    for (int j = 0; j < 20; ++j) {
      const double w = (j % 2 == 0 ? 1.0 : -1.0) * (0.4 + 0.06 * j);
      y += w * x[j];
    }
    for (int j = 0; j + 1 < 20; j += 2) y += 0.35 * x[j] * x[j + 1];
    return y;
  }
};

// --- moon10hdc1: 20 inputs, only 5 active. ---
class Moon10Hdc1 final : public DeterministicFunction {
 public:
  std::string name() const override { return "moon10hdc1"; }
  int dim() const override { return 20; }
  std::vector<bool> relevant() const override {
    std::vector<bool> rel(20, false);
    for (int j = 0; j < 5; ++j) rel[static_cast<size_t>(j)] = true;
    return rel;
  }
  double target_share() const override { return 0.342; }
  double Raw(const double* x) const override {
    return 2.0 * x[0] + 1.6 * x[1] - 1.2 * x[2] + x[3] * x[4] +
           0.8 * x[2] * x[2];
  }
};

// --- moon10low: 3 inputs, all active, with one interaction. ---
class Moon10Low final : public DeterministicFunction {
 public:
  std::string name() const override { return "moon10low"; }
  int dim() const override { return 3; }
  std::vector<bool> relevant() const override {
    return std::vector<bool>(3, true);
  }
  double target_share() const override { return 0.456; }
  double Raw(const double* x) const override {
    return x[0] + 0.9 * x[1] + 0.6 * x[2] + 1.2 * x[0] * x[1];
  }
};

// --- willetal06: 3 inputs, 2 active. ---
class Williams06 final : public DeterministicFunction {
 public:
  std::string name() const override { return "willetal06"; }
  int dim() const override { return 3; }
  std::vector<bool> relevant() const override {
    return {true, true, false};
  }
  double target_share() const override { return 0.249; }
  double Raw(const double* x) const override {
    return std::exp(1.5 * x[0]) * (x[1] + 0.4) - x[0];
  }
};

// --- ellipse: the paper's own function, f = sum_{j<=10} w_j (x_j - c_j)^2
// over 15 inputs, w_j = 0 beyond the tenth. Constants fixed by seed. ---
class Ellipse final : public DeterministicFunction {
 public:
  Ellipse() {
    Rng rng(0xe111b5eULL);
    for (int j = 0; j < 15; ++j) {
      w_[j] = j < 10 ? rng.Uniform(0.2, 1.0) : 0.0;
      c_[j] = rng.Uniform(0.2, 0.8);
    }
  }
  std::string name() const override { return "ellipse"; }
  int dim() const override { return 15; }
  std::vector<bool> relevant() const override {
    std::vector<bool> rel(15, false);
    for (int j = 0; j < 10; ++j) rel[static_cast<size_t>(j)] = true;
    return rel;
  }
  double target_share() const override { return 0.225; }
  double Raw(const double* x) const override {
    double y = 0.0;
    for (int j = 0; j < 15; ++j) {
      const double diff = x[j] - c_[j];
      y += w_[j] * diff * diff;
    }
    return y;
  }

 private:
  double w_[15];
  double c_[15];
};

}  // namespace

std::unique_ptr<TestFunction> MakeLink06Dec() { return std::make_unique<Link06Dec>(); }
std::unique_ptr<TestFunction> MakeLink06Simple() {
  return std::make_unique<Link06Simple>();
}
std::unique_ptr<TestFunction> MakeLink06Sin() { return std::make_unique<Link06Sin>(); }
std::unique_ptr<TestFunction> MakeLoeppky13() { return std::make_unique<Loeppky13>(); }
std::unique_ptr<TestFunction> MakeMoon10Hd() { return std::make_unique<Moon10Hd>(); }
std::unique_ptr<TestFunction> MakeMoon10Hdc1() {
  return std::make_unique<Moon10Hdc1>();
}
std::unique_ptr<TestFunction> MakeMoon10Low() { return std::make_unique<Moon10Low>(); }
std::unique_ptr<TestFunction> MakeWilliams06() {
  return std::make_unique<Williams06>();
}
std::unique_ptr<TestFunction> MakeEllipse() { return std::make_unique<Ellipse>(); }

}  // namespace reds::fun
