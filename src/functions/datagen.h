// Glue between designs of experiments and labeling oracles: builds the
// datasets D / D_test the experiments consume (paper Section 8.5).
#ifndef REDS_FUNCTIONS_DATAGEN_H_
#define REDS_FUNCTIONS_DATAGEN_H_

#include <cstdint>

#include "core/dataset.h"
#include "functions/function.h"
#include "sampling/design.h"

namespace reds::fun {

enum class DesignKind {
  kLatinHypercube,  // default for all functions (paper Section 8.5)
  kHalton,          // used for "dsgc"
  kUniform,
  kLogitNormal,     // semi-supervised experiment (Section 9.4)
  kMixedDiscrete,   // even inputs in {0.1,...,0.9} (Section 9.1.2)
};

/// The paper's design choice for a function: Halton for "dsgc", LHS
/// otherwise.
DesignKind DefaultDesignFor(const TestFunction& f);

/// n x dim row-major design of the requested kind.
std::vector<double> MakeDesign(DesignKind kind, int n, int dim, uint64_t seed);

/// Labels the design points with the function ("runs n simulations").
Dataset LabelDesign(const TestFunction& f, const std::vector<double>& design,
                    uint64_t seed);

/// Convenience: MakeDesign + LabelDesign.
Dataset MakeScenarioDataset(const TestFunction& f, int n, DesignKind kind,
                            uint64_t seed);

/// Point sampler matching the input distribution of a design kind; REDS must
/// draw its L fresh points from the same p(x).
sampling::PointSampler SamplerFor(DesignKind kind);

}  // namespace reds::fun

#endif  // REDS_FUNCTIONS_DATAGEN_H_
