// Glue between designs of experiments and labeling oracles: builds the
// datasets D / D_test the experiments consume (paper Section 8.5).
#ifndef REDS_FUNCTIONS_DATAGEN_H_
#define REDS_FUNCTIONS_DATAGEN_H_

#include <cstdint>
#include <vector>

#include "core/dataset.h"
#include "core/dataset_source.h"
#include "functions/function.h"
#include "sampling/design.h"

namespace reds::fun {

enum class DesignKind {
  kLatinHypercube,  // default for all functions (paper Section 8.5)
  kHalton,          // used for "dsgc"
  kUniform,
  kLogitNormal,     // semi-supervised experiment (Section 9.4)
  kMixedDiscrete,   // even inputs in {0.1,...,0.9} (Section 9.1.2)
};

/// The paper's design choice for a function: Halton for "dsgc", LHS
/// otherwise.
DesignKind DefaultDesignFor(const TestFunction& f);

/// n x dim row-major design of the requested kind.
std::vector<double> MakeDesign(DesignKind kind, int n, int dim, uint64_t seed);

/// Labels the design points with the function ("runs n simulations").
Dataset LabelDesign(const TestFunction& f, const std::vector<double>& design,
                    uint64_t seed);

/// Convenience: MakeDesign + LabelDesign.
Dataset MakeScenarioDataset(const TestFunction& f, int n, DesignKind kind,
                            uint64_t seed);

/// Point sampler matching the input distribution of a design kind; REDS must
/// draw its L fresh points from the same p(x).
sampling::PointSampler SamplerFor(DesignKind kind);

/// Generator-backed DatasetSource: streams `n` sampled points labeled by a
/// test function in blocks, so arbitrarily large labeled samples flow into
/// the streaming data plane without ever being materialized. Each row is
/// generated from a seed derived from (seed, row index), making the stream
/// deterministic across Reset() passes and independent of the block sizes
/// callers request. Points are drawn from `sampler` (the same p(x) REDS
/// uses for its L fresh points; default uniform), so stratified designs
/// (LHS/Halton), which need the full sample upfront, stay on the
/// materialized MakeDesign path.
class FunctionSource : public DatasetSource {
 public:
  FunctionSource(const TestFunction& f, int64_t n, uint64_t seed,
                 sampling::PointSampler sampler = {});

  int num_cols() const override;
  int64_t num_rows_hint() const override { return n_; }
  Status Reset() override;
  Result<RowBlock> NextBlock(int max_rows) override;

 private:
  const TestFunction& f_;
  int64_t n_;
  uint64_t seed_;
  sampling::PointSampler sampler_;
  int64_t cursor_ = 0;
  std::vector<double> x_buf_;
  std::vector<double> y_buf_;
};

}  // namespace reds::fun

#endif  // REDS_FUNCTIONS_DATAGEN_H_
