// Third-party scenario-discovery datasets (paper Section 9.3). The
// originals ("TGL" from Bryant & Lempert 2010, "lake" from the exploratory
// modeling workbench) are not redistributable offline, so we rebuild them:
// "lake" by actually simulating the shallow-lake eutrophication model,
// "TGL" as a seeded synthetic table with a planted noisy box structure.
// Both keep the published size, dimensionality and positive share.
#ifndef REDS_FUNCTIONS_THIRDPARTY_H_
#define REDS_FUNCTIONS_THIRDPARTY_H_

#include "core/dataset.h"

namespace reds::fun {

/// The 882 x 9 "TGL" stand-in, about 10% positives (fixed seed).
Dataset MakeTglDataset();

/// The 1000 x 5 "lake" dataset: inputs (b, q, inflow mean, inflow stdev,
/// discount delta) in [0,1]-scaled ranges; y = 1 for the ~33.5% of runs with
/// the lowest reliability (time below the eutrophication threshold).
Dataset MakeLakeDataset();

/// One lake-model run: returns the reliability (share of the 100 simulated
/// years with pollution below the critical tipping level). `x` holds the 5
/// unit-cube inputs; `seed` drives the lognormal natural inflows.
double SimulateLakeReliability(const double* x, uint64_t seed);

/// Critical pollution level: smallest positive root of
/// x^q / (1 + x^q) = b * x (the basin boundary of the lake dynamics).
double LakeCriticalLevel(double b, double q);

}  // namespace reds::fun

#endif  // REDS_FUNCTIONS_THIRDPARTY_H_
