// Sensitivity-analysis benchmarks: the classic 20-input Morris function and
// Sobol' g-function (exact published forms), plus faithful-structure
// implementations of morretal06, soblev99 and oakoh04 whose original
// coefficient tables are not available offline (see DESIGN.md).
#include <cmath>

#include "functions/registry.h"

namespace reds::fun {

namespace {

// --- morris: Saltelli/Morris screening function, 20 inputs, exact form. ---
class Morris final : public DeterministicFunction {
 public:
  std::string name() const override { return "morris"; }
  int dim() const override { return 20; }
  std::vector<bool> relevant() const override {
    return std::vector<bool>(20, true);
  }
  double target_share() const override { return 0.301; }

  double Raw(const double* x) const override {
    double w[20];
    for (int i = 0; i < 20; ++i) {
      // 1-indexed inputs 3, 5, 7 get the nonlinear warp.
      if (i == 2 || i == 4 || i == 6) {
        w[i] = 2.0 * (1.1 * x[i] / (x[i] + 0.1) - 0.5);
      } else {
        w[i] = 2.0 * (x[i] - 0.5);
      }
    }
    double y = 0.0;
    for (int i = 0; i < 20; ++i) {
      const double beta = i < 10 ? 20.0 : ((i + 1) % 2 == 0 ? 1.0 : -1.0);
      y += beta * w[i];
    }
    for (int i = 0; i < 20; ++i) {
      for (int j = i + 1; j < 20; ++j) {
        const double beta =
            (i < 6 && j < 6) ? -15.0 : ((i + j + 2) % 2 == 0 ? 1.0 : -1.0);
        y += beta * w[i] * w[j];
      }
    }
    for (int i = 0; i < 5; ++i) {
      for (int j = i + 1; j < 5; ++j) {
        for (int l = j + 1; l < 5; ++l) {
          y += -10.0 * w[i] * w[j] * w[l];
        }
      }
    }
    y += 5.0 * w[0] * w[1] * w[2] * w[3];
    return y;
  }
};

// --- sobol: g-function with a = (0, 1, 4.5, 9, 99, 99, 99, 99). ---
class SobolG final : public DeterministicFunction {
 public:
  std::string name() const override { return "sobol"; }
  int dim() const override { return 8; }
  std::vector<bool> relevant() const override {
    return std::vector<bool>(8, true);
  }
  double target_share() const override { return 0.392; }
  double Raw(const double* x) const override {
    static constexpr double a[8] = {0.0, 1.0, 4.5, 9.0, 99.0, 99.0, 99.0, 99.0};
    double prod = 1.0;
    for (int j = 0; j < 8; ++j) {
      prod *= (std::fabs(4.0 * x[j] - 2.0) + a[j]) / (1.0 + a[j]);
    }
    return prod;
  }
};

// --- welchetal92: Welch et al. 1992 screening function, exact form;
// inputs 8 and 16 (1-indexed) are inert, giving I = 18. ---
class Welch92 final : public DeterministicFunction {
 public:
  std::string name() const override { return "welchetal92"; }
  int dim() const override { return 20; }
  std::vector<bool> relevant() const override {
    std::vector<bool> rel(20, true);
    rel[7] = false;   // x8
    rel[15] = false;  // x16
    return rel;
  }
  double target_share() const override { return 0.356; }
  double Raw(const double* u) const override {
    double x[20];
    for (int j = 0; j < 20; ++j) x[j] = u[j] - 0.5;  // native domain [-0.5, 0.5]
    return 5.0 * x[11] / (1.0 + x[0]) + 5.0 * (x[3] - x[19]) * (x[3] - x[19]) +
           x[4] + 40.0 * x[18] * x[18] * x[18] - 5.0 * x[18] + 0.05 * x[1] +
           0.08 * x[2] - 0.03 * x[5] + 0.03 * x[6] - 0.09 * x[8] -
           0.01 * x[9] - 0.07 * x[10] + 0.25 * x[12] * x[12] - 0.04 * x[13] +
           0.06 * x[14] - 0.01 * x[16] - 0.03 * x[17];
  }
};

// --- morretal06: Morris/Moore/McKay 2006 family -- additive main effects on
// the first 10 of 30 inputs plus pairwise interactions among them. ---
class Morris06 final : public DeterministicFunction {
 public:
  std::string name() const override { return "morretal06"; }
  int dim() const override { return 30; }
  std::vector<bool> relevant() const override {
    std::vector<bool> rel(30, false);
    for (int j = 0; j < 10; ++j) rel[static_cast<size_t>(j)] = true;
    return rel;
  }
  double target_share() const override { return 0.345; }
  double Raw(const double* x) const override {
    double y = 0.0;
    for (int i = 0; i < 10; ++i) y += x[i];
    for (int i = 0; i < 10; ++i) {
      for (int j = i + 1; j < 10; ++j) y -= 0.6 * x[i] * x[j];
    }
    return y;
  }
};

// --- soblev99: Sobol-Levitan exp(sum b_j x_j) - I0 with a fixed decreasing
// coefficient vector; b_20 = 0 gives I = 19. ---
class SobolLevitan99 final : public DeterministicFunction {
 public:
  SobolLevitan99() {
    for (int j = 0; j < 19; ++j) {
      // Deterministic decreasing weights in (0, 0.66]: strong first inputs,
      // long relevant tail (matching the published I = 19).
      b_[j] = 0.65 * std::pow(0.85, j) + 0.01;
    }
    b_[19] = 0.0;
    i0_ = 1.0;
    for (int j = 0; j < 20; ++j) {
      i0_ *= b_[j] > 0.0 ? (std::exp(b_[j]) - 1.0) / b_[j] : 1.0;
    }
  }
  std::string name() const override { return "soblev99"; }
  int dim() const override { return 20; }
  std::vector<bool> relevant() const override {
    std::vector<bool> rel(20, true);
    rel[19] = false;
    return rel;
  }
  double target_share() const override { return 0.413; }
  double Raw(const double* x) const override {
    double s = 0.0;
    for (int j = 0; j < 20; ++j) s += b_[j] * x[j];
    return std::exp(s) - i0_;
  }

 private:
  double b_[20];
  double i0_ = 1.0;
};

// --- oakoh04: Oakley-O'Hagan form a1'x + a2'sin(x) + a3'cos(x) + x'Mx with
// seeded coefficients (original 15x15 table not available offline). ---
class OakleyOHagan04 final : public DeterministicFunction {
 public:
  OakleyOHagan04() {
    Rng rng(0x0a0b04ULL);
    for (int j = 0; j < 15; ++j) {
      // Mimic the original's three effect tiers: weak, medium, strong.
      const double tier = j < 5 ? 0.12 : (j < 10 ? 0.6 : 1.4);
      a1_[j] = tier * rng.Uniform(-1.0, 1.0);
      a2_[j] = tier * rng.Uniform(-1.0, 1.0);
      a3_[j] = tier * rng.Uniform(-1.0, 1.0);
      for (int k = 0; k < 15; ++k) m_[j][k] = 0.25 * rng.Uniform(-1.0, 1.0);
    }
  }
  std::string name() const override { return "oakoh04"; }
  int dim() const override { return 15; }
  std::vector<bool> relevant() const override {
    return std::vector<bool>(15, true);
  }
  double target_share() const override { return 0.249; }
  double Raw(const double* u) const override {
    double x[15];
    for (int j = 0; j < 15; ++j) x[j] = -2.0 + 4.0 * u[j];
    double y = 0.0;
    for (int j = 0; j < 15; ++j) {
      y += a1_[j] * x[j] + a2_[j] * std::sin(x[j]) + a3_[j] * std::cos(x[j]);
    }
    for (int j = 0; j < 15; ++j) {
      double row = 0.0;
      for (int k = 0; k < 15; ++k) row += m_[j][k] * x[k];
      y += x[j] * row;
    }
    return y;
  }

 private:
  double a1_[15], a2_[15], a3_[15];
  double m_[15][15];
};

}  // namespace

std::unique_ptr<TestFunction> MakeMorris() { return std::make_unique<Morris>(); }
std::unique_ptr<TestFunction> MakeSobolG() { return std::make_unique<SobolG>(); }
std::unique_ptr<TestFunction> MakeWelch92() { return std::make_unique<Welch92>(); }
std::unique_ptr<TestFunction> MakeMorris06() { return std::make_unique<Morris06>(); }
std::unique_ptr<TestFunction> MakeSobolLevitan99() {
  return std::make_unique<SobolLevitan99>();
}
std::unique_ptr<TestFunction> MakeOakleyOHagan04() {
  return std::make_unique<OakleyOHagan04>();
}

}  // namespace reds::fun
