#include "functions/function.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <functional>

namespace reds::fun {

namespace {

constexpr int kCalibrationPoints = 20000;
constexpr uint64_t kCalibrationSeed = 0xca11b8a7e5eedULL;

// Fixed Monte Carlo sample of raw values used for threshold calibration.
std::vector<double> CalibrationValues(const TestFunction& f,
                                      const std::function<double(const double*)>& eval) {
  Rng rng(kCalibrationSeed);
  std::vector<double> x(static_cast<size_t>(f.dim()));
  std::vector<double> vals(kCalibrationPoints);
  for (int i = 0; i < kCalibrationPoints; ++i) {
    for (auto& v : x) v = rng.Uniform();
    vals[static_cast<size_t>(i)] = eval(x.data());
  }
  return vals;
}

}  // namespace

double TestFunction::Label(const double* x, Rng* rng) const {
  const double p = ProbPositive(x);
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return 1.0;
  return rng->Bernoulli(p) ? 1.0 : 0.0;
}

int TestFunction::NumRelevant() const {
  int count = 0;
  for (bool r : relevant()) count += r ? 1 : 0;
  return count;
}

double DeterministicFunction::threshold() const {
  std::call_once(once_, [this] {
    if (use_fixed_threshold()) {
      threshold_value_ = fixed_threshold();
      return;
    }
    std::vector<double> vals = CalibrationValues(
        *this, [this](const double* x) { return Raw(x); });
    const auto k = static_cast<std::ptrdiff_t>(
        std::clamp(target_share(), 0.001, 0.999) * vals.size());
    std::nth_element(vals.begin(), vals.begin() + k, vals.end());
    threshold_value_ = vals[static_cast<size_t>(k)];
  });
  return threshold_value_;
}

double StochasticFunction::ProbPositive(const double* x) const {
  std::call_once(once_, [this] { offset_ = CalibrateOffset(); });
  const double z = (offset_ - Score(x)) / width();
  return 1.0 / (1.0 + std::exp(-z));
}

double StochasticFunction::CalibrateOffset() const {
  const std::vector<double> scores = CalibrationValues(
      *this, [this](const double* x) { return Score(x); });
  const double w = width();
  auto mean_prob = [&](double t) {
    double sum = 0.0;
    for (double s : scores) sum += 1.0 / (1.0 + std::exp((s - t) / w));
    return sum / static_cast<double>(scores.size());
  };
  // Bisection on the monotone map t -> E[P(y=1)].
  double lo = *std::min_element(scores.begin(), scores.end()) - 10.0 * w;
  double hi = *std::max_element(scores.begin(), scores.end()) + 10.0 * w;
  const double target = target_share();
  for (int it = 0; it < 200; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (mean_prob(mid) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace reds::fun
