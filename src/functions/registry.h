// Factory registry for the 33 data sources of the paper's Table 1.
#ifndef REDS_FUNCTIONS_REGISTRY_H_
#define REDS_FUNCTIONS_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "functions/function.h"
#include "util/status.h"

namespace reds::fun {

// Dalal et al. stochastic family (synthetic equivalents; see DESIGN.md).
std::unique_ptr<TestFunction> MakeDalal(int index);  // 1..8
std::unique_ptr<TestFunction> MakeDalal102();

// Published-formula functions.
std::unique_ptr<TestFunction> MakeBorehole();
std::unique_ptr<TestFunction> MakeOtlCircuit();
std::unique_ptr<TestFunction> MakePiston();
std::unique_ptr<TestFunction> MakeWingWeight();
std::unique_ptr<TestFunction> MakeHart3();
std::unique_ptr<TestFunction> MakeHart4();
std::unique_ptr<TestFunction> MakeHart6Sc();
std::unique_ptr<TestFunction> MakeIshigami();
std::unique_ptr<TestFunction> MakeMorris();
std::unique_ptr<TestFunction> MakeSobolG();
std::unique_ptr<TestFunction> MakeWelch92();

// Faithful-structure implementations (see the substitution table in
// DESIGN.md).
std::unique_ptr<TestFunction> MakeLink06Dec();
std::unique_ptr<TestFunction> MakeLink06Simple();
std::unique_ptr<TestFunction> MakeLink06Sin();
std::unique_ptr<TestFunction> MakeLoeppky13();
std::unique_ptr<TestFunction> MakeMoon10Hd();
std::unique_ptr<TestFunction> MakeMoon10Hdc1();
std::unique_ptr<TestFunction> MakeMoon10Low();
std::unique_ptr<TestFunction> MakeMorris06();
std::unique_ptr<TestFunction> MakeOakleyOHagan04();
std::unique_ptr<TestFunction> MakeSobolLevitan99();
std::unique_ptr<TestFunction> MakeWilliams06();
std::unique_ptr<TestFunction> MakeEllipse();

// The decentral smart grid control stability model (12 inputs).
std::unique_ptr<TestFunction> MakeDsgc();

/// All 33 function names in Table 1 order (excluding the fixed third-party
/// datasets "TGL" and "lake", which are tables, not oracles).
std::vector<std::string> AllFunctionNames();

/// Instantiates a function by name.
Result<std::unique_ptr<TestFunction>> MakeFunction(const std::string& name);

}  // namespace reds::fun

#endif  // REDS_FUNCTIONS_REGISTRY_H_
