#include "functions/thirdparty.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace reds::fun {

namespace {

constexpr int kLakeYears = 100;
constexpr double kLakeRelease = 0.03;  // fixed anthropogenic pollution policy

double Scale(double u, double lo, double hi) { return lo + u * (hi - lo); }

}  // namespace

double LakeCriticalLevel(double b, double q) {
  // g(x) = x^q/(1+x^q) - b x: negative near 0; the first sign change is the
  // tipping threshold between the clean and eutrophic basins.
  auto g = [&](double x) {
    const double xq = std::pow(x, q);
    return xq / (1.0 + xq) - b * x;
  };
  double prev = 0.01;
  for (double x = 0.02; x <= 3.0; x += 0.01) {
    if (g(prev) < 0.0 && g(x) >= 0.0) {
      // Bisection refine.
      double lo = prev, hi = x;
      for (int i = 0; i < 60; ++i) {
        const double mid = 0.5 * (lo + hi);
        (g(mid) < 0.0 ? lo : hi) = mid;
      }
      return 0.5 * (lo + hi);
    }
    prev = x;
  }
  return 3.0;  // no interior tipping point: effectively always reliable
}

double SimulateLakeReliability(const double* x, uint64_t seed) {
  const double b = Scale(x[0], 0.1, 0.45);
  const double q = Scale(x[1], 2.0, 4.5);
  const double mean = Scale(x[2], 0.01, 0.05);
  const double stdev = Scale(x[3], 0.001, 0.005);
  // x[4] is the discount rate delta: it affects the utility objective of the
  // original problem but not the pollution dynamics, making it a genuinely
  // irrelevant input for this outcome.

  const double crit = LakeCriticalLevel(b, q);
  // Lognormal natural inflow matching the given mean and stdev.
  const double sigma2 = std::log(1.0 + stdev * stdev / (mean * mean));
  const double mu = std::log(mean) - 0.5 * sigma2;
  const double sigma = std::sqrt(sigma2);

  Rng rng(seed);
  double pollution = 0.0;
  int below = 0;
  for (int t = 0; t < kLakeYears; ++t) {
    const double inflow = std::exp(mu + sigma * rng.Normal());
    const double pq = std::pow(pollution, q);
    pollution = pollution + kLakeRelease + pq / (1.0 + pq) - b * pollution +
                inflow;
    pollution = std::max(pollution, 0.0);
    if (pollution < crit) ++below;
  }
  return static_cast<double>(below) / kLakeYears;
}

Dataset MakeLakeDataset() {
  constexpr int kRows = 1000;
  constexpr uint64_t kSeed = 0x1a6eULL;
  Rng rng(kSeed);
  std::vector<double> x(static_cast<size_t>(kRows) * 5);
  for (auto& v : x) v = rng.Uniform();
  std::vector<double> reliability(kRows);
  for (int i = 0; i < kRows; ++i) {
    reliability[static_cast<size_t>(i)] =
        SimulateLakeReliability(x.data() + static_cast<size_t>(i) * 5,
                                DeriveSeed(kSeed, static_cast<uint64_t>(i)));
  }
  // y = 1 for the ~33.5% least reliable runs.
  std::vector<double> sorted = reliability;
  const auto k = static_cast<std::ptrdiff_t>(0.335 * kRows);
  std::nth_element(sorted.begin(), sorted.begin() + k, sorted.end());
  const double threshold = sorted[static_cast<size_t>(k)];

  Dataset d(5);
  d.Reserve(kRows);
  for (int i = 0; i < kRows; ++i) {
    d.AddRow(x.data() + static_cast<size_t>(i) * 5,
             reliability[static_cast<size_t>(i)] < threshold ? 1.0 : 0.0);
  }
  return d;
}

Dataset MakeTglDataset() {
  constexpr int kRows = 882;
  constexpr int kCols = 9;
  Rng rng(0x791aULL);
  Dataset d(kCols);
  d.Reserve(kRows);
  std::vector<double> x(kCols);
  for (int i = 0; i < kRows; ++i) {
    for (auto& v : x) v = rng.Uniform();
    // Planted structure: a 3-dimensional box plus a weaker 2-dimensional one.
    const bool in_box1 = x[0] >= 0.2 && x[0] <= 0.5 && x[2] >= 0.2 &&
                         x[2] <= 0.5 && x[5] >= 0.2 && x[5] <= 0.5;
    const bool in_box2 = x[1] >= 0.75 && x[3] <= 0.2;
    double y = (in_box1 || in_box2) ? 1.0 : 0.0;
    if (rng.Bernoulli(0.01)) y = 1.0 - y;  // label noise
    d.AddRow(x, y);
  }
  return d;
}

}  // namespace reds::fun
