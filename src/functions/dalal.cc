// Stochastic "noisy" functions standing in for Dalal et al. 2013's functions
// 1-8 and 102 (the originals' formulas are not reproduced in the REDS paper;
// see DESIGN.md). Each defines P(y=1|x) through a smooth ramp over a
// low-dimensional geometric score with the published dimensionality,
// relevant-input count and positive share.
#include <algorithm>
#include <cmath>

#include "functions/registry.h"

namespace reds::fun {

namespace {

// Shares from Table 1 for dalal1..dalal8.
constexpr double kDalalShare[8] = {0.476, 0.257, 0.082, 0.18,
                                   0.08,  0.081, 0.35,  0.109};

class Dalal final : public StochasticFunction {
 public:
  explicit Dalal(int index) : index_(index) {}

  std::string name() const override { return "dalal" + std::to_string(index_); }
  int dim() const override { return 5; }
  std::vector<bool> relevant() const override {
    std::vector<bool> rel(5, false);
    rel[0] = rel[1] = true;
    return rel;
  }
  double target_share() const override { return kDalalShare[index_ - 1]; }

 protected:
  double Score(const double* x) const override {
    const double a = x[0];
    const double b = x[1];
    switch (index_) {
      case 1:  // linear boundary
        return a + b;
      case 2:  // square ring around the center
        return std::max(std::fabs(a - 0.5), std::fabs(b - 0.5));
      case 3:  // disc around (0.3, 0.7)
        return (a - 0.3) * (a - 0.3) + (b - 0.7) * (b - 0.7);
      case 4:  // hyperbolic corner
        return a * b;
      case 5:  // diagonal band
        return std::fabs(a - b);
      case 6:  // wavy horizontal band
        return std::fabs(b - 0.5 - 0.25 * std::sin(3.0 * M_PI * a));
      case 7:  // lower-left quadrant-ish region
        return std::max(a, b);
      case 8:  // elongated ellipse
        return (a - 0.5) * (a - 0.5) + 4.0 * (b - 0.5) * (b - 0.5);
      default:
        return a;
    }
  }
  double width() const override { return 0.04; }

 private:
  int index_;
};

// dalal102: 15 inputs, 9 relevant, share 67.2%.
class Dalal102 final : public StochasticFunction {
 public:
  Dalal102() {
    Rng rng(0xda1a1102ULL);
    for (int j = 0; j < 9; ++j) {
      w_[j] = rng.Uniform(0.4, 1.0);
      c_[j] = rng.Uniform(0.25, 0.75);
    }
  }
  std::string name() const override { return "dalal102"; }
  int dim() const override { return 15; }
  std::vector<bool> relevant() const override {
    std::vector<bool> rel(15, false);
    for (int j = 0; j < 9; ++j) rel[static_cast<size_t>(j)] = true;
    return rel;
  }
  double target_share() const override { return 0.672; }

 protected:
  double Score(const double* x) const override {
    double s = 0.0;
    for (int j = 0; j < 9; ++j) s += w_[j] * std::fabs(x[j] - c_[j]);
    return s;
  }
  double width() const override { return 0.12; }

 private:
  double w_[9];
  double c_[9];
};

}  // namespace

std::unique_ptr<TestFunction> MakeDalal(int index) {
  return std::make_unique<Dalal>(index);
}

std::unique_ptr<TestFunction> MakeDalal102() {
  return std::make_unique<Dalal102>();
}

}  // namespace reds::fun
