// Physical metamodeling benchmarks with fully published formulas
// (Surjanovic & Bingham test-function library): borehole, OTL circuit,
// piston, wing weight.
#include <cmath>

#include "functions/registry.h"

namespace reds::fun {

namespace {

double Scale(double u, double lo, double hi) { return lo + u * (hi - lo); }

class Borehole final : public DeterministicFunction {
 public:
  std::string name() const override { return "borehole"; }
  int dim() const override { return 8; }
  std::vector<bool> relevant() const override {
    return std::vector<bool>(8, true);
  }
  double target_share() const override { return 0.309; }
  double Raw(const double* x) const override {
    const double rw = Scale(x[0], 0.05, 0.15);
    const double r = Scale(x[1], 100.0, 50000.0);
    const double tu = Scale(x[2], 63070.0, 115600.0);
    const double hu = Scale(x[3], 990.0, 1110.0);
    const double tl = Scale(x[4], 63.1, 116.0);
    const double hl = Scale(x[5], 700.0, 820.0);
    const double l = Scale(x[6], 1120.0, 1680.0);
    const double kw = Scale(x[7], 9855.0, 12045.0);
    const double log_r_rw = std::log(r / rw);
    const double numerator = 2.0 * M_PI * tu * (hu - hl);
    const double denominator =
        log_r_rw * (1.0 + 2.0 * l * tu / (log_r_rw * rw * rw * kw) + tu / tl);
    return numerator / denominator;
  }
};

class OtlCircuit final : public DeterministicFunction {
 public:
  std::string name() const override { return "otlcircuit"; }
  int dim() const override { return 6; }
  std::vector<bool> relevant() const override {
    return std::vector<bool>(6, true);
  }
  double target_share() const override { return 0.225; }
  double Raw(const double* x) const override {
    const double rb1 = Scale(x[0], 50.0, 150.0);
    const double rb2 = Scale(x[1], 25.0, 70.0);
    const double rf = Scale(x[2], 0.5, 3.0);
    const double rc1 = Scale(x[3], 1.2, 2.5);
    const double rc2 = Scale(x[4], 0.25, 1.2);
    const double beta = Scale(x[5], 50.0, 300.0);
    const double vb1 = 12.0 * rb2 / (rb1 + rb2);
    const double bpr = beta * (rc2 + 9.0);
    return (vb1 + 0.74) * bpr / (bpr + rf) + 11.35 * rf / (bpr + rf) +
           0.74 * rf * bpr / ((bpr + rf) * rc1);
  }
};

class Piston final : public DeterministicFunction {
 public:
  std::string name() const override { return "piston"; }
  int dim() const override { return 7; }
  std::vector<bool> relevant() const override {
    return std::vector<bool>(7, true);
  }
  double target_share() const override { return 0.368; }
  double Raw(const double* x) const override {
    const double m = Scale(x[0], 30.0, 60.0);
    const double s = Scale(x[1], 0.005, 0.020);
    const double v0 = Scale(x[2], 0.002, 0.010);
    const double k = Scale(x[3], 1000.0, 5000.0);
    const double p0 = Scale(x[4], 90000.0, 110000.0);
    const double ta = Scale(x[5], 290.0, 296.0);
    const double t0 = Scale(x[6], 340.0, 360.0);
    const double a = p0 * s + 19.62 * m - k * v0 / s;
    const double v =
        s / (2.0 * k) * (std::sqrt(a * a + 4.0 * k * p0 * v0 * ta / t0) - a);
    return 2.0 * M_PI *
           std::sqrt(m / (k + s * s * p0 * v0 * ta / (t0 * v * v)));
  }
};

class WingWeight final : public DeterministicFunction {
 public:
  std::string name() const override { return "wingweight"; }
  int dim() const override { return 10; }
  std::vector<bool> relevant() const override {
    return std::vector<bool>(10, true);
  }
  double target_share() const override { return 0.378; }
  double Raw(const double* x) const override {
    const double sw = Scale(x[0], 150.0, 200.0);
    const double wfw = Scale(x[1], 220.0, 300.0);
    const double a = Scale(x[2], 6.0, 10.0);
    const double lam_deg = Scale(x[3], -10.0, 10.0);
    const double q = Scale(x[4], 16.0, 45.0);
    const double lam = Scale(x[5], 0.5, 1.0);
    const double tc = Scale(x[6], 0.08, 0.18);
    const double nz = Scale(x[7], 2.5, 6.0);
    const double wdg = Scale(x[8], 1700.0, 2500.0);
    const double wp = Scale(x[9], 0.025, 0.08);
    const double cos_l = std::cos(lam_deg * M_PI / 180.0);
    return 0.036 * std::pow(sw, 0.758) * std::pow(wfw, 0.0035) *
               std::pow(a / (cos_l * cos_l), 0.6) * std::pow(q, 0.006) *
               std::pow(lam, 0.04) * std::pow(100.0 * tc / cos_l, -0.3) *
               std::pow(nz * wdg, 0.49) +
           sw * wp;
  }
};

}  // namespace

std::unique_ptr<TestFunction> MakeBorehole() { return std::make_unique<Borehole>(); }
std::unique_ptr<TestFunction> MakeOtlCircuit() { return std::make_unique<OtlCircuit>(); }
std::unique_ptr<TestFunction> MakePiston() { return std::make_unique<Piston>(); }
std::unique_ptr<TestFunction> MakeWingWeight() { return std::make_unique<WingWeight>(); }

}  // namespace reds::fun
