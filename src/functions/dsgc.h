// Decentral Smart Grid Control stability model (Schaefer et al. 2015),
// rebuilt as an ODE substrate: a 4-node star grid (1 producer, 3 consumers)
// where each node adapts its power to the frequency deviation it measured
// tau_j seconds ago. The reaction delay -- the destabilizing mechanism of
// DSGC -- is realized by a second-order Pade approximation of e^{-s tau}
// (two extra states per node; see DESIGN.md). The grid is stable iff every
// eigenvalue of the Jacobian at the synchronous fixed point has negative
// real part.
#ifndef REDS_FUNCTIONS_DSGC_H_
#define REDS_FUNCTIONS_DSGC_H_

#include "functions/function.h"
#include "la/matrix.h"

namespace reds::fun {

/// Physical parameters of one grid instance.
struct DsgcParams {
  double tau[4];        // price-averaging times, [0.5, 10] s
  double g[4];          // price-adaptation gains, [0.05, 0.5]
  double p_consumer[3]; // consumer powers (negative), [-1.5, -0.5]
  double coupling;      // line coupling K, [1, 8]
};

/// Maps a point of [0,1]^12 to physical parameters
/// (x = tau_0..3, g_0..3, P_1..3, K).
DsgcParams DsgcParamsFromUnitCube(const double* x);

/// Jacobian of the reduced 11-state system (3 relative phases, 4
/// frequencies, 4 filter states) at the synchronous fixed point. Fails if no
/// fixed point exists (|P_j| > K for some consumer).
Result<la::Matrix> DsgcJacobian(const DsgcParams& params);

/// Largest eigenvalue real part; +1.0 when no synchronous fixed point
/// exists. Stable grids give negative values.
double DsgcSpectralAbscissa(const DsgcParams& params);

}  // namespace reds::fun

#endif  // REDS_FUNCTIONS_DSGC_H_
