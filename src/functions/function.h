// The simulation models / test functions of the paper's Table 1. Every
// function maps [0,1]^M to a binary outcome: deterministic functions compare
// a raw value against a threshold ("y = 1 iff output below thr"), stochastic
// ones define P(y=1|x) directly. Thresholds are calibrated by Monte Carlo to
// reproduce the positive share the paper reports (see DESIGN.md).
#ifndef REDS_FUNCTIONS_FUNCTION_H_
#define REDS_FUNCTIONS_FUNCTION_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "util/rng.h"

namespace reds::fun {

/// A simulation model viewed as a labeling oracle over [0,1]^M.
class TestFunction {
 public:
  virtual ~TestFunction() = default;

  virtual std::string name() const = 0;
  virtual int dim() const = 0;

  /// Ground-truth relevance mask (Table 1's I column): relevant()[j] is true
  /// iff input j affects the output. Drives the #irrel metric.
  virtual std::vector<bool> relevant() const = 0;

  /// Expected share of y = 1 under uniform inputs (Table 1's share column).
  virtual double target_share() const = 0;

  /// True for models whose output is random given x (Dalal et al. family).
  virtual bool stochastic() const { return false; }

  /// P(y = 1 | x); 0/1 for deterministic models.
  virtual double ProbPositive(const double* x) const = 0;

  /// Draws a binary label ("runs one simulation").
  double Label(const double* x, Rng* rng) const;

  /// Number of relevant inputs.
  int NumRelevant() const;
};

/// Deterministic model: y = 1 iff Raw(x) < threshold(). The threshold is the
/// target-share quantile of Raw over a fixed 20000-point Monte Carlo sample
/// (computed once, thread-safe), unless the subclass pins a fixed threshold.
class DeterministicFunction : public TestFunction {
 public:
  /// Raw simulation output; x in [0,1]^M (scaling to native domains happens
  /// inside).
  virtual double Raw(const double* x) const = 0;

  double ProbPositive(const double* x) const override {
    return Raw(x) < threshold() ? 1.0 : 0.0;
  }

  /// Binarization threshold (lazily calibrated).
  double threshold() const;

 protected:
  /// Subclasses with a physically meaningful cutoff (e.g. stability = 0)
  /// override this to skip calibration.
  virtual bool use_fixed_threshold() const { return false; }
  virtual double fixed_threshold() const { return 0.0; }

 private:
  mutable std::once_flag once_;
  mutable double threshold_value_ = 0.0;
};

/// Stochastic model: P(y=1|x) = sigmoid((t - Score(x)) / width). The offset
/// t is calibrated once so that E[P] matches the target share.
class StochasticFunction : public TestFunction {
 public:
  bool stochastic() const override { return true; }
  double ProbPositive(const double* x) const override;

 protected:
  /// Raw score; low scores mean "interesting".
  virtual double Score(const double* x) const = 0;
  /// Transition width of the probability ramp.
  virtual double width() const { return 0.05; }

 private:
  double CalibrateOffset() const;

  mutable std::once_flag once_;
  mutable double offset_ = 0.0;
};

}  // namespace reds::fun

#endif  // REDS_FUNCTIONS_FUNCTION_H_
