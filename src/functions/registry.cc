#include "functions/registry.h"

namespace reds::fun {

std::vector<std::string> AllFunctionNames() {
  std::vector<std::string> names;
  for (int i = 1; i <= 8; ++i) names.push_back("dalal" + std::to_string(i));
  names.push_back("dalal102");
  names.push_back("borehole");
  names.push_back("dsgc");
  names.push_back("ellipse");
  names.push_back("hart3");
  names.push_back("hart4");
  names.push_back("hart6sc");
  names.push_back("ishigami");
  names.push_back("linketal06dec");
  names.push_back("linketal06simple");
  names.push_back("linketal06sin");
  names.push_back("loepetal13");
  names.push_back("moon10hd");
  names.push_back("moon10hdc1");
  names.push_back("moon10low");
  names.push_back("morretal06");
  names.push_back("morris");
  names.push_back("oakoh04");
  names.push_back("otlcircuit");
  names.push_back("piston");
  names.push_back("soblev99");
  names.push_back("sobol");
  names.push_back("welchetal92");
  names.push_back("willetal06");
  names.push_back("wingweight");
  return names;
}

Result<std::unique_ptr<TestFunction>> MakeFunction(const std::string& name) {
  for (int i = 1; i <= 8; ++i) {
    if (name == "dalal" + std::to_string(i)) return MakeDalal(i);
  }
  if (name == "dalal102") return MakeDalal102();
  if (name == "borehole") return MakeBorehole();
  if (name == "dsgc") return MakeDsgc();
  if (name == "ellipse") return MakeEllipse();
  if (name == "hart3") return MakeHart3();
  if (name == "hart4") return MakeHart4();
  if (name == "hart6sc") return MakeHart6Sc();
  if (name == "ishigami") return MakeIshigami();
  if (name == "linketal06dec") return MakeLink06Dec();
  if (name == "linketal06simple") return MakeLink06Simple();
  if (name == "linketal06sin") return MakeLink06Sin();
  if (name == "loepetal13") return MakeLoeppky13();
  if (name == "moon10hd") return MakeMoon10Hd();
  if (name == "moon10hdc1") return MakeMoon10Hdc1();
  if (name == "moon10low") return MakeMoon10Low();
  if (name == "morretal06") return MakeMorris06();
  if (name == "morris") return MakeMorris();
  if (name == "oakoh04") return MakeOakleyOHagan04();
  if (name == "otlcircuit") return MakeOtlCircuit();
  if (name == "piston") return MakePiston();
  if (name == "soblev99") return MakeSobolLevitan99();
  if (name == "sobol") return MakeSobolG();
  if (name == "welchetal92") return MakeWelch92();
  if (name == "willetal06") return MakeWilliams06();
  if (name == "wingweight") return MakeWingWeight();
  return Status::InvalidArgument("unknown function: " + name);
}

}  // namespace reds::fun
