#include "functions/dsgc.h"

#include <cmath>

#include "functions/registry.h"

namespace reds::fun {

namespace {

constexpr double kBaseDamping = 0.1;  // inherent generator damping alpha

double Scale(double u, double lo, double hi) { return lo + u * (hi - lo); }

class Dsgc final : public DeterministicFunction {
 public:
  std::string name() const override { return "dsgc"; }
  int dim() const override { return 12; }
  std::vector<bool> relevant() const override {
    return std::vector<bool>(12, true);
  }
  double target_share() const override { return 0.537; }
  double Raw(const double* x) const override {
    return DsgcSpectralAbscissa(DsgcParamsFromUnitCube(x));
  }

 protected:
  // Stability has a physical cutoff: spectral abscissa 0.
  bool use_fixed_threshold() const override { return true; }
  double fixed_threshold() const override { return 0.0; }
};

}  // namespace

DsgcParams DsgcParamsFromUnitCube(const double* x) {
  DsgcParams p;
  for (int j = 0; j < 4; ++j) p.tau[j] = Scale(x[j], 0.5, 10.0);
  // Gain range chosen so roughly half the sampled grids are stable (the
  // paper reports a 53.7% share for its dsgc configuration).
  for (int j = 0; j < 4; ++j) p.g[j] = Scale(x[4 + j], 0.05, 0.5);
  for (int j = 0; j < 3; ++j) p.p_consumer[j] = Scale(x[8 + j], -1.5, -0.5);
  p.coupling = Scale(x[11], 1.0, 8.0);
  return p;
}

Result<la::Matrix> DsgcJacobian(const DsgcParams& params) {
  const double k = params.coupling;
  // Synchronous fixed point: sin(theta_0 - theta_j) = -P_j / K for each
  // consumer j (producer balance follows from sum P = 0).
  double cos_phi[3];
  for (int j = 0; j < 3; ++j) {
    const double s = params.p_consumer[j] / k;  // sin(phi_j), negative
    if (std::fabs(s) > 1.0) {
      return Status::FailedPrecondition("no synchronous fixed point");
    }
    cos_phi[j] = std::sqrt(1.0 - s * s);  // stable branch |phi| < pi/2
  }

  // Each node's power adaptation responds to the delayed frequency
  // d_j(t) ~ omega_j(t - tau_j), realized by a Pade(2,2) approximation:
  // with D(s) = (tau^2/12) s^2 + (tau/2) s + 1 and w = omega / D(s),
  //   d = omega - tau * dw/dt.
  // Per node this adds states w_j and v_j = dw_j/dt with
  //   dv/dt = (12/tau^2)(omega - w) - (6/tau) v.
  //
  // State order: phi_1..3 (0..2), omega_0..3 (3..6), w_0..3 (7..10),
  // v_0..3 (11..14).
  la::Matrix jac(15, 15);
  for (int j = 0; j < 3; ++j) {
    // d(phi_j)/dt = omega_j - omega_0.
    jac(j, 3 + (j + 1)) = 1.0;
    jac(j, 3) = -1.0;
  }
  // Node frequency dynamics: the adaptation term is -g_j * d_j =
  // -g_j * (omega_j - tau_j v_j); coupling enters through the phases.
  for (int node = 0; node < 4; ++node) {
    const int row = 3 + node;
    jac(row, row) = -kBaseDamping - params.g[node];
    jac(row, 11 + node) = params.g[node] * params.tau[node];
    if (node == 0) {
      // Producer: + K sum_j cos(phi_j) phi_j.
      for (int j = 0; j < 3; ++j) jac(row, j) = k * cos_phi[j];
    } else {
      // Consumer j: - K cos(phi_j) phi_j.
      jac(row, node - 1) = -k * cos_phi[node - 1];
    }
  }
  // Pade delay states.
  for (int node = 0; node < 4; ++node) {
    const double tau = params.tau[node];
    jac(7 + node, 11 + node) = 1.0;  // dw/dt = v
    jac(11 + node, 3 + node) = 12.0 / (tau * tau);
    jac(11 + node, 7 + node) = -12.0 / (tau * tau);
    jac(11 + node, 11 + node) = -6.0 / tau;
  }
  return jac;
}

double DsgcSpectralAbscissa(const DsgcParams& params) {
  auto jac = DsgcJacobian(params);
  if (!jac.ok()) return 1.0;  // infeasible -> maximally unstable
  auto abscissa = la::SpectralAbscissa(*jac);
  if (!abscissa.ok()) return 1.0;  // eigen solver failure counts as unstable
  return *abscissa;
}

std::unique_ptr<TestFunction> MakeDsgc() { return std::make_unique<Dsgc>(); }

}  // namespace reds::fun
