#include "functions/datagen.h"

#include <algorithm>
#include <cassert>

namespace reds::fun {

DesignKind DefaultDesignFor(const TestFunction& f) {
  return f.name() == "dsgc" ? DesignKind::kHalton : DesignKind::kLatinHypercube;
}

std::vector<double> MakeDesign(DesignKind kind, int n, int dim, uint64_t seed) {
  Rng rng(seed);
  switch (kind) {
    case DesignKind::kLatinHypercube:
      return sampling::LatinHypercube(n, dim, &rng);
    case DesignKind::kHalton: {
      // Random leap start so repetitions see different stretches of the
      // sequence.
      const int skip = 20 + static_cast<int>(rng.UniformInt(100000));
      return sampling::HaltonDesign(n, dim, skip);
    }
    case DesignKind::kUniform:
      return sampling::UniformDesign(n, dim, &rng);
    case DesignKind::kLogitNormal:
      return sampling::LogitNormalDesign(n, dim, 0.0, 1.0, &rng);
    case DesignKind::kMixedDiscrete: {
      std::vector<double> design = sampling::LatinHypercube(n, dim, &rng);
      sampling::DiscretizeEvenColumns(&design, dim, &rng);
      return design;
    }
  }
  return {};
}

Dataset LabelDesign(const TestFunction& f, const std::vector<double>& design,
                    uint64_t seed) {
  const int dim = f.dim();
  assert(design.size() % static_cast<size_t>(dim) == 0);
  const int n = static_cast<int>(design.size()) / dim;
  Rng rng(DeriveSeed(seed, 0x1abe1ULL));
  Dataset d(dim);
  d.Reserve(n);
  for (int i = 0; i < n; ++i) {
    const double* x = design.data() + static_cast<size_t>(i) * dim;
    d.AddRow(x, f.Label(x, &rng));
  }
  return d;
}

Dataset MakeScenarioDataset(const TestFunction& f, int n, DesignKind kind,
                            uint64_t seed) {
  return LabelDesign(f, MakeDesign(kind, n, f.dim(), seed), seed);
}

FunctionSource::FunctionSource(const TestFunction& f, int64_t n,
                               uint64_t seed, sampling::PointSampler sampler)
    : f_(f), n_(n), seed_(seed), sampler_(std::move(sampler)) {
  assert(n >= 0);
  if (!sampler_) sampler_ = sampling::MakeUniformSampler();
}

int FunctionSource::num_cols() const { return f_.dim(); }

Status FunctionSource::Reset() {
  cursor_ = 0;
  return Status::OK();
}

Result<RowBlock> FunctionSource::NextBlock(int max_rows) {
  if (max_rows <= 0) {
    return Status::InvalidArgument("NextBlock needs max_rows >= 1");
  }
  RowBlock block;
  const int dim = f_.dim();
  const int take = static_cast<int>(
      std::min<int64_t>(max_rows, n_ - cursor_));
  if (take <= 0) return block;
  x_buf_.resize(static_cast<size_t>(take) * dim);
  y_buf_.resize(static_cast<size_t>(take));
  for (int r = 0; r < take; ++r) {
    // One derived stream per row: the sequence is independent of block
    // boundaries, so both build passes (and any chunk size) see identical
    // rows.
    Rng rng(DeriveSeed(seed_, static_cast<uint64_t>(cursor_ + r)));
    double* x = x_buf_.data() + static_cast<size_t>(r) * dim;
    sampler_(&rng, dim, x);
    y_buf_[static_cast<size_t>(r)] = f_.Label(x, &rng);
  }
  cursor_ += take;
  block.x = la::ConstMatrixView(x_buf_.data(), take, dim);
  block.y = y_buf_.data();
  return block;
}

sampling::PointSampler SamplerFor(DesignKind kind) {
  switch (kind) {
    case DesignKind::kLogitNormal:
      return sampling::MakeLogitNormalSampler(0.0, 1.0);
    case DesignKind::kMixedDiscrete:
      return sampling::MakeMixedSampler();
    case DesignKind::kLatinHypercube:
    case DesignKind::kHalton:
    case DesignKind::kUniform:
      return sampling::MakeUniformSampler();
  }
  return sampling::MakeUniformSampler();
}

}  // namespace reds::fun
