// Hartmann family (3-, 4- and rescaled 6-dimensional) and Ishigami: smooth
// multimodal sensitivity-analysis standards with published constants.
#include <cmath>

#include "functions/registry.h"

namespace reds::fun {

namespace {

// Shared Hartmann-6 constants; hart4 uses the first 4 columns (Surjanovic &
// Bingham convention).
constexpr double kAlpha6[4] = {1.0, 1.2, 3.0, 3.2};
constexpr double kA6[4][6] = {{10.0, 3.0, 17.0, 3.5, 1.7, 8.0},
                              {0.05, 10.0, 17.0, 0.1, 8.0, 14.0},
                              {3.0, 3.5, 1.7, 10.0, 17.0, 8.0},
                              {17.0, 8.0, 0.05, 10.0, 0.1, 14.0}};
constexpr double kP6[4][6] = {
    {0.1312, 0.1696, 0.5569, 0.0124, 0.8283, 0.5886},
    {0.2329, 0.4135, 0.8307, 0.3736, 0.1004, 0.9991},
    {0.2348, 0.1451, 0.3522, 0.2883, 0.3047, 0.6650},
    {0.4047, 0.8828, 0.8732, 0.5743, 0.1091, 0.0381}};

double HartmannSum(const double* x, int m) {
  double outer = 0.0;
  for (int i = 0; i < 4; ++i) {
    double inner = 0.0;
    for (int j = 0; j < m; ++j) {
      const double diff = x[j] - kP6[i][j];
      inner += kA6[i][j] * diff * diff;
    }
    outer += kAlpha6[i] * std::exp(-inner);
  }
  return outer;
}

class Hart3 final : public DeterministicFunction {
 public:
  std::string name() const override { return "hart3"; }
  int dim() const override { return 3; }
  std::vector<bool> relevant() const override {
    return std::vector<bool>(3, true);
  }
  double target_share() const override { return 0.335; }
  double Raw(const double* x) const override {
    static constexpr double a[4][3] = {{3.0, 10.0, 30.0},
                                       {0.1, 10.0, 35.0},
                                       {3.0, 10.0, 30.0},
                                       {0.1, 10.0, 35.0}};
    static constexpr double p[4][3] = {{0.3689, 0.1170, 0.2673},
                                       {0.4699, 0.4387, 0.7470},
                                       {0.1091, 0.8732, 0.5547},
                                       {0.0381, 0.5743, 0.8828}};
    double outer = 0.0;
    for (int i = 0; i < 4; ++i) {
      double inner = 0.0;
      for (int j = 0; j < 3; ++j) {
        const double diff = x[j] - p[i][j];
        inner += a[i][j] * diff * diff;
      }
      outer += kAlpha6[i] * std::exp(-inner);
    }
    return -outer;
  }
};

class Hart4 final : public DeterministicFunction {
 public:
  std::string name() const override { return "hart4"; }
  int dim() const override { return 4; }
  std::vector<bool> relevant() const override {
    return std::vector<bool>(4, true);
  }
  double target_share() const override { return 0.301; }
  double Raw(const double* x) const override {
    return (1.1 - HartmannSum(x, 4)) / 0.839;
  }
};

class Hart6Sc final : public DeterministicFunction {
 public:
  std::string name() const override { return "hart6sc"; }
  int dim() const override { return 6; }
  std::vector<bool> relevant() const override {
    return std::vector<bool>(6, true);
  }
  double target_share() const override { return 0.226; }
  double Raw(const double* x) const override {
    return -(2.58 + HartmannSum(x, 6)) / 1.94;
  }
};

class Ishigami final : public DeterministicFunction {
 public:
  std::string name() const override { return "ishigami"; }
  int dim() const override { return 3; }
  std::vector<bool> relevant() const override {
    return std::vector<bool>(3, true);
  }
  double target_share() const override { return 0.255; }
  double Raw(const double* x) const override {
    const double x1 = -M_PI + 2.0 * M_PI * x[0];
    const double x2 = -M_PI + 2.0 * M_PI * x[1];
    const double x3 = -M_PI + 2.0 * M_PI * x[2];
    const double s1 = std::sin(x1);
    return s1 + 7.0 * std::sin(x2) * std::sin(x2) +
           0.1 * x3 * x3 * x3 * x3 * s1;
  }
};

}  // namespace

std::unique_ptr<TestFunction> MakeHart3() { return std::make_unique<Hart3>(); }
std::unique_ptr<TestFunction> MakeHart4() { return std::make_unique<Hart4>(); }
std::unique_ptr<TestFunction> MakeHart6Sc() { return std::make_unique<Hart6Sc>(); }
std::unique_ptr<TestFunction> MakeIshigami() { return std::make_unique<Ishigami>(); }

}  // namespace reds::fun
