#include "engine/metamodel_cache.h"

#include "obs/trace.h"

namespace reds::engine {

MetamodelCache::MetamodelCache(size_t capacity, obs::MetricsRegistry* metrics)
    : entries_(capacity) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  fits_ = metrics->counter("cache.metamodel.fits");
  hits_ = metrics->counter("cache.metamodel.hits");
  evictions_ = metrics->counter("cache.metamodel.evictions");
  size_gauge_ = metrics->gauge("cache.metamodel.size");
}

void MetamodelCache::UpdateSizeGauge() {
  size_gauge_->Set(
      static_cast<int64_t>(entries_.size() + in_flight_.size()));
}

std::shared_ptr<const ml::Metamodel> MetamodelCache::GetOrFit(
    const MetamodelKey& key, const FitFn& fit) {
  std::promise<std::shared_ptr<const ml::Metamodel>> promise;
  std::shared_ptr<Entry> mine;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (std::shared_ptr<Entry>* found = entries_.Get(key)) {
      hits_->Add(1);
      obs::TraceInstant("metamodel.cache_hit");
      return (*found)->get();  // completed: no blocking under the lock
    }
    const auto running = in_flight_.find(key);
    if (running != in_flight_.end()) {
      hits_->Add(1);
      obs::TraceInstant("metamodel.cache_hit");
      const std::shared_ptr<Entry> entry = running->second;
      lock.unlock();
      return entry->get();  // blocks until the owning fit finishes
    }
    mine = std::make_shared<Entry>(promise.get_future().share());
    in_flight_.emplace(key, mine);
    fits_->Add(1);
    UpdateSizeGauge();
  }
  try {
    std::shared_ptr<const ml::Metamodel> model = fit();
    promise.set_value(model);
    {
      // Promote this attempt from the pinned in-flight set into the LRU.
      // After a concurrent Clear() the slot may be gone (or a successor's):
      // then the model is returned but not cached, as before.
      std::unique_lock<std::mutex> lock(mutex_);
      const auto it = in_flight_.find(key);
      if (it != in_flight_.end() && it->second == mine) {
        in_flight_.erase(it);
        const uint64_t before = entries_.evictions();
        entries_.Put(key, mine);
        const uint64_t delta = entries_.evictions() - before;
        if (delta > 0) evictions_->Add(delta);
        UpdateSizeGauge();
      }
    }
    return model;
  } catch (...) {
    {
      // Erase only this attempt's entry, never a successor's.
      std::unique_lock<std::mutex> lock(mutex_);
      const auto it = in_flight_.find(key);
      if (it != in_flight_.end() && it->second == mine) in_flight_.erase(it);
      UpdateSizeGauge();
    }
    promise.set_exception(std::current_exception());
    throw;
  }
}

uint64_t MetamodelCache::eviction_count() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return entries_.evictions();
}

int MetamodelCache::size() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return static_cast<int>(entries_.size() + in_flight_.size());
}

size_t MetamodelCache::capacity() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return entries_.capacity();
}

MetamodelCacheStats MetamodelCache::stats() const {
  std::unique_lock<std::mutex> lock(mutex_);
  MetamodelCacheStats s;
  s.fits = static_cast<int>(fits_->Value());
  s.hits = static_cast<int>(hits_->Value());
  s.evictions = entries_.evictions();
  s.size = static_cast<int>(entries_.size() + in_flight_.size());
  s.capacity = entries_.capacity();
  return s;
}

void MetamodelCache::Clear() {
  std::unique_lock<std::mutex> lock(mutex_);
  entries_.Clear();
  in_flight_.clear();
  UpdateSizeGauge();
}

}  // namespace reds::engine
