#include "engine/metamodel_cache.h"

namespace reds::engine {

std::shared_ptr<const ml::Metamodel> MetamodelCache::GetOrFit(
    const MetamodelKey& key, const FitFn& fit) {
  std::promise<std::shared_ptr<const ml::Metamodel>> promise;
  std::shared_ptr<Entry> mine;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      hits_.fetch_add(1);
      const std::shared_ptr<Entry> entry = it->second;
      lock.unlock();
      return entry->get();  // blocks while the owning fit is in flight
    }
    mine = std::make_shared<Entry>(promise.get_future().share());
    entries_.emplace(key, mine);
    fits_.fetch_add(1);
  }
  try {
    std::shared_ptr<const ml::Metamodel> model = fit();
    promise.set_value(model);
    return model;
  } catch (...) {
    {
      // Erase only this attempt's entry: after a concurrent Clear(), the
      // slot may already hold a successor's in-flight fit.
      std::unique_lock<std::mutex> lock(mutex_);
      const auto it = entries_.find(key);
      if (it != entries_.end() && it->second == mine) entries_.erase(it);
    }
    promise.set_exception(std::current_exception());
    throw;
  }
}

int MetamodelCache::size() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return static_cast<int>(entries_.size());
}

void MetamodelCache::Clear() {
  std::unique_lock<std::mutex> lock(mutex_);
  entries_.clear();
}

}  // namespace reds::engine
