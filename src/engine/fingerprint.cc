#include "engine/fingerprint.h"

#include "util/fingerprint.h"

namespace reds::engine {

namespace {

// The Dataset's row() pointers expose the contiguous row-major storage, so
// hashing chunk-at-a-time (here: row-at-a-time) costs no copies and matches
// the streamed layout exactly.
uint64_t Hash(const Dataset& d, util::DatasetHasher::Scope scope) {
  util::DatasetHasher hasher(scope, d.num_cols());
  for (int r = 0; r < d.num_rows(); ++r) {
    hasher.AddRow(d.row(r), d.y(r));
  }
  return hasher.Finalize();
}

}  // namespace

uint64_t FingerprintDataset(const Dataset& d) {
  return Hash(d, util::DatasetHasher::Scope::kFull);
}

uint64_t FingerprintInputs(const Dataset& d) {
  return Hash(d, util::DatasetHasher::Scope::kInputs);
}

}  // namespace reds::engine
