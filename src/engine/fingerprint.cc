#include "engine/fingerprint.h"

#include <cstring>

namespace reds::engine {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

void HashValue(uint64_t* h, uint64_t v) {
  for (int byte = 0; byte < 8; ++byte) {
    *h ^= (v >> (8 * byte)) & 0xffULL;
    *h *= kFnvPrime;
  }
}

void HashDouble(uint64_t* h, double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  HashValue(h, bits);
}

}  // namespace

uint64_t FingerprintDataset(const Dataset& d) {
  uint64_t h = kFnvOffset;
  HashValue(&h, static_cast<uint64_t>(d.num_cols()));
  HashValue(&h, static_cast<uint64_t>(d.num_rows()));
  for (int r = 0; r < d.num_rows(); ++r) {
    const double* row = d.row(r);
    for (int c = 0; c < d.num_cols(); ++c) HashDouble(&h, row[c]);
    HashDouble(&h, d.y(r));
  }
  return h;
}

uint64_t FingerprintInputs(const Dataset& d) {
  uint64_t h = kFnvOffset;
  // A distinct salt keeps input-only and full fingerprints from colliding
  // on datasets that happen to serialize identically.
  HashValue(&h, 0x785f6f6e6c79ULL);  // "x_only"
  HashValue(&h, static_cast<uint64_t>(d.num_cols()));
  HashValue(&h, static_cast<uint64_t>(d.num_rows()));
  for (int r = 0; r < d.num_rows(); ++r) {
    const double* row = d.row(r);
    for (int c = 0; c < d.num_cols(); ++c) HashDouble(&h, row[c]);
  }
  return h;
}

}  // namespace reds::engine
