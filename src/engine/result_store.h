// Result store: thread-safe accumulation of per-repetition discovery
// metrics into named cells, with aggregation (means, consistency) and export
// through the existing table/CSV utilities. The experiment Runner and every
// bench binary read their numbers from here.
#ifndef REDS_ENGINE_RESULT_STORE_H_
#define REDS_ENGINE_RESULT_STORE_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/box.h"
#include "util/status.h"
#include "util/table.h"

namespace reds::engine {

/// Per-repetition quality measurements (all on the independent test set,
/// except runtime and the interpretability counts).
struct MetricSet {
  double pr_auc = 0.0;          // trajectory PR AUC on test data
  double precision = 0.0;       // last box precision on test data
  double recall = 0.0;          // last box recall on test data
  double wracc = 0.0;           // last box WRAcc on test data (BI methods)
  double restricted = 0.0;      // #restricted of the last box
  double irrel = 0.0;           // #irrelevantly restricted of the last box
  double runtime_seconds = 0.0;
};

/// All repetitions of one cell, e.g. one (function, method, N) combination.
struct CellResult {
  std::vector<MetricSet> reps;
  std::vector<Box> last_boxes;
  double consistency = 1.0;  // mean pairwise V_o/V_u of the last boxes

  MetricSet Mean() const;
  std::vector<double> Collect(double MetricSet::* field) const;
};

/// Accumulates CellResults under string keys. Record() is thread-safe; the
/// read accessors are meant for use after the producing jobs finished.
class ResultStore {
 public:
  /// Pre-sizes a cell to `reps` repetitions so results land in stable slots
  /// regardless of completion order.
  void Reserve(const std::string& cell, int reps);

  /// Stores one repetition's metrics/box. Grows the cell as needed; each
  /// (cell, rep) slot is expected to be written once.
  void Record(const std::string& cell, int rep, const MetricSet& metrics,
              const Box& last_box);

  /// Read access; throws std::out_of_range for unknown cells.
  const CellResult& cell(const std::string& name) const;
  bool Contains(const std::string& name) const;
  std::vector<std::string> CellNames() const;

  /// Recomputes a cell's consistency as the mean pairwise overlap of its
  /// last boxes, clamped to the given domain.
  void ComputeConsistency(const std::string& cell,
                          const std::vector<double>& domain_lo,
                          const std::vector<double>& domain_hi);

  /// Human-readable per-cell summary (mean metrics per cell).
  TablePrinter SummaryTable(const std::string& title = "results") const;

  /// Dumps one row per (cell, rep) via CsvWriter; `cell_index` columns refer
  /// to CellNames() order.
  Status WriteCsv(const std::string& path) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, CellResult> cells_;
};

}  // namespace reds::engine

#endif  // REDS_ENGINE_RESULT_STORE_H_
