#include "engine/result_store.h"

#include <stdexcept>

#include "core/quality.h"

namespace reds::engine {

MetricSet CellResult::Mean() const {
  MetricSet mean;
  if (reps.empty()) return mean;
  for (const auto& m : reps) {
    mean.pr_auc += m.pr_auc;
    mean.precision += m.precision;
    mean.recall += m.recall;
    mean.wracc += m.wracc;
    mean.restricted += m.restricted;
    mean.irrel += m.irrel;
    mean.runtime_seconds += m.runtime_seconds;
  }
  const double n = static_cast<double>(reps.size());
  mean.pr_auc /= n;
  mean.precision /= n;
  mean.recall /= n;
  mean.wracc /= n;
  mean.restricted /= n;
  mean.irrel /= n;
  mean.runtime_seconds /= n;
  return mean;
}

std::vector<double> CellResult::Collect(double MetricSet::* field) const {
  std::vector<double> out;
  out.reserve(reps.size());
  for (const auto& m : reps) out.push_back(m.*field);
  return out;
}

void ResultStore::Reserve(const std::string& cell, int reps) {
  std::unique_lock<std::mutex> lock(mutex_);
  CellResult& c = cells_[cell];
  if (static_cast<int>(c.reps.size()) < reps) {
    c.reps.resize(static_cast<size_t>(reps));
    c.last_boxes.resize(static_cast<size_t>(reps));
  }
}

void ResultStore::Record(const std::string& cell, int rep,
                         const MetricSet& metrics, const Box& last_box) {
  std::unique_lock<std::mutex> lock(mutex_);
  CellResult& c = cells_[cell];
  if (rep >= static_cast<int>(c.reps.size())) {
    c.reps.resize(static_cast<size_t>(rep) + 1);
    c.last_boxes.resize(static_cast<size_t>(rep) + 1);
  }
  c.reps[static_cast<size_t>(rep)] = metrics;
  c.last_boxes[static_cast<size_t>(rep)] = last_box;
}

const CellResult& ResultStore::cell(const std::string& name) const {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = cells_.find(name);
  if (it == cells_.end()) throw std::out_of_range("no cell " + name);
  return it->second;
}

bool ResultStore::Contains(const std::string& name) const {
  std::unique_lock<std::mutex> lock(mutex_);
  return cells_.find(name) != cells_.end();
}

std::vector<std::string> ResultStore::CellNames() const {
  std::unique_lock<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(cells_.size());
  for (const auto& [name, cell] : cells_) names.push_back(name);
  return names;
}

void ResultStore::ComputeConsistency(const std::string& cell,
                                     const std::vector<double>& domain_lo,
                                     const std::vector<double>& domain_hi) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = cells_.find(cell);
  if (it == cells_.end()) throw std::out_of_range("no cell " + cell);
  it->second.consistency =
      100.0 * MeanPairwiseConsistency(it->second.last_boxes, domain_lo,
                                      domain_hi);
}

TablePrinter ResultStore::SummaryTable(const std::string& title) const {
  TablePrinter table(title);
  table.SetHeader({"cell", "reps", "pr_auc", "precision", "recall",
                   "restricted", "runtime_s"});
  std::unique_lock<std::mutex> lock(mutex_);
  for (const auto& [name, cell] : cells_) {
    const MetricSet mean = cell.Mean();
    table.AddRow({name, std::to_string(cell.reps.size()),
                  FormatDouble(mean.pr_auc), FormatDouble(mean.precision),
                  FormatDouble(mean.recall), FormatDouble(mean.restricted),
                  FormatDouble(mean.runtime_seconds)});
  }
  return table;
}

Status ResultStore::WriteCsv(const std::string& path) const {
  CsvWriter csv({"cell_index", "rep", "pr_auc", "precision", "recall",
                 "wracc", "restricted", "irrel", "runtime_seconds"});
  // Snapshot the rows under the lock, write after releasing it: file I/O
  // must not stall concurrent Record() calls from in-flight jobs.
  {
    std::unique_lock<std::mutex> lock(mutex_);
    double cell_index = 0.0;
    for (const auto& [name, cell] : cells_) {
      for (size_t r = 0; r < cell.reps.size(); ++r) {
        const MetricSet& m = cell.reps[r];
        csv.AddRow({cell_index, static_cast<double>(r), m.pr_auc, m.precision,
                    m.recall, m.wracc, m.restricted, m.irrel,
                    m.runtime_seconds});
      }
      cell_index += 1.0;
    }
  }
  return csv.WriteFile(path);
}

}  // namespace reds::engine
