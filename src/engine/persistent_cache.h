// PersistentCache: the engine's on-disk cache tier. BinnedIndexes and
// trained metamodels are serialized to a cache directory keyed by dataset
// fingerprint, so a second engine process (or a restarted one) skips both
// quantization and metamodel training -- the cross-engine persistence the
// ROADMAP names. Files are self-validating: a magic tag and version,
// the full cache key echoed in the header (guarding against 64-bit key
// collisions mapping to the same file name), an FNV-64 checksum over the
// payload, and structural validation in the deserializers. Anything that
// fails any check is rejected and counted, never trusted. Writes go to a
// temp file first and rename into place, so readers only ever observe
// complete files.
#ifndef REDS_ENGINE_PERSISTENT_CACHE_H_
#define REDS_ENGINE_PERSISTENT_CACHE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "core/binned_index.h"
#include "engine/metamodel_cache.h"
#include "ml/model.h"
#include "obs/metrics.h"

namespace reds::engine {

/// Point-in-time counters of the disk tier. A view assembled from the
/// `cache.persistent.*` registry counters, which are the single source of
/// truth (see PersistentCache's constructor).
struct PersistentCacheStats {
  int index_hits = 0;     // BinnedIndexes loaded from disk
  int index_misses = 0;   // lookups with no (valid) file
  int index_writes = 0;
  int model_hits = 0;     // metamodels loaded from disk
  int model_misses = 0;
  int model_writes = 0;
  int relabel_hits = 0;   // streamed relabelings (labels + index) loaded
  int relabel_misses = 0;
  int relabel_writes = 0;
  int rejected = 0;       // corrupt/truncated/mismatched files refused
  int evictions = 0;      // entries dropped to respect the byte cap
  uint64_t bytes_evicted = 0;  // summed size of the entries dropped
  /// Stores that found another process's complete entry already in place
  /// (multi-process races on one key). Counted as a successful store, not
  /// a failure: the bytes on disk are the same bytes we computed.
  int concurrent_wins = 0;
};

class PersistentCache {
 public:
  /// Creates `dir` (and parents) if missing. `max_bytes` caps the summed
  /// size of the cache files (0 = unlimited, the historical grow-only
  /// behavior): after every store that pushes the directory past the cap,
  /// the oldest entries by modification time are deleted until the
  /// remainder fits. The entry just written is never evicted, so the cap
  /// is approximate by at most one entry. Counters live in `metrics` under
  /// `cache.persistent.{index_hits,index_misses,index_writes,model_hits,
  /// model_misses,model_writes,rejected,evictions,bytes_evicted}`; when
  /// null the cache owns a private registry so standalone construction
  /// keeps working.
  explicit PersistentCache(std::string dir, uint64_t max_bytes = 0,
                           obs::MetricsRegistry* metrics = nullptr);

  PersistentCache(const PersistentCache&) = delete;
  PersistentCache& operator=(const PersistentCache&) = delete;

  const std::string& dir() const { return dir_; }

  /// Loads the cached quantization of the dataset identified by
  /// `input_fingerprint`, or null on miss/rejection. `expect_rows` and
  /// `expect_cols` guard against fingerprint collisions across shapes;
  /// `kind` separates exact-pack and sketch-binned indexes, which must
  /// never share entries.
  std::shared_ptr<const BinnedIndex> LoadBinnedIndex(
      uint64_t input_fingerprint, BinnedIndex::BuildKind kind,
      int expect_rows, int expect_cols);

  void StoreBinnedIndex(uint64_t input_fingerprint, const BinnedIndex& index);

  /// Streamed-ingestion namespace: indexes produced by
  /// BinnedIndex::BuildStreamed (either build kind, always carrying their
  /// own permutation). Kept apart from the exact-pack entries above so a
  /// streamed request is only ever served bins a streamed build would have
  /// produced -- warm and cold runs stay bit-identical. Stored in the
  /// write-once mapped format ("REDSBMAP"): loads alias the mmap'd file,
  /// so the O(N x M) code/permutation payload pages in on demand instead
  /// of being copied to the heap, and warm starts skip the code rebuild
  /// outright. Entries lacking the permutation are rejected.
  std::shared_ptr<const BinnedIndex> LoadStreamedIndex(
      uint64_t input_fingerprint, int expect_rows, int expect_cols);

  void StoreStreamedIndex(uint64_t input_fingerprint,
                          const BinnedIndex& index);

  /// Relabel-stream namespace: the finished product of a streamed REDS
  /// relabeling -- the O(L) label vector in its own checksummed file plus
  /// the quantized index shared with the streamed-index namespace above
  /// (mapped, per input fingerprint). A hit hands back a complete
  /// StreamedDataset, so a warm engine replays neither the sampler nor the
  /// metamodel nor the quantization. `key` is the engine-folded relabel
  /// cache key; returns null when either file is missing or invalid.
  std::shared_ptr<const StreamedDataset> LoadRelabelStream(uint64_t key,
                                                           int expect_rows,
                                                           int expect_cols);

  void StoreRelabelStream(uint64_t key, const StreamedDataset& data);

  /// Loads the trained metamodel for `key`, or null on miss/rejection.
  std::shared_ptr<const ml::Metamodel> LoadMetamodel(const MetamodelKey& key);

  void StoreMetamodel(const MetamodelKey& key, const ml::Metamodel& model);

  PersistentCacheStats stats() const;

 private:
  std::string IndexPath(uint64_t input_fingerprint,
                        BinnedIndex::BuildKind kind) const;
  std::string StreamedIndexPath(uint64_t input_fingerprint) const;
  std::string RelabelStreamPath(uint64_t key) const;
  std::string ModelPath(const MetamodelKey& key) const;
  /// Shared load path of the exact-pack and streamed index namespaces.
  std::shared_ptr<const BinnedIndex> LoadIndexFile(
      const std::string& path, uint64_t input_fingerprint, int expect_rows,
      int expect_cols, bool require_sorted_rows,
      const BinnedIndex::BuildKind* expect_kind);
  /// Deletes oldest-mtime cache entries until the directory fits
  /// max_bytes_ again, sparing `just_written`. No-op when max_bytes_ == 0.
  void EvictOverCap(const std::string& just_written);
  /// Reads and validates a cache file. On success `raw` holds the whole
  /// file and [*payload_begin, *payload_begin + *payload_size) delimits
  /// the checksummed payload in place -- no second copy of the O(N x M)
  /// bytes on the warm-start path.
  bool ReadPayload(const std::string& path, uint64_t expected_magic,
                   std::string* raw, size_t* payload_begin,
                   size_t* payload_size);
  /// True only when the file was fully written and renamed into place.
  bool WritePayload(const std::string& path, uint64_t magic,
                    const std::string& payload);

  std::string dir_;
  uint64_t max_bytes_ = 0;  // 0: unlimited
  // Fallback registry when none is shared in; declared before the metric
  // pointers it backs. Counters are thread-safe on their own, so the disk
  // tier needs no stats mutex.
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::Counter* index_hits_ = nullptr;
  obs::Counter* index_misses_ = nullptr;
  obs::Counter* index_writes_ = nullptr;
  obs::Counter* model_hits_ = nullptr;
  obs::Counter* model_misses_ = nullptr;
  obs::Counter* model_writes_ = nullptr;
  obs::Counter* relabel_hits_ = nullptr;
  obs::Counter* relabel_misses_ = nullptr;
  obs::Counter* relabel_writes_ = nullptr;
  obs::Counter* rejected_ = nullptr;
  obs::Counter* evictions_ = nullptr;
  obs::Counter* bytes_evicted_ = nullptr;
  obs::Counter* concurrent_wins_ = nullptr;
};

}  // namespace reds::engine

#endif  // REDS_ENGINE_PERSISTENT_CACHE_H_
