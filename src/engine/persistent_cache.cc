#include "engine/persistent_cache.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "ml/serialize.h"

namespace reds::engine {

namespace {

// File layout: magic, format version, algorithm revision, payload size,
// payload, FNV-64 of the payload. The payload itself opens with an echo of
// the cache key.
constexpr uint64_t kIndexMagic = 0x5245445342494458ULL;   // "REDSBIDX"
constexpr uint64_t kModelMagic = 0x524544534d4f444cULL;   // "REDSMODL"
constexpr uint64_t kRelabelMagic = 0x52454453524c4253ULL; // "REDSRLBS"
constexpr uint32_t kFormatVersion = 1;

// Revision of the *producing algorithms* (quantile packing, metamodel
// training), not the wire layout: a cached artifact is only valid if the
// current binary would have produced the identical bytes, because the
// engine promises warm and cold runs bit-identical results. Bump this
// whenever a change alters what Build/Fit computes for the same inputs
// (as PR 2's presorted and PR 3's histogram rework did) -- every stale
// cache entry is then rejected and rebuilt instead of silently served.
constexpr uint32_t kAlgorithmRevision = 1;

// Temp-file names: pid + thread-id hash + a process-wide sequence number.
// The sequence makes every temp name unique even when thread ids recycle
// or two threads' id hashes collide, so concurrent writers (threads or
// whole processes, as in a sharded fleet) can never interleave bytes into
// one temp file.
std::atomic<uint64_t> g_tmp_seq{0};

std::string TmpName(const std::string& path) {
  return path + ".tmp-" +
         std::to_string(static_cast<long long>(::getpid())) + "-" +
         std::to_string(static_cast<long long>(
             std::hash<std::thread::id>{}(std::this_thread::get_id()) &
             0xffffffULL)) +
         "-" + std::to_string(g_tmp_seq.fetch_add(1));
}

std::string Hex16(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

void WriteKeyEcho(const MetamodelKey& key, util::ByteWriter* out) {
  out->U64(key.fingerprint);
  out->U8(static_cast<uint8_t>(key.kind));
  out->U8(key.tuned ? 1 : 0);
  out->U8(static_cast<uint8_t>(key.budget));
  out->U8(static_cast<uint8_t>(key.backend));
  out->U8(static_cast<uint8_t>(key.growth));
  out->I32(key.max_leaves);
  out->U64(key.seed);
}

// File-name hash over exactly the bytes WriteKeyEcho emits, so a new
// MetamodelKey field added there automatically reaches the name too (a
// name/echo drift would make two keys thrash one file).
uint64_t HashKey(const MetamodelKey& key) {
  util::ByteWriter w;
  WriteKeyEcho(key, &w);
  return util::Fnv64(w.data().data(), w.data().size());
}

bool ReadKeyEchoMatches(const MetamodelKey& key, util::ByteReader* in) {
  const uint64_t fingerprint = in->U64();
  const uint8_t kind = in->U8();
  const uint8_t tuned = in->U8();
  const uint8_t budget = in->U8();
  const uint8_t backend = in->U8();
  const uint8_t growth = in->U8();
  const int32_t max_leaves = in->I32();
  const uint64_t seed = in->U64();
  return in->ok() && fingerprint == key.fingerprint &&
         kind == static_cast<uint8_t>(key.kind) &&
         tuned == (key.tuned ? 1 : 0) &&
         budget == static_cast<uint8_t>(key.budget) &&
         backend == static_cast<uint8_t>(key.backend) &&
         growth == static_cast<uint8_t>(key.growth) &&
         max_leaves == key.max_leaves && seed == key.seed;
}

}  // namespace

PersistentCache::PersistentCache(std::string dir, uint64_t max_bytes,
                                 obs::MetricsRegistry* metrics)
    : dir_(std::move(dir)), max_bytes_(max_bytes) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  // Best-effort: an unwritable directory just makes every lookup miss and
  // every store a no-op; the engine falls back to building/fitting.
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  index_hits_ = metrics->counter("cache.persistent.index_hits");
  index_misses_ = metrics->counter("cache.persistent.index_misses");
  index_writes_ = metrics->counter("cache.persistent.index_writes");
  model_hits_ = metrics->counter("cache.persistent.model_hits");
  model_misses_ = metrics->counter("cache.persistent.model_misses");
  model_writes_ = metrics->counter("cache.persistent.model_writes");
  relabel_hits_ = metrics->counter("cache.persistent.relabel_hits");
  relabel_misses_ = metrics->counter("cache.persistent.relabel_misses");
  relabel_writes_ = metrics->counter("cache.persistent.relabel_writes");
  rejected_ = metrics->counter("cache.persistent.rejected");
  evictions_ = metrics->counter("cache.persistent.evictions");
  bytes_evicted_ = metrics->counter("cache.persistent.bytes_evicted");
  concurrent_wins_ = metrics->counter("cache.persistent.concurrent_wins");
}

std::string PersistentCache::IndexPath(uint64_t input_fingerprint,
                                       BinnedIndex::BuildKind kind) const {
  const char* tag =
      kind == BinnedIndex::BuildKind::kExactPack ? "exact" : "sketch";
  return dir_ + "/bidx-" + tag + "-" + Hex16(input_fingerprint) + ".bin";
}

std::string PersistentCache::StreamedIndexPath(
    uint64_t input_fingerprint) const {
  // "bmap": the mapped REDSBMAP format. The name changed with the format,
  // so pre-mapped "bidx-stream-*" entries simply plain-miss and rebuild
  // (then age out under the byte cap) instead of being misparsed.
  return dir_ + "/bmap-stream-" + Hex16(input_fingerprint) + ".bin";
}

std::string PersistentCache::RelabelStreamPath(uint64_t key) const {
  return dir_ + "/reds-stream-" + Hex16(key) + ".bin";
}

std::string PersistentCache::ModelPath(const MetamodelKey& key) const {
  return dir_ + "/model-" + Hex16(HashKey(key)) + ".bin";
}

bool PersistentCache::ReadPayload(const std::string& path,
                                  uint64_t expected_magic, std::string* raw,
                                  size_t* payload_begin,
                                  size_t* payload_size) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  if (!f) return false;  // plain miss, not a rejection
  // One sized read: payloads are O(N x M) bytes and sit on the warm-start
  // path, so no per-character extraction.
  const std::streamoff file_size = f.tellg();
  if (file_size < 0) return false;
  raw->assign(static_cast<size_t>(file_size), '\0');
  f.seekg(0);
  f.read(raw->data(), file_size);
  if (!f) return false;
  util::ByteReader header(*raw);
  const uint64_t magic = header.U64();
  const uint32_t version = header.U32();
  const uint32_t revision = header.U32();
  const uint64_t size = header.U64();
  bool valid = header.ok() && magic == expected_magic &&
               version == kFormatVersion &&
               revision == kAlgorithmRevision && header.remaining() >= 8 &&
               size == header.remaining() - 8;
  if (valid) {
    *payload_begin = raw->size() - header.remaining();
    *payload_size = static_cast<size_t>(size);
    const uint64_t checksum =
        util::Fnv64(raw->data() + *payload_begin, *payload_size);
    util::ByteReader trailer(raw->data() + *payload_begin + *payload_size, 8);
    valid = checksum == trailer.U64();
  }
  if (!valid) rejected_->Add(1);
  return valid;
}

bool PersistentCache::WritePayload(const std::string& path, uint64_t magic,
                                   const std::string& payload) {
  util::ByteWriter header;
  header.U64(magic);
  header.U32(kFormatVersion);
  header.U32(kAlgorithmRevision);
  header.U64(payload.size());
  util::ByteWriter trailer;
  trailer.U64(util::Fnv64(payload.data(), payload.size()));

  // Write-then-rename: concurrent readers (and other engine processes)
  // only ever see complete files. The temp name (pid, thread-id hash,
  // sequence) is unique per write attempt.
  std::error_code probe;
  const bool existed_at_start =
      std::filesystem::exists(path, probe) && !probe;
  const std::string tmp = TmpName(path);
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) return false;
    f.write(header.data().data(),
            static_cast<std::streamsize>(header.size()));
    f.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    f.write(trailer.data().data(),
            static_cast<std::streamsize>(trailer.size()));
    if (!f) {
      // Don't leave partial temp files behind (e.g. on a full disk); the
      // directory has no eviction, so orphans would accumulate forever.
      f.close();
      std::error_code cleanup;
      std::filesystem::remove(tmp, cleanup);
      return false;
    }
  }
  // Multi-process race on one key: a destination that APPEARED while we
  // were writing is another process's complete entry for the same key --
  // same bytes (the tier caches deterministic artifacts) -- so keep
  // theirs, drop ours, and count a win rather than a failure. A file that
  // already existed when the store began is different: we are refreshing
  // an entry whose load was just rejected (stale revision, corruption),
  // and the rename below must replace it.
  std::error_code ec;
  if (!existed_at_start && std::filesystem::exists(path, ec) && !ec) {
    concurrent_wins_->Add(1);
    std::filesystem::remove(tmp, ec);
    return true;
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    // rename itself lost a race (e.g. directory mutation under us): if the
    // destination now exists, the entry is in place regardless of whose
    // bytes won.
    const bool winner_exists = std::filesystem::exists(path, probe) && !probe;
    std::filesystem::remove(tmp, ec);
    if (winner_exists) {
      concurrent_wins_->Add(1);
      return true;
    }
    return false;
  }
  return true;
}

std::shared_ptr<const BinnedIndex> PersistentCache::LoadIndexFile(
    const std::string& path, uint64_t input_fingerprint, int expect_rows,
    int expect_cols, bool require_sorted_rows,
    const BinnedIndex::BuildKind* expect_kind) {
  std::string raw;
  size_t begin = 0, size = 0;
  if (!ReadPayload(path, kIndexMagic, &raw, &begin, &size)) {
    index_misses_->Add(1);
    return nullptr;
  }
  util::ByteReader in(raw.data() + begin, size);
  const uint64_t echoed = in.U64();
  Result<std::shared_ptr<const BinnedIndex>> index =
      BinnedIndex::Deserialize(&in);
  const bool valid = in.ok() && index.ok() && echoed == input_fingerprint &&
                     (expect_kind == nullptr ||
                      (*index)->kind() == *expect_kind) &&
                     (!require_sorted_rows || (*index)->has_sorted_rows()) &&
                     (*index)->num_rows() == expect_rows &&
                     (*index)->num_cols() == expect_cols;
  if (!valid) {
    rejected_->Add(1);
    index_misses_->Add(1);
    return nullptr;
  }
  index_hits_->Add(1);
  return *std::move(index);
}

std::shared_ptr<const BinnedIndex> PersistentCache::LoadBinnedIndex(
    uint64_t input_fingerprint, BinnedIndex::BuildKind kind, int expect_rows,
    int expect_cols) {
  return LoadIndexFile(IndexPath(input_fingerprint, kind), input_fingerprint,
                       expect_rows, expect_cols,
                       /*require_sorted_rows=*/false, &kind);
}

std::shared_ptr<const BinnedIndex> PersistentCache::LoadStreamedIndex(
    uint64_t input_fingerprint, int expect_rows, int expect_cols) {
  // Either build kind is valid (whatever the stream's distinct-value
  // profile produced); mapped entries always carry their permutation.
  // OpenMapped validates magic, version, key echo, shape, and the
  // full-file checksum; an absent file is a plain miss, anything else
  // invalid is a rejection.
  const std::string path = StreamedIndexPath(input_fingerprint);
  std::error_code ec;
  if (!std::filesystem::exists(path, ec) || ec) {
    index_misses_->Add(1);
    return nullptr;
  }
  Result<std::shared_ptr<const BinnedIndex>> index =
      BinnedIndex::OpenMapped(path, input_fingerprint, expect_rows,
                              expect_cols);
  if (!index.ok()) {
    rejected_->Add(1);
    index_misses_->Add(1);
    return nullptr;
  }
  index_hits_->Add(1);
  return *std::move(index);
}

void PersistentCache::StoreBinnedIndex(uint64_t input_fingerprint,
                                       const BinnedIndex& index) {
  util::ByteWriter payload;
  payload.U64(input_fingerprint);
  index.Serialize(&payload);
  // Only completed writes count: an unwritable directory or full disk
  // must read as "nothing stored", not as a populated cache.
  const std::string path = IndexPath(input_fingerprint, index.kind());
  if (!WritePayload(path, kIndexMagic, payload.data())) return;
  index_writes_->Add(1);
  EvictOverCap(path);
}

void PersistentCache::StoreStreamedIndex(uint64_t input_fingerprint,
                                         const BinnedIndex& index) {
  assert(index.has_sorted_rows());
  // Same write-then-rename discipline as WritePayload, but through the
  // mapped writer: readers only ever mmap complete files.
  const std::string path = StreamedIndexPath(input_fingerprint);
  std::error_code probe;
  const bool existed_at_start =
      std::filesystem::exists(path, probe) && !probe;
  const std::string tmp = TmpName(path);
  if (!index.WriteMapped(tmp, input_fingerprint).ok()) {
    std::error_code cleanup;
    std::filesystem::remove(tmp, cleanup);
    return;
  }
  // Same concurrent-winner tolerance as WritePayload: an entry that
  // appeared during our write is another process's win; one that existed
  // at the start is stale and gets replaced by the rename.
  std::error_code ec;
  if (!existed_at_start && std::filesystem::exists(path, ec) && !ec) {
    concurrent_wins_->Add(1);
    std::filesystem::remove(tmp, ec);
    return;
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    const bool winner_exists = std::filesystem::exists(path, probe) && !probe;
    std::filesystem::remove(tmp, ec);
    if (winner_exists) concurrent_wins_->Add(1);
    return;
  }
  index_writes_->Add(1);
  EvictOverCap(path);
}

std::shared_ptr<const StreamedDataset> PersistentCache::LoadRelabelStream(
    uint64_t key, int expect_rows, int expect_cols) {
  std::string raw;
  size_t begin = 0, size = 0;
  if (!ReadPayload(RelabelStreamPath(key), kRelabelMagic, &raw, &begin,
                   &size)) {
    relabel_misses_->Add(1);
    return nullptr;
  }
  util::ByteReader in(raw.data() + begin, size);
  const uint64_t echoed_key = in.U64();
  const uint64_t input_fp = in.U64();
  const uint64_t full_fp = in.U64();
  const int32_t cols = in.I32();
  std::vector<double> y = in.VecF64();
  const bool valid = in.ok() && in.AtEnd() && echoed_key == key &&
                     cols == expect_cols &&
                     y.size() == static_cast<size_t>(expect_rows);
  if (!valid) {
    rejected_->Add(1);
    relabel_misses_->Add(1);
    return nullptr;
  }
  // The quantized index lives in the shared streamed-index namespace
  // (mapped, per input fingerprint); without it the labels alone cannot
  // serve a request, so a missing/invalid index file is a relabel miss.
  std::shared_ptr<const BinnedIndex> index =
      LoadStreamedIndex(input_fp, expect_rows, expect_cols);
  if (index == nullptr) {
    relabel_misses_->Add(1);
    return nullptr;
  }
  auto data = std::make_shared<StreamedDataset>();
  data->index = std::move(index);
  data->y = std::move(y);
  data->input_fingerprint = input_fp;
  data->fingerprint = full_fp;
  relabel_hits_->Add(1);
  return data;
}

void PersistentCache::StoreRelabelStream(uint64_t key,
                                         const StreamedDataset& data) {
  assert(data.index != nullptr && data.index->has_sorted_rows());
  // Index first: if its write fails, the labels entry must not exist
  // either (a labels file pointing at a missing index would always miss
  // anyway, but would waste a read on every lookup).
  StoreStreamedIndex(data.input_fingerprint, *data.index);
  util::ByteWriter payload;
  payload.U64(key);
  payload.U64(data.input_fingerprint);
  payload.U64(data.fingerprint);
  payload.I32(static_cast<int32_t>(data.index->num_cols()));
  payload.VecF64(data.y);
  const std::string path = RelabelStreamPath(key);
  if (!WritePayload(path, kRelabelMagic, payload.data())) return;
  relabel_writes_->Add(1);
  EvictOverCap(path);
}

std::shared_ptr<const ml::Metamodel> PersistentCache::LoadMetamodel(
    const MetamodelKey& key) {
  std::string raw;
  size_t begin = 0, size = 0;
  if (!ReadPayload(ModelPath(key), kModelMagic, &raw, &begin, &size)) {
    model_misses_->Add(1);
    return nullptr;
  }
  util::ByteReader in(raw.data() + begin, size);
  if (!ReadKeyEchoMatches(key, &in)) {
    rejected_->Add(1);
    model_misses_->Add(1);
    return nullptr;
  }
  Result<std::shared_ptr<const ml::Metamodel>> model =
      ml::DeserializeMetamodel(&in, key.kind);
  if (!model.ok()) {
    rejected_->Add(1);
    model_misses_->Add(1);
    return nullptr;
  }
  model_hits_->Add(1);
  return *std::move(model);
}

void PersistentCache::StoreMetamodel(const MetamodelKey& key,
                                     const ml::Metamodel& model) {
  util::ByteWriter payload;
  WriteKeyEcho(key, &payload);
  ml::SerializeMetamodel(model, key.kind, &payload);
  const std::string path = ModelPath(key);
  if (!WritePayload(path, kModelMagic, payload.data())) return;
  model_writes_->Add(1);
  EvictOverCap(path);
}

void PersistentCache::EvictOverCap(const std::string& just_written) {
  if (max_bytes_ == 0) return;
  namespace fs = std::filesystem;
  // Snapshot our cache entries (".bin" suffix; temp files are mid-write
  // and carry ".tmp-" suffixes, so they never match) with size and mtime.
  struct Entry {
    fs::file_time_type mtime;
    std::string path;
    uint64_t size = 0;
  };
  std::vector<Entry> entries;
  uint64_t total = 0;
  try {
    for (const auto& item : fs::directory_iterator(dir_)) {
      // Fresh error codes per call: a concurrent engine process may
      // remove files mid-scan, and one vanished entry must not abort the
      // whole eviction pass.
      std::error_code ec;
      if (!item.is_regular_file(ec) || ec) continue;
      const std::string path = item.path().string();
      if (path.size() < 4 || path.compare(path.size() - 4, 4, ".bin") != 0) {
        continue;
      }
      Entry e;
      e.path = path;
      e.size = static_cast<uint64_t>(item.file_size(ec));
      if (ec) continue;
      e.mtime = fs::last_write_time(item.path(), ec);
      if (ec) continue;
      total += e.size;
      entries.push_back(std::move(e));
    }
  } catch (const fs::filesystem_error&) {
    return;  // unreadable directory: leave the cache alone
  }
  if (total <= max_bytes_) return;
  // Oldest first; ties (filesystem mtime granularity) break by path so
  // concurrent writers converge on the same eviction order.
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    return a.mtime != b.mtime ? a.mtime < b.mtime : a.path < b.path;
  });
  int evicted = 0;
  uint64_t bytes_freed = 0;
  // Cache files are uniquely named within the directory, so filename
  // equality is the robust comparison (dir_ spellings -- trailing slashes,
  // relative prefixes -- must not defeat the sparing below).
  const fs::path spared = fs::path(just_written).filename();
  for (const Entry& e : entries) {
    if (total <= max_bytes_) break;
    // The entry just written survives even when it alone exceeds the cap:
    // evicting it would make the store a silent no-op.
    if (fs::path(e.path).filename() == spared) continue;
    std::error_code remove_ec;
    if (std::filesystem::remove(e.path, remove_ec) && !remove_ec) {
      total -= e.size;
      bytes_freed += e.size;
      ++evicted;
    }
  }
  if (evicted > 0) {
    evictions_->Add(static_cast<uint64_t>(evicted));
    bytes_evicted_->Add(bytes_freed);
  }
}

PersistentCacheStats PersistentCache::stats() const {
  PersistentCacheStats s;
  s.index_hits = static_cast<int>(index_hits_->Value());
  s.index_misses = static_cast<int>(index_misses_->Value());
  s.index_writes = static_cast<int>(index_writes_->Value());
  s.model_hits = static_cast<int>(model_hits_->Value());
  s.model_misses = static_cast<int>(model_misses_->Value());
  s.model_writes = static_cast<int>(model_writes_->Value());
  s.relabel_hits = static_cast<int>(relabel_hits_->Value());
  s.relabel_misses = static_cast<int>(relabel_misses_->Value());
  s.relabel_writes = static_cast<int>(relabel_writes_->Value());
  s.rejected = static_cast<int>(rejected_->Value());
  s.evictions = static_cast<int>(evictions_->Value());
  s.bytes_evicted = bytes_evicted_->Value();
  s.concurrent_wins = static_cast<int>(concurrent_wins_->Value());
  return s;
}

}  // namespace reds::engine
