// Content fingerprints for datasets: the metamodel cache key must identify
// "the same data" across requests without holding a reference to it, so the
// engine hashes the full bit pattern of inputs and targets.
#ifndef REDS_ENGINE_FINGERPRINT_H_
#define REDS_ENGINE_FINGERPRINT_H_

#include <cstdint>

#include "core/dataset.h"

namespace reds::engine {

/// 64-bit FNV-1a over shape and the exact bit patterns of every input and
/// target value. Equal datasets (bitwise) always collide; distinct datasets
/// collide with probability ~2^-64.
uint64_t FingerprintDataset(const Dataset& d);

/// As FingerprintDataset but over the inputs only (targets excluded): the
/// identity of a ColumnIndex, which never looks at y, so relabeled variants
/// of the same input matrix share one index.
uint64_t FingerprintInputs(const Dataset& d);

}  // namespace reds::engine

#endif  // REDS_ENGINE_FINGERPRINT_H_
