// Content fingerprints for datasets: the metamodel cache key must identify
// "the same data" across requests -- and, for the persistent cache tier,
// across engine processes -- without holding a reference to it. Both
// functions are thin wrappers over util::DatasetHasher, which defines the
// stable byte layout; the streaming ingestion path feeds the same hasher
// chunk-at-a-time, so fingerprints of streamed and in-memory datasets agree
// by construction (asserted in tests/dataset_source_test.cc).
#ifndef REDS_ENGINE_FINGERPRINT_H_
#define REDS_ENGINE_FINGERPRINT_H_

#include <cstdint>

#include "core/dataset.h"

namespace reds::engine {

/// 64-bit FNV-1a over shape and the exact bit patterns of every input and
/// target value (util::DatasetHasher, Scope::kFull). Equal datasets
/// (bitwise) always collide; distinct datasets collide with probability
/// ~2^-64.
uint64_t FingerprintDataset(const Dataset& d);

/// As FingerprintDataset but over the inputs only (targets excluded,
/// Scope::kInputs): the identity of a ColumnIndex or BinnedIndex, which
/// never look at y, so relabeled variants of the same input matrix share
/// one index.
uint64_t FingerprintInputs(const Dataset& d);

}  // namespace reds::engine

#endif  // REDS_ENGINE_FINGERPRINT_H_
