#include "engine/discovery_engine.h"

#include <cstdlib>
#include <stdexcept>

#include "core/quality.h"
#include "engine/fingerprint.h"
#include "util/rng.h"

namespace reds::engine {

namespace {

// Mixes the engine seed with the cache-key identity so every distinct
// metamodel gets its own reproducible stream, independent of which request
// triggers the fit.
uint64_t CanonicalSeed(uint64_t engine_seed, const MetamodelKey& key) {
  uint64_t stream = key.fingerprint;
  stream = DeriveSeed(stream, 0x11ULL + static_cast<uint64_t>(key.kind));
  stream = DeriveSeed(stream, 0x23ULL + (key.tuned ? 1ULL : 0ULL));
  stream = DeriveSeed(stream, 0x31ULL + static_cast<uint64_t>(key.budget));
  stream = DeriveSeed(stream, 0x41ULL + static_cast<uint64_t>(key.backend));
  return DeriveSeed(engine_seed, stream);
}

}  // namespace

JobState Job::state() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return state_;
}

void Job::Wait() const {
  std::unique_lock<std::mutex> lock(mutex_);
  done_.wait(lock, [this] {
    return state_ == JobState::kDone || state_ == JobState::kFailed;
  });
}

bool Job::Finished() const {
  const JobState s = state();
  return s == JobState::kDone || s == JobState::kFailed;
}

const MethodOutput& Job::output() const {
  std::unique_lock<std::mutex> lock(mutex_);
  if (state_ != JobState::kDone) {
    throw std::logic_error("Job::output() read on a job that is not done");
  }
  return output_;
}

const MetricSet& Job::metrics() const {
  std::unique_lock<std::mutex> lock(mutex_);
  if (state_ != JobState::kDone) {
    throw std::logic_error("Job::metrics() read on a job that is not done");
  }
  return metrics_;
}

const std::string& Job::error() const {
  std::unique_lock<std::mutex> lock(mutex_);
  if (state_ != JobState::kFailed) {
    throw std::logic_error("Job::error() read on a job that has not failed");
  }
  return error_;
}

void Job::MarkRunning() {
  std::unique_lock<std::mutex> lock(mutex_);
  state_ = JobState::kRunning;
}

void Job::MarkDone(MethodOutput output, MetricSet metrics) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    output_ = std::move(output);
    metrics_ = metrics;
    state_ = JobState::kDone;
  }
  done_.notify_all();
}

void Job::MarkFailed(std::string error) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    error_ = std::move(error);
    state_ = JobState::kFailed;
  }
  done_.notify_all();
}

namespace {

std::string ResolveCacheDir(const std::string& configured) {
  if (!configured.empty()) return configured;
  const char* env = std::getenv("REDS_CACHE_DIR");
  return env != nullptr ? std::string(env) : std::string();
}

}  // namespace

DiscoveryEngine::DiscoveryEngine(EngineConfig config)
    : config_(config),
      cache_(config.metamodel_cache_capacity),
      column_indexes_(config.column_index_cache_capacity),
      binned_indexes_(config.binned_index_cache_capacity),
      pool_(config.threads) {
  if (config.enable_persistent_cache) {
    const std::string dir = ResolveCacheDir(config.cache_dir);
    if (!dir.empty()) disk_ = std::make_unique<PersistentCache>(dir);
  }
}

JobHandle DiscoveryEngine::Submit(DiscoveryRequest request) {
  auto job = std::make_shared<Job>(std::move(request));
  pool_.Submit([this, job] { Execute(job); });
  return job;
}

std::vector<JobHandle> DiscoveryEngine::SubmitBatch(
    std::vector<DiscoveryRequest> requests) {
  std::vector<JobHandle> handles;
  handles.reserve(requests.size());
  for (auto& r : requests) handles.push_back(Submit(std::move(r)));
  return handles;
}

void DiscoveryEngine::WaitAll() { pool_.Wait(); }

void DiscoveryEngine::Shutdown() { pool_.Shutdown(); }

std::shared_ptr<const ColumnIndex> DiscoveryEngine::GetColumnIndex(
    const Dataset& d) {
  return GetColumnIndex(d, FingerprintInputs(d));
}

std::shared_ptr<const ColumnIndex> DiscoveryEngine::GetColumnIndex(
    const Dataset& d, uint64_t fingerprint) {
  {
    std::unique_lock<std::mutex> lock(column_index_mutex_);
    if (auto* found = column_indexes_.Get(fingerprint)) return *found;
  }
  // Build outside the lock: indexing a large relabeled matrix takes long
  // enough that serializing it would stall unrelated jobs. A rare race
  // builds twice and keeps one.
  std::shared_ptr<const ColumnIndex> index = ColumnIndex::Build(d);
  std::unique_lock<std::mutex> lock(column_index_mutex_);
  if (auto* found = column_indexes_.Get(fingerprint)) return *found;
  column_indexes_.Put(fingerprint, index);
  return index;
}

std::shared_ptr<const BinnedIndex> DiscoveryEngine::GetBinnedIndex(
    const Dataset& d) {
  const uint64_t fingerprint = FingerprintInputs(d);
  {
    std::unique_lock<std::mutex> lock(binned_index_mutex_);
    if (auto* found = binned_indexes_.Get(fingerprint)) return *found;
  }
  // Memory miss: try the disk tier, then build. Both happen outside the
  // lock -- quantizing a large relabeled matrix takes long enough that
  // serializing it would stall unrelated jobs. A rare race builds twice
  // and keeps one. Only exact-pack indexes live under this key; sketch
  // indexes (streamed builds) are filed separately and never returned
  // here, so cold and warm runs see identical bins.
  std::shared_ptr<const BinnedIndex> binned;
  if (disk_ != nullptr) {
    binned = disk_->LoadBinnedIndex(fingerprint,
                                    BinnedIndex::BuildKind::kExactPack,
                                    d.num_rows(), d.num_cols());
  }
  if (binned == nullptr) {
    binned = BinnedIndex::Build(*GetColumnIndex(d, fingerprint));
    if (disk_ != nullptr) disk_->StoreBinnedIndex(fingerprint, *binned);
  }
  std::unique_lock<std::mutex> lock(binned_index_mutex_);
  if (auto* found = binned_indexes_.Get(fingerprint)) return *found;
  binned_indexes_.Put(fingerprint, binned);
  return binned;
}

PersistentCacheStats DiscoveryEngine::persistent_cache_stats() const {
  return disk_ != nullptr ? disk_->stats() : PersistentCacheStats();
}

int DiscoveryEngine::column_index_cache_size() const {
  std::unique_lock<std::mutex> lock(column_index_mutex_);
  return static_cast<int>(column_indexes_.size());
}

int DiscoveryEngine::binned_index_cache_size() const {
  std::unique_lock<std::mutex> lock(binned_index_mutex_);
  return static_cast<int>(binned_indexes_.size());
}

ColumnIndexProvider DiscoveryEngine::MakeColumnIndexProvider() {
  return [this](const Dataset& d) { return GetColumnIndex(d); };
}

BinnedIndexProvider DiscoveryEngine::MakeBinnedIndexProvider() {
  return [this](const Dataset& d) { return GetBinnedIndex(d); };
}

MetamodelProvider DiscoveryEngine::MakeCachingProvider() {
  return [this](const Dataset& train, ml::MetamodelKind kind, bool tune,
                ml::TuningBudget budget, ml::SplitBackend backend,
                uint64_t /*request_seed*/) -> std::shared_ptr<const ml::Metamodel> {
    MetamodelKey key;
    key.fingerprint = FingerprintDataset(train);
    key.kind = kind;
    key.tuned = tune;
    key.budget = budget;
    key.backend = backend;
    key.seed = CanonicalSeed(config_.seed, key);
    return cache_.GetOrFit(key, [this, &train, kind, tune, budget, backend,
                                 &key] {
      // Disk tier first: a model trained by an earlier engine process (or
      // a previous run of this one) reloads instead of refitting. The
      // canonical seed in the key makes the reloaded model bit-identical
      // to what this fit would have produced.
      if (disk_ != nullptr) {
        if (std::shared_ptr<const ml::Metamodel> loaded =
                disk_->LoadMetamodel(key)) {
          return loaded;
        }
      }
      // Untuned tree metamodels reuse the engine's shared columnar index
      // (and quantization, under the histogram backend) of the training
      // data for their split search.
      std::shared_ptr<const ColumnIndex> index;
      std::shared_ptr<const BinnedIndex> binned;
      if (config_.cache_column_indexes && !tune &&
          kind != ml::MetamodelKind::kSvm) {
        index = GetColumnIndex(train);
        if (config_.cache_binned_indexes &&
            backend == ml::SplitBackend::kHistogram) {
          binned = GetBinnedIndex(train);
        }
      }
      std::shared_ptr<const ml::Metamodel> model(
          ml::FitMetamodel(kind, train, key.seed, tune, budget, index.get(),
                           binned.get(), backend));
      if (disk_ != nullptr) disk_->StoreMetamodel(key, *model);
      return model;
    });
  };
}

void DiscoveryEngine::Execute(const JobHandle& job) {
  job->MarkRunning();
  try {
    const DiscoveryRequest& req = job->request();
    if (!req.train && !req.make_train) {
      throw std::invalid_argument("discovery request has no training data");
    }
    if (req.train && req.make_train) {
      throw std::invalid_argument(
          "discovery request sets both train and make_train");
    }
    const auto spec = MethodSpec::Parse(req.method);
    if (!spec.ok()) throw std::invalid_argument(spec.status().ToString());

    Dataset generated;
    if (!req.train) generated = req.make_train();
    const Dataset& train = req.train ? *req.train : generated;

    RunOptions options = req.options;
    if (config_.cache_metamodels && spec->reds && !options.metamodel_provider) {
      options.metamodel_provider = MakeCachingProvider();
    }
    if (config_.cache_column_indexes && !options.column_index_provider) {
      options.column_index_provider = MakeColumnIndexProvider();
    }
    if (config_.cache_binned_indexes && !options.binned_index_provider) {
      options.binned_index_provider = MakeBinnedIndexProvider();
    }
    MethodOutput out = RunMethod(*spec, train, options);

    MetricSet metrics;
    metrics.restricted = out.last_box.NumRestricted();
    metrics.runtime_seconds = out.runtime_seconds;
    if (req.test) {
      metrics.pr_auc = 100.0 * PrAucOnData(out.trajectory, *req.test);
      const BoxStats stats = ComputeBoxStats(*req.test, out.last_box);
      metrics.precision = 100.0 * Precision(stats);
      metrics.recall = 100.0 * Recall(stats, req.test->TotalPositive());
      metrics.wracc = 100.0 * WRAcc(stats, req.test->num_rows(),
                                    req.test->TotalPositive());
    }
    if (req.relevant) {
      metrics.irrel = NumIrrelevantRestricted(out.last_box, *req.relevant);
    }
    store_.Record(req.cell.empty() ? req.method : req.cell, req.rep, metrics,
                  out.last_box);
    if (!req.keep_output) {
      out.trajectory.clear();
      out.trajectory.shrink_to_fit();
    }
    job->MarkDone(std::move(out), metrics);
  } catch (const std::exception& e) {
    job->MarkFailed(e.what());
  } catch (...) {
    job->MarkFailed("unknown error in discovery job");
  }
}

}  // namespace reds::engine
