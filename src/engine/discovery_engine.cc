#include "engine/discovery_engine.h"

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>
#include <thread>

#include "core/quality.h"
#include "engine/fingerprint.h"
#include "shard/coordinator.h"
#include "shard/source_spec.h"
#include "shard/worker.h"
#include "util/fingerprint.h"
#include "util/rng.h"
#include "util/simd.h"

namespace reds::engine {

namespace {

// Mixes the engine seed with the cache-key identity so every distinct
// metamodel gets its own reproducible stream, independent of which request
// triggers the fit.
uint64_t CanonicalSeed(uint64_t engine_seed, const MetamodelKey& key) {
  uint64_t stream = key.fingerprint;
  stream = DeriveSeed(stream, 0x11ULL + static_cast<uint64_t>(key.kind));
  stream = DeriveSeed(stream, 0x23ULL + (key.tuned ? 1ULL : 0ULL));
  stream = DeriveSeed(stream, 0x31ULL + static_cast<uint64_t>(key.budget));
  stream = DeriveSeed(stream, 0x41ULL + static_cast<uint64_t>(key.backend));
  // Growth fields joined the key after seeds shipped: mix them in only
  // when non-default, so every depth-wise model keeps the exact seed (and
  // therefore the exact bits) it had before leaf-wise growth existed.
  if (key.growth != ml::GrowthPolicy::kDepthWise || key.max_leaves != 0) {
    stream = DeriveSeed(stream, 0x51ULL + static_cast<uint64_t>(key.growth));
    stream = DeriveSeed(stream, 0x61ULL + static_cast<uint64_t>(key.max_leaves));
  }
  return DeriveSeed(engine_seed, stream);
}

// True while the current worker thread's job has performed cold work --
// a metamodel fit or disk load, an index build or load, a streamed ingest
// build, or a relabel-stream build. Execute() clears it at job start and
// classifies the job's latency into the warm or cold histogram at the
// end; coalesced followers never run a worker, so they are always warm.
thread_local bool t_cold_work = false;

// Sharded execution of a streamed untuned plain-PRIM request: W in-process
// workers (socketpair transport, one thread each) each ingest a
// block-stride slice of their own DatasetSource instance; the coordinator
// merges their sketch summaries into one global bin set and drives the
// shared peeling loop with one round trip per applied peel. Worker
// registries fold into the engine registry at the end, so DumpMetrics()
// reports the whole fleet.
MethodOutput RunShardedPrimOnSource(const DiscoveryRequest& req,
                                    const RunOptions& options, int block_rows,
                                    obs::MetricsRegistry* metrics) {
  const int workers = req.shard.workers;
  const auto start = std::chrono::steady_clock::now();

  std::vector<int> coordinator_fds(static_cast<size_t>(workers), -1);
  std::vector<int> worker_fds(static_cast<size_t>(workers), -1);
  const auto close_all = [&] {
    for (int& fd : coordinator_fds) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
    for (int& fd : worker_fds) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
  };
  for (int w = 0; w < workers; ++w) {
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
      close_all();
      throw std::runtime_error("sharded request: socketpair failed");
    }
    coordinator_fds[static_cast<size_t>(w)] = sv[0];
    worker_fds[static_cast<size_t>(w)] = sv[1];
  }

  std::vector<Status> worker_status(static_cast<size_t>(workers),
                                    Status::OK());
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      std::unique_ptr<DatasetSource> source = req.make_train_source();
      if (source == nullptr) {
        worker_status[static_cast<size_t>(w)] = Status::InvalidArgument(
            "make_train_source returned null in a shard worker");
        // Closing the fd unblocks the coordinator with an IoError.
        ::close(worker_fds[static_cast<size_t>(w)]);
        worker_fds[static_cast<size_t>(w)] = -1;
        return;
      }
      shard::BlockStrideSource strided(std::move(source), block_rows, workers,
                                       w);
      worker_status[static_cast<size_t>(w)] =
          shard::RunShardWorker(worker_fds[static_cast<size_t>(w)], &strided);
    });
  }

  StreamedBuildOptions build_options;
  build_options.block_rows = block_rows;
  shard::ShardCoordinator coordinator(coordinator_fds, build_options);
  Status s = coordinator.BuildGlobalBins();
  Result<PrimResult> r = Status::OK();
  if (s.ok()) {
    PrimConfig config;
    config.alpha = options.default_alpha;
    config.min_points = options.min_points;
    r = coordinator.RunPrim(config);
    s = r.ok() ? Status::OK() : r.status();
  }
  if (s.ok()) s = coordinator.CollectMetrics(metrics);
  coordinator.Shutdown();  // best effort when the protocol already failed
  for (std::thread& t : threads) t.join();
  close_all();

  if (!s.ok()) {
    throw std::runtime_error("sharded discovery failed: " + s.ToString());
  }
  for (const Status& ws : worker_status) {
    if (!ws.ok()) {
      throw std::runtime_error("shard worker failed: " + ws.ToString());
    }
  }

  // The same output shape RunMethodOnStream produces for this method.
  MethodOutput out;
  out.chosen_alpha = options.default_alpha;
  out.chosen_m = coordinator.bins().num_cols;
  out.trajectory = r->ReturnedBoxes();
  out.last_box = r->BestBox();
  out.runtime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return out;
}

}  // namespace

JobState Job::state() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return state_;
}

void Job::Wait() const {
  std::unique_lock<std::mutex> lock(mutex_);
  done_.wait(lock, [this] {
    return state_ == JobState::kDone || state_ == JobState::kFailed;
  });
}

bool Job::Finished() const {
  const JobState s = state();
  return s == JobState::kDone || s == JobState::kFailed;
}

const MethodOutput& Job::output() const {
  std::unique_lock<std::mutex> lock(mutex_);
  if (state_ != JobState::kDone) {
    throw std::logic_error("Job::output() read on a job that is not done");
  }
  return output_;
}

const MetricSet& Job::metrics() const {
  std::unique_lock<std::mutex> lock(mutex_);
  if (state_ != JobState::kDone) {
    throw std::logic_error("Job::metrics() read on a job that is not done");
  }
  return metrics_;
}

const std::string& Job::error() const {
  std::unique_lock<std::mutex> lock(mutex_);
  if (state_ != JobState::kFailed) {
    throw std::logic_error("Job::error() read on a job that has not failed");
  }
  return error_;
}

void Job::MarkRunning() {
  std::unique_lock<std::mutex> lock(mutex_);
  state_ = JobState::kRunning;
}

void Job::MarkDone(MethodOutput output, MetricSet metrics) {
  std::vector<std::function<void()>> callbacks;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    output_ = std::move(output);
    metrics_ = metrics;
    state_ = JobState::kDone;
    callbacks.swap(on_finish_);
  }
  done_.notify_all();
  for (const auto& fn : callbacks) fn();
}

void Job::MarkFailed(std::string error) {
  std::vector<std::function<void()>> callbacks;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    error_ = std::move(error);
    state_ = JobState::kFailed;
    callbacks.swap(on_finish_);
  }
  done_.notify_all();
  for (const auto& fn : callbacks) fn();
}

void Job::NotifyOnFinish(std::function<void()> fn) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (state_ != JobState::kDone && state_ != JobState::kFailed) {
      on_finish_.push_back(std::move(fn));
      return;
    }
  }
  fn();  // already finished: run on the caller, outside the lock
}

namespace {

std::string ResolveDir(const std::string& configured, const char* env_var) {
  if (!configured.empty()) return configured;
  const char* env = std::getenv(env_var);
  return env != nullptr ? std::string(env) : std::string();
}

}  // namespace

DiscoveryEngine::DiscoveryEngine(EngineConfig config)
    : config_(config),
      trace_dir_(ResolveDir(config.trace_dir, "REDS_TRACE_DIR")),
      cache_(config.metamodel_cache_capacity, &metrics_),
      column_indexes_(config.column_index_cache_capacity),
      binned_indexes_(config.binned_index_cache_capacity),
      streamed_indexes_(config.binned_index_cache_capacity),
      relabel_streams_(config.relabel_stream_cache_capacity),
      pool_(config.threads, &metrics_, "engine.pool") {
  jobs_submitted_ = metrics_.counter("engine.jobs.submitted");
  jobs_completed_ = metrics_.counter("engine.jobs.completed");
  jobs_failed_ = metrics_.counter("engine.jobs.failed");
  jobs_coalesced_ = metrics_.counter("engine.jobs.coalesced");
  inflight_leaders_ = metrics_.gauge("engine.jobs.inflight_leaders");
  job_latency_ = metrics_.histogram("engine.job.latency_ns");
  job_warm_latency_ = metrics_.histogram("engine.job.warm_latency_ns");
  job_cold_latency_ = metrics_.histogram("engine.job.cold_latency_ns");
  column_index_hits_ = metrics_.counter("cache.index.column.hits");
  column_index_misses_ = metrics_.counter("cache.index.column.misses");
  binned_index_hits_ = metrics_.counter("cache.index.binned.hits");
  binned_index_misses_ = metrics_.counter("cache.index.binned.misses");
  streamed_index_hits_ = metrics_.counter("cache.index.streamed.hits");
  streamed_index_misses_ = metrics_.counter("cache.index.streamed.misses");
  relabel_stream_hits_ = metrics_.counter("cache.relabel.hits");
  relabel_stream_misses_ = metrics_.counter("cache.relabel.misses");
  // Which kernel tier this process dispatches to (0 = scalar, 1 = AVX2);
  // surfaces the REDS_SIMD override and the host's CPU features in
  // DumpMetrics so perf numbers are attributable.
  metrics_.gauge("engine.build.simd")
      ->Set(static_cast<int64_t>(util::ActiveSimdLevel()));
  if (config.enable_persistent_cache) {
    const std::string dir = ResolveDir(config.cache_dir, "REDS_CACHE_DIR");
    if (!dir.empty()) {
      disk_ = std::make_unique<PersistentCache>(dir, config.cache_max_bytes,
                                                &metrics_);
    }
  }
  if (!trace_dir_.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(trace_dir_, ec);
    if (ec) trace_dir_.clear();  // unwritable: run untraced, don't fail jobs
  }
}

JobHandle DiscoveryEngine::Submit(DiscoveryRequest request) {
  auto job = std::make_shared<Job>(std::move(request));
  job->submit_time_ = std::chrono::steady_clock::now();
  jobs_submitted_->Add(1);
  if (!trace_dir_.empty()) {
    // Process-wide, not per-engine: a warm engine sharing the trace_dir of
    // the cold one that seeded its caches must not overwrite its files.
    static std::atomic<uint64_t> g_job_seq{0};
    const uint64_t seq = g_job_seq.fetch_add(1, std::memory_order_relaxed);
    job->trace_ = std::make_shared<obs::Trace>(
        "job-" + std::to_string(seq) + ":" + job->request().method,
        &metrics_);
  }
  if (config_.coalesce_requests && TryCoalesce(job)) return job;
  // Leader (or coalescing-ineligible) job: it owns a pool slot from here
  // until its Execute returns. Coalesced followers never touch the gauge.
  inflight_leaders_->Add(1);
  pool_.Submit([this, job] { Execute(job); });
  return job;
}

bool DiscoveryEngine::ComputeCoalesceKey(const DiscoveryRequest& req,
                                         uint64_t* key) {
  // Eligible requests are those whose MethodOutput is a pure function of
  // (training bytes, method, the options below): eagerly supplied data
  // only (factories and sources may be stateful and are invoked lazily),
  // no caller-supplied providers/hooks (theirs may differ even when ours
  // would not), and no anonymous custom sampler. test / relevant / cell /
  // rep / keep_output shape each follower's own metrics and bookkeeping,
  // not the shared output, so they stay out of the key.
  if (!req.train) return false;
  const RunOptions& o = req.options;
  if (o.metamodel_provider || o.column_index_provider ||
      o.binned_index_provider || o.streamed_relabel_lookup ||
      o.streamed_relabel_store) {
    return false;
  }
  if (o.sampler && o.sampler_id.empty()) return false;

  util::ByteWriter w;
  w.U64(FingerprintDataset(*req.train));
  w.U64(req.method.size());
  for (char c : req.method) w.U8(static_cast<uint8_t>(c));
  w.F64(o.default_alpha);
  w.I32(o.min_points);
  w.I32(o.bumping_q);
  w.I32(o.l_prim);
  w.I32(o.l_bi);
  w.I32(o.cv_folds);
  w.U8(o.tune_metamodel ? 1 : 0);
  w.U8(static_cast<uint8_t>(o.budget));
  w.U8(static_cast<uint8_t>(o.split_backend));
  w.U8(static_cast<uint8_t>(o.tree_growth));
  w.I32(o.tree_max_leaves);
  w.U8(o.sampler ? 1 : 0);
  w.U64(o.seed);
  w.U8(static_cast<uint8_t>(o.data_plan));
  w.I32(o.stream_block_rows);
  w.U64(o.sampler_id.size());
  for (char c : o.sampler_id) w.U8(static_cast<uint8_t>(c));
  *key = util::Fnv64(w.data().data(), w.size());
  return true;
}

bool DiscoveryEngine::TryCoalesce(const JobHandle& job) {
  uint64_t key = 0;
  if (!ComputeCoalesceKey(job->request(), &key)) return false;

  std::unique_lock<std::mutex> lock(coalesce_mutex_);
  const auto it = coalescing_.find(key);
  if (it != coalescing_.end()) {
    // Identical request in flight: ride its job. No pool task is ever
    // scheduled for this handle; the leader fans out on completion.
    it->second.push_back(job);
    jobs_coalesced_->Add(1);
    if (job->trace_ != nullptr) job->trace_->AddInstant("job.coalesced");
    return true;
  }
  job->coalesce_key_ = key;
  job->coalesce_leader_ = true;
  coalescing_.emplace(key, std::vector<JobHandle>());
  return false;
}

std::vector<JobHandle> DiscoveryEngine::TakeCoalesced(const JobHandle& job) {
  if (!job->coalesce_leader_) return {};
  std::unique_lock<std::mutex> lock(coalesce_mutex_);
  const auto it = coalescing_.find(job->coalesce_key_);
  if (it == coalescing_.end()) return {};
  std::vector<JobHandle> followers = std::move(it->second);
  coalescing_.erase(it);
  return followers;
}

bool DiscoveryEngine::WouldCoalesce(const DiscoveryRequest& request) const {
  if (!config_.coalesce_requests) return false;
  uint64_t key = 0;
  if (!ComputeCoalesceKey(request, &key)) return false;
  std::unique_lock<std::mutex> lock(coalesce_mutex_);
  return coalescing_.find(key) != coalescing_.end();
}

int DiscoveryEngine::inflight_leader_jobs() const {
  return static_cast<int>(inflight_leaders_->Value());
}

std::vector<JobHandle> DiscoveryEngine::SubmitBatch(
    std::vector<DiscoveryRequest> requests) {
  std::vector<JobHandle> handles;
  handles.reserve(requests.size());
  for (auto& r : requests) handles.push_back(Submit(std::move(r)));
  return handles;
}

void DiscoveryEngine::WaitAll() { pool_.Wait(); }

void DiscoveryEngine::Shutdown() { pool_.Shutdown(); }

std::shared_ptr<const ColumnIndex> DiscoveryEngine::GetColumnIndex(
    const Dataset& d) {
  return GetColumnIndex(d, FingerprintInputs(d));
}

std::shared_ptr<const ColumnIndex> DiscoveryEngine::GetColumnIndex(
    const Dataset& d, uint64_t fingerprint) {
  {
    std::unique_lock<std::mutex> lock(column_index_mutex_);
    if (auto* found = column_indexes_.Get(fingerprint)) {
      column_index_hits_->Add(1);
      return *found;
    }
  }
  column_index_misses_->Add(1);
  t_cold_work = true;
  // Build outside the lock: indexing a large relabeled matrix takes long
  // enough that serializing it would stall unrelated jobs. A rare race
  // builds twice and keeps one.
  std::shared_ptr<const ColumnIndex> index;
  {
    obs::Span span("index.build");
    index = ColumnIndex::Build(d);
  }
  std::unique_lock<std::mutex> lock(column_index_mutex_);
  if (auto* found = column_indexes_.Get(fingerprint)) return *found;
  column_indexes_.Put(fingerprint, index);
  return index;
}

std::shared_ptr<const BinnedIndex> DiscoveryEngine::GetBinnedIndex(
    const Dataset& d) {
  const uint64_t fingerprint = FingerprintInputs(d);
  {
    std::unique_lock<std::mutex> lock(binned_index_mutex_);
    if (auto* found = binned_indexes_.Get(fingerprint)) {
      binned_index_hits_->Add(1);
      return *found;
    }
  }
  binned_index_misses_->Add(1);
  t_cold_work = true;
  // Memory miss: try the disk tier, then build. Both happen outside the
  // lock -- quantizing a large relabeled matrix takes long enough that
  // serializing it would stall unrelated jobs. A rare race builds twice
  // and keeps one. Only exact-pack indexes live under this key; sketch
  // indexes (streamed builds) are filed separately and never returned
  // here, so cold and warm runs see identical bins.
  std::shared_ptr<const BinnedIndex> binned;
  if (disk_ != nullptr) {
    obs::Span span("index.load");
    binned = disk_->LoadBinnedIndex(fingerprint,
                                    BinnedIndex::BuildKind::kExactPack,
                                    d.num_rows(), d.num_cols());
  }
  if (binned == nullptr) {
    obs::Span span("index.build");
    binned = BinnedIndex::Build(*GetColumnIndex(d, fingerprint));
    if (disk_ != nullptr) disk_->StoreBinnedIndex(fingerprint, *binned);
  }
  std::unique_lock<std::mutex> lock(binned_index_mutex_);
  if (auto* found = binned_indexes_.Get(fingerprint)) return *found;
  binned_indexes_.Put(fingerprint, binned);
  return binned;
}

StreamedTrainData DiscoveryEngine::IngestSource(DatasetSource* source) {
  obs::Span ingest_span("ingest.source");
  // Pass 1 -- identity: incremental fingerprints over the chunk stream
  // (the same byte layout the in-memory path hashes, so eager and
  // streamed requests share cache keys by construction). The labels ride
  // along: O(N) doubles, needed by every consumer of the stream.
  const Status reset = source->Reset();
  if (!reset.ok()) {
    throw std::runtime_error("streamed request source failed to reset: " +
                             reset.ToString());
  }
  const int cols = source->num_cols();
  util::DatasetHasher input_hasher(util::DatasetHasher::Scope::kInputs, cols);
  util::DatasetHasher full_hasher(util::DatasetHasher::Scope::kFull, cols);
  StreamedTrainData data;
  auto y = std::make_shared<std::vector<double>>();
  const int64_t hint = source->num_rows_hint();
  if (hint > 0) y->reserve(static_cast<size_t>(hint));
  {
    obs::Span span("ingest.fingerprint");
    for (;;) {
      Result<RowBlock> block = source->NextBlock(config_.stream_block_rows);
      if (!block.ok()) {
        throw std::runtime_error("streamed request source failed: " +
                                 block.status().ToString());
      }
      if (block->empty()) break;
      input_hasher.AddRows(block->x.data(), nullptr, block->num_rows());
      full_hasher.AddRows(block->x.data(), block->y, block->num_rows());
      y->insert(y->end(), block->y, block->y + block->num_rows());
    }
  }
  if (y->empty()) {
    throw std::invalid_argument("streamed request source yielded no rows");
  }
  data.y = std::move(y);
  data.input_fingerprint = input_hasher.Finalize();
  data.fingerprint = full_hasher.Finalize();
  const int rows = static_cast<int>(data.y->size());

  // Index: memory LRU, then the persistent tier, then a cold build.
  {
    std::unique_lock<std::mutex> lock(streamed_index_mutex_);
    if (auto* found = streamed_indexes_.Get(data.input_fingerprint)) {
      streamed_index_hits_->Add(1);
      data.index = *found;
      return data;
    }
  }
  streamed_index_misses_->Add(1);  // LRU miss; the disk tier counts its own
  t_cold_work = true;
  std::shared_ptr<const BinnedIndex> index;
  if (disk_ != nullptr) {
    obs::Span span("index.load");
    index = disk_->LoadStreamedIndex(data.input_fingerprint, rows, cols);
  }
  if (index == nullptr) {
    // The cold build: Chrome traces show its two passes as
    // index.sketch_pass / index.code_pass children (emitted inside
    // BuildStreamed), all under this index.build span -- the one the
    // warm-trace test asserts is absent on a warm engine.
    obs::Span span("index.build");
    StreamedBuildOptions options;
    options.block_rows = config_.stream_block_rows;
    Result<StreamedDataset> built =
        BinnedIndex::BuildStreamed(source, options);
    if (!built.ok()) {
      throw std::runtime_error("streamed index build failed: " +
                               built.status().ToString());
    }
    // A source that does not replay the identical rows poisons every
    // cache tier keyed by its first pass; refuse it loudly.
    if (built->input_fingerprint != data.input_fingerprint ||
        built->fingerprint != data.fingerprint) {
      throw std::invalid_argument(
          "streamed request source is not deterministic across Reset()");
    }
    index = built->index;
    if (disk_ != nullptr) {
      disk_->StoreStreamedIndex(data.input_fingerprint, *index);
    }
  }
  std::unique_lock<std::mutex> lock(streamed_index_mutex_);
  if (auto* found = streamed_indexes_.Get(data.input_fingerprint)) {
    data.index = *found;
    return data;
  }
  streamed_indexes_.Put(data.input_fingerprint, index);
  data.index = std::move(index);
  return data;
}

PersistentCacheStats DiscoveryEngine::persistent_cache_stats() const {
  return disk_ != nullptr ? disk_->stats() : PersistentCacheStats();
}

int DiscoveryEngine::column_index_cache_size() const {
  std::unique_lock<std::mutex> lock(column_index_mutex_);
  return static_cast<int>(column_indexes_.size());
}

int DiscoveryEngine::binned_index_cache_size() const {
  std::unique_lock<std::mutex> lock(binned_index_mutex_);
  return static_cast<int>(binned_indexes_.size());
}

int DiscoveryEngine::streamed_index_cache_size() const {
  std::unique_lock<std::mutex> lock(streamed_index_mutex_);
  return static_cast<int>(streamed_indexes_.size());
}

int DiscoveryEngine::relabel_stream_cache_size() const {
  std::unique_lock<std::mutex> lock(relabel_stream_mutex_);
  return static_cast<int>(relabel_streams_.size());
}

void DiscoveryEngine::InstallRelabelStreamHooks(RunOptions* options) {
  // The method layer's key covers the request recipe (training bytes,
  // metamodel recipe, seed, stream length, block size, sampler identity)
  // but not how this engine actually labels: with cache_metamodels on, the
  // metamodel is seeded canonically from config_.seed, not from the
  // request seed, so the labels depend on both knobs. Fold them in so two
  // engines configured differently never share an entry.
  const uint64_t engine_salt =
      DeriveSeed(config_.seed, config_.cache_metamodels ? 1 : 2);
  const auto fold = [engine_salt](uint64_t key) {
    return DeriveSeed(engine_salt, key);
  };
  options->streamed_relabel_lookup =
      [this, fold](uint64_t key, int expect_rows,
                   int expect_cols) -> std::shared_ptr<const StreamedDataset> {
    const uint64_t k = fold(key);
    {
      std::unique_lock<std::mutex> lock(relabel_stream_mutex_);
      if (auto* found = relabel_streams_.Get(k)) {
        relabel_stream_hits_->Add(1);
        return *found;
      }
    }
    relabel_stream_misses_->Add(1);  // LRU miss; the disk tier counts its own
    // Either a disk load or a fresh stream build follows -- cold work both.
    t_cold_work = true;
    if (disk_ == nullptr) return nullptr;
    std::shared_ptr<const StreamedDataset> data;
    {
      obs::Span span("relabel.load");
      data = disk_->LoadRelabelStream(k, expect_rows, expect_cols);
    }
    if (data != nullptr) {
      std::unique_lock<std::mutex> lock(relabel_stream_mutex_);
      relabel_streams_.Put(k, data);
    }
    return data;
  };
  options->streamed_relabel_store =
      [this, fold](uint64_t key, std::shared_ptr<const StreamedDataset> data) {
        const uint64_t k = fold(key);
        {
          std::unique_lock<std::mutex> lock(relabel_stream_mutex_);
          relabel_streams_.Put(k, data);
        }
        if (disk_ != nullptr) disk_->StoreRelabelStream(k, *data);
      };
}

ColumnIndexProvider DiscoveryEngine::MakeColumnIndexProvider() {
  return [this](const Dataset& d) { return GetColumnIndex(d); };
}

BinnedIndexProvider DiscoveryEngine::MakeBinnedIndexProvider() {
  return [this](const Dataset& d) { return GetBinnedIndex(d); };
}

MetamodelProvider DiscoveryEngine::MakeCachingProvider() {
  return [this](const Dataset& train, ml::MetamodelKind kind, bool tune,
                ml::TuningBudget budget, ml::SplitBackend backend,
                ml::GrowthPolicy growth, int max_leaves,
                uint64_t /*request_seed*/) -> std::shared_ptr<const ml::Metamodel> {
    MetamodelKey key;
    key.fingerprint = FingerprintDataset(train);
    key.kind = kind;
    key.tuned = tune;
    key.budget = budget;
    key.backend = backend;
    key.growth = growth;
    key.max_leaves = max_leaves;
    key.seed = CanonicalSeed(config_.seed, key);
    return cache_.GetOrFit(key, [this, &train, kind, tune, budget, backend,
                                 growth, max_leaves, &key] {
      // Fit or disk load, either way this job did real metamodel work.
      t_cold_work = true;
      // Disk tier first: a model trained by an earlier engine process (or
      // a previous run of this one) reloads instead of refitting. The
      // canonical seed in the key makes the reloaded model bit-identical
      // to what this fit would have produced.
      if (disk_ != nullptr) {
        obs::Span span("metamodel.load");
        if (std::shared_ptr<const ml::Metamodel> loaded =
                disk_->LoadMetamodel(key)) {
          return loaded;
        }
      }
      // Tree metamodels reuse the engine's shared columnar index (and
      // quantization, under the histogram backend) of the training data:
      // untuned fits feed them straight to the split search, tuned fits
      // stream their CV folds as row views over them (ml/tuning.h) --
      // identical results to privately built views either way.
      std::shared_ptr<const ColumnIndex> index;
      std::shared_ptr<const BinnedIndex> binned;
      if (config_.cache_column_indexes && kind != ml::MetamodelKind::kSvm) {
        index = GetColumnIndex(train);
        if (config_.cache_binned_indexes &&
            backend == ml::SplitBackend::kHistogram) {
          binned = GetBinnedIndex(train);
        }
      }
      obs::Span span("metamodel.fit");
      std::shared_ptr<const ml::Metamodel> model(
          ml::FitMetamodel(kind, train, key.seed, tune, budget, index.get(),
                           binned.get(), backend, growth, max_leaves));
      if (disk_ != nullptr) disk_->StoreMetamodel(key, *model);
      return model;
    });
  };
}

namespace {

// Trace names ("job-0:RPxp") become file names; keep them portable.
std::string SanitizeFileName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                    c == '.';
    if (!ok) c = '-';
  }
  return out;
}

// Metric evaluation of one request against a finished MethodOutput. The
// output is request-key-shaped only; test data and relevance masks are
// follower-local, so each coalesced handle evaluates its own.
MetricSet EvaluateRequest(const DiscoveryRequest& req,
                          const MethodOutput& out) {
  obs::Span span("validate");
  MetricSet metrics;
  metrics.restricted = out.last_box.NumRestricted();
  metrics.runtime_seconds = out.runtime_seconds;
  if (req.test) {
    metrics.pr_auc = 100.0 * PrAucOnData(out.trajectory, *req.test);
    const BoxStats stats = ComputeBoxStats(*req.test, out.last_box);
    metrics.precision = 100.0 * Precision(stats);
    metrics.recall = 100.0 * Recall(stats, req.test->TotalPositive());
    metrics.wracc = 100.0 * WRAcc(stats, req.test->num_rows(),
                                  req.test->TotalPositive());
  }
  if (req.relevant) {
    metrics.irrel = NumIrrelevantRestricted(out.last_box, *req.relevant);
  }
  return metrics;
}

}  // namespace

void DiscoveryEngine::Execute(const JobHandle& job) {
  job->MarkRunning();
  t_cold_work = false;
  // Bind the job's trace (when tracing is on) to this worker thread, so
  // every Span opened anywhere below -- method dispatch, REDS, PRIM,
  // index builds, cache fits -- lands in it without signature changes.
  obs::TraceBinding binding(job->trace_.get());
  const auto job_start = std::chrono::steady_clock::now();
  std::vector<JobHandle> followers;
  // Coalesced followers never run a worker: they complete here, on the
  // leader's thread, from the leader's output. Warm by definition, and
  // their latency runs from their own submit time.
  const auto follower_latency = [this](const JobHandle& f) {
    const uint64_t ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - f->submit_time_)
            .count());
    job_latency_->Observe(ns);
    job_warm_latency_->Observe(ns);
  };
  try {
    obs::Span root_span("job");
    const DiscoveryRequest& req = job->request();
    const int sources_set = (req.train ? 1 : 0) + (req.make_train ? 1 : 0) +
                            (req.make_train_source ? 1 : 0);
    if (sources_set == 0) {
      throw std::invalid_argument("discovery request has no training data");
    }
    if (sources_set > 1) {
      throw std::invalid_argument(
          "discovery request sets more than one of train / make_train / "
          "make_train_source");
    }
    const auto spec = MethodSpec::Parse(req.method);
    if (!spec.ok()) throw std::invalid_argument(spec.status().ToString());

    // The request's RunOptions (including stream_block_rows, which bounds
    // the job's relabeled-double residency) pass through untouched;
    // EngineConfig::stream_block_rows governs only IngestSource, whose
    // results land in the shared cache tiers and must be
    // engine-consistent.
    RunOptions options = req.options;
    if (config_.cache_metamodels && spec->reds && !options.metamodel_provider) {
      options.metamodel_provider = MakeCachingProvider();
    }
    if (config_.cache_column_indexes && !options.column_index_provider) {
      options.column_index_provider = MakeColumnIndexProvider();
    }
    if (config_.cache_binned_indexes && !options.binned_index_provider) {
      options.binned_index_provider = MakeBinnedIndexProvider();
    }
    if (config_.cache_relabel_streams && spec->reds &&
        !options.streamed_relabel_lookup && !options.streamed_relabel_store) {
      InstallRelabelStreamHooks(&options);
    }

    MethodOutput out;
    Dataset generated;
    if (req.make_train_source) {
      std::unique_ptr<DatasetSource> source = req.make_train_source();
      if (source == nullptr) {
        throw std::invalid_argument("make_train_source returned null");
      }
      if (!spec->reds && !spec->tuned &&
          spec->family == MethodSpec::Family::kPrim) {
        if (req.shard.workers > 1) {
          // Sharded: the source's blocks fan out across an in-process
          // worker fleet; no single thread ever holds the stream.
          obs::Span span("shard.discovery");
          source.reset();  // workers pull their own instances
          out = RunShardedPrimOnSource(req, options,
                                       config_.stream_block_rows, &metrics_);
          t_cold_work = true;  // a fleet run never serves from a cache
        } else {
          // Fully streamed: the double matrix never materializes. Warm
          // engines serve the index from the LRU / persistent tiers.
          const StreamedTrainData data = IngestSource(source.get());
          out = RunMethodOnStream(*spec, *data.index, *data.y, options);
        }
      } else {
        // Tuning folds, metamodel training, and the BI/bumping scans need
        // raw doubles: materialize the stream (one pass, the original
        // sample -- REDS's L relabeled points still stream inside
        // RunMethod). Fingerprints of the materialized data agree with
        // the streamed hashes by construction, so the metamodel and index
        // tiers warm across ingestion paths.
        {
          obs::Span span("ingest.materialize");
          Result<Dataset> all =
              ReadAll(source.get(), config_.stream_block_rows);
          if (!all.ok()) {
            throw std::runtime_error("streamed request source failed: " +
                                     all.status().ToString());
          }
          generated = *std::move(all);
        }
        out = RunMethod(*spec, generated, options);
      }
    } else {
      if (!req.train) generated = req.make_train();
      const Dataset& train = req.train ? *req.train : generated;
      out = RunMethod(*spec, train, options);
    }

    // Close the coalesce window before evaluation: any identical request
    // arriving from here on starts fresh (and completes instantly off the
    // now-warm caches) instead of attaching to an almost-finished leader.
    followers = TakeCoalesced(job);

    const MetricSet metrics = EvaluateRequest(req, out);
    store_.Record(req.cell.empty() ? req.method : req.cell, req.rep, metrics,
                  out.last_box);
    // Fan the leader's output out to every coalesced follower. The method
    // output is request-key-shaped (it depends only on what the coalesce
    // key hashes), so a copy is correct for all of them; metrics, store
    // cell, and keep_output remain per-follower.
    for (const JobHandle& f : followers) {
      f->MarkRunning();
      const DiscoveryRequest& freq = f->request();
      const MetricSet fm = EvaluateRequest(freq, out);
      store_.Record(freq.cell.empty() ? freq.method : freq.cell, freq.rep,
                    fm, out.last_box);
      MethodOutput fout = out;
      if (!freq.keep_output) {
        fout.trajectory.clear();
        fout.trajectory.shrink_to_fit();
      }
      f->MarkDone(std::move(fout), fm);
      jobs_completed_->Add(1);
      follower_latency(f);
    }
    if (!req.keep_output) {
      out.trajectory.clear();
      out.trajectory.shrink_to_fit();
    }
    job->MarkDone(std::move(out), metrics);
    jobs_completed_->Add(1);
  } catch (const std::exception& e) {
    job->MarkFailed(e.what());
    jobs_failed_->Add(1);
  } catch (...) {
    job->MarkFailed("unknown error in discovery job");
    jobs_failed_->Add(1);
  }
  // A leader that threw before (or while) fanning out takes its followers
  // down with it: re-drain the window (idempotent; a no-op after the
  // success path above) and fail whatever never completed.
  if (job->state() == JobState::kFailed) {
    for (const JobHandle& f : TakeCoalesced(job)) followers.push_back(f);
    for (const JobHandle& f : followers) {
      if (f->Finished()) continue;
      f->MarkFailed("coalesced leader job failed: " + job->error());
      jobs_failed_->Add(1);
      follower_latency(f);
    }
  }
  const uint64_t leader_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - job_start)
          .count());
  job_latency_->Observe(leader_ns);
  (t_cold_work ? job_cold_latency_ : job_warm_latency_)->Observe(leader_ns);
  inflight_leaders_->Add(-1);  // the pool slot is free again
  if (!trace_dir_.empty()) {
    // The root span has closed; persist the finished traces (followers
    // carry only the job.coalesced marker -- the proof they did no work).
    // Best-effort: a full disk must not fail the job.
    if (job->trace_ != nullptr) {
      job->trace_->WriteFile(trace_dir_ + "/" +
                             SanitizeFileName(job->trace_->name()) +
                             ".trace.json");
    }
    for (const JobHandle& f : followers) {
      if (f->trace_ == nullptr) continue;
      f->trace_->WriteFile(trace_dir_ + "/" +
                           SanitizeFileName(f->trace_->name()) +
                           ".trace.json");
    }
  }
}

}  // namespace reds::engine
