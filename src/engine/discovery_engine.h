// DiscoveryEngine: a batched scenario-discovery service. Clients submit
// DiscoveryRequests (dataset + method name + options); the engine executes
// them asynchronously on a shared thread pool and returns job handles for
// status polling and result retrieval. REDS requests obtain their metamodel
// through a shared cross-request cache, so a batch running many variants
// over the same data trains each (data, kind, tuning) metamodel exactly
// once. Completed metrics accumulate in a ResultStore for table/CSV export.
#ifndef REDS_ENGINE_DISCOVERY_ENGINE_H_
#define REDS_ENGINE_DISCOVERY_ENGINE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/binned_index.h"
#include "core/column_index.h"
#include "core/dataset_source.h"
#include "core/method.h"
#include "engine/metamodel_cache.h"
#include "engine/persistent_cache.h"
#include "engine/result_store.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/lru_map.h"
#include "util/thread_pool.h"

namespace reds::engine {

struct EngineConfig {
  int threads = 0;              // 0: hardware concurrency
  bool cache_metamodels = true;
  /// Single-flight job coalescing: identical in-flight requests (same
  /// training bytes, method, and result-shaping options) attach to the
  /// first one's job instead of taking a worker -- N concurrent identical
  /// submissions perform exactly one fit/index build/discovery, and the
  /// leader fans its output out to every handle. Followers still get their
  /// own metrics (test data, relevance masks, result-store cells, and
  /// keep_output are follower-local). Requests with custom providers/hooks
  /// or an unnamed custom sampler are never coalesced. Counted in
  /// `engine.jobs.coalesced`.
  bool coalesce_requests = true;
  /// Max metamodels kept resident (LRU eviction beyond it); 0 = unbounded.
  size_t metamodel_cache_capacity = 128;
  /// Shared per-dataset ColumnIndex cache: a batch of method variants over
  /// the same inputs builds the columnar index (column copies + sorted
  /// permutations) once. Keyed by the input-only fingerprint.
  bool cache_column_indexes = true;
  size_t column_index_cache_capacity = 32;  // LRU bound; 0 = unbounded
  /// Shared per-dataset BinnedIndex cache (the quantized data plane):
  /// binned PRIM peeling and histogram tree fits over the same inputs
  /// quantize once. Keyed by the same input-only fingerprint.
  bool cache_binned_indexes = true;
  size_t binned_index_cache_capacity = 32;  // LRU bound; 0 = unbounded
  /// Shared relabel-stream cache: the finished product of a streamed REDS
  /// relabeling (quantized index + O(L) labels), keyed by everything that
  /// shapes it (training bytes, metamodel recipe, seed, stream length,
  /// block size) folded with the engine seed. A hit serves the job with
  /// zero labeling passes and zero code rebuilds; entries persist to the
  /// disk tier when it is active, so a warm engine process skips them too.
  bool cache_relabel_streams = true;
  size_t relabel_stream_cache_capacity = 8;  // LRU bound; 0 = unbounded
  /// Root seed for the canonical metamodel fits. The engine re-seeds each
  /// metamodel from (this seed, cache key) instead of the per-request seed,
  /// so results are bit-identical whether a request hits or misses the
  /// cache, and independent of scheduling order and thread count.
  uint64_t seed = 42;
  /// Directory of the persistent cache tier, shared across engine
  /// processes: BinnedIndexes and trained metamodels are serialized here
  /// under the dataset fingerprint, so a warm engine (or a second process)
  /// skips quantization and training. Empty: the REDS_CACHE_DIR
  /// environment variable is consulted; still empty disables the tier.
  std::string cache_dir;
  /// Master switch for the disk tier. Set false to guarantee a
  /// self-contained engine regardless of cache_dir or the environment --
  /// e.g. tests and benchmarks that must measure real fits, not warm
  /// loads from whatever a developer's REDS_CACHE_DIR holds.
  bool enable_persistent_cache = true;
  /// Byte budget of the disk tier (0 = unlimited). When a store pushes the
  /// cache directory past this cap, the oldest entries by modification
  /// time are evicted until it fits again (counted in
  /// persistent_cache_stats().evictions).
  uint64_t cache_max_bytes = 0;
  /// Directory for per-job Chrome trace-event JSON files. Empty: the
  /// REDS_TRACE_DIR environment variable is consulted; still empty
  /// disables tracing (jobs carry no Trace and pay nothing). When active,
  /// every job records a span tree of its pipeline stages -- ingest,
  /// index build/load, metamodel fit vs cache hit, relabel stream,
  /// tuning, peel/paste, validation -- written as
  /// `<trace_dir>/job-<seq>-<method>.trace.json`, loadable in
  /// chrome://tracing or
  /// Perfetto, and also reachable via Job::trace().
  std::string trace_dir;
  /// Rows per block when the engine itself ingests a DatasetSource
  /// request (IngestSource), whose indexes land in the shared cache
  /// tiers and must be engine-consistent. Part of the sketch-binned
  /// result's identity: change it together with a fresh cache_dir, or
  /// warm streamed indexes may differ from a cold rebuild on
  /// beyond-bin-budget columns. Per-request streaming inside RunMethod
  /// (the REDS relabeled data, which is never cached) is governed by the
  /// request's own RunOptions::stream_block_rows instead.
  int stream_block_rows = 8192;
};

/// Sharded execution plan for a streamed request. With workers > 1, the
/// engine partitions the source's blocks across that many in-process shard
/// workers (each pulls its own DatasetSource from make_train_source behind
/// a block-stride filter) and runs one discovery over the union via the
/// shard coordinator: global bins from merged quantile sketches, one
/// round trip per applied PRIM peel, per-worker metrics folded into the
/// engine registry. Applies to untuned plain-PRIM streamed requests (the
/// path that never materializes the matrix); other methods ignore it.
/// Boxes are bit-identical to the single-process streamed run in the
/// exact-pack regime. Sharded requests are never coalesced.
struct ShardPlan {
  int workers = 0;  // <= 1: single-process streaming
};

/// One unit of work: run `method` on `train` (or on the dataset produced by
/// `make_train`), optionally evaluating the discovered scenario on `test`.
struct DiscoveryRequest {
  /// Training data. Exactly one of `train` / `make_train` /
  /// `make_train_source` must be set: `make_train` is invoked lazily on the
  /// worker thread, keeping peak memory bounded for large matrices.
  /// Factories must be deterministic -- requests producing bitwise-equal
  /// datasets share metamodel cache entries.
  std::shared_ptr<const Dataset> train;
  std::function<Dataset()> make_train;
  /// Streaming alternative: yields a fresh DatasetSource over the training
  /// data, invoked lazily on the worker thread. The engine ingests it
  /// through the streaming data plane -- incremental util::DatasetHasher
  /// fingerprints, BinnedIndex lookup through the in-memory LRU and the
  /// persistent tier, BuildStreamed only on a cold miss -- so warm engines
  /// index and train nothing. Untuned plain PRIM runs entirely on the
  /// quantized stream (the double matrix never materializes); every other
  /// method materializes the source with ReadAll (tuning folds, metamodel
  /// training and BI/bumping scans need raw doubles) and then follows its
  /// usual path, REDS + PRIM still streaming its relabeled points. The
  /// source must be deterministic across Reset() passes; its fingerprints
  /// agree with the in-memory path's by construction, so eager, lazy, and
  /// streamed requests over bitwise-equal data share every cache tier.
  std::function<std::unique_ptr<DatasetSource>()> make_train_source;

  /// Sharded execution of a make_train_source request (see ShardPlan).
  ShardPlan shard;

  std::string method;  // MethodSpec grammar, e.g. "Pc", "RPxp", "RBIcxp"
  RunOptions options;

  /// When false, the raw MethodOutput (trajectory boxes) is discarded after
  /// metric evaluation; only the result store keeps the metrics + last box.
  /// Big experiment matrices set this to bound memory.
  bool keep_output = true;

  /// Optional independent test data; when set, the job computes the full
  /// MetricSet (PR AUC, precision, recall, WRAcc) on it.
  std::shared_ptr<const Dataset> test;
  /// Optional ground-truth relevance mask for the #irrel metric.
  std::shared_ptr<const std::vector<bool>> relevant;

  /// Result-store cell this job records into (defaults to the method name).
  std::string cell;
  int rep = 0;  // repetition slot within the cell
};

enum class JobState { kQueued, kRunning, kDone, kFailed };

/// Handle to one submitted request. Thread-safe; Wait() blocks until the
/// job reaches kDone or kFailed.
class Job {
 public:
  explicit Job(DiscoveryRequest request) : request_(std::move(request)) {}

  JobState state() const;
  void Wait() const;
  bool Finished() const;

  /// The method's raw output (valid once state() == kDone).
  const MethodOutput& output() const;

  /// Evaluated metrics; PR AUC etc. are meaningful only when the request
  /// carried test data (valid once state() == kDone).
  const MetricSet& metrics() const;

  /// Failure description (valid once state() == kFailed).
  const std::string& error() const;

  const DiscoveryRequest& request() const { return request_; }

  /// The job's pipeline trace, or null when the engine runs without a
  /// trace_dir. Stable (and complete) once Finished().
  const obs::Trace* trace() const { return trace_.get(); }

  /// Registers `fn` to run exactly once when the job reaches kDone or
  /// kFailed -- immediately, on the calling thread, when it already has;
  /// otherwise on whichever worker thread completes it (for coalesced
  /// followers, the leader's). The net service's completion fan-in: the
  /// callback writes a wakeup byte, so keep it cheap and never let it
  /// block or re-enter the engine.
  void NotifyOnFinish(std::function<void()> fn);

 private:
  friend class DiscoveryEngine;

  void MarkRunning();
  void MarkDone(MethodOutput output, MetricSet metrics);
  void MarkFailed(std::string error);

  DiscoveryRequest request_;
  std::shared_ptr<obs::Trace> trace_;  // set by the engine before running
  // Coalescing bookkeeping, written by the engine at submit time only:
  // leaders own an entry in the engine's in-flight map under
  // coalesce_key_; followers never reach a worker thread at all.
  std::chrono::steady_clock::time_point submit_time_{};
  uint64_t coalesce_key_ = 0;
  bool coalesce_leader_ = false;
  mutable std::mutex mutex_;
  mutable std::condition_variable done_;
  JobState state_ = JobState::kQueued;
  MethodOutput output_;
  MetricSet metrics_;
  std::string error_;
  std::vector<std::function<void()>> on_finish_;  // drained at completion
};

using JobHandle = std::shared_ptr<Job>;

/// What streamed ingestion of a training source yields: the quantized
/// index (with its own permutation), the labels, and both fingerprints --
/// the dataset's identity in every cache tier -- computed incrementally
/// from the chunk stream.
struct StreamedTrainData {
  std::shared_ptr<const BinnedIndex> index;
  std::shared_ptr<const std::vector<double>> y;
  uint64_t input_fingerprint = 0;  // == engine::FingerprintInputs
  uint64_t fingerprint = 0;        // == engine::FingerprintDataset
};

class DiscoveryEngine {
 public:
  explicit DiscoveryEngine(EngineConfig config = {});

  DiscoveryEngine(const DiscoveryEngine&) = delete;
  DiscoveryEngine& operator=(const DiscoveryEngine&) = delete;

  /// Enqueues one request; returns immediately.
  JobHandle Submit(DiscoveryRequest request);

  /// Enqueues a batch; handles are in request order.
  std::vector<JobHandle> SubmitBatch(std::vector<DiscoveryRequest> requests);

  /// Blocks until every submitted job has finished.
  void WaitAll();

  /// Drains the queue and joins/releases the worker pool. The engine stays
  /// readable (results, cache statistics) but accepts no further Submits.
  /// Idempotent; call when a batch owner outlives its engine use so idle
  /// workers do not linger.
  void Shutdown();

  ResultStore& results() { return store_; }
  const ResultStore& results() const { return store_; }
  const MetamodelCache& metamodel_cache() const { return cache_; }

  /// Drops all cached metamodels (fit/hit counters are preserved). Call
  /// after a batch completes when the engine outlives it; finished
  /// one-shot matrices otherwise keep every fitted model resident.
  void ClearMetamodelCache() { cache_.Clear(); }
  const EngineConfig& config() const { return config_; }
  int threads() const { return pool_.num_threads(); }

  /// Jobs currently holding (or queued for) a worker-pool slot: every
  /// scheduled leader and non-coalescible job from Submit until its
  /// Execute returns. Coalesced followers never appear -- they ride their
  /// leader's slot -- which makes this the admission-control signal for
  /// the net front end: a coalesced burst of N admits with one slot.
  /// Mirrored in the `engine.jobs.inflight_leaders` gauge.
  int inflight_leader_jobs() const;

  /// True when an identical coalescing-eligible request is in flight
  /// right now, i.e. submitting `request` would attach it to a leader
  /// instead of taking a pool slot. Advisory: the window can close
  /// between this call and Submit (the request then becomes a fresh
  /// leader against warm caches), so callers must treat it as a hint --
  /// the net service uses it to exempt followers from queue-depth caps.
  bool WouldCoalesce(const DiscoveryRequest& request) const;

  /// Number of distinct column indexes currently cached.
  int column_index_cache_size() const;

  /// Number of distinct binned indexes currently cached.
  int binned_index_cache_size() const;

  /// Number of distinct streamed-build indexes currently cached.
  int streamed_index_cache_size() const;

  /// Number of distinct streamed REDS relabelings currently cached.
  int relabel_stream_cache_size() const;

  /// Ingests a training source through the streaming data plane: one
  /// hashing pass for the fingerprints and labels, then the index from the
  /// in-memory LRU, the persistent tier, or (cold) a BuildStreamed over
  /// the source. Warm calls touch the source exactly once and build
  /// nothing. Throws on undrainable or non-deterministic sources.
  StreamedTrainData IngestSource(DatasetSource* source);

  /// The engine's shared per-dataset index (building and caching it on
  /// demand); also exposed to jobs through RunOptions.
  std::shared_ptr<const ColumnIndex> GetColumnIndex(const Dataset& d);

  /// The engine's shared per-dataset quantization (derived from the cached
  /// ColumnIndex on demand, or reloaded from the persistent tier); also
  /// exposed to jobs through RunOptions.
  std::shared_ptr<const BinnedIndex> GetBinnedIndex(const Dataset& d);

  /// True when the on-disk cache tier is active (EngineConfig::cache_dir or
  /// REDS_CACHE_DIR resolved to a directory).
  bool persistent_cache_enabled() const { return disk_ != nullptr; }

  /// Counters of the disk tier; all zero when disabled. model_hits > 0
  /// proves a metamodel was reloaded instead of trained; index_hits > 0
  /// proves an index build was skipped.
  PersistentCacheStats persistent_cache_stats() const;

  /// The engine-wide metrics registry: every cache tier, the worker pool,
  /// job counters/latency, and per-stage span histograms report here.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// One-page export of every metric: stable JSON (default) or Prometheus
  /// text exposition.
  std::string DumpMetrics(
      obs::ExportFormat format = obs::ExportFormat::kJson) const {
    return metrics_.Dump(format);
  }

  /// Directory per-job traces are written to; empty when tracing is off.
  const std::string& trace_dir() const { return trace_dir_; }

 private:
  void Execute(const JobHandle& job);
  /// The single-flight identity of an eligible request (see TryCoalesce
  /// for the eligibility rules); false when the request can never coalesce.
  static bool ComputeCoalesceKey(const DiscoveryRequest& request,
                                 uint64_t* key);
  /// Attaches `job` to an identical in-flight leader (true: the caller
  /// must not schedule it) or registers it as the new leader of its key
  /// (false: schedule normally). False for coalescing-ineligible requests.
  bool TryCoalesce(const JobHandle& job);
  /// Closes the leader's coalesce window and returns every follower that
  /// attached; idempotent (second call returns nothing).
  std::vector<JobHandle> TakeCoalesced(const JobHandle& job);
  MetamodelProvider MakeCachingProvider();
  ColumnIndexProvider MakeColumnIndexProvider();
  BinnedIndexProvider MakeBinnedIndexProvider();
  /// Installs streamed_relabel_lookup/store on `options`, closing over the
  /// engine's relabel-stream LRU and disk tier.
  void InstallRelabelStreamHooks(RunOptions* options);
  std::shared_ptr<const ColumnIndex> GetColumnIndex(const Dataset& d,
                                                    uint64_t fingerprint);

  EngineConfig config_;
  // First member: every other subsystem (caches, pool) holds pointers into
  // this registry, so it must outlive them all.
  obs::MetricsRegistry metrics_;
  std::string trace_dir_;  // resolved from config/env; empty = tracing off
  // Job/engine-level metrics, resolved once at construction.
  obs::Counter* jobs_submitted_ = nullptr;
  obs::Counter* jobs_completed_ = nullptr;
  obs::Counter* jobs_failed_ = nullptr;
  obs::Counter* jobs_coalesced_ = nullptr;  // followers attached to a leader
  obs::Gauge* inflight_leaders_ = nullptr;  // pool-slot holders right now
  obs::Histogram* job_latency_ = nullptr;  // ns, per finished job
  // Warm/cold split of job latency: a job is cold when its worker thread
  // performed any cold work (metamodel fit or disk load, index build or
  // load, streamed ingest build, relabel-stream build); everything served
  // from in-memory caches -- and every coalesced follower -- lands in the
  // warm series, so warm p50/p99 is scrapeable on its own.
  obs::Histogram* job_warm_latency_ = nullptr;
  obs::Histogram* job_cold_latency_ = nullptr;
  obs::Counter* column_index_hits_ = nullptr;
  obs::Counter* column_index_misses_ = nullptr;
  obs::Counter* binned_index_hits_ = nullptr;
  obs::Counter* binned_index_misses_ = nullptr;
  obs::Counter* streamed_index_hits_ = nullptr;
  obs::Counter* streamed_index_misses_ = nullptr;
  obs::Counter* relabel_stream_hits_ = nullptr;
  obs::Counter* relabel_stream_misses_ = nullptr;
  MetamodelCache cache_;
  std::unique_ptr<PersistentCache> disk_;  // null: tier disabled
  mutable std::mutex column_index_mutex_;
  LruMap<uint64_t, std::shared_ptr<const ColumnIndex>> column_indexes_;
  mutable std::mutex binned_index_mutex_;
  LruMap<uint64_t, std::shared_ptr<const BinnedIndex>> binned_indexes_;
  // Streamed-build indexes, keyed by input fingerprint. A separate map
  // from binned_indexes_: beyond the bin budget the two packings differ,
  // and streamed requests must always see streamed bins (warm == cold).
  mutable std::mutex streamed_index_mutex_;
  LruMap<uint64_t, std::shared_ptr<const BinnedIndex>> streamed_indexes_;
  // Finished streamed REDS relabelings, keyed by the engine-folded relabel
  // cache key (see InstallRelabelStreamHooks). Entries share their index's
  // bytes with nothing else: the relabeled stream is request-recipe-keyed,
  // not dataset-keyed.
  mutable std::mutex relabel_stream_mutex_;
  LruMap<uint64_t, std::shared_ptr<const StreamedDataset>> relabel_streams_;
  // Single-flight request coalescing: one entry per in-flight leader,
  // holding the followers that attached while it ran (mirrors the
  // metamodel cache's in_flight_ map, at job granularity).
  mutable std::mutex coalesce_mutex_;
  std::map<uint64_t, std::vector<JobHandle>> coalescing_;
  ResultStore store_;
  ThreadPool pool_;  // last member: drains before the fields above die
};

}  // namespace reds::engine

#endif  // REDS_ENGINE_DISCOVERY_ENGINE_H_
