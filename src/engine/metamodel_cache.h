// Thread-safe metamodel cache: the heaviest step of a REDS request is
// training (and especially CV-tuning) the metamodel, yet batches routinely
// run many method variants ("RPx", "RPxp", "RBIcxp", ...) over the same
// dataset. Keyed by (dataset fingerprint, metamodel kind, tuning flag,
// tuning budget, seed), each distinct metamodel is fit exactly once per
// cache; concurrent requests for the same key block on the first fit
// instead of duplicating it. The cache is bounded: beyond `capacity`
// entries, the least-recently-used *completed* models are evicted (counted
// in stats), so long-lived engines cannot accumulate every model ever fit.
// In-flight fits are pinned outside the LRU until they finish, so eviction
// pressure can never trigger a duplicate concurrent fit of the same key.
#ifndef REDS_ENGINE_METAMODEL_CACHE_H_
#define REDS_ENGINE_METAMODEL_CACHE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "ml/model.h"
#include "ml/tuning.h"
#include "obs/metrics.h"
#include "util/lru_map.h"

namespace reds::engine {

/// Identity of one trained metamodel. The split backend is part of the
/// identity: histogram-trained trees differ from presorted/exact ones
/// beyond 256 distinct values per feature, so they must not share entries.
/// So is the tree growth order: leaf-wise trees (and any max_leaves cap)
/// are a different model whenever gains tie or the cap binds.
struct MetamodelKey {
  uint64_t fingerprint = 0;  // FingerprintDataset of the training data
  ml::MetamodelKind kind = ml::MetamodelKind::kGbt;
  bool tuned = false;
  ml::TuningBudget budget = ml::TuningBudget::kQuick;
  ml::SplitBackend backend = ml::SplitBackend::kPresorted;
  ml::GrowthPolicy growth = ml::GrowthPolicy::kDepthWise;
  int max_leaves = 0;
  uint64_t seed = 0;

  friend bool operator<(const MetamodelKey& a, const MetamodelKey& b) {
    return std::tie(a.fingerprint, a.kind, a.tuned, a.budget, a.backend,
                    a.growth, a.max_leaves, a.seed) <
           std::tie(b.fingerprint, b.kind, b.tuned, b.budget, b.backend,
                    b.growth, b.max_leaves, b.seed);
  }
};

/// Point-in-time cache counters.
struct MetamodelCacheStats {
  int fits = 0;        // misses that ran training
  int hits = 0;        // requests served without training
  uint64_t evictions = 0;
  int size = 0;        // entries currently cached
  size_t capacity = 0; // max entries; 0 = unbounded
};

/// Shared cache of trained metamodels. Get-or-fit is deduplicating: when two
/// threads race on the same key, one runs the fit and the other waits on a
/// shared future, so the fit count per key is exactly one.
class MetamodelCache {
 public:
  using FitFn = std::function<std::shared_ptr<const ml::Metamodel>()>;

  /// `capacity` bounds the number of cached models (LRU); 0 = unbounded.
  /// Counters live in `metrics` under `cache.metamodel.{fits,hits,
  /// evictions}` plus a `cache.metamodel.size` gauge; when null the cache
  /// owns a private registry, so standalone construction keeps working and
  /// the accessors below stay exact either way.
  explicit MetamodelCache(size_t capacity = 0,
                          obs::MetricsRegistry* metrics = nullptr);

  /// Returns the cached model for `key`, running `fit` (at most once per
  /// key) on a miss. A `fit` that throws is not cached; the exception
  /// propagates to every waiter of that attempt and the next GetOrFit
  /// retries.
  std::shared_ptr<const ml::Metamodel> GetOrFit(const MetamodelKey& key,
                                                const FitFn& fit);

  /// Number of fits actually executed (cache misses that ran training).
  /// A thin view over the `cache.metamodel.fits` registry counter.
  int fit_count() const { return static_cast<int>(fits_->Value()); }

  /// Number of requests served without training (including waits on an
  /// in-flight fit for the same key).
  int hit_count() const { return static_cast<int>(hits_->Value()); }

  /// Number of entries dropped by LRU eviction.
  uint64_t eviction_count() const;

  /// Number of distinct models currently cached.
  int size() const;

  size_t capacity() const;

  /// All counters plus size/capacity in one consistent snapshot.
  MetamodelCacheStats stats() const;

  /// Drops all entries; counters are preserved (drops do not count as
  /// evictions).
  void Clear();

 private:
  // Entries are held by shared_ptr so the completion/failure paths can act
  // on exactly the attempt they own (identity compare), never a successor
  // inserted after a concurrent Clear().
  using Entry = std::shared_future<std::shared_ptr<const ml::Metamodel>>;

  void UpdateSizeGauge();  // requires mutex_ held

  mutable std::mutex mutex_;
  // Fits currently running: pinned (never evicted) so racing requests for
  // the same key always find and wait on the one in-flight attempt.
  std::map<MetamodelKey, std::shared_ptr<Entry>> in_flight_;
  // Completed models, LRU-bounded.
  LruMap<MetamodelKey, std::shared_ptr<Entry>> entries_;
  // Fallback registry when none is shared in; declared before the metric
  // pointers it backs.
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::Counter* fits_ = nullptr;
  obs::Counter* hits_ = nullptr;
  obs::Counter* evictions_ = nullptr;  // mirrors LruMap deltas
  obs::Gauge* size_gauge_ = nullptr;
};

}  // namespace reds::engine

#endif  // REDS_ENGINE_METAMODEL_CACHE_H_
