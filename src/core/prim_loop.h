// Internal: the peel-candidate record and the generic peeling loop shared
// by every PRIM backend. Split out of prim.cc so the shard coordinator can
// drive the exact same loop over a distributed peel state (shard/) -- box
// sequences stay bit-identical to the single-process kernels by
// construction, because there is only one loop.
#ifndef REDS_CORE_PRIM_LOOP_H_
#define REDS_CORE_PRIM_LOOP_H_

#include <algorithm>
#include <memory>
#include <vector>

#include "core/box.h"
#include "core/dataset.h"
#include "core/prim.h"
#include "core/quality.h"
#include "util/thread_pool.h"

namespace reds {

// A candidate peel: restrict dimension `dim` on one side to `bound`.
struct Peel {
  int dim = -1;
  bool low_side = true;   // true: raise lo to `bound`; false: drop hi
  double bound = 0.0;
  int bin = -1;           // boundary bin (quantized kernels only)
  double removed_n = 0.0;
  double removed_pos = 0.0;
  double precision_after = -1.0;
};

// The peeling loop, generic over the peel-state backend (all backends
// expose the same MakeCandidate/Apply interface and produce bit-identical
// Peels). The training data lives entirely inside the state -- this loop
// only needs its shape and label mass -- so the same code runs
// materialized (PeelState/BinnedPeelState), streamed (CodePeelState) and
// sharded (shard::FleetPeelState) datasets.
// `val` may be null (the streamed D_val = D case): validation stats then
// mirror the training stats and the geometric validation cut is exactly
// the applied peel, so there is nothing separate to track.
template <typename State>
PrimResult RunPeelingPhase(int dims, double train_rows,
                           double total_train_pos, const Dataset* val,
                           const PrimConfig& config, State* state) {
  const bool external_val = val != nullptr;
  const double total_val_pos =
      external_val ? val->TotalPositive() : total_train_pos;

  PrimResult result;
  Box box = Box::Unbounded(dims);

  std::vector<int> val_rows;
  BoxStats train_stats{train_rows, total_train_pos};
  BoxStats val_stats = train_stats;
  if (external_val) {
    val_rows.resize(static_cast<size_t>(val->num_rows()));
    for (int i = 0; i < val->num_rows(); ++i) {
      val_rows[static_cast<size_t>(i)] = i;
    }
    val_stats = {static_cast<double>(val->num_rows()), total_val_pos};
  }

  auto record = [&]() {
    result.boxes.push_back(box);
    result.train_curve.push_back(
        {Recall(train_stats, total_train_pos), Precision(train_stats)});
    const BoxStats& v = external_val ? val_stats : train_stats;
    result.val_curve.push_back({Recall(v, total_val_pos), Precision(v)});
  };
  record();

  std::unique_ptr<ThreadPool> pool;
  std::vector<Peel> candidates;
  while (train_stats.n >= config.min_points &&
         (!external_val || val_stats.n >= config.min_points)) {
    Peel best;
    // Highest precision wins; break ties patiently (remove fewer points).
    auto consider = [&best](const Peel& cand) {
      if (cand.dim < 0) return;
      if (cand.precision_after > best.precision_after ||
          (cand.precision_after == best.precision_after &&
           best.dim >= 0 && cand.removed_n < best.removed_n)) {
        best = cand;
      }
    };
    const bool parallel = config.threads > 1 && dims > 1 &&
                          train_stats.n * dims >= kPrimParallelMinWork;
    if (parallel) {
      // Block-parallel candidate evaluation: one task per dimension, then
      // a serial selection pass in dimension order, so the chosen peel is
      // exactly the serial loop's.
      if (pool == nullptr) pool = std::make_unique<ThreadPool>(config.threads);
      candidates.assign(static_cast<size_t>(2 * dims), Peel());
      for (int j = 0; j < dims; ++j) {
        pool->Submit([state, j, &config, &train_stats, &candidates] {
          candidates[static_cast<size_t>(2 * j)] =
              state->MakeCandidate(j, true, config.alpha, train_stats);
          candidates[static_cast<size_t>(2 * j + 1)] =
              state->MakeCandidate(j, false, config.alpha, train_stats);
        });
      }
      pool->Wait();
      for (const Peel& cand : candidates) consider(cand);
    } else {
      for (int j = 0; j < dims; ++j) {
        for (bool low : {true, false}) {
          consider(state->MakeCandidate(j, low, config.alpha, train_stats));
        }
      }
    }
    if (best.dim < 0) break;  // box is a single point block in every dimension

    if (best.low_side) {
      box.set_lo(best.dim, std::max(box.lo(best.dim), best.bound));
    } else {
      box.set_hi(best.dim, std::min(box.hi(best.dim), best.bound));
    }
    state->Apply(best, &train_stats);
    // Apply the same geometric cut to the validation points.
    if (external_val) {
      size_t kept = 0;
      for (size_t i = 0; i < val_rows.size(); ++i) {
        const int r = val_rows[i];
        const double x = val->x(r, best.dim);
        const bool removed = best.low_side ? x < best.bound : x > best.bound;
        if (removed) {
          val_stats.n -= 1.0;
          val_stats.n_pos -= val->y(r);
        } else {
          val_rows[kept++] = r;
        }
      }
      val_rows.resize(kept);
    }
    if (train_stats.n == 0.0 || (external_val && val_stats.n == 0.0)) {
      // Support vanished; the last recorded box stands.
      break;
    }
    record();
  }

  // Select the box with the highest validation precision; first occurrence
  // (the largest box) wins ties, favoring recall.
  int best_index = 0;
  double best_precision = -1.0;
  for (size_t i = 0; i < result.val_curve.size(); ++i) {
    if (result.val_curve[i].precision > best_precision) {
      best_precision = result.val_curve[i].precision;
      best_index = static_cast<int>(i);
    }
  }
  result.best_val_index = best_index;
  return result;
}

}  // namespace reds

#endif  // REDS_CORE_PRIM_LOOP_H_
