// PRIM with bumping (Kwakkel & Cunningham 2016; paper Algorithm 2):
// Q bootstrap repetitions on random feature subsets, keeping the boxes not
// dominated in (precision, recall) on the validation data.
#ifndef REDS_CORE_BUMPING_H_
#define REDS_CORE_BUMPING_H_

#include <cstdint>
#include <vector>

#include "core/dataset.h"
#include "core/prim.h"

namespace reds {

struct BumpingConfig {
  int q = 50;                 // bootstrap repetitions
  int m = -1;                 // inputs per subset; -1: all M
  PrimConfig prim;            // inner PRIM configuration
};

/// Pareto front of boxes over (recall, precision) on the validation data,
/// sorted by decreasing recall (so the "last" box is the most precise one).
struct BumpingResult {
  std::vector<Box> boxes;
  std::vector<PrPoint> val_curve;  // aligned with `boxes`

  /// Highest-precision non-dominated box (ties: higher recall).
  const Box& BestBox() const;
  int BestIndex() const;
};

/// Runs PRIM with bumping. `seed` drives the bootstrap and feature subsets.
BumpingResult RunPrimBumping(const Dataset& train, const Dataset& val,
                             const BumpingConfig& config, uint64_t seed);

/// Removes boxes dominated in (recall, precision); ties kept once. Exposed
/// for tests.
void ParetoFilter(std::vector<Box>* boxes, std::vector<PrPoint>* curve);

}  // namespace reds

#endif  // REDS_CORE_BUMPING_H_
