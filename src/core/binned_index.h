// BinnedIndex: the quantized data plane. Each feature of a dataset is
// quantized into at most 256 quantile bins -- uint8_t codes stored
// column-major plus, per bin, the smallest/largest data value it covers and
// its offset into the ColumnIndex sorted permutation. Built once per dataset
// from the ColumnIndex (O(M N), no extra sort) and cached by the discovery
// engine under the same input-only fingerprint, it backs the histogram
// split search in ml/ (CART/GBT/RF) and the binned PRIM peeling in core/:
// scans touch contiguous byte codes and O(bins) aggregates instead of N
// exact doubles, with the sorted permutation available for the exact
// in-bin refinements that keep results identical to the unbinned kernels.
#ifndef REDS_CORE_BINNED_INDEX_H_
#define REDS_CORE_BINNED_INDEX_H_

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/column_index.h"
#include "core/dataset.h"

namespace reds {

/// Immutable per-dataset feature quantization. Thread-safe to share.
class BinnedIndex {
 public:
  /// Hard cap on bins per feature, dictated by the uint8_t codes.
  static constexpr int kMaxBins = 256;

  /// Quantizes every column of `index` into at most `max_bins` quantile
  /// bins. Tied values always land in the same bin; when a column has at
  /// most `max_bins` distinct values, every distinct value gets a bin of
  /// its own (making downstream histogram kernels exact).
  static std::shared_ptr<const BinnedIndex> Build(const ColumnIndex& index,
                                                  int max_bins = kMaxBins);

  /// Convenience: builds a private ColumnIndex of d first.
  static std::shared_ptr<const BinnedIndex> Build(const Dataset& d,
                                                  int max_bins = kMaxBins);

  int num_rows() const { return num_rows_; }
  int num_cols() const { return num_cols_; }
  int max_bins() const { return max_bins_; }

  /// Number of non-empty bins of column j (1 <= num_bins <= max_bins).
  int num_bins(int j) const {
    assert(j >= 0 && j < num_cols_);
    return num_bins_[static_cast<size_t>(j)];
  }

  /// Bin codes of column j, indexed by row id.
  const std::vector<uint8_t>& codes(int j) const {
    assert(j >= 0 && j < num_cols_);
    return codes_[static_cast<size_t>(j)];
  }

  /// Bin of row r in column j.
  int code(int j, int r) const {
    return codes(j)[static_cast<size_t>(r)];
  }

  /// Smallest data value in bin b of column j.
  double bin_first(int j, int b) const {
    assert(b >= 0 && b < num_bins(j));
    return bin_first_[static_cast<size_t>(j)][static_cast<size_t>(b)];
  }

  /// Largest data value in bin b of column j.
  double bin_last(int j, int b) const {
    assert(b >= 0 && b < num_bins(j));
    return bin_last_[static_cast<size_t>(j)][static_cast<size_t>(b)];
  }

  /// First rank of bin b in ColumnIndex::sorted_rows(j); bins tile the
  /// permutation, so bin b spans ranks [bin_begin_rank(j, b),
  /// bin_begin_rank(j, b + 1)). bin_begin_rank(j, num_bins(j)) == N.
  int bin_begin_rank(int j, int b) const {
    assert(b >= 0 && b <= num_bins(j));
    return bin_begin_rank_[static_cast<size_t>(j)][static_cast<size_t>(b)];
  }

  /// Bin of an arbitrary value: the first bin whose largest value is >= v,
  /// clamped to the last bin for v beyond the data maximum. For data values
  /// this inverts the codes: BinOf(j, x(r, j)) == code(j, r).
  int BinOf(int j, double v) const;

 private:
  BinnedIndex() = default;

  int num_rows_ = 0;
  int num_cols_ = 0;
  int max_bins_ = kMaxBins;
  std::vector<int> num_bins_;                    // [col]
  std::vector<std::vector<uint8_t>> codes_;      // [col][row] -> bin
  std::vector<std::vector<double>> bin_first_;   // [col][bin] smallest value
  std::vector<std::vector<double>> bin_last_;    // [col][bin] largest value
  std::vector<std::vector<int>> bin_begin_rank_; // [col][bin] perm offset
};

/// Supplies a (possibly cached) BinnedIndex for a dataset. The discovery
/// engine installs one backed by its fingerprint-keyed cache so a batch of
/// method variants and every CV fold quantize the data once; when empty,
/// kernels build a private quantization.
using BinnedIndexProvider =
    std::function<std::shared_ptr<const BinnedIndex>(const Dataset&)>;

}  // namespace reds

#endif  // REDS_CORE_BINNED_INDEX_H_
