// BinnedIndex: the quantized data plane. Each feature of a dataset is
// quantized into at most 256 quantile bins -- uint8_t codes stored
// column-major plus, per bin, the smallest/largest data value it covers and
// its offset into the sorted-by-value permutation. It backs the histogram
// split search in ml/ (CART/GBT/RF) and the binned PRIM peeling in core/:
// scans touch contiguous byte codes and O(bins) aggregates instead of N
// exact doubles.
//
// Two build paths produce one:
//   * Build(ColumnIndex): the exact in-memory path -- value runs packed
//     into equal-share quantile bins from the sorted permutation.
//   * BuildStreamed(DatasetSource): the streaming path -- bin boundaries
//     come from one-pass mergeable quantile sketches and codes are emitted
//     chunk by chunk, so the raw N x M double matrix is never materialized:
//     resident state is the uint8 codes (N x M bytes), the labels (N
//     doubles), and O(block) doubles in flight. The streamed index carries
//     its own
//     code-ordered row permutation (stable counting sort, no comparison
//     sort) and both fingerprints of the stream. When every column has at
//     most max_bins distinct values the streamed bins equal the exact
//     path's bit for bit (BuildKind::kExactPack); otherwise boundaries are
//     within the sketch's rank-error bound (BuildKind::kSketch).
//
// The discovery engine caches indexes under the input-only fingerprint, in
// memory (LRU) and optionally on disk (engine/persistent_cache), for which
// BinnedIndex serializes to a stable little-endian byte layout.
#ifndef REDS_CORE_BINNED_INDEX_H_
#define REDS_CORE_BINNED_INDEX_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/column_index.h"
#include "core/dataset.h"
#include "core/dataset_source.h"
#include "core/quantile_sketch.h"
#include "util/mmap_file.h"
#include "util/serialize.h"
#include "util/status.h"

namespace reds {

/// Borrowed view of one column's per-row data (codes or permutation).
/// Vector-like surface (data/size/operator[]/iteration/==) over storage the
/// BinnedIndex owns -- heap vectors for in-memory builds, a read-only mmap
/// region for out-of-core opens. Valid exactly as long as the index it came
/// from; copy freely, it is two words.
template <typename T>
class ColumnView {
 public:
  ColumnView() = default;
  ColumnView(const T* data, size_t size) : data_(data), size_(size) {}

  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const T& operator[](size_t i) const { return data_[i]; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  friend bool operator==(const ColumnView& a, const ColumnView& b) {
    if (a.size_ != b.size_) return false;
    for (size_t i = 0; i < a.size_; ++i) {
      if (a.data_[i] != b.data_[i]) return false;
    }
    return true;
  }
  friend bool operator!=(const ColumnView& a, const ColumnView& b) {
    return !(a == b);
  }
  friend bool operator==(const ColumnView& a, const std::vector<T>& b) {
    return a == ColumnView(b.data(), b.size());
  }
  friend bool operator==(const std::vector<T>& a, const ColumnView& b) {
    return b == a;
  }

 private:
  const T* data_ = nullptr;
  size_t size_ = 0;
};

/// Knobs of the streaming build.
struct StreamedBuildOptions {
  int max_bins = 256;      // <= BinnedIndex::kMaxBins
  int block_rows = 8192;   // rows pulled per source block
  /// Rank-error target of the per-column quantile sketches, as a fraction
  /// of the stream length; bin boundaries on >max_bins-distinct columns
  /// deviate from exact quantiles by at most this share of rows.
  double sketch_eps = 1.0 / 2048.0;
  /// Blocks sketched concurrently on a private pool when > 1. Every block
  /// is sketched privately and folded in block order on any thread count
  /// (the serial path is the parallel path with one slot), so for a given
  /// block_rows the result is bit-identical regardless of threads.
  /// Changing block_rows may move sketch-binned boundaries (within the
  /// rank-error bound either way).
  int threads = 1;
};

class BinnedIndex;

/// Per-column accumulator of the streaming sketch pass: a mergeable quantile
/// sketch plus exact distinct-value tracking up to the bin budget, so
/// columns with few distinct values get exactly one bin per value (the
/// equivalence case) without consulting the sketch at all.
/// While a column stays within the distinct cap, its sorted (value, count)
/// pairs ARE a lossless summary, and the GK sketch sees nothing. Exact-pair
/// merges are a sorted multiset union -- commutative and associative -- so
/// in the exact-pack regime the folded summary (and hence the bins) is
/// invariant to how rows were split into blocks or shards. Once any side
/// overflowed, merges go through QuantileSketch::Merge, which is
/// deterministic in merge order (the shard coordinator folds worker
/// summaries in worker-index order for reproducibility).
/// Public (rather than a build-internal detail) because shard workers run
/// the sketch pass over their block subset and ship the summary to the
/// coordinator.
struct ColumnSketch {
  QuantileSketch sketch;
  std::vector<double> distinct;  // sorted unique; valid until overflow
  std::vector<int64_t> count;    // parallel occurrence counts
  bool overflow = false;

  explicit ColumnSketch(double eps) : sketch(eps) {}

  /// One-time spill of the exact pairs into the sketch on cap overflow.
  void SpillToSketch();

  void AddValue(double v, int cap);

  void MergeFrom(const ColumnSketch& other, int cap);

  /// Wire form for the shard transport; round-trips the summary state
  /// exactly (exact pairs or flushed sketch tuples).
  void SerializeTo(util::ByteWriter* out) const;
  static Result<ColumnSketch> DeserializeFrom(util::ByteReader* in);
};

/// Bin upper bounds derived from a finished pass-1 column summary: the
/// distinct values themselves below the cap, equal-share sketch quantiles
/// plus a +inf catch-all above it. Consumes the summary's distinct list.
/// Shared verbatim by BuildStreamed and the shard coordinator so global
/// bins are derived by the same code in both topologies.
std::vector<double> StreamedBinUpperBounds(ColumnSketch* summary, int64_t n,
                                           int cap);

/// One column's pass-2 coding aggregates over the raw-bin space (counts and
/// exact value ranges per bin). Additive across disjoint row sets: counts
/// sum, mins min, maxes max -- the property the sharded build rests on.
struct BinCodingStats {
  std::vector<int> count;
  std::vector<double> vmin;
  std::vector<double> vmax;

  void Reset(size_t bins);
  void MergeFrom(const BinCodingStats& other);
  void Observe(size_t bin, double v) {
    ++count[bin];
    vmin[bin] = std::min(vmin[bin], v);
    vmax[bin] = std::max(vmax[bin], v);
  }
};

/// Raw-bin code of value `v` against ascending upper bounds: the first bin
/// whose upper bound is >= v, clamped into range for values beyond the last
/// bound (non-deterministic sources only).
inline uint8_t StreamedCodeOf(const std::vector<double>& upper, double v) {
  size_t b = static_cast<size_t>(
      std::lower_bound(upper.begin(), upper.end(), v) - upper.begin());
  if (b == upper.size()) --b;
  return static_cast<uint8_t>(b);
}

/// Final per-column bin layout: empty raw bins dropped, exact first/last
/// bounds, cumulative rank offsets (size live + 1), and the raw-bin ->
/// final-bin remap. Deterministic function of the coding stats, so shards
/// that agree on global stats agree on the layout.
struct ColumnBinLayout {
  int live = 0;
  std::vector<uint8_t> remap;   // [raw bin] -> final bin (valid where count>0)
  std::vector<double> first;    // [final bin]
  std::vector<double> last;     // [final bin]
  std::vector<int> begins;      // [final bin] cumulative ranks; size live+1
};

/// Assembles the final layout from (possibly shard-merged) coding stats over
/// n total rows. BuildStreamed uses this per column; the shard coordinator
/// applies it to the fleet-summed stats and gets the identical layout.
ColumnBinLayout AssembleColumnBins(const BinCodingStats& stats, int n);

/// What streaming ingestion yields: the quantized index, the label vector,
/// and both fingerprints hashed incrementally over the chunk stream --
/// never the raw double matrix.
struct StreamedDataset {
  std::shared_ptr<const BinnedIndex> index;
  std::vector<double> y;
  uint64_t input_fingerprint = 0;  // == engine::FingerprintInputs
  uint64_t fingerprint = 0;        // == engine::FingerprintDataset
};

/// Immutable per-dataset feature quantization. Thread-safe to share.
class BinnedIndex {
 public:
  /// Hard cap on bins per feature, dictated by the uint8_t codes.
  static constexpr int kMaxBins = 256;

  /// How the bin boundaries were derived. Indexes of different kinds must
  /// not share cache entries: beyond max_bins distinct values per column
  /// the two packings differ.
  enum class BuildKind : uint8_t {
    kExactPack,  // exact value-run packing (or streamed with all columns
                 // <= max_bins distinct: identical result)
    kSketch,     // streamed, at least one column binned from the sketch
  };

  /// Quantizes every column of `index` into at most `max_bins` quantile
  /// bins. Tied values always land in the same bin; when a column has at
  /// most `max_bins` distinct values, every distinct value gets a bin of
  /// its own (making downstream histogram kernels exact).
  static std::shared_ptr<const BinnedIndex> Build(const ColumnIndex& index,
                                                  int max_bins = kMaxBins);

  /// Convenience: builds a private ColumnIndex of d first.
  static std::shared_ptr<const BinnedIndex> Build(const Dataset& d,
                                                  int max_bins = kMaxBins);

  /// Streaming build: two passes over `source` (sketch pass, coding pass),
  /// consuming fixed-size row blocks. See the file comment for the
  /// equivalence contract. The source must yield the identical row
  /// sequence on both passes.
  static Result<StreamedDataset> BuildStreamed(
      DatasetSource* source, const StreamedBuildOptions& options = {});

  int num_rows() const { return num_rows_; }
  int num_cols() const { return num_cols_; }
  int max_bins() const { return max_bins_; }
  BuildKind kind() const { return kind_; }

  /// Number of non-empty bins of column j (1 <= num_bins <= max_bins).
  int num_bins(int j) const {
    assert(j >= 0 && j < num_cols_);
    return num_bins_[static_cast<size_t>(j)];
  }

  /// Bin codes of column j, indexed by row id. The view aliases either the
  /// index's heap vectors or, for OpenMapped indexes, the mmap'd file --
  /// rows page in on first touch.
  ColumnView<uint8_t> codes(int j) const {
    assert(j >= 0 && j < num_cols_);
    return code_view_[static_cast<size_t>(j)];
  }

  /// Bin of row r in column j.
  int code(int j, int r) const {
    return codes(j)[static_cast<size_t>(r)];
  }

  /// Smallest data value in bin b of column j.
  double bin_first(int j, int b) const {
    assert(b >= 0 && b < num_bins(j));
    return bin_first_[static_cast<size_t>(j)][static_cast<size_t>(b)];
  }

  /// Largest data value in bin b of column j.
  double bin_last(int j, int b) const {
    assert(b >= 0 && b < num_bins(j));
    return bin_last_[static_cast<size_t>(j)][static_cast<size_t>(b)];
  }

  /// First rank of bin b in the sorted-by-value permutation; bins tile the
  /// permutation, so bin b spans ranks [bin_begin_rank(j, b),
  /// bin_begin_rank(j, b + 1)). bin_begin_rank(j, num_bins(j)) == N.
  int bin_begin_rank(int j, int b) const {
    assert(b >= 0 && b <= num_bins(j));
    return bin_begin_rank_[static_cast<size_t>(j)][static_cast<size_t>(b)];
  }

  /// True when the index carries its own code-ordered permutation
  /// (streamed builds do; ColumnIndex-derived builds share the
  /// ColumnIndex's instead).
  bool has_sorted_rows() const { return !sorted_view_.empty(); }

  /// Row ids ascending by (bin code, row id) -- identical to
  /// ColumnIndex::sorted_rows whenever bins are single values. Only valid
  /// when has_sorted_rows(). Mmap-backed for OpenMapped indexes, like
  /// codes().
  ColumnView<int> sorted_rows(int j) const {
    assert(has_sorted_rows());
    assert(j >= 0 && j < num_cols_);
    return sorted_view_[static_cast<size_t>(j)];
  }

  /// Bin of an arbitrary value: the first bin whose largest value is >= v,
  /// clamped to the last bin for v beyond the data maximum. For data values
  /// this inverts the codes: BinOf(j, x(r, j)) == code(j, r).
  int BinOf(int j, double v) const;

  /// Appends the index to `out` in the stable little-endian cache layout
  /// (version tag + dims + per-column bins/codes). The permutation is not
  /// written; Deserialize rebuilds it by counting when the index carried
  /// one.
  void Serialize(util::ByteWriter* out) const;

  /// Parses a serialized index, validating structure (dims, monotone bin
  /// ranks, code ranges) so truncated or corrupted payloads are rejected
  /// rather than trusted.
  static Result<std::shared_ptr<const BinnedIndex>> Deserialize(
      util::ByteReader* in);

  /// Writes the index as a write-once mapped file ("REDSBMAP"): a small
  /// serialized header (magic, version, `key_echo`, dims, per-bin
  /// metadata), then 8-byte-aligned regions holding the raw column-major
  /// uint8 codes and int32 permutation, then a trailing FNV-1a 64 checksum
  /// over everything before it. The bulk regions are byte-for-byte the
  /// in-memory arrays, so OpenMapped can point views straight into the
  /// mapping. Requires has_sorted_rows().
  Status WriteMapped(const std::string& path, uint64_t key_echo) const;

  /// Maps a WriteMapped file read-only and wraps it as an index whose code
  /// and permutation views alias the mapping: the O(n x m) payload is never
  /// copied to the heap and pages in on demand. Validates magic, version,
  /// key echo, expected shape, the full-file checksum, and the same bin
  /// structure Deserialize checks; rejects truncated or corrupted files.
  static Result<std::shared_ptr<const BinnedIndex>> OpenMapped(
      const std::string& path, uint64_t key_echo, int expect_rows,
      int expect_cols);

 private:
  BinnedIndex() = default;

  void BuildOwnPermutation();

  /// Points code_view_/sorted_view_ at the heap vectors. Every in-memory
  /// build/deserialize path ends with this; OpenMapped instead aims the
  /// views into mapped_.
  void RefreshViews();

  int num_rows_ = 0;
  int num_cols_ = 0;
  int max_bins_ = kMaxBins;
  BuildKind kind_ = BuildKind::kExactPack;
  std::vector<int> num_bins_;                    // [col]
  std::vector<std::vector<uint8_t>> codes_;      // [col][row] -> bin
  std::vector<std::vector<double>> bin_first_;   // [col][bin] smallest value
  std::vector<std::vector<double>> bin_last_;    // [col][bin] largest value
  std::vector<std::vector<int>> bin_begin_rank_; // [col][bin] perm offset
  std::vector<std::vector<int>> sorted_;         // [col][rank] -> row; may
                                                 // be empty (see above)
  /// Accessor views: one per column, aliasing either the vectors above or
  /// the mapping below. sorted_view_ is empty iff the index carries no
  /// permutation.
  std::vector<ColumnView<uint8_t>> code_view_;
  std::vector<ColumnView<int>> sorted_view_;
  util::MappedFile mapped_;  // backing store of OpenMapped indexes
};

/// Supplies a (possibly cached) BinnedIndex for a dataset. The discovery
/// engine installs one backed by its fingerprint-keyed cache so a batch of
/// method variants and every CV fold quantize the data once; when empty,
/// kernels build a private quantization.
using BinnedIndexProvider =
    std::function<std::shared_ptr<const BinnedIndex>(const Dataset&)>;

}  // namespace reds

#endif  // REDS_CORE_BINNED_INDEX_H_
