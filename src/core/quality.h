// Scenario quality measures (paper Section 4): precision, recall, WRAcc,
// PR AUC over a peeling trajectory, #restricted, #irrelevantly restricted,
// and consistency.
#ifndef REDS_CORE_QUALITY_H_
#define REDS_CORE_QUALITY_H_

#include <vector>

#include "core/box.h"
#include "core/dataset.h"

namespace reds {

/// precision = n+/n; 0 for empty subgroups.
double Precision(const BoxStats& stats);

/// recall = n+/N+; 0 when the dataset has no positives.
double Recall(const BoxStats& stats, double total_pos);

/// WRAcc = n/N * (n+/n - N+/N); 0 for empty subgroups.
double WRAcc(const BoxStats& stats, double total_n, double total_pos);

/// One point of a peeling trajectory in PR space.
struct PrPoint {
  double recall = 0.0;
  double precision = 0.0;
};

/// Area under the piecewise-linear precision-recall curve of a peeling
/// trajectory (paper Figure 5). Points are sorted by recall; the curve is
/// extended left to recall 0 at the precision of its lowest-recall point and
/// integrated by trapezoids. Higher is better; returns 0 for empty input.
double PrAuc(std::vector<PrPoint> points);

/// Evaluates a box sequence on a dataset and computes the PR AUC there.
double PrAucOnData(const std::vector<Box>& boxes, const Dataset& d);

/// Consistency of two discovered boxes: V(overlap) / V(union) with infinite
/// sides clamped to the domain (paper Definition 2). Returns a value in
/// [0, 1]; two empty boxes give 1 (identical scenarios).
double Consistency(const Box& a, const Box& b,
                   const std::vector<double>& domain_lo,
                   const std::vector<double>& domain_hi);

/// Mean pairwise consistency over a set of boxes from repeated runs.
double MeanPairwiseConsistency(const std::vector<Box>& boxes,
                               const std::vector<double>& domain_lo,
                               const std::vector<double>& domain_hi);

/// #irrel: restricted dimensions that do not affect the output, given the
/// ground-truth relevance mask of the simulation model.
int NumIrrelevantRestricted(const Box& box, const std::vector<bool>& relevant);

}  // namespace reds

#endif  // REDS_CORE_QUALITY_H_
