// DatasetSource: pull-based chunked ingestion, the entry point of the
// streaming data plane. Instead of materializing a full N x M matrix and
// then indexing it, consumers (the streaming BinnedIndex build, the
// incremental fingerprint hashers, the CSV demo) pull fixed-size row blocks
// from a source -- an in-memory Dataset, a CSV file parsed line by line, or
// a generator labeling points on the fly -- so only O(block) raw doubles
// are ever in flight and the N x M double matrix is never materialized
// (the quantized consumers retain N x M uint8 codes and N label doubles
// instead). Sources must be deterministic across Reset():
// the streaming build is two-pass (sketch pass, then coding pass) and both
// passes must see the identical row sequence.
#ifndef REDS_CORE_DATASET_SOURCE_H_
#define REDS_CORE_DATASET_SOURCE_H_

#include <cstdint>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "la/matrix.h"
#include "util/status.h"

namespace reds {

/// One batch of rows pulled from a DatasetSource: a matrix-free view of the
/// inputs plus the parallel target slice. Valid until the next
/// NextBlock/Reset call on the source that produced it.
struct RowBlock {
  la::ConstMatrixView x;       // num_rows() x num_cols inputs
  const double* y = nullptr;   // num_rows() targets

  int num_rows() const { return x.rows(); }
  bool empty() const { return x.rows() == 0; }
};

/// Abstract chunked access to a labeled dataset.
class DatasetSource {
 public:
  virtual ~DatasetSource() = default;

  virtual int num_cols() const = 0;

  /// Total rows when known upfront (in-memory and generator sources); -1
  /// when only the end of the stream reveals it (files).
  virtual int64_t num_rows_hint() const { return -1; }

  /// Rewinds to the first row. Every pass must yield the identical
  /// sequence of rows.
  virtual Status Reset() = 0;

  /// Produces the next block of at most `max_rows` rows (the source owns
  /// the backing buffers). An empty block signals the end of the stream.
  virtual Result<RowBlock> NextBlock(int max_rows) = 0;
};

/// Drains a source into a materialized Dataset (the exact in-memory path;
/// also the equivalence oracle the streamed path is tested against).
Result<Dataset> ReadAll(DatasetSource* source, int block_rows = 4096);

/// Chunked view of an in-memory Dataset. Blocks alias the dataset's own
/// row-major storage, so no copies are made.
class MatrixSource : public DatasetSource {
 public:
  explicit MatrixSource(std::shared_ptr<const Dataset> data);

  int num_cols() const override { return data_->num_cols(); }
  int64_t num_rows_hint() const override { return data_->num_rows(); }
  Status Reset() override;
  Result<RowBlock> NextBlock(int max_rows) override;

 private:
  std::shared_ptr<const Dataset> data_;
  int cursor_ = 0;
};

/// Streams a numeric CSV file (util's ReadCsvFile grammar via the shared
/// line helpers: header line, comma-separated numeric cells, no quoting;
/// the *last* column is the target -- but stricter on values: non-finite
/// cells are rejected, since NaN would poison the downstream binning) one
/// block at a time. Only one block of doubles is resident; Reset() reopens
/// the file.
class CsvFileSource : public DatasetSource {
 public:
  /// Opens the file and parses the header. Fails on missing files, empty
  /// files, or a header with fewer than two columns.
  static Result<std::unique_ptr<CsvFileSource>> Open(const std::string& path);

  int num_cols() const override { return num_cols_; }
  Status Reset() override;
  Result<RowBlock> NextBlock(int max_rows) override;

  /// Input column names (the header minus the target column).
  const std::vector<std::string>& column_names() const { return names_; }
  const std::string& target_name() const { return target_name_; }
  const std::string& path() const { return path_; }

 private:
  CsvFileSource() = default;

  std::string path_;
  int num_cols_ = 0;  // input columns (header size - 1)
  std::vector<std::string> names_;
  std::string target_name_;
  std::ifstream file_;
  int line_no_ = 0;
  std::vector<double> x_buf_;
  std::vector<double> y_buf_;
};

/// Re-labels a wrapped source on the fly: each block's targets are replaced
/// by label_fn(x_row). This is REDS's relabeling step as a stream
/// transform -- wrap a generator source and pass the trained metamodel's
/// PredictLabel/PredictProb, and the L >> N relabeled points flow into the
/// streaming build without ever being materialized.
class LabelingSource : public DatasetSource {
 public:
  using LabelFn = std::function<double(const double* x)>;

  LabelingSource(DatasetSource* inner, LabelFn label_fn)
      : inner_(inner), label_fn_(std::move(label_fn)) {}

  int num_cols() const override { return inner_->num_cols(); }
  int64_t num_rows_hint() const override { return inner_->num_rows_hint(); }
  Status Reset() override { return inner_->Reset(); }
  Result<RowBlock> NextBlock(int max_rows) override;

 private:
  DatasetSource* inner_;  // not owned
  LabelFn label_fn_;
  std::vector<double> y_buf_;
};

}  // namespace reds

#endif  // REDS_CORE_DATASET_SOURCE_H_
